/**
 * @file
 * Randomised robustness ("fuzz") tests: the invariants that must
 * survive arbitrary usage -- random command streams on the DP-Box,
 * random request patterns against the budget controller, random
 * configurations through the threshold calculator -- because a
 * privacy device that crashes or leaks under odd-but-legal inputs is
 * broken no matter how good the math is.
 */

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/budget.h"
#include "core/resampling_mechanism.h"
#include "core/threshold_calc.h"
#include "core/thresholding_mechanism.h"
#include "dpbox/dpbox.h"

namespace ulpdp {
namespace {

TEST(Fuzz, DpBoxSurvivesRandomCommandStreams)
{
    // Random (but type-valid) commands and inputs must never crash
    // the device, and with thresholding enabled every ready output
    // must lie inside the configured window.
    std::mt19937_64 rng(1234);
    std::uniform_int_distribution<int> cmd_pick(0, 6);

    for (int trial = 0; trial < 20; ++trial) {
        DpBoxConfig cfg;
        cfg.frac_bits = 5;
        cfg.word_bits = 20;
        cfg.uniform_bits = 14;
        cfg.threshold_index = 300;
        cfg.thresholding = true;
        cfg.seed = 100 + trial;
        DpBox box(cfg);

        // Seal initialization with a sane budget setup first.
        box.step(DpBoxCommand::SetEpsilon, 256 * 5);
        box.step(DpBoxCommand::StartNoising);
        // Make the range valid before fuzzing so StartNoising is
        // legal whenever it fires.
        box.step(DpBoxCommand::SetEpsilon, 1);
        box.step(DpBoxCommand::SetRangeLower, box.toRaw(0.0));
        box.step(DpBoxCommand::SetRangeUpper, box.toRaw(10.0));

        std::uniform_int_distribution<int64_t> input_pick(
            box.toRaw(0.0), box.toRaw(10.0));
        int64_t win_lo = box.toRaw(0.0) - cfg.threshold_index;
        int64_t win_hi = box.toRaw(10.0) + cfg.threshold_index;

        for (int i = 0; i < 3000; ++i) {
            auto cmd = static_cast<DpBoxCommand>(cmd_pick(rng));
            // Keep the fuzz inside the legal envelope: never shrink
            // the range to empty, never toggle mode (the window
            // bound below assumes clamping).
            if (cmd == DpBoxCommand::SetRangeLower ||
                cmd == DpBoxCommand::SetRangeUpper ||
                cmd == DpBoxCommand::SetThreshold ||
                cmd == DpBoxCommand::SetEpsilon) {
                cmd = DpBoxCommand::DoNothing;
            }
            box.step(cmd, input_pick(rng));
            if (box.ready()) {
                EXPECT_GE(box.output(), win_lo);
                EXPECT_LE(box.output(), win_hi);
            }
        }
    }
}

TEST(Fuzz, BudgetControllerNeverOverspends)
{
    std::mt19937_64 rng(77);
    std::uniform_real_distribution<double> value_pick(0.0, 10.0);

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    ThresholdCalculator calc(p);

    for (int trial = 0; trial < 10; ++trial) {
        BudgetControllerConfig cfg;
        cfg.initial_budget = 1.0 + trial;
        cfg.kind = trial % 2 == 0 ? RangeControl::Thresholding
                                  : RangeControl::Resampling;
        cfg.segments = LossSegments::compute(calc, cfg.kind,
                                             {1.5, 2.0});
        FxpMechanismParams seeded = p;
        seeded.seed = 1000 + trial;
        BudgetController ctrl(seeded, cfg);

        double charged = 0.0;
        for (int i = 0; i < 500; ++i) {
            BudgetResponse r = ctrl.request(value_pick(rng));
            charged += r.charged;
            if (r.from_cache) {
                EXPECT_DOUBLE_EQ(r.charged, 0.0);
            }
        }
        EXPECT_LE(charged, cfg.initial_budget + 1e-9);
        EXPECT_GE(ctrl.remainingBudget(), -1e-9);
    }
}

TEST(Fuzz, RandomConfigsEitherProvisionOrRefuse)
{
    // Across random (range, eps, Bu, bound) combinations the exact
    // threshold search must either return a threshold whose loss
    // meets the bound, or -1 -- never a bogus window.
    std::mt19937_64 rng(31);
    std::uniform_real_distribution<double> len_pick(0.5, 500.0);
    std::uniform_int_distribution<int> bu_pick(8, 17);
    std::uniform_real_distribution<double> n_pick(1.1, 3.0);

    for (int trial = 0; trial < 25; ++trial) {
        FxpMechanismParams p;
        double len = len_pick(rng);
        p.range = SensorRange(0.0, len);
        p.epsilon = std::ldexp(1.0, -(trial % 3)); // 1, 0.5, 0.25
        p.uniform_bits = bu_pick(rng);
        p.output_bits = 14;
        p.delta = len / 32.0;
        ThresholdCalculator calc(p);
        double n = n_pick(rng);

        for (RangeControl kind : {RangeControl::Resampling,
                                  RangeControl::Thresholding}) {
            int64_t t = calc.exactIndex(kind, n);
            if (t < 0)
                continue;
            double loss = calc.exactLossAt(kind, t);
            EXPECT_LE(loss, n * p.epsilon * (1.0 + 1e-9) + 1e-12)
                << "trial=" << trial << " kind="
                << static_cast<int>(kind) << " n=" << n
                << " bu=" << p.uniform_bits;
        }
    }
}

TEST(Fuzz, MechanismsHandleBoundaryReadings)
{
    // Readings exactly at (and epsilon-near) the range limits must
    // never trip internal assertions.
    FxpMechanismParams p;
    p.range = SensorRange(-1.0, 1.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 2.0 / 32.0;
    ThresholdingMechanism thresh(p, 100);
    ResamplingMechanism resamp(p, 100);
    for (double x : {-1.0, -0.999999, 0.0, 0.999999, 1.0}) {
        for (int i = 0; i < 100; ++i) {
            EXPECT_NO_THROW(thresh.noise(x));
            EXPECT_NO_THROW(resamp.noise(x));
        }
    }
}

} // anonymous namespace
} // namespace ulpdp
