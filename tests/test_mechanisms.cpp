/**
 * @file
 * Behavioural tests for the four mechanisms of Tables II-V.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "core/ideal_laplace_mechanism.h"
#include "core/fxp_mechanism.h"
#include "core/resampling_mechanism.h"
#include "core/thresholding_mechanism.h"

namespace ulpdp {
namespace {

FxpMechanismParams
testParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    return p;
}

TEST(SensorRange, Basics)
{
    SensorRange r(2.0, 6.0);
    EXPECT_DOUBLE_EQ(r.length(), 4.0);
    EXPECT_DOUBLE_EQ(r.mid(), 4.0);
    EXPECT_TRUE(r.contains(2.0));
    EXPECT_TRUE(r.contains(6.0));
    EXPECT_FALSE(r.contains(6.1));
    EXPECT_DOUBLE_EQ(r.clamp(7.0), 6.0);
    EXPECT_DOUBLE_EQ(r.clamp(1.0), 2.0);
    EXPECT_DOUBLE_EQ(r.clamp(3.0), 3.0);
    EXPECT_THROW(SensorRange(1.0, 1.0), FatalError);
}

TEST(IdealLaplaceMechanism, NoiseIsUnbiased)
{
    IdealLaplaceMechanism mech(SensorRange(0.0, 10.0), 0.5, 3);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(mech.noise(5.0).value);
    double lambda = 10.0 / 0.5;
    EXPECT_NEAR(stats.mean(), 5.0,
                6.0 * std::sqrt(2.0) * lambda / std::sqrt(200000.0));
}

TEST(IdealLaplaceMechanism, RejectsOutOfRange)
{
    IdealLaplaceMechanism mech(SensorRange(0.0, 1.0), 0.5);
    EXPECT_THROW(mech.noise(2.0), FatalError);
}

TEST(IdealLaplaceMechanism, MetadataCorrect)
{
    IdealLaplaceMechanism mech(SensorRange(0.0, 1.0), 0.25);
    EXPECT_TRUE(mech.guaranteesLdp());
    EXPECT_DOUBLE_EQ(mech.epsilon(), 0.25);
    EXPECT_EQ(mech.name(), "Ideal Local DP");
    EXPECT_EQ(mech.noise(0.5).samples_drawn, 1u);
}

TEST(FxpMechanismParams, DerivedQuantities)
{
    FxpMechanismParams p = testParams();
    EXPECT_DOUBLE_EQ(p.lambda(), 20.0);
    EXPECT_DOUBLE_EQ(p.resolvedDelta(), 0.3125);
    EXPECT_EQ(p.rangeIndexSpan(), 32);

    p.delta = 0.0; // default convention: d / 32
    EXPECT_DOUBLE_EQ(p.resolvedDelta(), 0.3125);
}

TEST(NaiveFxpMechanism, OutputOnGrid)
{
    NaiveFxpMechanism mech(testParams());
    double delta = mech.delta();
    for (int i = 0; i < 5000; ++i) {
        double y = mech.noise(5.0).value;
        double k = y / delta;
        EXPECT_NEAR(k, std::round(k), 1e-9);
    }
}

TEST(NaiveFxpMechanism, DoesNotClaimLdp)
{
    NaiveFxpMechanism mech(testParams());
    EXPECT_FALSE(mech.guaranteesLdp());
}

TEST(NaiveFxpMechanism, RejectsFarOutOfRange)
{
    NaiveFxpMechanism mech(testParams());
    EXPECT_THROW(mech.noise(12.0), FatalError);
    EXPECT_NO_THROW(mech.noise(10.0));
    EXPECT_NO_THROW(mech.noise(0.0));
}

TEST(NaiveFxpMechanism, UnbiasedInBulk)
{
    NaiveFxpMechanism mech(testParams());
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(mech.noise(5.0).value);
    EXPECT_NEAR(stats.mean(), 5.0, 0.5);
}

TEST(ResamplingMechanism, OutputsConfinedToWindow)
{
    FxpMechanismParams p = testParams();
    int64_t t = 100;
    ResamplingMechanism mech(p, t);
    double lo = 0.0 - static_cast<double>(t) * mech.delta();
    double hi = 10.0 + static_cast<double>(t) * mech.delta();
    for (int i = 0; i < 20000; ++i) {
        double y = mech.noise(0.0).value;
        EXPECT_GE(y, lo - 1e-9);
        EXPECT_LE(y, hi + 1e-9);
    }
}

TEST(ResamplingMechanism, CountsResamples)
{
    FxpMechanismParams p = testParams();
    // Small window: frequent resampling.
    ResamplingMechanism mech(p, 5);
    uint64_t n = 5000;
    for (uint64_t i = 0; i < n; ++i) {
        NoisedReport r = mech.noise(5.0);
        EXPECT_GE(r.samples_drawn, 1u);
    }
    EXPECT_EQ(mech.totalReports(), n);
    EXPECT_GE(mech.totalSamplesDrawn(), n);
    EXPECT_GT(mech.averageSamplesPerReport(), 1.0);
}

TEST(ResamplingMechanism, WideWindowRarelyResamples)
{
    FxpMechanismParams p = testParams();
    ResamplingMechanism mech(p, 400);
    for (int i = 0; i < 5000; ++i)
        mech.noise(5.0);
    // Fig. 11: resampling never adds more than one extra sample on
    // average, usually far less.
    EXPECT_LT(mech.averageSamplesPerReport(), 2.0);
}

TEST(ResamplingMechanism, RejectsNegativeThreshold)
{
    EXPECT_THROW(ResamplingMechanism(testParams(), -1), FatalError);
}

TEST(ResamplingMechanism, GuaranteesLdpFlag)
{
    ResamplingMechanism mech(testParams(), 100);
    EXPECT_TRUE(mech.guaranteesLdp());
    EXPECT_EQ(mech.name(), "Resampling");
}

TEST(ThresholdingMechanism, OutputsConfinedToWindow)
{
    FxpMechanismParams p = testParams();
    int64_t t = 50;
    ThresholdingMechanism mech(p, t);
    double lo = -static_cast<double>(t) * mech.delta();
    double hi = 10.0 + static_cast<double>(t) * mech.delta();
    bool hit_lo = false;
    bool hit_hi = false;
    for (int i = 0; i < 50000; ++i) {
        double y = mech.noise(5.0).value;
        EXPECT_GE(y, lo - 1e-9);
        EXPECT_LE(y, hi + 1e-9);
        if (std::abs(y - lo) < 1e-9)
            hit_lo = true;
        if (std::abs(y - hi) < 1e-9)
            hit_hi = true;
    }
    // Fig. 7: clamping piles visible mass onto the boundary values.
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(ThresholdingMechanism, AlwaysExactlyOneSample)
{
    ThresholdingMechanism mech(testParams(), 20);
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(mech.noise(3.0).samples_drawn, 1u);
    EXPECT_EQ(mech.totalReports(), 2000u);
}

TEST(ThresholdingMechanism, ClampStatistics)
{
    ThresholdingMechanism tight(testParams(), 1);
    for (int i = 0; i < 5000; ++i)
        tight.noise(5.0);
    EXPECT_GT(tight.clampedReports(), 0u);
    EXPECT_LT(tight.clampedReports(), tight.totalReports());
}

TEST(ThresholdingMechanism, BoundaryAtomsGrowWithTighterWindow)
{
    auto clamp_rate = [](int64_t t) {
        ThresholdingMechanism mech(testParams(), t);
        for (int i = 0; i < 20000; ++i)
            mech.noise(5.0);
        return static_cast<double>(mech.clampedReports()) /
               static_cast<double>(mech.totalReports());
    };
    double tight = clamp_rate(10);
    double loose = clamp_rate(200);
    EXPECT_GT(tight, loose);
}

TEST(MechanismsAgree, AllFourSimilarUtilityOnMean)
{
    // Tables II-V: the four settings produce near-identical bulk
    // noise, so the average of many reports of the same value agrees
    // across mechanisms.
    FxpMechanismParams p = testParams();
    p.uniform_bits = 17;
    IdealLaplaceMechanism ideal(p.range, p.epsilon, 3);
    NaiveFxpMechanism naive(p);
    ResamplingMechanism resamp(p, 400);
    ThresholdingMechanism thresh(p, 400);

    const int n = 100000;
    auto avg = [&](Mechanism &m) {
        double sum = 0.0;
        for (int i = 0; i < n; ++i)
            sum += m.noise(5.0).value;
        return sum / n;
    };
    double tol = 0.6;
    EXPECT_NEAR(avg(ideal), 5.0, tol);
    EXPECT_NEAR(avg(naive), 5.0, tol);
    EXPECT_NEAR(avg(resamp), 5.0, tol);
    EXPECT_NEAR(avg(thresh), 5.0, tol);
}

TEST(FxpMechanismBase, GridHelpers)
{
    NaiveFxpMechanism mech(testParams());
    EXPECT_EQ(mech.loIndex(), 0);
    EXPECT_EQ(mech.hiIndex(), 32);
    EXPECT_EQ(mech.toIndex(5.0), 16);
    EXPECT_DOUBLE_EQ(mech.toValue(16), 5.0);
}

} // anonymous namespace
} // namespace ulpdp
