/**
 * @file
 * Tests for the Dataset abstraction.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "data/dataset.h"

namespace ulpdp {
namespace {

Dataset
smallDataset()
{
    Dataset d;
    d.name = "test";
    d.range = SensorRange(0.0, 10.0);
    d.values = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0};
    return d;
}

TEST(Dataset, ObservedStatistics)
{
    Dataset d = smallDataset();
    EXPECT_EQ(d.size(), 10u);
    EXPECT_DOUBLE_EQ(d.observedMin(), 1.0);
    EXPECT_DOUBLE_EQ(d.observedMax(), 10.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.5);
    EXPECT_NEAR(d.stddev(), 2.8723, 1e-4);
}

TEST(Dataset, EmptyStatistics)
{
    Dataset d;
    EXPECT_DOUBLE_EQ(d.observedMin(), 0.0);
    EXPECT_DOUBLE_EQ(d.observedMax(), 0.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Dataset, ValidatePassesInRange)
{
    EXPECT_NO_THROW(smallDataset().validate());
}

TEST(Dataset, ValidateCatchesOutOfRange)
{
    Dataset d = smallDataset();
    d.values.push_back(11.0);
    EXPECT_THROW(d.validate(), PanicError);
}

TEST(Dataset, SubsampleKeepsSmallDatasets)
{
    Dataset d = smallDataset();
    Dataset s = d.subsample(100);
    EXPECT_EQ(s.size(), d.size());
}

TEST(Dataset, SubsampleReducesSize)
{
    Dataset d = smallDataset();
    Dataset s = d.subsample(4);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_EQ(s.name, d.name);
    EXPECT_DOUBLE_EQ(s.range.hi, d.range.hi);
    // Stride sampling keeps first element and roughly even coverage.
    EXPECT_DOUBLE_EQ(s.values[0], 1.0);
}

TEST(Dataset, SubsamplePreservesMeanApproximately)
{
    Dataset d;
    d.range = SensorRange(0.0, 1.0);
    // Period 97 is coprime to the sampling stride, avoiding aliasing.
    for (int i = 0; i < 10000; ++i)
        d.values.push_back((i % 97) / 97.0);
    Dataset s = d.subsample(1000);
    EXPECT_NEAR(s.mean(), d.mean(), 0.02);
}

TEST(Dataset, SubsampleDeterministic)
{
    Dataset d = smallDataset();
    Dataset a = d.subsample(5);
    Dataset b = d.subsample(5);
    EXPECT_EQ(a.values, b.values);
}

} // anonymous namespace
} // namespace ulpdp
