/**
 * @file
 * Tests for k-ary (generalized) randomized response.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/kary_randomized_response.h"

namespace ulpdp {
namespace {

TEST(KaryRR, RejectsBadConfig)
{
    EXPECT_THROW(KaryRandomizedResponse(1, 1.0), FatalError);
    EXPECT_THROW(KaryRandomizedResponse(4, 0.0), FatalError);
    EXPECT_THROW(KaryRandomizedResponse(4, 1.0, 2), FatalError);
    EXPECT_THROW(KaryRandomizedResponse(4, 1.0, 40), FatalError);
}

TEST(KaryRR, ProbabilitiesMatchGrrFormula)
{
    for (int k : {2, 4, 10}) {
        for (double eps : {0.5, 1.0, 2.0}) {
            KaryRandomizedResponse rr(k, eps, 20);
            double p = std::exp(eps) /
                       (std::exp(eps) + static_cast<double>(k) - 1.0);
            EXPECT_NEAR(rr.truthProbability(), p, 1e-5)
                << "k=" << k << " eps=" << eps;
            EXPECT_NEAR(rr.lieProbability(),
                        (1.0 - p) / (k - 1), 1e-5);
        }
    }
}

TEST(KaryRR, ExactLossNearEpsilon)
{
    for (double eps : {0.25, 0.5, 1.0, 2.0}) {
        KaryRandomizedResponse rr(5, eps, 20);
        // Threshold quantization perturbs the implemented loss by at
        // most a few 2^-20 units of probability.
        EXPECT_NEAR(rr.exactLoss(), eps, 1e-4) << "eps=" << eps;
    }
}

TEST(KaryRR, BinaryCaseMatchesClassicRr)
{
    KaryRandomizedResponse rr(2, 1.0, 20);
    double p = std::exp(1.0) / (std::exp(1.0) + 1.0);
    EXPECT_NEAR(rr.truthProbability(), p, 1e-5);
}

TEST(KaryRR, RespondRejectsBadCategory)
{
    KaryRandomizedResponse rr(3, 1.0);
    EXPECT_THROW(rr.respond(-1), FatalError);
    EXPECT_THROW(rr.respond(3), FatalError);
}

TEST(KaryRR, ResponsesAreValidCategories)
{
    KaryRandomizedResponse rr(5, 1.0);
    for (int i = 0; i < 10000; ++i) {
        int r = rr.respond(i % 5);
        EXPECT_GE(r, 0);
        EXPECT_LT(r, 5);
    }
}

TEST(KaryRR, EmpiricalTruthRateMatches)
{
    KaryRandomizedResponse rr(4, 1.0, 20, 9);
    const int n = 200000;
    int truthful = 0;
    for (int i = 0; i < n; ++i) {
        if (rr.respond(2) == 2)
            ++truthful;
    }
    double p = rr.truthProbability();
    EXPECT_NEAR(static_cast<double>(truthful) / n, p,
                5.0 * std::sqrt(p * (1.0 - p) / n));
}

TEST(KaryRR, LiesAreUniform)
{
    KaryRandomizedResponse rr(4, 1.0, 20, 11);
    const int n = 300000;
    std::vector<int> counts(4, 0);
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<size_t>(rr.respond(0))];
    // Categories 1..3 should be hit about equally.
    double expect = rr.lieProbability() * n;
    for (int c = 1; c < 4; ++c)
        EXPECT_NEAR(counts[static_cast<size_t>(c)], expect,
                    5.0 * std::sqrt(expect));
}

TEST(KaryRR, EstimateCountsDebiases)
{
    KaryRandomizedResponse rr(3, 1.0, 20);
    double p = rr.truthProbability();
    double q = rr.lieProbability();
    // True counts (600, 300, 100); expected observations follow the
    // confusion matrix exactly.
    std::vector<double> truth{600.0, 300.0, 100.0};
    double n = 1000.0;
    std::vector<uint64_t> observed(3);
    for (size_t i = 0; i < 3; ++i) {
        double others = n - truth[i];
        observed[i] = static_cast<uint64_t>(
            std::llround(truth[i] * p + others * q));
    }
    auto est = rr.estimateCounts(observed);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(est[i], truth[i], 2.0) << "i=" << i;
}

TEST(KaryRR, EstimateCountsClampsToValidRange)
{
    KaryRandomizedResponse rr(3, 1.0, 20);
    // All observations in one bucket: other estimates clamp at 0.
    auto est = rr.estimateCounts({100, 0, 0});
    EXPECT_DOUBLE_EQ(est[1], 0.0);
    EXPECT_DOUBLE_EQ(est[2], 0.0);
    EXPECT_LE(est[0], 100.0);
}

TEST(KaryRR, EstimateCountsRejectsWrongSize)
{
    KaryRandomizedResponse rr(3, 1.0);
    EXPECT_THROW(rr.estimateCounts({1, 2}), FatalError);
}

TEST(KaryRR, EndToEndFrequencyEstimation)
{
    KaryRandomizedResponse rr(4, 2.0, 20, 21);
    const int n = 100000;
    std::vector<double> truth{0.5, 0.3, 0.15, 0.05};
    std::vector<uint64_t> observed(4, 0);
    for (int i = 0; i < n; ++i) {
        double r = static_cast<double>(i % 100) / 100.0;
        int cat = r < 0.5 ? 0 : r < 0.8 ? 1 : r < 0.95 ? 2 : 3;
        ++observed[static_cast<size_t>(rr.respond(cat))];
    }
    auto est = rr.estimateCounts(observed);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(est[i] / n, truth[i], 0.02) << "i=" << i;
}

TEST(KaryRR, MoreCategoriesLowerTruthRate)
{
    KaryRandomizedResponse small(2, 1.0);
    KaryRandomizedResponse large(20, 1.0);
    EXPECT_GT(small.truthProbability(), large.truthProbability());
}

} // anonymous namespace
} // namespace ulpdp
