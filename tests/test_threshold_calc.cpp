/**
 * @file
 * Tests for threshold selection (Eqs. 13/15 and the exact searches),
 * including the reproduction finding that the paper's Eq. (15)
 * thresholding bound can admit interior PMF gaps.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/privacy_loss.h"
#include "core/threshold_calc.h"

namespace ulpdp {
namespace {

FxpMechanismParams
paperParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    return p;
}

TEST(ThresholdCalc, RejectsLossMultipleAtMostOne)
{
    ThresholdCalculator calc(paperParams());
    EXPECT_THROW(calc.closedFormIndex(RangeControl::Resampling, 1.0),
                 FatalError);
    EXPECT_THROW(calc.closedFormIndex(RangeControl::Resampling, 0.5),
                 FatalError);
    EXPECT_THROW(calc.exactIndex(RangeControl::Thresholding, 1.0),
                 FatalError);
}

TEST(ThresholdCalc, RejectsDegenerateRange)
{
    FxpMechanismParams p = paperParams();
    p.delta = 100.0; // coarser than the whole range
    EXPECT_THROW(ThresholdCalculator calc(p), FatalError);
}

TEST(ThresholdCalc, ClosedFormResamplingIsConservative)
{
    // Eq. (13) uses worst-case floor/ceil slack, so its threshold must
    // not exceed the exact one, and the loss at it must satisfy the
    // bound.
    ThresholdCalculator calc(paperParams());
    for (double n : {1.5, 2.0, 3.0}) {
        int64_t closed =
            calc.closedFormIndex(RangeControl::Resampling, n);
        int64_t exact = calc.exactIndex(RangeControl::Resampling, n);
        EXPECT_LE(closed, exact) << "n=" << n;
        EXPECT_LE(calc.exactLossAt(RangeControl::Resampling, closed),
                  n * 0.5 + 1e-9)
            << "n=" << n;
    }
}

TEST(ThresholdCalc, PaperExampleResamplingValues)
{
    // Regression anchors for the paper's running configuration
    // (Bu=17, Delta=10/32, Lap(20), eps=0.5). Values derived from
    // the exact analysis; the closed form is a few bins tighter.
    ThresholdCalculator calc(paperParams());
    EXPECT_EQ(calc.closedFormIndex(RangeControl::Resampling, 2.0), 376);
    EXPECT_EQ(calc.exactIndex(RangeControl::Resampling, 2.0), 418);
}

TEST(ThresholdCalc, ClosedFormThresholdingMatchesEq15Formula)
{
    // Direct evaluation of Eq. (15) for the paper configuration.
    FxpMechanismParams p = paperParams();
    ThresholdCalculator calc(p);
    double a = p.resolvedDelta() / p.lambda();
    for (double n : {1.5, 2.0, 3.0}) {
        double k = 0.5 +
                   (17.0 * std::log(2.0) +
                    std::log(std::exp(-0.5) - std::exp(-n * 0.5))) / a;
        EXPECT_EQ(calc.closedFormIndex(RangeControl::Thresholding, n),
                  static_cast<int64_t>(std::floor(k)))
            << "n=" << n;
    }
}

TEST(ThresholdCalc, Eq15AdmitsInteriorGaps)
{
    // Reproduction finding: for the paper's configuration the Eq. (15)
    // window extends past the first interior PMF gap (Fig. 4(b)), so
    // the *exact* worst-case loss of thresholding at the closed-form
    // threshold is infinite. The exact search lands below the gap.
    ThresholdCalculator calc(paperParams());
    int64_t gap = calc.pmf()->firstInteriorGap();
    ASSERT_GT(gap, 0);

    int64_t closed =
        calc.closedFormIndex(RangeControl::Thresholding, 2.0);
    EXPECT_GT(closed + calc.span(), gap);
    EXPECT_FALSE(std::isfinite(
        calc.exactLossAt(RangeControl::Thresholding, closed)));

    int64_t exact = calc.exactIndex(RangeControl::Thresholding, 2.0);
    ASSERT_GE(exact, 0);
    EXPECT_LE(exact + calc.span() - 1, gap);
    EXPECT_TRUE(std::isfinite(
        calc.exactLossAt(RangeControl::Thresholding, exact)));
}

TEST(ThresholdCalc, ThresholdsGrowWithLossBudget)
{
    ThresholdCalculator calc(paperParams());
    for (RangeControl kind : {RangeControl::Resampling,
                              RangeControl::Thresholding}) {
        int64_t t15 = calc.exactIndex(kind, 1.5);
        int64_t t20 = calc.exactIndex(kind, 2.0);
        int64_t t30 = calc.exactIndex(kind, 3.0);
        EXPECT_LE(t15, t20);
        EXPECT_LE(t20, t30);
    }
}

TEST(ThresholdCalc, ThresholdsGrowWithUniformBits)
{
    // More URNG bits -> finer tail probabilities -> the loss bound
    // holds farther out.
    FxpMechanismParams lo = paperParams();
    lo.uniform_bits = 13;
    FxpMechanismParams hi = paperParams();
    hi.uniform_bits = 17;
    ThresholdCalculator calc_lo(lo);
    ThresholdCalculator calc_hi(hi);
    EXPECT_LT(calc_lo.exactIndex(RangeControl::Resampling, 2.0),
              calc_hi.exactIndex(RangeControl::Resampling, 2.0));
    EXPECT_LT(calc_lo.closedFormIndex(RangeControl::Resampling, 2.0),
              calc_hi.closedFormIndex(RangeControl::Resampling, 2.0));
}

TEST(ThresholdCalc, ExactLossAtZeroThresholdFinite)
{
    // Even a zero-extension window is a valid LDP mechanism (heavily
    // clamped); its loss must be finite for both kinds.
    ThresholdCalculator calc(paperParams());
    EXPECT_TRUE(std::isfinite(
        calc.exactLossAt(RangeControl::Thresholding, 0)));
    EXPECT_TRUE(std::isfinite(
        calc.exactLossAt(RangeControl::Resampling, 0)));
}

TEST(ThresholdCalc, CoarseRngMayAdmitNoThreshold)
{
    // With very few uniform bits even small windows can distinguish
    // inputs; exactIndex may legitimately return -1 for a tight bound.
    FxpMechanismParams p = paperParams();
    p.uniform_bits = 6;
    ThresholdCalculator calc(p);
    int64_t t = calc.exactIndex(RangeControl::Resampling, 1.1);
    if (t >= 0) {
        EXPECT_LE(calc.exactLossAt(RangeControl::Resampling, t),
                  1.1 * 0.5 + 1e-9);
    } else {
        SUCCEED();
    }
}

TEST(ThresholdCalc, SpanAndPmfAccessors)
{
    ThresholdCalculator calc(paperParams());
    EXPECT_EQ(calc.span(), 32);
    EXPECT_NE(calc.pmf(), nullptr);
    EXPECT_NEAR(calc.pmf()->totalMass(), 1.0, 1e-12);
}

} // anonymous namespace
} // namespace ulpdp
