/**
 * @file
 * Tests for the exact privacy-loss analyzer: the paper's central
 * claims. The naive fixed-point baseline has infinite worst-case
 * loss (Section III-A3); resampling and thresholding with properly
 * chosen thresholds keep it bounded (Section III-B); the ideal
 * continuous mechanism would have loss exactly eps.
 */

#include <cmath>
#include <limits>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "core/output_model.h"
#include "core/privacy_loss.h"
#include "core/threshold_calc.h"

namespace ulpdp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

FxpMechanismParams
paperParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    return p;
}

std::shared_ptr<const FxpLaplacePmf>
pmfOf(const FxpMechanismParams &p)
{
    return std::make_shared<FxpLaplacePmf>(p.rngConfig());
}

TEST(PrivacyLoss, NaiveBaselineIsInfinite)
{
    FxpMechanismParams p = paperParams();
    NaiveOutputModel model(pmfOf(p), p.rangeIndexSpan());
    LossReport report = PrivacyLossAnalyzer::analyze(model);
    EXPECT_FALSE(report.bounded);
    EXPECT_EQ(report.worst_case_loss, kInf);
    EXPECT_GT(report.infinite_outputs, 0u);
}

TEST(PrivacyLoss, NaiveInfinityComesFromSupportEdges)
{
    // The output M + L is producible only by inputs near M: loss at
    // that output must be infinite.
    FxpMechanismParams p = paperParams();
    auto pmf = pmfOf(p);
    NaiveOutputModel model(pmf, p.rangeIndexSpan());
    double edge_loss = PrivacyLossAnalyzer::lossAtOutput(
        model, p.rangeIndexSpan() + pmf->maxIndex());
    EXPECT_EQ(edge_loss, kInf);
}

TEST(PrivacyLoss, NaiveCentralOutputsBounded)
{
    // Outputs inside [m, M] are producible by every input; the loss
    // there is finite and close to eps.
    FxpMechanismParams p = paperParams();
    NaiveOutputModel model(pmfOf(p), p.rangeIndexSpan());
    for (int64_t j = 0; j <= p.rangeIndexSpan(); ++j) {
        double loss = PrivacyLossAnalyzer::lossAtOutput(model, j);
        EXPECT_TRUE(std::isfinite(loss)) << "j=" << j;
        EXPECT_LT(loss, 2.0 * p.epsilon) << "j=" << j;
    }
}

TEST(PrivacyLoss, UnreachableOutputsConventionallyMinusInf)
{
    FxpMechanismParams p = paperParams();
    auto pmf = pmfOf(p);
    NaiveOutputModel model(pmf, p.rangeIndexSpan());
    // An interior PMF gap beyond every input's reach from one side:
    // far beyond the top of the support nothing is producible.
    double loss = PrivacyLossAnalyzer::lossAtOutput(
        model, p.rangeIndexSpan() + pmf->maxIndex() + 10);
    EXPECT_EQ(loss, -kInf);
}

TEST(PrivacyLoss, ResamplingWithExactThresholdBounded)
{
    FxpMechanismParams p = paperParams();
    ThresholdCalculator calc(p);
    for (double n : {1.5, 2.0, 3.0}) {
        int64_t t = calc.exactIndex(RangeControl::Resampling, n);
        ASSERT_GE(t, 0);
        ResamplingOutputModel model(calc.pmf(), calc.span(), t);
        LossReport report = PrivacyLossAnalyzer::analyze(model);
        EXPECT_TRUE(report.bounded) << "n=" << n;
        EXPECT_LE(report.worst_case_loss, n * p.epsilon + 1e-9)
            << "n=" << n;
    }
}

TEST(PrivacyLoss, ThresholdingWithExactThresholdBounded)
{
    FxpMechanismParams p = paperParams();
    ThresholdCalculator calc(p);
    for (double n : {1.5, 2.0, 3.0}) {
        int64_t t = calc.exactIndex(RangeControl::Thresholding, n);
        ASSERT_GE(t, 0);
        ThresholdingOutputModel model(calc.pmf(), calc.span(), t);
        LossReport report = PrivacyLossAnalyzer::analyze(model);
        EXPECT_TRUE(report.bounded) << "n=" << n;
        EXPECT_LE(report.worst_case_loss, n * p.epsilon + 1e-9)
            << "n=" << n;
    }
}

TEST(PrivacyLoss, TooWideWindowBreaksResampling)
{
    // A window wider than the exact threshold must eventually exceed
    // the bound (that is what "exact" means).
    FxpMechanismParams p = paperParams();
    ThresholdCalculator calc(p);
    int64_t t = calc.exactIndex(RangeControl::Resampling, 2.0);
    ResamplingOutputModel model(calc.pmf(), calc.span(), t + 1);
    LossReport report = PrivacyLossAnalyzer::analyze(model);
    EXPECT_GT(report.worst_case_loss, 2.0 * p.epsilon);
}

TEST(PrivacyLoss, LossGrowsTowardWindowEdge)
{
    // Fig. 8's shape: the per-output loss is (weakly) larger for
    // outputs farther outside the sensor range.
    FxpMechanismParams p = paperParams();
    ThresholdCalculator calc(p);
    int64_t t = calc.exactIndex(RangeControl::Thresholding, 3.0);
    ThresholdingOutputModel model(calc.pmf(), calc.span(), t);

    double central = 0.0;
    for (int64_t j = 0; j <= calc.span(); ++j)
        central = std::max(central,
                           PrivacyLossAnalyzer::lossAtOutput(model, j));
    double edge = PrivacyLossAnalyzer::lossAtOutput(
        model, calc.span() + t - 5);
    EXPECT_GE(edge, central);
}

TEST(PrivacyLoss, LossCurveSkipsUnreachable)
{
    FxpMechanismParams p = paperParams();
    ThresholdCalculator calc(p);
    int64_t t = 100;
    ResamplingOutputModel model(calc.pmf(), calc.span(), t);
    auto curve = PrivacyLossAnalyzer::lossCurve(model);
    EXPECT_FALSE(curve.empty());
    for (const auto &pt : curve) {
        EXPECT_GE(pt.output_index, model.outputLo());
        EXPECT_LE(pt.output_index, model.outputHi());
        EXPECT_TRUE(pt.loss == kInf || std::isfinite(pt.loss));
    }
}

TEST(PrivacyLoss, SatisfiesLdpHelper)
{
    FxpMechanismParams p = paperParams();
    ThresholdCalculator calc(p);
    int64_t t = calc.exactIndex(RangeControl::Resampling, 2.0);
    ResamplingOutputModel good(calc.pmf(), calc.span(), t);
    EXPECT_TRUE(PrivacyLossAnalyzer::satisfiesLdp(good,
                                                  2.0 * p.epsilon));
    NaiveOutputModel bad(calc.pmf(), calc.span());
    EXPECT_FALSE(PrivacyLossAnalyzer::satisfiesLdp(bad, 100.0));
}

TEST(PrivacyLoss, AnalyzeIndependentOfJobCount)
{
    // The chunked parallel sweep must return the serial result
    // exactly -- same sup, same tie-broken argmax output, same
    // infinite-output census -- for every job count, on both a
    // bounded model and one with infinite-loss outputs.
    FxpMechanismParams p = paperParams();
    ThresholdCalculator calc(p);
    int64_t t = calc.exactIndex(RangeControl::Resampling, 2.0);
    ResamplingOutputModel good(calc.pmf(), calc.span(), t);
    NaiveOutputModel bad(calc.pmf(), calc.span());

    for (const DiscreteOutputModel *model :
         {static_cast<const DiscreteOutputModel *>(&good),
          static_cast<const DiscreteOutputModel *>(&bad)}) {
        LossReport serial = PrivacyLossAnalyzer::analyze(*model, 1);
        for (int jobs : {0, 2, 3, 7}) {
            LossReport par =
                PrivacyLossAnalyzer::analyze(*model, jobs);
            EXPECT_EQ(par.worst_case_loss, serial.worst_case_loss)
                << "jobs=" << jobs;
            EXPECT_EQ(par.worst_output, serial.worst_output)
                << "jobs=" << jobs;
            EXPECT_EQ(par.bounded, serial.bounded)
                << "jobs=" << jobs;
            EXPECT_EQ(par.infinite_outputs, serial.infinite_outputs)
                << "jobs=" << jobs;
        }
    }
}

/** Parameterized sweep: the exact threshold keeps every
 *  configuration bounded across Bu / eps / resolution. */
class LossSweep
    : public ::testing::TestWithParam<
          std::tuple<int, double, double, double>>
{
};

TEST_P(LossSweep, ExactThresholdsAlwaysValid)
{
    auto [bu, eps, delta_frac, n] = GetParam();
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = eps;
    p.uniform_bits = bu;
    p.output_bits = 14;
    p.delta = 10.0 * delta_frac;
    ThresholdCalculator calc(p);

    for (RangeControl kind : {RangeControl::Resampling,
                              RangeControl::Thresholding}) {
        int64_t t = calc.exactIndex(kind, n);
        if (t < 0)
            continue; // configuration too coarse for this bound
        double loss = calc.exactLossAt(kind, t);
        EXPECT_LE(loss, n * eps * (1.0 + 1e-9) + 1e-12)
            << "bu=" << bu << " eps=" << eps << " kind="
            << static_cast<int>(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LossSweep,
    ::testing::Values(
        std::make_tuple(12, 0.5, 1.0 / 32.0, 2.0),
        std::make_tuple(14, 0.5, 1.0 / 32.0, 2.0),
        std::make_tuple(17, 0.5, 1.0 / 32.0, 1.5),
        std::make_tuple(17, 0.5, 1.0 / 32.0, 3.0),
        std::make_tuple(17, 1.0, 1.0 / 32.0, 2.0),
        std::make_tuple(17, 0.25, 1.0 / 32.0, 2.0),
        std::make_tuple(17, 0.5, 1.0 / 64.0, 2.0),
        std::make_tuple(17, 0.5, 1.0 / 16.0, 2.0),
        std::make_tuple(20, 0.5, 1.0 / 32.0, 2.0)));

} // anonymous namespace
} // namespace ulpdp
