/**
 * @file
 * Tests for the mechanism registry: name lookup, capability
 * filtering, lowering resolution, output-model sanity at small Bu,
 * and the bounded-Laplace variance law against its closed form.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/bounded_laplace.h"
#include "core/mechanism_registry.h"
#include "core/threshold_calc.h"

namespace ulpdp {
namespace {

/** The Tables II-V range at a certifier-friendly eps (eps = 1: at
 *  Bu = 8 the discrete-Laplace scale correction cannot clear a
 *  2 * 0.5 bound -- its ln 2 zero-atom penalty is scale-invariant
 *  and 256 URNG states leave no margin). */
FxpMechanismParams
smallProfile(int bu = 8)
{
    FxpMechanismParams p;
    p.range = SensorRange(-20.0, 60.0);
    p.epsilon = 1.0;
    p.uniform_bits = bu;
    p.output_bits = 14;
    p.delta = p.range.length() / 32.0;
    return p;
}

MechanismSpec
smallSpec(int bu = 8)
{
    MechanismSpec spec;
    spec.params = smallProfile(bu);
    spec.loss_multiple = 2.0;
    return spec;
}

bool
contains(const std::vector<std::string> &v, const std::string &s)
{
    return std::find(v.begin(), v.end(), s) != v.end();
}

TEST(MechanismRegistry, BuiltInsAreRegistered)
{
    auto &reg = MechanismRegistry::instance();
    for (const char *name :
         {"resampling", "thresholding", "constant-time-resampling",
          "bounded-laplace", "discrete-laplace"}) {
        const auto *entry = reg.find(name);
        ASSERT_NE(entry, nullptr) << name;
        EXPECT_EQ(entry->name, name);
        EXPECT_FALSE(entry->summary.empty()) << name;
        EXPECT_TRUE(static_cast<bool>(entry->make)) << name;
        EXPECT_TRUE(static_cast<bool>(entry->model)) << name;
    }
}

TEST(MechanismRegistry, UnknownNamesAreRejected)
{
    auto &reg = MechanismRegistry::instance();
    EXPECT_EQ(reg.find("gaussian"), nullptr);
    EXPECT_EQ(reg.find(""), nullptr);
    EXPECT_EQ(reg.find("Resampling"), nullptr); // names are exact
}

TEST(MechanismRegistry, NonLdpBaselinesAreNotRegistered)
{
    // Registration implies certifiability: the naive baseline (not
    // LDP) and the ideal float mechanism (no FxP PMF) must not
    // appear.
    auto &reg = MechanismRegistry::instance();
    EXPECT_EQ(reg.find("naive"), nullptr);
    EXPECT_EQ(reg.find("ideal"), nullptr);
}

TEST(MechanismRegistry, CapabilityFiltering)
{
    auto &reg = MechanismRegistry::instance();

    auto batch = reg.namesWithCaps(mechcap::kBatch);
    EXPECT_TRUE(contains(batch, "resampling"));
    EXPECT_TRUE(contains(batch, "thresholding"));
    EXPECT_TRUE(contains(batch, "bounded-laplace"));
    EXPECT_TRUE(contains(batch, "discrete-laplace"));
    EXPECT_FALSE(contains(batch, "constant-time-resampling"));

    auto ct = reg.namesWithCaps(mechcap::kConstantTime);
    EXPECT_TRUE(contains(ct, "thresholding"));
    EXPECT_TRUE(contains(ct, "constant-time-resampling"));
    EXPECT_TRUE(contains(ct, "bounded-laplace"));
    EXPECT_FALSE(contains(ct, "resampling"));

    auto bounded = reg.namesWithCaps(mechcap::kBoundedOutput);
    ASSERT_EQ(bounded.size(), 1u);
    EXPECT_EQ(bounded[0], "bounded-laplace");

    // Conjunction: both flags required.
    auto both =
        reg.namesWithCaps(mechcap::kBatch | mechcap::kConstantTime);
    EXPECT_TRUE(contains(both, "thresholding"));
    EXPECT_TRUE(contains(both, "bounded-laplace"));
    EXPECT_FALSE(contains(both, "resampling"));
    EXPECT_FALSE(contains(both, "constant-time-resampling"));

    EXPECT_EQ(reg.namesWithCaps(~0u).size(), 0u);
    EXPECT_EQ(reg.namesWithCaps(0).size(), reg.names().size());
}

TEST(MechanismRegistry, LoweringMatchesExactThresholdSearch)
{
    auto &reg = MechanismRegistry::instance();
    MechanismSpec spec = smallSpec(17);

    ThresholdCalculator calc(spec.params);
    int64_t t_res = calc.exactIndex(RangeControl::Resampling,
                                    spec.loss_multiple);
    int64_t t_thr = calc.exactIndex(RangeControl::Thresholding,
                                    spec.loss_multiple);

    MechanismLowering res = reg.at("resampling").lower(spec);
    EXPECT_EQ(res.threshold_index, t_res);
    EXPECT_TRUE(res.truncated);
    EXPECT_FALSE(res.clamp);

    MechanismLowering thr = reg.at("thresholding").lower(spec);
    EXPECT_EQ(thr.threshold_index, t_thr);
    EXPECT_TRUE(thr.clamp);
    EXPECT_FALSE(thr.truncated);

    // The spec override short-circuits the search.
    spec.threshold_index = 3;
    EXPECT_EQ(reg.at("resampling").lower(spec).threshold_index, 3);
}

TEST(MechanismRegistry, BoundedLoweringConfinesToSensorRange)
{
    MechanismSpec spec = smallSpec(17);
    MechanismLowering low =
        MechanismRegistry::instance().at("bounded-laplace")
            .lower(spec);
    EXPECT_EQ(low.threshold_index, 0);
    EXPECT_TRUE(low.truncated);
    EXPECT_FALSE(low.clamp);
    // The Holohan correction always widens the scale beyond the
    // plain Laplace scale at the target budget, b > d / eps_t, i.e.
    // lambda_scale > 1 / loss_multiple.
    EXPECT_GT(low.params.lambda_scale, 1.0 / spec.loss_multiple);
    EXPECT_NE(low.params.lambda_scale, 1.0);
}

TEST(MechanismRegistry, DiscreteLoweringSelectsFloorRounding)
{
    MechanismLowering low =
        MechanismRegistry::instance().at("discrete-laplace")
            .lower(smallSpec(17));
    EXPECT_EQ(low.params.rounding,
              FxpLaplaceConfig::Rounding::Floor);
    EXPECT_TRUE(low.truncated);
    EXPECT_GE(low.threshold_index, 0);
}

TEST(MechanismRegistry, ConstantTimeHasNoFleetLowering)
{
    const auto &entry =
        MechanismRegistry::instance().at("constant-time-resampling");
    EXPECT_FALSE(static_cast<bool>(entry.lower));
}

TEST(MechanismRegistry, ModelsAreProperDistributionsAtBuEight)
{
    // Every registered mechanism's enumerated conditional output
    // model must be a probability distribution for every input: the
    // certifier's Eq. (4) scan is only sound over normalized columns.
    auto &reg = MechanismRegistry::instance();
    MechanismSpec spec = smallSpec(8);
    spec.enumerate_pmf = true;
    for (const std::string &name : reg.names()) {
        auto model = reg.at(name).model(spec);
        ASSERT_NE(model, nullptr) << name;
        for (int64_t i = 0; i <= model->span(); ++i) {
            double mass = 0.0;
            for (int64_t j = model->outputLo();
                 j <= model->outputHi(); ++j)
                mass += model->prob(j, i);
            EXPECT_NEAR(mass, 1.0, 1e-9)
                << name << " input " << i;
        }
    }
}

TEST(MechanismRegistry, FactoriesProduceLdpMechanisms)
{
    auto &reg = MechanismRegistry::instance();
    MechanismSpec spec = smallSpec(17);
    for (const std::string &name : reg.names()) {
        auto mech = reg.at(name).make(spec);
        ASSERT_NE(mech, nullptr) << name;
        EXPECT_TRUE(mech->guaranteesLdp()) << name;
        NoisedReport r = mech->noise(0.0);
        EXPECT_GE(r.samples_drawn, 1u) << name;
    }
}

TEST(MechanismRegistry, BoundedOutputsNeverLeaveTheRange)
{
    auto &reg = MechanismRegistry::instance();
    MechanismSpec spec = smallSpec(17);
    auto mech = reg.at("bounded-laplace").make(spec);
    const SensorRange range = spec.params.range;
    for (double x : {range.lo, -1.25, 20.0, 59.5, range.hi}) {
        for (int i = 0; i < 2000; ++i) {
            NoisedReport r = mech->noise(x);
            EXPECT_GE(r.value, range.lo);
            EXPECT_LE(r.value, range.hi);
        }
    }
}

TEST(MechanismRegistry, BoundedVarianceMatchesClosedForm)
{
    // The FxP bounded mechanism's sample variance must track the
    // continuous truncated-Laplace closed form at the mechanism's
    // resolved scale b = lambda. The FxP grid confines outputs to
    // grid points inside the range, but each boundary point absorbs
    // the continuous mass of its whole half-open bin, so the
    // matching continuous truncation bounds sit half a grid step
    // outside the sensor range.
    MechanismSpec spec = smallSpec(17);
    auto mech = MechanismRegistry::instance()
        .at("bounded-laplace").make(spec);
    FxpMechanismParams resolved =
        BoundedLaplaceMechanism::resolveParams(spec.params,
                                               spec.loss_multiple);
    const double b = resolved.lambda();
    const double half = 0.5 * resolved.resolvedDelta();
    const SensorRange range = spec.params.range;

    for (double x : {20.0, -10.0, 55.0}) {
        const int n = 200000;
        double sum = 0.0, sum2 = 0.0;
        for (int i = 0; i < n; ++i) {
            double y = mech->noise(x).value;
            sum += y;
            sum2 += y * y;
        }
        double mean = sum / n;
        double var = sum2 / n - mean * mean;
        double expect = BoundedLaplaceMechanism::truncatedVariance(
            b, range.lo - half, range.hi + half, x);
        EXPECT_NEAR(var, expect, 0.03 * expect) << "x=" << x;
    }
}

TEST(MechanismRegistry, HolohanFixedPointSolvesItsEquation)
{
    const double d = 80.0;
    for (double eps : {0.25, 0.5, 1.0, 2.0}) {
        double b = BoundedLaplaceMechanism::holohanScale(d, eps);
        EXPECT_GT(b, d / eps); // strictly wider than plain Laplace
        double dc = 2.0 / (1.0 + std::exp(-d / (2.0 * b)));
        EXPECT_NEAR(b, d / (eps - std::log(dc)), 1e-6 * b);
    }
}

} // namespace
} // namespace ulpdp
