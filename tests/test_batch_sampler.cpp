/**
 * @file
 * Tests of the batch sampling layer: the TausBank lane-determinism
 * rule (lane l bit-identical to the scalar Tausworthe twin, SIMD or
 * not), the BatchSampler rect contracts against the per-draw scalar
 * sampler, the degenerate-seed bump parity with the scalar
 * constructor, the integrity-bail fallback semantics, the mechanism
 * sampleBatch == looped noise() equivalence, and the fleet
 * fingerprint's immunity to every batch-layer switch.
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/resampling_mechanism.h"
#include "core/thresholding_mechanism.h"
#include "fleet/fleet.h"
#include "rng/batch_sampler.h"
#include "rng/fxp_laplace.h"
#include "rng/laplace_table.h"
#include "rng/taus_bank.h"
#include "rng/tausworthe.h"

namespace ulpdp {
namespace {

constexpr size_t kLanes = TausBank::kMaxLanes;

/** Pin (or unpin) the portable kernel for one scope; always restores
 *  the default so test order cannot leak state. */
struct ScopedScalarKernel
{
    explicit ScopedScalarKernel(bool force)
    {
        TausBank::forceScalarKernel(force);
    }
    ~ScopedScalarKernel() { TausBank::forceScalarKernel(false); }
};

/** Route fleet blocks through the scalar path for one scope. */
struct ScopedScalarBlocks
{
    ScopedScalarBlocks() { FleetRunner::forceScalarBlocks(true); }
    ~ScopedScalarBlocks() { FleetRunner::forceScalarBlocks(false); }
};

/** A table-path RNG configuration at the given URNG width. The
 *  paper-style scale (Lap(20) on Delta = 10/32) keeps the magnitude
 *  span well inside the 14-bit output word, so the saturation
 *  comparator only ever fires on genuine corruption. */
FxpLaplaceConfig
tableConfig(int uniform_bits)
{
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = uniform_bits;
    cfg.output_bits = 14;
    cfg.delta = 10.0 / 32.0;
    cfg.lambda = 20.0;
    cfg.sample_path = FxpLaplaceConfig::SamplePath::Table;
    return cfg;
}

// ---------------------------------------------------------------------
// SplitMix64 finalizer inversion (same recipe as the seeder tests):
// crafting degenerate seeds beats the ~2^27-try random search.
// ---------------------------------------------------------------------

uint64_t
mulInverse(uint64_t a)
{
    uint64_t x = a;
    for (int i = 0; i < 6; ++i)
        x *= 2 - a * x;
    return x;
}

uint64_t
invXorShift(uint64_t z, int shift)
{
    uint64_t x = z;
    for (int i = 0; i < 7; ++i)
        x = z ^ (x >> shift);
    return x;
}

uint64_t
smFinalizeInverse(uint64_t z)
{
    z = invXorShift(z, 31);
    z *= mulInverse(0x94d049bb133111ebULL);
    z = invXorShift(z, 27);
    z *= mulInverse(0xbf58476d1ce4e5b9ULL);
    z = invXorShift(z, 30);
    return z;
}

constexpr uint64_t kSmGamma = 0x9e3779b97f4a7c15ULL;

// ---------------------------------------------------------------------
// TausBank: lane determinism
// ---------------------------------------------------------------------

TEST(TausBank, LanesBitIdenticalToScalarTwins)
{
    // The core contract: lane l of the bank reproduces the word
    // sequence of a scalar Tausworthe(seeds[l]) exactly -- on both the
    // portable kernel and whatever SIMD kernel this host runs.
    for (bool force : {false, true}) {
        ScopedScalarKernel guard(force);

        uint64_t seeds[kLanes];
        TausBank::deriveLaneSeeds(0xfeedULL, seeds, kLanes);
        TausBank bank(seeds, kLanes);

        std::vector<Tausworthe> twins;
        for (size_t l = 0; l < kLanes; ++l)
            twins.emplace_back(seeds[l]);

        uint32_t words[kLanes];
        uint64_t mismatches = 0;
        for (size_t step = 0; step < 100000; ++step) {
            bank.nextWords(words);
            for (size_t l = 0; l < kLanes; ++l)
                mismatches += words[l] != twins[l].next32();
        }
        EXPECT_EQ(mismatches, 0u) << "forced scalar: " << force;

        // Final component states line up too, so a stream handed back
        // to a scalar generator continues seamlessly.
        for (size_t l = 0; l < kLanes; ++l) {
            EXPECT_EQ(bank.s1(l), twins[l].s1());
            EXPECT_EQ(bank.s2(l), twins[l].s2());
            EXPECT_EQ(bank.s3(l), twins[l].s3());
        }
    }
}

TEST(TausBank, KernelSchedulesProduceIdenticalWords)
{
    // SIMD and portable kernels are alternative schedules of the same
    // arithmetic: same seeds, same words, bit for bit. (On hosts
    // without a compiled-in SIMD kernel both runs take the portable
    // path and the test is trivially green.)
    uint64_t seeds[kLanes];
    TausBank::deriveLaneSeeds(0x5eedULL, seeds, kLanes);

    std::vector<uint32_t> simd_words;
    {
        TausBank bank(seeds, kLanes);
        uint32_t w[kLanes];
        for (size_t step = 0; step < 65536; ++step) {
            bank.nextWords(w);
            simd_words.insert(simd_words.end(), w, w + kLanes);
        }
    }

    ScopedScalarKernel guard(true);
    TausBank bank(seeds, kLanes);
    uint32_t w[kLanes];
    uint64_t mismatches = 0;
    for (size_t step = 0; step < 65536; ++step) {
        bank.nextWords(w);
        for (size_t l = 0; l < kLanes; ++l)
            mismatches += w[l] != simd_words[step * kLanes + l];
    }
    EXPECT_EQ(mismatches, 0u);
}

TEST(TausBank, SeedAppliesScalarConstructorBumpsPerLane)
{
    // Crafted degenerate seeds (component word below its LFSR
    // minimum) must land each lane in the exact state the scalar
    // constructor's minimum-enforcement bumps produce -- the bank must
    // not invent its own seeding rule, or a lane would silently fork
    // from its scalar twin.
    uint64_t seeds[kLanes];
    TausBank::deriveLaneSeeds(0xabcULL, seeds, kLanes);
    seeds[0] = smFinalizeInverse(0xdeadbeef00000000ULL) - kSmGamma;
    seeds[1] = smFinalizeInverse(0x1234567800000005ULL) - 2 * kSmGamma;
    seeds[2] = smFinalizeInverse(0xcafef00d0000000fULL) - 3 * kSmGamma;
    seeds[3] = 0;
    ASSERT_TRUE(Tausworthe::seedDegenerate(seeds[0]));
    ASSERT_TRUE(Tausworthe::seedDegenerate(seeds[1]));
    ASSERT_TRUE(Tausworthe::seedDegenerate(seeds[2]));
    ASSERT_TRUE(Tausworthe::seedDegenerate(seeds[3]));

    TausBank bank(seeds, kLanes);
    std::vector<Tausworthe> twins;
    for (size_t l = 0; l < kLanes; ++l)
        twins.emplace_back(seeds[l]);

    for (size_t l = 0; l < kLanes; ++l) {
        EXPECT_EQ(bank.s1(l), twins[l].s1()) << "lane " << l;
        EXPECT_EQ(bank.s2(l), twins[l].s2()) << "lane " << l;
        EXPECT_EQ(bank.s3(l), twins[l].s3()) << "lane " << l;
    }

    uint32_t words[kLanes];
    uint64_t mismatches = 0;
    for (size_t step = 0; step < 10000; ++step) {
        bank.nextWords(words);
        for (size_t l = 0; l < kLanes; ++l)
            mismatches += words[l] != twins[l].next32();
    }
    EXPECT_EQ(mismatches, 0u);
}

TEST(TausBank, DeriveLaneSeedsCleanDistinctDeterministic)
{
    for (uint64_t master : {uint64_t{0}, uint64_t{1},
                            uint64_t{0xdeadbeefULL}, ~uint64_t{0}}) {
        uint64_t a[kLanes], b[kLanes];
        TausBank::deriveLaneSeeds(master, a, kLanes);
        TausBank::deriveLaneSeeds(master, b, kLanes);
        for (size_t i = 0; i < kLanes; ++i) {
            EXPECT_FALSE(Tausworthe::seedDegenerate(a[i]));
            EXPECT_EQ(a[i], b[i]);
            for (size_t j = i + 1; j < kLanes; ++j)
                EXPECT_NE(a[i], a[j]);
        }
    }
}

TEST(TausBank, AdoptStateAndLaneStepInterleaveWithLockstep)
{
    // Mid-stream adoption plus arbitrary interleaving of full-width
    // steps and single-lane fixup steps: every lane must observe the
    // same word sequence as its scalar twin no matter how the two
    // entry points mix (this is what the truncated-rect rejection
    // fixups lean on).
    std::vector<Tausworthe> twins;
    twins.emplace_back(11u);
    twins.emplace_back(22u);
    twins.emplace_back(33u);
    for (int i = 0; i < 1000; ++i)
        twins[0].next32();
    for (int i = 0; i < 77; ++i)
        twins[2].next32();

    uint32_t s1[3], s2[3], s3[3];
    for (size_t l = 0; l < 3; ++l) {
        s1[l] = twins[l].s1();
        s2[l] = twins[l].s2();
        s3[l] = twins[l].s3();
    }
    TausBank bank;
    bank.adoptState(s1, s2, s3, 3);

    uint32_t words[3];
    for (size_t step = 0; step < 5000; ++step) {
        if (step % 3 == 1) {
            size_t lane = step % bank.lanes();
            EXPECT_EQ(bank.next32Lane(lane), twins[lane].next32());
        } else {
            bank.nextWords(words);
            for (size_t l = 0; l < 3; ++l)
                EXPECT_EQ(words[l], twins[l].next32());
        }
    }
}

// ---------------------------------------------------------------------
// BatchSampler: rect contracts against the per-draw scalar sampler
// ---------------------------------------------------------------------

TEST(BatchSampler, RectMatchesScalarDrawsAcrossUniformBits)
{
    // Lane-vs-scalar sweep: Bu in {8, 12, 16}, >= 10^6 unbounded
    // draws per lane, every draw compared bit-for-bit against the
    // per-draw scalar fast path on the same stream.
    for (int bu : {8, 12, 16}) {
        FxpLaplaceConfig cfg = tableConfig(bu);
        FxpLaplaceRng proto(cfg, 1);
        auto table = proto.sharedTable();
        ASSERT_NE(table, nullptr) << "Bu " << bu;

        uint64_t seeds[kLanes];
        TausBank::deriveLaneSeeds(0xb00b5ULL + bu, seeds, kLanes);
        BatchSampler bs(table, bu, proto.quantizer().maxIndex());
        bs.seedLanes(seeds, kLanes);

        std::vector<FxpLaplaceRng> refs;
        for (size_t l = 0; l < kLanes; ++l)
            refs.emplace_back(cfg, seeds[l]);

        constexpr size_t kTrials = 512;
        constexpr size_t kChunks = 2048; // > 10^6 draws per lane
        std::vector<int64_t> rect(kTrials * kLanes);
        uint64_t mismatches = 0;
        for (size_t c = 0; c < kChunks; ++c) {
            ASSERT_TRUE(bs.sampleRect(rect.data(), kTrials));
            for (size_t t = 0; t < kTrials; ++t)
                for (size_t l = 0; l < kLanes; ++l)
                    mismatches += rect[t * kLanes + l] !=
                                  refs[l].sampleIndexFast();
        }
        EXPECT_EQ(mismatches, 0u) << "Bu " << bu;
    }
}

TEST(BatchSampler, TruncatedRectMatchesScalarDrawsAcrossUniformBits)
{
    // Same sweep for the window-confined path: lane l's column must
    // equal repeated sampleIndexTruncated(win[l]) on lane l's stream,
    // with a different window per lane so the hoisted per-lane
    // acceptance masses and rank widths all differ.
    for (int bu : {8, 12, 16}) {
        FxpLaplaceConfig cfg = tableConfig(bu);
        FxpLaplaceRng proto(cfg, 1);
        auto table = proto.sharedTable();
        ASSERT_NE(table, nullptr) << "Bu " << bu;

        uint64_t seeds[kLanes];
        TausBank::deriveLaneSeeds(0x7247ULL + bu, seeds, kLanes);
        BatchSampler bs(table, bu, proto.quantizer().maxIndex());
        bs.seedLanes(seeds, kLanes);

        BatchSampler::Window win[kLanes];
        for (size_t l = 0; l < kLanes; ++l) {
            win[l].lo = -static_cast<int64_t>(2 + 3 * l);
            win[l].hi = static_cast<int64_t>(1 + (5 * l) % 23);
        }

        std::vector<FxpLaplaceRng> refs;
        for (size_t l = 0; l < kLanes; ++l)
            refs.emplace_back(cfg, seeds[l]);

        constexpr size_t kTrials = 512;
        constexpr size_t kChunks = 2048; // > 10^6 draws per lane
        std::vector<int64_t> rect(kTrials * kLanes);
        uint64_t mismatches = 0;
        for (size_t c = 0; c < kChunks; ++c) {
            ASSERT_TRUE(
                bs.sampleTruncatedRect(win, rect.data(), kTrials));
            for (size_t t = 0; t < kTrials; ++t)
                for (size_t l = 0; l < kLanes; ++l) {
                    int64_t want = 0;
                    ASSERT_TRUE(refs[l].sampleIndexTruncated(
                        win[l].lo, win[l].hi, want));
                    mismatches += rect[t * kLanes + l] != want;
                }
        }
        EXPECT_EQ(mismatches, 0u) << "Bu " << bu;
    }
}

TEST(BatchSampler, ForcedScalarKernelSamplesIdenticalRects)
{
    // Full sampling path (bank words -> table lookups -> signed
    // indices) under both kernel schedules: bit-identical rects.
    FxpLaplaceConfig cfg = tableConfig(12);
    FxpLaplaceRng proto(cfg, 1);
    auto table = proto.sharedTable();
    ASSERT_NE(table, nullptr);

    uint64_t seeds[kLanes];
    TausBank::deriveLaneSeeds(0xface5ULL, seeds, kLanes);

    constexpr size_t kTrials = 4096;
    std::vector<int64_t> simd_rect(kTrials * kLanes);
    {
        BatchSampler bs(table, 12, proto.quantizer().maxIndex());
        bs.seedLanes(seeds, kLanes);
        ASSERT_TRUE(bs.sampleRect(simd_rect.data(), kTrials));
    }

    ScopedScalarKernel guard(true);
    std::vector<int64_t> scalar_rect(kTrials * kLanes);
    BatchSampler bs(table, 12, proto.quantizer().maxIndex());
    bs.seedLanes(seeds, kLanes);
    ASSERT_TRUE(bs.sampleRect(scalar_rect.data(), kTrials));
    EXPECT_EQ(simd_rect, scalar_rect);
}

// ---------------------------------------------------------------------
// Integrity bail and scalar-redo semantics
// ---------------------------------------------------------------------

TEST(BatchSampler, CorruptedTableFailsBatchOnlyWhenChecksOn)
{
    FxpLaplaceConfig cfg = tableConfig(12);
    FxpLaplaceRng proto(cfg, 1);
    auto shared = proto.sharedTable();
    ASSERT_NE(shared, nullptr);
    LaplaceSampleTable *table = proto.mutableTable();
    ASSERT_NE(table, nullptr);

    // Set the high bit of every direct entry and every rank entry:
    // each served magnitude index jumps above the saturation index
    // (direct) or escapes any truncation window (rank), so the very
    // first draw meets a suspect entry.
    const size_t direct_bytes = static_cast<size_t>(
        table->states() * sizeof(uint16_t));
    for (size_t i = 0; i < table->states(); ++i) {
        table->flipBit(2 * i + 1, 7);
        table->flipBit(direct_bytes + 2 * i + 1, 7);
    }

    uint64_t seeds[kLanes];
    TausBank::deriveLaneSeeds(0xc0ffeeULL, seeds, kLanes);
    BatchSampler::Window win[kLanes];
    for (size_t l = 0; l < kLanes; ++l)
        win[l] = {-4, 4};
    std::vector<int64_t> rect(64 * kLanes);

    {
        // Hardened: the batch reports the comparator trip and serves
        // nothing; the caller's scalar redo owns the quarantine.
        BatchSampler bs(shared, 12, proto.quantizer().maxIndex(),
                        true);
        bs.seedLanes(seeds, kLanes);
        EXPECT_FALSE(bs.sampleRect(rect.data(), 64));
        bs.seedLanes(seeds, kLanes);
        EXPECT_FALSE(bs.sampleTruncatedRect(win, rect.data(), 64));
    }
    {
        // Unhardened silicon: suspect entries are served like any
        // other, exactly as the scalar path with checks disabled.
        BatchSampler bs(shared, 12, proto.quantizer().maxIndex(),
                        false);
        bs.seedLanes(seeds, kLanes);
        EXPECT_TRUE(bs.sampleRect(rect.data(), 64));
    }
}

TEST(FxpLaplace, BatchedFallbackMatchesPerDrawQuarantine)
{
    // sampleBatch rides the one-lane bank mirror; when the table is
    // corrupted the bank bails and the scalar per-draw loop redoes the
    // batch from the untouched stream state, quarantining at the exact
    // draw the comparator trips. The whole episode must be
    // bit-identical to never having had a batch path at all.
    FxpLaplaceConfig cfg = tableConfig(12);
    FxpLaplaceRng batched(cfg, 77);
    FxpLaplaceRng per_draw(cfg, 77);

    // Corrupt the same direct-table span in both RNGs' private
    // tables (half the slots: the stream deterministically meets one
    // within a couple of draws).
    for (FxpLaplaceRng *rng : {&batched, &per_draw}) {
        rng->table();
        LaplaceSampleTable *t = rng->mutableTable();
        ASSERT_NE(t, nullptr);
        for (size_t i = 1024; i < 3072; ++i)
            t->flipBit(2 * i + 1, 7);
    }

    constexpr size_t kDraws = 4096;
    std::vector<int64_t> batch_out(kDraws);
    batched.sampleBatch(batch_out.data(), kDraws);
    std::vector<int64_t> loop_out(kDraws);
    for (size_t i = 0; i < kDraws; ++i)
        loop_out[i] = per_draw.sampleIndexFast();

    EXPECT_EQ(batch_out, loop_out);
    EXPECT_TRUE(batched.integrityFault());
    EXPECT_TRUE(per_draw.integrityFault());
    EXPECT_EQ(batched.integrityDetections(),
              per_draw.integrityDetections());
    EXPECT_EQ(batched.samplesDrawn(), per_draw.samplesDrawn());
    EXPECT_EQ(batched.urng().s1(), per_draw.urng().s1());
    EXPECT_EQ(batched.urng().s2(), per_draw.urng().s2());
    EXPECT_EQ(batched.urng().s3(), per_draw.urng().s3());
}

TEST(FxpLaplace, RngCopiesShareOneTableEnumeration)
{
    // The fleet clones a prototype RNG per worker; every clone must
    // reference the prototype's enumeration rather than re-running or
    // copying it (the per-block allocation audit).
    FxpLaplaceConfig cfg = tableConfig(12);
    FxpLaplaceRng proto(cfg, 1);
    auto table = proto.sharedTable();
    ASSERT_NE(table, nullptr);

    FxpLaplaceRng clone = proto;
    EXPECT_EQ(clone.sharedTable().get(), table.get());
}

// ---------------------------------------------------------------------
// Mechanism batch entry points
// ---------------------------------------------------------------------

std::vector<double>
syntheticReadings(size_t n)
{
    std::vector<double> xs(n);
    for (size_t i = 0; i < n; ++i)
        xs[i] = static_cast<double>((i * 37) % 1000) * 0.01;
    return xs;
}

FxpMechanismParams
mechanismParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;
    p.seed = 7;
    return p;
}

TEST(MechanismBatch, ThresholdingMatchesLoopedNoise)
{
    constexpr size_t kReports = 4096;
    std::vector<double> xs = syntheticReadings(kReports);

    ThresholdingMechanism looped(mechanismParams(), 48);
    ThresholdingMechanism batched(mechanismParams(), 48);

    std::vector<double> want(kReports), got(kReports);
    for (size_t i = 0; i < kReports; ++i)
        want[i] = looped.noise(xs[i]).value;
    batched.sampleBatch(xs.data(), got.data(), kReports);

    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          kReports * sizeof(double)), 0);
    EXPECT_EQ(batched.clampedReports(), looped.clampedReports());
    EXPECT_GT(batched.clampedReports(), 0u); // window tight enough
    EXPECT_EQ(batched.totalReports(), looped.totalReports());
    EXPECT_EQ(batched.rng().samplesDrawn(),
              looped.rng().samplesDrawn());
}

TEST(MechanismBatch, ResamplingMatchesLoopedNoise)
{
    constexpr size_t kReports = 4096;
    std::vector<double> xs = syntheticReadings(kReports);

    ResamplingMechanism looped(mechanismParams(), 8);
    ResamplingMechanism batched(mechanismParams(), 8);

    std::vector<double> want(kReports), got(kReports);
    for (size_t i = 0; i < kReports; ++i)
        want[i] = looped.noise(xs[i]).value;
    batched.sampleBatch(xs.data(), got.data(), kReports);

    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          kReports * sizeof(double)), 0);
    EXPECT_EQ(batched.totalSamplesDrawn(),
              looped.totalSamplesDrawn());
    EXPECT_GT(batched.totalSamplesDrawn(),
              batched.totalReports()); // redraws actually happened
    EXPECT_EQ(batched.totalReports(), looped.totalReports());
    EXPECT_EQ(batched.rng().samplesDrawn(),
              looped.rng().samplesDrawn());
}

// ---------------------------------------------------------------------
// Fleet fingerprint immunity to every batch-layer switch
// ---------------------------------------------------------------------

FleetConfig
batchFleet()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;

    FleetConfig fc;
    fc.master_seed = 424242;
    fc.block_nodes = 256;
    CohortConfig thr;
    thr.name = "thr";
    thr.mechanism = CohortMechanism::Thresholding;
    thr.params = p;
    thr.nodes = 2000;
    thr.reports_per_node = 4;
    thr.budget_per_node = 2.5; // 2 fresh, 2 replayed
    thr.analyze_loss = false;
    CohortConfig res;
    res.name = "res";
    res.mechanism = CohortMechanism::Resampling;
    res.params = p;
    res.nodes = 2000;
    res.reports_per_node = 3;
    res.analyze_loss = false;
    CohortConfig naive;
    naive.name = "naive";
    naive.mechanism = CohortMechanism::Naive;
    naive.params = p;
    naive.nodes = 1000;
    naive.reports_per_node = 2;
    naive.analyze_loss = false;
    fc.cohorts = {thr, res, naive};
    return fc;
}

TEST(FleetBatch, FingerprintImmuneToScalarBlockFallback)
{
    // The batch layer's end-to-end contract: routing every block
    // through the per-draw scalar path instead must reproduce the
    // merged report bit for bit (this is also the path a batch
    // integrity bail falls back to, so the fallback is proven
    // lossless here).
    FleetRunner runner(batchFleet());
    FleetReport batched = runner.run(2);
    uint64_t scalar_fp = 0;
    {
        ScopedScalarBlocks guard;
        FleetReport scalar = runner.run(2);
        scalar_fp = scalar.fingerprint();
        ASSERT_EQ(batched.cohorts.size(), scalar.cohorts.size());
        for (size_t c = 0; c < batched.cohorts.size(); ++c) {
            EXPECT_EQ(batched.cohorts[c].checksum,
                      scalar.cohorts[c].checksum);
            EXPECT_EQ(batched.cohorts[c].samples_drawn,
                      scalar.cohorts[c].samples_drawn);
            EXPECT_EQ(batched.cohorts[c].resample_overflows,
                      scalar.cohorts[c].resample_overflows);
        }
    }
    EXPECT_EQ(batched.fingerprint(), scalar_fp);
}

TEST(FleetBatch, FingerprintImmuneToKernelChoice)
{
    // Runtime analogue of building with ULPDP_SIMD=OFF: pinning the
    // portable kernel must not move a single bit of the merged
    // report, at more than one thread count.
    FleetRunner runner(batchFleet());
    FleetReport simd1 = runner.run(1);
    FleetReport simd4 = runner.run(4);
    EXPECT_EQ(simd1.fingerprint(), simd4.fingerprint());

    ScopedScalarKernel guard(true);
    FleetReport scalar1 = runner.run(1);
    FleetReport scalar4 = runner.run(4);
    EXPECT_EQ(scalar1.fingerprint(), simd1.fingerprint());
    EXPECT_EQ(scalar4.fingerprint(), simd1.fingerprint());
}

} // anonymous namespace
} // namespace ulpdp
