/**
 * @file
 * Power-loss storms against the durable ledger: thousands of seeded
 * crash/recover cycles with the cut swept over every distinct program
 * offset, asserting the one invariant everything else exists for --
 * the recovered ledger is always at least as spent as reality. Budget
 * is never resurrected, whatever instant the power died; fleets of
 * controllers stay under n * eps across the whole storm; and on a
 * fault-free run an attached epoch ledger moves no bit of the merged
 * FleetReport.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/budget.h"
#include "core/budget_ledger.h"
#include "core/threshold_calc.h"
#include "fleet/fleet.h"
#include "sim/fault_injector.h"
#include "sim/nor_flash.h"

namespace ulpdp {
namespace {

FlashGeometry
stormGeom()
{
    FlashGeometry g;
    g.block_count = 4;
    g.block_size = 256;
    return g;
}

BudgetLedgerConfig
stormLedgerConfig(double initial, double max_loss)
{
    BudgetLedgerConfig cfg;
    cfg.initial_budget = initial;
    cfg.max_record_loss = max_loss;
    return cfg;
}

TEST(LedgerStorm, PowerLossStormNeverResurrectsBudget)
{
    // >= 10,000 crash/recover cycles. Each cycle arms one exact cut
    // offset (cycling over every byte a record body can be cut at,
    // plus the header/commit/supersede sites and periodic mid-erase
    // cuts), mounts, verifies fail-secure accounting, then spends
    // until the cut fires.
    constexpr int kCycles = 10000;
    constexpr double kInitial = 5.0;
    constexpr double kSpend = 0.01;
    constexpr double kMaxLoss = 1.0;

    FaultCampaignConfig fcfg;
    fcfg.seed = 0x51ED5;
    FaultInjector inj(fcfg);

    auto flash = std::make_unique<NorFlashModel>(stormGeom());
    flash->attachFaultHook(&inj);

    double released = 0.0; // loss of outputs that actually left
    uint64_t epochs = 0;   // fresh parts after unrecoverable halts
    uint64_t recoveries = 0;
    uint64_t torn_total = 0;
    std::set<size_t> offsets_cut; // distinct program offsets hit

    for (int cycle = 0; cycle < kCycles; ++cycle) {
        BudgetLedger ledger(*flash,
                            stormLedgerConfig(kInitial, kMaxLoss));
        bool ok = ledger.mount();
        recoveries += ledger.stats().recoveries;
        torn_total += ledger.stats().torn_records;

        if (!ok) {
            if (ledger.halted()) {
                // Unrecoverable resolves to the most conservative
                // state there is -- never to fresh budget.
                ASSERT_DOUBLE_EQ(ledger.remaining(), 0.0);
                ASSERT_FALSE(ledger.journalSpend(kSpend));
                // Start a new part (a bricked node gets re-fused in
                // the field); the storm keeps exercising the cuts.
                flash = std::make_unique<NorFlashModel>(stormGeom());
                flash->attachFaultHook(&inj);
                released = 0.0;
                ++epochs;
            } else {
                // Power died during mount itself (format/scrub).
                flash->powerCycle();
            }
            continue;
        }

        // THE invariant: what the journal recovered is at least as
        // pessimistic as the truth. remaining <= initial - released,
        // i.e. recovered-spent >= true-spent, on every single cycle.
        double true_remaining =
            std::max(0.0, kInitial - released);
        ASSERT_LE(ledger.remaining(), true_remaining + 1e-6)
            << "budget resurrected at cycle " << cycle;

        // Arm this cycle's cut: sweep the record-body offsets 0..35,
        // with every 7th cycle cutting an erase mid-block instead.
        size_t k = static_cast<size_t>(cycle) % 36;
        if (cycle % 7 == 3)
            inj.armEraseLossAt(static_cast<size_t>(cycle) % 256);
        else
            inj.armProgramLossAt(k);

        uint64_t losses_before = inj.stats().flash_program_losses;
        bool cut_fired = false;
        for (int s = 0; s < 12 && !cut_fired; ++s) {
            if (ledger.journalSpend(kSpend))
                released += kSpend;
            else
                cut_fired = true;
            if (cycle % 5 == 4 && !cut_fired &&
                !ledger.commitCheckpoint(ledger.remaining(),
                                         ledger.cache()))
                cut_fired = true;
        }
        if (inj.stats().flash_program_losses > losses_before)
            offsets_cut.insert(k);
        if (!flash->alive())
            flash->powerCycle();
    }

    // The sweep hit every distinct program offset a record body has.
    for (size_t k = 0; k < 36; ++k)
        EXPECT_TRUE(offsets_cut.count(k)) << "offset " << k;
    EXPECT_GT(recoveries, 1000u);
    EXPECT_GT(torn_total, 0u);
    EXPECT_GT(inj.stats().flash_erase_losses, 0u);
    // Fail-secure halts are allowed (and exercised), but the storm
    // must not brick every part: most cycles recover.
    EXPECT_LT(epochs, static_cast<uint64_t>(kCycles) / 10);
}

TEST(LedgerStorm, ControllerFleetStaysUnderCompositionBound)
{
    // A fleet of n controllers, each metering against its own flash
    // ledger through thousands of crash/recover cycles: the total
    // privacy loss actually released by node i never exceeds its
    // budget B, so the fleet-level loss stays <= n * B -- with power
    // losses striking journal appends, checkpoint commits and erases
    // the whole time.
    constexpr int kNodes = 8;
    constexpr int kCyclesPerNode = 300;
    constexpr double kBudget = 10.0;

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = kBudget;
    cfg.kind = RangeControl::Thresholding;
    cfg.segments = LossSegments::compute(
        calc, RangeControl::Thresholding, {1.5, 2.0, 3.0});
    double worst_seg = cfg.segments.back().loss;

    double fleet_released = 0.0;
    for (int node = 0; node < kNodes; ++node) {
        FaultCampaignConfig fcfg;
        fcfg.seed = 1000 + static_cast<uint64_t>(node);
        fcfg.flash_program_loss_rate = 0.02;
        fcfg.flash_erase_loss_rate = 0.1;
        FaultInjector inj(fcfg);
        NorFlashModel flash(stormGeom());
        flash.attachFaultHook(&inj);

        double node_released = 0.0;
        for (int cycle = 0; cycle < kCyclesPerNode; ++cycle) {
            BudgetLedger ledger(
                flash, stormLedgerConfig(kBudget, 2 * worst_seg));
            if (!ledger.mount()) {
                if (ledger.halted())
                    break; // bricked fail-secure: spends nothing more
                flash.powerCycle();
                continue;
            }
            p.seed = 1 + static_cast<uint64_t>(node) * 1000 +
                     static_cast<uint64_t>(cycle);
            BudgetController ctrl(p, cfg);
            ctrl.attachLedger(&ledger);
            ctrl.restoreFromLedger();
            for (int r = 0; r < 6; ++r) {
                BudgetResponse resp = ctrl.request(3.0 + r);
                if (!resp.from_cache)
                    node_released += resp.charged;
            }
            if (!flash.alive())
                flash.powerCycle();
            else
                ctrl.checkpointToLedger();
            if (!flash.alive())
                flash.powerCycle();
        }
        // Per-node composition: released loss never exceeds B.
        EXPECT_LE(node_released, kBudget + 1e-6) << "node " << node;
        fleet_released += node_released;
    }
    EXPECT_LE(fleet_released, kNodes * kBudget + 1e-6);
    EXPECT_GT(fleet_released, 0.0);
}

// ---------------------------------------------------------------------
// Fleet epoch ledger.
// ---------------------------------------------------------------------

FleetConfig
smallFleet()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;

    FleetConfig fc;
    fc.master_seed = 99;
    fc.block_nodes = 256;
    CohortConfig thr;
    thr.name = "thr";
    thr.mechanism = CohortMechanism::Thresholding;
    thr.params = p;
    thr.nodes = 1500;
    thr.reports_per_node = 3;
    thr.budget_per_node = 2.5;
    thr.analyze_loss = false;
    CohortConfig res;
    res.name = "res";
    res.mechanism = CohortMechanism::Resampling;
    res.params = p;
    res.nodes = 1500;
    res.reports_per_node = 3;
    res.analyze_loss = false;
    fc.cohorts = {thr, res};
    return fc;
}

TEST(LedgerFleet, FingerprintUnchangedWithEpochLedgerAttached)
{
    // The epoch ledger journals post-merge on the main thread; on a
    // fault-free run the merged report is bit-identical with and
    // without it. This is the determinism contract extended to the
    // durability layer.
    FleetConfig plain = smallFleet();
    FleetRunner bare(plain);
    FleetReport without = bare.run(2);

    NorFlashModel flash(stormGeom());
    BudgetLedger ledger(flash,
                        stormLedgerConfig(1e9, 1e6));
    ASSERT_TRUE(ledger.mount());
    FleetConfig wired = smallFleet();
    wired.epoch_ledger = &ledger;
    FleetRunner runner(wired);
    FleetReport with = runner.run(2);

    EXPECT_EQ(with.fingerprint(), without.fingerprint());

    // And the ledger durably accounted the epoch: one spend record
    // per cohort with fresh reports, at the worst-case metering bound.
    EXPECT_EQ(ledger.stats().spends_journaled, 2u);
    EXPECT_EQ(ledger.stats().checkpoints_committed, 2u); // genesis + epoch
    double charged = 1e9 - ledger.remaining();
    EXPECT_GT(charged, 0.0);

    // Cohort "thr" meters 2 fresh reports per node at 2 * eps (its
    // budget affords 2 of the 3); cohort "res" is unmetered, so all
    // 3 reports are fresh at loss_multiple * eps. The journal must
    // cover exactly that worst case.
    double expect_thr = 1500.0 * 2 * (2.0 * 0.5);
    double expect_res = 1500.0 * 3 * (2.0 * 0.5);
    EXPECT_NEAR(charged, expect_thr + expect_res, 1e-6);

    // Recovery hands the same accounting to the next epoch.
    BudgetLedger recovered(flash, stormLedgerConfig(1e9, 1e6));
    ASSERT_TRUE(recovered.mount());
    EXPECT_NEAR(recovered.remaining(), ledger.remaining(), 1e-3);
}

} // namespace
} // namespace ulpdp
