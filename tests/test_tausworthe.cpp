/**
 * @file
 * Unit and statistical tests for the Tausworthe URNG.
 */

#include <array>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "rng/tausworthe.h"

namespace ulpdp {
namespace {

TEST(Tausworthe, Deterministic)
{
    Tausworthe a(42);
    Tausworthe b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Tausworthe, DifferentSeedsDiffer)
{
    Tausworthe a(1);
    Tausworthe b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next32() == b.next32())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Tausworthe, DegenerateSeedsStillWork)
{
    // Component minimums must be enforced for any seed, including 0.
    Tausworthe t(0);
    std::set<uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(t.next32());
    EXPECT_GT(seen.size(), 990u);
}

TEST(Tausworthe, MatchesReferenceTaus88)
{
    // Independent reference implementation of the taus88 step,
    // cross-checked against L'Ecuyer's published code.
    uint32_t s1 = 12345;
    uint32_t s2 = 67890;
    uint32_t s3 = 424242;
    auto reference = [&]() {
        uint32_t b;
        b = ((s1 << 13) ^ s1) >> 19;
        s1 = ((s1 & 0xfffffffeU) << 12) ^ b;
        b = ((s2 << 2) ^ s2) >> 25;
        s2 = ((s2 & 0xfffffff8U) << 4) ^ b;
        b = ((s3 << 3) ^ s3) >> 11;
        s3 = ((s3 & 0xfffffff0U) << 17) ^ b;
        return s1 ^ s2 ^ s3;
    };

    Tausworthe t(7);
    // Force identical component state through the accessors'
    // counterparts: re-seed by running a fresh object, then compare
    // the step function by construction. (The constructor derives
    // states, so instead verify our step against the reference using
    // the object's own starting state.)
    uint32_t r1 = t.s1();
    uint32_t r2 = t.s2();
    uint32_t r3 = t.s3();
    s1 = r1;
    s2 = r2;
    s3 = r3;
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(t.next32(), reference());
}

TEST(Tausworthe, BitsAreInRange)
{
    Tausworthe t(9);
    for (int bits = 1; bits <= 32; ++bits) {
        uint32_t v = t.nextBits(bits);
        if (bits < 32) {
            EXPECT_LT(v, uint32_t{1} << bits);
        }
    }
}

TEST(Tausworthe, NextBitsRejectsBadWidth)
{
    Tausworthe t(3);
    EXPECT_THROW(t.nextBits(0), PanicError);
    EXPECT_THROW(t.nextBits(33), PanicError);
}

TEST(Tausworthe, UnitIndexNeverZero)
{
    Tausworthe t(5);
    for (int i = 0; i < 20000; ++i) {
        uint64_t m = t.nextUnitIndex(8);
        EXPECT_GE(m, 1u);
        EXPECT_LE(m, 256u);
    }
}

TEST(Tausworthe, UnitIndexCoversFullRange)
{
    Tausworthe t(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 100000; ++i)
        seen.insert(t.nextUnitIndex(6)); // 64 possible values
    EXPECT_EQ(seen.size(), 64u);
    EXPECT_TRUE(seen.count(64)); // the all-zeros word maps to 2^bu
}

TEST(Tausworthe, SignIsBalanced)
{
    Tausworthe t(17);
    int pos = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        int s = t.nextSign();
        EXPECT_TRUE(s == 1 || s == -1);
        if (s == 1)
            ++pos;
    }
    // Within 5 sigma of fair.
    double sigma = std::sqrt(n) / 2.0;
    EXPECT_NEAR(pos, n / 2, 5.0 * sigma);
}

TEST(Tausworthe, UnitDoubleInHalfOpenInterval)
{
    Tausworthe t(23);
    for (int i = 0; i < 10000; ++i) {
        double u = t.nextUnitDouble();
        EXPECT_GT(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(TauswortheStat, UniformityChiSquared)
{
    // 16 buckets over 200k draws of 4 bits: chi^2 with 15 dof should
    // be far below 60 (p ~ 3e-7) for a healthy generator.
    Tausworthe t(31);
    std::array<uint64_t, 16> buckets{};
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++buckets[t.nextBits(4)];
    double expected = n / 16.0;
    double chi2 = 0.0;
    for (uint64_t b : buckets) {
        double d = static_cast<double>(b) - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 60.0);
}

TEST(TauswortheStat, SerialCorrelationLow)
{
    Tausworthe t(37);
    const int n = 100000;
    double prev = t.nextUnitDouble();
    double sum_xy = 0.0;
    double sum_x = 0.0;
    double sum_x2 = 0.0;
    for (int i = 0; i < n; ++i) {
        double cur = t.nextUnitDouble();
        sum_xy += prev * cur;
        sum_x += prev;
        sum_x2 += prev * prev;
        prev = cur;
    }
    double mean = sum_x / n;
    double var = sum_x2 / n - mean * mean;
    double cov = sum_xy / n - mean * mean;
    EXPECT_LT(std::abs(cov / var), 0.02);
}

} // anonymous namespace
} // namespace ulpdp
