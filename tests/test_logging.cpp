/**
 * @file
 * Unit tests for the logging / error-reporting utilities.
 */

#include <gtest/gtest.h>

#include "common/logging.h"

namespace ulpdp {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad user input %d", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("internal bug %s", "here"), PanicError);
}

TEST(Logging, FatalMessageIsFormatted)
{
    try {
        fatal("value %d out of range [%g, %g]", 7, 1.5, 2.5);
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value 7 out of range [1.5, 2.5]");
    }
}

TEST(Logging, PanicMessageIsFormatted)
{
    try {
        panic("impossible state %s/%d", "noising", 3);
        FAIL() << "panic() returned";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "impossible state noising/3");
    }
}

TEST(Logging, FatalErrorIsRuntimeError)
{
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Logging, PanicErrorIsLogicError)
{
    EXPECT_THROW(panic("x"), std::logic_error);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    setLoggingEnabled(false);
    EXPECT_NO_THROW(warn("suspicious %d", 1));
    EXPECT_NO_THROW(inform("status %d", 2));
    setLoggingEnabled(true);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(ULPDP_ASSERT(1 + 1 == 2));
}

TEST(Logging, AssertPanicsOnFalse)
{
    EXPECT_THROW(ULPDP_ASSERT(1 + 1 == 3), PanicError);
}

TEST(Logging, AssertMessageNamesCondition)
{
    try {
        ULPDP_ASSERT(2 < 1);
        FAIL() << "assert passed";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("2 < 1"),
                  std::string::npos);
    }
}

} // anonymous namespace
} // namespace ulpdp
