/**
 * @file
 * Tests for the cycle-level DP-Box device model: FSM phases, command
 * port semantics, latency accounting, range control, embedded budget
 * logic and replenishment.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "dpbox/dpbox.h"

namespace ulpdp {
namespace {

DpBoxConfig
basicConfig()
{
    DpBoxConfig cfg;
    cfg.frac_bits = 6;
    cfg.word_bits = 20;
    cfg.uniform_bits = 17;
    cfg.threshold_index = 800;
    cfg.thresholding = true;
    cfg.budget_enabled = false;
    return cfg;
}

/** Drive the boot + configure sequence shared by most tests. */
void
bootAndConfigure(DpBox &box, double lo = 0.0, double hi = 10.0,
                 int n_m = 1)
{
    box.step(DpBoxCommand::StartNoising); // seal init
    EXPECT_EQ(box.phase(), DpBoxPhase::Waiting);
    box.step(DpBoxCommand::SetEpsilon, n_m);
    box.step(DpBoxCommand::SetRangeLower, box.toRaw(lo));
    box.step(DpBoxCommand::SetRangeUpper, box.toRaw(hi));
}

TEST(DpBox, RejectsBadConfig)
{
    DpBoxConfig cfg = basicConfig();
    cfg.word_bits = 4;
    EXPECT_THROW(DpBox box(cfg), FatalError);

    cfg = basicConfig();
    cfg.frac_bits = 30;
    EXPECT_THROW(DpBox box(cfg), FatalError);

    cfg = basicConfig();
    cfg.uniform_bits = 2;
    EXPECT_THROW(DpBox box(cfg), FatalError);

    cfg = basicConfig();
    cfg.budget_enabled = true; // no segments
    EXPECT_THROW(DpBox box(cfg), FatalError);
}

TEST(DpBox, StartsInInitializationPhase)
{
    DpBox box(basicConfig());
    EXPECT_EQ(box.phase(), DpBoxPhase::Initialization);
    EXPECT_FALSE(box.ready());
}

TEST(DpBox, InitSealsOnStartNoising)
{
    DpBox box(basicConfig());
    box.step(DpBoxCommand::SetEpsilon, 256 * 5); // budget = 5.0
    box.step(DpBoxCommand::SetRangeUpper, 1000); // replenish period
    box.step(DpBoxCommand::StartNoising);
    EXPECT_EQ(box.phase(), DpBoxPhase::Waiting);
    EXPECT_DOUBLE_EQ(box.remainingBudget(), 5.0);
}

TEST(DpBox, RawConversionRoundTrips)
{
    DpBox box(basicConfig());
    for (double v : {0.0, 1.0, -3.5, 131.25, 200.0}) {
        EXPECT_NEAR(box.fromRaw(box.toRaw(v)), v, box.lsb() / 2.0);
    }
    EXPECT_DOUBLE_EQ(box.lsb(), 1.0 / 64.0);
}

TEST(DpBox, NoisingTakesTwoCyclesWithThresholding)
{
    DpBox box(basicConfig());
    bootAndConfigure(box);
    box.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));

    uint64_t start = box.cycles();
    box.step(DpBoxCommand::StartNoising); // cycle 1: load
    EXPECT_FALSE(box.ready());
    EXPECT_EQ(box.phase(), DpBoxPhase::Noising);
    box.step(DpBoxCommand::DoNothing);    // cycle 2: noise
    EXPECT_TRUE(box.ready());
    EXPECT_EQ(box.phase(), DpBoxPhase::Waiting);
    EXPECT_EQ(box.cycles() - start, 2u);
}

TEST(DpBox, ThresholdingOutputInWindow)
{
    DpBoxConfig cfg = basicConfig();
    cfg.threshold_index = 300;
    DpBox box(cfg);
    bootAndConfigure(box);

    double ext = 300.0 * box.lsb();
    for (int i = 0; i < 3000; ++i) {
        box.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
        box.step(DpBoxCommand::StartNoising);
        while (!box.ready())
            box.step(DpBoxCommand::DoNothing);
        double y = box.fromRaw(box.output());
        EXPECT_GE(y, 0.0 - ext - 1e-9);
        EXPECT_LE(y, 10.0 + ext + 1e-9);
    }
}

TEST(DpBox, ResamplingAddsCycles)
{
    DpBoxConfig cfg = basicConfig();
    cfg.thresholding = false;
    cfg.threshold_index = 100; // tight: some resampling expected
    DpBox box(cfg);
    bootAndConfigure(box);

    uint64_t total_latency = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        box.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
        uint64_t start = box.cycles();
        box.step(DpBoxCommand::StartNoising);
        while (!box.ready())
            box.step(DpBoxCommand::DoNothing);
        total_latency += box.cycles() - start;
    }
    EXPECT_GT(box.stats().resamples, 0u);
    EXPECT_EQ(total_latency,
              2 * static_cast<uint64_t>(n) + box.stats().resamples);
}

TEST(DpBox, SetThresholdTogglesMode)
{
    DpBox box(basicConfig());
    bootAndConfigure(box);
    EXPECT_TRUE(box.thresholdingMode());
    box.step(DpBoxCommand::SetThreshold);
    EXPECT_FALSE(box.thresholdingMode());
    box.step(DpBoxCommand::SetThreshold);
    EXPECT_TRUE(box.thresholdingMode());
}

TEST(DpBox, NoiseScalesWithEpsilon)
{
    // Smaller epsilon (larger n_m) must produce larger noise spread.
    // The clamp window must be wide enough not to mask the scaling.
    auto spread = [](int n_m) {
        DpBoxConfig cfg = basicConfig();
        cfg.threshold_index = 8000;
        DpBox box(cfg);
        box.step(DpBoxCommand::StartNoising);
        box.step(DpBoxCommand::SetEpsilon, n_m);
        box.step(DpBoxCommand::SetRangeLower, box.toRaw(0.0));
        box.step(DpBoxCommand::SetRangeUpper, box.toRaw(10.0));
        RunningStats stats;
        for (int i = 0; i < 20000; ++i) {
            box.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
            box.step(DpBoxCommand::StartNoising);
            while (!box.ready())
                box.step(DpBoxCommand::DoNothing);
            stats.add(box.fromRaw(box.output()));
        }
        return stats.stddev();
    };
    EXPECT_GT(spread(1), 1.5 * spread(0)); // eps 0.5 vs eps 1
}

TEST(DpBox, NoiseMatchesLaplaceMoments)
{
    DpBoxConfig cfg = basicConfig();
    cfg.threshold_index = 4000; // wide window: nearly raw noise
    DpBox box(cfg);
    bootAndConfigure(box, 0.0, 10.0, 1); // eps = 0.5, lambda = 20

    RunningStats stats;
    for (int i = 0; i < 60000; ++i) {
        box.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
        box.step(DpBoxCommand::StartNoising);
        while (!box.ready())
            box.step(DpBoxCommand::DoNothing);
        stats.add(box.fromRaw(box.output()) - 5.0);
    }
    double lambda = 20.0;
    EXPECT_NEAR(stats.mean(), 0.0, 0.6);
    // Clamping at the window trims the variance slightly below the
    // ideal 2 lambda^2.
    EXPECT_NEAR(stats.variance(), 2.0 * lambda * lambda,
                0.15 * 2.0 * lambda * lambda);
}

TEST(DpBox, BudgetChargesAndExhausts)
{
    DpBoxConfig cfg = basicConfig();
    cfg.threshold_index = 300;
    cfg.budget_enabled = true;
    cfg.segments = {
        BudgetSegment{0, 0.55},
        BudgetSegment{150, 0.75},
        BudgetSegment{300, 1.0},
    };
    DpBox box(cfg);
    box.step(DpBoxCommand::SetEpsilon, 256 * 3); // budget = 3.0
    box.step(DpBoxCommand::StartNoising);
    box.step(DpBoxCommand::SetEpsilon, 1);
    box.step(DpBoxCommand::SetRangeLower, box.toRaw(0.0));
    box.step(DpBoxCommand::SetRangeUpper, box.toRaw(10.0));

    double budget_before = box.remainingBudget();
    std::vector<double> outputs;
    for (int i = 0; i < 30; ++i) {
        box.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
        box.step(DpBoxCommand::StartNoising);
        while (!box.ready())
            box.step(DpBoxCommand::DoNothing);
        outputs.push_back(box.fromRaw(box.output()));
    }
    EXPECT_LT(box.remainingBudget(), budget_before);
    EXPECT_GT(box.stats().cache_hits, 0u);
    // After exhaustion, outputs repeat (cache replay).
    size_t n = outputs.size();
    EXPECT_DOUBLE_EQ(outputs[n - 1], outputs[n - 2]);
}

TEST(DpBox, BudgetReplenishes)
{
    DpBoxConfig cfg = basicConfig();
    cfg.threshold_index = 300;
    cfg.budget_enabled = true;
    cfg.segments = {BudgetSegment{0, 0.55},
                    BudgetSegment{300, 1.0}};
    DpBox box(cfg);
    box.step(DpBoxCommand::SetEpsilon, 256 * 1); // budget = 1.0
    box.step(DpBoxCommand::SetRangeUpper, 500);  // replenish @ 500
    box.step(DpBoxCommand::StartNoising);
    box.step(DpBoxCommand::SetEpsilon, 1);
    box.step(DpBoxCommand::SetRangeLower, box.toRaw(0.0));
    box.step(DpBoxCommand::SetRangeUpper, box.toRaw(10.0));

    // Exhaust the budget.
    for (int i = 0; i < 10; ++i) {
        box.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
        box.step(DpBoxCommand::StartNoising);
        while (!box.ready())
            box.step(DpBoxCommand::DoNothing);
    }
    EXPECT_GT(box.stats().cache_hits, 0u);

    // Idle past the replenishment period.
    for (int i = 0; i < 600; ++i)
        box.step(DpBoxCommand::DoNothing);
    EXPECT_DOUBLE_EQ(box.remainingBudget(), 1.0);
}

TEST(DpBox, BudgetSegmentsMustMatchThreshold)
{
    DpBoxConfig cfg = basicConfig();
    cfg.budget_enabled = true;
    cfg.threshold_index = 300;
    cfg.segments = {BudgetSegment{0, 0.5}, BudgetSegment{200, 1.0}};
    EXPECT_THROW(DpBox box(cfg), FatalError);
}

TEST(DpBox, StartNoisingWithoutRangeFatals)
{
    DpBox box(basicConfig());
    box.step(DpBoxCommand::StartNoising); // seal init
    box.step(DpBoxCommand::SetEpsilon, 1);
    EXPECT_THROW(box.step(DpBoxCommand::StartNoising), FatalError);
}

TEST(DpBox, CommandsIgnoredWhileNoising)
{
    DpBoxConfig cfg = basicConfig();
    DpBox box(cfg);
    bootAndConfigure(box);
    box.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
    box.step(DpBoxCommand::StartNoising);
    // This SetEpsilon lands during the noising cycle: ignored.
    box.step(DpBoxCommand::SetEpsilon, 7);
    EXPECT_EQ(box.nm(), 1);
    EXPECT_TRUE(box.ready());
}

TEST(DpBox, StatsCountersTrackRequests)
{
    DpBox box(basicConfig());
    bootAndConfigure(box);
    for (int i = 0; i < 5; ++i) {
        box.step(DpBoxCommand::SetSensorValue, box.toRaw(2.0));
        box.step(DpBoxCommand::StartNoising);
        while (!box.ready())
            box.step(DpBoxCommand::DoNothing);
    }
    EXPECT_EQ(box.stats().noising_requests, 5u);
    EXPECT_GT(box.cycles(), 10u);
}

} // anonymous namespace
} // namespace ulpdp
