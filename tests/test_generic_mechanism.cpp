/**
 * @file
 * Tests for the generic (any-distribution) mechanism wrapper, plus
 * the data-processing-inequality property of the loss analysis
 * (Section II-B: post-processing cannot increase privacy loss).
 */

#include <cmath>
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "core/generic_mechanism.h"
#include "core/output_model.h"
#include "core/privacy_loss.h"
#include "query/utility.h"

namespace ulpdp {
namespace {

FxpInversionConfig
invConfig()
{
    FxpInversionConfig cfg;
    cfg.uniform_bits = 14;
    cfg.output_bits = 12;
    cfg.delta = 10.0 / 32.0;
    return cfg;
}

TEST(GenericMechanism, RejectsBadConfig)
{
    auto icdf = std::make_shared<GaussianMagnitude>(10.0);
    EXPECT_THROW(GenericFxpMechanism(SensorRange(0.0, 10.0), 0.0,
                                     invConfig(), icdf,
                                     RangeControl::Thresholding, 50),
                 FatalError);
    EXPECT_THROW(GenericFxpMechanism(SensorRange(0.0, 10.0), 0.5,
                                     invConfig(), icdf,
                                     RangeControl::Thresholding, -1),
                 FatalError);
    FxpInversionConfig coarse = invConfig();
    coarse.delta = 100.0;
    EXPECT_THROW(GenericFxpMechanism(SensorRange(0.0, 10.0), 0.5,
                                     coarse, icdf,
                                     RangeControl::Thresholding, 5),
                 FatalError);
}

TEST(GenericMechanism, NameCombinesDistributionAndControl)
{
    auto icdf = std::make_shared<GaussianMagnitude>(10.0);
    GenericFxpMechanism thresh(SensorRange(0.0, 10.0), 0.5,
                               invConfig(), icdf,
                               RangeControl::Thresholding, 50);
    EXPECT_EQ(thresh.name(), "Gaussian (thresholding)");
    GenericFxpMechanism resamp(SensorRange(0.0, 10.0), 0.5,
                               invConfig(), icdf,
                               RangeControl::Resampling, 50);
    EXPECT_EQ(resamp.name(), "Gaussian (resampling)");
}

TEST(GenericMechanism, GaussianOutputsConfinedAndUnbiased)
{
    auto icdf = std::make_shared<GaussianMagnitude>(8.0);
    int64_t t = 80;
    GenericFxpMechanism mech(SensorRange(0.0, 10.0), 0.5,
                             invConfig(), icdf,
                             RangeControl::Thresholding, t);
    double ext = static_cast<double>(t) * mech.delta();
    RunningStats stats;
    for (int i = 0; i < 50000; ++i) {
        double y = mech.noise(5.0).value;
        EXPECT_GE(y, -ext - 1e-9);
        EXPECT_LE(y, 10.0 + ext + 1e-9);
        stats.add(y);
    }
    EXPECT_NEAR(stats.mean(), 5.0, 0.3);
}

TEST(GenericMechanism, StaircaseThroughUtilityHarness)
{
    double eps = 1.0;
    auto icdf = std::make_shared<StaircaseMagnitude>(
        10.0, eps, StaircaseMagnitude::optimalGamma(eps));
    GenericFxpMechanism mech(SensorRange(0.0, 10.0), eps,
                             invConfig(), icdf,
                             RangeControl::Resampling, 100);

    std::vector<double> data;
    for (int i = 0; i < 300; ++i)
        data.push_back(2.0 + 6.0 * (i % 60) / 59.0);
    UtilityEvaluator eval(40);
    UtilityResult r = eval.evaluate(data, mech, MeanQuery());
    EXPECT_GT(r.mae, 0.0);
    EXPECT_LT(r.mae, 3.0);
    EXPECT_GE(r.avgSamplesPerReport(), 1.0);
}

TEST(GenericMechanism, ResamplingCountsAttempts)
{
    auto icdf = std::make_shared<GaussianMagnitude>(20.0);
    GenericFxpMechanism mech(SensorRange(0.0, 10.0), 0.5,
                             invConfig(), icdf,
                             RangeControl::Resampling, 10);
    uint64_t total = 0;
    for (int i = 0; i < 2000; ++i)
        total += mech.noise(5.0).samples_drawn;
    EXPECT_GT(total, 2000u); // tight window: must have resampled
}

/**
 * Data-processing inequality: for any post-processing channel
 * applied to a mechanism's outputs, the worst-case loss of the
 * composed system is at most the mechanism's. Verified over random
 * stochastic channels.
 */
class PostProcessedModel : public DiscreteOutputModel
{
  public:
    PostProcessedModel(const DiscreteOutputModel &base,
                       std::vector<std::vector<double>> channel)
        : base_(base), channel_(std::move(channel))
    {
    }

    int64_t span() const override { return base_.span(); }
    int64_t outputLo() const override { return 0; }
    int64_t
    outputHi() const override
    {
        return static_cast<int64_t>(channel_[0].size()) - 1;
    }
    std::string name() const override { return "post-processed"; }

    double
    prob(int64_t j, int64_t i) const override
    {
        double p = 0.0;
        for (int64_t y = base_.outputLo(); y <= base_.outputHi();
             ++y) {
            size_t row = static_cast<size_t>(y - base_.outputLo());
            p += base_.prob(y, i) * channel_[row][
                static_cast<size_t>(j)];
        }
        return p;
    }

  private:
    const DiscreteOutputModel &base_;
    std::vector<std::vector<double>> channel_;
};

TEST(DataProcessing, PostProcessingNeverIncreasesLoss)
{
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = 12;
    cfg.output_bits = 10;
    cfg.delta = 10.0 / 32.0;
    cfg.lambda = 20.0;
    auto pmf = std::make_shared<FxpLaplacePmf>(cfg);
    ThresholdingOutputModel base(pmf, 32, 80);
    double base_loss =
        PrivacyLossAnalyzer::analyze(base).worst_case_loss;

    std::mt19937_64 rng(3);
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    size_t in_bins = static_cast<size_t>(base.outputHi() -
                                         base.outputLo()) + 1;
    for (int trial = 0; trial < 3; ++trial) {
        // Random stochastic channel onto 8 buckets.
        std::vector<std::vector<double>> channel(
            in_bins, std::vector<double>(8));
        for (auto &row : channel) {
            double sum = 0.0;
            for (auto &v : row) {
                v = unif(rng);
                sum += v;
            }
            for (auto &v : row)
                v /= sum;
        }
        PostProcessedModel processed(base, std::move(channel));
        double loss =
            PrivacyLossAnalyzer::analyze(processed).worst_case_loss;
        EXPECT_LE(loss, base_loss + 1e-9) << "trial=" << trial;
    }
}

TEST(DataProcessing, DeterministicBucketingAlsoBounded)
{
    // A deterministic coarsening (e.g. reporting deciles instead of
    // values) is a special channel: loss still bounded by the base.
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = 12;
    cfg.output_bits = 10;
    cfg.delta = 10.0 / 32.0;
    cfg.lambda = 20.0;
    auto pmf = std::make_shared<FxpLaplacePmf>(cfg);
    ResamplingOutputModel base(pmf, 32, 100);
    double base_loss =
        PrivacyLossAnalyzer::analyze(base).worst_case_loss;

    size_t in_bins = static_cast<size_t>(base.outputHi() -
                                         base.outputLo()) + 1;
    std::vector<std::vector<double>> channel(
        in_bins, std::vector<double>(10, 0.0));
    for (size_t y = 0; y < in_bins; ++y)
        channel[y][y * 10 / in_bins] = 1.0;
    PostProcessedModel processed(base, std::move(channel));
    double loss =
        PrivacyLossAnalyzer::analyze(processed).worst_case_loss;
    EXPECT_LE(loss, base_loss + 1e-9);
    EXPECT_GT(loss, 0.0);
}

} // anonymous namespace
} // namespace ulpdp
