/**
 * @file
 * NOR flash model tests: the asymmetric failure semantics the ledger
 * depends on. Programming only clears bits, erase is block-granular,
 * a cut program retains a prefix plus a partially programmed byte, a
 * cut erase leaves a half-erased block with its wear advanced, and
 * stuck-at faults sit on the sense path where no erase can reach.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "sim/fault_injector.h"
#include "sim/nor_flash.h"

namespace ulpdp {
namespace {

FlashGeometry
smallGeom()
{
    FlashGeometry g;
    g.block_count = 4;
    g.block_size = 64;
    return g;
}

/** Cuts exactly one scripted program/erase op at a scripted byte. */
struct ScriptedFlashHook : FlashFaultHook
{
    int64_t cut_program_op = -1; //!< 0-based op index; -1 = never
    size_t cut_program_at = 0;
    uint8_t mask = 0x00;
    int64_t cut_erase_op = -1;
    size_t cut_erase_at = 0;
    int64_t program_ops = 0;
    int64_t erase_ops = 0;

    size_t
    programPowerLoss(size_t len) override
    {
        int64_t op = program_ops++;
        if (op == cut_program_op && cut_program_at < len)
            return cut_program_at;
        return SIZE_MAX;
    }

    uint8_t partialProgramMask() override { return mask; }

    size_t
    erasePowerLoss(size_t block_bytes) override
    {
        int64_t op = erase_ops++;
        if (op == cut_erase_op && cut_erase_at < block_bytes)
            return cut_erase_at;
        return SIZE_MAX;
    }
};

TEST(NorFlash, FreshPartSensesErased)
{
    NorFlashModel flash(smallGeom());
    std::vector<uint8_t> buf(flash.geometry().totalBytes());
    flash.read(0, buf.data(), buf.size());
    for (uint8_t b : buf)
        ASSERT_EQ(b, 0xFF);
    EXPECT_TRUE(flash.alive());
    EXPECT_EQ(flash.wearSpread(), 0u);
}

TEST(NorFlash, ProgramOnlyClearsBits)
{
    NorFlashModel flash(smallGeom());
    uint8_t first = 0xF0;
    ASSERT_TRUE(flash.program(7, &first, 1));
    // "Updating in place" ANDs: bits cannot come back without erase.
    uint8_t second = 0x3C;
    ASSERT_TRUE(flash.program(7, &second, 1));
    uint8_t got = 0;
    flash.read(7, &got, 1);
    EXPECT_EQ(got, 0xF0 & 0x3C);
    // Writing 0xFF is a no-op.
    uint8_t ff = 0xFF;
    ASSERT_TRUE(flash.program(7, &ff, 1));
    flash.read(7, &got, 1);
    EXPECT_EQ(got, 0xF0 & 0x3C);
}

TEST(NorFlash, EraseRestoresBlockAndCountsWear)
{
    NorFlashModel flash(smallGeom());
    std::vector<uint8_t> zeros(flash.geometry().block_size, 0x00);
    ASSERT_TRUE(flash.program(0, zeros.data(), zeros.size()));
    ASSERT_TRUE(flash.erase(0));
    uint8_t got = 0;
    flash.read(0, &got, 1);
    EXPECT_EQ(got, 0xFF);
    EXPECT_EQ(flash.eraseCount(0), 1u);
    EXPECT_EQ(flash.eraseCount(1), 0u);
    EXPECT_EQ(flash.wearSpread(), 1u);
    EXPECT_EQ(flash.maxEraseCount(), 1u);
}

TEST(NorFlash, CutProgramRetainsExactPrefix)
{
    NorFlashModel flash(smallGeom());
    ScriptedFlashHook hook;
    hook.cut_program_op = 0;
    hook.cut_program_at = 3;
    hook.mask = 0x00; // no transition of the cut byte completed
    flash.attachFaultHook(&hook);

    uint8_t data[8];
    std::memset(data, 0xA5, sizeof data);
    EXPECT_FALSE(flash.program(0, data, sizeof data));
    EXPECT_FALSE(flash.alive());

    uint8_t got[8];
    flash.read(0, got, sizeof got);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(got[i], 0xA5) << i; // completed prefix
    EXPECT_EQ(got[3], 0xFF);          // cut byte, no transitions
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(got[i], 0xFF) << i; // never reached
    EXPECT_EQ(flash.stats().program_power_losses, 1u);

    // Dead until power cycles; then the array state persists.
    EXPECT_FALSE(flash.program(32, data, 1));
    flash.powerCycle();
    EXPECT_TRUE(flash.alive());
    flash.read(0, got, sizeof got);
    EXPECT_EQ(got[0], 0xA5);
}

TEST(NorFlash, CutByteProgramsOnlyTheMaskedTransitions)
{
    NorFlashModel flash(smallGeom());
    ScriptedFlashHook hook;
    hook.cut_program_op = 0;
    hook.cut_program_at = 0;
    hook.mask = 0x0F; // only the low nibble's transitions completed
    flash.attachFaultHook(&hook);

    uint8_t byte = 0x00; // wants to clear every bit
    EXPECT_FALSE(flash.program(5, &byte, 1));
    uint8_t got = 0;
    flash.read(5, &got, 1);
    EXPECT_EQ(got, 0xF0); // high nibble still erased
}

TEST(NorFlash, CutEraseLeavesHalfErasedBlockAndWear)
{
    NorFlashModel flash(smallGeom());
    std::vector<uint8_t> zeros(flash.geometry().block_size, 0x00);
    ASSERT_TRUE(flash.program(0, zeros.data(), zeros.size()));

    ScriptedFlashHook hook;
    hook.cut_erase_op = 0;
    hook.cut_erase_at = 10;
    flash.attachFaultHook(&hook);

    EXPECT_FALSE(flash.erase(0));
    EXPECT_FALSE(flash.alive());
    // Wear is physical: the interrupted erase still aged the block.
    EXPECT_EQ(flash.eraseCount(0), 1u);

    std::vector<uint8_t> got(flash.geometry().block_size);
    flash.read(0, got.data(), got.size());
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(got[i], 0xFF) << i; // erased prefix
    for (size_t i = 10; i < got.size(); ++i)
        EXPECT_EQ(got[i], 0x00) << i; // stale suffix
    EXPECT_EQ(flash.stats().erase_power_losses, 1u);
}

TEST(NorFlash, StuckBitsSitOnTheSensePath)
{
    NorFlashModel flash(smallGeom());
    flash.stickBit(4, 0, true);  // reads as 1 forever
    flash.stickBit(4, 7, false); // reads as 0 forever

    uint8_t zero = 0x00;
    ASSERT_TRUE(flash.program(4, &zero, 1));
    uint8_t got = 0;
    flash.read(4, &got, 1);
    EXPECT_EQ(got, 0x01); // bit 0 stuck high despite the program

    // An erase cannot heal a sense-path fault.
    ASSERT_TRUE(flash.erase(0));
    flash.read(4, &got, 1);
    EXPECT_EQ(got, 0x7F); // bit 7 stuck low despite the erase
    EXPECT_EQ(flash.stats().stuck_bits, 2u);

    // The array itself is untouched by the fault.
    EXPECT_EQ(flash.raw()[4], 0xFF);
}

TEST(NorFlash, InjectorDrivesFlashSitesSeeded)
{
    FaultCampaignConfig cfg;
    cfg.seed = 7;
    cfg.flash_program_loss_rate = 0.5;
    cfg.flash_erase_loss_rate = 0.5;
    FaultInjector inj(cfg);
    FaultInjector replay(cfg);

    NorFlashModel a(smallGeom());
    NorFlashModel b(smallGeom());
    a.attachFaultHook(&inj);
    b.attachFaultHook(&replay);

    uint8_t pattern[16];
    std::memset(pattern, 0x5A, sizeof pattern);
    for (int i = 0; i < 64; ++i) {
        uint64_t addr = static_cast<uint64_t>(i % 3) *
                        a.geometry().block_size;
        bool ra = a.program(addr, pattern, sizeof pattern);
        bool rb = b.program(addr, pattern, sizeof pattern);
        ASSERT_EQ(ra, rb) << i;
        if (!a.alive()) {
            a.powerCycle();
            b.powerCycle();
        }
    }
    // Same seed, same campaign: bit-identical arrays and stats.
    EXPECT_EQ(a.raw(), b.raw());
    EXPECT_EQ(inj.stats().flash_program_losses,
              replay.stats().flash_program_losses);
    EXPECT_GT(inj.stats().flash_program_losses, 0u);
}

TEST(NorFlash, ArmedCutFiresAtExactOffset)
{
    FaultCampaignConfig cfg;
    cfg.seed = 3;
    FaultInjector inj(cfg);
    NorFlashModel flash(smallGeom());
    flash.attachFaultHook(&inj);

    inj.armProgramLossAt(5);
    EXPECT_TRUE(inj.flashCutArmed());

    // An op too short to reach the cut completes and leaves it armed.
    uint8_t small[4];
    std::memset(small, 0x00, sizeof small);
    EXPECT_TRUE(flash.program(0, small, sizeof small));
    EXPECT_TRUE(inj.flashCutArmed());

    uint8_t big[12];
    std::memset(big, 0x00, sizeof big);
    EXPECT_FALSE(flash.program(16, big, sizeof big));
    EXPECT_FALSE(inj.flashCutArmed());

    uint8_t got[12];
    flash.powerCycle();
    flash.read(16, got, sizeof got);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(got[i], 0x00) << i;
    for (int i = 6; i < 12; ++i)
        EXPECT_EQ(got[i], 0xFF) << i;
    EXPECT_EQ(inj.stats().flash_program_losses, 1u);
}

TEST(NorFlash, InjectorStuckBitPendingIsSeeded)
{
    FaultCampaignConfig cfg;
    cfg.seed = 11;
    cfg.flash_stuck_bit_rate = 1.0;
    FaultInjector inj(cfg);

    uint64_t addr = 0;
    int bit = -1;
    bool value = false;
    EXPECT_FALSE(inj.flashStuckBitPending(addr, bit, value, 256));
    inj.tick();
    ASSERT_TRUE(inj.flashStuckBitPending(addr, bit, value, 256));
    EXPECT_LT(addr, 256u);
    EXPECT_GE(bit, 0);
    EXPECT_LT(bit, 8);
    // Consumed: a second poll without a tick finds nothing.
    EXPECT_FALSE(inj.flashStuckBitPending(addr, bit, value, 256));
    EXPECT_EQ(inj.stats().flash_stuck_bits, 1u);
}

} // namespace
} // namespace ulpdp
