/**
 * @file
 * Tests that the synthetic Table I substitutes match their documented
 * statistics (size, range, mean, spread, shape class).
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace ulpdp {
namespace {

TEST(Generators, StatlogHeartMatchesTableOne)
{
    Dataset d = makeStatlogHeart();
    EXPECT_EQ(d.size(), 270u);
    EXPECT_NO_THROW(d.validate());
    EXPECT_NEAR(d.mean(), 131.3, 4.0);
    EXPECT_NEAR(d.stddev(), 17.9, 4.0);
    EXPECT_GE(d.observedMin(), 94.0);
    EXPECT_LE(d.observedMax(), 200.0);
}

TEST(Generators, AutoMpgMatchesTableOne)
{
    Dataset d = makeAutoMpg();
    EXPECT_EQ(d.size(), 398u);
    EXPECT_NO_THROW(d.validate());
    EXPECT_NEAR(d.mean(), 19.0, 3.0); // right-skewed around lo+scale
    // Right skew: mean above median.
    std::vector<double> v = d.values;
    std::sort(v.begin(), v.end());
    EXPECT_GT(d.mean(), v[v.size() / 2]);
}

TEST(Generators, RobotSensorsIsBimodal)
{
    Dataset d = makeRobotSensors();
    EXPECT_EQ(d.size(), 5456u);
    EXPECT_NO_THROW(d.validate());
    // Bimodality check: counts near the two modes dominate the
    // valley between them.
    auto count_in = [&](double lo, double hi) {
        size_t c = 0;
        for (double x : d.values)
            if (x >= lo && x < hi)
                ++c;
        return c;
    };
    size_t near_wall = count_in(0.5, 1.1);
    size_t valley = count_in(2.0, 2.6);
    size_t open = count_in(3.9, 4.5);
    EXPECT_GT(near_wall, 2 * valley);
    EXPECT_GT(open, 2 * valley);
}

TEST(Generators, HumanActivityMatchesTableOne)
{
    Dataset d = makeHumanActivity();
    EXPECT_EQ(d.size(), 10299u);
    EXPECT_NO_THROW(d.validate());
    EXPECT_NEAR(d.mean(), -0.1, 0.05);
    EXPECT_NEAR(d.stddev(), 0.4, 0.05);
}

TEST(Generators, LocalizationMatchesTableOne)
{
    Dataset d = makeLocalization();
    EXPECT_EQ(d.size(), 164860u);
    EXPECT_NO_THROW(d.validate());
    EXPECT_GT(d.mean(), 1.0);
    EXPECT_LT(d.mean(), 3.0);
}

TEST(Generators, UjiIndoorLocMatchesTableOne)
{
    Dataset d = makeUjiIndoorLoc();
    EXPECT_EQ(d.size(), 19937u);
    EXPECT_NO_THROW(d.validate());
    EXPECT_GT(d.mean(), -7691.3);
    EXPECT_LT(d.mean(), -7300.9);
    EXPECT_GT(d.stddev(), 50.0); // multimodal spread
}

TEST(Generators, PosturalTransitionsMatchesTableOne)
{
    Dataset d = makePosturalTransitions();
    EXPECT_EQ(d.size(), 10929u);
    EXPECT_NO_THROW(d.validate());
    EXPECT_NEAR(d.mean(), 0.15, 0.05);
    EXPECT_NEAR(d.stddev(), 0.32, 0.05);
}

TEST(Generators, AllTableOneDatasetsPresent)
{
    auto all = makeAllTableOneDatasets();
    EXPECT_EQ(all.size(), 7u);
    for (const auto &d : all) {
        EXPECT_FALSE(d.name.empty());
        EXPECT_GT(d.size(), 100u);
        EXPECT_NO_THROW(d.validate());
    }
}

TEST(Generators, DeterministicPerSeed)
{
    Dataset a = makeStatlogHeart(5);
    Dataset b = makeStatlogHeart(5);
    Dataset c = makeStatlogHeart(6);
    EXPECT_EQ(a.values, b.values);
    EXPECT_NE(a.values, c.values);
}

TEST(Generators, GenderColumnIsBinary)
{
    Dataset d = makeStatlogGender(270, 0.68);
    EXPECT_EQ(d.size(), 270u);
    size_t males = 0;
    for (double v : d.values) {
        EXPECT_TRUE(v == 0.0 || v == 1.0);
        if (v == 1.0)
            ++males;
    }
    EXPECT_NEAR(static_cast<double>(males) / 270.0, 0.68, 0.1);
}

TEST(Generators, LowLevelBuildersRespectBounds)
{
    auto g = gen::clippedGaussian(1000, 0.0, 100.0, -1.0, 1.0, 1);
    for (double v : g) {
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
    }
    auto u = gen::uniform(1000, 2.0, 3.0, 1);
    for (double v : u) {
        EXPECT_GE(v, 2.0);
        EXPECT_LE(v, 3.0);
    }
    auto s = gen::rightSkewed(1000, 1.0, 0.0, 5.0, 1);
    for (double v : s) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 5.0);
    }
}

} // anonymous namespace
} // namespace ulpdp
