/**
 * @file
 * Tests for the multi-sensor shared budget pool (Section IV).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/shared_budget.h"

namespace ulpdp {
namespace {

FxpMechanismParams
sensorParams(double lo, double hi, uint64_t seed)
{
    FxpMechanismParams p;
    p.range = SensorRange(lo, hi);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = (hi - lo) / 32.0;
    p.seed = seed;
    return p;
}

std::vector<BudgetSegment>
segmentsFor(const FxpMechanismParams &p)
{
    ThresholdCalculator calc(p);
    return LossSegments::compute(calc, RangeControl::Thresholding,
                                 {1.5, 2.0});
}

TEST(SharedBudgetPool, RejectsBadBudget)
{
    EXPECT_THROW(SharedBudgetPool(0.0), FatalError);
}

TEST(SharedBudgetPool, ChargesUntilEmpty)
{
    SharedBudgetPool pool(1.0);
    EXPECT_TRUE(pool.tryCharge(0.6));
    EXPECT_FALSE(pool.tryCharge(0.5));
    EXPECT_DOUBLE_EQ(pool.remaining(), 0.4);
    EXPECT_TRUE(pool.tryCharge(0.4));
    EXPECT_DOUBLE_EQ(pool.totalCharged(), 1.0);
}

TEST(SharedBudgetPool, FailedChargeLeavesPoolIntact)
{
    SharedBudgetPool pool(1.0);
    EXPECT_FALSE(pool.tryCharge(2.0));
    EXPECT_DOUBLE_EQ(pool.remaining(), 1.0);
    EXPECT_DOUBLE_EQ(pool.totalCharged(), 0.0);
}

TEST(SharedBudgetPool, Replenishes)
{
    SharedBudgetPool pool(1.0, 100);
    pool.tryCharge(1.0);
    EXPECT_FALSE(pool.tryCharge(0.1));
    pool.advanceTime(99);
    EXPECT_FALSE(pool.tryCharge(0.1));
    pool.advanceTime(1);
    EXPECT_TRUE(pool.tryCharge(0.1));
    // totalCharged accumulates across epochs.
    EXPECT_DOUBLE_EQ(pool.totalCharged(), 1.1);
}

TEST(BudgetedSensor, RejectsBadSegments)
{
    SharedBudgetPool pool(10.0);
    FxpMechanismParams p = sensorParams(0.0, 10.0, 1);
    EXPECT_THROW(BudgetedSensor("s", p, RangeControl::Thresholding,
                                {}, pool),
                 FatalError);
}

TEST(BudgetedSensor, TwoSensorsDrainOnePool)
{
    SharedBudgetPool pool(5.0);
    FxpMechanismParams pa = sensorParams(0.0, 10.0, 1);
    FxpMechanismParams pb = sensorParams(-1.0, 1.0, 2);
    BudgetedSensor accel("accel", pa, RangeControl::Thresholding,
                         segmentsFor(pa), pool);
    BudgetedSensor gyro("gyro", pb, RangeControl::Thresholding,
                        segmentsFor(pb), pool);

    // Alternate requests; the combined charges must never exceed the
    // shared pool.
    double charged = 0.0;
    for (int i = 0; i < 60; ++i) {
        charged += accel.request(5.0).charged;
        charged += gyro.request(0.3).charged;
    }
    EXPECT_LE(charged, 5.0 + 1e-9);
    EXPECT_NEAR(charged, pool.totalCharged(), 1e-12);
    // Both sensors eventually hit the cache.
    EXPECT_GT(accel.cacheHits() + gyro.cacheHits(), 0u);
}

TEST(BudgetedSensor, OneGreedySensorStarvesTheOther)
{
    // The point of sharing: sensor A's requests consume budget that
    // sensor B then cannot spend -- combining streams cannot exceed
    // the pool.
    SharedBudgetPool pool(3.0);
    FxpMechanismParams pa = sensorParams(0.0, 10.0, 3);
    FxpMechanismParams pb = sensorParams(0.0, 10.0, 4);
    BudgetedSensor greedy("greedy", pa, RangeControl::Thresholding,
                          segmentsFor(pa), pool);
    BudgetedSensor victim("victim", pb, RangeControl::Thresholding,
                          segmentsFor(pb), pool);

    for (int i = 0; i < 50; ++i)
        greedy.request(5.0);
    EXPECT_LT(pool.remaining(), 0.8);

    BudgetResponse r = victim.request(5.0);
    // With the pool nearly dry the victim's first real report likely
    // cannot be afforded; either way its total spend is bounded by
    // what the greedy sensor left.
    double victim_spend = r.charged;
    for (int i = 0; i < 20; ++i)
        victim_spend += victim.request(5.0).charged;
    EXPECT_LE(victim_spend, 0.8 + 1e-9);
}

TEST(BudgetedSensor, CacheReplaysOwnValueNotOthers)
{
    SharedBudgetPool pool(2.0);
    FxpMechanismParams pa = sensorParams(0.0, 10.0, 5);
    FxpMechanismParams pb = sensorParams(100.0, 200.0, 6);
    BudgetedSensor a("a", pa, RangeControl::Thresholding,
                     segmentsFor(pa), pool);
    BudgetedSensor b("b", pb, RangeControl::Thresholding,
                     segmentsFor(pb), pool);

    double a_fresh = a.request(5.0).value;
    double b_fresh = b.request(150.0).value;
    // Drain the pool.
    for (int i = 0; i < 40; ++i) {
        a.request(5.0);
        b.request(150.0);
    }
    BudgetResponse ra = a.request(5.0);
    BudgetResponse rb = b.request(150.0);
    ASSERT_TRUE(ra.from_cache);
    ASSERT_TRUE(rb.from_cache);
    // Each sensor's cache lives in its own range.
    EXPECT_GE(rb.value, 0.0);
    EXPECT_NE(ra.value, rb.value);
    (void)a_fresh;
    (void)b_fresh;
}

TEST(BudgetedSensor, ResamplingModeWorks)
{
    SharedBudgetPool pool(1e9);
    FxpMechanismParams p = sensorParams(0.0, 10.0, 7);
    ThresholdCalculator calc(p);
    auto segs = LossSegments::compute(calc, RangeControl::Resampling,
                                      {1.5, 2.0});
    BudgetedSensor s("s", p, RangeControl::Resampling, segs, pool);
    uint64_t samples = 0;
    for (int i = 0; i < 2000; ++i)
        samples += s.request(0.0).samples_drawn;
    EXPECT_GE(samples, 2000u);
    EXPECT_EQ(s.freshReports(), 2000u);
}

TEST(BudgetedSensor, MidpointBeforeAnyFreshReport)
{
    SharedBudgetPool pool(1e-6); // too small for any report
    FxpMechanismParams p = sensorParams(0.0, 10.0, 8);
    BudgetedSensor s("s", p, RangeControl::Thresholding,
                     segmentsFor(p), pool);
    BudgetResponse r = s.request(9.0);
    EXPECT_TRUE(r.from_cache);
    EXPECT_DOUBLE_EQ(r.value, 5.0); // range midpoint: data-free
}

TEST(BudgetedSensor, HaltedRequestConsumesNoRandomness)
{
    // Halt-then-serve: a sensor the pool cannot afford must not
    // advance its URNG or draw samples -- the halted stream stays
    // energy-free and its RNG state stays in lockstep with an
    // untouched twin.
    SharedBudgetPool pool(1e-6);
    FxpMechanismParams p = sensorParams(0.0, 10.0, 9);
    BudgetedSensor s("s", p, RangeControl::Thresholding,
                     segmentsFor(p), pool);
    const Tausworthe &u = s.rng().urng();
    uint32_t s1 = u.s1(), s2 = u.s2(), s3 = u.s3();

    for (int i = 0; i < 10; ++i) {
        BudgetResponse r = s.request(9.0);
        EXPECT_TRUE(r.from_cache);
        EXPECT_EQ(r.samples_drawn, 0u);
    }
    EXPECT_EQ(s.rng().samplesDrawn(), 0u);
    EXPECT_EQ(u.s1(), s1);
    EXPECT_EQ(u.s2(), s2);
    EXPECT_EQ(u.s3(), s3);
}

} // anonymous namespace
} // namespace ulpdp
