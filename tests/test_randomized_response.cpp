/**
 * @file
 * Tests for randomized response on the DP-Box datapath (Section VI-E).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/randomized_response.h"

namespace ulpdp {
namespace {

FxpMechanismParams
rrParams(double epsilon = 1.0)
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 1.0);
    p.epsilon = epsilon;
    p.uniform_bits = 16;
    p.output_bits = 12;
    p.delta = 1.0 / 32.0;
    return p;
}

TEST(RandomizedResponse, OutputAlwaysBinary)
{
    RandomizedResponse rr(rrParams());
    for (int i = 0; i < 10000; ++i) {
        double y = rr.noise(i % 2 == 0 ? 0.0 : 1.0).value;
        EXPECT_TRUE(y == 0.0 || y == 1.0) << "y=" << y;
    }
}

TEST(RandomizedResponse, FlipProbabilityMatchesIdealFormula)
{
    // Ideal: q = exp(-eps/2) / 2. The fixed-point tail must be within
    // a quantization step of it.
    for (double eps : {0.5, 1.0, 2.0}) {
        RandomizedResponse rr(rrParams(eps));
        double ideal = 0.5 * std::exp(-eps / 2.0);
        EXPECT_NEAR(rr.flipProbability(), ideal, 0.02)
            << "eps=" << eps;
    }
}

TEST(RandomizedResponse, EmpiricalFlipRateMatches)
{
    RandomizedResponse rr(rrParams(1.0));
    const int n = 100000;
    int flips = 0;
    for (int i = 0; i < n; ++i) {
        if (rr.noise(1.0).value == 0.0)
            ++flips;
    }
    double q = rr.flipProbability();
    EXPECT_NEAR(static_cast<double>(flips) / n, q,
                5.0 * std::sqrt(q * (1.0 - q) / n));
}

TEST(RandomizedResponse, ExactLossBoundedByEpsilon)
{
    // log((1-q)/q) = log(2 e^{eps/2} - 1) <= eps for the ideal flip
    // probability; the fixed-point one must stay near it and below a
    // small slack.
    for (double eps : {0.5, 1.0, 2.0}) {
        RandomizedResponse rr(rrParams(eps));
        double ideal_loss = std::log(2.0 * std::exp(eps / 2.0) - 1.0);
        EXPECT_NEAR(rr.exactLoss(), ideal_loss, 0.1) << "eps=" << eps;
        EXPECT_LE(rr.exactLoss(), eps + 0.05) << "eps=" << eps;
    }
}

TEST(RandomizedResponse, EstimatorDebiases)
{
    RandomizedResponse rr(rrParams(1.0));
    double q = rr.flipProbability();
    // If the true proportion is p, the observed hi fraction is
    // p(1-q) + (1-p)q; the estimator must invert that exactly.
    for (double p : {0.0, 0.25, 0.68, 1.0}) {
        double observed = p * (1.0 - q) + (1.0 - p) * q;
        EXPECT_NEAR(rr.estimateProportion(observed), p, 1e-12);
    }
}

TEST(RandomizedResponse, EstimatorClampsToUnitInterval)
{
    RandomizedResponse rr(rrParams(1.0));
    EXPECT_DOUBLE_EQ(rr.estimateProportion(0.0), 0.0);
    EXPECT_DOUBLE_EQ(rr.estimateProportion(1.0), 1.0);
}

TEST(RandomizedResponse, EndToEndProportionEstimate)
{
    RandomizedResponse rr(rrParams(1.0));
    const int n = 60000;
    const double true_p = 0.68;
    int hi = 0;
    for (int i = 0; i < n; ++i) {
        double x = (i % 100) < 68 ? 1.0 : 0.0;
        if (rr.noise(x).value == 1.0)
            ++hi;
    }
    double est = rr.estimateProportion(static_cast<double>(hi) / n);
    EXPECT_NEAR(est, true_p, 0.02);
}

TEST(RandomizedResponse, IntermediateInputsSnapToCategory)
{
    RandomizedResponse rr(rrParams(1.0));
    // 0.9 snaps to category 1; the truthful-report rate for it must
    // match 1 - q.
    const int n = 50000;
    int hi = 0;
    for (int i = 0; i < n; ++i) {
        if (rr.noise(0.9).value == 1.0)
            ++hi;
    }
    double expect = 1.0 - rr.flipProbability();
    EXPECT_NEAR(static_cast<double>(hi) / n, expect, 0.02);
}

TEST(RandomizedResponse, MoreDataImprovesAccuracy)
{
    // Fig. 14's shape: MAE of the estimated count shrinks with n.
    auto mae = [](int n, uint64_t seed) {
        FxpMechanismParams p = rrParams(1.0);
        p.seed = seed;
        RandomizedResponse rr(p);
        const double true_p = 0.68;
        double err_sum = 0.0;
        const int trials = 30;
        for (int t = 0; t < trials; ++t) {
            int hi = 0;
            for (int i = 0; i < n; ++i) {
                double x = (i % 100) < 68 ? 1.0 : 0.0;
                if (rr.noise(x).value == 1.0)
                    ++hi;
            }
            double est =
                rr.estimateProportion(static_cast<double>(hi) / n);
            err_sum += std::abs(est - true_p);
        }
        return err_sum / trials;
    };
    EXPECT_GT(mae(100, 5), mae(10000, 6));
}

TEST(RandomizedResponse, MetadataCorrect)
{
    RandomizedResponse rr(rrParams(1.0));
    EXPECT_TRUE(rr.guaranteesLdp());
    EXPECT_EQ(rr.name(), "Randomized Response");
    EXPECT_EQ(rr.noise(1.0).samples_drawn, 1u);
}

} // anonymous namespace
} // namespace ulpdp
