/**
 * @file
 * Tests for the table-driven sampling fast path: bit-exactness
 * against the naive pipeline, exact PMF equivalence across
 * configuration sweeps, and truncated direct inversion matching the
 * accept-reject conditional distribution.
 */

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "rng/fxp_laplace.h"
#include "rng/fxp_laplace_pmf.h"
#include "rng/laplace_table.h"

namespace ulpdp {
namespace {

FxpLaplaceConfig
sweepConfig(int uniform_bits, double delta,
            FxpLaplaceConfig::LogMode log_mode =
                FxpLaplaceConfig::LogMode::Reference)
{
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = uniform_bits;
    cfg.output_bits = 12;
    cfg.delta = delta;
    cfg.lambda = 20.0;
    cfg.log_mode = log_mode;
    return cfg;
}

/** The (Bu, Delta) sweep the equivalence tests run over. */
const std::vector<std::pair<int, double>> kSweep = {
    {8, 10.0 / 8.0},  {10, 10.0 / 32.0}, {12, 10.0 / 32.0},
    {14, 10.0 / 32.0}, {14, 10.0 / 128.0}, {17, 10.0 / 32.0},
};

TEST(LaplaceSampleTable, StreamBitExactWithNaivePipeline)
{
    for (auto [bu, delta] : kSweep) {
        FxpLaplaceConfig naive = sweepConfig(bu, delta);
        naive.sample_path = FxpLaplaceConfig::SamplePath::Naive;
        FxpLaplaceConfig fast = sweepConfig(bu, delta);
        fast.sample_path = FxpLaplaceConfig::SamplePath::Table;

        FxpLaplaceRng a(naive, 42);
        FxpLaplaceRng b(fast, 42);
        ASSERT_FALSE(a.fastPathEnabled());
        ASSERT_TRUE(b.fastPathEnabled());
        for (int i = 0; i < 2000; ++i)
            ASSERT_EQ(a.sampleIndex(), b.sampleIndexFast())
                << "Bu=" << bu << " delta=" << delta << " draw " << i;
    }
}

TEST(LaplaceSampleTable, CordicStreamBitExactWithNaivePipeline)
{
    // The table is enumerated from the actual datapath, so it must
    // reproduce the CORDIC log's LSB quirks too.
    FxpLaplaceConfig naive =
        sweepConfig(14, 10.0 / 32.0, FxpLaplaceConfig::LogMode::Cordic);
    naive.sample_path = FxpLaplaceConfig::SamplePath::Naive;
    FxpLaplaceConfig fast = naive;
    fast.sample_path = FxpLaplaceConfig::SamplePath::Table;

    FxpLaplaceRng a(naive, 7);
    FxpLaplaceRng b(fast, 7);
    for (int i = 0; i < 2000; ++i)
        ASSERT_EQ(a.sampleIndex(), b.sampleIndexFast());
}

TEST(LaplaceSampleTable, BatchMatchesScalarDraws)
{
    FxpLaplaceConfig cfg = sweepConfig(14, 10.0 / 32.0);
    FxpLaplaceRng scalar(cfg, 11);
    FxpLaplaceRng batched(cfg, 11);

    std::vector<int64_t> batch(512);
    batched.sampleBatch(batch.data(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        ASSERT_EQ(batch[i], scalar.sampleIndexFast()) << "draw " << i;
    EXPECT_EQ(batched.samplesDrawn(), scalar.samplesDrawn());

    // Naive-path batches fall back to the reference pipeline and
    // still consume the identical URNG stream.
    cfg.sample_path = FxpLaplaceConfig::SamplePath::Naive;
    FxpLaplaceRng naive_scalar(cfg, 11);
    FxpLaplaceRng naive_batched(cfg, 11);
    naive_batched.sampleBatch(batch.data(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        ASSERT_EQ(batch[i], naive_scalar.sampleIndex());
}

TEST(LaplaceSampleTable, CountsMatchExactPmfAcrossSweep)
{
    // The table's cumulative counts are exactly the enumerated PMF's
    // per-index state counts -- the table *is* the PMF, reorganised
    // for O(1) serving.
    for (auto [bu, delta] : kSweep) {
        FxpLaplaceConfig cfg = sweepConfig(bu, delta);
        FxpLaplaceRng rng(cfg);
        const LaplaceSampleTable &table = rng.table();
        FxpLaplacePmf pmf(cfg, FxpLaplacePmf::Mode::Enumerated);

        ASSERT_EQ(table.maxIndex(), pmf.maxIndex());
        uint64_t cum = 0;
        for (int64_t k = 0; k <= table.maxIndex(); ++k) {
            cum += pmf.magnitudeCount(k);
            ASSERT_EQ(table.cumulativeCount(k), cum)
                << "Bu=" << bu << " delta=" << delta << " k=" << k;
        }
        ASSERT_EQ(table.cumulativeCount(table.maxIndex()),
                  uint64_t{1} << bu);

        // The rank table inverts the cumulative table run for run.
        for (int64_t k = 0; k <= table.maxIndex(); ++k) {
            uint64_t lo = table.cumulativeCount(k - 1);
            uint64_t hi = table.cumulativeCount(k);
            for (uint64_t r = lo; r < hi; ++r)
                ASSERT_EQ(table.lookupByRank(r), k);
        }
    }
}

TEST(LaplaceSampleTable, EmpiricalDistributionMatchesPmf)
{
    FxpLaplaceConfig cfg = sweepConfig(12, 10.0 / 32.0);
    FxpLaplaceRng rng(cfg, 3);
    FxpLaplacePmf pmf(cfg, FxpLaplacePmf::Mode::Enumerated);

    const int n = 400000;
    std::map<int64_t, int> counts;
    for (int i = 0; i < n; ++i)
        ++counts[rng.sampleIndexFast()];

    // Total-variation distance between the empirical draw histogram
    // and the exact PMF; fixed seed keeps this deterministic.
    double tv = 0.0;
    for (int64_t k = -pmf.maxIndex(); k <= pmf.maxIndex(); ++k) {
        auto it = counts.find(k);
        double emp =
            it == counts.end()
                ? 0.0
                : static_cast<double>(it->second) / n;
        tv += std::abs(emp - pmf.pmf(k));
    }
    EXPECT_LT(0.5 * tv, 0.02);
}

TEST(LaplaceSampleTable, TruncatedInversionMatchesAcceptReject)
{
    // Accept-reject over a window is, by definition, uniform over the
    // URNG states whose output lands inside it. The truncated sampler
    // draws a uniform rank over those states, so enumerating every
    // rank must reproduce the accept-reject conditional state counts
    // exactly -- no statistics involved.
    FxpLaplaceConfig cfg = sweepConfig(12, 10.0 / 32.0);
    FxpLaplaceRng rng(cfg);
    const LaplaceSampleTable &table = rng.table();
    FxpLaplacePmf pmf(cfg, FxpLaplacePmf::Mode::Enumerated);

    const std::vector<std::pair<int64_t, int64_t>> windows = {
        {-5, 5}, {-80, 3}, {-1, 200}, {0, 0}, {-2, 0},
    };
    for (auto [lo, hi] : windows) {
        uint64_t plus = table.cumulativeCount(hi);
        uint64_t minus = table.cumulativeCount(-lo);
        uint64_t total = plus + minus;
        ASSERT_GT(total, 0u);

        // Tally every rank through the same mapping the sampler uses.
        std::map<int64_t, uint64_t> tally;
        for (uint64_t r = 0; r < total; ++r) {
            int64_t k = r < plus ? table.lookupByRank(r)
                                 : -table.lookupByRank(r - plus);
            ++tally[k];
        }

        // Accept-reject state counts: one sign per nonzero index,
        // both signs collapse onto zero.
        for (int64_t j = lo; j <= hi; ++j) {
            uint64_t expected =
                pmf.magnitudeCount(j >= 0 ? j : -j);
            if (j == 0)
                expected *= 2;
            uint64_t got = tally.count(j) ? tally[j] : 0;
            ASSERT_EQ(got, expected)
                << "window [" << lo << ", " << hi << "] j=" << j;
            tally.erase(j);
        }
        // Nothing outside the window is reachable.
        ASSERT_TRUE(tally.empty());
    }
}

TEST(LaplaceSampleTable, TruncatedEmpiricalMatchesAcceptRejectDraws)
{
    // End-to-end: the actual truncated sampler against an actual
    // accept-reject loop, same window, independent streams.
    FxpLaplaceConfig cfg = sweepConfig(12, 10.0 / 32.0);
    const int64_t lo = -10, hi = 25;
    const int n = 200000;

    FxpLaplaceRng fast(cfg, 5);
    std::map<int64_t, int> fast_counts;
    for (int i = 0; i < n; ++i) {
        int64_t k;
        ASSERT_TRUE(fast.sampleIndexTruncated(lo, hi, k));
        ASSERT_GE(k, lo);
        ASSERT_LE(k, hi);
        ++fast_counts[k];
    }

    cfg.sample_path = FxpLaplaceConfig::SamplePath::Naive;
    FxpLaplaceRng naive(cfg, 6);
    std::map<int64_t, int> naive_counts;
    for (int i = 0; i < n; ++i) {
        int64_t k;
        do {
            k = naive.sampleIndex();
        } while (k < lo || k > hi);
        ++naive_counts[k];
    }

    double tv = 0.0;
    for (int64_t k = lo; k <= hi; ++k) {
        double a = fast_counts.count(k)
                       ? static_cast<double>(fast_counts[k]) / n
                       : 0.0;
        double b = naive_counts.count(k)
                       ? static_cast<double>(naive_counts[k]) / n
                       : 0.0;
        tv += std::abs(a - b);
    }
    EXPECT_LT(0.5 * tv, 0.02);
}

TEST(LaplaceSampleTable, AutoPathResolvesAgainstLimits)
{
    FxpLaplaceConfig cfg = sweepConfig(14, 10.0 / 32.0);
    EXPECT_TRUE(FxpLaplaceRng(cfg).fastPathEnabled());

    // A URNG too wide to enumerate falls back to the naive pipeline.
    cfg.uniform_bits = 30;
    EXPECT_FALSE(FxpLaplaceRng(cfg).fastPathEnabled());
    EXPECT_FALSE(LaplaceSampleTable::supports(30, 100));

    // Demanding the table for it is a configuration error.
    cfg.sample_path = FxpLaplaceConfig::SamplePath::Table;
    FxpLaplaceRng rng(cfg);
    EXPECT_THROW(rng.table(), FatalError);
}

TEST(LaplaceSampleTable, ReportsMemoryFootprint)
{
    FxpLaplaceConfig cfg = sweepConfig(14, 10.0 / 32.0);
    FxpLaplaceRng rng(cfg);
    const LaplaceSampleTable &table = rng.table();
    EXPECT_EQ(table.states(), uint64_t{1} << 14);
    // direct + rank at two bytes a state, plus the cumulative ROM.
    EXPECT_GE(table.memoryBytes(), 2 * 2 * table.states());
}

} // anonymous namespace
} // namespace ulpdp
