/**
 * @file
 * Tests for hardened ("no software trusted") DP-Box mode: fused
 * privacy parameters that untrusted software cannot weaken
 * (Section IV of the paper).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "dpbox/dpbox.h"

namespace ulpdp {
namespace {

DpBoxConfig
hardenedConfig()
{
    DpBoxConfig cfg;
    cfg.frac_bits = 5;
    cfg.word_bits = 20;
    cfg.uniform_bits = 17;
    cfg.threshold_index = 500;
    cfg.thresholding = true;
    cfg.hardened = true;
    cfg.fused_n_m = 1;      // eps fused at 0.5
    cfg.fused_range_lo = 0; // [0, 10] at LSB 1/32
    cfg.fused_range_hi = 320;
    return cfg;
}

/** Boot a hardened device past initialization. */
void
boot(DpBox &box)
{
    box.step(DpBoxCommand::SetEpsilon, 256 * 100); // budget
    box.step(DpBoxCommand::StartNoising);
}

double
noiseSpread(DpBox &box, int samples)
{
    RunningStats stats;
    for (int i = 0; i < samples; ++i) {
        box.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
        box.step(DpBoxCommand::StartNoising);
        while (!box.ready())
            box.step(DpBoxCommand::DoNothing);
        stats.add(box.fromRaw(box.output()));
    }
    return stats.stddev();
}

TEST(Hardened, RejectsInvalidFusing)
{
    DpBoxConfig cfg = hardenedConfig();
    cfg.fused_range_hi = cfg.fused_range_lo;
    EXPECT_THROW(DpBox box(cfg), FatalError);

    cfg = hardenedConfig();
    cfg.fused_n_m = 20;
    EXPECT_THROW(DpBox box(cfg), FatalError);
}

TEST(Hardened, WorksWithoutAnyConfigurationCommands)
{
    // Fused parameters make the device usable straight after boot.
    DpBox box(hardenedConfig());
    boot(box);
    box.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
    box.step(DpBoxCommand::StartNoising);
    while (!box.ready())
        box.step(DpBoxCommand::DoNothing);
    EXPECT_TRUE(box.ready());
    EXPECT_EQ(box.nm(), 1);
}

TEST(Hardened, MaliciousEpsilonReductionIgnored)
{
    // Attacker tries n_m = 0 (eps = 1: half the noise). The command
    // must be dead: the register holds and the spread is unchanged.
    DpBox box(hardenedConfig());
    boot(box);
    box.step(DpBoxCommand::SetEpsilon, 0);
    EXPECT_EQ(box.nm(), 1);

    DpBox honest(hardenedConfig());
    boot(honest);
    double attacked = noiseSpread(box, 20000);
    double clean = noiseSpread(honest, 20000);
    EXPECT_NEAR(attacked, clean, 0.1 * clean);
}

TEST(Hardened, RangeShrinkAttackIgnored)
{
    // Shrinking the declared range shrinks lambda = d * 2^n_m and
    // thus the noise. The hardened device must not budge.
    DpBox box(hardenedConfig());
    boot(box);
    box.step(DpBoxCommand::SetRangeLower, box.toRaw(4.9));
    box.step(DpBoxCommand::SetRangeUpper, box.toRaw(5.1));
    double spread = noiseSpread(box, 20000);

    DpBox honest(hardenedConfig());
    boot(honest);
    EXPECT_NEAR(spread, noiseSpread(honest, 20000),
                0.1 * spread);
}

TEST(Hardened, ModeToggleIgnored)
{
    DpBox box(hardenedConfig());
    boot(box);
    EXPECT_TRUE(box.thresholdingMode());
    box.step(DpBoxCommand::SetThreshold);
    EXPECT_TRUE(box.thresholdingMode());
}

TEST(Hardened, BudgetStillConfigurableAtInit)
{
    // Hardening locks privacy parameters, not the secure-boot budget
    // configuration (which happens before untrusted code runs).
    DpBox box(hardenedConfig());
    box.step(DpBoxCommand::SetEpsilon, 256 * 7);
    box.step(DpBoxCommand::StartNoising);
    EXPECT_DOUBLE_EQ(box.remainingBudget(), 7.0);
}

TEST(Hardened, NonHardenedStillConfigurable)
{
    // Control case: the same commands do work on a soft device.
    DpBoxConfig cfg = hardenedConfig();
    cfg.hardened = false;
    DpBox box(cfg);
    boot(box);
    box.step(DpBoxCommand::SetEpsilon, 3);
    EXPECT_EQ(box.nm(), 3);
    box.step(DpBoxCommand::SetThreshold);
    EXPECT_FALSE(box.thresholdingMode());
}

} // anonymous namespace
} // namespace ulpdp
