/**
 * @file
 * Tests for the synthetic sensor time-series generators.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "data/timeseries.h"

namespace ulpdp {
namespace {

const SensorRange kRange(0.0, 10.0);

TEST(Timeseries, WalkStaysInRange)
{
    auto w = timeseries::meanRevertingWalk(5000, kRange, 5.0, 0.05,
                                           0.5, 1);
    EXPECT_EQ(w.size(), 5000u);
    for (double v : w) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 10.0);
    }
}

TEST(Timeseries, WalkRevertsToMean)
{
    auto w = timeseries::meanRevertingWalk(50000, kRange, 7.0, 0.1,
                                           0.3, 2);
    RunningStats s;
    for (double v : w)
        s.add(v);
    EXPECT_NEAR(s.mean(), 7.0, 0.3);
}

TEST(Timeseries, WalkIsAutocorrelated)
{
    auto w = timeseries::meanRevertingWalk(20000, kRange, 5.0, 0.02,
                                           0.2, 3);
    double num = 0.0;
    double den = 0.0;
    RunningStats s;
    for (double v : w)
        s.add(v);
    double mu = s.mean();
    for (size_t t = 1; t < w.size(); ++t) {
        num += (w[t] - mu) * (w[t - 1] - mu);
        den += (w[t] - mu) * (w[t] - mu);
    }
    EXPECT_GT(num / den, 0.8); // strongly persistent
}

TEST(Timeseries, WalkRejectsBadRate)
{
    EXPECT_THROW(timeseries::meanRevertingWalk(10, kRange, 5.0, 1.5,
                                               0.1, 1),
                 FatalError);
}

TEST(Timeseries, DiurnalHasThePeriod)
{
    size_t period = 96;
    auto d = timeseries::diurnal(period * 20, kRange, 5.0, 3.0,
                                 period, 0.0, 4);
    // Noise-free: the signal repeats exactly every period.
    for (size_t t = 0; t + period < d.size(); t += 7)
        EXPECT_NEAR(d[t], d[t + period], 1e-9);
    // And spans roughly base +- amplitude.
    RunningStats s;
    for (double v : d)
        s.add(v);
    EXPECT_NEAR(s.max(), 8.0, 0.01);
    EXPECT_NEAR(s.min(), 2.0, 0.01);
}

TEST(Timeseries, DiurnalClipsJitter)
{
    auto d = timeseries::diurnal(5000, kRange, 9.0, 3.0, 48, 1.0, 5);
    for (double v : d) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 10.0);
    }
}

TEST(Timeseries, DiurnalRejectsZeroPeriod)
{
    EXPECT_THROW(timeseries::diurnal(10, kRange, 5.0, 1.0, 0, 0.1, 1),
                 FatalError);
}

TEST(Timeseries, LevelsAreDiscrete)
{
    auto l = timeseries::piecewiseLevels(5000, kRange, 5, 0.02, 6);
    for (double v : l) {
        double idx = v / 2.5; // 5 levels over [0, 10]: step 2.5
        EXPECT_NEAR(idx, std::round(idx), 1e-9);
    }
}

TEST(Timeseries, LevelsHold)
{
    auto l = timeseries::piecewiseLevels(10000, kRange, 4, 0.01, 7);
    size_t switches = 0;
    for (size_t t = 1; t < l.size(); ++t) {
        if (l[t] != l[t - 1])
            ++switches;
    }
    // Switch probability 1%, but a switch can re-pick the same
    // level; expect clearly fewer than 2% observed changes.
    EXPECT_LT(switches, l.size() / 50);
    EXPECT_GT(switches, 0u);
}

TEST(Timeseries, LevelsRejectBadParams)
{
    EXPECT_THROW(timeseries::piecewiseLevels(10, kRange, 1, 0.1, 1),
                 FatalError);
    EXPECT_THROW(timeseries::piecewiseLevels(10, kRange, 3, 1.5, 1),
                 FatalError);
}

TEST(Timeseries, Deterministic)
{
    auto a = timeseries::meanRevertingWalk(100, kRange, 5, 0.1, 0.2,
                                           9);
    auto b = timeseries::meanRevertingWalk(100, kRange, 5, 0.1, 0.2,
                                           9);
    EXPECT_EQ(a, b);
}

} // anonymous namespace
} // namespace ulpdp
