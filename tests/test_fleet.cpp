/**
 * @file
 * Tests for the parallel fleet engine: the bit-exact determinism
 * contract across thread counts and runs, the degenerate-seed guard
 * in the shard seeder, stream independence of adjacent nodes, and the
 * engine's statistical and accounting behaviour.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "fleet/fleet.h"
#include "fleet/seeder.h"
#include "rng/tausworthe.h"

namespace ulpdp {
namespace {

uint64_t
bits(double v)
{
    uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/** Bitwise equality of two double vectors. */
bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (bits(a[i]) != bits(b[i]))
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Seeder
// ---------------------------------------------------------------------

TEST(FleetSeeder, NodeSeedsNeverDegenerate)
{
    // Degenerate Tausworthe seeds get silently bumped by the
    // constructor, aliasing two streams; the seeder must never emit
    // one, whatever the master seed.
    for (uint64_t master : {uint64_t{0}, uint64_t{1}, uint64_t{42},
                            ~uint64_t{0}}) {
        FleetSeeder seeder(master);
        for (uint32_t cohort = 0; cohort < 3; ++cohort) {
            for (uint64_t node = 0; node < 2000; ++node) {
                uint64_t s = seeder.nodeSeed(cohort, node);
                EXPECT_NE(s, 0u);
                EXPECT_FALSE(Tausworthe::seedDegenerate(s));
            }
        }
    }
}

TEST(FleetSeeder, SeedsDistinctAcrossNodesAndCohorts)
{
    FleetSeeder seeder(7);
    std::set<uint64_t> seen;
    for (uint32_t cohort = 0; cohort < 4; ++cohort)
        for (uint64_t node = 0; node < 5000; ++node)
            seen.insert(seeder.nodeSeed(cohort, node));
    EXPECT_EQ(seen.size(), 4u * 5000u);
}

TEST(FleetSeeder, SubSeedDecorrelatedFromNodeSeed)
{
    FleetSeeder seeder(7);
    for (uint64_t node = 0; node < 100; ++node) {
        uint64_t base = seeder.nodeSeed(0, node);
        uint64_t sub0 = seeder.nodeSubSeed(0, node, 0);
        uint64_t sub1 = seeder.nodeSubSeed(0, node, 1);
        EXPECT_NE(base, sub0);
        EXPECT_NE(sub0, sub1);
    }
    // Deterministic.
    EXPECT_EQ(seeder.nodeSubSeed(2, 17, 3),
              FleetSeeder(7).nodeSubSeed(2, 17, 3));
}

// The SplitMix64 finalizer is a bijection (two xorshift-multiply
// steps), so it can be inverted to *construct* seeds whose expanded
// component words are degenerate -- random search would need ~2^27
// tries per hit.

uint64_t
mulInverse(uint64_t a)
{
    // Newton iteration doubles the valid low bits each round.
    uint64_t x = a;
    for (int i = 0; i < 6; ++i)
        x *= 2 - a * x;
    return x;
}

uint64_t
invXorShift(uint64_t z, int shift)
{
    uint64_t x = z;
    for (int i = 0; i < 7; ++i)
        x = z ^ (x >> shift);
    return x;
}

/** The SplitMix64 finalizer used by Tausworthe::expandSeed. */
uint64_t
smFinalize(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
smFinalizeInverse(uint64_t z)
{
    z = invXorShift(z, 31);
    z *= mulInverse(0x94d049bb133111ebULL);
    z = invXorShift(z, 27);
    z *= mulInverse(0xbf58476d1ce4e5b9ULL);
    z = invXorShift(z, 30);
    return z;
}

constexpr uint64_t kSmGamma = 0x9e3779b97f4a7c15ULL;

TEST(FleetSeeder, FinalizerInverseRoundTrips)
{
    for (uint64_t z : {uint64_t{1}, uint64_t{0xdeadbeef},
                       uint64_t{0x123456789abcdef0ULL}, ~uint64_t{0}}) {
        EXPECT_EQ(smFinalize(smFinalizeInverse(z)), z);
        EXPECT_EQ(smFinalizeInverse(smFinalize(z)), z);
    }
}

TEST(FleetSeeder, DetectsCraftedDegenerateSeeds)
{
    // Seed whose FIRST expanded word is 0 (< 2): the first SplitMix64
    // output is finalize(seed + gamma), so invert the target.
    uint64_t s1_zero =
        smFinalizeInverse(0xdeadbeef00000000ULL) - kSmGamma;
    uint32_t s1, s2, s3;
    Tausworthe::expandSeed(s1_zero, s1, s2, s3);
    ASSERT_EQ(s1, 0u);
    EXPECT_TRUE(Tausworthe::seedDegenerate(s1_zero));

    // Seed whose SECOND expanded word is 5 (< 8).
    uint64_t s2_five =
        smFinalizeInverse(0x1234567800000005ULL) - 2 * kSmGamma;
    Tausworthe::expandSeed(s2_five, s1, s2, s3);
    ASSERT_EQ(s2, 5u);
    EXPECT_TRUE(Tausworthe::seedDegenerate(s2_five));

    // Seed whose THIRD expanded word is 15 (< 16).
    uint64_t s3_low =
        smFinalizeInverse(0xcafef00d0000000fULL) - 3 * kSmGamma;
    Tausworthe::expandSeed(s3_low, s1, s2, s3);
    ASSERT_EQ(s3, 15u);
    EXPECT_TRUE(Tausworthe::seedDegenerate(s3_low));

    // The constructor bumps exactly these words (the aliasing the
    // seeder exists to avoid): seed zero is also degenerate.
    EXPECT_TRUE(Tausworthe::seedDegenerate(0));

    // An ordinary seed is not degenerate.
    EXPECT_FALSE(Tausworthe::seedDegenerate(1));
    EXPECT_FALSE(Tausworthe::seedDegenerate(42));
}

TEST(FleetSeeder, AdjacentNodeStreamsNoOverlapOverMillionDraws)
{
    // Two adjacent nodes' Tausworthe streams must not collide: a
    // collision means the trajectories merge and stay merged forever
    // (the generators are deterministic), halving the fleet's
    // entropy. Compare full (s1, s2, s3) state triples -- comparing
    // 32-bit outputs would drown in birthday-paradox false positives
    // over 2 x 10^6 draws.
    FleetSeeder seeder(1);
    Tausworthe a(seeder.nodeSeed(0, 0));
    Tausworthe b(seeder.nodeSeed(0, 1));

    const size_t kDraws = 1000000;
    std::vector<std::pair<uint64_t, uint64_t>> states_a;
    states_a.reserve(kDraws);
    for (size_t i = 0; i < kDraws; ++i) {
        states_a.emplace_back(
            (static_cast<uint64_t>(a.s1()) << 32) | a.s2(), a.s3());
        a.next32();
    }
    std::sort(states_a.begin(), states_a.end());

    size_t collisions = 0;
    for (size_t i = 0; i < kDraws; ++i) {
        std::pair<uint64_t, uint64_t> s{
            (static_cast<uint64_t>(b.s1()) << 32) | b.s2(), b.s3()};
        if (std::binary_search(states_a.begin(), states_a.end(), s))
            ++collisions;
        b.next32();
    }
    EXPECT_EQ(collisions, 0u);
}

// ---------------------------------------------------------------------
// Determinism contract
// ---------------------------------------------------------------------

FleetConfig
smallFleet()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;

    FleetConfig fc;
    fc.master_seed = 99;
    fc.block_nodes = 256; // several blocks per cohort
    CohortConfig thr;
    thr.name = "thr";
    thr.mechanism = CohortMechanism::Thresholding;
    thr.params = p;
    thr.nodes = 2500;
    thr.reports_per_node = 4;
    thr.budget_per_node = 2.5; // 2 fresh reports at 2*eps
    thr.materialize = true;
    thr.analyze_loss = false;
    CohortConfig res;
    res.name = "res";
    res.mechanism = CohortMechanism::Resampling;
    res.params = p;
    res.nodes = 2500;
    res.reports_per_node = 4;
    res.analyze_loss = false;
    fc.cohorts = {thr, res};
    return fc;
}

void
expectIdentical(const FleetReport &x, const FleetReport &y)
{
    EXPECT_EQ(x.fingerprint(), y.fingerprint());
    ASSERT_EQ(x.cohorts.size(), y.cohorts.size());
    for (size_t c = 0; c < x.cohorts.size(); ++c) {
        const CohortResult &a = x.cohorts[c];
        const CohortResult &b = y.cohorts[c];
        EXPECT_EQ(a.checksum, b.checksum);

        // Floating-point aggregates must match to the BIT, not to a
        // tolerance: that is the whole determinism contract.
        EXPECT_EQ(bits(a.released_stats.mean()),
                  bits(b.released_stats.mean()));
        EXPECT_EQ(bits(a.released_stats.variance()),
                  bits(b.released_stats.variance()));
        EXPECT_EQ(bits(a.error_stats.mean()),
                  bits(b.error_stats.mean()));
        EXPECT_EQ(bits(a.mean_mae), bits(b.mean_mae));
        EXPECT_TRUE(sameBits(a.trial_estimate, b.trial_estimate));
        EXPECT_TRUE(sameBits(a.matrix, b.matrix));

        ASSERT_EQ(a.released_hist.numBins(),
                  b.released_hist.numBins());
        for (size_t i = 0; i < a.released_hist.numBins(); ++i)
            EXPECT_EQ(a.released_hist.count(i),
                      b.released_hist.count(i));
        EXPECT_EQ(a.released_hist.underflow(),
                  b.released_hist.underflow());
        EXPECT_EQ(a.released_hist.overflow(),
                  b.released_hist.overflow());

        EXPECT_EQ(a.samples_drawn, b.samples_drawn);
        EXPECT_EQ(a.resample_overflows, b.resample_overflows);
        EXPECT_EQ(a.fresh_reports, b.fresh_reports);
        EXPECT_EQ(a.cache_replays, b.cache_replays);
        EXPECT_EQ(a.nodes_exhausted, b.nodes_exhausted);
        EXPECT_EQ(a.rng_integrity_detections,
                  b.rng_integrity_detections);
    }
}

TEST(FleetDeterminism, BitIdenticalAcrossThreadCounts)
{
    FleetRunner runner(smallFleet());
    FleetReport one = runner.run(1);
    FleetReport three = runner.run(3);
    FleetReport eight = runner.run(8);
    expectIdentical(one, three);
    expectIdentical(one, eight);
}

TEST(FleetDeterminism, BitIdenticalAcrossSameSeedRuns)
{
    FleetRunner first(smallFleet());
    FleetRunner second(smallFleet());
    expectIdentical(first.run(3), second.run(8));
}

TEST(FleetDeterminism, DifferentMasterSeedDiffers)
{
    FleetConfig fc = smallFleet();
    FleetRunner a(fc);
    fc.master_seed = 100;
    FleetRunner b(fc);
    EXPECT_NE(a.run(2).fingerprint(), b.run(2).fingerprint());
}

// ---------------------------------------------------------------------
// Engine behaviour
// ---------------------------------------------------------------------

TEST(FleetEngine, EstimateTracksTruthAndWindowHolds)
{
    FleetConfig fc = smallFleet();
    fc.cohorts[0].nodes = 20000;
    fc.cohorts[0].budget_per_node = 0.0; // no metering
    fc.cohorts[0].materialize = false;
    fc.cohorts.resize(1);
    FleetRunner runner(fc);
    FleetReport rep = runner.run();
    const CohortResult &c = rep.cohorts[0];

    EXPECT_EQ(c.nodes, 20000u);
    EXPECT_EQ(c.reports, 20000u * 4u);
    EXPECT_EQ(c.true_stats.count(), 20000u);
    EXPECT_EQ(c.fresh_reports, c.reports);
    EXPECT_EQ(c.cache_replays, 0u);
    EXPECT_EQ(c.nodes_exhausted, 0u);
    EXPECT_EQ(c.samples_drawn, c.reports);

    // Synthetic data defaults to the range center; the mean estimate
    // over 80k thresholded reports should sit close to the truth.
    EXPECT_NEAR(c.trueMean(), 5.0, 0.1);
    EXPECT_NEAR(c.estimatedMean(), c.trueMean(), 0.5);

    // Thresholding confines every release to the clamp window, which
    // is exactly the histogram's binned range.
    EXPECT_EQ(c.released_hist.underflow(), 0u);
    EXPECT_EQ(c.released_hist.overflow(), 0u);
    EXPECT_EQ(c.released_hist.total(), c.reports);

    // Ordered merge: every trial estimate is a real number near the
    // truth, and mean_mae summarises them.
    ASSERT_EQ(c.trial_estimate.size(), 4u);
    for (double e : c.trial_estimate)
        EXPECT_NEAR(e, c.trueMean(), 0.5);
    EXPECT_GE(c.mean_mae, 0.0);
}

TEST(FleetEngine, BudgetMeteringCountsFreshAndReplayed)
{
    FleetConfig fc = smallFleet();
    fc.cohorts.resize(1);
    CohortConfig &c = fc.cohorts[0];
    c.nodes = 1000;
    c.reports_per_node = 5;
    // Worst-case charge is loss_multiple * eps = 1.0 per fresh
    // report; a budget of 2.1 affords exactly 2 of the 5.
    c.budget_per_node = 2.1;

    FleetRunner runner(fc);
    FleetReport rep = runner.run();
    const CohortResult &r = rep.cohorts[0];
    EXPECT_EQ(r.fresh_reports, 1000u * 2u);
    EXPECT_EQ(r.cache_replays, 1000u * 3u);
    EXPECT_EQ(r.nodes_exhausted, 1000u);
    EXPECT_EQ(r.reports, 1000u * 5u);
    // Replays draw no randomness.
    EXPECT_EQ(r.samples_drawn, r.fresh_reports);
}

TEST(FleetEngine, DatasetReplayUsesProvidedValues)
{
    FleetConfig fc = smallFleet();
    fc.cohorts.resize(1);
    CohortConfig &c = fc.cohorts[0];
    c.budget_per_node = 0.0;
    c.values = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
    c.nodes = 3; // ignored when values are given
    c.reports_per_node = 10;
    c.materialize = true;

    FleetRunner runner(fc);
    FleetReport rep = runner.run();
    const CohortResult &r = rep.cohorts[0];
    EXPECT_EQ(r.nodes, 8u);
    EXPECT_EQ(r.true_stats.count(), 8u);
    EXPECT_DOUBLE_EQ(r.trueMean(), 4.5);
    EXPECT_DOUBLE_EQ(r.true_stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(r.true_stats.max(), 8.0);
}

TEST(FleetEngine, MaterializedMatrixMatchesStreamingAggregates)
{
    FleetConfig fc = smallFleet();
    fc.cohorts.resize(1);
    CohortConfig &c = fc.cohorts[0];
    c.nodes = 1500;
    c.reports_per_node = 3;
    c.budget_per_node = 0.0;
    c.materialize = true;

    FleetRunner runner(fc);
    FleetReport rep = runner.run();
    const CohortResult &r = rep.cohorts[0];
    ASSERT_EQ(r.matrix.size(), 1500u * 3u);

    for (uint32_t t = 0; t < 3; ++t) {
        std::vector<double> row = r.trialReports(t);
        ASSERT_EQ(row.size(), 1500u);
        double sum = 0.0;
        for (double v : row)
            sum += v;
        // The streaming trial estimate merges block partial sums in
        // block order; summing the materialized row in node order can
        // differ only by rounding.
        EXPECT_NEAR(sum / 1500.0, r.trial_estimate[t], 1e-9);
    }

    // Every matrix cell was written (all values are in the clamp
    // window, far from the 0.0 fill).
    RunningStats from_matrix;
    for (double v : r.matrix)
        from_matrix.add(v);
    EXPECT_EQ(from_matrix.count(), r.released_stats.count());
    EXPECT_NEAR(from_matrix.mean(), r.released_stats.mean(), 1e-9);
}

TEST(FleetEngine, IdealCohortIsLdpAtEpsilon)
{
    FleetConfig fc = smallFleet();
    fc.cohorts.resize(1);
    CohortConfig &c = fc.cohorts[0];
    c.mechanism = CohortMechanism::Ideal;
    c.nodes = 500;
    c.budget_per_node = 0.0;
    c.analyze_loss = true;

    FleetRunner runner(fc);
    FleetReport rep = runner.run();
    const CohortResult &r = rep.cohorts[0];
    EXPECT_TRUE(r.ldp);
    EXPECT_DOUBLE_EQ(r.worst_loss, 0.5);
    EXPECT_EQ(r.mechanism, CohortMechanism::Ideal);
}

TEST(FleetEngine, LossAnalysisMatchesMechanismClass)
{
    // With the exact analysis on, the naive cohort is flagged non-LDP
    // (unbounded loss) while both range-controlled cohorts satisfy
    // the 2*eps bound -- the paper's core claim, now at fleet scale.
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;

    FleetConfig fc;
    fc.master_seed = 5;
    auto makeCohort = [&](CohortMechanism m) {
        CohortConfig c;
        c.mechanism = m;
        c.params = p;
        c.nodes = 64;
        c.reports_per_node = 1;
        c.analyze_loss = true;
        return c;
    };
    fc.cohorts = {makeCohort(CohortMechanism::Naive),
                  makeCohort(CohortMechanism::Resampling),
                  makeCohort(CohortMechanism::Thresholding)};
    FleetRunner runner(fc);
    FleetReport rep = runner.run();
    EXPECT_FALSE(rep.cohorts[0].ldp);
    EXPECT_TRUE(std::isinf(rep.cohorts[0].worst_loss));
    EXPECT_TRUE(rep.cohorts[1].ldp);
    EXPECT_LE(rep.cohorts[1].worst_loss, 1.0 + 1e-9);
    EXPECT_TRUE(rep.cohorts[2].ldp);
    EXPECT_LE(rep.cohorts[2].worst_loss, 1.0 + 1e-9);
}

TEST(FleetEngine, ThreadZeroSelectsHardware)
{
    FleetConfig fc = smallFleet();
    fc.cohorts.resize(1);
    fc.cohorts[0].nodes = 300;
    FleetRunner runner(fc);
    FleetReport rep = runner.run(0);
    EXPECT_GE(rep.threads, 1u);
    EXPECT_GT(rep.total_reports, 0u);
    EXPECT_GT(rep.reportsPerSecond(), 0.0);
}

// ---------------------------------------------------------------------
// Persistent-pool / work-stealing stress (TSan-clean by construction:
// the fleet-smoke CI job runs this file under ULPDP_SANITIZE=thread)
// ---------------------------------------------------------------------

/** Restores the process-wide scalar-block switch on scope exit so a
 *  failing assertion cannot leak forced-scalar mode into later
 *  tests. */
struct ScopedForceScalar
{
    explicit ScopedForceScalar(bool on)
    {
        FleetRunner::forceScalarBlocks(on);
    }
    ~ScopedForceScalar() { FleetRunner::forceScalarBlocks(false); }
};

/**
 * Ragged fleet: node counts that are multiples of neither the
 * scheduling block size nor the 16-lane batch width, a block size
 * that is itself not a lane multiple, and cohorts of very different
 * sizes so the static per-worker queue split is lopsided and the
 * stealing path must run.
 */
FleetConfig
raggedFleet()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;

    FleetConfig fc;
    fc.master_seed = 1234;
    fc.block_nodes = 83; // prime: never a multiple of 16 lanes
    auto makeCohort = [&](const char *name, CohortMechanism m,
                          uint64_t nodes, uint32_t reports) {
        CohortConfig c;
        c.name = name;
        c.mechanism = m;
        c.params = p;
        c.nodes = nodes;
        c.reports_per_node = reports;
        c.analyze_loss = false;
        return c;
    };
    fc.cohorts = {
        makeCohort("thr", CohortMechanism::Thresholding, 997, 3),
        makeCohort("res", CohortMechanism::Resampling, 2503, 2),
        makeCohort("tiny", CohortMechanism::Thresholding, 7, 5),
        makeCohort("ideal", CohortMechanism::Ideal, 61, 1),
    };
    return fc;
}

TEST(FleetStress, RaggedCohortsBitExactAcrossThreadCounts)
{
    FleetRunner runner(raggedFleet());
    FleetReport base = runner.run(1);
    for (unsigned threads : {2u, 3u, 8u, 16u}) {
        FleetReport rep = runner.run(threads);
        SCOPED_TRACE(threads);
        expectIdentical(base, rep);
    }
}

TEST(FleetStress, RepeatedEpochsOnOneRunnerReuseParkedPool)
{
    // Many epochs on ONE runner instance, alternating thread counts
    // up and down: the pool must wake exactly the requested worker
    // set each epoch, leave the surplus parked, and never leave a
    // stale job visible to a parked thread (a UAF here is what TSan
    // and ASan watch for -- the job lambda dies with each run()).
    FleetRunner runner(raggedFleet());
    FleetReport base = runner.run(8);
    for (unsigned threads : {1u, 16u, 2u, 8u, 3u, 1u, 16u}) {
        FleetReport rep = runner.run(threads);
        SCOPED_TRACE(threads);
        EXPECT_EQ(rep.fingerprint(), base.fingerprint());
    }
    expectIdentical(base, runner.run(8));
}

TEST(FleetStress, ForcedScalarMatchesBatchedUnderStealing)
{
    // The work-stealing path must be bit-exact in both execution
    // modes, and the two modes must agree with each other -- the
    // batch layer's core contract, now exercised through ragged
    // steal-heavy schedules instead of the uniform smallFleet().
    FleetRunner runner(raggedFleet());
    FleetReport batched = runner.run(8);
    {
        ScopedForceScalar forced(true);
        FleetReport scalar8 = runner.run(8);
        FleetReport scalar3 = runner.run(3);
        expectIdentical(batched, scalar8);
        expectIdentical(batched, scalar3);
    }
    // And back: leaving forced-scalar mode restores the batch path
    // with the same merged bits.
    expectIdentical(batched, runner.run(16));
}

TEST(FleetStress, RunnersAreIndependentAfterTeardown)
{
    // A runner's parked threads belong to that runner; destroying it
    // must join them (no leaked threads touching freed queues), and a
    // fresh runner must reproduce the same report from scratch.
    uint64_t fp_first = 0;
    {
        FleetRunner runner(raggedFleet());
        fp_first = runner.run(8).fingerprint();
    } // ~FleetRunner joins the pool here
    FleetRunner again(raggedFleet());
    EXPECT_EQ(again.run(16).fingerprint(), fp_first);
    EXPECT_EQ(again.run(1).fingerprint(), fp_first);
}

TEST(FleetStress, BudgetedRaggedCohortsReplayDeterministically)
{
    // Replay bookkeeping (exhausted nodes, cache replays) must also
    // be schedule-independent on the stealing path.
    FleetConfig fc = raggedFleet();
    fc.cohorts[0].budget_per_node = 2.1; // 2 of 3 reports fresh
    fc.cohorts[1].budget_per_node = 1.0; // 1 of 2 reports fresh
    FleetRunner runner(fc);
    FleetReport one = runner.run(1);
    FleetReport many = runner.run(16);
    expectIdentical(one, many);
    EXPECT_EQ(one.cohorts[0].nodes_exhausted, 997u);
    EXPECT_EQ(one.cohorts[0].cache_replays, 997u);
    EXPECT_EQ(one.cohorts[1].nodes_exhausted, 2503u);
    EXPECT_EQ(one.cohorts[1].cache_replays, 2503u);
}

// ---------------------------------------------------------------------
// Mechanism registry integration
// ---------------------------------------------------------------------

TEST(FleetRegistry, NamedSelectionIsFingerprintImmune)
{
    // Selecting the legacy pair by registry name must route through
    // the registered lowering and still produce the bit-identical
    // report of the hard-wired enum path: the registry is a
    // dispatcher, not a behaviour change.
    FleetConfig by_enum = smallFleet();
    FleetConfig by_name = smallFleet();
    by_name.cohorts[0].mechanism_name = "thresholding";
    by_name.cohorts[1].mechanism_name = "resampling";

    FleetRunner a(by_enum);
    FleetRunner b(by_name);
    expectIdentical(a.run(4), b.run(4));
}

TEST(FleetRegistry, NamedSelectionNormalizesResultEnum)
{
    FleetConfig fc = smallFleet();
    fc.cohorts[0].mechanism_name = "resampling"; // overrides the enum
    FleetRunner runner(fc);
    FleetReport rep = runner.run(2);
    EXPECT_EQ(rep.cohorts[0].mechanism, CohortMechanism::Resampling);
    EXPECT_EQ(rep.cohorts[0].mechanism_label, "Resampling");
    EXPECT_EQ(rep.cohorts[1].mechanism_label, "Resampling");
}

TEST(FleetRegistry, BoundedCohortConfinesOutputsAndIsLdp)
{
    FleetConfig fc = smallFleet();
    fc.cohorts.resize(1);
    CohortConfig &c = fc.cohorts[0];
    c.name = "bounded";
    c.mechanism_name = "bounded-laplace";
    c.nodes = 2000;
    c.budget_per_node = 0.0;
    c.analyze_loss = true;
    c.materialize = true;

    FleetRunner runner(fc);
    FleetReport rep = runner.run(4);
    const CohortResult &res = rep.cohorts[0];
    EXPECT_EQ(res.mechanism, CohortMechanism::BoundedLaplace);
    EXPECT_TRUE(res.ldp);
    EXPECT_LE(res.worst_loss, 2.0 * c.params.epsilon + 1e-9);
    // T = 0: every materialized report stays inside the sensor range.
    for (double y : res.matrix) {
        EXPECT_GE(y, c.params.range.lo);
        EXPECT_LE(y, c.params.range.hi);
    }
    // Determinism holds for registry-selected mechanisms too.
    FleetRunner again(fc);
    expectIdentical(rep, again.run(1));
}

TEST(FleetRegistry, DiscreteCohortTracksResamplingUtility)
{
    FleetConfig fc = smallFleet();
    fc.cohorts.resize(2);
    fc.cohorts[0].name = "res";
    fc.cohorts[0].mechanism = CohortMechanism::Resampling;
    fc.cohorts[0].budget_per_node = 0.0;
    fc.cohorts[0].nodes = 20000;
    fc.cohorts[0].analyze_loss = true;
    fc.cohorts[1] = fc.cohorts[0];
    fc.cohorts[1].name = "disc";
    fc.cohorts[1].mechanism = CohortMechanism::DiscreteLaplace;

    FleetRunner runner(fc);
    FleetReport rep = runner.run(4);
    const CohortResult &res = rep.cohorts[0];
    const CohortResult &disc = rep.cohorts[1];
    EXPECT_TRUE(disc.ldp);
    EXPECT_EQ(disc.mechanism_label, "Discrete Laplace");
    // The Floor pipeline's doubled zero atom costs ln 2 of loss,
    // paid for by scale inflation: utility is worse than resampling
    // but by a bounded factor, not a different regime.
    EXPECT_GT(disc.mean_mae, 0.5 * res.mean_mae);
    EXPECT_LT(disc.mean_mae, 6.0 * res.mean_mae + 0.05);
}

} // anonymous namespace
} // namespace ulpdp
