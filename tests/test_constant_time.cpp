/**
 * @file
 * Tests for constant-time (K-batch) resampling: timing-channel
 * mitigation with exact distribution model and bounded loss.
 */

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/constant_time.h"
#include "core/privacy_loss.h"
#include "core/threshold_calc.h"

namespace ulpdp {
namespace {

FxpMechanismParams
testParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 12;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    return p;
}

std::shared_ptr<const FxpLaplacePmf>
testPmf()
{
    return std::make_shared<FxpLaplacePmf>(
        testParams().rngConfig(), FxpLaplacePmf::Mode::Enumerated);
}

TEST(ConstantTime, RejectsBadConfig)
{
    EXPECT_THROW(
        ConstantTimeResamplingMechanism(testParams(), -1, 4),
        FatalError);
    EXPECT_THROW(
        ConstantTimeResamplingMechanism(testParams(), 10, 0),
        FatalError);
    EXPECT_THROW(ConstantTimeOutputModel(testPmf(), 32, 10, 0),
                 FatalError);
}

TEST(ConstantTime, LatencyIsInputIndependent)
{
    // The whole point: every report costs exactly K samples, for
    // every input value.
    ConstantTimeResamplingMechanism mech(testParams(), 100, 6);
    for (double x : {0.0, 2.5, 5.0, 10.0}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_EQ(mech.noise(x).samples_drawn, 6u);
    }
}

TEST(ConstantTime, OutputsConfinedToWindow)
{
    int64_t t = 80;
    ConstantTimeResamplingMechanism mech(testParams(), t, 4);
    double ext = static_cast<double>(t) * mech.delta();
    for (int i = 0; i < 20000; ++i) {
        double y = mech.noise(0.0).value;
        EXPECT_GE(y, -ext - 1e-9);
        EXPECT_LE(y, 10.0 + ext + 1e-9);
    }
}

TEST(ConstantTime, FallbackRateShrinksGeometrically)
{
    auto fallback_rate = [](int k) {
        ConstantTimeResamplingMechanism mech(testParams(), 40, k);
        for (int i = 0; i < 30000; ++i)
            mech.noise(0.0);
        return static_cast<double>(mech.clampFallbacks()) /
               static_cast<double>(mech.totalReports());
    };
    double k1 = fallback_rate(1);
    double k3 = fallback_rate(3);
    ASSERT_GT(k1, 0.0);
    // miss^3 ~ (miss)^3: three orders down for miss ~ 0.1-0.3.
    EXPECT_LT(k3, k1 * k1 * 2.0);
}

TEST(ConstantTime, ModelRowsSumToOne)
{
    for (int k : {1, 2, 5}) {
        ConstantTimeOutputModel model(testPmf(), 32, 100, k);
        for (int64_t i : {int64_t{0}, int64_t{16}, int64_t{32}}) {
            double sum = 0.0;
            for (int64_t j = model.outputLo(); j <= model.outputHi();
                 ++j)
                sum += model.prob(j, i);
            EXPECT_NEAR(sum, 1.0, 1e-12) << "k=" << k << " i=" << i;
        }
    }
}

TEST(ConstantTime, KEqualsOneMatchesThresholding)
{
    auto pmf = testPmf();
    ConstantTimeOutputModel ct(pmf, 32, 100, 1);
    ThresholdingOutputModel th(pmf, 32, 100);
    for (int64_t i : {int64_t{0}, int64_t{16}, int64_t{32}}) {
        for (int64_t j = ct.outputLo(); j <= ct.outputHi(); ++j) {
            EXPECT_NEAR(ct.prob(j, i), th.prob(j, i), 1e-12)
                << "i=" << i << " j=" << j;
        }
    }
}

TEST(ConstantTime, LargeKApproachesResampling)
{
    auto pmf = testPmf();
    ConstantTimeOutputModel ct(pmf, 32, 100, 64);
    ResamplingOutputModel rs(pmf, 32, 100);
    double tv = 0.0;
    for (int64_t j = ct.outputLo(); j <= ct.outputHi(); ++j)
        tv += std::abs(ct.prob(j, 0) - rs.prob(j, 0));
    EXPECT_LT(tv / 2.0, 1e-6);
}

TEST(ConstantTime, MonteCarloMatchesModel)
{
    FxpMechanismParams p = testParams();
    int64_t t = 100;
    int k = 3;
    ConstantTimeResamplingMechanism mech(p, t, k);
    ConstantTimeOutputModel model(testPmf(), 32, t, k);

    const int n = 300000;
    std::map<int64_t, uint64_t> counts;
    for (int i = 0; i < n; ++i) {
        double y = mech.noise(0.0).value;
        ++counts[static_cast<int64_t>(std::llround(y / mech.delta()))];
    }
    double tv = 0.0;
    for (int64_t j = model.outputLo(); j <= model.outputHi(); ++j) {
        double emp = counts.count(j)
            ? static_cast<double>(counts[j]) / n
            : 0.0;
        tv += std::abs(emp - model.prob(j, 0));
    }
    EXPECT_LT(tv / 2.0, 0.03);
}

TEST(ConstantTime, NeedsItsOwnThresholdButStaysBounded)
{
    // Instructive subtlety: the K-batch is NOT automatically within
    // the thresholding bound at the thresholding threshold -- its
    // interior is renormalised per input (like resampling), which
    // adds a Z(x1)/Z(x2) factor. The correct procedure is to search
    // the threshold against the K-batch model itself.
    FxpMechanismParams p = testParams();
    ThresholdCalculator calc(p);
    double bound = 2.0 * p.epsilon;
    int64_t t = calc.exactIndex(RangeControl::Thresholding, 2.0);
    ASSERT_GE(t, 0);

    auto loss_at = [&](int64_t thr) {
        ConstantTimeOutputModel model(calc.pmf(), calc.span(), thr,
                                      4);
        return PrivacyLossAnalyzer::analyze(model).worst_case_loss;
    };

    // At the thresholding threshold the K = 4 batch may exceed the
    // bound slightly...
    double at_thresh = loss_at(t);
    EXPECT_TRUE(std::isfinite(at_thresh));

    // ...but a dedicated search finds a valid window nearby.
    int64_t t_ok = t;
    while (t_ok > 0 && loss_at(t_ok) > bound + 1e-9)
        --t_ok;
    ASSERT_GT(t_ok, 0);
    EXPECT_LE(loss_at(t_ok), bound + 1e-9);
    EXPECT_GT(t_ok, t / 2); // nearby, not a collapse
}

TEST(ConstantTime, FallbackProbabilityFormula)
{
    ConstantTimeOutputModel model(testPmf(), 32, 60, 5);
    for (int64_t i : {int64_t{0}, int64_t{16}}) {
        double z = model.acceptProbability(i);
        EXPECT_NEAR(model.fallbackProbability(i),
                    std::pow(1.0 - z, 5), 1e-15);
    }
}

} // anonymous namespace
} // namespace ulpdp
