/**
 * @file
 * Tests for the telemetry subsystem: lock-free metric primitives, the
 * registry, both exporters (golden-output pinned), the bounded event
 * journal (wrap, drops, mid-write skip), the process-global scope and
 * its enable gate, the hot-path instrumentation hooks, and -- the
 * acceptance criterion that matters most -- that enabling telemetry
 * cannot move a single bit of a fleet result.
 *
 * The concurrency tests run under ULPDP_SANITIZE=thread in CI; they
 * hammer one counter / histogram / journal from many threads and
 * assert nothing is lost, which TSan turns into a data-race proof.
 */

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/budget.h"
#include "fleet/fleet.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace ulpdp {
namespace {

/** Restore the global gate and zero the global scope around a test
 *  that flips it, so test order cannot leak telemetry state. */
struct GlobalTelemetryGuard
{
    GlobalTelemetryGuard() { telemetry::reset(); }
    ~GlobalTelemetryGuard()
    {
        telemetry::setEnabled(false);
        telemetry::reset();
    }
};

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

TEST(TelemetryPrimitives, CounterCountsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryPrimitives, SumAccumulatesDoubles)
{
    Sum s;
    s.add(0.5);
    s.add(0.25);
    s.add(0.25);
    EXPECT_DOUBLE_EQ(s.value(), 1.0);
}

TEST(TelemetryPrimitives, GaugeKeepsLastWrite)
{
    Gauge g;
    g.set(3.0);
    g.set(-1.5);
    EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(TelemetryPrimitives, HistogramBucketsWithLeSemantics)
{
    LatencyHistogram h({1.0, 2.0, 4.0});
    h.observe(1.0); // le="1" (bounds are inclusive upper bounds)
    h.observe(2.0);
    h.observe(3.0);
    h.observe(100.0); // +Inf
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u); // +Inf slot
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 106.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(TelemetryPrimitives, HistogramRejectsBadBounds)
{
    EXPECT_THROW(LatencyHistogram({}), FatalError);
    EXPECT_THROW(LatencyHistogram({2.0, 1.0}), FatalError);
    EXPECT_THROW(LatencyHistogram({1.0, 1.0}), FatalError);
}

TEST(TelemetryPrimitives, ScopedTimerObservesOnDestruction)
{
    LatencyHistogram h({1e9});
    {
        ScopedTimer t(h);
    }
    EXPECT_EQ(h.count(), 1u);
    {
        ScopedTimer t(h);
        t.cancel();
    }
    EXPECT_EQ(h.count(), 1u); // cancelled timer records nothing
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(MetricRegistryTest, ReRegistrationReturnsTheSameInstance)
{
    MetricRegistry reg;
    Counter &a = reg.counter("ulpdp_test_total", "help", "u");
    Counter &b = reg.counter("ulpdp_test_total", "help", "u");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), 1u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistryTest, LabelsDistinguishSeries)
{
    MetricRegistry reg;
    Counter &a =
        reg.counter("ulpdp_test_total", "help", "u", "cohort=\"a\"");
    Counter &b =
        reg.counter("ulpdp_test_total", "help", "u", "cohort=\"b\"");
    EXPECT_NE(&a, &b);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricRegistryTest, TypeMismatchIsFatal)
{
    MetricRegistry reg;
    reg.counter("ulpdp_test_total", "help");
    EXPECT_THROW(reg.gauge("ulpdp_test_total", "help"), PanicError);
    EXPECT_THROW(reg.sum("ulpdp_test_total", "help"), PanicError);
    reg.histogram("ulpdp_test_hist", "help", "u", {1.0, 2.0});
    EXPECT_THROW(reg.histogram("ulpdp_test_hist", "help", "u",
                               {1.0, 3.0}),
                 PanicError);
}

TEST(MetricRegistryTest, SnapshotPreservesRegistrationOrder)
{
    MetricRegistry reg;
    reg.counter("ulpdp_z_total", "late-alphabet first");
    reg.gauge("ulpdp_a_gauge", "early-alphabet second");
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].info.name, "ulpdp_z_total");
    EXPECT_EQ(snap[1].info.name, "ulpdp_a_gauge");
}

TEST(MetricRegistryTest, ResetAllZeroesEverything)
{
    MetricRegistry reg;
    Counter &c = reg.counter("ulpdp_test_total", "h");
    Gauge &g = reg.gauge("ulpdp_test_gauge", "h");
    LatencyHistogram &h =
        reg.histogram("ulpdp_test_hist", "h", "u", {1.0});
    c.inc(7);
    g.set(3.0);
    h.observe(0.5);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
}

// ---------------------------------------------------------------------
// Exporters (golden output)
// ---------------------------------------------------------------------

/** One registry both golden tests share, covering every metric kind,
 *  a labelled family, and histogram bucket accumulation. */
MetricRegistry &
goldenRegistry()
{
    static MetricRegistry reg;
    static bool built = false;
    if (!built) {
        built = true;
        reg.counter("ulpdp_test_requests_total", "Requests served",
                    "requests")
            .inc(3);
        reg.counter("ulpdp_test_requests_total", "Requests served",
                    "requests", "cohort=\"a\"")
            .inc(2);
        reg.gauge("ulpdp_test_budget_remaining", "Remaining budget",
                  "nats")
            .set(2.5);
        LatencyHistogram &h = reg.histogram(
            "ulpdp_test_latency_cycles", "Noising latency", "cycles",
            {1.0, 2.0, 4.0});
        h.observe(1.0);
        h.observe(2.0);
        h.observe(3.0);
        h.observe(100.0);
    }
    return reg;
}

TEST(TelemetryExport, PrometheusTextMatchesGolden)
{
    const std::string expected =
        "# HELP ulpdp_test_requests_total Requests served (requests)\n"
        "# TYPE ulpdp_test_requests_total counter\n"
        "ulpdp_test_requests_total 3\n"
        "ulpdp_test_requests_total{cohort=\"a\"} 2\n"
        "# HELP ulpdp_test_budget_remaining Remaining budget (nats)\n"
        "# TYPE ulpdp_test_budget_remaining gauge\n"
        "ulpdp_test_budget_remaining 2.5\n"
        "# HELP ulpdp_test_latency_cycles Noising latency (cycles)\n"
        "# TYPE ulpdp_test_latency_cycles histogram\n"
        "ulpdp_test_latency_cycles_bucket{le=\"1\"} 1\n"
        "ulpdp_test_latency_cycles_bucket{le=\"2\"} 2\n"
        "ulpdp_test_latency_cycles_bucket{le=\"4\"} 3\n"
        "ulpdp_test_latency_cycles_bucket{le=\"+Inf\"} 4\n"
        "ulpdp_test_latency_cycles_sum 106\n"
        "ulpdp_test_latency_cycles_count 4\n";
    EXPECT_EQ(telemetry::toPrometheusText(goldenRegistry()), expected);
}

TEST(TelemetryExport, JsonMatchesGolden)
{
    JsonWriter json;
    json.beginObject();
    telemetry::metricsToJson(goldenRegistry(), json);
    json.endObject();
    const std::string expected =
        "{\"metrics\":["
        "{\"name\":\"ulpdp_test_requests_total\","
        "\"type\":\"counter\",\"unit\":\"requests\",\"value\":3},"
        "{\"name\":\"ulpdp_test_requests_total\","
        "\"labels\":\"cohort=\\\"a\\\"\","
        "\"type\":\"counter\",\"unit\":\"requests\",\"value\":2},"
        "{\"name\":\"ulpdp_test_budget_remaining\","
        "\"type\":\"gauge\",\"unit\":\"nats\",\"value\":2.5},"
        "{\"name\":\"ulpdp_test_latency_cycles\","
        "\"type\":\"histogram\",\"unit\":\"cycles\","
        "\"le\":[1,2,4],\"counts\":[1,1,1,1],"
        "\"count\":4,\"sum\":106}"
        "]}";
    EXPECT_EQ(json.str(), expected);
}

TEST(TelemetryExport, JournalJsonMatchesGolden)
{
    EventJournal j(16);
    j.record(EventKind::BudgetSpend, 1, 0.5);
    j.record(EventKind::HaltReplay, 2, 0.0);
    JsonWriter json;
    json.beginObject();
    telemetry::journalToJson(j, json);
    json.endObject();
    const std::string expected =
        "{\"journal\":{\"recorded\":2,\"dropped\":0,\"capacity\":16,"
        "\"events\":["
        "{\"kind\":\"budget_spend\",\"tick\":1,\"value\":0.5},"
        "{\"kind\":\"halt_replay\",\"tick\":2,\"value\":0}"
        "]}}";
    EXPECT_EQ(json.str(), expected);
}

// ---------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------

TEST(EventJournalTest, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(EventJournal(1).capacity(), 16u);
    EXPECT_EQ(EventJournal(16).capacity(), 16u);
    EXPECT_EQ(EventJournal(17).capacity(), 32u);
    EXPECT_EQ(EventJournal(1000).capacity(), 1024u);
}

TEST(EventJournalTest, RetainsNewestAndCountsDrops)
{
    EventJournal j(16);
    for (uint64_t i = 0; i < 40; ++i)
        j.record(EventKind::BudgetSpend, i,
                 static_cast<double>(i) * 0.5);
    EXPECT_EQ(j.recorded(), 40u);
    EXPECT_EQ(j.dropped(), 24u);
    auto events = j.snapshot();
    ASSERT_EQ(events.size(), 16u);
    // Oldest first; ticks 24..39 survive the wrap.
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].tick, 24u + i);
        EXPECT_DOUBLE_EQ(events[i].value, (24.0 + i) * 0.5);
    }
}

TEST(EventJournalTest, ClearForgetsEverything)
{
    EventJournal j(16);
    j.record(EventKind::FaultLatch, 7, 1.0);
    j.clear();
    EXPECT_EQ(j.recorded(), 0u);
    EXPECT_EQ(j.dropped(), 0u);
    EXPECT_TRUE(j.snapshot().empty());
}

TEST(EventJournalTest, EveryKindRoundTripsWithItsName)
{
    const EventKind kinds[] = {
        EventKind::BudgetSpend,   EventKind::HaltReplay,
        EventKind::FaultLatch,    EventKind::Replenish,
        EventKind::HealthAlarm,   EventKind::BusDegrade,
        EventKind::ResampleOverflow,
    };
    EventJournal j(16);
    for (EventKind k : kinds)
        j.record(k, 0, 0.0);
    auto events = j.snapshot();
    ASSERT_EQ(events.size(), std::size(kinds));
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].kind, kinds[i]);
        EXPECT_NE(std::string(eventKindName(events[i].kind)), "");
    }
}

// ---------------------------------------------------------------------
// Concurrency (data-race proof under ULPDP_SANITIZE=thread)
// ---------------------------------------------------------------------

TEST(TelemetryConcurrency, ConcurrentIncrementsAllLand)
{
    MetricRegistry reg;
    Counter &c = reg.counter("ulpdp_test_total", "h");
    Sum &s = reg.sum("ulpdp_test_nats_total", "h");
    LatencyHistogram &h =
        reg.histogram("ulpdp_test_hist", "h", "u", {0.5});
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kIters = 10000;

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&]() {
            for (uint64_t i = 0; i < kIters; ++i) {
                c.inc();
                s.add(0.25);
                h.observe(static_cast<double>(i % 2));
            }
        });
    }
    for (auto &t : pool)
        t.join();

    EXPECT_EQ(c.value(), kThreads * kIters);
    EXPECT_DOUBLE_EQ(s.value(), kThreads * kIters * 0.25);
    EXPECT_EQ(h.count(), kThreads * kIters);
    EXPECT_EQ(h.bucketCount(0), kThreads * kIters / 2); // the 0.0s
    EXPECT_EQ(h.bucketCount(1), kThreads * kIters / 2); // the 1.0s
}

TEST(TelemetryConcurrency, ConcurrentRegistrationIsSafe)
{
    MetricRegistry reg;
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&]() {
            // Everyone registers the same key; all must get the same
            // instance and all increments must land on it.
            reg.counter("ulpdp_test_shared_total", "h").inc();
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.counter("ulpdp_test_shared_total", "h").value(),
              kThreads);
}

TEST(TelemetryConcurrency, JournalWritersNeverTearASnapshot)
{
    EventJournal j(64);
    constexpr unsigned kThreads = 4;
    constexpr uint64_t kIters = 5000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kThreads; ++t) {
        writers.emplace_back([&j, t]() {
            for (uint64_t i = 0; i < kIters; ++i)
                j.record(EventKind::BudgetSpend, i,
                         static_cast<double>(t));
        });
    }
    // A reader snapshots continuously while writers hammer the ring;
    // every retained event must be well-formed (a writer's value is
    // its thread id, so any torn slot shows as an out-of-range value).
    std::thread reader([&]() {
        while (!stop.load(std::memory_order_relaxed)) {
            for (const JournalEvent &ev : j.snapshot()) {
                EXPECT_EQ(ev.kind, EventKind::BudgetSpend);
                EXPECT_GE(ev.value, 0.0);
                EXPECT_LT(ev.value, static_cast<double>(kThreads));
                EXPECT_LT(ev.tick, kIters);
            }
        }
    });
    for (auto &t : writers)
        t.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    EXPECT_EQ(j.recorded(), kThreads * kIters);
}

// ---------------------------------------------------------------------
// Global scope and instrumentation hooks
// ---------------------------------------------------------------------

TEST(GlobalTelemetry, DisabledGateRecordsNothing)
{
    GlobalTelemetryGuard guard;
    ASSERT_FALSE(telemetry::enabled());
    uint64_t before = telemetry::journal().recorded();
    telemetry::event(EventKind::FaultLatch, 1, 1.0);
    EXPECT_EQ(telemetry::journal().recorded(), before);
}

TEST(GlobalTelemetry, EventBumpsCounterAndJournal)
{
    GlobalTelemetryGuard guard;
    telemetry::setEnabled(true);
    telemetry::event(EventKind::HaltReplay, 17, 0.0);
    telemetry::event(EventKind::HaltReplay, 18, 0.0);
    Counter &c = telemetry::registry().counter(
        "ulpdp_events_total", "Privacy-relevant events by kind",
        "events", "kind=\"halt_replay\"");
    EXPECT_EQ(c.value(), 2u);
    auto events = telemetry::journal().snapshot();
    ASSERT_GE(events.size(), 2u);
    EXPECT_EQ(events[events.size() - 2].tick, 17u);
    EXPECT_EQ(events.back().tick, 18u);
}

/** A budget controller sized so the third request halts. */
BudgetController
meteredController()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.kind = RangeControl::Thresholding;
    cfg.segments =
        LossSegments::compute(calc, cfg.kind, {1.5, 2.0});
    cfg.initial_budget = 1.2; // two central-loss reports, not three
    return BudgetController(p, cfg);
}

TEST(GlobalTelemetry, BudgetControllerWitnessesSpendAndHalt)
{
    GlobalTelemetryGuard guard;
    telemetry::setEnabled(true);

    BudgetController ctl = meteredController();
    MetricRegistry &reg = telemetry::registry();
    Counter &fresh =
        reg.counter("ulpdp_budget_fresh_reports_total", "");
    Counter &halts =
        reg.counter("ulpdp_budget_halt_replays_total", "");
    Sum &spend = reg.sum("ulpdp_budget_spend_nats_total", "");

    double charged = 0.0;
    while (ctl.remainingBudget() > 0.0 &&
           fresh.value() < 64) { // bounded: exhaustion must arrive
        BudgetResponse r = ctl.request(5.0);
        if (r.from_cache)
            break;
        charged += r.charged;
    }
    BudgetResponse halted = ctl.request(5.0);

    EXPECT_TRUE(halted.from_cache);
    EXPECT_EQ(fresh.value(), ctl.freshReports());
    EXPECT_GE(halts.value(), 1u);
    EXPECT_DOUBLE_EQ(spend.value(), charged);

    // The journal carries one BudgetSpend per fresh report and at
    // least one HaltReplay, in order.
    uint64_t spends = 0, replays = 0;
    for (const JournalEvent &ev : telemetry::journal().snapshot()) {
        spends += ev.kind == EventKind::BudgetSpend;
        replays += ev.kind == EventKind::HaltReplay;
    }
    EXPECT_EQ(spends, ctl.freshReports());
    EXPECT_GE(replays, 1u);
}

TEST(GlobalTelemetry, FleetRunPublishesCohortCounters)
{
    GlobalTelemetryGuard guard;
    telemetry::setEnabled(true);

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    FleetConfig fc;
    fc.master_seed = 7;
    fc.block_nodes = 64;
    CohortConfig c;
    c.name = "witness";
    c.mechanism = CohortMechanism::Thresholding;
    c.params = p;
    c.nodes = 200;
    c.reports_per_node = 3;
    c.analyze_loss = false;
    fc.cohorts = {c};

    FleetReport rep = FleetRunner(fc).run(2);
    Counter &reports = telemetry::registry().counter(
        "ulpdp_fleet_reports_total", "", "",
        "cohort=\"witness\"");
    EXPECT_EQ(reports.value(), rep.cohorts[0].reports);
    EXPECT_EQ(reports.value(), 200u * 3u);
}

// ---------------------------------------------------------------------
// The determinism acceptance criterion
// ---------------------------------------------------------------------

TEST(GlobalTelemetry, FleetFingerprintImmuneToTelemetry)
{
    GlobalTelemetryGuard guard;

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;
    FleetConfig fc;
    fc.master_seed = 99;
    fc.block_nodes = 128;
    CohortConfig thr;
    thr.name = "thr";
    thr.mechanism = CohortMechanism::Thresholding;
    thr.params = p;
    thr.nodes = 1000;
    thr.reports_per_node = 4;
    thr.budget_per_node = 2.5; // some replays
    thr.analyze_loss = false;
    CohortConfig res = thr;
    res.name = "res";
    res.mechanism = CohortMechanism::Resampling;
    res.budget_per_node = 0.0;
    fc.cohorts = {thr, res};
    FleetRunner runner(fc);

    uint64_t off = runner.run(1).fingerprint();
    telemetry::setEnabled(true);
    uint64_t on1 = runner.run(1).fingerprint();
    uint64_t on4 = runner.run(4).fingerprint();
    telemetry::setEnabled(false);

    EXPECT_EQ(off, on1);
    EXPECT_EQ(off, on4);
}

} // anonymous namespace
} // namespace ulpdp
