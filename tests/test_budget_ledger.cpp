/**
 * @file
 * Budget ledger tests: journaled spends and two-phase checkpoints on
 * the simulated NOR part, and a recovery scan that resolves every
 * ambiguity fail-secure. The torn-record corpus programs every proper
 * prefix of a valid record and asserts each one is detected and
 * charged -- never parsed; the wear test asserts the rotation policy
 * keeps the erase-count spread within its leveling bound.
 */

#include <array>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/budget.h"
#include "core/budget_ledger.h"
#include "core/threshold_calc.h"
#include "sim/fault_injector.h"
#include "sim/nor_flash.h"

namespace ulpdp {
namespace {

FlashGeometry
ledgerGeom()
{
    FlashGeometry g;
    g.block_count = 4;
    g.block_size = 256; // (256 - 16) / 40 = 6 record slots per block
    return g;
}

BudgetLedgerConfig
ledgerConfig(double initial = 5.0, double max_loss = 1.0)
{
    BudgetLedgerConfig cfg;
    cfg.initial_budget = initial;
    cfg.max_record_loss = max_loss;
    return cfg;
}

/** Cuts exactly one scripted program op at a scripted byte. */
struct ScriptedFlashHook : FlashFaultHook
{
    int64_t cut_program_op = -1;
    size_t cut_program_at = 0;
    int64_t program_ops = 0;

    size_t
    programPowerLoss(size_t len) override
    {
        int64_t op = program_ops++;
        if (op == cut_program_op && cut_program_at < len)
            return cut_program_at;
        return SIZE_MAX;
    }
};

void
put32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
put64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

/** A byte-exact valid spend record body (the on-flash layout of
 *  budget_ledger.cpp), for the torn-record corpus. */
std::array<uint8_t, BudgetLedger::kBodySize>
validSpendBody(uint64_t seq, double loss)
{
    std::array<uint8_t, BudgetLedger::kBodySize> body;
    body.fill(0xFF);
    put32(body.data(), 0x554C4452); // "ULDR"
    body[4] = 1;                    // spend
    body[5] = 0;                    // flags
    put64(body.data() + 8, seq);
    uint64_t bits;
    std::memcpy(&bits, &loss, sizeof bits);
    put64(body.data() + 16, bits);
    put64(body.data() + 24, 0);
    put32(body.data() + 32, crc32(body.data(), 32));
    return body;
}

TEST(BudgetLedger, FormatsFreshPartWithGenesisCheckpoint)
{
    NorFlashModel flash(ledgerGeom());
    BudgetLedger ledger(flash, ledgerConfig());
    ASSERT_TRUE(ledger.mount());
    EXPECT_FALSE(ledger.halted());
    EXPECT_DOUBLE_EQ(ledger.remaining(), 5.0);
    EXPECT_EQ(ledger.stats().checkpoints_committed, 1u);
    EXPECT_EQ(ledger.stats().recoveries, 0u);
}

TEST(BudgetLedger, SpendsPersistAcrossRemount)
{
    NorFlashModel flash(ledgerGeom());
    {
        BudgetLedger ledger(flash, ledgerConfig());
        ASSERT_TRUE(ledger.mount());
        EXPECT_TRUE(ledger.journalSpend(0.5));
        EXPECT_TRUE(ledger.journalSpend(0.25));
        EXPECT_TRUE(ledger.journalSpend(0.125));
        EXPECT_DOUBLE_EQ(ledger.remaining(), 5.0 - 0.875);
    }
    // Power cycle: a new ledger instance over the same array.
    BudgetLedger recovered(flash, ledgerConfig());
    ASSERT_TRUE(recovered.mount());
    EXPECT_DOUBLE_EQ(recovered.remaining(), 5.0 - 0.875);
    EXPECT_EQ(recovered.stats().recoveries, 1u);
    EXPECT_EQ(recovered.stats().torn_records, 0u);
}

TEST(BudgetLedger, CheckpointRoundTripsRemainingAndCache)
{
    NorFlashModel flash(ledgerGeom());
    {
        BudgetLedger ledger(flash, ledgerConfig());
        ASSERT_TRUE(ledger.mount());
        ASSERT_TRUE(ledger.journalSpend(1.0));
        ASSERT_TRUE(ledger.commitCheckpoint(4.0, 3.75));
    }
    BudgetLedger recovered(flash, ledgerConfig());
    ASSERT_TRUE(recovered.mount());
    EXPECT_DOUBLE_EQ(recovered.remaining(), 4.0);
    ASSERT_TRUE(recovered.cache().has_value());
    EXPECT_DOUBLE_EQ(*recovered.cache(), 3.75);
}

TEST(BudgetLedger, TornSpendIsChargedMaxRecordLoss)
{
    NorFlashModel flash(ledgerGeom());
    ScriptedFlashHook hook;
    {
        BudgetLedger ledger(flash, ledgerConfig());
        ASSERT_TRUE(ledger.mount());
        hook.cut_program_op = 0; // the next body program
        hook.cut_program_at = 20;
        flash.attachFaultHook(&hook);
        // The append was cut: the caller must not release the output.
        EXPECT_FALSE(ledger.journalSpend(0.25));
    }
    flash.attachFaultHook(nullptr);
    flash.powerCycle();
    BudgetLedger recovered(flash, ledgerConfig());
    ASSERT_TRUE(recovered.mount());
    // The torn record *might* have been a spend: charged the
    // fail-secure bound, which over-counts the 0.25 that never left.
    EXPECT_EQ(recovered.stats().torn_records, 1u);
    EXPECT_DOUBLE_EQ(recovered.remaining(), 5.0 - 1.0);
}

TEST(BudgetLedger, UncommittedSpendIsStillCountedSpent)
{
    NorFlashModel flash(ledgerGeom());
    ScriptedFlashHook hook;
    {
        BudgetLedger ledger(flash, ledgerConfig());
        ASSERT_TRUE(ledger.mount());
        hook.cut_program_op = 1; // body completes, commit byte cut
        hook.cut_program_at = 0;
        flash.attachFaultHook(&hook);
        EXPECT_FALSE(ledger.journalSpend(0.25));
    }
    flash.attachFaultHook(nullptr);
    flash.powerCycle();
    BudgetLedger recovered(flash, ledgerConfig());
    ASSERT_TRUE(recovered.mount());
    // CRC-valid but uncommitted: accepted -- counting a spend whose
    // output never left the device only over-counts (safe direction).
    EXPECT_EQ(recovered.stats().uncommitted_accepted, 1u);
    EXPECT_EQ(recovered.stats().torn_records, 0u);
    EXPECT_DOUBLE_EQ(recovered.remaining(), 5.0 - 0.25);
}

TEST(BudgetLedger, CutBetweenCheckpointPhasesResolvesToNewerState)
{
    NorFlashModel flash(ledgerGeom());
    ScriptedFlashHook hook;
    {
        BudgetLedger ledger(flash, ledgerConfig());
        ASSERT_TRUE(ledger.mount());
        ASSERT_TRUE(ledger.journalSpend(0.5));
        // Checkpoint commit: body (op 0), commit byte (op 1), then
        // the supersede byte of the genesis checkpoint (op 2) -- cut
        // exactly between write-new and invalidate-old.
        hook.cut_program_op = 2;
        hook.cut_program_at = 0;
        flash.attachFaultHook(&hook);
        EXPECT_FALSE(ledger.commitCheckpoint(4.5, std::nullopt));
    }
    flash.attachFaultHook(nullptr);
    flash.powerCycle();
    BudgetLedger recovered(flash, ledgerConfig());
    ASSERT_TRUE(recovered.mount());
    // Two live checkpoints; the higher sequence number wins, which is
    // always the later (never richer) state.
    EXPECT_EQ(recovered.stats().dual_checkpoint_recoveries, 1u);
    EXPECT_DOUBLE_EQ(recovered.remaining(), 4.5);
}

TEST(BudgetLedger, TornRecordCorpusEveryPrefixDetectedNeverParsed)
{
    // Every proper prefix of a byte-exact valid spend record, as a
    // power loss at each distinct program offset would leave it.
    auto body = validSpendBody(/*seq=*/2, /*loss=*/0.625);
    for (uint32_t len = 1; len < BudgetLedger::kBodySize; ++len) {
        NorFlashModel flash(ledgerGeom());
        {
            BudgetLedger ledger(flash, ledgerConfig());
            ASSERT_TRUE(ledger.mount());
        }
        // Slot 1 of block 0 (slot 0 holds the genesis checkpoint).
        uint64_t addr = BudgetLedger::kHeaderSize +
                        BudgetLedger::kRecordSize;
        ASSERT_TRUE(flash.program(addr, body.data(), len));

        BudgetLedger recovered(flash, ledgerConfig());
        ASSERT_TRUE(recovered.mount()) << "prefix " << len;
        // Detected as torn and charged the fail-secure bound -- and
        // never parsed: the record's own 0.625 loss must not appear.
        EXPECT_EQ(recovered.stats().torn_records, 1u)
            << "prefix " << len;
        EXPECT_DOUBLE_EQ(recovered.remaining(), 5.0 - 1.0)
            << "prefix " << len;
    }

    // Contrast: the full body (cut before the commit byte only) is
    // CRC-valid and parses as exactly its own loss.
    NorFlashModel flash(ledgerGeom());
    {
        BudgetLedger ledger(flash, ledgerConfig());
        ASSERT_TRUE(ledger.mount());
    }
    uint64_t addr =
        BudgetLedger::kHeaderSize + BudgetLedger::kRecordSize;
    ASSERT_TRUE(
        flash.program(addr, body.data(), BudgetLedger::kBodySize));
    BudgetLedger recovered(flash, ledgerConfig());
    ASSERT_TRUE(recovered.mount());
    EXPECT_EQ(recovered.stats().torn_records, 0u);
    EXPECT_EQ(recovered.stats().uncommitted_accepted, 1u);
    EXPECT_DOUBLE_EQ(recovered.remaining(), 5.0 - 0.625);
}

TEST(BudgetLedger, StuckBitInJournalRegionFailsSecure)
{
    NorFlashModel flash(ledgerGeom());
    {
        BudgetLedger ledger(flash, ledgerConfig());
        ASSERT_TRUE(ledger.mount());
        ASSERT_TRUE(ledger.journalSpend(0.5));
    }
    // Oxide breakdown inside the spend record's payload: a bit stuck
    // high on the sense path flips a programmed 0 back to 1.
    uint64_t addr = BudgetLedger::kHeaderSize +
                    BudgetLedger::kRecordSize + 18;
    flash.stickBit(addr, 2, true);

    BudgetLedger recovered(flash, ledgerConfig());
    ASSERT_TRUE(recovered.mount());
    // The CRC catches the corrupted read-back; the record is charged
    // as torn, which can only over-count relative to the 0.5 spent.
    EXPECT_EQ(recovered.stats().torn_records, 1u);
    EXPECT_DOUBLE_EQ(recovered.remaining(), 5.0 - 1.0);
}

TEST(BudgetLedger, WearLevelingSpreadStaysWithinBound)
{
    NorFlashModel flash(ledgerGeom());
    BudgetLedger ledger(flash, ledgerConfig(1000.0, 1.0));
    ASSERT_TRUE(ledger.mount());
    for (int i = 0; i < 600; ++i) {
        ASSERT_TRUE(ledger.journalSpend(0.001));
        // The min-wear victim policy bounds the spread at every
        // instant, not just at the end of a campaign.
        ASSERT_LE(ledger.wearSpread(), 2u) << "spend " << i;
    }
    EXPECT_GT(ledger.stats().rotations, 50u);
    EXPECT_GE(flash.maxEraseCount(), 20u);
    EXPECT_LE(ledger.wearSpread(), 2u);
    EXPECT_NEAR(ledger.spentLifetime(), 0.6, 1e-9);

    // And the journal still recovers to the same state.
    BudgetLedger recovered(flash, ledgerConfig(1000.0, 1.0));
    ASSERT_TRUE(recovered.mount());
    EXPECT_NEAR(recovered.remaining(), ledger.remaining(), 1e-9);
}

TEST(BudgetLedger, UnrecoverableJournalHaltsAtZeroRemaining)
{
    NorFlashModel flash(ledgerGeom());
    {
        BudgetLedger ledger(flash, ledgerConfig());
        ASSERT_TRUE(ledger.mount());
        ASSERT_TRUE(ledger.journalSpend(0.5));
    }
    // Shoot the only block header (programming zeros kills magic and
    // CRC): the journal now holds records no header can anchor.
    std::array<uint8_t, BudgetLedger::kHeaderSize> zeros;
    zeros.fill(0x00);
    ASSERT_TRUE(flash.program(0, zeros.data(), zeros.size()));

    BudgetLedger recovered(flash, ledgerConfig());
    EXPECT_FALSE(recovered.mount());
    EXPECT_TRUE(recovered.halted());
    EXPECT_DOUBLE_EQ(recovered.remaining(), 0.0);
    EXPECT_EQ(recovered.stats().unrecoverable_mounts, 1u);
    // Halted means halted: no spend, no checkpoint, no resurrection.
    EXPECT_FALSE(recovered.journalSpend(0.1));
    EXPECT_FALSE(recovered.commitCheckpoint(5.0, std::nullopt));
    EXPECT_DOUBLE_EQ(recovered.remaining(), 0.0);
}

TEST(BudgetLedger, FormatCrashRecoversWithoutResurrection)
{
    // Power loss while programming the very first block header: no
    // spend can exist yet, so the next mount may scrub and reformat.
    NorFlashModel flash(ledgerGeom());
    ScriptedFlashHook hook;
    hook.cut_program_op = 0; // the header program
    hook.cut_program_at = 7;
    flash.attachFaultHook(&hook);
    {
        BudgetLedger ledger(flash, ledgerConfig());
        EXPECT_FALSE(ledger.mount());
    }
    flash.attachFaultHook(nullptr);
    flash.powerCycle();

    BudgetLedger recovered(flash, ledgerConfig());
    ASSERT_TRUE(recovered.mount());
    EXPECT_FALSE(recovered.halted());
    EXPECT_DOUBLE_EQ(recovered.remaining(), 5.0);
    EXPECT_EQ(recovered.stats().unrecoverable_mounts, 0u);
    EXPECT_TRUE(recovered.journalSpend(0.5));
}

TEST(BudgetLedger, GenesisCheckpointCrashChargesTheTornRecord)
{
    // Power loss while programming the genesis checkpoint: a valid
    // header with one torn record and zero spends is the benign
    // format-crash shape -- recovered, minus the fail-secure charge.
    NorFlashModel flash(ledgerGeom());
    ScriptedFlashHook hook;
    hook.cut_program_op = 1; // header ok, checkpoint body cut
    hook.cut_program_at = 10;
    flash.attachFaultHook(&hook);
    {
        BudgetLedger ledger(flash, ledgerConfig());
        EXPECT_FALSE(ledger.mount());
    }
    flash.attachFaultHook(nullptr);
    flash.powerCycle();

    BudgetLedger recovered(flash, ledgerConfig());
    ASSERT_TRUE(recovered.mount());
    EXPECT_FALSE(recovered.halted());
    EXPECT_EQ(recovered.stats().torn_records, 1u);
    EXPECT_DOUBLE_EQ(recovered.remaining(), 5.0 - 1.0);
}

// ---------------------------------------------------------------------
// BudgetController through the ledger.
// ---------------------------------------------------------------------

FxpMechanismParams
testParams(uint64_t seed = 1)
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    p.seed = seed;
    return p;
}

BudgetControllerConfig
testConfig(const FxpMechanismParams &p, double budget = 10.0)
{
    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = budget;
    cfg.kind = RangeControl::Thresholding;
    cfg.segments = LossSegments::compute(
        calc, RangeControl::Thresholding, {1.5, 2.0, 3.0});
    cfg.resample_attempt_limit = 4096;
    return cfg;
}

TEST(BudgetLedger, ControllerJournalsEverySpendBeforeRelease)
{
    NorFlashModel flash(ledgerGeom());
    BudgetLedger ledger(flash, ledgerConfig(10.0, 2.0));
    ASSERT_TRUE(ledger.mount());

    FxpMechanismParams p = testParams();
    auto cfg = testConfig(p);
    BudgetController ctrl(p, cfg);
    ctrl.attachLedger(&ledger);
    ASSERT_TRUE(ctrl.restoreFromLedger());

    double charged = 0.0;
    for (int i = 0; i < 5; ++i) {
        BudgetResponse r = ctrl.request(4.0 + i);
        ASSERT_FALSE(r.from_cache);
        charged += r.charged;
    }
    EXPECT_EQ(ledger.stats().spends_journaled, 5u);
    EXPECT_NEAR(ledger.remaining(), 10.0 - charged, 1e-9);
    EXPECT_NEAR(ctrl.remainingBudget(), ledger.remaining(), 1e-9);

    // The recovered ledger hands the next boot the same state.
    ASSERT_TRUE(ctrl.checkpointToLedger());
    BudgetLedger recovered(flash, ledgerConfig(10.0, 2.0));
    ASSERT_TRUE(recovered.mount());
    BudgetController next(p, cfg);
    next.attachLedger(&recovered);
    ASSERT_TRUE(next.restoreFromLedger());
    EXPECT_NEAR(next.remainingBudget(), ctrl.remainingBudget(), 1e-9);
}

TEST(BudgetLedger, FailedAppendWithholdsTheOutputAndLatches)
{
    NorFlashModel flash(ledgerGeom());
    BudgetLedger ledger(flash, ledgerConfig(10.0, 2.0));
    ASSERT_TRUE(ledger.mount());

    FxpMechanismParams p = testParams();
    auto cfg = testConfig(p);
    BudgetController ctrl(p, cfg);
    ctrl.attachLedger(&ledger);
    ASSERT_TRUE(ctrl.restoreFromLedger());
    BudgetResponse first = ctrl.request(3.0);
    ASSERT_FALSE(first.from_cache);

    // The power dies during the next spend's journal append: the
    // fresh draw is withheld, the cache (already-released data) is
    // served, and the controller latches fail-secure.
    ScriptedFlashHook hook;
    hook.cut_program_op = 0;
    hook.cut_program_at = 12;
    flash.attachFaultHook(&hook);
    BudgetResponse r = ctrl.request(8.0);
    EXPECT_TRUE(r.from_cache);
    EXPECT_DOUBLE_EQ(r.value, first.value);
    EXPECT_DOUBLE_EQ(r.charged, 0.0);
    EXPECT_TRUE(ctrl.faultLatched());
    EXPECT_EQ(ctrl.faultStats().ledger_append_failures, 1u);

    // Latched means latched, even after power returns.
    flash.attachFaultHook(nullptr);
    flash.powerCycle();
    EXPECT_TRUE(ctrl.request(2.0).from_cache);
}

TEST(BudgetLedger, HaltedLedgerRestoresControllerToZero)
{
    NorFlashModel flash(ledgerGeom());
    {
        BudgetLedger ledger(flash, ledgerConfig(10.0, 2.0));
        ASSERT_TRUE(ledger.mount());
        ASSERT_TRUE(ledger.journalSpend(1.0));
    }
    std::array<uint8_t, BudgetLedger::kHeaderSize> zeros;
    zeros.fill(0x00);
    ASSERT_TRUE(flash.program(0, zeros.data(), zeros.size()));

    BudgetLedger dead(flash, ledgerConfig(10.0, 2.0));
    EXPECT_FALSE(dead.mount());

    FxpMechanismParams p = testParams();
    BudgetController ctrl(p, testConfig(p));
    ctrl.attachLedger(&dead);
    EXPECT_FALSE(ctrl.restoreFromLedger());
    EXPECT_DOUBLE_EQ(ctrl.remainingBudget(), 0.0);
    // Zero budget, empty cache: only the constant midpoint leaves.
    BudgetResponse r = ctrl.request(7.0);
    EXPECT_TRUE(r.from_cache);
    EXPECT_DOUBLE_EQ(r.value, p.range.mid());
}

} // namespace
} // namespace ulpdp
