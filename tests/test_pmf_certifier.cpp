/**
 * @file
 * Tests for the exact-PMF privacy certifier: every registered
 * mechanism certifies at the CI profile, certificates carry sound
 * margins, and the JSON artifact round-trips the verdict.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/pmf_certifier.h"
#include "core/privacy_loss.h"

namespace ulpdp {
namespace {

FxpMechanismParams
ciProfile(int bu)
{
    FxpMechanismParams p;
    p.range = SensorRange(-20.0, 60.0);
    // eps = 1 at Bu = 8: 256 URNG states leave no room for the
    // discrete-Laplace scale correction under a 2 * 0.5 bound (the
    // ln 2 zero-atom penalty is scale-invariant); see certify tool.
    p.epsilon = 1.0;
    p.uniform_bits = bu;
    p.output_bits = 14;
    p.delta = p.range.length() / 32.0;
    return p;
}

TEST(PmfCertifier, AllRegisteredMechanismsCertifyAtBuEight)
{
    PmfCertifier certifier(ciProfile(8), 2.0);
    auto certs = certifier.certifyAll();
    ASSERT_EQ(certs.size(),
              MechanismRegistry::instance().names().size());
    for (const MechanismCertificate &c : certs) {
        EXPECT_TRUE(c.certified) << c.mechanism << " worst loss "
                                 << c.worst_case_loss << " vs bound "
                                 << c.bound;
        EXPECT_EQ(c.infinite_outputs, 0u) << c.mechanism;
        EXPECT_GT(c.worst_case_loss, 0.0) << c.mechanism;
        EXPECT_LE(c.worst_case_loss, c.bound * (1.0 + 1e-9) + 1e-12)
            << c.mechanism;
        EXPECT_EQ(c.uniform_bits, 8) << c.mechanism;
        EXPECT_EQ(c.states, uint64_t{1} << 8) << c.mechanism;
        EXPECT_NEAR(c.margin, c.bound - c.worst_case_loss, 1e-12)
            << c.mechanism;
    }
    EXPECT_TRUE(PmfCertifier::allCertified(certs));
}

TEST(PmfCertifier, CertificateMatchesDirectAnalysis)
{
    // The certificate's worst-case loss must be exactly what the
    // analyzer reports on the registry's own enumerated model -- the
    // certifier adds bookkeeping, not arithmetic.
    FxpMechanismParams profile = ciProfile(8);
    PmfCertifier certifier(profile, 2.0);
    MechanismCertificate cert = certifier.certify("resampling");

    const auto &entry =
        MechanismRegistry::instance().at("resampling");
    MechanismSpec spec;
    spec.params = profile;
    spec.loss_multiple = 2.0;
    spec.threshold_index = cert.threshold_index;
    spec.enumerate_pmf = true;
    LossReport rep =
        PrivacyLossAnalyzer::analyze(*entry.model(spec));
    ASSERT_TRUE(rep.bounded);
    EXPECT_EQ(cert.worst_case_loss, rep.worst_case_loss);
    EXPECT_EQ(cert.worst_output, rep.worst_output);
}

TEST(PmfCertifier, EmptyCertificateListIsNotCertified)
{
    EXPECT_FALSE(PmfCertifier::allCertified({}));
}

TEST(PmfCertifier, WritesJsonArtifact)
{
    PmfCertifier certifier(ciProfile(8), 2.0);
    auto certs = certifier.certifyAll();

    std::string path = ::testing::TempDir() + "certify_test.json";
    PmfCertifier::writeJson(certs, path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string body = ss.str();
    EXPECT_NE(body.find("\"certificates\""), std::string::npos);
    EXPECT_NE(body.find("\"all_certified\":true"),
              std::string::npos);
    EXPECT_NE(body.find("\"bounded-laplace\""), std::string::npos);
    EXPECT_NE(body.find("\"discrete-laplace\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(PmfCertifier, RejectsEnumerationsItCannotAfford)
{
    // Bu > 24 would enumerate > 16M states per input; the certifier
    // refuses rather than wedge CI.
    EXPECT_THROW(PmfCertifier(ciProfile(25), 2.0), FatalError);
}

} // namespace
} // namespace ulpdp
