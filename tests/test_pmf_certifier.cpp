/**
 * @file
 * Tests for the exact-PMF privacy certifier: every registered
 * mechanism certifies at the CI profile, certificates carry sound
 * margins, and the JSON artifact round-trips the verdict.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/pmf_certifier.h"
#include "core/privacy_loss.h"

namespace ulpdp {
namespace {

FxpMechanismParams
ciProfile(int bu)
{
    FxpMechanismParams p;
    p.range = SensorRange(-20.0, 60.0);
    // eps = 1 at Bu = 8: 256 URNG states leave no room for the
    // discrete-Laplace scale correction under a 2 * 0.5 bound (the
    // ln 2 zero-atom penalty is scale-invariant); see certify tool.
    p.epsilon = 1.0;
    p.uniform_bits = bu;
    p.output_bits = 14;
    p.delta = p.range.length() / 32.0;
    return p;
}

TEST(PmfCertifier, AllRegisteredMechanismsCertifyAtBuEight)
{
    PmfCertifier certifier(ciProfile(8), 2.0);
    auto certs = certifier.certifyAll();
    ASSERT_EQ(certs.size(),
              MechanismRegistry::instance().names().size());
    for (const MechanismCertificate &c : certs) {
        EXPECT_TRUE(c.certified) << c.mechanism << " worst loss "
                                 << c.worst_case_loss << " vs bound "
                                 << c.bound;
        EXPECT_EQ(c.infinite_outputs, 0u) << c.mechanism;
        EXPECT_GT(c.worst_case_loss, 0.0) << c.mechanism;
        EXPECT_LE(c.worst_case_loss, c.bound * (1.0 + 1e-9) + 1e-12)
            << c.mechanism;
        EXPECT_EQ(c.uniform_bits, 8) << c.mechanism;
        EXPECT_EQ(c.states, uint64_t{1} << 8) << c.mechanism;
        EXPECT_NEAR(c.margin, c.bound - c.worst_case_loss, 1e-12)
            << c.mechanism;
    }
    EXPECT_TRUE(PmfCertifier::allCertified(certs));
}

TEST(PmfCertifier, CertificateMatchesDirectAnalysis)
{
    // The certificate's worst-case loss must be exactly what the
    // analyzer reports on the registry's own enumerated model -- the
    // certifier adds bookkeeping, not arithmetic.
    FxpMechanismParams profile = ciProfile(8);
    PmfCertifier certifier(profile, 2.0);
    MechanismCertificate cert = certifier.certify("resampling");

    const auto &entry =
        MechanismRegistry::instance().at("resampling");
    MechanismSpec spec;
    spec.params = profile;
    spec.loss_multiple = 2.0;
    spec.threshold_index = cert.threshold_index;
    spec.enumerate_pmf = true;
    LossReport rep =
        PrivacyLossAnalyzer::analyze(*entry.model(spec));
    ASSERT_TRUE(rep.bounded);
    EXPECT_EQ(cert.worst_case_loss, rep.worst_case_loss);
    EXPECT_EQ(cert.worst_output, rep.worst_output);
}

TEST(PmfCertifier, EmptyCertificateListIsNotCertified)
{
    EXPECT_FALSE(PmfCertifier::allCertified({}));
}

TEST(PmfCertifier, WritesJsonArtifact)
{
    PmfCertifier certifier(ciProfile(8), 2.0);
    auto certs = certifier.certifyAll();

    std::string path = ::testing::TempDir() + "certify_test.json";
    PmfCertifier::writeJson(certs, path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string body = ss.str();
    EXPECT_NE(body.find("\"certificates\""), std::string::npos);
    EXPECT_NE(body.find("\"all_certified\":true"),
              std::string::npos);
    EXPECT_NE(body.find("\"bounded-laplace\""), std::string::npos);
    EXPECT_NE(body.find("\"discrete-laplace\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(PmfCertifier, RejectsEnumerationsItCannotAfford)
{
    // The segment engine accepts the full RNG width range, Bu <= 32;
    // beyond that the certifier refuses rather than wedge CI.
    EXPECT_THROW(PmfCertifier(ciProfile(33), 2.0), FatalError);
    EXPECT_NO_THROW(PmfCertifier(ciProfile(32), 2.0));
    // The legacy per-state cross-check engine keeps the old 2^24
    // affordability cap.
    PmfCertifier wide(ciProfile(25), 2.0);
    EXPECT_THROW(wide.setLegacyEnumeration(true), FatalError);
    PmfCertifier narrow(ciProfile(10), 2.0);
    EXPECT_NO_THROW(narrow.setLegacyEnumeration(true));
}

TEST(PmfCertifier, CertifiesAtBuThirtyTwo)
{
    // The raised ceiling is usable, not just accepted: the full
    // registry certifies at the silicon-unreachable-by-walking width
    // (2^32 states accounted for without visiting them).
    PmfCertifier certifier(ciProfile(32), 2.0);
    auto certs = certifier.certifyAll();
    ASSERT_EQ(certs.size(),
              MechanismRegistry::instance().names().size());
    for (const MechanismCertificate &c : certs) {
        EXPECT_TRUE(c.certified) << c.mechanism;
        EXPECT_EQ(c.states, uint64_t{1} << 32) << c.mechanism;
    }
}

TEST(PmfCertifier, FastAndLegacyCertificatesBitIdentical)
{
    // The segment-rank engine must reproduce the per-state walk's
    // certificates exactly -- same doubles, not just same verdicts --
    // for every registered mechanism at both CI working points.
    struct Point
    {
        int bu;
        double eps;
    };
    for (const Point &pt :
         {Point{8, 1.0}, Point{10, 0.5}, Point{12, 1.0}}) {
        FxpMechanismParams profile = ciProfile(pt.bu);
        profile.epsilon = pt.eps;
        PmfCertifier fast(profile, 2.0);
        PmfCertifier legacy(profile, 2.0);
        legacy.setLegacyEnumeration(true);
        auto fc = fast.certifyAll();
        auto lc = legacy.certifyAll();
        ASSERT_EQ(fc.size(), lc.size());
        for (size_t i = 0; i < fc.size(); ++i) {
            SCOPED_TRACE(fc[i].mechanism + " at Bu=" +
                         std::to_string(pt.bu));
            EXPECT_EQ(fc[i].mechanism, lc[i].mechanism);
            EXPECT_EQ(fc[i].threshold_index, lc[i].threshold_index);
            EXPECT_EQ(fc[i].worst_case_loss, lc[i].worst_case_loss);
            EXPECT_EQ(fc[i].worst_output, lc[i].worst_output);
            EXPECT_EQ(fc[i].infinite_outputs, lc[i].infinite_outputs);
            EXPECT_EQ(fc[i].margin, lc[i].margin);
            EXPECT_EQ(fc[i].certified, lc[i].certified);
        }
    }
}

TEST(PmfCertifier, CertifyAllIndependentOfJobCount)
{
    FxpMechanismParams profile = ciProfile(10);
    PmfCertifier serial(profile, 2.0);
    auto base = serial.certifyAll();
    for (int jobs : {2, 3, 8}) {
        PmfCertifier parallel(profile, 2.0);
        parallel.setJobs(jobs);
        auto certs = parallel.certifyAll();
        ASSERT_EQ(certs.size(), base.size()) << "jobs=" << jobs;
        for (size_t i = 0; i < certs.size(); ++i) {
            SCOPED_TRACE(base[i].mechanism + " jobs=" +
                         std::to_string(jobs));
            EXPECT_EQ(certs[i].worst_case_loss,
                      base[i].worst_case_loss);
            EXPECT_EQ(certs[i].worst_output, base[i].worst_output);
            EXPECT_EQ(certs[i].threshold_index,
                      base[i].threshold_index);
            EXPECT_EQ(certs[i].infinite_outputs,
                      base[i].infinite_outputs);
            EXPECT_EQ(certs[i].margin, base[i].margin);
            EXPECT_EQ(certs[i].certified, base[i].certified);
        }
    }
}

TEST(PmfCertifier, TimingFieldsPopulatedAndOptionalInJson)
{
    PmfCertifier certifier(ciProfile(8), 2.0);
    auto certs = certifier.certifyAll();
    for (const MechanismCertificate &c : certs) {
        EXPECT_GT(c.elapsed_seconds, 0.0) << c.mechanism;
        EXPECT_GT(c.states_per_second, 0.0) << c.mechanism;
    }

    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    std::string timed = ::testing::TempDir() + "certify_timed.json";
    std::string bare = ::testing::TempDir() + "certify_bare.json";
    PmfCertifier::writeJson(certs, timed);
    PmfCertifier::writeJson(certs, bare, false);
    EXPECT_NE(slurp(timed).find("\"elapsed_seconds\""),
              std::string::npos);
    EXPECT_EQ(slurp(bare).find("\"elapsed_seconds\""),
              std::string::npos);
    std::remove(timed.c_str());
    std::remove(bare.c_str());
}

} // namespace
} // namespace ulpdp
