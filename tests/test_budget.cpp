/**
 * @file
 * Tests for the Fig. 8 loss segmentation and the Algorithm 1 budget
 * controller (caching, exhaustion, replenishment, adaptive charging).
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/budget.h"

namespace ulpdp {
namespace {

FxpMechanismParams
testParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    return p;
}

std::vector<BudgetSegment>
testSegments(const FxpMechanismParams &p, RangeControl kind)
{
    ThresholdCalculator calc(p);
    return LossSegments::compute(calc, kind, {1.5, 2.0, 3.0});
}

TEST(LossSegments, StructureIsSane)
{
    FxpMechanismParams p = testParams();
    auto segs = testSegments(p, RangeControl::Thresholding);
    ASSERT_GE(segs.size(), 2u);
    EXPECT_EQ(segs.front().threshold_index, 0);
    for (size_t i = 1; i < segs.size(); ++i) {
        EXPECT_GT(segs[i].threshold_index, segs[i - 1].threshold_index);
        EXPECT_GE(segs[i].loss, segs[i - 1].loss);
    }
}

TEST(LossSegments, LossesRespectTheLevels)
{
    FxpMechanismParams p = testParams();
    ThresholdCalculator calc(p);
    auto segs = LossSegments::compute(calc, RangeControl::Resampling,
                                      {1.5, 2.0, 3.0});
    std::vector<double> levels{1.5, 2.0, 3.0};
    // Outer segments (beyond the central one) obey their levels.
    for (size_t i = 1; i < segs.size(); ++i)
        EXPECT_LE(segs[i].loss, levels[i - 1] * p.epsilon + 1e-9);
}

TEST(LossSegments, CentralLossNearEpsilon)
{
    FxpMechanismParams p = testParams();
    ThresholdCalculator calc(p);
    double central = LossSegments::centralLoss(
        calc, RangeControl::Resampling);
    EXPECT_GT(central, 0.0);
    EXPECT_LT(central, 1.5 * p.epsilon);
}

TEST(LossSegments, RejectsBadLevels)
{
    FxpMechanismParams p = testParams();
    ThresholdCalculator calc(p);
    EXPECT_THROW(LossSegments::compute(calc,
                                       RangeControl::Thresholding, {}),
                 FatalError);
    EXPECT_THROW(LossSegments::compute(
                     calc, RangeControl::Thresholding, {0.9}),
                 FatalError);
    EXPECT_THROW(LossSegments::compute(
                     calc, RangeControl::Thresholding, {2.0, 1.5}),
                 FatalError);
}

BudgetControllerConfig
makeConfig(const FxpMechanismParams &p, double budget,
           RangeControl kind, uint64_t replenish = 0)
{
    BudgetControllerConfig cfg;
    cfg.initial_budget = budget;
    cfg.replenish_period = replenish;
    cfg.kind = kind;
    cfg.segments = testSegments(p, kind);
    return cfg;
}

TEST(BudgetController, RejectsBadConfig)
{
    FxpMechanismParams p = testParams();
    BudgetControllerConfig cfg =
        makeConfig(p, 5.0, RangeControl::Thresholding);
    cfg.initial_budget = 0.0;
    EXPECT_THROW(BudgetController(p, cfg), FatalError);

    cfg = makeConfig(p, 5.0, RangeControl::Thresholding);
    cfg.segments.clear();
    EXPECT_THROW(BudgetController(p, cfg), FatalError);

    cfg = makeConfig(p, 5.0, RangeControl::Thresholding);
    std::swap(cfg.segments.front(), cfg.segments.back());
    EXPECT_THROW(BudgetController(p, cfg), FatalError);
}

TEST(BudgetController, ChargesPerRequest)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(p,
                          makeConfig(p, 5.0,
                                     RangeControl::Thresholding));
    double before = ctrl.remainingBudget();
    BudgetResponse r = ctrl.request(5.0);
    EXPECT_FALSE(r.from_cache);
    EXPECT_GT(r.charged, 0.0);
    EXPECT_DOUBLE_EQ(ctrl.remainingBudget(), before - r.charged);
    EXPECT_EQ(ctrl.freshReports(), 1u);
}

TEST(BudgetController, OutputsConfinedToOuterWindow)
{
    FxpMechanismParams p = testParams();
    auto cfg = makeConfig(p, 1e9, RangeControl::Thresholding);
    BudgetController ctrl(p, cfg);
    double ext = static_cast<double>(
                     cfg.segments.back().threshold_index) *
                 p.resolvedDelta();
    for (int i = 0; i < 5000; ++i) {
        double y = ctrl.request(5.0).value;
        EXPECT_GE(y, 0.0 - ext - 1e-9);
        EXPECT_LE(y, 10.0 + ext + 1e-9);
    }
}

TEST(BudgetController, AdaptiveChargingUsesSegments)
{
    // With enough requests both central (cheap) and boundary
    // (expensive) charges must occur.
    FxpMechanismParams p = testParams();
    auto cfg = makeConfig(p, 1e9, RangeControl::Thresholding);
    BudgetController ctrl(p, cfg);
    std::set<int64_t> charges_seen;
    for (int i = 0; i < 20000; ++i) {
        BudgetResponse r = ctrl.request(5.0);
        charges_seen.insert(
            static_cast<int64_t>(std::llround(r.charged * 1e9)));
    }
    EXPECT_GE(charges_seen.size(), 2u);
}

TEST(BudgetController, ExhaustionServesCache)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(p,
                          makeConfig(p, 2.0,
                                     RangeControl::Thresholding));
    double last_fresh = 0.0;
    bool exhausted = false;
    double cached_value = 0.0;
    for (int i = 0; i < 100; ++i) {
        BudgetResponse r = ctrl.request(5.0);
        if (!r.from_cache) {
            last_fresh = r.value;
        } else {
            if (!exhausted) {
                exhausted = true;
                cached_value = r.value;
                EXPECT_DOUBLE_EQ(r.value, last_fresh);
                EXPECT_DOUBLE_EQ(r.charged, 0.0);
            } else {
                // The cache must replay the same value forever.
                EXPECT_DOUBLE_EQ(r.value, cached_value);
            }
        }
    }
    EXPECT_TRUE(exhausted);
    EXPECT_GT(ctrl.cacheHits(), 0u);
}

TEST(BudgetController, TotalChargedNeverExceedsBudget)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(p,
                          makeConfig(p, 3.0, RangeControl::Resampling));
    double total = 0.0;
    for (int i = 0; i < 200; ++i)
        total += ctrl.request(7.0).charged;
    EXPECT_LE(total, 3.0 + 1e-9);
    EXPECT_GE(ctrl.remainingBudget(), -1e-9);
}

TEST(BudgetController, ResamplingModeDrawsExtraSamples)
{
    FxpMechanismParams p = testParams();
    // Tight outer window to force resampling. Build custom segments:
    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = 1e9;
    cfg.kind = RangeControl::Resampling;
    cfg.segments = LossSegments::compute(calc, cfg.kind, {1.2, 1.5});
    BudgetController ctrl(p, cfg);

    uint64_t total_samples = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i)
        total_samples += ctrl.request(0.0).samples_drawn;
    EXPECT_GT(total_samples, static_cast<uint64_t>(n));
}

TEST(BudgetController, ReplenishmentRestoresBudget)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(
        p, makeConfig(p, 1.5, RangeControl::Thresholding, 1000));
    // Exhaust.
    for (int i = 0; i < 50; ++i)
        ctrl.request(5.0);
    EXPECT_GT(ctrl.cacheHits(), 0u);
    double drained = ctrl.remainingBudget();

    ctrl.advanceTime(1000);
    EXPECT_GT(ctrl.remainingBudget(), drained);
    BudgetResponse r = ctrl.request(5.0);
    EXPECT_FALSE(r.from_cache);
}

TEST(BudgetController, NoReplenishWhenDisabled)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(
        p, makeConfig(p, 1.0, RangeControl::Thresholding, 0));
    for (int i = 0; i < 30; ++i)
        ctrl.request(5.0);
    double drained = ctrl.remainingBudget();
    ctrl.advanceTime(1u << 20);
    EXPECT_DOUBLE_EQ(ctrl.remainingBudget(), drained);
}

TEST(BudgetController, SpentSinceReplenish)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(p,
                          makeConfig(p, 10.0,
                                     RangeControl::Thresholding));
    ctrl.request(5.0);
    EXPECT_GT(ctrl.spentSinceReplenish(), 0.0);
    EXPECT_NEAR(ctrl.spentSinceReplenish() + ctrl.remainingBudget(),
                10.0, 1e-12);
}

} // anonymous namespace
} // namespace ulpdp
