/**
 * @file
 * Tests for the Fig. 8 loss segmentation and the Algorithm 1 budget
 * controller (caching, exhaustion, replenishment, adaptive charging).
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/budget.h"

namespace ulpdp {
namespace {

FxpMechanismParams
testParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    return p;
}

std::vector<BudgetSegment>
testSegments(const FxpMechanismParams &p, RangeControl kind)
{
    ThresholdCalculator calc(p);
    return LossSegments::compute(calc, kind, {1.5, 2.0, 3.0});
}

TEST(LossSegments, StructureIsSane)
{
    FxpMechanismParams p = testParams();
    auto segs = testSegments(p, RangeControl::Thresholding);
    ASSERT_GE(segs.size(), 2u);
    EXPECT_EQ(segs.front().threshold_index, 0);
    for (size_t i = 1; i < segs.size(); ++i) {
        EXPECT_GT(segs[i].threshold_index, segs[i - 1].threshold_index);
        EXPECT_GE(segs[i].loss, segs[i - 1].loss);
    }
}

TEST(LossSegments, LossesRespectTheLevels)
{
    FxpMechanismParams p = testParams();
    ThresholdCalculator calc(p);
    auto segs = LossSegments::compute(calc, RangeControl::Resampling,
                                      {1.5, 2.0, 3.0});
    std::vector<double> levels{1.5, 2.0, 3.0};
    // Outer segments (beyond the central one) obey their levels.
    for (size_t i = 1; i < segs.size(); ++i)
        EXPECT_LE(segs[i].loss, levels[i - 1] * p.epsilon + 1e-9);
}

TEST(LossSegments, CentralLossNearEpsilon)
{
    FxpMechanismParams p = testParams();
    ThresholdCalculator calc(p);
    double central = LossSegments::centralLoss(
        calc, RangeControl::Resampling);
    EXPECT_GT(central, 0.0);
    EXPECT_LT(central, 1.5 * p.epsilon);
}

TEST(LossSegments, RejectsBadLevels)
{
    FxpMechanismParams p = testParams();
    ThresholdCalculator calc(p);
    EXPECT_THROW(LossSegments::compute(calc,
                                       RangeControl::Thresholding, {}),
                 FatalError);
    EXPECT_THROW(LossSegments::compute(
                     calc, RangeControl::Thresholding, {0.9}),
                 FatalError);
    EXPECT_THROW(LossSegments::compute(
                     calc, RangeControl::Thresholding, {2.0, 1.5}),
                 FatalError);
}

BudgetControllerConfig
makeConfig(const FxpMechanismParams &p, double budget,
           RangeControl kind, uint64_t replenish = 0)
{
    BudgetControllerConfig cfg;
    cfg.initial_budget = budget;
    cfg.replenish_period = replenish;
    cfg.kind = kind;
    cfg.segments = testSegments(p, kind);
    return cfg;
}

TEST(BudgetController, RejectsBadConfig)
{
    FxpMechanismParams p = testParams();
    BudgetControllerConfig cfg =
        makeConfig(p, 5.0, RangeControl::Thresholding);
    cfg.initial_budget = 0.0;
    EXPECT_THROW(BudgetController(p, cfg), FatalError);

    cfg = makeConfig(p, 5.0, RangeControl::Thresholding);
    cfg.segments.clear();
    EXPECT_THROW(BudgetController(p, cfg), FatalError);

    cfg = makeConfig(p, 5.0, RangeControl::Thresholding);
    std::swap(cfg.segments.front(), cfg.segments.back());
    EXPECT_THROW(BudgetController(p, cfg), FatalError);
}

TEST(BudgetController, ChargesPerRequest)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(p,
                          makeConfig(p, 5.0,
                                     RangeControl::Thresholding));
    double before = ctrl.remainingBudget();
    BudgetResponse r = ctrl.request(5.0);
    EXPECT_FALSE(r.from_cache);
    EXPECT_GT(r.charged, 0.0);
    EXPECT_DOUBLE_EQ(ctrl.remainingBudget(), before - r.charged);
    EXPECT_EQ(ctrl.freshReports(), 1u);
}

TEST(BudgetController, OutputsConfinedToOuterWindow)
{
    FxpMechanismParams p = testParams();
    auto cfg = makeConfig(p, 1e9, RangeControl::Thresholding);
    BudgetController ctrl(p, cfg);
    double ext = static_cast<double>(
                     cfg.segments.back().threshold_index) *
                 p.resolvedDelta();
    for (int i = 0; i < 5000; ++i) {
        double y = ctrl.request(5.0).value;
        EXPECT_GE(y, 0.0 - ext - 1e-9);
        EXPECT_LE(y, 10.0 + ext + 1e-9);
    }
}

TEST(BudgetController, AdaptiveChargingUsesSegments)
{
    // With enough requests both central (cheap) and boundary
    // (expensive) charges must occur.
    FxpMechanismParams p = testParams();
    auto cfg = makeConfig(p, 1e9, RangeControl::Thresholding);
    BudgetController ctrl(p, cfg);
    std::set<int64_t> charges_seen;
    for (int i = 0; i < 20000; ++i) {
        BudgetResponse r = ctrl.request(5.0);
        charges_seen.insert(
            static_cast<int64_t>(std::llround(r.charged * 1e9)));
    }
    EXPECT_GE(charges_seen.size(), 2u);
}

TEST(BudgetController, ExhaustionServesCache)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(p,
                          makeConfig(p, 2.0,
                                     RangeControl::Thresholding));
    double last_fresh = 0.0;
    bool exhausted = false;
    double cached_value = 0.0;
    for (int i = 0; i < 100; ++i) {
        BudgetResponse r = ctrl.request(5.0);
        if (!r.from_cache) {
            last_fresh = r.value;
        } else {
            if (!exhausted) {
                exhausted = true;
                cached_value = r.value;
                EXPECT_DOUBLE_EQ(r.value, last_fresh);
                EXPECT_DOUBLE_EQ(r.charged, 0.0);
            } else {
                // The cache must replay the same value forever.
                EXPECT_DOUBLE_EQ(r.value, cached_value);
            }
        }
    }
    EXPECT_TRUE(exhausted);
    EXPECT_GT(ctrl.cacheHits(), 0u);
}

TEST(BudgetController, TotalChargedNeverExceedsBudget)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(p,
                          makeConfig(p, 3.0, RangeControl::Resampling));
    double total = 0.0;
    for (int i = 0; i < 200; ++i)
        total += ctrl.request(7.0).charged;
    EXPECT_LE(total, 3.0 + 1e-9);
    EXPECT_GE(ctrl.remainingBudget(), -1e-9);
}

TEST(BudgetController, ResamplingModeDrawsExtraSamples)
{
    FxpMechanismParams p = testParams();
    // The naive reference pipeline redraws on rejection; pin it so
    // the accept-reject loop itself stays covered.
    p.sample_path = FxpLaplaceConfig::SamplePath::Naive;
    // Tight outer window to force resampling. Build custom segments:
    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = 1e9;
    cfg.kind = RangeControl::Resampling;
    cfg.segments = LossSegments::compute(calc, cfg.kind, {1.2, 1.5});
    BudgetController ctrl(p, cfg);

    uint64_t total_samples = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i)
        total_samples += ctrl.request(0.0).samples_drawn;
    EXPECT_GT(total_samples, static_cast<uint64_t>(n));
}

TEST(BudgetController, FastPathResamplesInOneDraw)
{
    // The table fast path serves the accept-reject conditional by
    // truncated direct inversion: exactly one sample per report, and
    // every output stays inside the window.
    FxpMechanismParams p = testParams();
    ASSERT_EQ(p.sample_path, FxpLaplaceConfig::SamplePath::Auto);
    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = 1e9;
    cfg.kind = RangeControl::Resampling;
    cfg.segments = LossSegments::compute(calc, cfg.kind, {1.2, 1.5});
    BudgetController ctrl(p, cfg);

    double ext = static_cast<double>(
                     cfg.segments.back().threshold_index) *
                 p.resolvedDelta();
    for (int i = 0; i < 3000; ++i) {
        BudgetResponse r = ctrl.request(0.0);
        EXPECT_EQ(r.samples_drawn, 1u);
        EXPECT_GE(r.value, 0.0 - ext - 1e-9);
        EXPECT_LE(r.value, 10.0 + ext + 1e-9);
    }
    EXPECT_EQ(ctrl.resampleOverflows(), 0u);
}

TEST(BudgetController, ReplenishmentRestoresBudget)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(
        p, makeConfig(p, 1.5, RangeControl::Thresholding, 1000));
    // Exhaust.
    for (int i = 0; i < 50; ++i)
        ctrl.request(5.0);
    EXPECT_GT(ctrl.cacheHits(), 0u);
    double drained = ctrl.remainingBudget();

    ctrl.advanceTime(1000);
    EXPECT_GT(ctrl.remainingBudget(), drained);
    BudgetResponse r = ctrl.request(5.0);
    EXPECT_FALSE(r.from_cache);
}

TEST(BudgetController, NoReplenishWhenDisabled)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(
        p, makeConfig(p, 1.0, RangeControl::Thresholding, 0));
    for (int i = 0; i < 30; ++i)
        ctrl.request(5.0);
    double drained = ctrl.remainingBudget();
    ctrl.advanceTime(1u << 20);
    EXPECT_DOUBLE_EQ(ctrl.remainingBudget(), drained);
}

TEST(BudgetController, HaltedRequestConsumesNoRandomness)
{
    // Algorithm 1 halts *before* sampling: a request the budget
    // cannot cover must leave the URNG state and the sample counter
    // untouched (the seed bug drew noise first and burned both).
    FxpMechanismParams p = testParams();
    BudgetController ctrl(p,
                          makeConfig(p, 1e-3,
                                     RangeControl::Thresholding));
    const Tausworthe &u = ctrl.rng().urng();
    uint32_t s1 = u.s1(), s2 = u.s2(), s3 = u.s3();

    BudgetResponse r = ctrl.request(7.0);
    EXPECT_TRUE(r.from_cache);
    EXPECT_EQ(r.samples_drawn, 0u);
    EXPECT_DOUBLE_EQ(r.value, 5.0); // midpoint: no fresh report yet
    EXPECT_EQ(ctrl.rng().samplesDrawn(), 0u);
    EXPECT_EQ(u.s1(), s1);
    EXPECT_EQ(u.s2(), s2);
    EXPECT_EQ(u.s3(), s3);
}

TEST(BudgetController, CacheHitsAfterExhaustionConsumeNoRandomness)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(p,
                          makeConfig(p, 2.0,
                                     RangeControl::Thresholding));
    for (int i = 0; i < 100; ++i)
        ctrl.request(5.0);
    ASSERT_GT(ctrl.cacheHits(), 0u);

    const Tausworthe &u = ctrl.rng().urng();
    uint32_t s1 = u.s1(), s2 = u.s2(), s3 = u.s3();
    uint64_t drawn = ctrl.rng().samplesDrawn();
    for (int i = 0; i < 20; ++i) {
        BudgetResponse r = ctrl.request(5.0);
        EXPECT_TRUE(r.from_cache);
        EXPECT_EQ(r.samples_drawn, 0u);
    }
    EXPECT_EQ(ctrl.rng().samplesDrawn(), drawn);
    EXPECT_EQ(u.s1(), s1);
    EXPECT_EQ(u.s2(), s2);
    EXPECT_EQ(u.s3(), s3);
}

TEST(BudgetController, PartialBudgetNarrowsTheWindow)
{
    // With the feasibility check ahead of sampling, a budget that
    // covers only the central segment confines outputs to the sensor
    // range and charges exactly the central loss -- it does not
    // gamble on where the sample lands.
    FxpMechanismParams p = testParams();
    auto cfg = makeConfig(p, 1.0, RangeControl::Thresholding);
    ASSERT_GE(cfg.segments.size(), 2u);
    double central = cfg.segments.front().loss;
    double next = cfg.segments[1].loss;
    cfg.initial_budget = 0.5 * (central + next);
    ASSERT_LT(cfg.initial_budget, next);
    ASSERT_GT(cfg.initial_budget, central);

    BudgetController ctrl(p, cfg);
    bool fresh_seen = false;
    for (int i = 0; i < 10; ++i) {
        BudgetResponse r = ctrl.request(9.5);
        if (r.from_cache)
            continue;
        fresh_seen = true;
        EXPECT_DOUBLE_EQ(r.charged, central);
        EXPECT_GE(r.value, 0.0 - 1e-9);
        EXPECT_LE(r.value, 10.0 + 1e-9);
    }
    EXPECT_TRUE(fresh_seen);
}

TEST(BudgetController, ResampleOverflowDegradesToClamp)
{
    // A redraw cap of 1 makes rejection certain to occur; the
    // controller must warn and clamp at the window edge instead of
    // panicking, and count the degradation.
    FxpMechanismParams p = testParams();
    p.sample_path = FxpLaplaceConfig::SamplePath::Naive;
    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = 1e9;
    cfg.kind = RangeControl::Resampling;
    cfg.segments = LossSegments::compute(calc, cfg.kind, {1.2, 1.5});
    cfg.resample_attempt_limit = 1;
    BudgetController ctrl(p, cfg);

    setLoggingEnabled(false);
    double ext = static_cast<double>(
                     cfg.segments.back().threshold_index) *
                 p.resolvedDelta();
    for (int i = 0; i < 200; ++i) {
        BudgetResponse r = ctrl.request(0.0);
        EXPECT_FALSE(r.from_cache);
        EXPECT_GE(r.value, 0.0 - ext - 1e-9);
        EXPECT_LE(r.value, 10.0 + ext + 1e-9);
    }
    setLoggingEnabled(true);
    EXPECT_GT(ctrl.resampleOverflows(), 0u);
}

TEST(BudgetController, SpentSinceReplenish)
{
    FxpMechanismParams p = testParams();
    BudgetController ctrl(p,
                          makeConfig(p, 10.0,
                                     RangeControl::Thresholding));
    ctrl.request(5.0);
    EXPECT_GT(ctrl.spentSinceReplenish(), 0.0);
    EXPECT_NEAR(ctrl.spentSinceReplenish() + ctrl.remainingBudget(),
                10.0, 1e-12);
}

} // anonymous namespace
} // namespace ulpdp
