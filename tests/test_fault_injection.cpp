/**
 * @file
 * Fault-injection tests: unit tests for every hardening primitive
 * (CRCs, URNG health tests, table integrity, budget checkpoints, bus
 * retry) and seeded chaos campaigns asserting the fail-secure policy
 * end to end -- under every injected fault the released outputs keep
 * their enumerated privacy loss below the configured n * eps bound or
 * the device visibly degrades to cache replay. The same campaigns
 * with hardening disabled demonstrably violate the invariants, which
 * is what proves the hardening has teeth.
 */

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/logging.h"
#include "core/budget.h"
#include "core/output_model.h"
#include "core/threshold_calc.h"
#include "dpbox/trace.h"
#include "rng/health.h"
#include "rng/laplace_table.h"
#include "sim/fault_injector.h"
#include "sim/sensor_bus.h"

namespace ulpdp {
namespace {

FxpMechanismParams
testParams(uint64_t seed = 1)
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    p.seed = seed;
    return p;
}

BudgetControllerConfig
testConfig(const FxpMechanismParams &p, RangeControl kind,
           double budget = 100.0)
{
    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = budget;
    cfg.kind = kind;
    cfg.segments = LossSegments::compute(calc, kind, {1.5, 2.0, 3.0});
    cfg.resample_attempt_limit = 4096;
    return cfg;
}

/**
 * Whole-support per-output privacy loss of a model: for each output
 * index, ln(max_i P[y|i] / min_i P[y|i]). Unreachable outputs and
 * outputs only some inputs can produce map to +inf -- a device that
 * releases one has left the analysed support entirely.
 */
std::vector<double>
perOutputLoss(const DiscreteOutputModel &m)
{
    std::vector<double> loss;
    for (int64_t j = m.outputLo(); j <= m.outputHi(); ++j) {
        double mx = 0.0;
        double mn = std::numeric_limits<double>::infinity();
        for (int64_t i = 0; i <= m.span(); ++i) {
            double pr = m.prob(j, i);
            mx = std::max(mx, pr);
            mn = std::min(mn, pr);
        }
        if (mn <= 0.0)
            loss.push_back(std::numeric_limits<double>::infinity());
        else
            loss.push_back(std::log(mx / mn));
    }
    return loss;
}

std::unique_ptr<DiscreteOutputModel>
makeModel(const ThresholdCalculator &calc, RangeControl kind,
          int64_t threshold)
{
    if (kind == RangeControl::Resampling) {
        return std::make_unique<ResamplingOutputModel>(
            calc.pmf(), calc.span(), threshold);
    }
    return std::make_unique<ThresholdingOutputModel>(
        calc.pmf(), calc.span(), threshold);
}

// ---------------------------------------------------------------------
// Integrity-code known answers.
// ---------------------------------------------------------------------

TEST(FaultCrc, Crc32KnownAnswer)
{
    // The IEEE 802.3 check value for the ASCII digits "123456789".
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(FaultCrc, Crc32SeedChains)
{
    const char *msg = "123456789";
    uint32_t half = crc32(msg, 4);
    EXPECT_EQ(crc32(msg + 4, 5, half), crc32(msg, 9));
}

TEST(FaultCrc, Crc8MatchesSht3xVector)
{
    // The SHT3x datasheet example: CRC-8 of 0xBEEF is 0x92.
    uint8_t data[2] = {0xBE, 0xEF};
    EXPECT_EQ(crc8(data, 2), 0x92);
}

// ---------------------------------------------------------------------
// URNG continuous health tests.
// ---------------------------------------------------------------------

TEST(RngHealth, HealthyStreamNeverAlarms)
{
    Tausworthe urng(7);
    RngHealthMonitor monitor;
    urng.attachHealthMonitor(&monitor);
    for (int i = 0; i < 8192; ++i)
        urng.next32();
    EXPECT_FALSE(monitor.alarmed());
    EXPECT_EQ(monitor.observed(), 8192u);
}

TEST(RngHealth, StuckWordTripsRepetitionCount)
{
    RngHealthMonitor monitor;
    monitor.observe(0xDEADBEEF);
    monitor.observe(0xDEADBEEF);
    EXPECT_FALSE(monitor.alarmed()) << "cutoff is 3, not 2";
    monitor.observe(0xDEADBEEF);
    EXPECT_TRUE(monitor.alarmed());
    EXPECT_GE(monitor.repetitionAlarms(), 1u);
}

TEST(RngHealth, StuckBitTripsProportionTest)
{
    // Words keep changing (repetition test is blind), but bit 5 is
    // stuck at 1: the per-lane proportion test must catch it within
    // one window.
    Tausworthe urng(11);
    RngHealthMonitor monitor;
    uint32_t window = monitor.config().proportion_window;
    for (uint32_t i = 0; i < window && !monitor.alarmed(); ++i)
        monitor.observe(urng.next32() | (1u << 5));
    EXPECT_TRUE(monitor.alarmed());
    EXPECT_GE(monitor.proportionAlarms(), 1u);
    EXPECT_EQ(monitor.repetitionAlarms(), 0u);
}

TEST(RngHealth, ResetClearsTheLatch)
{
    RngHealthMonitor monitor;
    for (int i = 0; i < 3; ++i)
        monitor.observe(42);
    ASSERT_TRUE(monitor.alarmed());
    monitor.reset();
    EXPECT_FALSE(monitor.alarmed());
}

TEST(RngHealth, RejectsVacuousConfig)
{
    RngHealthConfig cfg;
    cfg.repetition_cutoff = 1;
    EXPECT_THROW(RngHealthMonitor{cfg}, FatalError);
}

// ---------------------------------------------------------------------
// Sampler-table integrity.
// ---------------------------------------------------------------------

TEST(TableIntegrity, FreshTableVerifies)
{
    FxpLaplaceRng rng(testParams().rngConfig(), 1);
    ASSERT_TRUE(rng.fastPathEnabled());
    EXPECT_TRUE(rng.table().verify());
    EXPECT_TRUE(rng.verifyTableIntegrity());
    EXPECT_FALSE(rng.integrityFault());
}

TEST(TableIntegrity, FlipBitBreaksAndRestoresTheCrc)
{
    FxpLaplaceRng rng(testParams().rngConfig(), 1);
    LaplaceSampleTable *table = rng.mutableTable();
    ASSERT_NE(table, nullptr);
    uint32_t reference = table->referenceCrc();

    table->flipBit(17, 3);
    EXPECT_FALSE(table->verify());
    table->flipBit(17, 3);
    EXPECT_TRUE(table->verify());
    EXPECT_EQ(table->referenceCrc(), reference);
}

TEST(TableIntegrity, ScrubQuarantinesACorruptedTable)
{
    FxpLaplaceRng rng(testParams().rngConfig(), 1);
    rng.mutableTable()->flipBit(1234, 6);

    EXPECT_FALSE(rng.verifyTableIntegrity());
    EXPECT_TRUE(rng.integrityFault());
    EXPECT_FALSE(rng.fastPathEnabled())
        << "a quarantined table must never serve another draw";
    EXPECT_GE(rng.integrityDetections(), 1u);

    // Draws keep flowing through the log datapath, and stay inside
    // the representable support.
    for (int i = 0; i < 256; ++i) {
        int64_t k = rng.sampleIndexFast();
        EXPECT_LE(std::llabs(k), rng.quantizer().maxIndex());
    }
}

TEST(TableIntegrity, LookupComparatorCatchesWildDirectEntries)
{
    FxpLaplaceRng rng(testParams().rngConfig(), 1);
    LaplaceSampleTable *table = rng.mutableTable();
    ASSERT_NE(table, nullptr);

    // Blast the high byte of every direct entry: each lookup now
    // returns an index far past the quantizer's saturation point,
    // which the comparator at the table output port must catch.
    size_t direct_bytes = static_cast<size_t>(table->states()) * 2;
    for (size_t off = 1; off < direct_bytes; off += 2)
        table->flipBit(off, 7);

    int64_t k = rng.sampleIndexFast();
    EXPECT_TRUE(rng.integrityFault());
    EXPECT_GE(rng.integrityDetections(), 1u);
    // The recovery draw ran through the log datapath: still sound.
    EXPECT_LE(std::llabs(k), rng.quantizer().maxIndex());
}

// ---------------------------------------------------------------------
// Budget checkpoints across power loss.
// ---------------------------------------------------------------------

TEST(BudgetCheckpoint, RoundTripsThroughRestore)
{
    FxpMechanismParams p = testParams();
    auto cfg = testConfig(p, RangeControl::Thresholding, 10.0);
    BudgetController a(p, cfg);
    a.request(4.0);
    a.request(6.0);
    double remaining = a.remainingBudget();
    BudgetCheckpoint cp = a.checkpoint();
    EXPECT_TRUE(cp.valid());

    BudgetController b(p, cfg);
    EXPECT_TRUE(b.restoreFromCheckpoint(cp));
    EXPECT_DOUBLE_EQ(b.remainingBudget(), remaining);
    EXPECT_EQ(b.faultStats().checkpoint_restore_failures, 0u);
}

TEST(BudgetCheckpoint, CorruptionRestoresToZeroBudget)
{
    FxpMechanismParams p = testParams();
    auto cfg = testConfig(p, RangeControl::Thresholding, 10.0);
    BudgetController a(p, cfg);
    BudgetResponse first = a.request(4.0);
    BudgetCheckpoint cp = a.checkpoint();
    cp.budget_bits ^= uint64_t{1} << 52; // FRAM bit flip

    BudgetController b(p, cfg);
    EXPECT_FALSE(b.restoreFromCheckpoint(cp));
    EXPECT_EQ(b.faultStats().checkpoint_restore_failures, 1u);
    EXPECT_DOUBLE_EQ(b.remainingBudget(), 0.0);

    // With zero budget and an empty cache the device can only serve
    // the range midpoint -- a constant, not a replay of first.value.
    BudgetResponse r = b.request(9.0);
    EXPECT_TRUE(r.from_cache);
    EXPECT_DOUBLE_EQ(r.value, p.range.mid());
    (void)first;
}

TEST(BudgetCheckpoint, RestoreIsMonotone)
{
    FxpMechanismParams p = testParams();
    auto cfg = testConfig(p, RangeControl::Thresholding, 10.0);
    BudgetController ctrl(p, cfg);
    BudgetCheckpoint stale = ctrl.checkpoint(); // full budget
    ctrl.request(4.0);
    ctrl.request(6.0);
    double spent_remaining = ctrl.remainingBudget();
    ASSERT_LT(spent_remaining, cfg.initial_budget);

    // Replaying the stale (richer) checkpoint must not hand back the
    // budget that was already spent.
    EXPECT_TRUE(ctrl.restoreFromCheckpoint(stale));
    EXPECT_DOUBLE_EQ(ctrl.remainingBudget(), spent_remaining);
}

TEST(BudgetCheckpoint, NonFiniteBudgetCollapsesToZero)
{
    FxpMechanismParams p = testParams();
    auto cfg = testConfig(p, RangeControl::Thresholding, 10.0);
    BudgetController ctrl(p, cfg);

    BudgetCheckpoint cp = ctrl.checkpoint();
    double nan = std::numeric_limits<double>::quiet_NaN();
    std::memcpy(&cp.budget_bits, &nan, sizeof nan);
    cp.crc = cp.computeCrc(); // CRC-valid, semantically poisonous

    EXPECT_TRUE(ctrl.restoreFromCheckpoint(cp));
    EXPECT_DOUBLE_EQ(ctrl.remainingBudget(), 0.0);
}

TEST(BudgetCheckpoint, ZeroRemainingRestoresHaltedNotUninitialized)
{
    // A checkpoint taken at *exactly* zero remaining budget is a
    // legitimate, valid image of a halted device -- it must restore
    // to the halted state (cache replay of the persisted report),
    // never be mistaken for an uninitialized/corrupt page.
    FxpMechanismParams p = testParams();
    auto cfg = testConfig(p, RangeControl::Thresholding, 10.0);
    BudgetController a(p, cfg);
    BudgetResponse last = a.request(4.0);

    BudgetCheckpoint cp = a.checkpoint();
    double zero = 0.0;
    std::memcpy(&cp.budget_bits, &zero, sizeof zero);
    cp.crc = cp.computeCrc();
    ASSERT_TRUE(cp.valid());

    BudgetController b(p, cfg);
    EXPECT_TRUE(b.restoreFromCheckpoint(cp)); // valid, not a failure
    EXPECT_EQ(b.faultStats().checkpoint_restore_failures, 0u);
    EXPECT_DOUBLE_EQ(b.remainingBudget(), 0.0);

    // Halted state with the persisted cache: the device replays the
    // last released report, not the uninitialized-restore midpoint.
    BudgetResponse r = b.request(9.0);
    EXPECT_TRUE(r.from_cache);
    EXPECT_DOUBLE_EQ(r.value, last.value);
    EXPECT_DOUBLE_EQ(r.charged, 0.0);
}

TEST(BudgetCheckpoint, CrcCoversEveryFieldAndMagicLeadsTheImage)
{
    // The CRC seals every byte that precedes it -- magic, flags,
    // budget, cache and tick counter alike. Flip any single bit of
    // that span and the image must not validate; no field is outside
    // the seal.
    FxpMechanismParams p = testParams();
    auto cfg = testConfig(p, RangeControl::Thresholding, 10.0);
    BudgetController ctrl(p, cfg);
    ctrl.request(4.0);
    ctrl.advanceTime(3);
    BudgetCheckpoint cp = ctrl.checkpoint();
    ASSERT_TRUE(cp.valid());

    // Magic sits at offset 0 so a blank page fails before anything
    // else is even interpreted, and every persisted field precedes
    // the CRC so the seal covers all of them (only compiler tail
    // padding sits after the CRC itself).
    EXPECT_EQ(offsetof(BudgetCheckpoint, magic), 0u);
    const size_t sealed = offsetof(BudgetCheckpoint, crc);
    EXPECT_LT(offsetof(BudgetCheckpoint, flags), sealed);
    EXPECT_LT(offsetof(BudgetCheckpoint, budget_bits), sealed);
    EXPECT_LT(offsetof(BudgetCheckpoint, cache_bits), sealed);
    EXPECT_LT(offsetof(BudgetCheckpoint, ticks_since_replenish),
              sealed);
    EXPECT_EQ(sealed,
              offsetof(BudgetCheckpoint, ticks_since_replenish) +
                  sizeof cp.ticks_since_replenish);

    auto *bytes = reinterpret_cast<uint8_t *>(&cp);
    for (size_t byte = 0; byte < sealed; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            bytes[byte] ^= static_cast<uint8_t>(1u << bit);
            EXPECT_FALSE(cp.valid())
                << "bit " << bit << " of byte " << byte
                << " escaped the CRC";
            bytes[byte] ^= static_cast<uint8_t>(1u << bit);
        }
    }
    EXPECT_TRUE(cp.valid()); // all flips undone
}

// ---------------------------------------------------------------------
// Sensor-bus faults, retry and degradation.
// ---------------------------------------------------------------------

struct ScriptedBusHook : FaultHook
{
    std::vector<BusFaultKind> script;
    size_t at = 0;

    BusFaultKind
    busFault() override
    {
        if (at >= script.size())
            return BusFaultKind::None;
        return script[at++];
    }

    uint8_t
    corruptBusByte(uint8_t byte) override
    {
        return byte ^ 0x40;
    }
};

TEST(SensorBusFaults, CleanReadDeliversTheSample)
{
    SensorBus bus(16e6, 400e3);
    BusReadResult r = bus.readSample(13, 0x1234, nullptr);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value, 0x1234);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(SensorBusFaults, CorruptionIsDetectedAndRetried)
{
    SensorBus bus(16e6, 400e3);
    ScriptedBusHook hook;
    hook.script = {BusFaultKind::CorruptByte};
    FaultStats stats;
    BusReadResult r = bus.readSample(13, 0x0ABC, &hook, {}, &stats);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value, 0x0ABC)
        << "the corrupted attempt must not leak through";
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(stats.bus_retries, 1u);
    EXPECT_EQ(stats.bus_degradations, 0u);
}

TEST(SensorBusFaults, PersistentFaultDegradesAfterRetryBudget)
{
    SensorBus bus(16e6, 400e3);
    ScriptedBusHook hook;
    hook.script = {BusFaultKind::Nack, BusFaultKind::Timeout,
                   BusFaultKind::Nack};
    FaultStats stats;
    BusRetryPolicy policy;
    BusReadResult r = bus.readSample(13, 0x0ABC, &hook, policy, &stats);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.attempts, policy.max_attempts);
    EXPECT_EQ(stats.bus_retries, 2u);
    EXPECT_EQ(stats.bus_degradations, 1u);
}

TEST(SensorBusFaults, BackoffDoublesBetweenAttempts)
{
    SensorBus bus(16e6, 400e3);
    ScriptedBusHook hook;
    hook.script = {BusFaultKind::Nack, BusFaultKind::Nack,
                   BusFaultKind::Nack};
    BusRetryPolicy policy;
    policy.backoff_base_cycles = 32;
    BusReadResult r = bus.readSample(13, 0, &hook, policy, nullptr);
    // 3 aborted address phases + backoffs of 32 and 64 cycles.
    EXPECT_EQ(r.cycles, 3 * bus.readCycles(0) + 32 + 64);
}

// ---------------------------------------------------------------------
// FaultInjector determinism.
// ---------------------------------------------------------------------

FaultCampaignConfig
noisyCampaign(uint64_t seed)
{
    FaultCampaignConfig cfg;
    cfg.seed = seed;
    cfg.urng_flip_rate = 0.05;
    cfg.urng_stuck_rate = 0.001;
    cfg.table_seu_rate = 0.05;
    cfg.bus_nack_rate = 0.1;
    cfg.bus_timeout_rate = 0.05;
    cfg.bus_corrupt_rate = 0.1;
    cfg.power_loss_rate = 0.02;
    cfg.checkpoint_corrupt_rate = 0.5;
    cfg.timer_glitch_rate = 0.05;
    return cfg;
}

TEST(FaultInjector, EqualSeedsReplayEqualCampaigns)
{
    FaultInjector a(noisyCampaign(42));
    FaultInjector b(noisyCampaign(42));
    Tausworthe words(3);

    for (int i = 0; i < 2000; ++i) {
        uint32_t w = words.next32();
        EXPECT_EQ(a.urngWord(w), b.urngWord(w));
        EXPECT_EQ(a.busFault(), b.busFault());
        EXPECT_EQ(a.replenishGlitch(), b.replenishGlitch());
        a.tick();
        b.tick();
        EXPECT_EQ(a.powerLossPending(), b.powerLossPending());
        size_t byte_a = 0, byte_b = 0;
        int bit_a = 0, bit_b = 0;
        EXPECT_EQ(a.tableSeuPending(byte_a, bit_a, 4096),
                  b.tableSeuPending(byte_b, bit_b, 4096));
        EXPECT_EQ(byte_a, byte_b);
        EXPECT_EQ(bit_a, bit_b);
    }
    EXPECT_EQ(a.stats().total(), b.stats().total());
    EXPECT_GT(a.stats().total(), 0u);
}

TEST(FaultInjector, RejectsBadRates)
{
    FaultCampaignConfig cfg;
    cfg.urng_flip_rate = 1.5;
    EXPECT_THROW(FaultInjector{cfg}, FatalError);

    FaultCampaignConfig bus;
    bus.bus_nack_rate = 0.5;
    bus.bus_timeout_rate = 0.4;
    bus.bus_corrupt_rate = 0.2;
    EXPECT_THROW(FaultInjector{bus}, FatalError);
}

TEST(FaultInjector, StuckFaultLatchesTheOutputWord)
{
    FaultCampaignConfig cfg;
    cfg.seed = 5;
    cfg.urng_stuck_rate = 1.0;
    FaultInjector inj(cfg);
    uint32_t first = inj.urngWord(0x11111111);
    EXPECT_EQ(inj.urngWord(0x22222222), first);
    EXPECT_EQ(inj.urngWord(0x33333333), first);
    EXPECT_EQ(inj.stats().urng_stuck_events, 1u);
}

// ---------------------------------------------------------------------
// Whole-support loss enumeration: every configured segment window
// keeps its loss below the outermost n * eps level.
// ---------------------------------------------------------------------

TEST(FaultCampaign, EverySegmentWindowStaysWithinTheLossBound)
{
    FxpMechanismParams p = testParams();
    double bound = 3.0 * p.epsilon + 1e-9;
    for (RangeControl kind :
         {RangeControl::Thresholding, RangeControl::Resampling}) {
        ThresholdCalculator calc(p);
        auto cfg = testConfig(p, kind);
        for (const BudgetSegment &seg : cfg.segments) {
            auto model = makeModel(calc, kind, seg.threshold_index);
            auto loss = perOutputLoss(*model);
            for (size_t j = 0; j < loss.size(); ++j) {
                if (std::isinf(loss[j])) {
                    // Interior PMF gap: unreachable for every input,
                    // so a healthy device never emits it. Verify it
                    // really is unreachable rather than one-sided.
                    int64_t abs_j = model->outputLo() +
                                    static_cast<int64_t>(j);
                    for (int64_t i = 0; i <= model->span(); ++i)
                        EXPECT_EQ(model->prob(abs_j, i), 0.0);
                    continue;
                }
                EXPECT_LE(loss[j], bound);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The chaos campaign: 10k transactions against a hardened budget
// controller with every fault site firing.
// ---------------------------------------------------------------------

struct CampaignOutcome
{
    uint64_t transactions = 0;
    uint64_t fresh_reports = 0;
    uint64_t violations = 0;
    uint64_t boots = 1;
    double total_charged = 0.0;
    FaultStats device_stats;
    FaultInjectionStats injected;
};

/**
 * Run one seeded campaign against a BudgetController behind a faulty
 * sensor bus, with power losses restoring from a (possibly corrupted)
 * CRC checkpoint. Violations counted: a fresh report outside the
 * outermost window or with enumerated loss above the bound, remaining
 * budget growing across a request, a panic escaping the controller,
 * or total charged loss exceeding the replenishment-adjusted budget.
 */
CampaignOutcome
runControllerCampaign(RangeControl kind, uint64_t seed, bool hardened,
                      uint64_t transactions)
{
    // Campaigns warn (or panic, unhardened) on every detection;
    // thousands of transactions of that would drown the test output.
    setLoggingEnabled(false);
    FxpMechanismParams p = testParams(seed);
    p.rng_integrity_checks = hardened;
    // Budget tight enough that most replenishment epochs exhaust it:
    // a reboot that replays spent budget then visibly overspends.
    auto cfg = testConfig(p, kind, 20.0);
    cfg.fail_secure = hardened;
    cfg.table_scrub_period = hardened ? 256 : 0;
    cfg.replenish_period = 1000;

    ThresholdCalculator calc(p);
    int64_t outer = cfg.segments.back().threshold_index;
    auto outer_model = makeModel(calc, kind, outer);
    auto loss = perOutputLoss(*outer_model);
    double bound = 3.0 * p.epsilon + 1e-9;
    double delta = p.resolvedDelta();
    int64_t out_lo = outer_model->outputLo();
    int64_t out_hi = outer_model->outputHi();

    FaultCampaignConfig fc;
    fc.seed = seed * 7919 + 1;
    fc.urng_flip_rate = 0.01;
    fc.urng_stuck_rate = 0.0002;
    fc.table_seu_rate = 0.002;
    fc.bus_nack_rate = 0.02;
    fc.bus_timeout_rate = 0.01;
    fc.bus_corrupt_rate = 0.02;
    fc.power_loss_rate = 0.001;
    fc.checkpoint_corrupt_rate = 0.25;
    FaultInjector injector(fc);

    SensorBus bus(16e6, 400e3);
    RngHealthMonitor health;
    CampaignOutcome outcome;
    outcome.transactions = transactions;

    auto boot = [&](uint64_t n) {
        FxpMechanismParams bp = p;
        bp.seed = seed + 1000 * n; // reseeded from a TRNG at boot
        auto ctrl = std::make_unique<BudgetController>(bp, cfg);
        health.reset();
        ctrl->rng().urng().setFaultHook(&injector);
        if (hardened) {
            ctrl->rng().urng().attachHealthMonitor(&health);
            ctrl->attachHealthMonitor(&health);
        }
        return ctrl;
    };

    auto ctrl = boot(0);
    BudgetCheckpoint cp = ctrl->checkpoint();
    double cp_remaining = ctrl->remainingBudget();
    uint64_t refills_possible = 1;
    uint64_t ticks_accumulated = 0;

    for (uint64_t t = 0; t < transactions; ++t) {
        injector.tick();

        if (injector.powerLossPending()) {
            outcome.device_stats += ctrl->faultStats();
            ++outcome.boots;
            ctrl = boot(outcome.boots);
            if (hardened) {
                injector.corruptCheckpointMaybe(&cp, sizeof cp);
                bool restored = ctrl->restoreFromCheckpoint(cp);
                if (restored &&
                    ctrl->remainingBudget() > cp_remaining + 1e-9) {
                    ++outcome.violations;
                }
            }
            // Unhardened silicon restores nothing: the budget lives
            // in volatile registers and reboots at its full initial
            // value -- the power-loss replay the checkpoint exists to
            // prevent. No refill is legal here, so the overspend
            // shows up against spend_cap below.
        }

        LaplaceSampleTable *table = ctrl->rng().mutableTable();
        size_t seu_byte = 0;
        int seu_bit = 0;
        if (injector.tableSeuPending(
                seu_byte, seu_bit,
                table != nullptr ? table->faultableBytes() : 0)) {
            table->flipBit(seu_byte, seu_bit);
        }

        double x = static_cast<double>(t % 101) * 0.1;
        int64_t wire = std::llround(x / 10.0 * 8191.0);
        FaultStats bus_stats;
        BusReadResult read =
            bus.readSample(13, wire, &injector, {}, &bus_stats);
        outcome.device_stats += bus_stats;

        double prev_remaining = ctrl->remainingBudget();
        bool pre_latched = ctrl->faultLatched();
        BudgetResponse resp;
        bool panicked = false;
        try {
            if (read.ok) {
                double x_used = std::clamp(
                    static_cast<double>(read.value) / 8191.0 * 10.0,
                    0.0, 10.0);
                resp = ctrl->request(x_used);
            } else {
                resp = ctrl->serveCached();
            }
        } catch (const PanicError &) {
            panicked = true;
        }
        if (panicked) {
            ++outcome.violations;
            continue;
        }

        if (ctrl->remainingBudget() > prev_remaining + 1e-9)
            ++outcome.violations; // budget grew across a request
        if (pre_latched && !resp.from_cache)
            ++outcome.violations; // fresh draw after fail-secure latch

        if (!resp.from_cache) {
            ++outcome.fresh_reports;
            outcome.total_charged += resp.charged;
            int64_t j = std::llround(resp.value / delta);
            if (j < out_lo || j > out_hi) {
                ++outcome.violations; // escaped the outermost window
            } else {
                double l = loss[static_cast<size_t>(j - out_lo)];
                if (!(l <= bound))
                    ++outcome.violations; // loss above n * eps
            }
        }

        // Device time advances; replenishment is legal every
        // replenish_period ticks.
        ctrl->advanceTime(10);
        ticks_accumulated += 10;
        if (ticks_accumulated >= cfg.replenish_period) {
            ticks_accumulated -= cfg.replenish_period;
            ++refills_possible;
        }

        if (hardened) {
            cp = ctrl->checkpoint();
            cp_remaining = ctrl->remainingBudget();
        }
    }

    // Accounting invariant: the total charged loss can never exceed
    // one full budget per legal replenishment opportunity. The
    // hardened device stays under this cap because checkpoint restore
    // is monotone; the unhardened device replays its budget on every
    // reboot and overspends it.
    double spend_cap =
        static_cast<double>(refills_possible) * cfg.initial_budget;
    if (outcome.total_charged > spend_cap + 1e-6)
        ++outcome.violations;

    outcome.device_stats += ctrl->faultStats();
    outcome.injected = injector.stats();
    setLoggingEnabled(true);
    return outcome;
}

TEST(FaultCampaign, HardenedControllerSurvives10kTransactions)
{
    for (RangeControl kind :
         {RangeControl::Thresholding, RangeControl::Resampling}) {
        for (uint64_t seed : {1u, 2u, 3u}) {
            CampaignOutcome o =
                runControllerCampaign(kind, seed, true, 10000);
            EXPECT_EQ(o.violations, 0u)
                << "kind=" << static_cast<int>(kind)
                << " seed=" << seed;
            EXPECT_GT(o.injected.total(), 100u)
                << "campaign must actually inject faults";
            EXPECT_GT(o.fresh_reports, 0u);
            inform("campaign kind=%d seed=%llu: %llu faults injected, "
                   "%llu detected, %llu fresh reports, %llu boots",
                   static_cast<int>(kind),
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(o.injected.total()),
                   static_cast<unsigned long long>(
                       o.device_stats.detections()),
                   static_cast<unsigned long long>(o.fresh_reports),
                   static_cast<unsigned long long>(o.boots));
        }
    }
}

TEST(FaultCampaign, HardenedCampaignActuallyDetectsFaults)
{
    CampaignOutcome o = runControllerCampaign(
        RangeControl::Resampling, 1, true, 10000);
    EXPECT_GT(o.device_stats.detections(), 0u)
        << "a campaign that injects faults but detects none is not "
           "exercising the hardening";
}

TEST(FaultCampaign, UnhardenedCampaignViolatesInvariants)
{
    // Same sites, same rates, hardening off: at least one invariant
    // must demonstrably break (this is the proof that the hardened
    // run's zero-violation result is not vacuous).
    uint64_t violations = 0;
    for (uint64_t seed : {1u, 2u, 3u}) {
        CampaignOutcome o = runControllerCampaign(
            RangeControl::Resampling, seed, false, 10000);
        violations += o.violations;
    }
    EXPECT_GT(violations, 0u);
}

TEST(FaultCampaign, UnhardenedTableCorruptionEscapesTheWindow)
{
    // Deterministic teeth for the table-SEU site alone: corrupt the
    // rank array wholesale with integrity checks off and watch an
    // output escape the analysed support.
    FxpMechanismParams p = testParams();
    p.rng_integrity_checks = false;
    auto cfg = testConfig(p, RangeControl::Resampling);
    cfg.fail_secure = false;
    cfg.table_scrub_period = 0;
    BudgetController ctrl(p, cfg);

    LaplaceSampleTable *table = ctrl.rng().mutableTable();
    ASSERT_NE(table, nullptr);
    size_t direct_bytes = static_cast<size_t>(table->states()) * 2;
    size_t rank_bytes = direct_bytes;
    for (size_t off = 1; off < rank_bytes; off += 2)
        table->flipBit(direct_bytes + off, 7);

    int64_t outer = cfg.segments.back().threshold_index;
    double delta = p.resolvedDelta();
    uint64_t violations = 0;
    setLoggingEnabled(false); // every escaped output panics loudly
    for (int t = 0; t < 64; ++t) {
        try {
            BudgetResponse r = ctrl.request(5.0);
            if (r.from_cache)
                continue;
            int64_t j = std::llround(r.value / delta);
            if (j < -outer || j > 32 + outer)
                ++violations;
        } catch (const PanicError &) {
            ++violations; // output beyond the outermost segment
        }
    }
    setLoggingEnabled(true);
    EXPECT_GT(violations, 0u);
}

// ---------------------------------------------------------------------
// DpBox-level campaigns: timer glitches and stuck URNGs against the
// cycle-level device, audited by the trace invariant checker.
// ---------------------------------------------------------------------

DpBoxConfig
boxConfig(bool hardened, uint64_t seed)
{
    DpBoxConfig cfg;
    cfg.threshold_index = 64;
    cfg.budget_enabled = true;
    cfg.segments = {{0, 0.35}, {32, 0.7}, {64, 1.05}};
    cfg.harden_faults = hardened;
    cfg.seed = seed;
    return cfg;
}

void
bootBox(DpBoxTracer &tracer, DpBox &box, double budget,
        uint64_t period)
{
    tracer.step(DpBoxCommand::SetEpsilon,
                std::llround(budget * 256.0));
    tracer.step(DpBoxCommand::SetRangeUpper,
                static_cast<int64_t>(period));
    tracer.step(DpBoxCommand::StartNoising);
    tracer.step(DpBoxCommand::SetEpsilon, 1); // n_m = 1, eps = 0.5
    tracer.step(DpBoxCommand::SetRangeLower, box.toRaw(0.0));
    tracer.step(DpBoxCommand::SetRangeUpper, box.toRaw(10.0));
}

uint64_t
noiseOnce(DpBoxTracer &tracer, DpBox &box, double x)
{
    tracer.step(DpBoxCommand::SetSensorValue, box.toRaw(x));
    tracer.step(DpBoxCommand::StartNoising);
    uint64_t guard = 0;
    while (!box.ready()) {
        tracer.step(DpBoxCommand::DoNothing);
        ULPDP_ASSERT(++guard < (uint64_t{1} << 20));
    }
    return guard;
}

TEST(DpBoxFaults, HardenedBoxRejectsTimerGlitches)
{
    DpBox box(boxConfig(true, 9));
    DpBoxTracer tracer(box);
    FaultCampaignConfig fc;
    fc.seed = 9;
    fc.timer_glitch_rate = 0.02;
    FaultInjector injector(fc);
    box.attachFaultHook(&injector);

    bootBox(tracer, box, 20.0, 100000);
    for (int t = 0; t < 2000; ++t)
        noiseOnce(tracer, box, static_cast<double>(t % 11));

    EXPECT_GT(injector.stats().timer_glitches, 0u);
    EXPECT_GT(box.faultStats().timer_glitches_rejected, 0u);
    TraceCheckResult check = tracer.check();
    EXPECT_TRUE(check.ok) << check.violation;
}

TEST(DpBoxFaults, UnhardenedTimerGlitchReplenishesEarly)
{
    DpBox box(boxConfig(false, 9));
    DpBoxTracer tracer(box);
    FaultCampaignConfig fc;
    fc.seed = 9;
    fc.timer_glitch_rate = 0.02;
    FaultInjector injector(fc);
    box.attachFaultHook(&injector);

    bootBox(tracer, box, 20.0, 100000);
    for (int t = 0; t < 2000; ++t)
        noiseOnce(tracer, box, static_cast<double>(t % 11));

    TraceCheckResult check = tracer.check();
    EXPECT_FALSE(check.ok)
        << "the glitched timer must refill spent budget early, which "
           "the budget-soundness invariant catches";
}

struct StuckHighHook : FaultHook
{
    uint32_t
    urngWord(uint32_t) override
    {
        return 0xFFFFFFFFu;
    }
};

TEST(DpBoxFaults, UnhardenedStuckUrngRevealsTrueReadings)
{
    // A URNG stuck all-ones makes u ~= 1, so ln(u) ~= 0 and the
    // Laplace noise quantizes to exactly zero: the device releases
    // the true sensor readings. This is the catastrophic failure the
    // health tests exist for.
    DpBox box(boxConfig(false, 21));
    DpBoxTracer tracer(box);
    StuckHighHook hook;
    box.attachFaultHook(&hook);

    bootBox(tracer, box, 1000.0, 0);
    for (double x : {1.0, 3.7, 9.2, 5.5}) {
        noiseOnce(tracer, box, x);
        EXPECT_EQ(box.output(), box.toRaw(x))
            << "stuck URNG turned the mechanism into the identity";
    }
}

TEST(DpBoxFaults, HardenedStuckUrngLatchesWithinCutoff)
{
    DpBox box(boxConfig(true, 21));
    DpBoxTracer tracer(box);
    StuckHighHook hook;
    box.attachFaultHook(&hook);

    bootBox(tracer, box, 1000.0, 0);
    // The repetition-count test needs cutoff (3) identical words; the
    // first transaction's sample was drawn from only two, so at most
    // one suspect report escapes before the latch -- the detection
    // latency floor of any continuous health test.
    noiseOnce(tracer, box, 2.0);
    int64_t frozen = box.output();
    for (double x : {7.0, 9.9, 0.3}) {
        noiseOnce(tracer, box, x);
        EXPECT_EQ(box.output(), frozen);
    }
    EXPECT_TRUE(box.faultLatched());
    EXPECT_GE(box.faultStats().urng_health_alarms, 1u);
    EXPECT_GE(box.faultStats().fail_secure_reports, 3u);
    TraceCheckResult check = tracer.check();
    EXPECT_TRUE(check.ok) << check.violation;
}

TEST(DpBoxFaults, MixedCampaignKeepsTraceInvariants)
{
    // URNG flips + occasional stuck faults + timer glitches together
    // against the hardened box: whatever fires, the trace stays
    // invariant-clean (containment, budget soundness, fail-secure
    // discipline).
    for (uint64_t seed : {4u, 5u, 6u}) {
        DpBox box(boxConfig(true, seed));
        DpBoxTracer tracer(box);
        FaultCampaignConfig fc;
        fc.seed = seed;
        fc.urng_flip_rate = 0.01;
        fc.urng_stuck_rate = 0.0005;
        fc.timer_glitch_rate = 0.005;
        FaultInjector injector(fc);
        box.attachFaultHook(&injector);

        bootBox(tracer, box, 50.0, 20000);
        for (int t = 0; t < 3000; ++t)
            noiseOnce(tracer, box, static_cast<double>(t % 11));

        TraceCheckResult check = tracer.check();
        EXPECT_TRUE(check.ok)
            << "seed " << seed << ": " << check.violation;
    }
}

} // anonymous namespace
} // namespace ulpdp
