/**
 * @file
 * Tests for the generic fixed-point inversion RNG: cross-validation
 * against the Laplace path, probit accuracy, staircase correctness,
 * and the Section III-A4 generalization -- Gaussian and staircase
 * noise suffer the same infinite-loss failure and admit the same
 * window fixes.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "core/output_model.h"
#include "core/privacy_loss.h"
#include "rng/fxp_inversion.h"
#include "rng/fxp_laplace_pmf.h"

namespace ulpdp {
namespace {

FxpInversionConfig
invConfig(int bu = 12)
{
    FxpInversionConfig cfg;
    cfg.uniform_bits = bu;
    cfg.output_bits = 12;
    cfg.delta = 10.0 / 32.0;
    return cfg;
}

TEST(MagnitudeIcdf, LaplaceMatchesClosedForm)
{
    LaplaceMagnitude icdf(20.0);
    EXPECT_DOUBLE_EQ(icdf.magnitude(1.0), 0.0);
    EXPECT_NEAR(icdf.magnitude(std::exp(-1.0)), 20.0, 1e-12);
    EXPECT_THROW(icdf.magnitude(0.0), PanicError);
}

TEST(MagnitudeIcdf, ProbitAccuracy)
{
    // Spot-check against known quantiles.
    EXPECT_NEAR(GaussianMagnitude::probit(0.5), 0.0, 1e-9);
    EXPECT_NEAR(GaussianMagnitude::probit(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(GaussianMagnitude::probit(0.841344746), 1.0, 1e-6);
    EXPECT_NEAR(GaussianMagnitude::probit(0.001), -3.090232, 1e-5);
    EXPECT_NEAR(GaussianMagnitude::probit(1e-9), -5.997807, 1e-4);
}

TEST(MagnitudeIcdf, GaussianTailInversion)
{
    GaussianMagnitude icdf(2.0);
    // Pr[|N| >= x] = u  ->  x = sigma * probit(1 - u/2).
    EXPECT_NEAR(icdf.magnitude(1.0), 0.0, 1e-9);
    // u = 0.3173... corresponds to |N| >= sigma.
    EXPECT_NEAR(icdf.magnitude(0.31731050786), 2.0, 1e-6);
}

TEST(MagnitudeIcdf, StaircaseBasics)
{
    double eps = 1.0;
    double gamma = StaircaseMagnitude::optimalGamma(eps);
    EXPECT_GT(gamma, 0.0);
    EXPECT_LT(gamma, 1.0);
    StaircaseMagnitude icdf(10.0, eps, gamma);
    EXPECT_NEAR(icdf.magnitude(1.0), 0.0, 1e-9);
    // Period boundaries: Pr[|N| >= k d] = e^{-k eps}.
    for (int k = 1; k <= 5; ++k) {
        EXPECT_NEAR(icdf.magnitude(std::exp(-k * eps)), 10.0 * k,
                    1e-6)
            << "k=" << k;
    }
    // Monotone decreasing magnitude in u.
    double prev = icdf.magnitude(1e-6);
    for (double u = 1e-5; u <= 1.0; u *= 2.5) {
        double m = icdf.magnitude(std::min(u, 1.0));
        EXPECT_LE(m, prev + 1e-9);
        prev = m;
    }
}

TEST(MagnitudeIcdf, RejectsBadParams)
{
    EXPECT_THROW(LaplaceMagnitude(0.0), FatalError);
    EXPECT_THROW(GaussianMagnitude(-1.0), FatalError);
    EXPECT_THROW(StaircaseMagnitude(10.0, 1.0, 0.0), FatalError);
    EXPECT_THROW(StaircaseMagnitude(10.0, 1.0, 1.0), FatalError);
    EXPECT_THROW(StaircaseMagnitude(0.0, 1.0, 0.5), FatalError);
}

TEST(FxpInversion, LaplacePathMatchesDedicatedImplementation)
{
    // The generic pipeline with a Laplace ICDF must agree bin-for-bin
    // with FxpLaplaceRng's enumerated PMF.
    FxpInversionConfig cfg = invConfig(12);
    auto icdf = std::make_shared<LaplaceMagnitude>(20.0);
    EnumeratedNoisePmf generic(cfg, icdf);

    FxpLaplaceConfig lap_cfg;
    lap_cfg.uniform_bits = 12;
    lap_cfg.output_bits = 12;
    lap_cfg.delta = cfg.delta;
    lap_cfg.lambda = 20.0;
    FxpLaplacePmf dedicated(lap_cfg, FxpLaplacePmf::Mode::Enumerated);

    ASSERT_EQ(generic.maxIndex(), dedicated.maxIndex());
    for (int64_t k = 0; k <= generic.maxIndex(); ++k) {
        EXPECT_EQ(generic.magnitudeCount(k),
                  dedicated.magnitudeCount(k))
            << "k=" << k;
    }
}

TEST(FxpInversion, PipelineRejectsBadInputs)
{
    FxpInversionRng rng(invConfig(),
                        std::make_shared<GaussianMagnitude>(10.0));
    EXPECT_THROW(rng.pipeline(0, 1), PanicError);
    EXPECT_THROW(rng.pipeline(1, 2), PanicError);
}

TEST(FxpInversion, GaussianMomentsMatch)
{
    double sigma = 10.0;
    FxpInversionConfig cfg = invConfig(17);
    FxpInversionRng rng(cfg, std::make_shared<GaussianMagnitude>(
                                 sigma), 5);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.sample());
    EXPECT_NEAR(stats.mean(), 0.0, 0.2);
    EXPECT_NEAR(stats.variance(), sigma * sigma,
                0.05 * sigma * sigma);
}

TEST(FxpInversion, StaircaseMomentsMatch)
{
    // E|N| for the staircase with optimal gamma is finite; check the
    // sampler against a numeric integral of the ICDF (E|N| =
    // integral_0^1 magnitude(u) du).
    double eps = 1.0;
    double gamma = StaircaseMagnitude::optimalGamma(eps);
    auto icdf = std::make_shared<StaircaseMagnitude>(10.0, eps,
                                                     gamma);
    double expect = 0.0;
    const int steps = 200000;
    for (int i = 0; i < steps; ++i) {
        double u = (i + 0.5) / steps;
        expect += icdf->magnitude(u);
    }
    expect /= steps;

    FxpInversionConfig cfg = invConfig(17);
    cfg.delta = 0.1;
    cfg.output_bits = 14;
    FxpInversionRng rng(cfg, icdf, 7);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(std::abs(rng.sample()));
    EXPECT_NEAR(stats.mean(), expect, 0.03 * expect);
}

TEST(FxpInversion, EnumeratedPmfIsProper)
{
    for (int bu : {10, 14}) {
        EnumeratedNoisePmf pmf(invConfig(bu),
                               std::make_shared<GaussianMagnitude>(
                                   15.0));
        EXPECT_NEAR(pmf.totalMass(), 1.0, 1e-12) << "bu=" << bu;
        EXPECT_GT(pmf.maxIndex(), 0);
        // Tail telescopes.
        double sum = 0.0;
        for (int64_t k = 5; k <= pmf.maxIndex(); ++k)
            sum += pmf.pmf(k);
        EXPECT_NEAR(pmf.tailMass(5), sum, 1e-12);
        EXPECT_NEAR(pmf.upperMass(0) + pmf.tailMass(1), 1.0, 1e-12);
    }
}

TEST(FxpInversion, EnumeratedRejectsHugeBu)
{
    FxpInversionConfig cfg = invConfig(25);
    EXPECT_THROW(EnumeratedNoisePmf(cfg,
                                    std::make_shared<LaplaceMagnitude>(
                                        20.0)),
                 FatalError);
}

TEST(SectionIIIA4, GaussianNaiveIsNotLdpEither)
{
    // The paper's generalization: swap Laplace for Gaussian and the
    // naive mechanism still has infinite loss...
    auto pmf = std::make_shared<EnumeratedNoisePmf>(
        invConfig(14), std::make_shared<GaussianMagnitude>(15.0));
    NaiveOutputModel naive(pmf, 32);
    EXPECT_FALSE(PrivacyLossAnalyzer::analyze(naive).bounded);
}

TEST(SectionIIIA4, GaussianThresholdingRestoresBoundedLoss)
{
    // ...and the very same window control bounds it again. (Gaussian
    // tails decay faster than e^{-eps k}, so the bounded loss is a
    // function of the window; we just require finiteness and a sane
    // magnitude here.)
    auto pmf = std::make_shared<EnumeratedNoisePmf>(
        invConfig(14), std::make_shared<GaussianMagnitude>(15.0));
    ThresholdingOutputModel model(pmf, 32, 40);
    LossReport rep = PrivacyLossAnalyzer::analyze(model);
    EXPECT_TRUE(rep.bounded);
    EXPECT_LT(rep.worst_case_loss, 10.0);
}

TEST(SectionIIIA4, StaircaseNaiveIsNotLdpEither)
{
    double eps = 0.5;
    auto icdf = std::make_shared<StaircaseMagnitude>(
        10.0, eps, StaircaseMagnitude::optimalGamma(eps));
    FxpInversionConfig cfg = invConfig(14);
    auto pmf = std::make_shared<EnumeratedNoisePmf>(cfg, icdf);
    NaiveOutputModel naive(pmf, 32);
    EXPECT_FALSE(PrivacyLossAnalyzer::analyze(naive).bounded);
}

TEST(SectionIIIA4, StaircaseResamplingBoundsLoss)
{
    double eps = 0.5;
    auto icdf = std::make_shared<StaircaseMagnitude>(
        10.0, eps, StaircaseMagnitude::optimalGamma(eps));
    FxpInversionConfig cfg = invConfig(14);
    auto pmf = std::make_shared<EnumeratedNoisePmf>(cfg, icdf);
    // A modest window; for staircase the per-step ratio is exactly
    // e^{-eps} per period, so small windows stay close to eps.
    ResamplingOutputModel model(pmf, 32, 64);
    LossReport rep = PrivacyLossAnalyzer::analyze(model);
    EXPECT_TRUE(rep.bounded);
    EXPECT_LT(rep.worst_case_loss, 4.0 * eps);
}

} // anonymous namespace
} // namespace ulpdp
