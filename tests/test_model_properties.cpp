/**
 * @file
 * Parameterized property tests over all output models: for every
 * (range-control kind, window, RNG configuration) combination, the
 * conditional distributions must be proper, sign/shift symmetric,
 * and consistent with the privacy analysis. These are the invariants
 * the whole proof machinery rests on, so they get a dense sweep.
 */

#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "core/constant_time.h"
#include "core/output_model.h"
#include "core/privacy_loss.h"
#include "rng/fxp_laplace_pmf.h"

namespace ulpdp {
namespace {

enum class Kind
{
    Naive,
    Resampling,
    Thresholding,
    ConstantTime,
};

using Param = std::tuple<Kind, int, double, int64_t>;
// (kind, uniform_bits, epsilon, threshold)

class ModelProperties : public ::testing::TestWithParam<Param>
{
  protected:
    void
    SetUp() override
    {
        auto [kind, bu, eps, threshold] = GetParam();
        kind_ = kind;
        span_ = 32;
        FxpLaplaceConfig cfg;
        cfg.uniform_bits = bu;
        cfg.output_bits = 12;
        cfg.delta = 10.0 / 32.0;
        cfg.lambda = 10.0 / eps;
        pmf_ = std::make_shared<FxpLaplacePmf>(cfg);

        switch (kind) {
          case Kind::Naive:
            model_ = std::make_unique<NaiveOutputModel>(pmf_, span_);
            break;
          case Kind::Resampling:
            model_ = std::make_unique<ResamplingOutputModel>(
                pmf_, span_, threshold);
            break;
          case Kind::Thresholding:
            model_ = std::make_unique<ThresholdingOutputModel>(
                pmf_, span_, threshold);
            break;
          case Kind::ConstantTime:
            model_ = std::make_unique<ConstantTimeOutputModel>(
                pmf_, span_, threshold, 3);
            break;
        }
    }

    Kind kind_ = Kind::Naive;
    int64_t span_ = 0;
    std::shared_ptr<const FxpLaplacePmf> pmf_;
    std::unique_ptr<DiscreteOutputModel> model_;
};

TEST_P(ModelProperties, RowsAreDistributions)
{
    for (int64_t i = 0; i <= span_; i += 8) {
        double sum = 0.0;
        for (int64_t j = model_->outputLo(); j <= model_->outputHi();
             ++j) {
            double p = model_->prob(j, i);
            ASSERT_GE(p, 0.0) << "i=" << i << " j=" << j;
            ASSERT_LE(p, 1.0 + 1e-12);
            sum += p;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9) << "i=" << i;
    }
}

TEST_P(ModelProperties, MirrorSymmetry)
{
    // Reflecting input and output through the range midpoint leaves
    // the distribution unchanged (the noise is sign-symmetric and
    // the window is placed symmetrically).
    for (int64_t i : {int64_t{0}, int64_t{5}, int64_t{16}}) {
        int64_t i_ref = span_ - i;
        for (int64_t j = model_->outputLo(); j <= model_->outputHi();
             j += 3) {
            int64_t j_ref = span_ - j;
            ASSERT_NEAR(model_->prob(j, i),
                        model_->prob(j_ref, i_ref), 1e-12)
                << "i=" << i << " j=" << j;
        }
    }
}

TEST_P(ModelProperties, CentralOutputsReachableByAll)
{
    // Every input can produce every output inside [m, M] (the noise
    // PMF has no gaps that close to zero for these configs).
    for (int64_t j = 0; j <= span_; j += 4) {
        for (int64_t i = 0; i <= span_; i += 4) {
            EXPECT_GT(model_->prob(j, i), 0.0)
                << "i=" << i << " j=" << j;
        }
    }
}

TEST_P(ModelProperties, LossAtMidpointIsSmall)
{
    // The range midpoint is maximally ambiguous: its loss must be
    // within the intrinsic RNG loss (< 2 eps for all these sweeps).
    auto [kind, bu, eps, threshold] = GetParam();
    (void)bu;
    (void)threshold;
    double loss = PrivacyLossAnalyzer::lossAtOutput(*model_,
                                                    span_ / 2);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_LT(loss, 2.0 * eps);
}

TEST_P(ModelProperties, WindowedKindsHaveNoOutsideMass)
{
    if (kind_ == Kind::Naive)
        GTEST_SKIP() << "naive model has unbounded window";
    EXPECT_DOUBLE_EQ(model_->prob(model_->outputLo() - 1, 0), 0.0);
    EXPECT_DOUBLE_EQ(model_->prob(model_->outputHi() + 1, span_),
                     0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelProperties,
    ::testing::Values(
        // kind, Bu, eps, threshold
        Param{Kind::Naive, 14, 0.5, 0},
        Param{Kind::Naive, 17, 1.0, 0},
        Param{Kind::Resampling, 14, 0.5, 60},
        Param{Kind::Resampling, 14, 0.5, 250},
        Param{Kind::Resampling, 17, 1.0, 120},
        Param{Kind::Thresholding, 14, 0.5, 60},
        Param{Kind::Thresholding, 14, 0.5, 250},
        Param{Kind::Thresholding, 17, 1.0, 120},
        Param{Kind::ConstantTime, 14, 0.5, 60},
        Param{Kind::ConstantTime, 17, 1.0, 120}));

} // anonymous namespace
} // namespace ulpdp
