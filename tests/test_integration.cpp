/**
 * @file
 * Integration tests spanning modules: end-to-end sensor pipelines,
 * device-versus-analysis consistency, and the paper's headline
 * comparisons exercised through the public API.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/ideal_laplace_mechanism.h"
#include "core/privacy_loss.h"
#include "core/resampling_mechanism.h"
#include "core/threshold_calc.h"
#include "core/thresholding_mechanism.h"
#include "data/generators.h"
#include "dpbox/driver.h"
#include "query/utility.h"

namespace ulpdp {
namespace {

TEST(Integration, HeartRateMeanSurvivesNoising)
{
    // The motivating use case: aggregate blood pressure statistics
    // from noised per-patient reports.
    Dataset heart = makeStatlogHeart();
    FxpMechanismParams p;
    p.range = heart.range;
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = heart.range.length() / 32.0;

    ThresholdCalculator calc(p);
    int64_t t = calc.exactIndex(RangeControl::Resampling, 2.0);
    ASSERT_GE(t, 0);
    ResamplingMechanism mech(p, t);

    UtilityEvaluator eval(100);
    UtilityResult r = eval.evaluate(heart.values, mech, MeanQuery());
    // MAE of the mean should be a small fraction of the range.
    EXPECT_LT(r.mae, 0.15 * heart.range.length());
    EXPECT_GT(r.mae, 0.0);
}

TEST(Integration, DeviceMatchesMechanismDistribution)
{
    // The DP-Box device model and the ThresholdingMechanism analysis
    // class implement the same datapath; their outputs must agree in
    // distribution (moments within Monte Carlo tolerance).
    SensorRange range(0.0, 10.0);
    double eps = 0.5;

    DpBoxConfig cfg;
    cfg.frac_bits = 5; // LSB 1/32: Delta = 0.3125 on this range
    cfg.word_bits = 20;
    cfg.uniform_bits = 17;
    cfg.threshold_index = 418;
    cfg.thresholding = true;
    DpBoxDriver drv(cfg);
    drv.initialize(1e9, 0);
    drv.configure(eps, range);

    FxpMechanismParams p;
    p.range = range;
    p.epsilon = eps;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 1.0 / 32.0;
    // Device threshold is in LSBs of 2^-5; the mechanism's Delta is
    // also 1/32, so the same index means the same window.
    ThresholdingMechanism mech(p, 418);

    const int n = 60000;
    double dev_sum = 0.0;
    double mech_sum = 0.0;
    double dev_sq = 0.0;
    double mech_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double a = drv.noise(5.0).value;
        double b = mech.noise(5.0).value;
        dev_sum += a;
        mech_sum += b;
        dev_sq += a * a;
        mech_sq += b * b;
    }
    double dev_mean = dev_sum / n;
    double mech_mean = mech_sum / n;
    double dev_var = dev_sq / n - dev_mean * dev_mean;
    double mech_var = mech_sq / n - mech_mean * mech_mean;
    EXPECT_NEAR(dev_mean, mech_mean, 0.5);
    EXPECT_NEAR(std::sqrt(dev_var), std::sqrt(mech_var),
                0.06 * std::sqrt(mech_var));
}

TEST(Integration, PaperHeadline_NaiveFailsFixesWork)
{
    // The paper's core claim chain on one configuration:
    //  1. naive fixed-point noising: infinite loss;
    //  2. resampling at the exact threshold: bounded by 2 eps;
    //  3. thresholding at the exact threshold: bounded by 2 eps;
    //  4. all three deliver comparable utility for the mean query.
    Dataset heart = makeStatlogHeart();
    FxpMechanismParams p;
    p.range = heart.range;
    p.epsilon = 0.5;
    p.uniform_bits = 16;
    p.output_bits = 14;
    p.delta = heart.range.length() / 32.0;

    ThresholdCalculator calc(p);
    auto pmf = calc.pmf();

    NaiveOutputModel naive(pmf, calc.span());
    EXPECT_FALSE(PrivacyLossAnalyzer::analyze(naive).bounded);

    int64_t tr = calc.exactIndex(RangeControl::Resampling, 2.0);
    int64_t tt = calc.exactIndex(RangeControl::Thresholding, 2.0);
    ASSERT_GE(tr, 0);
    ASSERT_GE(tt, 0);
    ResamplingOutputModel resamp(pmf, calc.span(), tr);
    ThresholdingOutputModel thresh(pmf, calc.span(), tt);
    EXPECT_TRUE(PrivacyLossAnalyzer::satisfiesLdp(resamp, 1.0));
    EXPECT_TRUE(PrivacyLossAnalyzer::satisfiesLdp(thresh, 1.0));

    UtilityEvaluator eval(60);
    IdealLaplaceMechanism ideal(p.range, p.epsilon, 3);
    NaiveFxpMechanism naive_mech(p);
    ResamplingMechanism resamp_mech(p, tr);
    ThresholdingMechanism thresh_mech(p, tt);

    double mae_ideal =
        eval.evaluate(heart.values, ideal, MeanQuery()).mae;
    double mae_naive =
        eval.evaluate(heart.values, naive_mech, MeanQuery()).mae;
    double mae_resamp =
        eval.evaluate(heart.values, resamp_mech, MeanQuery()).mae;
    double mae_thresh =
        eval.evaluate(heart.values, thresh_mech, MeanQuery()).mae;

    // Tables II-V: all four settings within a small factor.
    for (double mae : {mae_naive, mae_resamp, mae_thresh}) {
        EXPECT_LT(mae, 3.0 * mae_ideal + 1e-9);
        EXPECT_GT(mae, mae_ideal / 3.0);
    }
}

TEST(Integration, BudgetedDeviceStopsLeaking)
{
    // Full-stack Fig. 13: a budgeted DP-Box serves an adversary;
    // after exhaustion the outputs freeze.
    DpBoxConfig cfg;
    cfg.frac_bits = 5;
    cfg.word_bits = 20;
    cfg.uniform_bits = 17;
    cfg.threshold_index = 300;
    cfg.thresholding = true;
    cfg.budget_enabled = true;
    cfg.segments = {BudgetSegment{0, 0.55},
                    BudgetSegment{150, 0.8},
                    BudgetSegment{300, 1.0}};
    DpBoxDriver drv(cfg);
    drv.initialize(5.0, 0);
    drv.configure(0.5, SensorRange(0.0, 10.0));

    std::vector<double> outputs;
    for (int i = 0; i < 50; ++i)
        outputs.push_back(drv.noise(7.0).value);

    EXPECT_GT(drv.device().stats().cache_hits, 0u);
    // Tail outputs identical (cache replay).
    EXPECT_DOUBLE_EQ(outputs[48], outputs[49]);
}

TEST(Integration, EpsilonTradesUtilityForPrivacy)
{
    // The fundamental DP tradeoff through the whole stack: smaller
    // eps -> higher MAE, and the exact loss bound scales with eps.
    Dataset activity = makeHumanActivity();
    Dataset small = activity.subsample(2000);

    auto mae_at = [&](double eps) {
        FxpMechanismParams p;
        p.range = small.range;
        p.epsilon = eps;
        p.uniform_bits = 16;
        p.output_bits = 14;
        p.delta = small.range.length() / 32.0;
        ThresholdCalculator calc(p);
        int64_t t = calc.exactIndex(RangeControl::Thresholding, 2.0);
        ThresholdingMechanism mech(p, t);
        UtilityEvaluator eval(40);
        return eval.evaluate(small.values, mech, MeanQuery()).mae;
    };
    EXPECT_GT(mae_at(0.25), mae_at(1.0));
}

} // anonymous namespace
} // namespace ulpdp
