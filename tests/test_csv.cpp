/**
 * @file
 * Tests for CSV loading and series writing.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "data/csv.h"

namespace ulpdp {
namespace {

class CsvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test: ctest runs test cases in parallel
        // processes and a shared name would collide.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = ::testing::TempDir() + "ulpdp_csv_" +
                info->name() + ".csv";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    void
    writeFile(const std::string &content)
    {
        std::ofstream out(path_);
        out << content;
    }

    std::string path_;
};

TEST_F(CsvTest, LoadsNumericColumn)
{
    writeFile("1.5,a\n2.5,b\n3.5,c\n");
    auto col = csv::loadColumn(path_, 0);
    ASSERT_EQ(col.size(), 3u);
    EXPECT_DOUBLE_EQ(col[0], 1.5);
    EXPECT_DOUBLE_EQ(col[2], 3.5);
}

TEST_F(CsvTest, LoadsSecondColumn)
{
    writeFile("a,10\nb,20\n");
    auto col = csv::loadColumn(path_, 1);
    ASSERT_EQ(col.size(), 2u);
    EXPECT_DOUBLE_EQ(col[1], 20.0);
}

TEST_F(CsvTest, SkipsHeaderAndNonNumeric)
{
    writeFile("value\n1.0\nnot-a-number\n2.0\n\n3.0\n");
    auto col = csv::loadColumn(path_, 0, ',', true);
    ASSERT_EQ(col.size(), 3u);
    EXPECT_DOUBLE_EQ(col[0], 1.0);
    EXPECT_DOUBLE_EQ(col[2], 3.0);
}

TEST_F(CsvTest, CustomDelimiter)
{
    writeFile("1.0;x\n2.0;y\n");
    auto col = csv::loadColumn(path_, 0, ';');
    ASSERT_EQ(col.size(), 2u);
}

TEST_F(CsvTest, MissingFileFatals)
{
    EXPECT_THROW(csv::loadColumn("/nonexistent/file.csv", 0),
                 FatalError);
}

TEST_F(CsvTest, LoadDatasetClampsToRange)
{
    writeFile("5.0\n100.0\n-100.0\n");
    Dataset d = csv::loadDataset(path_, 0, SensorRange(0.0, 10.0),
                                 "clamped");
    ASSERT_EQ(d.size(), 3u);
    EXPECT_DOUBLE_EQ(d.values[1], 10.0);
    EXPECT_DOUBLE_EQ(d.values[2], 0.0);
    EXPECT_NO_THROW(d.validate());
}

TEST_F(CsvTest, LoadDatasetRejectsEmpty)
{
    writeFile("no,numbers,here\n");
    EXPECT_THROW(csv::loadDataset(path_, 0, SensorRange(0.0, 1.0),
                                  "empty"),
                 FatalError);
}

TEST_F(CsvTest, WriteSeriesRoundTrips)
{
    csv::writeSeries(path_, {"x", "y"},
                     {{1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}});
    auto x = csv::loadColumn(path_, 0, ',', true);
    auto y = csv::loadColumn(path_, 1, ',', true);
    ASSERT_EQ(x.size(), 3u);
    EXPECT_DOUBLE_EQ(x[1], 2.0);
    EXPECT_DOUBLE_EQ(y[2], 30.0);
}

TEST_F(CsvTest, WriteSeriesRejectsRagged)
{
    EXPECT_THROW(csv::writeSeries(path_, {"x", "y"},
                                  {{1.0}, {1.0, 2.0}}),
                 FatalError);
    EXPECT_THROW(csv::writeSeries(path_, {"x"}, {{1.0}, {2.0}}),
                 FatalError);
}

} // anonymous namespace
} // namespace ulpdp
