/**
 * @file
 * Accuracy and property tests for the hyperbolic CORDIC log unit.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "rng/cordic.h"

namespace ulpdp {
namespace {

TEST(Cordic, RejectsBadConfig)
{
    EXPECT_THROW(CordicLog(2), FatalError);
    EXPECT_THROW(CordicLog(100), FatalError);
    EXPECT_THROW(CordicLog(32, 4), FatalError);
    EXPECT_THROW(CordicLog(32, 60), FatalError);
}

TEST(Cordic, LnOfOneIsZero)
{
    // Convergence residual of 32 micro-rotations is ~2^-29.
    CordicLog c;
    EXPECT_NEAR(c.ln(1.0), 0.0, 1e-8);
}

TEST(Cordic, LnOfPowersOfTwoExact)
{
    CordicLog c;
    for (int e = -10; e <= 10; ++e) {
        double x = std::ldexp(1.0, e);
        EXPECT_NEAR(c.ln(x), e * std::log(2.0), 1e-8) << "e=" << e;
    }
}

TEST(Cordic, LnAccuracyOverMantissaRange)
{
    CordicLog c(40);
    for (double w = 1.0; w < 2.0; w += 0.001)
        EXPECT_NEAR(c.ln(w), std::log(w), 1e-8) << "w=" << w;
}

TEST(Cordic, LnAccuracyWideRange)
{
    CordicLog c(40);
    for (double x : {1e-6, 0.001, 0.1, 0.5, 3.0, 100.0, 1e6})
        EXPECT_NEAR(c.ln(x), std::log(x), 1e-7) << "x=" << x;
}

TEST(Cordic, RejectsNonPositive)
{
    CordicLog c;
    EXPECT_THROW(c.ln(0.0), FatalError);
    EXPECT_THROW(c.ln(-1.0), FatalError);
}

TEST(Cordic, UnitIndexMatchesLog)
{
    CordicLog c;
    int bu = 12;
    for (uint64_t m : {uint64_t{1}, uint64_t{2}, uint64_t{37},
                       uint64_t{1000}, uint64_t{4095},
                       uint64_t{4096}}) {
        double expect = std::log(std::ldexp(static_cast<double>(m),
                                            -bu));
        EXPECT_NEAR(c.lnUnitIndex(m, bu), expect, 1e-8) << "m=" << m;
    }
}

TEST(Cordic, UnitIndexOfFullScaleIsZero)
{
    CordicLog c;
    EXPECT_NEAR(c.lnUnitIndex(uint64_t{1} << 17, 17), 0.0, 1e-12);
}

TEST(Cordic, UnitIndexOfOneIsMinusBuLn2)
{
    CordicLog c;
    EXPECT_NEAR(c.lnUnitIndex(1, 17), -17.0 * std::log(2.0), 1e-8);
}

TEST(Cordic, UnitIndexRejectsOutOfRange)
{
    CordicLog c;
    EXPECT_THROW(c.lnUnitIndex(0, 8), PanicError);
    EXPECT_THROW(c.lnUnitIndex(257, 8), PanicError);
}

TEST(Cordic, UnitIndexAlwaysNonPositive)
{
    CordicLog c;
    int bu = 10;
    for (uint64_t m = 1; m <= (uint64_t{1} << bu); ++m)
        EXPECT_LE(c.lnUnitIndex(m, bu), 0.0) << "m=" << m;
}

TEST(Cordic, AccuracyImprovesWithIterations)
{
    // Worst-case |error| over a mantissa sweep should shrink as
    // iterations grow.
    auto worst = [](int iters) {
        CordicLog c(iters);
        double w_err = 0.0;
        for (double w = 1.001; w < 2.0; w += 0.01)
            w_err = std::max(w_err, std::abs(c.ln(w) - std::log(w)));
        return w_err;
    };
    double e8 = worst(8);
    double e16 = worst(16);
    double e32 = worst(32);
    EXPECT_GT(e8, e16);
    EXPECT_GT(e16, e32);
    EXPECT_LT(e32, 1e-7);
}

TEST(Cordic, RawInterfaceConsistent)
{
    CordicLog c;
    int bu = 14;
    for (uint64_t m : {uint64_t{3}, uint64_t{999}, uint64_t{16000}}) {
        double from_raw = std::ldexp(
            static_cast<double>(c.lnUnitIndexRaw(m, bu)),
            -c.fracBits());
        EXPECT_DOUBLE_EQ(from_raw, c.lnUnitIndex(m, bu));
    }
}

} // anonymous namespace
} // namespace ulpdp
