/**
 * @file
 * Cross-module integration tests for the extension features:
 * provisioning driving a traced device, deconvolution on generic-
 * distribution mechanisms, and categorical + numeric streams sharing
 * one budget pool.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/generic_mechanism.h"
#include "core/kary_randomized_response.h"
#include "core/privacy_loss.h"
#include "core/shared_budget.h"
#include "dpbox/driver.h"
#include "dpbox/provisioning.h"
#include "dpbox/trace.h"
#include "query/histogram_query.h"
#include "sim/sensor_adc.h"

namespace ulpdp {
namespace {

TEST(IntegrationExt, ProvisionedDevicePassesTraceAudit)
{
    // Intent -> plan -> device -> traced session -> invariant audit:
    // the full provisioning chain holds up under inspection.
    PrivacyIntent intent;
    intent.range = SensorRange(0.0, 10.0);
    intent.epsilon = 0.5;
    intent.loss_multiple = 2.0;
    intent.kind = RangeControl::Thresholding;
    intent.budget = 15.0;
    ProvisioningPlan plan = Provisioner::plan(intent);
    ASSERT_TRUE(Provisioner::verify(plan));

    DpBox box(plan.device);
    DpBoxTracer tracer(box);
    tracer.step(DpBoxCommand::SetEpsilon,
                static_cast<int64_t>(intent.budget * 256));
    tracer.step(DpBoxCommand::StartNoising);
    tracer.step(DpBoxCommand::SetEpsilon, plan.n_m);
    tracer.step(DpBoxCommand::SetRangeLower, box.toRaw(0.0));
    tracer.step(DpBoxCommand::SetRangeUpper, box.toRaw(10.0));

    for (int i = 0; i < 100; ++i) {
        tracer.step(DpBoxCommand::SetSensorValue,
                    box.toRaw(3.0 + (i % 5)));
        tracer.step(DpBoxCommand::StartNoising);
        while (!box.ready())
            tracer.step(DpBoxCommand::DoNothing);
    }
    TraceCheckResult audit = tracer.check();
    EXPECT_TRUE(audit.ok) << audit.violation;
    EXPECT_GT(box.stats().cache_hits, 0u); // budget eventually binds
}

TEST(IntegrationExt, GaussianMechanismDeconvolvesToo)
{
    // The histogram estimator is distribution-agnostic: feed it the
    // exact model of a *Gaussian* fixed-point mechanism and recover
    // a point mass.
    FxpInversionConfig cfg;
    cfg.uniform_bits = 14;
    cfg.output_bits = 12;
    cfg.delta = 10.0 / 32.0;
    auto icdf = std::make_shared<GaussianMagnitude>(3.0);

    int64_t t = 40;
    GenericFxpMechanism mech(SensorRange(0.0, 10.0), 1.0, cfg, icdf,
                             RangeControl::Thresholding, t, 7);
    auto pmf = std::make_shared<EnumeratedNoisePmf>(cfg, icdf);
    ThresholdingOutputModel model(pmf, 32, t);
    HistogramEstimator est(model, 300);

    std::vector<int64_t> reports;
    for (int i = 0; i < 40000; ++i) {
        double y = mech.noise(7.5).value;
        reports.push_back(
            static_cast<int64_t>(std::llround(y / mech.delta())));
    }
    auto pi = est.estimate(reports);
    double near = 0.0;
    for (int64_t i = 21; i <= 27; ++i) // true index 24
        near += pi[static_cast<size_t>(i)];
    EXPECT_GT(near, 0.8);
}

TEST(IntegrationExt, MixedStreamsOnOnePool)
{
    // A numeric sensor (thresholding) and a categorical one (k-ary
    // RR) metered against the same pool: the combined spend is
    // bounded and both degrade gracefully.
    SharedBudgetPool pool(8.0);

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    ThresholdCalculator calc(p);
    BudgetedSensor numeric(
        "numeric", p, RangeControl::Thresholding,
        LossSegments::compute(calc, RangeControl::Thresholding,
                              {1.5, 2.0}),
        pool);

    KaryRandomizedResponse categorical(4, 1.0, 20, 3);
    double rr_loss = categorical.exactLoss();

    double charged = 0.0;
    int rr_answers = 0;
    for (int i = 0; i < 60; ++i) {
        charged += numeric.request(5.0).charged;
        if (pool.tryCharge(rr_loss)) {
            categorical.respond(i % 4);
            charged += rr_loss;
            ++rr_answers;
        }
    }
    EXPECT_LE(charged, 8.0 + 1e-9);
    EXPECT_NEAR(charged, pool.totalCharged(), 1e-9);
    EXPECT_GT(rr_answers, 0);
    EXPECT_GT(numeric.cacheHits(), 0u);
}

TEST(IntegrationExt, AdcFrontEndIntoProvisionedDevice)
{
    // Physical value -> ADC -> provisioned DP-Box -> bounded output,
    // with the LDP guarantee proven for the released grid.
    PrivacyIntent intent;
    intent.range = SensorRange(30.0, 42.0);
    intent.epsilon = 0.5;
    intent.loss_multiple = 2.0;
    intent.kind = RangeControl::Resampling;
    ProvisioningPlan plan = Provisioner::plan(intent);

    SensorAdc adc(intent.range, 12);
    DpBoxDriver drv(plan.device);
    drv.initialize(1e9, 0);
    drv.configure(plan.effective_epsilon, plan.range);

    double lsb = std::ldexp(1.0, -plan.device.frac_bits);
    double ext = static_cast<double>(plan.device.threshold_index) *
                 lsb;
    for (int i = 0; i < 500; ++i) {
        double physical = 36.0 + 0.01 * (i % 100);
        double y = drv.noise(adc.sample(physical)).value;
        EXPECT_GE(y, 30.0 - ext - 1e-9);
        EXPECT_LE(y, 42.0 + ext + 1e-9);
    }
}

TEST(IntegrationExt, StaircaseBeatsLaplaceUtilityAtHighEps)
{
    // The staircase mechanism's raison d'etre: at larger eps its
    // expected noise magnitude undercuts Laplace at equal privacy.
    double eps = 4.0;
    double d = 10.0;
    FxpInversionConfig cfg;
    cfg.uniform_bits = 14;
    cfg.output_bits = 12;
    cfg.delta = d / 64.0;

    auto expected_mag = [&](std::shared_ptr<const MagnitudeIcdf> m) {
        EnumeratedNoisePmf pmf(cfg, std::move(m));
        double e = 0.0;
        for (int64_t k = 1; k <= pmf.maxIndex(); ++k)
            e += 2.0 * pmf.pmf(k) * static_cast<double>(k) *
                 cfg.delta;
        return e;
    };
    double lap = expected_mag(
        std::make_shared<LaplaceMagnitude>(d / eps));
    double stair = expected_mag(std::make_shared<StaircaseMagnitude>(
        d, eps, StaircaseMagnitude::optimalGamma(eps)));
    EXPECT_LT(stair, lap);
}

} // anonymous namespace
} // namespace ulpdp
