/**
 * @file
 * Unit and property tests for the Fxp fixed-point value type.
 */

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "fixed/fixed_point.h"

namespace ulpdp {
namespace {

using Q4_4 = Fxp<4, 4>;   // tiny: range [-8, 7.9375], LSB 1/16
using Q8_8 = Fxp<8, 8>;

TEST(FixedPoint, StaticProperties)
{
    EXPECT_EQ(Q4_4::word_length, 8);
    EXPECT_EQ(Q4_4::raw_max, 127);
    EXPECT_EQ(Q4_4::raw_min, -128);
    EXPECT_DOUBLE_EQ(Q4_4::resolution(), 1.0 / 16.0);
    EXPECT_EQ(DpBoxWord::word_length, 20);
}

TEST(FixedPoint, RoundTripExactValues)
{
    for (int64_t raw = Q4_4::raw_min; raw <= Q4_4::raw_max; ++raw) {
        Q4_4 f = Q4_4::fromRaw(raw);
        EXPECT_EQ(Q4_4::fromDouble(f.toDouble()).raw(), raw);
    }
}

TEST(FixedPoint, FromDoubleRounds)
{
    // 0.03 * 16 = 0.48 -> rounds to raw 0; 0.04 * 16 = 0.64 -> raw 1.
    EXPECT_EQ(Q4_4::fromDouble(0.03).raw(), 0);
    EXPECT_EQ(Q4_4::fromDouble(0.04).raw(), 1);
}

TEST(FixedPoint, FromDoubleSaturates)
{
    EXPECT_EQ(Q4_4::fromDouble(100.0).raw(), Q4_4::raw_max);
    EXPECT_EQ(Q4_4::fromDouble(-100.0).raw(), Q4_4::raw_min);
}

TEST(FixedPoint, NanBecomesZero)
{
    EXPECT_EQ(Q4_4::fromDouble(std::nan("")).raw(), 0);
}

TEST(FixedPoint, FromIntSaturates)
{
    EXPECT_EQ(Q4_4::fromInt(3).toDouble(), 3.0);
    EXPECT_EQ(Q4_4::fromInt(1000).raw(), Q4_4::raw_max);
    EXPECT_EQ(Q4_4::fromInt(-1000).raw(), Q4_4::raw_min);
}

TEST(FixedPoint, AdditionExactWhenInRange)
{
    Q8_8 a = Q8_8::fromDouble(1.5);
    Q8_8 b = Q8_8::fromDouble(2.25);
    EXPECT_DOUBLE_EQ((a + b).toDouble(), 3.75);
    EXPECT_DOUBLE_EQ((a - b).toDouble(), -0.75);
}

TEST(FixedPoint, AdditionSaturates)
{
    Q4_4 big = Q4_4::max();
    EXPECT_EQ((big + big).raw(), Q4_4::raw_max);
    Q4_4 small = Q4_4::min();
    EXPECT_EQ((small + small).raw(), Q4_4::raw_min);
}

TEST(FixedPoint, NegationSaturatesAtMin)
{
    EXPECT_EQ((-Q4_4::min()).raw(), Q4_4::raw_max);
    EXPECT_EQ((-Q4_4::fromDouble(2.0)).toDouble(), -2.0);
}

TEST(FixedPoint, MultiplicationExactForSmallValues)
{
    Q8_8 a = Q8_8::fromDouble(1.5);
    Q8_8 b = Q8_8::fromDouble(2.0);
    EXPECT_DOUBLE_EQ((a * b).toDouble(), 3.0);
    Q8_8 c = Q8_8::fromDouble(0.5);
    Q8_8 d = Q8_8::fromDouble(0.5);
    EXPECT_DOUBLE_EQ((c * d).toDouble(), 0.25);
}

TEST(FixedPoint, MultiplicationRoundsToNearest)
{
    // (1/256) * (1/256) = 2^-16, far below one LSB (2^-8): rounds to
    // zero... but exactly half of an LSB rounds away from zero.
    Q8_8 eps = Q8_8::fromRaw(1);
    EXPECT_EQ((eps * eps).raw(), 0);
    Q8_8 half_lsb = Q8_8::fromRaw(16); // 16/256 = 1/16
    Q8_8 one_eighth = Q8_8::fromRaw(2);
    // (16 * 2) >> 8 = 0.125 LSB -> rounds to 0.
    EXPECT_EQ((half_lsb * one_eighth).raw(), 0);
}

TEST(FixedPoint, MultiplicationSaturates)
{
    Q4_4 big = Q4_4::fromDouble(7.0);
    EXPECT_EQ((big * big).raw(), Q4_4::raw_max);
    Q4_4 neg = Q4_4::fromDouble(-8.0);
    EXPECT_EQ((neg * big).raw(), Q4_4::raw_min);
}

TEST(FixedPoint, ShiftsBehaveLikePowersOfTwo)
{
    Q8_8 v = Q8_8::fromDouble(1.25);
    EXPECT_DOUBLE_EQ(v.shiftLeft(2).toDouble(), 5.0);
    EXPECT_DOUBLE_EQ(v.shiftRight(1).toDouble(), 0.625);
}

TEST(FixedPoint, ShiftLeftSaturates)
{
    Q4_4 v = Q4_4::fromDouble(4.0);
    EXPECT_EQ(v.shiftLeft(4).raw(), Q4_4::raw_max);
}

TEST(FixedPoint, AbsAndComparisons)
{
    Q8_8 a = Q8_8::fromDouble(-2.5);
    EXPECT_DOUBLE_EQ(a.abs().toDouble(), 2.5);
    EXPECT_LT(a, Q8_8::fromDouble(0.0));
    EXPECT_EQ(Q8_8::min().abs().raw(), Q8_8::raw_max); // saturating
}

TEST(FixedPoint, FloorToInt)
{
    EXPECT_EQ(Q8_8::fromDouble(2.75).floorToInt(), 2);
    EXPECT_EQ(Q8_8::fromDouble(-2.25).floorToInt(), -3);
}

/** Property: double-checked arithmetic on random in-range values. */
TEST(FixedPointProperty, RandomAddMatchesDouble)
{
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> dist(-50.0, 50.0);
    for (int i = 0; i < 2000; ++i) {
        double x = dist(rng);
        double y = dist(rng);
        Q8_8 fx = Q8_8::fromDouble(x);
        Q8_8 fy = Q8_8::fromDouble(y);
        double expect = fx.toDouble() + fy.toDouble();
        if (expect < 127.99 && expect > -128.0) {
            EXPECT_DOUBLE_EQ((fx + fy).toDouble(), expect)
                << "x=" << x << " y=" << y;
        }
    }
}

/** Property: multiplication error bounded by half an LSB. */
TEST(FixedPointProperty, RandomMulErrorWithinHalfLsb)
{
    std::mt19937_64 rng(13);
    std::uniform_real_distribution<double> dist(-10.0, 10.0);
    for (int i = 0; i < 2000; ++i) {
        Q8_8 fx = Q8_8::fromDouble(dist(rng));
        Q8_8 fy = Q8_8::fromDouble(dist(rng));
        double exact = fx.toDouble() * fy.toDouble();
        if (std::abs(exact) < 120.0) {
            EXPECT_LE(std::abs((fx * fy).toDouble() - exact),
                      0.5 * Q8_8::resolution() + 1e-12);
        }
    }
}

TEST(FixedPoint, ToStringMentionsRaw)
{
    std::string s = Q8_8::fromDouble(1.0).toString();
    EXPECT_NE(s.find("raw 256"), std::string::npos);
}

} // anonymous namespace
} // namespace ulpdp
