/**
 * @file
 * Tests for the Pegasos SVM, the halfspace generator and private
 * (noised-feature) training.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/ideal_laplace_mechanism.h"
#include "ml/private_training.h"
#include "ml/svm.h"

namespace ulpdp {
namespace {

TEST(Halfspace, GeneratesRequestedShape)
{
    LabelledData d = makeHalfspaceData(500, 4, 0.1, 1);
    EXPECT_EQ(d.size(), 500u);
    EXPECT_EQ(d.dim(), 4u);
    int pos = 0;
    for (int y : d.labels) {
        EXPECT_TRUE(y == 1 || y == -1);
        if (y == 1)
            ++pos;
    }
    // Roughly balanced labels.
    EXPECT_GT(pos, 100);
    EXPECT_LT(pos, 400);
}

TEST(Halfspace, FeaturesInUnitBox)
{
    LabelledData d = makeHalfspaceData(200, 3, 0.05, 2);
    for (const auto &x : d.features) {
        for (double v : x) {
            EXPECT_GE(v, -1.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(Halfspace, DeterministicPerSeed)
{
    LabelledData a = makeHalfspaceData(50, 2, 0.1, 7);
    LabelledData b = makeHalfspaceData(50, 2, 0.1, 7);
    EXPECT_EQ(a.features, b.features);
    EXPECT_EQ(a.labels, b.labels);
}

TEST(LinearSvm, RejectsBadConfig)
{
    SvmConfig cfg;
    cfg.lambda = 0.0;
    EXPECT_THROW(LinearSvm svm(cfg), FatalError);
    cfg = SvmConfig();
    cfg.epochs = 0;
    EXPECT_THROW(LinearSvm svm(cfg), FatalError);
}

TEST(LinearSvm, RejectsEmptyTrainingSet)
{
    LinearSvm svm;
    LabelledData empty;
    EXPECT_THROW(svm.train(empty), FatalError);
}

TEST(LinearSvm, LearnsSeparableData)
{
    LabelledData train = makeHalfspaceData(2000, 5, 0.1, 11);
    LabelledData test = makeHalfspaceData(1000, 5, 0.1, 12);
    // Same normal? No -- different seed gives a different halfspace,
    // so test on held-out data from the same distribution instead.
    LabelledData all = makeHalfspaceData(3000, 5, 0.1, 11);
    LabelledData tr;
    LabelledData te;
    for (size_t i = 0; i < all.size(); ++i) {
        auto &dst = i < 2000 ? tr : te;
        dst.features.push_back(all.features[i]);
        dst.labels.push_back(all.labels[i]);
    }

    LinearSvm svm;
    svm.train(tr);
    EXPECT_GT(svm.accuracy(te), 0.95);
    (void)train;
    (void)test;
}

TEST(LinearSvm, AccuracyImprovesWithData)
{
    LabelledData all = makeHalfspaceData(6000, 8, 0.05, 21);
    LabelledData test;
    for (size_t i = 5000; i < 6000; ++i) {
        test.features.push_back(all.features[i]);
        test.labels.push_back(all.labels[i]);
    }
    auto train_n = [&](size_t n) {
        LabelledData tr;
        for (size_t i = 0; i < n; ++i) {
            tr.features.push_back(all.features[i]);
            tr.labels.push_back(all.labels[i]);
        }
        LinearSvm svm;
        svm.train(tr);
        return svm.accuracy(test);
    };
    double small = train_n(50);
    double large = train_n(5000);
    EXPECT_GE(large, small - 0.02);
    EXPECT_GT(large, 0.95);
}

TEST(PrivateTraining, NoisedFeaturesKeepLabels)
{
    LabelledData d = makeHalfspaceData(100, 3, 0.1, 31);
    IdealLaplaceMechanism mech(SensorRange(-1.0, 1.0), 1.0, 3);
    LabelledData noised = noiseFeatures(d, mech);
    EXPECT_EQ(noised.labels, d.labels);
    EXPECT_EQ(noised.size(), d.size());
    EXPECT_EQ(noised.dim(), d.dim());
    // Features must actually change.
    EXPECT_NE(noised.features[0], d.features[0]);
}

TEST(PrivateTraining, Table6Shape)
{
    // The paper's Table VI: accuracy falls as eps shrinks at fixed
    // training size, and the no-DP model beats the noised ones.
    LabelledData all = makeHalfspaceData(4000, 4, 0.1, 41);
    LabelledData train;
    LabelledData test;
    for (size_t i = 0; i < all.size(); ++i) {
        auto &dst = i < 3000 ? train : test;
        dst.features.push_back(all.features[i]);
        dst.labels.push_back(all.labels[i]);
    }

    auto accuracy_at = [&](double eps) {
        IdealLaplaceMechanism mech(SensorRange(-1.0, 1.0), eps, 5);
        LabelledData noised = noiseFeatures(train, mech);
        LinearSvm svm;
        svm.train(noised);
        return svm.accuracy(test);
    };

    LinearSvm clean;
    clean.train(train);
    double no_dp = clean.accuracy(test);
    double eps2 = accuracy_at(2.0);
    double eps05 = accuracy_at(0.5);

    EXPECT_GT(no_dp, 0.95);
    EXPECT_GE(no_dp, eps2 - 0.03);
    EXPECT_GT(eps2, eps05 - 0.02);
    EXPECT_GT(eps05, 0.5); // still better than chance
}

} // anonymous namespace
} // namespace ulpdp
