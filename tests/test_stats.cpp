/**
 * @file
 * Unit tests for streaming and batch statistics.
 */

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace ulpdp {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic textbook example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne)
{
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 1.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    std::mt19937_64 rng(7);
    std::normal_distribution<double> dist(5.0, 2.0);

    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 1000; ++i) {
        double v = dist(rng);
        all.add(v);
        (i < 300 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop)
{
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 1.5);

    RunningStats c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(BatchStats, MeanOfKnownVector)
{
    EXPECT_DOUBLE_EQ(batch::mean({1.0, 2.0, 3.0, 4.0}), 2.5);
    EXPECT_DOUBLE_EQ(batch::mean({}), 0.0);
}

TEST(BatchStats, VarianceOfKnownVector)
{
    EXPECT_DOUBLE_EQ(batch::variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0);
    EXPECT_DOUBLE_EQ(batch::stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(BatchStats, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(batch::median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(batch::median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(batch::median({7.0}), 7.0);
    EXPECT_DOUBLE_EQ(batch::median({}), 0.0);
}

TEST(BatchStats, MedianDoesNotMutateCaller)
{
    std::vector<double> v{3.0, 1.0, 2.0};
    batch::median(v);
    EXPECT_EQ(v[0], 3.0);
    EXPECT_EQ(v[1], 1.0);
}

TEST(BatchStats, PercentileEndpointsAndMiddle)
{
    std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(batch::percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(batch::percentile(v, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(batch::percentile(v, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(batch::percentile(v, 25.0), 20.0);
    EXPECT_DOUBLE_EQ(batch::percentile(v, 12.5), 15.0); // interpolated
}

TEST(BatchStats, MeanAbsError)
{
    EXPECT_DOUBLE_EQ(
        batch::meanAbsError({1.0, 2.0, 3.0}, {2.0, 2.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(batch::meanAbsError({}, {}), 0.0);
}

TEST(RunningStats, AddRepeatedMatchesLoop)
{
    RunningStats looped;
    for (int i = 0; i < 1000; ++i)
        looped.add(3.25);
    looped.add(-1.5);
    RunningStats weighted;
    weighted.addRepeated(3.25, 1000);
    weighted.add(-1.5);
    EXPECT_EQ(weighted.count(), looped.count());
    EXPECT_DOUBLE_EQ(weighted.mean(), looped.mean());
    EXPECT_NEAR(weighted.variance(), looped.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(weighted.min(), looped.min());
    EXPECT_DOUBLE_EQ(weighted.max(), looped.max());
}

TEST(RunningStats, CountSurvivesPastFourBillion)
{
    // A 1e7-node fleet at hundreds of reports per node exceeds
    // uint32; the accumulator must count in 64 bits. Weighted adds
    // make the boundary reachable in O(1).
    RunningStats s;
    s.addRepeated(1.0, (uint64_t{1} << 32) + 5);
    s.addRepeated(3.0, (uint64_t{1} << 32) + 5);
    EXPECT_EQ(s.count(), (uint64_t{1} << 33) + 10);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_NEAR(s.variance(), 1.0, 1e-9);

    // Merging two half-populations crosses the boundary the same way.
    RunningStats a, b;
    a.addRepeated(5.0, uint64_t{3} << 31);
    b.addRepeated(5.0, uint64_t{3} << 31);
    a.merge(b);
    EXPECT_EQ(a.count(), uint64_t{3} << 32);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

} // anonymous namespace
} // namespace ulpdp
