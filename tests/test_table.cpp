/**
 * @file
 * Unit tests for the text table writer.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/table.h"

namespace ulpdp {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "v"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string s = t.toString();
    // Every line should have the same length (trailing pad).
    size_t first_len = s.find('\n');
    EXPECT_NE(first_len, std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    EXPECT_NO_THROW(t.addRow({"1"}));
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(TextTable, OverlongRowsRejected)
{
    TextTable t;
    t.setHeader({"a"});
    EXPECT_THROW(t.addRow({"1", "2"}), FatalError);
}

TEST(TextTable, HeaderRuleDrawn)
{
    TextTable t;
    t.setHeader({"col"});
    t.addRow({"x"});
    std::string s = t.toString();
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, FmtFixedPrecision)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(TextTable, FmtPlusMinus)
{
    std::string s = TextTable::fmtPlusMinus(3.2, 1.3, 2);
    EXPECT_NE(s.find("3.2"), std::string::npos);
    EXPECT_NE(s.find("+-"), std::string::npos);
    EXPECT_NE(s.find("1.3"), std::string::npos);
}

TEST(TextTable, FmtPercent)
{
    EXPECT_EQ(TextTable::fmtPercent(0.086), "8.6%");
    EXPECT_EQ(TextTable::fmtPercent(1.0, 0), "100%");
}

} // anonymous namespace
} // namespace ulpdp
