/**
 * @file
 * Tests for the MSP430 cost model, the energy model and the averaging
 * adversary.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/budget.h"
#include "sim/adversary.h"
#include "sim/energy_model.h"
#include "sim/msp430_cost.h"

namespace ulpdp {
namespace {

TEST(Msp430Cost, FixedPointInPaperBallpark)
{
    // Paper: 4043 cycles for 20-bit fixed-point software noising.
    Msp430CostModel model;
    uint64_t cycles = model.fixedPointCycles();
    EXPECT_GT(cycles, 3000u);
    EXPECT_LT(cycles, 5000u);
}

TEST(Msp430Cost, HalfFloatInPaperBallpark)
{
    // Paper: 1436 cycles using half-precision floats.
    Msp430CostModel model;
    uint64_t cycles = model.halfFloatCycles();
    EXPECT_GT(cycles, 1000u);
    EXPECT_LT(cycles, 2000u);
}

TEST(Msp430Cost, OrderingMatchesPaper)
{
    // fixed point > half float >> DP-Box host cost.
    Msp430CostModel model;
    EXPECT_GT(model.fixedPointCycles(), model.halfFloatCycles());
    EXPECT_GT(model.halfFloatCycles(), model.dpBoxHostCycles());
    EXPECT_EQ(model.dpBoxHostCycles(), 4u);
}

TEST(Msp430Cost, HardwareMultiplierShrinksFixedPointMost)
{
    Msp430CostModel soft;
    Msp430CostModel hard(Msp430OpCosts(), true);
    EXPECT_LT(hard.fixedPointCycles(), soft.fixedPointCycles());
    double fx_speedup =
        static_cast<double>(soft.fixedPointCycles()) /
        static_cast<double>(hard.fixedPointCycles());
    double hf_speedup =
        static_cast<double>(soft.halfFloatCycles()) /
        static_cast<double>(hard.halfFloatCycles());
    // Fixed point is multiply-bound, so the MPY helps it more.
    EXPECT_GT(fx_speedup, hf_speedup);
}

TEST(Msp430Cost, CustomCostsRespected)
{
    Msp430OpCosts costs;
    costs.mul16_soft = 1;
    costs.alu = 1;
    costs.load = 1;
    costs.store = 1;
    costs.branch = 1;
    Msp430CostModel model(costs);
    NoisingOpCounts c = Msp430CostModel::fixedPointRoutine();
    EXPECT_EQ(model.fixedPointCycles(),
              c.alu + c.load + c.store + c.branch + c.mul16);
}

TEST(EnergyModel, RejectsBadParams)
{
    EnergyParams p;
    p.dpbox_power = 0.0;
    EXPECT_THROW(EnergyModel model(p), FatalError);
}

TEST(EnergyModel, DpBoxEnergyPerCycleFromSynthesis)
{
    EnergyModel model;
    // 158.3 uW / 16 MHz = 9.89 pJ per cycle.
    EXPECT_NEAR(model.dpboxEnergyPerCycle(), 9.89e-12, 0.1e-12);
}

TEST(EnergyModel, RatiosInPaperBallpark)
{
    // Paper: 894x vs fixed-point software, 318x vs half-float. The
    // exact constants depend on the MCU; the model must land in the
    // same order of magnitude with the documented defaults.
    Msp430CostModel cost;
    EnergyModel energy;
    double fx_ratio = energy.ratio(cost.fixedPointCycles(), 2,
                                   cost.dpBoxHostCycles());
    double hf_ratio = energy.ratio(cost.halfFloatCycles(), 2,
                                   cost.dpBoxHostCycles());
    EXPECT_GT(fx_ratio, 300.0);
    EXPECT_LT(fx_ratio, 3000.0);
    EXPECT_GT(hf_ratio, 100.0);
    EXPECT_LT(hf_ratio, 1000.0);
    EXPECT_GT(fx_ratio, hf_ratio);
}

TEST(EnergyModel, EnergyScalesLinearly)
{
    EnergyModel model;
    EXPECT_DOUBLE_EQ(model.softwareEnergy(2000),
                     2.0 * model.softwareEnergy(1000));
    EXPECT_GT(model.dpboxEnergy(4, 4), model.dpboxEnergy(2, 4));
}

FxpMechanismParams
advParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    return p;
}

BudgetController
makeController(double budget)
{
    FxpMechanismParams p = advParams();
    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = budget;
    cfg.kind = RangeControl::Thresholding;
    cfg.segments = LossSegments::compute(
        calc, RangeControl::Thresholding, {1.5, 2.0});
    return BudgetController(p, cfg);
}

TEST(Adversary, ErrorShrinksWithoutBudget)
{
    BudgetController ctrl = makeController(1e12); // effectively none
    auto curve = AveragingAdversary::attack(
        ctrl, 7.0, {10, 100, 1000, 10000});
    ASSERT_EQ(curve.size(), 4u);
    // 1/sqrt(n) decay: the last point must beat the first clearly.
    EXPECT_LT(curve[3].relative_error, curve[0].relative_error);
    EXPECT_LT(curve[3].relative_error, 0.05);
    EXPECT_EQ(curve[3].cache_hits, 0u);
}

TEST(Adversary, BudgetCapsAccuracy)
{
    BudgetController limited = makeController(3.0);
    auto curve = AveragingAdversary::attack(
        limited, 7.0, {10, 100, 1000, 10000});
    EXPECT_GT(curve[3].cache_hits, 0u);

    BudgetController unlimited = makeController(1e12);
    auto free_curve = AveragingAdversary::attack(
        unlimited, 7.0, {10, 100, 1000, 10000});

    // With the budget, the estimate converges to the cached noised
    // value, not the truth: the error saturates above the free case.
    EXPECT_GT(curve[3].relative_error,
              free_curve[3].relative_error);
}

TEST(Adversary, LargerBudgetMoreAccurate)
{
    BudgetController small = makeController(2.0);
    BudgetController large = makeController(20.0);
    auto s = AveragingAdversary::attack(small, 7.0, {20000});
    auto l = AveragingAdversary::attack(large, 7.0, {20000});
    // More fresh samples average out better (cached value may be
    // lucky, so compare with slack via cache hits).
    EXPECT_GT(s[0].cache_hits, l[0].cache_hits);
}

TEST(Adversary, RejectsBadCheckpoints)
{
    BudgetController ctrl = makeController(5.0);
    EXPECT_THROW(AveragingAdversary::attack(ctrl, 5.0, {}),
                 FatalError);
    EXPECT_THROW(AveragingAdversary::attack(ctrl, 5.0, {10, 10}),
                 FatalError);
}

} // anonymous namespace
} // namespace ulpdp
