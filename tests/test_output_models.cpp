/**
 * @file
 * Tests for the exact conditional output distributions: they must be
 * proper distributions and agree with Monte Carlo runs of the actual
 * mechanisms.
 */

#include <cmath>
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/output_model.h"
#include "core/resampling_mechanism.h"
#include "core/thresholding_mechanism.h"
#include "core/fxp_mechanism.h"

namespace ulpdp {
namespace {

FxpMechanismParams
testParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 12;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    return p;
}

std::shared_ptr<const FxpLaplacePmf>
testPmf()
{
    return std::make_shared<FxpLaplacePmf>(
        testParams().rngConfig(), FxpLaplacePmf::Mode::Enumerated);
}

double
sumOverOutputs(const DiscreteOutputModel &model, int64_t input)
{
    double sum = 0.0;
    for (int64_t j = model.outputLo(); j <= model.outputHi(); ++j)
        sum += model.prob(j, input);
    return sum;
}

TEST(NaiveOutputModel, RowsSumToOne)
{
    NaiveOutputModel model(testPmf(), 32);
    for (int64_t i : {int64_t{0}, int64_t{16}, int64_t{32}})
        EXPECT_NEAR(sumOverOutputs(model, i), 1.0, 1e-12) << i;
}

TEST(NaiveOutputModel, OutputRangeCoversSupport)
{
    auto pmf = testPmf();
    NaiveOutputModel model(pmf, 32);
    EXPECT_EQ(model.outputLo(), -pmf->maxIndex());
    EXPECT_EQ(model.outputHi(), 32 + pmf->maxIndex());
}

TEST(NaiveOutputModel, ProbIsShiftedPmf)
{
    auto pmf = testPmf();
    NaiveOutputModel model(pmf, 32);
    EXPECT_DOUBLE_EQ(model.prob(40, 16), pmf->pmf(24));
    EXPECT_DOUBLE_EQ(model.prob(-3, 0), pmf->pmf(-3));
}

TEST(ResamplingOutputModel, RowsSumToOne)
{
    ResamplingOutputModel model(testPmf(), 32, 150);
    for (int64_t i : {int64_t{0}, int64_t{10}, int64_t{32}})
        EXPECT_NEAR(sumOverOutputs(model, i), 1.0, 1e-12) << i;
}

TEST(ResamplingOutputModel, ZeroOutsideWindow)
{
    ResamplingOutputModel model(testPmf(), 32, 50);
    EXPECT_DOUBLE_EQ(model.prob(-51, 0), 0.0);
    EXPECT_DOUBLE_EQ(model.prob(83, 0), 0.0);
    EXPECT_GT(model.prob(-50, 0), 0.0);
    EXPECT_GT(model.prob(82, 32), 0.0);
}

TEST(ResamplingOutputModel, AcceptanceProbabilitySane)
{
    ResamplingOutputModel model(testPmf(), 32, 150);
    for (int64_t i = 0; i <= 32; ++i) {
        double z = model.acceptProbability(i);
        EXPECT_GT(z, 0.5);
        EXPECT_LE(z, 1.0 + 1e-12);
        EXPECT_NEAR(model.expectedSamples(i), 1.0 / z, 1e-12);
    }
}

TEST(ResamplingOutputModel, EdgeInputsResampleMore)
{
    // An input at the range edge has more noise mass falling outside
    // the (asymmetric) window than a centered input.
    ResamplingOutputModel model(testPmf(), 32, 60);
    EXPECT_LT(model.acceptProbability(0),
              model.acceptProbability(16));
}

TEST(ThresholdingOutputModel, RowsSumToOne)
{
    ThresholdingOutputModel model(testPmf(), 32, 150);
    for (int64_t i : {int64_t{0}, int64_t{7}, int64_t{32}})
        EXPECT_NEAR(sumOverOutputs(model, i), 1.0, 1e-12) << i;
}

TEST(ThresholdingOutputModel, RowsSumToOneTinyWindow)
{
    ThresholdingOutputModel model(testPmf(), 32, 0);
    for (int64_t i : {int64_t{0}, int64_t{16}, int64_t{32}})
        EXPECT_NEAR(sumOverOutputs(model, i), 1.0, 1e-12) << i;
}

TEST(ThresholdingOutputModel, BoundaryAtomsCarryTailMass)
{
    auto pmf = testPmf();
    int64_t t = 100;
    ThresholdingOutputModel model(pmf, 32, t);
    // Upper atom for input at the top of the range: tail beyond t.
    EXPECT_DOUBLE_EQ(model.prob(32 + t, 32), pmf->tailMass(t));
    // Upper atom for input at the bottom: tail beyond t + span.
    EXPECT_DOUBLE_EQ(model.prob(32 + t, 0), pmf->tailMass(t + 32));
    // Interior points follow the raw PMF.
    EXPECT_DOUBLE_EQ(model.prob(16, 16), pmf->pmf(0));
}

TEST(RandomizedResponseOutputModel, TwoPointRows)
{
    RandomizedResponseOutputModel model(testPmf(), 32);
    double q = model.flipProbability();
    EXPECT_GT(q, 0.0);
    EXPECT_LT(q, 0.5);
    EXPECT_DOUBLE_EQ(model.prob(0, 0), 1.0 - q);
    EXPECT_DOUBLE_EQ(model.prob(32, 0), q);
    EXPECT_DOUBLE_EQ(model.prob(32, 32), 1.0 - q);
    EXPECT_DOUBLE_EQ(model.prob(16, 0), 0.0); // interior impossible
    EXPECT_NEAR(sumOverOutputs(model, 0), 1.0, 1e-12);
}

/**
 * Monte Carlo agreement: run the real mechanism, histogram its
 * outputs, and check total variation distance against the model.
 */
TEST(OutputModelMonteCarlo, ResamplingAgrees)
{
    FxpMechanismParams p = testParams();
    int64_t t = 120;
    ResamplingMechanism mech(p, t);
    ResamplingOutputModel model(testPmf(), 32, t);

    const int n = 300000;
    std::map<int64_t, uint64_t> counts;
    for (int i = 0; i < n; ++i) {
        double y = mech.noise(5.0).value;
        ++counts[static_cast<int64_t>(std::llround(y / mech.delta()))];
    }

    int64_t input = 16; // 5.0 / 0.3125
    double tv = 0.0;
    for (int64_t j = model.outputLo(); j <= model.outputHi(); ++j) {
        double emp = counts.count(j)
            ? static_cast<double>(counts[j]) / n
            : 0.0;
        tv += std::abs(emp - model.prob(j, input));
    }
    EXPECT_LT(tv / 2.0, 0.03);
}

TEST(OutputModelMonteCarlo, ThresholdingAgrees)
{
    FxpMechanismParams p = testParams();
    int64_t t = 120;
    ThresholdingMechanism mech(p, t);
    ThresholdingOutputModel model(testPmf(), 32, t);

    const int n = 300000;
    std::map<int64_t, uint64_t> counts;
    for (int i = 0; i < n; ++i) {
        double y = mech.noise(10.0).value;
        ++counts[static_cast<int64_t>(std::llround(y / mech.delta()))];
    }

    int64_t input = 32;
    double tv = 0.0;
    for (int64_t j = model.outputLo(); j <= model.outputHi(); ++j) {
        double emp = counts.count(j)
            ? static_cast<double>(counts[j]) / n
            : 0.0;
        tv += std::abs(emp - model.prob(j, input));
    }
    EXPECT_LT(tv / 2.0, 0.03);
}

TEST(OutputModels, RejectBadArguments)
{
    auto pmf = testPmf();
    EXPECT_THROW(NaiveOutputModel(nullptr, 32), FatalError);
    EXPECT_THROW(NaiveOutputModel(pmf, 0), FatalError);
    EXPECT_THROW(ResamplingOutputModel(pmf, 32, -1), FatalError);
    EXPECT_THROW(ThresholdingOutputModel(pmf, 32, -2), FatalError);
}

} // anonymous namespace
} // namespace ulpdp
