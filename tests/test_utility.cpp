/**
 * @file
 * Tests for the utility (MAE) evaluation harness.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/ideal_laplace_mechanism.h"
#include "core/thresholding_mechanism.h"
#include "query/utility.h"

namespace ulpdp {
namespace {

std::vector<double>
testData()
{
    std::vector<double> data;
    for (int i = 0; i < 200; ++i)
        data.push_back(2.0 + 6.0 * (i % 50) / 49.0);
    return data;
}

TEST(UtilityEvaluator, RawEvaluationHasZeroError)
{
    UtilityEvaluator eval(10);
    MeanQuery q;
    UtilityResult r = eval.evaluateRaw(testData(), q);
    EXPECT_DOUBLE_EQ(r.mae, 0.0);
    EXPECT_DOUBLE_EQ(r.true_value, q.evaluate(testData()));
}

TEST(UtilityEvaluator, RejectsEmptyData)
{
    UtilityEvaluator eval(10);
    MeanQuery q;
    IdealLaplaceMechanism mech(SensorRange(0.0, 10.0), 0.5);
    std::vector<double> empty;
    EXPECT_THROW(eval.evaluate(empty, mech, q), FatalError);
    EXPECT_THROW(eval.evaluateRaw(empty, q), FatalError);
}

TEST(UtilityEvaluator, MaeIsPositiveUnderNoise)
{
    UtilityEvaluator eval(50);
    IdealLaplaceMechanism mech(SensorRange(0.0, 10.0), 0.5, 3);
    MeanQuery q;
    UtilityResult r = eval.evaluate(testData(), mech, q);
    EXPECT_GT(r.mae, 0.0);
    EXPECT_GT(r.mae_std, 0.0);
    EXPECT_EQ(r.reports, 200u * 50u);
    EXPECT_EQ(r.samples_drawn, r.reports);
    EXPECT_DOUBLE_EQ(r.avgSamplesPerReport(), 1.0);
}

TEST(UtilityEvaluator, MeanMaeMatchesTheory)
{
    // Mean of N noised reports has std lambda * sqrt(2 / N); for a
    // half-normal-ish error the MAE is about sqrt(2/pi) of that.
    const int n_entries = 500;
    std::vector<double> data(n_entries, 5.0);
    double eps = 0.5;
    double d = 10.0;
    IdealLaplaceMechanism mech(SensorRange(0.0, d), eps, 9);
    UtilityEvaluator eval(200);
    UtilityResult r = eval.evaluate(data, mech, MeanQuery());

    double lambda = d / eps;
    double std_of_mean = lambda * std::sqrt(2.0 / n_entries);
    double expect_mae = std_of_mean * std::sqrt(2.0 / M_PI);
    EXPECT_NEAR(r.mae, expect_mae, 0.3 * expect_mae);
}

TEST(UtilityEvaluator, SmallerEpsilonMeansWorseUtility)
{
    UtilityEvaluator eval(60);
    auto mae_at = [&](double eps) {
        IdealLaplaceMechanism mech(SensorRange(0.0, 10.0), eps, 4);
        return eval.evaluate(testData(), mech, MeanQuery()).mae;
    };
    EXPECT_GT(mae_at(0.1), mae_at(1.0));
}

TEST(UtilityEvaluator, TracksResamplingCost)
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    ThresholdingMechanism mech(p, 100);
    UtilityEvaluator eval(5);
    UtilityResult r = eval.evaluate(testData(), mech, MeanQuery());
    EXPECT_DOUBLE_EQ(r.avgSamplesPerReport(), 1.0); // thresholding
}

TEST(UtilityEvaluator, RelativeErrorNormalisesByTruth)
{
    UtilityEvaluator eval(20);
    IdealLaplaceMechanism mech(SensorRange(0.0, 10.0), 0.5, 4);
    UtilityResult r = eval.evaluate(testData(), mech, MeanQuery());
    EXPECT_NEAR(r.relative_error, r.mae / std::abs(r.true_value),
                1e-12);
}

} // anonymous namespace
} // namespace ulpdp
