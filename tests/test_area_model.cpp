/**
 * @file
 * Tests for the structural area model.
 */

#include <gtest/gtest.h>

#include "dpbox/area_model.h"

namespace ulpdp {
namespace {

DpBoxConfig
defaultConfig()
{
    DpBoxConfig cfg;
    cfg.frac_bits = 6;
    cfg.word_bits = 20;
    cfg.uniform_bits = 17;
    cfg.threshold_index = 400;
    cfg.cordic_iterations = 32;
    return cfg;
}

TEST(AreaModel, DefaultLandsInSynthesisRegime)
{
    // The paper's 65 nm synthesis reports 10431 gates; a structural
    // estimate from standard NAND2-equivalents must land in the same
    // regime (same order of magnitude, within ~2x).
    DpBoxAreaModel model(defaultConfig());
    EXPECT_GT(model.totalGates(), 5000u);
    EXPECT_LT(model.totalGates(), 25000u);
}

TEST(AreaModel, UnrolledCordicDominates)
{
    // Single-cycle log = one stage per iteration: the area penalty
    // the paper explicitly accepts. It must dominate the breakdown.
    DpBoxAreaModel model(defaultConfig());
    AreaBreakdown b = model.breakdown();
    EXPECT_GT(b.cordic, b.tausworthe);
    EXPECT_GT(b.cordic, b.scaling);
    EXPECT_GT(b.cordic, b.noising + b.registers + b.fsm);
}

TEST(AreaModel, IterativeCordicMuchSmaller)
{
    AreaModelOptions unrolled;
    AreaModelOptions iterative;
    iterative.unrolled_cordic = false;
    DpBoxAreaModel big(defaultConfig(), unrolled);
    DpBoxAreaModel small(defaultConfig(), iterative);
    EXPECT_LT(small.totalGates(), big.totalGates() / 2);
}

TEST(AreaModel, AreaGrowsWithWordLength)
{
    DpBoxConfig narrow = defaultConfig();
    narrow.word_bits = 16;
    DpBoxConfig wide = defaultConfig();
    wide.word_bits = 24;
    EXPECT_LT(DpBoxAreaModel(narrow).totalGates(),
              DpBoxAreaModel(wide).totalGates());
}

TEST(AreaModel, AreaGrowsWithCordicIterations)
{
    DpBoxConfig few = defaultConfig();
    few.cordic_iterations = 16;
    DpBoxConfig many = defaultConfig();
    many.cordic_iterations = 48;
    EXPECT_LT(DpBoxAreaModel(few).totalGates(),
              DpBoxAreaModel(many).totalGates());
}

TEST(AreaModel, BudgetOverheadModest)
{
    // The paper embeds budget control at 11% extra gates; the
    // structural model's overhead must be a comparable single-digit
    // to low-double-digit percentage.
    DpBoxConfig cfg = defaultConfig();
    cfg.budget_enabled = true;
    cfg.segments = {BudgetSegment{0, 0.5}, BudgetSegment{200, 0.8},
                    BudgetSegment{400, 1.0}};
    DpBoxAreaModel model(cfg);
    EXPECT_GT(model.budgetOverhead(), 0.0);
    EXPECT_LT(model.budgetOverhead(), 0.25);
}

TEST(AreaModel, NoBudgetNoBudgetGates)
{
    DpBoxAreaModel model(defaultConfig());
    EXPECT_EQ(model.breakdown().budget, 0u);
    EXPECT_DOUBLE_EQ(model.budgetOverhead(), 0.0);
}

TEST(AreaModel, BreakdownSumsToTotal)
{
    DpBoxConfig cfg = defaultConfig();
    cfg.budget_enabled = true;
    cfg.segments = {BudgetSegment{0, 0.5}, BudgetSegment{400, 1.0}};
    DpBoxAreaModel model(cfg);
    AreaBreakdown b = model.breakdown();
    EXPECT_EQ(b.total(), b.tausworthe + b.cordic + b.scaling +
                             b.noising + b.registers + b.fsm +
                             b.budget);
    EXPECT_EQ(model.totalGates(), b.total());
}

TEST(AreaModel, ToStringListsBlocks)
{
    DpBoxAreaModel model(defaultConfig());
    std::string s = model.breakdown().toString();
    EXPECT_NE(s.find("cordic"), std::string::npos);
    EXPECT_NE(s.find("total"), std::string::npos);
}

} // anonymous namespace
} // namespace ulpdp
