/**
 * @file
 * Tests for the ideal (double-precision) Laplace sampler.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "rng/ideal_laplace.h"

namespace ulpdp {
namespace {

TEST(IdealLaplace, RejectsBadLambda)
{
    EXPECT_THROW(IdealLaplace(0.0), FatalError);
    EXPECT_THROW(IdealLaplace(-1.0), FatalError);
}

TEST(IdealLaplace, PdfShape)
{
    IdealLaplace lap(2.0);
    EXPECT_DOUBLE_EQ(lap.pdf(0.0), 0.25);
    EXPECT_DOUBLE_EQ(lap.pdf(2.0), 0.25 * std::exp(-1.0));
    EXPECT_DOUBLE_EQ(lap.pdf(2.0), lap.pdf(-2.0)); // symmetry
}

TEST(IdealLaplace, CdfProperties)
{
    IdealLaplace lap(1.5);
    EXPECT_DOUBLE_EQ(lap.cdf(0.0), 0.5);
    EXPECT_NEAR(lap.cdf(100.0), 1.0, 1e-12);
    EXPECT_NEAR(lap.cdf(-100.0), 0.0, 1e-12);
    EXPECT_NEAR(lap.cdf(1.5) + lap.cdf(-1.5), 1.0, 1e-12);
}

TEST(IdealLaplace, IcdfInvertsCdf)
{
    IdealLaplace lap(3.0);
    for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99})
        EXPECT_NEAR(lap.cdf(lap.icdf(p)), p, 1e-12) << "p=" << p;
}

TEST(IdealLaplace, IcdfRejectsEndpoints)
{
    IdealLaplace lap(1.0);
    EXPECT_THROW(lap.icdf(0.0), PanicError);
    EXPECT_THROW(lap.icdf(1.0), PanicError);
}

TEST(IdealLaplace, UpperTail)
{
    IdealLaplace lap(2.0);
    EXPECT_DOUBLE_EQ(lap.upperTail(0.0), 0.5);
    EXPECT_DOUBLE_EQ(lap.upperTail(2.0), 0.5 * std::exp(-1.0));
    EXPECT_THROW(lap.upperTail(-1.0), PanicError);
}

TEST(IdealLaplace, SampleMomentsMatchTheory)
{
    // Lap(lambda): mean 0, variance 2 lambda^2.
    double lambda = 4.0;
    IdealLaplace lap(lambda, 99);
    RunningStats stats;
    const int n = 400000;
    for (int i = 0; i < n; ++i)
        stats.add(lap.sample());

    double se_mean = std::sqrt(2.0) * lambda / std::sqrt(n);
    EXPECT_NEAR(stats.mean(), 0.0, 6.0 * se_mean);
    EXPECT_NEAR(stats.variance(), 2.0 * lambda * lambda,
                0.05 * 2.0 * lambda * lambda);
}

TEST(IdealLaplace, SampleTailFrequencyMatchesCdf)
{
    double lambda = 1.0;
    IdealLaplace lap(lambda, 7);
    const int n = 200000;
    int beyond = 0;
    for (int i = 0; i < n; ++i) {
        if (std::abs(lap.sample()) > 2.0)
            ++beyond;
    }
    double expect = std::exp(-2.0); // Pr[|X| > 2 lambda]
    EXPECT_NEAR(static_cast<double>(beyond) / n, expect,
                5.0 * std::sqrt(expect / n));
}

TEST(IdealLaplace, DeterministicPerSeed)
{
    IdealLaplace a(1.0, 5);
    IdealLaplace b(1.0, 5);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(a.sample(), b.sample());
}

} // anonymous namespace
} // namespace ulpdp
