/**
 * @file
 * Tests for the sequential-composition privacy accountant.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/accountant.h"

namespace ulpdp {
namespace {

TEST(Accountant, RejectsBadBudget)
{
    EXPECT_THROW(PrivacyAccountant(0.0), FatalError);
    EXPECT_THROW(PrivacyAccountant(-1.0), FatalError);
}

TEST(Accountant, SpendAccumulates)
{
    PrivacyAccountant acc(2.0);
    EXPECT_TRUE(acc.spend(0.5));
    EXPECT_TRUE(acc.spend(0.5));
    EXPECT_DOUBLE_EQ(acc.spent(), 1.0);
    EXPECT_DOUBLE_EQ(acc.remaining(), 1.0);
    EXPECT_EQ(acc.queries(), 2u);
}

TEST(Accountant, RefusesOverspend)
{
    PrivacyAccountant acc(1.0);
    EXPECT_TRUE(acc.spend(0.7));
    EXPECT_FALSE(acc.spend(0.5));
    // A refused spend records nothing.
    EXPECT_DOUBLE_EQ(acc.spent(), 0.7);
    EXPECT_EQ(acc.queries(), 1u);
    EXPECT_TRUE(acc.spend(0.3));
}

TEST(Accountant, CanSpendPredicts)
{
    PrivacyAccountant acc(1.0);
    EXPECT_TRUE(acc.canSpend(1.0));
    acc.spend(0.6);
    EXPECT_TRUE(acc.canSpend(0.4));
    EXPECT_FALSE(acc.canSpend(0.41));
}

TEST(Accountant, ExactBoundaryAllowed)
{
    PrivacyAccountant acc(1.0);
    EXPECT_TRUE(acc.spend(1.0));
    EXPECT_FALSE(acc.spend(1e-6));
}

TEST(Accountant, ZeroCostAlwaysAllowed)
{
    PrivacyAccountant acc(0.5);
    acc.spend(0.5);
    EXPECT_TRUE(acc.spend(0.0)); // cached replies cost nothing
}

TEST(Accountant, NegativeCostPanics)
{
    PrivacyAccountant acc(1.0);
    EXPECT_THROW(acc.spend(-0.1), PanicError);
}

TEST(Accountant, ResetClears)
{
    PrivacyAccountant acc(1.0);
    acc.spend(0.9);
    acc.reset();
    EXPECT_DOUBLE_EQ(acc.spent(), 0.0);
    EXPECT_EQ(acc.queries(), 0u);
    EXPECT_TRUE(acc.spend(1.0));
}

} // anonymous namespace
} // namespace ulpdp
