/**
 * @file
 * Tests for the fixed-point Laplace RNG pipeline (Fig. 3).
 */

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "rng/fxp_laplace.h"

namespace ulpdp {
namespace {

FxpLaplaceConfig
smallConfig()
{
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = 12;
    cfg.output_bits = 10;
    cfg.delta = 10.0 / 32.0;
    cfg.lambda = 20.0;
    return cfg;
}

TEST(FxpLaplace, RejectsBadConfig)
{
    FxpLaplaceConfig cfg = smallConfig();
    cfg.uniform_bits = 0;
    EXPECT_THROW({ FxpLaplaceRng rng(cfg); }, FatalError);
    cfg = smallConfig();
    cfg.lambda = 0.0;
    EXPECT_THROW({ FxpLaplaceRng rng(cfg); }, FatalError);
    cfg = smallConfig();
    cfg.delta = -1.0;
    EXPECT_THROW({ FxpLaplaceRng rng(cfg); }, FatalError);
}

TEST(FxpLaplace, SampleIsOnGrid)
{
    FxpLaplaceRng rng(smallConfig());
    double delta = rng.quantizer().delta();
    for (int i = 0; i < 10000; ++i) {
        double n = rng.sample();
        double k = n / delta;
        EXPECT_NEAR(k, std::round(k), 1e-9);
    }
}

TEST(FxpLaplace, SupportIsBounded)
{
    FxpLaplaceConfig cfg = smallConfig();
    FxpLaplaceRng rng(cfg);
    // Max magnitude L = lambda * Bu * ln 2 (Section III-A2), capped
    // by the quantizer.
    double l_max = std::min(rng.maxMagnitude(),
                            rng.quantizer().maxValue());
    for (int i = 0; i < 50000; ++i) {
        EXPECT_LE(std::abs(rng.sample()),
                  l_max + cfg.delta / 2.0 + 1e-9);
    }
}

TEST(FxpLaplace, MaxMagnitudeFormula)
{
    FxpLaplaceRng rng(smallConfig());
    EXPECT_DOUBLE_EQ(rng.maxMagnitude(), 20.0 * 12 * std::log(2.0));
}

TEST(FxpLaplace, PipelineDeterministic)
{
    FxpLaplaceRng rng(smallConfig());
    EXPECT_EQ(rng.pipeline(100, 1), rng.pipeline(100, 1));
    EXPECT_EQ(rng.pipeline(100, 1), -rng.pipeline(100, -1));
}

TEST(FxpLaplace, PipelineExtremes)
{
    FxpLaplaceConfig cfg = smallConfig();
    FxpLaplaceRng rng(cfg);
    // u = 1 (m = 2^Bu): magnitude 0.
    EXPECT_EQ(rng.pipeline(uint64_t{1} << cfg.uniform_bits, 1), 0);
    // u = 2^-Bu (m = 1): the largest magnitude, saturated to the
    // quantizer's top index when L exceeds the representable range.
    int64_t k_max = rng.pipeline(1, 1);
    double expect = std::min(
        -cfg.lambda * std::log(std::ldexp(1.0, -cfg.uniform_bits)) /
            cfg.delta,
        static_cast<double>(rng.quantizer().maxIndex()));
    EXPECT_NEAR(static_cast<double>(k_max), expect, 1.0);
}

TEST(FxpLaplace, PipelineMonotoneInU)
{
    // Larger u -> smaller magnitude, so the output index must be
    // non-increasing in m.
    FxpLaplaceConfig cfg = smallConfig();
    FxpLaplaceRng rng(cfg);
    int64_t prev = rng.pipeline(1, 1);
    for (uint64_t m = 2; m <= (uint64_t{1} << cfg.uniform_bits);
         m += 7) {
        int64_t k = rng.pipeline(m, 1);
        EXPECT_LE(k, prev) << "m=" << m;
        prev = k;
    }
}

TEST(FxpLaplace, PipelineRejectsBadInputs)
{
    FxpLaplaceRng rng(smallConfig());
    EXPECT_THROW(rng.pipeline(0, 1), PanicError);
    EXPECT_THROW(rng.pipeline(1, 0), PanicError);
    EXPECT_THROW(rng.pipeline(uint64_t{1} << 20, 1), PanicError);
}

TEST(FxpLaplace, SampleCounterAdvances)
{
    FxpLaplaceRng rng(smallConfig());
    EXPECT_EQ(rng.samplesDrawn(), 0u);
    rng.sample();
    rng.sampleIndex();
    EXPECT_EQ(rng.samplesDrawn(), 2u);
}

TEST(FxpLaplace, MomentsApproximateIdealLaplace)
{
    // In the bulk the FxP RNG matches Lap(lambda): zero mean,
    // variance ~ 2 lambda^2 (Fig. 4(a)).
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = 17;
    cfg.output_bits = 12;
    cfg.delta = 10.0 / 32.0;
    cfg.lambda = 20.0;
    FxpLaplaceRng rng(cfg, 3);

    RunningStats stats;
    const int n = 300000;
    for (int i = 0; i < n; ++i)
        stats.add(rng.sample());

    double var = 2.0 * cfg.lambda * cfg.lambda;
    double se_mean = std::sqrt(var / n);
    EXPECT_NEAR(stats.mean(), 0.0, 6.0 * se_mean);
    EXPECT_NEAR(stats.variance(), var, 0.05 * var);
}

TEST(FxpLaplace, CordicModeCloseToReference)
{
    // The CORDIC datapath may shift samples near bin edges by one
    // LSB; over the full URNG enumeration the two modes must agree
    // almost everywhere.
    FxpLaplaceConfig ref_cfg = smallConfig();
    FxpLaplaceConfig hw_cfg = smallConfig();
    hw_cfg.log_mode = FxpLaplaceConfig::LogMode::Cordic;
    hw_cfg.cordic_iterations = 32;

    FxpLaplaceRng ref(ref_cfg);
    FxpLaplaceRng hw(hw_cfg);

    uint64_t states = uint64_t{1} << ref_cfg.uniform_bits;
    uint64_t mismatches = 0;
    for (uint64_t m = 1; m <= states; ++m) {
        int64_t a = ref.pipeline(m, 1);
        int64_t b = hw.pipeline(m, 1);
        if (a != b) {
            ++mismatches;
            EXPECT_LE(std::abs(a - b), 1) << "m=" << m;
        }
    }
    // Fewer than 0.1% of states may sit exactly on a bin edge.
    EXPECT_LT(mismatches, states / 1000);
}

TEST(FxpLaplace, SignSymmetryEmpirical)
{
    FxpLaplaceRng rng(smallConfig(), 11);
    int64_t pos = 0;
    int64_t neg = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        int64_t k = rng.sampleIndex();
        if (k > 0)
            ++pos;
        else if (k < 0)
            ++neg;
    }
    // Positive and negative halves balanced within 5 sigma.
    double sigma = std::sqrt(static_cast<double>(pos + neg)) / 2.0;
    EXPECT_NEAR(static_cast<double>(pos),
                static_cast<double>(pos + neg) / 2.0, 5.0 * sigma);
}

} // anonymous namespace
} // namespace ulpdp
