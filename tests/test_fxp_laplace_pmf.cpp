/**
 * @file
 * Tests for the exact PMF of the fixed-point Laplace RNG (Eq. 11):
 * the analytic closed form, the enumerated ground truth, and the
 * paper's qualitative claims about the distribution (bounded support,
 * tail gaps, zeroed small probabilities).
 */

#include <cmath>
#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "rng/fxp_laplace_pmf.h"

namespace ulpdp {
namespace {

FxpLaplaceConfig
configOf(int bu, int by, double delta, double lambda)
{
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = bu;
    cfg.output_bits = by;
    cfg.delta = delta;
    cfg.lambda = lambda;
    return cfg;
}

TEST(FxpLaplacePmf, TotalMassIsOneAnalytic)
{
    FxpLaplacePmf pmf(configOf(17, 12, 10.0 / 32.0, 20.0));
    EXPECT_NEAR(pmf.totalMass(), 1.0, 1e-12);
}

TEST(FxpLaplacePmf, TotalMassIsOneEnumerated)
{
    FxpLaplacePmf pmf(configOf(14, 10, 10.0 / 32.0, 20.0),
                      FxpLaplacePmf::Mode::Enumerated);
    EXPECT_NEAR(pmf.totalMass(), 1.0, 1e-12);
}

TEST(FxpLaplacePmf, EnumeratedRejectsHugeBu)
{
    // The segment engine covers the RNG's full width range (<= 32);
    // only the legacy per-state walk keeps the 2^24 affordability cap.
    EXPECT_THROW(FxpLaplacePmf(configOf(33, 12, 0.3, 20.0),
                               FxpLaplacePmf::Mode::Enumerated),
                 FatalError);
    EXPECT_THROW(FxpLaplacePmf(configOf(25, 12, 0.3, 20.0),
                               FxpLaplacePmf::Mode::EnumeratedLegacy),
                 FatalError);
    EXPECT_NO_THROW(FxpLaplacePmf(configOf(25, 12, 0.3, 20.0),
                                  FxpLaplacePmf::Mode::Enumerated));
}

/**
 * The property the segment-rank engine rests on: the Fig. 3 pipeline
 * magnitude is monotone non-increasing in the URNG index, for every
 * log mode and rounding mode. A violation here invalidates the
 * interval-arithmetic enumeration (and the engine's bit-identity
 * test below would be expected to fail with it).
 */
TEST(FxpLaplacePmf, PipelineIsMonotoneInUrngIndex)
{
    for (auto log_mode : {FxpLaplaceConfig::LogMode::Reference,
                          FxpLaplaceConfig::LogMode::Cordic}) {
        for (auto rounding : {FxpLaplaceConfig::Rounding::Nearest,
                              FxpLaplaceConfig::Rounding::Floor}) {
            FxpLaplaceConfig cfg =
                configOf(12, 12, 10.0 / 32.0, 20.0);
            cfg.log_mode = log_mode;
            cfg.rounding = rounding;
            FxpLaplaceRng rng(cfg);
            int64_t prev = rng.pipeline(1, 1);
            for (uint64_t m = 2; m <= (uint64_t{1} << 12); ++m) {
                int64_t k = rng.pipeline(m, 1);
                ASSERT_LE(k, prev)
                    << "m=" << m << " log=" << static_cast<int>(log_mode)
                    << " rounding=" << static_cast<int>(rounding);
                prev = k;
            }
        }
    }
}

/**
 * The segment-rank engine must reproduce the per-state walk exactly
 * -- every bin count, every tail sum -- across widths, log modes,
 * rounding modes and scales. This is the cross-check that lets the
 * fast engine replace the walk in certification.
 */
TEST(FxpLaplacePmf, SegmentEngineBitIdenticalToLegacyWalk)
{
    for (int bu : {8, 10, 12}) {
        for (double lambda : {20.0, 40.0, 26.0}) {
            for (auto log_mode : {FxpLaplaceConfig::LogMode::Reference,
                                  FxpLaplaceConfig::LogMode::Cordic}) {
                for (auto rounding :
                     {FxpLaplaceConfig::Rounding::Nearest,
                      FxpLaplaceConfig::Rounding::Floor}) {
                    FxpLaplaceConfig cfg =
                        configOf(bu, 12, 10.0 / 32.0, lambda);
                    cfg.log_mode = log_mode;
                    cfg.rounding = rounding;
                    FxpLaplacePmf fast(
                        cfg, FxpLaplacePmf::Mode::Enumerated);
                    FxpLaplacePmf legacy(
                        cfg, FxpLaplacePmf::Mode::EnumeratedLegacy);
                    ASSERT_EQ(fast.maxIndex(), legacy.maxIndex())
                        << "Bu=" << bu << " lambda=" << lambda;
                    for (int64_t k = 0; k <= fast.maxIndex() + 2;
                         ++k) {
                        ASSERT_EQ(fast.magnitudeCount(k),
                                  legacy.magnitudeCount(k))
                            << "Bu=" << bu << " lambda=" << lambda
                            << " k=" << k;
                    }
                    for (int64_t k = 1; k <= fast.maxIndex() + 2;
                         ++k) {
                        ASSERT_EQ(fast.tailMass(k),
                                  legacy.tailMass(k))
                            << "Bu=" << bu << " k=" << k;
                    }
                }
            }
        }
    }
}

TEST(FxpLaplacePmf, EnumeratedCountsSumExactlyToStateSpace)
{
    // uint64 accounting admits no slack: the per-bin counts sum to
    // exactly 2^Bu, tested as integer equality, including at widths
    // the legacy walk could never afford.
    for (int bu : {8, 12, 16, 20, 24, 28, 32}) {
        FxpLaplacePmf fast(configOf(bu, 14, 2.5, 80.0),
                           FxpLaplacePmf::Mode::Enumerated);
        EXPECT_EQ(fast.totalCount(), uint64_t{1} << bu)
            << "Bu=" << bu;
    }
    FxpLaplacePmf legacy(configOf(12, 14, 2.5, 80.0),
                         FxpLaplacePmf::Mode::EnumeratedLegacy);
    EXPECT_EQ(legacy.totalCount(), uint64_t{1} << 12);
}

TEST(FxpLaplacePmf, SharedCacheMemoizesPerConfigAndMode)
{
    FxpLaplacePmf::clearSharedCache();
    FxpLaplaceConfig cfg = configOf(12, 12, 0.3125, 20.0);
    auto a = FxpLaplacePmf::shared(cfg,
                                   FxpLaplacePmf::Mode::Enumerated);
    auto b = FxpLaplacePmf::shared(cfg,
                                   FxpLaplacePmf::Mode::Enumerated);
    EXPECT_EQ(a.get(), b.get()); // one object per configuration

    auto analytic = FxpLaplacePmf::shared(
        cfg, FxpLaplacePmf::Mode::Analytic);
    EXPECT_NE(a.get(), analytic.get()); // mode is part of the key

    FxpLaplaceConfig other = cfg;
    other.lambda = 21.0;
    auto c = FxpLaplacePmf::shared(other,
                                   FxpLaplacePmf::Mode::Enumerated);
    EXPECT_NE(a.get(), c.get());

    FxpLaplacePmf::clearSharedCache();
    auto d = FxpLaplacePmf::shared(cfg,
                                   FxpLaplacePmf::Mode::Enumerated);
    EXPECT_NE(a.get(), d.get()); // cache was dropped
    // The old shared_ptr stays valid -- the cache holds strong refs,
    // clearing only unpins them.
    EXPECT_EQ(a->magnitudeCount(0), d->magnitudeCount(0));
    FxpLaplacePmf::clearSharedCache();
}

/**
 * The central test of Eq. (11): the closed form must reproduce the
 * enumerated pipeline count in (almost) every bin. Floating-point
 * boundary rounding can shift a single URNG state between adjacent
 * bins, so per-bin counts may differ by at most 1 and the total
 * number of shifted states must be tiny.
 */
class PmfAgreement
    : public ::testing::TestWithParam<
          std::tuple<int, int, double, double>>
{
};

TEST_P(PmfAgreement, AnalyticMatchesEnumerated)
{
    auto [bu, by, delta, lambda] = GetParam();
    FxpLaplaceConfig cfg = configOf(bu, by, delta, lambda);
    FxpLaplacePmf analytic(cfg, FxpLaplacePmf::Mode::Analytic);
    FxpLaplacePmf enumerated(cfg, FxpLaplacePmf::Mode::Enumerated);

    EXPECT_EQ(analytic.maxIndex(), enumerated.maxIndex());

    uint64_t total_diff = 0;
    for (int64_t k = 0; k <= analytic.maxIndex(); ++k) {
        uint64_t a = analytic.magnitudeCount(k);
        uint64_t e = enumerated.magnitudeCount(k);
        uint64_t diff = a > e ? a - e : e - a;
        EXPECT_LE(diff, 1u) << "k=" << k;
        total_diff += diff;
    }
    EXPECT_LE(total_diff, (uint64_t{1} << bu) / 1000 + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PmfAgreement,
    ::testing::Values(
        std::make_tuple(12, 12, 10.0 / 32.0, 20.0), // paper-style
        std::make_tuple(14, 12, 10.0 / 32.0, 20.0),
        std::make_tuple(16, 12, 10.0 / 32.0, 20.0),
        std::make_tuple(12, 12, 10.0 / 32.0, 10.0), // eps = 1
        std::make_tuple(12, 12, 10.0 / 64.0, 20.0), // finer grid
        std::make_tuple(10, 12, 1.0, 5.0),          // coarse
        std::make_tuple(14, 12, 0.01, 2.0),         // near-continuous
        // Saturating: L = 20 * 14 * ln2 / 0.3125 = 621 exceeds the
        // 8-bit quantizer's top index 127, exercising the saturation
        // branch of Eq. (11).
        std::make_tuple(14, 8, 10.0 / 32.0, 20.0)));

/**
 * Floor rounding (the discrete-Laplace pipeline): the Eq. (11)
 * boundary shift from (k -+ 1/2) to (k, k + 1) must keep the closed
 * form aligned with the enumerated pipeline, same discipline as the
 * round-to-nearest agreement sweep above.
 */
TEST(FxpLaplacePmf, FloorRoundingAnalyticMatchesEnumerated)
{
    for (auto [bu, by, delta, lambda] :
         {std::make_tuple(12, 12, 10.0 / 32.0, 20.0),
          std::make_tuple(14, 12, 10.0 / 32.0, 20.0),
          std::make_tuple(10, 12, 1.0, 5.0),
          std::make_tuple(14, 8, 10.0 / 32.0, 20.0)}) { // saturating
        FxpLaplaceConfig cfg = configOf(bu, by, delta, lambda);
        cfg.rounding = FxpLaplaceConfig::Rounding::Floor;
        FxpLaplacePmf analytic(cfg, FxpLaplacePmf::Mode::Analytic);
        FxpLaplacePmf enumerated(cfg, FxpLaplacePmf::Mode::Enumerated);

        ASSERT_EQ(analytic.maxIndex(), enumerated.maxIndex());
        uint64_t total_diff = 0;
        for (int64_t k = 0; k <= analytic.maxIndex(); ++k) {
            uint64_t a = analytic.magnitudeCount(k);
            uint64_t e = enumerated.magnitudeCount(k);
            uint64_t diff = a > e ? a - e : e - a;
            EXPECT_LE(diff, 1u) << "Bu=" << bu << " k=" << k;
            total_diff += diff;
        }
        EXPECT_LE(total_diff, (uint64_t{1} << bu) / 1000 + 2)
            << "Bu=" << bu;
        EXPECT_NEAR(analytic.totalMass(), 1.0, 1e-12);
        EXPECT_NEAR(enumerated.totalMass(), 1.0, 1e-12);
    }
}

/**
 * Floor magnitudes follow the two-sided geometric law: consecutive
 * interior bins decay by e^{-Delta/lambda} wherever the counts are
 * large enough for the integer rounding to be negligible.
 */
TEST(FxpLaplacePmf, FloorRoundingIsGeometric)
{
    FxpLaplaceConfig cfg = configOf(17, 12, 10.0 / 32.0, 20.0);
    cfg.rounding = FxpLaplaceConfig::Rounding::Floor;
    FxpLaplacePmf pmf(cfg);
    const double ratio = std::exp(-cfg.delta / cfg.lambda);
    for (int64_t k = 0; k < 20; ++k) {
        double c0 = static_cast<double>(pmf.magnitudeCount(k));
        double c1 = static_cast<double>(pmf.magnitudeCount(k + 1));
        ASSERT_GT(c0, 1000.0);
        EXPECT_NEAR(c1 / c0, ratio, 2.0 / 1000.0) << "k=" << k;
    }
}

TEST(FxpLaplacePmf, SupportBoundMatchesFormula)
{
    // max index ~ lambda * Bu * ln 2 / Delta (when the quantizer does
    // not saturate first).
    FxpLaplaceConfig cfg = configOf(17, 12, 10.0 / 32.0, 20.0);
    FxpLaplacePmf pmf(cfg);
    double l = cfg.lambda * cfg.uniform_bits * std::log(2.0);
    EXPECT_NEAR(static_cast<double>(pmf.maxIndex()), l / cfg.delta,
                1.0);
}

TEST(FxpLaplacePmf, TailHasInteriorGaps)
{
    // Fig. 4(b): near the tail the FxP RNG cannot generate all noise
    // values; some bins in the interior of the support are empty.
    FxpLaplacePmf pmf(configOf(17, 12, 10.0 / 32.0, 20.0));
    int64_t gap = pmf.firstInteriorGap();
    EXPECT_GT(gap, 0);
    EXPECT_LT(gap, pmf.maxIndex());
}

TEST(FxpLaplacePmf, NoGapsWhenResolutionIsCoarse)
{
    // With a coarse step relative to lambda (Delta/lambda ~ 1) every
    // bin down to the support edge collects at least one URNG state:
    // no interior gaps.
    FxpLaplacePmf pmf(configOf(17, 6, 5.0, 5.0));
    EXPECT_EQ(pmf.firstInteriorGap(), -1);
}

TEST(FxpLaplacePmf, ProbabilitiesAreMultiplesOfResolution)
{
    // Eq. (11): every probability is a multiple of 2^-(Bu+1).
    FxpLaplaceConfig cfg = configOf(12, 10, 10.0 / 32.0, 20.0);
    FxpLaplacePmf pmf(cfg);
    double unit = std::ldexp(1.0, -(cfg.uniform_bits + 1));
    for (int64_t k = 1; k <= pmf.maxIndex(); ++k) {
        double p = pmf.pmf(k);
        double mult = p / unit;
        EXPECT_NEAR(mult, std::round(mult), 1e-9) << "k=" << k;
    }
}

TEST(FxpLaplacePmf, SymmetricInSign)
{
    FxpLaplacePmf pmf(configOf(12, 10, 0.3125, 20.0));
    for (int64_t k = 1; k <= pmf.maxIndex(); k += 3)
        EXPECT_DOUBLE_EQ(pmf.pmf(k), pmf.pmf(-k));
}

TEST(FxpLaplacePmf, MatchesIdealLaplaceInBulk)
{
    // Fig. 4(a): in the high-density region the discrete PMF over a
    // bin approximates the ideal density times the bin width.
    FxpLaplaceConfig cfg = configOf(17, 12, 10.0 / 32.0, 20.0);
    FxpLaplacePmf pmf(cfg);
    for (int64_t k = 0; k <= 100; k += 10) {
        double x = static_cast<double>(k) * cfg.delta;
        double ideal = std::exp(-x / cfg.lambda) /
                       (2.0 * cfg.lambda) * cfg.delta;
        if (k == 0)
            ideal *= 1.0; // center bin also width Delta
        EXPECT_NEAR(pmf.pmf(k), ideal, 0.02 * ideal + 1e-7)
            << "k=" << k;
    }
}

TEST(FxpLaplacePmf, TailMassMatchesPaperFormula)
{
    // Pr[n >= k Delta] = floor(m1(k)) / 2^(Bu+1).
    FxpLaplaceConfig cfg = configOf(12, 10, 0.3125, 20.0);
    FxpLaplacePmf pmf(cfg);
    for (int64_t k : {int64_t{1}, int64_t{10}, int64_t{50},
                      int64_t{200}}) {
        double expect = std::floor(std::min(
                            pmf.m1(k), std::ldexp(1.0, 12))) /
                        std::ldexp(1.0, 13);
        EXPECT_DOUBLE_EQ(pmf.tailMass(k), std::max(expect, 0.0))
            << "k=" << k;
    }
}

TEST(FxpLaplacePmf, TailMassTelescopesFromPmf)
{
    FxpLaplacePmf pmf(configOf(12, 10, 0.3125, 20.0),
                      FxpLaplacePmf::Mode::Enumerated);
    for (int64_t k : {int64_t{1}, int64_t{7}, int64_t{100}}) {
        double sum = 0.0;
        for (int64_t j = k; j <= pmf.maxIndex(); ++j)
            sum += pmf.pmf(j);
        EXPECT_NEAR(pmf.tailMass(k), sum, 1e-12) << "k=" << k;
    }
}

TEST(FxpLaplacePmf, UpperMassCoversWholeLine)
{
    FxpLaplacePmf pmf(configOf(12, 10, 0.3125, 20.0));
    EXPECT_NEAR(pmf.upperMass(-pmf.maxIndex() - 1), 1.0, 1e-12);
    EXPECT_NEAR(pmf.upperMass(pmf.maxIndex() + 1), 0.0, 1e-12);
    // Decomposition: Pr[n >= 0] + Pr[n <= -1] = 1.
    EXPECT_NEAR(pmf.upperMass(0) + pmf.tailMass(1), 1.0, 1e-12);
}

TEST(FxpLaplacePmf, UpperMassMonotoneNonIncreasing)
{
    FxpLaplacePmf pmf(configOf(12, 10, 0.3125, 20.0));
    double prev = 1.0;
    for (int64_t k = -pmf.maxIndex(); k <= pmf.maxIndex(); k += 5) {
        double m = pmf.upperMass(k);
        EXPECT_LE(m, prev + 1e-12) << "k=" << k;
        prev = m;
    }
}

TEST(FxpLaplacePmf, EmpiricalHistogramMatchesPmf)
{
    // Sample the actual RNG and compare frequencies against the
    // enumerated PMF: total variation distance should be small.
    FxpLaplaceConfig cfg = configOf(12, 10, 0.3125, 20.0);
    FxpLaplacePmf pmf(cfg, FxpLaplacePmf::Mode::Enumerated);
    FxpLaplaceRng rng(cfg, 77);

    std::map<int64_t, uint64_t> counts;
    const int n = 500000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.sampleIndex()];

    double tv = 0.0;
    for (int64_t k = -pmf.maxIndex(); k <= pmf.maxIndex(); ++k) {
        double emp = counts.count(k)
            ? static_cast<double>(counts[k]) / n
            : 0.0;
        tv += std::abs(emp - pmf.pmf(k));
    }
    tv /= 2.0;
    EXPECT_LT(tv, 0.02);
}

} // anonymous namespace
} // namespace ulpdp
