/**
 * @file
 * Unit tests for the binned histogram.
 */

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/logging.h"

namespace ulpdp {
namespace {

TEST(Histogram, RejectsBadRangeAndBins)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 10), FatalError);
    EXPECT_THROW(Histogram(2.0, 1.0, 10), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Histogram, BinsCountCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);  // bin 0
    h.add(1.5);  // bin 1
    h.add(1.6);  // bin 1
    h.add(9.99); // bin 9
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UpperEdgeBelongsToLastBin)
{
    Histogram h(0.0, 10.0, 10);
    h.add(10.0);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderAndOverflowTracked)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.1);
    h.add(0.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinCentersAndWidth)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binWidth(), 2.0);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(Histogram, DensityIntegratesToCoveredMass)
{
    Histogram h(0.0, 1.0, 4);
    for (int i = 0; i < 100; ++i)
        h.add(0.125); // all in bin 0
    double integral = 0.0;
    for (size_t i = 0; i < h.numBins(); ++i)
        integral += h.density(i) * h.binWidth();
    EXPECT_DOUBLE_EQ(integral, 1.0);
    EXPECT_DOUBLE_EQ(h.mass(0), 1.0);
}

TEST(Histogram, AddAllMatchesLoop)
{
    Histogram a(0.0, 1.0, 2);
    Histogram b(0.0, 1.0, 2);
    std::vector<double> xs{0.1, 0.2, 0.7, 0.9};
    a.addAll(xs);
    for (double x : xs)
        b.add(x);
    EXPECT_EQ(a.count(0), b.count(0));
    EXPECT_EQ(a.count(1), b.count(1));
}

TEST(Histogram, WeightedAddMatchesLoopAndCrossesFourBillion)
{
    Histogram looped(0.0, 1.0, 4);
    for (int i = 0; i < 500; ++i)
        looped.add(0.3);
    Histogram weighted(0.0, 1.0, 4);
    weighted.add(0.3, 500);
    EXPECT_EQ(weighted.count(1), looped.count(1));
    EXPECT_EQ(weighted.total(), looped.total());

    // Sketch-slot folds at 1e7-node populations push single bins past
    // uint32; counters must be 64-bit end to end.
    Histogram big(0.0, 1.0, 4);
    big.add(0.3, (uint64_t{1} << 32) + 7);
    big.add(-1.0, uint64_t{1} << 32); // weighted underflow
    big.add(2.0, 3);                  // weighted overflow
    EXPECT_EQ(big.count(1), (uint64_t{1} << 32) + 7);
    EXPECT_EQ(big.underflow(), uint64_t{1} << 32);
    EXPECT_EQ(big.overflow(), 3u);
    EXPECT_EQ(big.total(), (uint64_t{1} << 33) + 10);
}

TEST(Histogram, AsciiRenderingHasOneRowPerBin)
{
    Histogram h(0.0, 1.0, 3);
    h.add(0.1);
    std::string art = h.toAscii(10);
    size_t rows = 0;
    for (char c : art) {
        if (c == '\n')
            ++rows;
    }
    EXPECT_EQ(rows, 3u);
}

} // anonymous namespace
} // namespace ulpdp
