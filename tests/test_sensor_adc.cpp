/**
 * @file
 * Tests for the ADC front-end model and its integration with the
 * noising pipeline.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/thresholding_mechanism.h"
#include "sim/sensor_adc.h"

namespace ulpdp {
namespace {

TEST(SensorAdc, RejectsBadBits)
{
    SensorRange r(0.0, 1.0);
    EXPECT_THROW(SensorAdc(r, 1), FatalError);
    EXPECT_THROW(SensorAdc(r, 17), FatalError);
}

TEST(SensorAdc, BasicProperties)
{
    SensorAdc adc(SensorRange(0.0, 10.0), 10);
    EXPECT_EQ(adc.bits(), 10);
    EXPECT_EQ(adc.levels(), 1024u);
    EXPECT_DOUBLE_EQ(adc.lsb(), 10.0 / 1024.0);
}

TEST(SensorAdc, CodesCoverRangeMonotonically)
{
    SensorAdc adc(SensorRange(0.0, 10.0), 8);
    EXPECT_EQ(adc.convert(0.0), 0u);
    EXPECT_EQ(adc.convert(10.0), 255u);
    uint32_t prev = 0;
    for (double x = 0.0; x <= 10.0; x += 0.01) {
        uint32_t code = adc.convert(x);
        EXPECT_GE(code, prev);
        prev = code;
    }
}

TEST(SensorAdc, ClipsOutOfRange)
{
    SensorAdc adc(SensorRange(-5.0, 5.0), 8);
    EXPECT_EQ(adc.convert(-100.0), 0u);
    EXPECT_EQ(adc.convert(100.0), 255u);
}

TEST(SensorAdc, QuantizationErrorBoundedByHalfLsb)
{
    SensorAdc adc(SensorRange(94.0, 200.0), 13);
    for (double x = 94.0; x <= 200.0; x += 0.37) {
        EXPECT_LE(std::abs(adc.sample(x) - x),
                  adc.lsb() / 2.0 + 1e-12)
            << "x=" << x;
    }
}

TEST(SensorAdc, ReconstructRejectsBadCode)
{
    SensorAdc adc(SensorRange(0.0, 1.0), 4);
    EXPECT_THROW(adc.reconstruct(16), PanicError);
}

TEST(SensorAdc, ReconstructedValuesStayInRange)
{
    SensorAdc adc(SensorRange(0.0, 1.0), 6);
    for (uint32_t c = 0; c < adc.levels(); ++c) {
        double v = adc.reconstruct(c);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(SensorAdc, EndToEndThroughNoising)
{
    // Physical signal -> 13-bit ADC -> LDP mechanism: the mean of
    // many reports recovers the (quantized) signal.
    SensorRange range(0.0, 10.0);
    SensorAdc adc(range, 13);

    FxpMechanismParams p;
    p.range = range;
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    ThresholdingMechanism mech(p, 200);

    double physical = 7.321;
    double digital = adc.sample(physical);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += mech.noise(digital).value;
    EXPECT_NEAR(sum / n, physical, 0.3);
}

} // anonymous namespace
} // namespace ulpdp
