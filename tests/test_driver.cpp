/**
 * @file
 * Tests for the host-side DP-Box driver.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "dpbox/driver.h"

namespace ulpdp {
namespace {

DpBoxConfig
driverConfig()
{
    DpBoxConfig cfg;
    cfg.frac_bits = 6;
    cfg.word_bits = 20;
    cfg.uniform_bits = 17;
    cfg.threshold_index = 600;
    cfg.thresholding = true;
    return cfg;
}

TEST(DpBoxDriver, FullFlowProducesNoisedValues)
{
    DpBoxDriver drv(driverConfig());
    drv.initialize(5.0, 0);
    drv.configure(0.5, SensorRange(0.0, 10.0));

    RunningStats stats;
    for (int i = 0; i < 20000; ++i) {
        DpBoxResult r = drv.noise(5.0);
        stats.add(r.value);
        EXPECT_GE(r.latency_cycles, 2u);
    }
    EXPECT_NEAR(stats.mean(), 5.0, 0.8);
    EXPECT_GT(stats.stddev(), 5.0); // lambda = 20 noise is wide
}

TEST(DpBoxDriver, RequiresInitializeFirst)
{
    DpBoxDriver drv(driverConfig());
    EXPECT_THROW(drv.configure(0.5, SensorRange(0.0, 1.0)),
                 FatalError);
    DpBoxDriver drv2(driverConfig());
    EXPECT_THROW(drv2.noise(0.5), FatalError);
}

TEST(DpBoxDriver, InitializeOnlyOnce)
{
    DpBoxDriver drv(driverConfig());
    drv.initialize(5.0, 0);
    EXPECT_THROW(drv.initialize(5.0, 0), FatalError);
}

TEST(DpBoxDriver, NoiseRequiresConfigure)
{
    // Initialized but never configured: the range registers are
    // still zero, so noising must be refused, not produce garbage.
    DpBoxDriver drv(driverConfig());
    drv.initialize(5.0, 0);
    EXPECT_THROW(drv.noise(0.5), FatalError);
}

TEST(DpBoxDriver, RejectsNonPositiveBudget)
{
    setLoggingEnabled(false);
    EXPECT_THROW(DpBoxDriver(driverConfig()).initialize(0.0, 0),
                 FatalError);
    EXPECT_THROW(DpBoxDriver(driverConfig()).initialize(-1.0, 0),
                 FatalError);
    EXPECT_THROW(
        DpBoxDriver(driverConfig())
            .initialize(std::nan(""), 0),
        FatalError);
    setLoggingEnabled(true);
}

TEST(DpBoxDriver, RejectsNonPositiveEpsilon)
{
    DpBoxDriver drv(driverConfig());
    drv.initialize(5.0, 0);
    setLoggingEnabled(false);
    EXPECT_THROW(drv.configure(0.0, SensorRange(0.0, 1.0)),
                 FatalError);
    EXPECT_THROW(drv.configure(-0.5, SensorRange(0.0, 1.0)),
                 FatalError);
    setLoggingEnabled(true);
}

TEST(DpBoxDriver, CountsEpsilonRoundingWarnings)
{
    DpBoxDriver drv(driverConfig());
    drv.initialize(5.0, 0);
    setLoggingEnabled(false);
    uint64_t warned_before = warningCount();
    drv.configure(0.25, SensorRange(0.0, 10.0)); // exact, no warning
    EXPECT_EQ(drv.epsilonRoundingWarnings(), 0u);
    drv.configure(0.4, SensorRange(0.0, 10.0)); // rounds to 0.5
    drv.configure(0.3, SensorRange(0.0, 10.0)); // rounds to 0.25
    setLoggingEnabled(true);
    EXPECT_EQ(drv.epsilonRoundingWarnings(), 2u);
    // Each counted rounding also went through common/logging, even
    // with output disabled.
    EXPECT_GE(warningCount() - warned_before, 2u);
    EXPECT_EQ(drv.faultStats().epsilon_rounding_warnings, 2u);
}

TEST(DpBoxDriver, EpsilonRoundsToPowerOfTwo)
{
    DpBoxDriver drv(driverConfig());
    drv.initialize(5.0, 0);
    setLoggingEnabled(false);
    drv.configure(0.4, SensorRange(0.0, 10.0)); // -> 2^-1 = 0.5
    setLoggingEnabled(true);
    EXPECT_DOUBLE_EQ(drv.effectiveEpsilon(), 0.5);
}

TEST(DpBoxDriver, ExactPowerOfTwoKept)
{
    DpBoxDriver drv(driverConfig());
    drv.initialize(5.0, 0);
    drv.configure(0.25, SensorRange(0.0, 10.0));
    EXPECT_DOUBLE_EQ(drv.effectiveEpsilon(), 0.25);
}

TEST(DpBoxDriver, ThresholdingLatencyIsConstantTwo)
{
    DpBoxDriver drv(driverConfig());
    drv.initialize(5.0, 0);
    drv.configure(0.5, SensorRange(0.0, 10.0));
    drv.setThresholding(true);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(drv.noise(3.0).latency_cycles, 2u);
}

TEST(DpBoxDriver, ResamplingLatencyVaries)
{
    DpBoxConfig cfg = driverConfig();
    cfg.thresholding = false;
    cfg.threshold_index = 60; // tight
    DpBoxDriver drv(cfg);
    drv.initialize(5.0, 0);
    drv.configure(0.5, SensorRange(0.0, 10.0));

    uint64_t max_latency = 0;
    for (int i = 0; i < 3000; ++i)
        max_latency = std::max(max_latency,
                               drv.noise(5.0).latency_cycles);
    EXPECT_GT(max_latency, 2u);
}

TEST(DpBoxDriver, SetThresholdingSwitchesMode)
{
    DpBoxDriver drv(driverConfig());
    drv.initialize(5.0, 0);
    drv.configure(0.5, SensorRange(0.0, 10.0));
    drv.setThresholding(false);
    EXPECT_FALSE(drv.device().thresholdingMode());
    drv.setThresholding(false); // idempotent
    EXPECT_FALSE(drv.device().thresholdingMode());
    drv.setThresholding(true);
    EXPECT_TRUE(drv.device().thresholdingMode());
}

TEST(DpBoxDriver, OutputsWithinClampWindow)
{
    DpBoxDriver drv(driverConfig());
    drv.initialize(5.0, 0);
    drv.configure(0.5, SensorRange(0.0, 10.0));
    double ext = 600.0 * drv.device().lsb();
    for (int i = 0; i < 5000; ++i) {
        double y = drv.noise(0.0).value;
        EXPECT_GE(y, -ext - 1e-9);
        EXPECT_LE(y, 10.0 + ext + 1e-9);
    }
}

} // anonymous namespace
} // namespace ulpdp
