/**
 * @file
 * Tests for the serial sensor bus timing model.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/sensor_bus.h"

namespace ulpdp {
namespace {

TEST(SensorBus, RejectsBadClocks)
{
    EXPECT_THROW(SensorBus(0.0, 1.0), FatalError);
    EXPECT_THROW(SensorBus(1e6, 0.0), FatalError);
    EXPECT_THROW(SensorBus(1e5, 1e6), FatalError); // bus > core
}

TEST(SensorBus, FramingBits)
{
    SensorBus bus(16e6, 400e3);
    // START + addr(8) + ACK + N*(8+1) + STOP
    EXPECT_EQ(bus.transferBits(1), 1u + 9u + 9u + 1u);
    EXPECT_EQ(bus.transferBits(2), 1u + 9u + 18u + 1u);
}

TEST(SensorBus, CyclesScaleWithClockRatio)
{
    SensorBus fast(16e6, 400e3);  // 40 cycles/bit
    SensorBus slow(16e6, 100e3);  // 160 cycles/bit
    EXPECT_DOUBLE_EQ(fast.cyclesPerBit(), 40.0);
    EXPECT_EQ(slow.readCycles(1), 4u * fast.readCycles(1));
}

TEST(SensorBus, PaperContextTensOfCyclesOrMore)
{
    // Section V: sensors take 10s of cycles to access. A 13-bit
    // sample over 400 kHz I2C from a 16 MHz core costs hundreds of
    // core cycles -- far above the DP-Box's 2-cycle noising.
    SensorBus bus(16e6, 400e3);
    uint64_t cycles = bus.sampleCycles(13);
    EXPECT_GT(cycles, 100u);
    EXPECT_LT(cycles, 10000u);
    EXPECT_GT(cycles, 2u * 50); // noising is noise-level overhead
}

TEST(SensorBus, SampleRoundsUpToBytes)
{
    SensorBus bus(16e6, 400e3);
    EXPECT_EQ(bus.sampleCycles(8), bus.readCycles(1));
    EXPECT_EQ(bus.sampleCycles(9), bus.readCycles(2));
    EXPECT_EQ(bus.sampleCycles(13), bus.readCycles(2));
    EXPECT_EQ(bus.sampleCycles(16), bus.readCycles(2));
}

TEST(SensorBus, RejectsBadSensorBits)
{
    SensorBus bus(16e6, 400e3);
    EXPECT_THROW(bus.sampleCycles(0), PanicError);
    EXPECT_THROW(bus.sampleCycles(33), PanicError);
}

} // anonymous namespace
} // namespace ulpdp
