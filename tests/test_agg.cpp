/**
 * @file
 * Tests for the streaming aggregation layer (src/agg): sketch merge
 * algebra (associative, commutative, partition-independent), the
 * deterministic heavy-hitter scan, quantile grid exactness, the
 * channel-inversion frequency decoder (including the thresholding
 * boundary-mass correction), and the fleet integration's bit-identity
 * contract across thread counts and batch/scalar paths.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "agg/decode.h"
#include "agg/sketch.h"
#include "agg/stream.h"
#include "core/kary_randomized_response.h"
#include "core/output_model.h"
#include "core/threshold_calc.h"
#include "fleet/fleet.h"

namespace ulpdp {
namespace {

uint64_t
bits(double v)
{
    uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (bits(a[i]) != bits(b[i]))
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Count-min sketch
// ---------------------------------------------------------------------

TEST(AggSketch, CountMinNeverUndercounts)
{
    agg::CountMinSketch cm(4, 8);
    // 1000 items with true count = item index + 1.
    uint64_t total = 0;
    for (uint64_t item = 0; item < 1000; ++item) {
        cm.add(item, item + 1);
        total += item + 1;
    }
    EXPECT_EQ(cm.total(), total);
    for (uint64_t item = 0; item < 1000; ++item)
        EXPECT_GE(cm.estimate(item), item + 1);
    // The overcount bound: min over rows <= true + total / width is
    // a probabilistic statement per row; the deterministic guarantee
    // tested here is one-sidedness only.
}

TEST(AggSketch, CountMinExactWhenSparse)
{
    // Far fewer live items than counters per row: with 4 rows the
    // chance of a same-slot collision in every row is negligible, and
    // this fixed seed has none -- estimates are exact.
    agg::CountMinSketch cm(4, 12);
    for (uint64_t item = 0; item < 16; ++item)
        cm.add(item, 100 + item);
    for (uint64_t item = 0; item < 16; ++item)
        EXPECT_EQ(cm.estimate(item), 100 + item);
    EXPECT_EQ(cm.estimate(999), 0u);
}

TEST(AggSketch, CountMinMergeIsPartitionAndOrderIndependent)
{
    // One reference sketch ingests the whole stream; three shards
    // split it arbitrarily. Any merge order must reproduce the
    // reference counters byte for byte.
    const uint32_t depth = 4, width_log2 = 6;
    agg::CountMinSketch whole(depth, width_log2);
    agg::CountMinSketch s0(depth, width_log2);
    agg::CountMinSketch s1(depth, width_log2);
    agg::CountMinSketch s2(depth, width_log2);
    for (uint64_t i = 0; i < 3000; ++i) {
        uint64_t item = (i * 2654435761ULL) % 97;
        whole.add(item);
        (i % 3 == 0 ? s0 : i % 3 == 1 ? s1 : s2).add(item);
    }

    // Order A: ((s0 + s1) + s2); order B: (s2 + (s1 + s0)) built by
    // merging into different accumulators.
    agg::CountMinSketch a = s0;
    a.merge(s1);
    a.merge(s2);
    agg::CountMinSketch b = s2;
    b.merge(s1);
    b.merge(s0);

    EXPECT_EQ(a.counters(), whole.counters());
    EXPECT_EQ(b.counters(), whole.counters());
    EXPECT_EQ(a.total(), whole.total());
    EXPECT_EQ(b.total(), whole.total());
}

TEST(AggSketch, TopKRanksByEstimateThenItem)
{
    // Sparse sketch => estimates exact; counts force a tie between
    // items 5 and 9 that must break toward the smaller item id.
    agg::CountMinSketch cm(4, 12);
    cm.add(3, 50);
    cm.add(5, 20);
    cm.add(9, 20);
    cm.add(7, 10);

    auto top = agg::topK(cm, 16, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].item, 3u);
    EXPECT_EQ(top[0].estimate, 50u);
    EXPECT_EQ(top[1].item, 5u);
    EXPECT_EQ(top[1].estimate, 20u);
    EXPECT_EQ(top[2].item, 9u);
    EXPECT_EQ(top[2].estimate, 20u);
}

TEST(AggSketch, TopKSkipsZeroEstimatesAndCapsAtDomain)
{
    agg::CountMinSketch cm(2, 10);
    cm.add(1, 7);
    auto top = agg::topK(cm, 64, 8);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].item, 1u);
}

// ---------------------------------------------------------------------
// Quantile sketch
// ---------------------------------------------------------------------

TEST(AggSketch, QuantileExactOnBucketGrid)
{
    // 10 unit buckets over [0, 10]; mass at bucket centers via
    // addBucket. 100 samples in bucket 2, 100 in bucket 7: the median
    // must land inside bucket 2..7's CDF crossing, interpolated.
    agg::QuantileSketch qs(0.0, 10.0, 10);
    qs.addBucket(2, 100);
    qs.addBucket(7, 100);
    EXPECT_EQ(qs.total(), 200u);
    // q = 0.25 -> 50th sample, halfway through bucket 2: value 2.5.
    EXPECT_NEAR(qs.quantile(0.25), 2.5, 1e-9);
    // q = 0.75 -> halfway through bucket 7: value 7.5.
    EXPECT_NEAR(qs.quantile(0.75), 7.5, 1e-9);
}

TEST(AggSketch, QuantileMergeMatchesWholeStream)
{
    agg::QuantileSketch whole(-5.0, 5.0, 64);
    agg::QuantileSketch s0(-5.0, 5.0, 64);
    agg::QuantileSketch s1(-5.0, 5.0, 64);
    for (int i = 0; i < 2000; ++i) {
        double v = -6.0 + 12.0 * (i % 101) / 100.0; // incl. outliers
        whole.add(v);
        (i % 2 == 0 ? s0 : s1).add(v);
    }
    s0.merge(s1);
    EXPECT_EQ(s0.counts(), whole.counts());
    EXPECT_EQ(s0.underflow(), whole.underflow());
    EXPECT_EQ(s0.overflow(), whole.overflow());
    EXPECT_EQ(bits(s0.median()), bits(whole.median()));
}

TEST(AggSketch, QuantileUnderOverflowPinToEdges)
{
    agg::QuantileSketch qs(0.0, 1.0, 4);
    qs.add(-3.0, 10);
    qs.add(4.0, 10);
    EXPECT_EQ(qs.underflow(), 10u);
    EXPECT_EQ(qs.overflow(), 10u);
    EXPECT_NEAR(qs.quantile(0.1), 0.0, 1e-12);
    EXPECT_NEAR(qs.quantile(0.9), 1.0, 1e-12);
}

// ---------------------------------------------------------------------
// Cohort sketch (slot array + component sketches)
// ---------------------------------------------------------------------

TEST(AggSketch, CohortSketchDeltaIngestAndTrialRows)
{
    agg::AggConfig cfg;
    cfg.per_trial = true;
    cfg.quantile_buckets = 8;
    // span 4, 2 trial rows, slot 0 = value 0.0, delta 0.5.
    agg::CohortSketch cs(cfg, 4, 2, 0.0, 0.5);
    ASSERT_EQ(cs.slotCells(), 8u);

    std::vector<uint64_t> delta = {1, 0, 2, 0, /* trial 1: */ 0, 3, 0, 4};
    cs.ingestDelta(delta.data());
    EXPECT_EQ(cs.total(), 10u);
    EXPECT_EQ(cs.slotTotals(), (std::vector<uint64_t>{1, 3, 2, 4}));
    EXPECT_EQ(cs.trialSlots(0), (std::vector<uint64_t>{1, 0, 2, 0}));
    EXPECT_EQ(cs.trialSlots(1), (std::vector<uint64_t>{0, 3, 0, 4}));
    // Count-min sees slot ids weighted by per-slot totals.
    EXPECT_GE(cs.cm().estimate(3), 4u);
    EXPECT_EQ(cs.cm().total(), 10u);
}

TEST(AggSketch, CohortSketchMergeEqualsCombinedIngest)
{
    agg::AggConfig cfg;
    agg::CohortSketch whole(cfg, 6, 1, -1.0, 0.25);
    agg::CohortSketch a(cfg, 6, 1, -1.0, 0.25);
    agg::CohortSketch b(cfg, 6, 1, -1.0, 0.25);

    std::vector<uint64_t> d1 = {5, 0, 1, 2, 0, 9};
    std::vector<uint64_t> d2 = {0, 7, 1, 0, 3, 1};
    whole.ingestDelta(d1.data());
    whole.ingestDelta(d2.data());
    a.ingestDelta(d1.data());
    b.ingestDelta(d2.data());
    a.merge(b);

    EXPECT_EQ(a.slots(), whole.slots());
    EXPECT_EQ(a.total(), whole.total());
    EXPECT_EQ(a.cm().counters(), whole.cm().counters());
    EXPECT_EQ(a.quantiles().counts(), whole.quantiles().counts());
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

TEST(AggDecode, KaryRRMatchesBatchEstimatorBitForBit)
{
    // The streamed decode and KaryRandomizedResponse::estimateCounts
    // must be the same arithmetic, not merely close.
    for (int k : {2, 5, 16}) {
        KaryRandomizedResponse rr(k, 1.0);
        std::vector<uint64_t> observed(static_cast<size_t>(k));
        for (int c = 0; c < k; ++c)
            observed[static_cast<size_t>(c)] =
                static_cast<uint64_t>(37 * (c + 1) % 101);
        auto batch = rr.estimateCounts(observed);
        auto streamed = agg::decodeKaryRR(
            observed, rr.truthProbability(), rr.lieProbability());
        EXPECT_TRUE(sameBits(batch, streamed)) << "k = " << k;
    }
}

/** Standard paper parameters on [0, 10], the probe configuration. */
FxpMechanismParams
standardParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;
    p.seed = 7;
    return p;
}

TEST(AggDecode, RecoversInputCountsFromExactChannelPush)
{
    // Push a known input count vector c through the exact channel
    // (r_j = sum_i M[j][i] c_i, rounded to integers) and decode. The
    // pseudo-inverse must recover c up to the rounding perturbation:
    // per-slot rounding error <= 0.5 amplified by the pinv row norms,
    // orders of magnitude below the 0.1% tolerance at N = 1e8.
    FxpMechanismParams p = standardParams();
    ThresholdCalculator calc(p);
    int64_t thr = calc.exactIndex(RangeControl::Thresholding, 2.0);
    ASSERT_GE(thr, 0);
    ThresholdingOutputModel model(calc.pmf(), calc.span(), thr);
    agg::FrequencyDecoder dec(model);
    ASSERT_EQ(dec.numInputs(),
              static_cast<size_t>(calc.span()) + 1);

    const double kN = 1e8;
    std::vector<double> c(dec.numInputs(), 0.0);
    c[0] = 0.5 * kN;          // mass on the clamp-exposed edge
    c[dec.numInputs() / 2] = 0.3 * kN;
    c[dec.numInputs() - 1] = 0.2 * kN;

    std::vector<uint64_t> r(dec.numOutputs(), 0);
    for (size_t j = 0; j < dec.numOutputs(); ++j) {
        double e = 0.0;
        for (size_t i = 0; i < dec.numInputs(); ++i) {
            if (c[i] != 0.0)
                e += model.prob(model.outputLo() +
                                    static_cast<int64_t>(j),
                                static_cast<int64_t>(i)) *
                     c[i];
        }
        r[j] = static_cast<uint64_t>(std::llround(e));
    }

    auto d = dec.decode(r, 0.0, p.delta);
    for (size_t i = 0; i < dec.numInputs(); ++i)
        EXPECT_NEAR(d.counts[i], c[i], 1e-3 * kN) << "input " << i;
    // Channel-consistent counts: expected boundary mass matches the
    // observed clamp-atom mass.
    EXPECT_NEAR(d.boundary_mass_observed, d.boundary_mass_expected,
                1e-4);
    // Moments follow from the recovered counts.
    double mean = (0.5 * 0.0 +
                   0.3 * (dec.numInputs() / 2) * p.delta +
                   0.2 * (dec.numInputs() - 1) * p.delta);
    EXPECT_NEAR(d.mean, mean, 1e-3 * 10.0);
}

TEST(AggDecode, ThresholdingAtomsCorrectedNaiveUnbiasedToo)
{
    // The same exact-push round trip through the naive (no control)
    // channel: no clamp atoms, wider output span, still invertible.
    FxpMechanismParams p = standardParams();
    ThresholdCalculator calc(p);
    NaiveOutputModel model(calc.pmf(), calc.span());
    agg::FrequencyDecoder dec(model);

    const double kN = 1e8;
    std::vector<double> c(dec.numInputs(), 0.0);
    c[3] = kN;
    std::vector<uint64_t> r(dec.numOutputs(), 0);
    for (size_t j = 0; j < dec.numOutputs(); ++j)
        r[j] = static_cast<uint64_t>(std::llround(
            model.prob(model.outputLo() + static_cast<int64_t>(j), 3) *
            kN));
    auto d = dec.decode(r, 0.0, p.delta);
    for (size_t i = 0; i < dec.numInputs(); ++i)
        EXPECT_NEAR(d.counts[i], c[i], 1e-3 * kN) << "input " << i;
    EXPECT_NEAR(d.mean, 3 * p.delta, 1e-3 * 10.0);
}

TEST(AggDecode, CountAboveSumsGridTail)
{
    agg::DecodedFrequencies d;
    d.counts = {10.0, 20.0, 30.0, 40.0};
    // Grid 0, 1, 2, 3: threshold 1.5 keeps inputs 2 and 3.
    EXPECT_NEAR(agg::decodedCountAbove(d, 0.0, 1.0, 1.5), 70.0, 1e-12);
    // Threshold at a grid point is inclusive.
    EXPECT_NEAR(agg::decodedCountAbove(d, 0.0, 1.0, 3.0), 40.0, 1e-12);
    EXPECT_NEAR(agg::decodedCountAbove(d, 0.0, 1.0, -1.0), 100.0,
                1e-12);
}

// ---------------------------------------------------------------------
// Fleet integration
// ---------------------------------------------------------------------

/** Two-cohort fleet with streaming aggregation on. */
FleetConfig
aggFleet()
{
    FxpMechanismParams p = standardParams();
    FleetConfig fc;
    fc.master_seed = 4242;
    fc.block_nodes = 256;

    CohortConfig thr;
    thr.name = "thr";
    thr.mechanism = CohortMechanism::Thresholding;
    thr.params = p;
    thr.nodes = 3000;
    thr.reports_per_node = 3;
    thr.analyze_loss = false;
    thr.agg.enabled = true;
    thr.agg.per_trial = true;

    CohortConfig res;
    res.name = "res";
    res.mechanism = CohortMechanism::Resampling;
    res.params = p;
    res.nodes = 2000;
    res.reports_per_node = 2;
    res.analyze_loss = false;
    res.agg.enabled = true;

    fc.cohorts = {thr, res};
    return fc;
}

void
expectSameAgg(const FleetReport &x, const FleetReport &y)
{
    EXPECT_EQ(x.fingerprint(), y.fingerprint());
    ASSERT_EQ(x.cohorts.size(), y.cohorts.size());
    for (size_t c = 0; c < x.cohorts.size(); ++c) {
        const auto &a = x.cohorts[c];
        const auto &b = y.cohorts[c];
        ASSERT_EQ(a.agg != nullptr, b.agg != nullptr);
        if (!a.agg)
            continue;
        // Integer sketch state must be identical...
        EXPECT_EQ(a.agg->sketch.slots(), b.agg->sketch.slots());
        EXPECT_EQ(a.agg->sketch.cm().counters(),
                  b.agg->sketch.cm().counters());
        EXPECT_EQ(a.agg->sketch.quantiles().counts(),
                  b.agg->sketch.quantiles().counts());
        EXPECT_EQ(a.agg->dropped, b.agg->dropped);
        // ...and the decoded doubles identical to the BIT: same
        // integer inputs, deterministic decode.
        EXPECT_TRUE(sameBits(a.agg->decoded.counts,
                             b.agg->decoded.counts));
        EXPECT_EQ(bits(a.agg->decoded.mean), bits(b.agg->decoded.mean));
        EXPECT_EQ(bits(a.agg->decoded.median),
                  bits(b.agg->decoded.median));
        EXPECT_EQ(bits(a.agg->decoded.variance),
                  bits(b.agg->decoded.variance));
        ASSERT_EQ(a.agg->heavy.size(), b.agg->heavy.size());
        for (size_t h = 0; h < a.agg->heavy.size(); ++h) {
            EXPECT_EQ(a.agg->heavy[h].item, b.agg->heavy[h].item);
            EXPECT_EQ(a.agg->heavy[h].estimate,
                      b.agg->heavy[h].estimate);
        }
    }
}

TEST(AggFleet, DecodesBitIdenticallyAcrossThreadCounts)
{
    FleetRunner runner(aggFleet());
    FleetReport one = runner.run(1);
    FleetReport two = runner.run(2);
    FleetReport eight = runner.run(8);
    expectSameAgg(one, two);
    expectSameAgg(one, eight);
}

TEST(AggFleet, ForcedScalarMatchesBatchedIngest)
{
    // The delta buffer is flushed only on block completion, so the
    // batch path's integrity-bail redo must not change a single
    // counter relative to the scalar path.
    FleetRunner runner(aggFleet());
    FleetReport batched = runner.run(4);
    FleetRunner::forceScalarBlocks(true);
    FleetReport scalar = runner.run(4);
    FleetRunner::forceScalarBlocks(false);
    expectSameAgg(batched, scalar);
}

TEST(AggFleet, SketchAccountsEveryReport)
{
    FleetRunner runner(aggFleet());
    FleetReport report = runner.run(4);
    for (const CohortResult &c : report.cohorts) {
        ASSERT_TRUE(c.agg != nullptr) << c.name;
        // Resampling/thresholding confine every output to the window:
        // nothing may be dropped, and ingested must equal reports.
        EXPECT_EQ(c.agg->dropped, 0u) << c.name;
        EXPECT_EQ(c.agg->sketch.total(), c.reports) << c.name;
        // Per-trial rows, when kept, sum to the totals.
        if (c.agg->sketch.trialRows() > 1) {
            std::vector<uint64_t> sum(c.agg->sketch.span(), 0);
            for (uint32_t t = 0; t < c.agg->sketch.trialRows(); ++t) {
                auto row = c.agg->sketch.trialSlots(t);
                for (size_t s = 0; s < row.size(); ++s)
                    sum[s] += row[s];
            }
            EXPECT_EQ(sum, c.agg->sketch.slotTotals()) << c.name;
        }
    }
}

TEST(AggFleet, AggOffFingerprintUnchanged)
{
    // The agg layer must be invisible when disabled: same fleet, agg
    // on vs off, identical released aggregates; and the agg-off
    // fingerprint equals the no-agg-config fingerprint (the committed
    // BENCH_fleet baselines depend on this).
    FleetConfig on = aggFleet();
    FleetConfig off = aggFleet();
    for (auto &c : off.cohorts)
        c.agg = agg::AggConfig{};
    FleetReport r_on = FleetRunner(on).run(3);
    FleetReport r_off = FleetRunner(off).run(3);
    ASSERT_EQ(r_on.cohorts.size(), r_off.cohorts.size());
    for (size_t c = 0; c < r_on.cohorts.size(); ++c) {
        EXPECT_EQ(bits(r_on.cohorts[c].released_stats.mean()),
                  bits(r_off.cohorts[c].released_stats.mean()));
        EXPECT_EQ(r_on.cohorts[c].checksum, r_off.cohorts[c].checksum);
        EXPECT_TRUE(r_off.cohorts[c].agg == nullptr);
    }
}

TEST(AggFleet, IdealCohortSkipsAggregation)
{
    FleetConfig fc = aggFleet();
    fc.cohorts[0].mechanism = CohortMechanism::Ideal;
    FleetReport report = FleetRunner(fc).run(2);
    EXPECT_TRUE(report.cohorts[0].agg == nullptr);
    EXPECT_TRUE(report.cohorts[1].agg != nullptr);
}

TEST(AggFleet, BoundaryUnbiasingBeatsRawMeanNearClamp)
{
    // Dataset replay pinned near the range top: thresholding's clamp
    // atoms pull the raw released mean down into the window, while the
    // decoder redistributes the atom mass back. The decoded mean must
    // sit strictly closer to the truth than the raw released mean.
    FxpMechanismParams p = standardParams();
    FleetConfig fc;
    fc.master_seed = 99;
    fc.block_nodes = 256;
    CohortConfig c;
    c.name = "edge";
    c.mechanism = CohortMechanism::Thresholding;
    c.params = p;
    c.values.assign(20000, 9.6875); // grid point near hi = 10
    c.reports_per_node = 2;
    c.analyze_loss = false;
    c.agg.enabled = true;
    fc.cohorts = {c};

    FleetReport report = FleetRunner(fc).run(4);
    const CohortResult &res = report.cohorts[0];
    ASSERT_TRUE(res.agg != nullptr);
    const double truth = 9.6875;
    double raw_err = std::abs(res.released_stats.mean() - truth);
    double dec_err = std::abs(res.agg->decoded.mean - truth);
    EXPECT_LT(dec_err, raw_err);
    // The clamp concentrates real mass on the atoms here, and the
    // decoder's channel expectation agrees with what it observed.
    EXPECT_GT(res.agg->decoded.boundary_mass_observed, 0.0005);
    EXPECT_NEAR(res.agg->decoded.boundary_mass_observed,
                res.agg->decoded.boundary_mass_expected, 0.01);
}

} // anonymous namespace
} // namespace ulpdp
