/**
 * @file
 * Tests for the chunked parallel-for in common: full disjoint
 * coverage of the index range, serial inline path, and exception
 * propagation from worker threads.
 */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel_for.h"

namespace ulpdp {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    for (int jobs : {1, 2, 4, 0}) {
        for (int64_t chunk : {int64_t{1}, int64_t{7}, int64_t{64}}) {
            std::vector<std::atomic<int>> hits(1000);
            parallelFor(0, 1000, jobs, chunk,
                        [&](int64_t lo, int64_t hi) {
                            for (int64_t i = lo; i < hi; ++i)
                                hits[static_cast<size_t>(i)]
                                    .fetch_add(1);
                        });
            for (size_t i = 0; i < hits.size(); ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "jobs=" << jobs << " chunk=" << chunk
                    << " i=" << i;
        }
    }
}

TEST(ParallelFor, EmptyAndOffsetRanges)
{
    int calls = 0;
    parallelFor(5, 5, 4, 8,
                [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);

    std::atomic<int64_t> sum{0};
    parallelFor(10, 20, 3, 3, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), (10 + 19) * 10 / 2);
}

TEST(ParallelFor, SerialPathRunsInline)
{
    // jobs == 1 must invoke the body once over the whole range (the
    // zero-overhead degenerate case callers rely on for determinism
    // arguments).
    int calls = 0;
    parallelFor(0, 100, 1, 8, [&](int64_t lo, int64_t hi) {
        ++calls;
        EXPECT_EQ(lo, 0);
        EXPECT_EQ(hi, 100);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesWorkerExceptions)
{
    EXPECT_THROW(
        parallelFor(0, 1000, 4, 1,
                    [&](int64_t lo, int64_t) {
                        if (lo == 500)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

} // anonymous namespace
} // namespace ulpdp
