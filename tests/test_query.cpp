/**
 * @file
 * Unit tests for the statistical queries.
 */

#include <memory>

#include <gtest/gtest.h>

#include "query/query.h"

namespace ulpdp {
namespace {

const std::vector<double> kSample{2.0, 4.0, 4.0, 4.0, 5.0,
                                  5.0, 7.0, 9.0};

TEST(Query, Mean)
{
    MeanQuery q;
    EXPECT_DOUBLE_EQ(q.evaluate(kSample), 5.0);
    EXPECT_EQ(q.name(), "mean");
}

TEST(Query, Median)
{
    MedianQuery q;
    EXPECT_DOUBLE_EQ(q.evaluate(kSample), 4.5);
    EXPECT_DOUBLE_EQ(q.evaluate({1.0, 9.0, 5.0}), 5.0);
}

TEST(Query, Variance)
{
    VarianceQuery q;
    EXPECT_DOUBLE_EQ(q.evaluate(kSample), 4.0);
}

TEST(Query, StdDev)
{
    StdDevQuery q;
    EXPECT_DOUBLE_EQ(q.evaluate(kSample), 2.0);
}

TEST(Query, CountAbove)
{
    CountAboveQuery q(5.0);
    EXPECT_DOUBLE_EQ(q.evaluate(kSample), 4.0); // 5, 5, 7, 9
    EXPECT_DOUBLE_EQ(q.threshold(), 5.0);

    CountAboveQuery none(100.0);
    EXPECT_DOUBLE_EQ(none.evaluate(kSample), 0.0);

    CountAboveQuery all(-100.0);
    EXPECT_DOUBLE_EQ(all.evaluate(kSample), 8.0);
}

TEST(Query, EmptyVectors)
{
    EXPECT_DOUBLE_EQ(MeanQuery().evaluate({}), 0.0);
    EXPECT_DOUBLE_EQ(MedianQuery().evaluate({}), 0.0);
    EXPECT_DOUBLE_EQ(VarianceQuery().evaluate({}), 0.0);
    EXPECT_DOUBLE_EQ(CountAboveQuery(0.0).evaluate({}), 0.0);
}

TEST(Query, PolymorphicUse)
{
    std::vector<std::unique_ptr<Query>> queries;
    queries.push_back(std::make_unique<MeanQuery>());
    queries.push_back(std::make_unique<MedianQuery>());
    queries.push_back(std::make_unique<VarianceQuery>());
    queries.push_back(std::make_unique<CountAboveQuery>(4.5));
    std::vector<double> expect{5.0, 4.5, 4.0, 4.0};
    for (size_t i = 0; i < queries.size(); ++i)
        EXPECT_DOUBLE_EQ(queries[i]->evaluate(kSample), expect[i]);
}

} // anonymous namespace
} // namespace ulpdp
