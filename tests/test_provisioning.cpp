/**
 * @file
 * Tests for the provisioning layer: intent -> verified DpBoxConfig.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "dpbox/driver.h"
#include "dpbox/provisioning.h"

namespace ulpdp {
namespace {

PrivacyIntent
heartIntent()
{
    PrivacyIntent intent;
    intent.range = SensorRange(94.0, 200.0);
    intent.epsilon = 0.5;
    intent.loss_multiple = 2.0;
    intent.kind = RangeControl::Thresholding;
    return intent;
}

TEST(Provisioner, RejectsBadIntent)
{
    PrivacyIntent intent = heartIntent();
    intent.epsilon = 0.0;
    EXPECT_THROW(Provisioner::plan(intent), FatalError);
    intent = heartIntent();
    intent.loss_multiple = 1.0;
    EXPECT_THROW(Provisioner::plan(intent), FatalError);
}

TEST(Provisioner, PlanMeetsItsBound)
{
    ProvisioningPlan plan = Provisioner::plan(heartIntent());
    EXPECT_TRUE(std::isfinite(plan.proven_loss));
    EXPECT_LE(plan.proven_loss, plan.requested_bound + 1e-9);
    EXPECT_GT(plan.device.threshold_index, 0);
    EXPECT_TRUE(plan.device.thresholding);
    EXPECT_DOUBLE_EQ(plan.effective_epsilon, 0.5);
    EXPECT_EQ(plan.n_m, 1);
}

TEST(Provisioner, PicksSensibleGrid)
{
    // Range of length 106: frac_bits 0 would give span 106 (fine);
    // the 64-128 target admits frac_bits 0 exactly.
    ProvisioningPlan plan = Provisioner::plan(heartIntent());
    double span = plan.range.length() *
                  std::ldexp(1.0, plan.device.frac_bits);
    EXPECT_GE(span, 32.0);
    EXPECT_LT(span, 256.0);

    // A [-1, 1] feature gets a finer LSB.
    PrivacyIntent small = heartIntent();
    small.range = SensorRange(-1.0, 1.0);
    ProvisioningPlan plan2 = Provisioner::plan(small);
    EXPECT_GT(plan2.device.frac_bits, 3);
}

TEST(Provisioner, ResamplingKindRespected)
{
    PrivacyIntent intent = heartIntent();
    intent.kind = RangeControl::Resampling;
    ProvisioningPlan plan = Provisioner::plan(intent);
    EXPECT_FALSE(plan.device.thresholding);
    EXPECT_LE(plan.proven_loss, plan.requested_bound + 1e-9);
}

TEST(Provisioner, NonPowerOfTwoEpsilonRounded)
{
    PrivacyIntent intent = heartIntent();
    intent.epsilon = 0.4;
    ProvisioningPlan plan = Provisioner::plan(intent);
    EXPECT_DOUBLE_EQ(plan.effective_epsilon, 0.5);
}

TEST(Provisioner, BudgetSegmentsWiredIn)
{
    PrivacyIntent intent = heartIntent();
    intent.budget = 20.0;
    intent.segment_levels = {1.25, 1.5};
    ProvisioningPlan plan = Provisioner::plan(intent);
    ASSERT_TRUE(plan.device.budget_enabled);
    ASSERT_GE(plan.device.segments.size(), 2u);
    EXPECT_EQ(plan.device.segments.back().threshold_index,
              plan.device.threshold_index);
    for (size_t i = 1; i < plan.device.segments.size(); ++i) {
        EXPECT_GT(plan.device.segments[i].threshold_index,
                  plan.device.segments[i - 1].threshold_index);
    }
}

TEST(Provisioner, VerifyAcceptsFreshPlan)
{
    ProvisioningPlan plan = Provisioner::plan(heartIntent());
    EXPECT_TRUE(Provisioner::verify(plan));
}

TEST(Provisioner, VerifyCatchesTampering)
{
    ProvisioningPlan plan = Provisioner::plan(heartIntent());
    // An "optimisation" that widens the window voids the proof.
    plan.device.threshold_index += 500;
    EXPECT_FALSE(Provisioner::verify(plan));
}

TEST(Provisioner, PlanDrivesARealDevice)
{
    PrivacyIntent intent = heartIntent();
    intent.budget = 10.0;
    ProvisioningPlan plan = Provisioner::plan(intent);

    DpBoxDriver drv(plan.device);
    drv.initialize(intent.budget, 0);
    drv.configure(plan.effective_epsilon, plan.range);
    double ext = static_cast<double>(plan.device.threshold_index) *
                 drv.device().lsb();
    for (int i = 0; i < 2000; ++i) {
        double y = drv.noise(130.0).value;
        EXPECT_GE(y, plan.range.lo - ext - 1e-9);
        EXPECT_LE(y, plan.range.hi + ext + 1e-9);
    }
}

TEST(Provisioner, TextManifestMentionsKeyFacts)
{
    ProvisioningPlan plan = Provisioner::plan(heartIntent());
    std::string text = plan.toText();
    EXPECT_NE(text.find("thresholding"), std::string::npos);
    EXPECT_NE(text.find("proven loss"), std::string::npos);
    EXPECT_NE(text.find("0.5"), std::string::npos);
}

TEST(Provisioner, WideRangeStillFitsWord)
{
    PrivacyIntent intent = heartIntent();
    intent.range = SensorRange(-7691.3, -7300.9);
    ProvisioningPlan plan = Provisioner::plan(intent);
    EXPECT_TRUE(Provisioner::verify(plan));
}

TEST(Provisioner, ImpossibleBoundFails)
{
    PrivacyIntent intent = heartIntent();
    intent.uniform_bits = 6; // far too coarse
    intent.loss_multiple = 1.05;
    EXPECT_THROW(Provisioner::plan(intent), FatalError);
}

} // anonymous namespace
} // namespace ulpdp
