/**
 * @file
 * Tests for the deconvolution histogram estimator.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/thresholding_mechanism.h"
#include "query/histogram_query.h"

namespace ulpdp {
namespace {

FxpMechanismParams
testParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 2.0; // lighter noise keeps the test sample sizes sane
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    return p;
}

std::shared_ptr<const FxpLaplacePmf>
testPmf()
{
    return std::make_shared<FxpLaplacePmf>(testParams().rngConfig());
}

TEST(HistogramEstimator, RejectsBadArgs)
{
    ThresholdingOutputModel model(testPmf(), 32, 50);
    EXPECT_THROW(HistogramEstimator(model, 0), FatalError);
    HistogramEstimator est(model);
    EXPECT_THROW(est.estimate({model.outputHi() + 1}), FatalError);
    EXPECT_THROW(est.estimateFromCounts({1, 2, 3}), FatalError);
    std::vector<uint64_t> empty(est.numOutputs(), 0);
    EXPECT_THROW(est.estimateFromCounts(empty), FatalError);
}

TEST(HistogramEstimator, OutputIsAProbabilityVector)
{
    ThresholdingOutputModel model(testPmf(), 32, 50);
    HistogramEstimator est(model, 50);
    std::vector<uint64_t> counts(est.numOutputs(), 1);
    auto pi = est.estimateFromCounts(counts);
    ASSERT_EQ(pi.size(), 33u);
    double sum = 0.0;
    for (double v : pi) {
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(HistogramEstimator, RecoversPointMass)
{
    // All inputs equal: the ML histogram should concentrate near
    // that input even though every report is noised.
    FxpMechanismParams p = testParams();
    int64_t t = 60;
    ThresholdingMechanism mech(p, t);
    ThresholdingOutputModel model(testPmf(), 32, t);
    HistogramEstimator est(model, 400);

    std::vector<int64_t> reports;
    for (int i = 0; i < 60000; ++i) {
        double y = mech.noise(5.0).value;
        reports.push_back(
            static_cast<int64_t>(std::llround(y / mech.delta())));
    }
    auto pi = est.estimate(reports);

    // Mass within +-3 bins of the true input (index 16).
    double near = 0.0;
    for (int64_t i = 13; i <= 19; ++i)
        near += pi[static_cast<size_t>(i)];
    EXPECT_GT(near, 0.8);
}

TEST(HistogramEstimator, RecoversBimodalShape)
{
    FxpMechanismParams p = testParams();
    int64_t t = 60;
    ThresholdingMechanism mech(p, t);
    ThresholdingOutputModel model(testPmf(), 32, t);
    HistogramEstimator est(model, 400);

    // True inputs: half at 2.5 (index 8), half at 7.5 (index 24).
    std::vector<int64_t> reports;
    for (int i = 0; i < 80000; ++i) {
        double x = (i % 2 == 0) ? 2.5 : 7.5;
        double y = mech.noise(x).value;
        reports.push_back(
            static_cast<int64_t>(std::llround(y / mech.delta())));
    }
    auto pi = est.estimate(reports);

    auto mass_near = [&](int64_t center) {
        double m = 0.0;
        for (int64_t i = center - 3; i <= center + 3; ++i)
            m += pi[static_cast<size_t>(i)];
        return m;
    };
    EXPECT_GT(mass_near(8), 0.3);
    EXPECT_GT(mass_near(24), 0.3);
    // Valley between the modes stays low.
    EXPECT_LT(pi[16], 0.1);
}

TEST(HistogramEstimator, BeatsRawOutputHistogram)
{
    // The deconvolved histogram must be closer (in TV) to the truth
    // than the raw clipped output histogram is.
    FxpMechanismParams p = testParams();
    int64_t t = 60;
    ThresholdingMechanism mech(p, t);
    ThresholdingOutputModel model(testPmf(), 32, t);
    HistogramEstimator est(model, 400);

    std::mt19937_64 rng(5);
    std::uniform_int_distribution<int> pick(0, 2);
    std::vector<double> truth(33, 0.0);
    std::vector<int64_t> reports;
    std::vector<double> raw(33, 0.0);
    const int n = 80000;
    for (int i = 0; i < n; ++i) {
        int64_t xi = pick(rng) == 0 ? 6 : 26; // 1/3 low, 2/3 high
        truth[static_cast<size_t>(xi)] += 1.0 / n;
        double y = mech.noise(static_cast<double>(xi) *
                              mech.delta()).value;
        int64_t yi = static_cast<int64_t>(
            std::llround(y / mech.delta()));
        reports.push_back(yi);
        int64_t clipped = std::clamp<int64_t>(yi, 0, 32);
        raw[static_cast<size_t>(clipped)] += 1.0 / n;
    }
    auto pi = est.estimate(reports);

    // Deconvolving wide Laplace noise is ill-posed bin-by-bin (the
    // ML solution smears point masses over nearby neighbours), so
    // ask the coarse question the analyst actually cares about: how
    // much mass sits in the lower vs upper half of the range? The
    // estimator must both beat the raw output histogram and land
    // near the true 1/3 : 2/3 split.
    auto lower_half = [](const std::vector<double> &v) {
        double m = 0.0;
        for (size_t i = 0; i < v.size() / 2; ++i)
            m += v[i];
        return m;
    };
    double true_low = lower_half(truth);
    EXPECT_LT(std::abs(lower_half(pi) - true_low),
              std::abs(lower_half(raw) - true_low) + 0.02);
    EXPECT_NEAR(lower_half(pi), true_low, 0.1);
}

TEST(HistogramEstimator, WorksWithResamplingModel)
{
    auto pmf = testPmf();
    ResamplingOutputModel model(pmf, 32, 60);
    HistogramEstimator est(model, 100);
    std::vector<uint64_t> counts(est.numOutputs(), 0);
    counts[est.numOutputs() / 2] = 1000;
    auto pi = est.estimateFromCounts(counts);
    double sum = 0.0;
    for (double v : pi)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

} // anonymous namespace
} // namespace ulpdp
