/**
 * @file
 * Unit tests for the runtime uniform quantizer.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "fixed/quantizer.h"

namespace ulpdp {
namespace {

TEST(Quantizer, RejectsBadParameters)
{
    EXPECT_THROW(Quantizer(0.0, 8), FatalError);
    EXPECT_THROW(Quantizer(-1.0, 8), FatalError);
    EXPECT_THROW(Quantizer(1.0, 1), FatalError);
    EXPECT_THROW(Quantizer(1.0, 63), FatalError);
}

TEST(Quantizer, IndexRangeMatchesBits)
{
    Quantizer q(0.5, 8);
    EXPECT_EQ(q.minIndex(), -128);
    EXPECT_EQ(q.maxIndex(), 127);
    EXPECT_DOUBLE_EQ(q.minValue(), -64.0);
    EXPECT_DOUBLE_EQ(q.maxValue(), 63.5);
}

TEST(Quantizer, RoundsToNearest)
{
    Quantizer q(1.0, 8);
    EXPECT_EQ(q.quantizeToIndex(2.4), 2);
    EXPECT_EQ(q.quantizeToIndex(2.6), 3);
    EXPECT_EQ(q.quantizeToIndex(-2.4), -2);
    EXPECT_EQ(q.quantizeToIndex(-2.6), -3);
}

TEST(Quantizer, HalfRoundsAwayFromZero)
{
    Quantizer q(1.0, 8);
    EXPECT_EQ(q.quantizeToIndex(2.5), 3);
    EXPECT_EQ(q.quantizeToIndex(-2.5), -3);
    EXPECT_EQ(q.quantizeToIndex(0.5), 1);
    EXPECT_EQ(q.quantizeToIndex(-0.5), -1);
}

TEST(Quantizer, Saturates)
{
    Quantizer q(1.0, 4); // indices [-8, 7]
    EXPECT_EQ(q.quantizeToIndex(100.0), 7);
    EXPECT_EQ(q.quantizeToIndex(-100.0), -8);
}

TEST(Quantizer, QuantizeReturnsGridValue)
{
    Quantizer q(0.25, 8);
    EXPECT_DOUBLE_EQ(q.quantize(0.3), 0.25);
    EXPECT_DOUBLE_EQ(q.quantize(0.4), 0.5);
    EXPECT_DOUBLE_EQ(q.quantize(-0.3), -0.25);
}

TEST(Quantizer, ZeroMapsToZero)
{
    Quantizer q(0.125, 12);
    EXPECT_EQ(q.quantizeToIndex(0.0), 0);
    EXPECT_DOUBLE_EQ(q.quantize(0.0), 0.0);
}

TEST(Quantizer, ValueReconstruction)
{
    Quantizer q(0.5, 8);
    EXPECT_DOUBLE_EQ(q.value(3), 1.5);
    EXPECT_DOUBLE_EQ(q.value(-4), -2.0);
}

/** Property: quantization error is at most Delta/2 when unsaturated. */
TEST(QuantizerProperty, ErrorBoundedByHalfStep)
{
    Quantizer q(10.0 / 32.0, 12); // the paper's example step
    for (int i = -1000; i <= 1000; ++i) {
        double x = 0.173 * i;
        if (x > q.minValue() && x < q.maxValue()) {
            EXPECT_LE(std::abs(q.quantize(x) - x),
                      q.delta() / 2.0 + 1e-12);
        }
    }
}

} // anonymous namespace
} // namespace ulpdp
