/**
 * @file
 * Tests for the DP-Box transaction tracer and invariant checker.
 */

#include <random>

#include <gtest/gtest.h>

#include "dpbox/trace.h"

namespace ulpdp {
namespace {

DpBoxConfig
traceConfig()
{
    DpBoxConfig cfg;
    cfg.frac_bits = 5;
    cfg.word_bits = 20;
    cfg.uniform_bits = 14;
    cfg.threshold_index = 300;
    cfg.thresholding = true;
    return cfg;
}

void
bootAndConfigure(DpBoxTracer &t, DpBox &box)
{
    t.step(DpBoxCommand::SetEpsilon, 256 * 10);
    t.step(DpBoxCommand::StartNoising);
    t.step(DpBoxCommand::SetEpsilon, 1);
    t.step(DpBoxCommand::SetRangeLower, box.toRaw(0.0));
    t.step(DpBoxCommand::SetRangeUpper, box.toRaw(10.0));
}

TEST(Trace, RecordsEveryStep)
{
    DpBox box(traceConfig());
    DpBoxTracer tracer(box);
    bootAndConfigure(tracer, box);
    EXPECT_EQ(tracer.trace().size(), 5u);
    EXPECT_EQ(tracer.trace().back().cycle, box.cycles());
    EXPECT_EQ(tracer.trace()[0].phase, DpBoxPhase::Initialization);
    EXPECT_EQ(tracer.trace()[1].phase, DpBoxPhase::Waiting);
}

TEST(Trace, CleanSessionPassesChecks)
{
    DpBox box(traceConfig());
    DpBoxTracer tracer(box);
    bootAndConfigure(tracer, box);
    for (int i = 0; i < 200; ++i) {
        tracer.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
        tracer.step(DpBoxCommand::StartNoising);
        while (!box.ready())
            tracer.step(DpBoxCommand::DoNothing);
    }
    TraceCheckResult result = tracer.check();
    EXPECT_TRUE(result.ok) << result.violation;
}

TEST(Trace, BudgetedSessionPassesChecks)
{
    DpBoxConfig cfg = traceConfig();
    cfg.budget_enabled = true;
    cfg.segments = {BudgetSegment{0, 0.5},
                    BudgetSegment{300, 1.0}};
    DpBox box(cfg);
    DpBoxTracer tracer(box);
    tracer.step(DpBoxCommand::SetEpsilon, 256 * 3);
    tracer.step(DpBoxCommand::SetRangeUpper, 2000); // replenish
    tracer.step(DpBoxCommand::StartNoising);
    tracer.step(DpBoxCommand::SetEpsilon, 1);
    tracer.step(DpBoxCommand::SetRangeLower, box.toRaw(0.0));
    tracer.step(DpBoxCommand::SetRangeUpper, box.toRaw(10.0));

    // Drain the budget, idle across a replenish boundary, drain
    // again: the checker must accept the legal budget increase.
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 15; ++i) {
            tracer.step(DpBoxCommand::SetSensorValue,
                        box.toRaw(5.0));
            tracer.step(DpBoxCommand::StartNoising);
            while (!box.ready())
                tracer.step(DpBoxCommand::DoNothing);
        }
        for (int i = 0; i < 2100; ++i)
            tracer.step(DpBoxCommand::DoNothing);
    }
    TraceCheckResult result = tracer.check();
    EXPECT_TRUE(result.ok) << result.violation;
}

TEST(Trace, DetectsDoctoredContainmentViolation)
{
    DpBox box(traceConfig());
    DpBoxTracer tracer(box);
    bootAndConfigure(tracer, box);
    tracer.step(DpBoxCommand::SetSensorValue, box.toRaw(5.0));
    tracer.step(DpBoxCommand::StartNoising);
    while (!box.ready())
        tracer.step(DpBoxCommand::DoNothing);
    ASSERT_TRUE(tracer.check().ok);

    // Tamper with the recorded output (as a buggy device would
    // have produced): the checker must flag it.
    auto &entries = const_cast<std::vector<DpBoxTraceEntry> &>(
        tracer.trace());
    entries.back().output = box.toRaw(10.0) + 10000;
    entries.back().ready = true;
    TraceCheckResult result = tracer.check();
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.violation.find("outside window"),
              std::string::npos);
}

TEST(Trace, DetectsDoctoredBudgetViolation)
{
    DpBox box(traceConfig());
    DpBoxTracer tracer(box);
    bootAndConfigure(tracer, box);
    tracer.step(DpBoxCommand::DoNothing);
    tracer.step(DpBoxCommand::DoNothing);

    auto &entries = const_cast<std::vector<DpBoxTraceEntry> &>(
        tracer.trace());
    entries.back().budget = entries[entries.size() - 2].budget + 5.0;
    TraceCheckResult result = tracer.check();
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.violation.find("budget increased"),
              std::string::npos);
}

TEST(Trace, TextRenderingShowsRecentRows)
{
    DpBox box(traceConfig());
    DpBoxTracer tracer(box);
    bootAndConfigure(tracer, box);
    std::string text = tracer.toText(3);
    // Header plus at most 3 rows.
    size_t rows = 0;
    for (char c : text) {
        if (c == '\n')
            ++rows;
    }
    EXPECT_EQ(rows, 4u);
    EXPECT_NE(text.find("wait"), std::string::npos);
}

TEST(Trace, ClearDropsHistoryOnly)
{
    DpBox box(traceConfig());
    DpBoxTracer tracer(box);
    bootAndConfigure(tracer, box);
    uint64_t cycles = box.cycles();
    tracer.clear();
    EXPECT_TRUE(tracer.trace().empty());
    EXPECT_EQ(box.cycles(), cycles);
}

TEST(Trace, RandomSessionAlwaysPassesChecks)
{
    // Whatever legal commands software throws at the device, the
    // real model must never violate its own invariants.
    std::mt19937_64 rng(99);
    std::uniform_int_distribution<int> pick(0, 3);
    DpBox box(traceConfig());
    DpBoxTracer tracer(box);
    bootAndConfigure(tracer, box);
    for (int i = 0; i < 4000; ++i) {
        switch (pick(rng)) {
          case 0:
            tracer.step(DpBoxCommand::DoNothing);
            break;
          case 1:
            tracer.step(DpBoxCommand::SetSensorValue,
                        box.toRaw(5.0 + (i % 11) * 0.4));
            break;
          default:
            tracer.step(DpBoxCommand::StartNoising);
            break;
        }
    }
    TraceCheckResult result = tracer.check();
    EXPECT_TRUE(result.ok) << result.violation;
}

} // anonymous namespace
} // namespace ulpdp
