/**
 * @file
 * Wide Tausworthe lane bank: W independent taus88 streams stepped in
 * lockstep.
 *
 * The table-driven sampler (rng/laplace_table.h) turned each noise
 * draw into pure data flow -- one URNG word, one lookup, no branches
 * that depend on the drawn value -- which leaves the scalar taus88
 * step as the serial bottleneck of every bulk simulation. A single
 * taus88 stream cannot be vectorized (each word depends on the
 * previous state), but a *fleet* draws from millions of independent
 * streams, so the batch layer simply steps W of them side by side: a
 * structure-of-arrays bank of component states (s1[W], s2[W], s3[W])
 * advanced by one shift/xor kernel over all lanes.
 *
 * Lane-determinism rule (the contract everything above relies on):
 * lane l of a bank seeded with seeds[l] produces *bit-identical*
 * output to a scalar Tausworthe(seeds[l]) -- same SplitMix64 seed
 * expansion, same component minimum bumps, same update recurrence,
 * same word order. The SIMD kernels are alternative schedules of the
 * exact same integer arithmetic, so scalar and SIMD builds, any lane
 * width, and any scalar/batched interleaving all observe the same
 * per-stream words. Tests prove this per lane over millions of draws;
 * the fleet fingerprint tests prove it end to end.
 *
 * Kernel selection: the portable scalar kernel is always compiled and
 * is written so the compiler's auto-vectorizer can fold it; when the
 * ULPDP_SIMD CMake option is ON an AVX2 (x86-64) or NEON (aarch64)
 * kernel is additionally built and chosen at runtime when the CPU
 * supports it. forceScalarKernel() pins the portable kernel for
 * equivalence tests.
 *
 * The bank deliberately has no fault-hook or health-monitor seams:
 * those model per-device output-register hardware and belong to the
 * scalar Tausworthe a DP-Box owns. The bank is host-simulation
 * machinery; simulations that need hooked streams take the scalar
 * path.
 */

#ifndef ULPDP_RNG_TAUS_BANK_H
#define ULPDP_RNG_TAUS_BANK_H

#include <cstddef>
#include <cstdint>

namespace ulpdp {

/** W parallel taus88 streams advanced in lockstep (SoA layout). */
class TausBank
{
  public:
    /** Widest bank a single step call supports (two AVX2 vectors;
     *  also the auto lane width of the fleet batch path). */
    static constexpr size_t kMaxLanes = 16;

    /** Empty bank; seed() before stepping. */
    TausBank() = default;

    /** Seed @p lanes lanes from @p seeds (see seed()). */
    TausBank(const uint64_t *seeds, size_t lanes);

    /**
     * (Re)seed the bank with one 64-bit seed per lane. Each lane
     * applies exactly the scalar Tausworthe construction: SplitMix64
     * expansion of seeds[l] into three component words, then the same
     * component-minimum bumps (s1 >= 2, s2 >= 8, s3 >= 16). A
     * degenerate seed (Tausworthe::seedDegenerate) is therefore
     * bumped to the identical state the scalar constructor would
     * reach -- bulk seeders must still reject such seeds, because the
     * bump aliases two distinct seeds onto one stream; see
     * deriveLaneSeeds() for a derivation that never emits one.
     */
    void seed(const uint64_t *seeds, size_t lanes);

    /**
     * Adopt raw component states mid-stream: lane l continues the
     * stream whose current Tausworthe state is (s1[l], s2[l], s3[l]).
     * Every component must already satisfy its LFSR minimum (states
     * read back from a live Tausworthe or this bank always do). This
     * is how FxpLaplaceRng mirrors its single URNG stream into a
     * one-lane bank for a batch and commits the state back afterwards.
     */
    void adoptState(const uint32_t *s1, const uint32_t *s2,
                    const uint32_t *s3, size_t lanes);

    /** Active lane count. */
    size_t lanes() const { return lanes_; }

    /**
     * Advance every lane by one step and write lane l's output word
     * to out[l] (out must hold lanes() words). Equivalent to calling
     * Tausworthe::next32() once on each lane's scalar twin.
     */
    void nextWords(uint32_t *out);

    /**
     * Advance *one* lane by one step and return its word, leaving the
     * other lanes untouched. This is the escape hatch for per-lane
     * rejection fixups (a truncated rank draw that overshot redraws
     * on its own stream only) and is bit-compatible with nextWords():
     * a lane observes the same word sequence however the two entry
     * points are interleaved.
     */
    uint32_t next32Lane(size_t lane);

    /** Component states of one lane (tests compare against the
     *  scalar twin). */
    uint32_t s1(size_t lane) const { return s1_[lane]; }
    uint32_t s2(size_t lane) const { return s2_[lane]; }
    uint32_t s3(size_t lane) const { return s3_[lane]; }

    /**
     * Derive @p n decorrelated, never-degenerate lane seeds from one
     * master seed (SplitMix64 finalizer over a Weyl sequence, with
     * the same remix-until-clean rejection rule as the fleet's
     * per-node seeder). Deterministic in (master, n).
     */
    static void deriveLaneSeeds(uint64_t master, uint64_t *out,
                                size_t n);

    /** Whether an AVX2/NEON kernel was compiled into this build
     *  (the ULPDP_SIMD CMake option, on a supported arch). */
    static bool simdCompiledIn();

    /** Whether nextWords() currently runs the intrinsic kernel
     *  (compiled in, CPU supports it, not forced scalar). */
    static bool simdActive();

    /** Name of the active kernel: "avx2", "neon" or "scalar". */
    static const char *kernelName();

    /**
     * Test hook: pin the portable scalar kernel even when a SIMD
     * kernel is available, so equivalence tests can diff the two
     * schedules inside one binary. Affects the whole process.
     */
    static void forceScalarKernel(bool force);

  private:
    // SoA component state, aligned for the vector kernels. Lanes
    // beyond lanes_ hold valid-but-unused generator state so the
    // kernels can always run full width.
    alignas(64) uint32_t s1_[kMaxLanes] = {};
    alignas(64) uint32_t s2_[kMaxLanes] = {};
    alignas(64) uint32_t s3_[kMaxLanes] = {};
    size_t lanes_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_RNG_TAUS_BANK_H
