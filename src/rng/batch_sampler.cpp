#include "rng/batch_sampler.h"

#include <algorithm>

#include "common/logging.h"
#include "rng/laplace_table.h"

namespace ulpdp {

BatchSampler::BatchSampler(
        std::shared_ptr<const LaplaceSampleTable> table,
        int uniform_bits, int64_t sat_index, bool integrity_checks)
    : table_(std::move(table)), uniform_bits_(uniform_bits),
      sat_index_(sat_index), integrity_checks_(integrity_checks)
{
    if (table_ == nullptr)
        fatal("BatchSampler: need an enumerated sampling table");
    if (uniform_bits_ < 1 ||
        uniform_bits_ > LaplaceSampleTable::kMaxUniformBits)
        fatal("BatchSampler: uniform_bits must be in [1, %d], got %d",
              LaplaceSampleTable::kMaxUniformBits, uniform_bits_);
    if (table_->states() != uint64_t{1} << uniform_bits_)
        fatal("BatchSampler: table enumerates %llu states but "
              "uniform_bits %d implies %llu",
              static_cast<unsigned long long>(table_->states()),
              uniform_bits_,
              static_cast<unsigned long long>(uint64_t{1}
                                              << uniform_bits_));
}

void
BatchSampler::seedLanes(const uint64_t *seeds, size_t lanes)
{
    bank_.seed(seeds, lanes);
}

bool
BatchSampler::sampleRect(int64_t *out, size_t trials)
{
    const size_t W = bank_.lanes();
    ULPDP_ASSERT(W > 0);
    if (trials == 0)
        return true;

    const uint16_t *direct = table_->directData();
    const uint32_t mask = (uint32_t{1} << uniform_bits_) - 1u;
    const int shift = 32 - uniform_bits_;
    const int64_t sat = sat_index_;

    // Double-buffered words: while trial t's table entries are being
    // prefetched, the bank already steps trial t+1, so the lookups
    // land on warm lines.
    uint32_t magw[2][TausBank::kMaxLanes];
    uint32_t signw[2][TausBank::kMaxLanes];
    uint32_t idx[TausBank::kMaxLanes];
    uint32_t bad = 0;

    bank_.nextWords(magw[0]);
    bank_.nextWords(signw[0]);
    for (size_t t = 0; t < trials; ++t) {
        const size_t cur = t & 1;
        const uint32_t *mw = magw[cur];
        const uint32_t *sw = signw[cur];
        for (size_t l = 0; l < W; ++l) {
            // Branchless Eq. (9): the all-zeros word means m = 2^Bu,
            // and the table stores m at slot m - 1, so the wrap of
            // (raw - 1) mod 2^Bu lands raw == 0 exactly on that slot.
            idx[l] = ((mw[l] >> shift) - 1u) & mask;
            __builtin_prefetch(direct + idx[l], 0, 1);
        }
        if (t + 1 < trials) {
            bank_.nextWords(magw[cur ^ 1]);
            bank_.nextWords(signw[cur ^ 1]);
        }
        int64_t *row = out + t * W;
        for (size_t l = 0; l < W; ++l) {
            int64_t k = direct[idx[l]];
            // Deferred comparator: accumulate instead of branching;
            // the caller redoes the block scalar if anything tripped.
            bad |= static_cast<uint32_t>(k > sat);
            // nextSign(): high bit set means +1. Two's-complement
            // select: ~sm is 0 for +k, all-ones for -k.
            int64_t sm = static_cast<int32_t>(sw[l]) >> 31;
            row[l] = (k ^ ~sm) - ~sm;
        }
    }
    return !(integrity_checks_ && bad != 0);
}

bool
BatchSampler::sampleTruncatedRect(const Window *win, int64_t *out,
                                  size_t trials)
{
    const size_t W = bank_.lanes();
    ULPDP_ASSERT(W > 0);

    const uint16_t *rank = table_->rankData();
    const uint64_t states = table_->states();

    // Hoist the per-lane window constants: acceptance masses, rank
    // width and the covering-power-of-two shift are fixed per window,
    // where the scalar path recomputes them every call.
    uint64_t plus[TausBank::kMaxLanes];
    uint64_t total[TausBank::kMaxLanes];
    int rshift[TausBank::kMaxLanes];
    for (size_t l = 0; l < W; ++l) {
        ULPDP_ASSERT(win[l].lo <= 0 && win[l].hi >= 0);
        uint64_t p = table_->cumulativeCount(win[l].hi);
        uint64_t m = table_->cumulativeCount(-win[l].lo);
        if (p > states || m > states) {
            // Corrupted cumulative array. Hardened configurations
            // bail to the scalar path (which quarantines); unhardened
            // ones truncate the rank address like the silicon would.
            if (integrity_checks_)
                return false;
            p = std::min(p, states);
            m = std::min(m, states);
        }
        uint64_t tot = p + m;
        if (tot == 0)
            return false; // window without support: scalar warn+clamp
        int width = 1;
        while ((uint64_t{1} << width) < tot)
            ++width;
        plus[l] = p;
        total[l] = tot;
        rshift[l] = 32 - width;
    }

    uint32_t words[TausBank::kMaxLanes];
    uint64_t ridx[TausBank::kMaxLanes];
    int64_t neg[TausBank::kMaxLanes];
    for (size_t t = 0; t < trials; ++t) {
        bank_.nextWords(words);
        for (size_t l = 0; l < W; ++l) {
            // One covering-width draw per lane; a lane that overshoots
            // its acceptance count redraws on its own stream only
            // (scalar single-lane steps), preserving the per-stream
            // word sequence of the scalar rejection loop exactly.
            uint64_t r = words[l] >> rshift[l];
            while (r >= total[l])
                r = bank_.next32Lane(l) >> rshift[l];
            uint64_t is_neg =
                static_cast<uint64_t>(r >= plus[l]);
            ridx[l] = r - (is_neg ? plus[l] : 0);
            neg[l] = static_cast<int64_t>(is_neg);
            __builtin_prefetch(rank + ridx[l], 0, 1);
        }
        int64_t *row = out + t * W;
        for (size_t l = 0; l < W; ++l) {
            int64_t k = rank[ridx[l]];
            // Arithmetic sign select fused with the window the rank
            // table promised: k for the positive half, -k for the
            // negative half.
            k = (k ^ -neg[l]) + neg[l];
            if (integrity_checks_ &&
                (k < win[l].lo || k > win[l].hi)) {
                // Rank entry escaped its window: corrupted rank
                // array. The scalar redo quarantines it.
                return false;
            }
            row[l] = k;
        }
    }
    return true;
}

} // namespace ulpdp
