/**
 * @file
 * NEON lockstep kernel for the Tausworthe lane bank (aarch64).
 *
 * Four lanes per 128-bit vector; the exact taus88 recurrence of
 * Tausworthe::next32(), so every lane is bit-identical to its scalar
 * twin. NEON is architectural on aarch64, so unlike the AVX2 kernel no
 * runtime CPU check is needed beyond the compile-time gate.
 */

#if defined(ULPDP_SIMD_NEON)

#include <arm_neon.h>
#include <cstddef>
#include <cstdint>

namespace ulpdp {

void
tausBankStepNeon(uint32_t *s1, uint32_t *s2, uint32_t *s3,
                 uint32_t *out, size_t n)
{
    size_t l = 0;
    for (; l + 4 <= n; l += 4) {
        uint32x4_t v1 = vld1q_u32(s1 + l);
        uint32x4_t v2 = vld1q_u32(s2 + l);
        uint32x4_t v3 = vld1q_u32(s3 + l);
        uint32x4_t b;

        b = vshrq_n_u32(veorq_u32(vshlq_n_u32(v1, 13), v1), 19);
        v1 = veorq_u32(
            vshlq_n_u32(vandq_u32(v1, vdupq_n_u32(0xfffffffeU)), 12),
            b);
        b = vshrq_n_u32(veorq_u32(vshlq_n_u32(v2, 2), v2), 25);
        v2 = veorq_u32(
            vshlq_n_u32(vandq_u32(v2, vdupq_n_u32(0xfffffff8U)), 4),
            b);
        b = vshrq_n_u32(veorq_u32(vshlq_n_u32(v3, 3), v3), 11);
        v3 = veorq_u32(
            vshlq_n_u32(vandq_u32(v3, vdupq_n_u32(0xfffffff0U)), 17),
            b);

        vst1q_u32(s1 + l, v1);
        vst1q_u32(s2 + l, v2);
        vst1q_u32(s3 + l, v3);
        vst1q_u32(out + l, veorq_u32(veorq_u32(v1, v2), v3));
    }
    // Scalar tail for lane counts that are not a multiple of 4.
    for (; l < n; ++l) {
        uint32_t b;
        b = ((s1[l] << 13) ^ s1[l]) >> 19;
        s1[l] = ((s1[l] & 0xfffffffeU) << 12) ^ b;
        b = ((s2[l] << 2) ^ s2[l]) >> 25;
        s2[l] = ((s2[l] & 0xfffffff8U) << 4) ^ b;
        b = ((s3[l] << 3) ^ s3[l]) >> 11;
        s3[l] = ((s3[l] & 0xfffffff0U) << 17) ^ b;
        out[l] = s1[l] ^ s2[l] ^ s3[l];
    }
}

} // namespace ulpdp

#endif // ULPDP_SIMD_NEON
