#include "rng/taus_bank.h"

#include <atomic>

#include "common/logging.h"
#include "rng/tausworthe.h"

namespace ulpdp {

namespace {

// Weyl increment decorrelating the lane dimension (same constant the
// fleet seeder uses for its node dimension).
constexpr uint64_t kLaneGamma = 0x9e3779b97f4a7c15ULL;

/** SplitMix64 finalizer (same as FleetSeeder::mix64). */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Process-wide test hook pinning the portable kernel. */
std::atomic<bool> g_force_scalar{false};

/**
 * The portable lockstep kernel: one taus88 step over n SoA lanes.
 * Straight-line integer ops with no cross-lane dependency, written so
 * -ftree-vectorize folds it without help; the intrinsic kernels below
 * are the same arithmetic on explicit vectors.
 */
void
stepScalar(uint32_t *s1, uint32_t *s2, uint32_t *s3, uint32_t *out,
           size_t n)
{
    for (size_t l = 0; l < n; ++l) {
        uint32_t b;
        b = ((s1[l] << 13) ^ s1[l]) >> 19;
        s1[l] = ((s1[l] & 0xfffffffeU) << 12) ^ b;
        b = ((s2[l] << 2) ^ s2[l]) >> 25;
        s2[l] = ((s2[l] & 0xfffffff8U) << 4) ^ b;
        b = ((s3[l] << 3) ^ s3[l]) >> 11;
        s3[l] = ((s3[l] & 0xfffffff0U) << 17) ^ b;
        out[l] = s1[l] ^ s2[l] ^ s3[l];
    }
}

} // anonymous namespace

#if defined(ULPDP_SIMD_AVX2)
// Defined in taus_bank_avx2.cpp (compiled with -mavx2); steps lanes
// in groups of 8, scalar-identical bit for bit.
void tausBankStepAvx2(uint32_t *s1, uint32_t *s2, uint32_t *s3,
                      uint32_t *out, size_t n);
#endif
#if defined(ULPDP_SIMD_NEON)
// Defined in taus_bank_neon.cpp; steps lanes in groups of 4.
void tausBankStepNeon(uint32_t *s1, uint32_t *s2, uint32_t *s3,
                      uint32_t *out, size_t n);
#endif

namespace {

/** Whether the host CPU can execute the compiled-in kernel. */
bool
hostSupportsSimd()
{
#if defined(ULPDP_SIMD_AVX2)
    return __builtin_cpu_supports("avx2") != 0;
#elif defined(ULPDP_SIMD_NEON)
    return true; // NEON is architectural on aarch64
#else
    return false;
#endif
}

bool
simdUsable()
{
    static const bool usable = hostSupportsSimd();
    return usable && !g_force_scalar.load(std::memory_order_relaxed);
}

} // anonymous namespace

TausBank::TausBank(const uint64_t *seeds, size_t lanes)
{
    seed(seeds, lanes);
}

void
TausBank::seed(const uint64_t *seeds, size_t lanes)
{
    if (lanes == 0 || lanes > kMaxLanes)
        fatal("TausBank: lane count must be in [1, %zu], got %zu",
              kMaxLanes, lanes);
    lanes_ = lanes;
    for (size_t l = 0; l < lanes; ++l) {
        // Exactly the scalar Tausworthe construction, per lane: the
        // SplitMix64 expansion followed by the component-minimum
        // bumps. A degenerate seed lands on the identical
        // (bump-aliased) state the scalar constructor reaches.
        Tausworthe::expandSeed(seeds[l], s1_[l], s2_[l], s3_[l]);
        if (s1_[l] < 2)
            s1_[l] += 2;
        if (s2_[l] < 8)
            s2_[l] += 8;
        if (s3_[l] < 16)
            s3_[l] += 16;
    }
    // Park unused lanes on a fixed valid state so the full-width
    // kernels never step a degenerate (all-zero) component.
    for (size_t l = lanes; l < kMaxLanes; ++l) {
        s1_[l] = 2;
        s2_[l] = 8;
        s3_[l] = 16;
    }
}

void
TausBank::adoptState(const uint32_t *s1, const uint32_t *s2,
                     const uint32_t *s3, size_t lanes)
{
    if (lanes == 0 || lanes > kMaxLanes)
        fatal("TausBank: lane count must be in [1, %zu], got %zu",
              kMaxLanes, lanes);
    lanes_ = lanes;
    for (size_t l = 0; l < lanes; ++l) {
        ULPDP_ASSERT(s1[l] >= 2 && s2[l] >= 8 && s3[l] >= 16);
        s1_[l] = s1[l];
        s2_[l] = s2[l];
        s3_[l] = s3[l];
    }
    for (size_t l = lanes; l < kMaxLanes; ++l) {
        s1_[l] = 2;
        s2_[l] = 8;
        s3_[l] = 16;
    }
}

void
TausBank::nextWords(uint32_t *out)
{
#if defined(ULPDP_SIMD_AVX2)
    if (simdUsable()) {
        tausBankStepAvx2(s1_, s2_, s3_, out, lanes_);
        return;
    }
#elif defined(ULPDP_SIMD_NEON)
    if (simdUsable()) {
        tausBankStepNeon(s1_, s2_, s3_, out, lanes_);
        return;
    }
#endif
    stepScalar(s1_, s2_, s3_, out, lanes_);
}

uint32_t
TausBank::next32Lane(size_t lane)
{
    ULPDP_ASSERT(lane < lanes_);
    uint32_t word;
    stepScalar(s1_ + lane, s2_ + lane, s3_ + lane, &word, 1);
    return word;
}

void
TausBank::deriveLaneSeeds(uint64_t master, uint64_t *out, size_t n)
{
    for (size_t l = 0; l < n; ++l) {
        uint64_t s = mix64(master + kLaneGamma * (l + 1));
        // Same rejection rule as FleetSeeder::nodeSeed: remix until
        // the candidate is not degenerate, so no two lanes can alias
        // through the constructor bumps.
        while (Tausworthe::seedDegenerate(s))
            s = mix64(s + kLaneGamma);
        out[l] = s;
    }
}

bool
TausBank::simdCompiledIn()
{
#if defined(ULPDP_SIMD_AVX2) || defined(ULPDP_SIMD_NEON)
    return true;
#else
    return false;
#endif
}

bool
TausBank::simdActive()
{
    return simdCompiledIn() && simdUsable();
}

const char *
TausBank::kernelName()
{
#if defined(ULPDP_SIMD_AVX2)
    if (simdActive())
        return "avx2";
#elif defined(ULPDP_SIMD_NEON)
    if (simdActive())
        return "neon";
#endif
    return "scalar";
}

void
TausBank::forceScalarKernel(bool force)
{
    g_force_scalar.store(force, std::memory_order_relaxed);
}

} // namespace ulpdp
