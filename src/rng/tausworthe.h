/**
 * @file
 * Combined Tausworthe (LFSR) uniform random number generator.
 *
 * The paper's DP-Box sources its uniform randomness from "a Tausworthe
 * random number generator [25]" because a three-component combined
 * Tausworthe (L'Ecuyer's taus88) needs only three 32-bit registers,
 * a handful of shifts and XORs per output word, and no multipliers --
 * ideal for ULP hardware. This is a bit-exact software model of that
 * generator.
 */

#ifndef ULPDP_RNG_TAUSWORTHE_H
#define ULPDP_RNG_TAUSWORTHE_H

#include <cstdint>

#include "common/fault.h"

namespace ulpdp {

class RngHealthMonitor;

/**
 * L'Ecuyer's taus88 combined Tausworthe generator: three maximally
 * equidistributed LFSR components of periods 2^31-1, 2^29-1 and 2^28-1
 * XORed together, giving period ~2^88 and good equidistribution up to
 * dimension 18.
 */
class Tausworthe
{
  public:
    /**
     * Construct from a 64-bit seed. The three component states are
     * derived with a SplitMix64 scrambler and forced to satisfy the
     * component minimums (s1 >= 2, s2 >= 8, s3 >= 16); any 64-bit seed
     * is therefore valid.
     */
    explicit Tausworthe(uint64_t seed = 0x853c49e6748fea9bULL);

    /**
     * The three raw component words the SplitMix64 expansion derives
     * from @p seed, *before* the constructor enforces the component
     * minimums. Exposed so seed-derivation code (the fleet shard
     * seeder) can check a candidate seed without constructing.
     */
    static void expandSeed(uint64_t seed, uint32_t &s1, uint32_t &s2,
                           uint32_t &s3);

    /**
     * Whether @p seed is unsuitable for an *independent* stream: zero,
     * or a seed whose raw expansion leaves any component word below
     * its LFSR minimum (s1 < 2, s2 < 8, s3 < 16 -- the dead low bits
     * would zero the component). The constructor silently bumps such
     * words to stay valid, but the bump aliases two distinct seeds
     * onto the same generator state, so bulk seeders must skip
     * degenerate seeds instead of relying on the bump.
     */
    static bool seedDegenerate(uint64_t seed);

    /** Generate the next 32-bit output word. */
    uint32_t next32();

    /**
     * Generate @p bits uniform random bits (1..32) as the high bits of
     * the next output word (the high bits of a Tausworthe word are the
     * best-distributed ones).
     */
    uint32_t nextBits(int bits);

    /**
     * Generate the URNG output index m uniform on {1, 2, ..., 2^bu} so
     * that u = m * 2^-bu is uniform on (0, 1]. This matches Eq. (9) of
     * the paper: the all-zeros hardware word is mapped to 2^bu (u = 1)
     * so that log(u) is always finite.
     */
    uint64_t nextUnitIndex(int bu);

    /** Generate one fair sign: +1 or -1. */
    int nextSign();

    /** Uniform double in (0, 1] with 32-bit granularity. */
    double nextUnitDouble();

    /** Raw component states (for tests and checkpointing). */
    uint32_t s1() const { return s1_; }
    uint32_t s2() const { return s2_; }
    uint32_t s3() const { return s3_; }

    /**
     * Restore raw component state (checkpointing, and the batch layer
     * committing a mirrored stream back after a block of draws). The
     * components must satisfy the LFSR minimums -- any state read back
     * from a live generator does.
     */
    void setState(uint32_t s1, uint32_t s2, uint32_t s3);

    /**
     * Whether no fault hook and no health monitor is attached. Only a
     * plain stream may be mirrored into a TausBank lane: the bank has
     * no per-word observation seams, so hooked generators must stay on
     * the scalar path where every word passes the hook/monitor.
     */
    bool plain() const
    {
        return fault_hook_ == nullptr && health_ == nullptr;
    }

    /**
     * Attach a fault hook at the output register: every generated
     * word passes through hook->urngWord() before anything else sees
     * it (the internal LFSR state keeps evolving -- this models a
     * fault on the output flops, not the state). Null detaches.
     * The pointer is borrowed; the hook must outlive the generator.
     */
    void setFaultHook(FaultHook *hook) { fault_hook_ = hook; }

    /**
     * Attach a continuous health monitor: it observes every output
     * word *after* the fault hook, i.e. exactly what the datapath
     * consumes -- the vantage point from which real 90B tests watch
     * an entropy source. Null detaches. Borrowed pointer.
     */
    void attachHealthMonitor(RngHealthMonitor *monitor)
    {
        health_ = monitor;
    }

  private:
    uint32_t s1_;
    uint32_t s2_;
    uint32_t s3_;
    FaultHook *fault_hook_ = nullptr;
    RngHealthMonitor *health_ = nullptr;
};

} // namespace ulpdp

#endif // ULPDP_RNG_TAUSWORTHE_H
