#include "rng/laplace_table.h"

#include "common/fault.h"
#include "common/logging.h"
#include "rng/fxp_laplace.h"

namespace ulpdp {

bool
LaplaceSampleTable::supports(int uniform_bits,
                             int64_t max_magnitude_index)
{
    return uniform_bits >= 1 && uniform_bits <= kMaxUniformBits &&
           max_magnitude_index <= kMaxMagnitudeIndex;
}

LaplaceSampleTable::LaplaceSampleTable(const FxpLaplaceRng &rng)
{
    const FxpLaplaceConfig &cfg = rng.config();
    int64_t sat = rng.quantizer().maxIndex();
    if (!supports(cfg.uniform_bits, sat))
        fatal("LaplaceSampleTable: unsupported configuration "
              "(uniform_bits %d, max index %lld); the table needs "
              "uniform_bits <= %d and indices <= %lld",
              cfg.uniform_bits, static_cast<long long>(sat),
              kMaxUniformBits,
              static_cast<long long>(kMaxMagnitudeIndex));

    states_ = uint64_t{1} << cfg.uniform_bits;
    direct_.resize(static_cast<size_t>(states_));

    // One pass of the real pipeline per URNG state; per-index counts
    // fall out of the same pass.
    std::vector<uint64_t> counts(static_cast<size_t>(sat) + 1, 0);
    for (uint64_t m = 1; m <= states_; ++m) {
        int64_t k = rng.pipeline(m, 1);
        ULPDP_ASSERT(k >= 0 && k <= sat);
        direct_[static_cast<size_t>(m - 1)] =
            static_cast<uint16_t>(k);
        ++counts[static_cast<size_t>(k)];
    }

    max_index_ = 0;
    for (int64_t k = sat; k >= 0; --k) {
        if (counts[static_cast<size_t>(k)] > 0) {
            max_index_ = k;
            break;
        }
    }

    // cum_[k] = #states with output <= k, for k in [0, max_index_).
    // cumulativeCount() serves k >= max_index_ as the full state
    // count, so the array stops one short of the support top.
    cum_.resize(static_cast<size_t>(max_index_));
    uint64_t running = 0;
    for (int64_t k = 0; k < max_index_; ++k) {
        running += counts[static_cast<size_t>(k)];
        cum_[static_cast<size_t>(k)] = running;
    }

    // rank_ inverts cum_: ranks [cum(k-1), cum(k)) map to index k.
    rank_.resize(static_cast<size_t>(states_));
    size_t r = 0;
    for (int64_t k = 0; k <= max_index_; ++k) {
        for (uint64_t c = counts[static_cast<size_t>(k)]; c > 0; --c)
            rank_[r++] = static_cast<uint16_t>(k);
    }
    ULPDP_ASSERT(r == static_cast<size_t>(states_));

    crc_ = computeCrc();
}

uint32_t
LaplaceSampleTable::computeCrc() const
{
    uint32_t c = crc32(direct_.data(),
                       direct_.size() * sizeof(uint16_t));
    c = crc32(rank_.data(), rank_.size() * sizeof(uint16_t), c);
    return crc32(cum_.data(), cum_.size() * sizeof(uint64_t), c);
}

bool
LaplaceSampleTable::verify() const
{
    return computeCrc() == crc_;
}

void
LaplaceSampleTable::flipBit(size_t byte_offset, int bit)
{
    ULPDP_ASSERT(bit >= 0 && bit < 8);
    ULPDP_ASSERT(byte_offset < faultableBytes());

    size_t direct_bytes = direct_.size() * sizeof(uint16_t);
    size_t rank_bytes = rank_.size() * sizeof(uint16_t);
    uint8_t *base;
    if (byte_offset < direct_bytes) {
        base = reinterpret_cast<uint8_t *>(direct_.data());
    } else if (byte_offset < direct_bytes + rank_bytes) {
        base = reinterpret_cast<uint8_t *>(rank_.data());
        byte_offset -= direct_bytes;
    } else {
        base = reinterpret_cast<uint8_t *>(cum_.data());
        byte_offset -= direct_bytes + rank_bytes;
    }
    base[byte_offset] ^= static_cast<uint8_t>(1u << bit);
}

size_t
LaplaceSampleTable::memoryBytes() const
{
    return direct_.size() * sizeof(uint16_t) +
           rank_.size() * sizeof(uint16_t) +
           cum_.size() * sizeof(uint64_t);
}

} // namespace ulpdp
