#include "rng/cordic.h"

#include <bit>
#include <cmath>

#include "common/logging.h"

namespace ulpdp {

CordicLog::CordicLog(int iterations, int frac_bits)
    : iterations_(iterations), frac_bits_(frac_bits)
{
    if (iterations < 4 || iterations > 60)
        fatal("CordicLog: iterations must be in [4, 60], got %d",
              iterations);
    if (frac_bits < 8 || frac_bits > 56)
        fatal("CordicLog: frac_bits must be in [8, 56], got %d",
              frac_bits);

    double scale = std::ldexp(1.0, frac_bits_);
    ln2_raw_ = std::llrint(std::log(2.0) * scale);

    // Hyperbolic CORDIC only converges if certain iterations are
    // repeated: shift amounts 4, 13, 40, 121, ... (k_{j+1} = 3 k_j + 1)
    // appear twice in the schedule.
    int next_repeat = 4;
    for (int i = 1; schedule_.size() <
             static_cast<size_t>(iterations_); ++i) {
        schedule_.push_back(i);
        if (i == next_repeat &&
            schedule_.size() < static_cast<size_t>(iterations_)) {
            schedule_.push_back(i);
            next_repeat = 3 * next_repeat + 1;
        }
    }

    int max_shift = schedule_.back();
    atanh_table_.assign(static_cast<size_t>(max_shift) + 1, 0);
    for (int i = 1; i <= max_shift; ++i) {
        double t = std::ldexp(1.0, -i);
        atanh_table_[static_cast<size_t>(i)] =
            std::llrint(std::atanh(t) * scale);
    }
}

int64_t
CordicLog::atanhRatioRaw(int64_t x0, int64_t y0) const
{
    int64_t x = x0;
    int64_t y = y0;
    int64_t z = 0;
    for (int shift : schedule_) {
        int64_t xs = x >> shift;
        int64_t ys = y >> shift;
        if (y >= 0) {
            // Rotate toward y = 0 from above.
            x -= ys;
            y -= xs;
            z += atanh_table_[static_cast<size_t>(shift)];
        } else {
            x += ys;
            y += xs;
            z -= atanh_table_[static_cast<size_t>(shift)];
        }
    }
    return z;
}

int64_t
CordicLog::lnMantissaRaw(int64_t w_raw) const
{
    int64_t one = int64_t{1} << frac_bits_;
    ULPDP_ASSERT(w_raw >= one && w_raw < 2 * one);
    // ln(w) = 2 * atanh((w - 1) / (w + 1)); vectoring mode computes
    // atanh(y0 / x0) directly from x0 = w + 1, y0 = w - 1.
    int64_t z = atanhRatioRaw(w_raw + one, w_raw - one);
    return 2 * z;
}

int64_t
CordicLog::lnUnitIndexRaw(uint64_t m, int bu) const
{
    ULPDP_ASSERT(bu >= 1 && bu <= 32);
    ULPDP_ASSERT(m >= 1 && m <= (uint64_t{1} << bu));
    // Normalise m = w * 2^e with mantissa w in [1, 2):
    // ln(m * 2^-bu) = ln(w) + (e - bu) * ln 2.
    int e = std::bit_width(m) - 1;
    if ((uint64_t{1} << e) == m) {
        // Exact power of two: mantissa is 1, ln(w) = 0.
        return static_cast<int64_t>(e - bu) * ln2_raw_;
    }
    int64_t w_raw;
    if (frac_bits_ >= e) {
        w_raw = static_cast<int64_t>(m) << (frac_bits_ - e);
    } else {
        w_raw = static_cast<int64_t>(m >> (e - frac_bits_));
    }
    return lnMantissaRaw(w_raw) +
           static_cast<int64_t>(e - bu) * ln2_raw_;
}

double
CordicLog::lnUnitIndex(uint64_t m, int bu) const
{
    return std::ldexp(static_cast<double>(lnUnitIndexRaw(m, bu)),
                      -frac_bits_);
}

double
CordicLog::ln(double x) const
{
    if (!(x > 0.0))
        fatal("CordicLog::ln: argument must be positive, got %g", x);
    int e;
    double frac = std::frexp(x, &e); // x = frac * 2^e, frac in [0.5, 1)
    double w = frac * 2.0;           // w in [1, 2)
    e -= 1;
    int64_t w_raw = std::llrint(std::ldexp(w, frac_bits_));
    int64_t one = int64_t{1} << frac_bits_;
    if (w_raw >= 2 * one)
        w_raw = 2 * one - 1;
    int64_t raw = lnMantissaRaw(w_raw) +
                  static_cast<int64_t>(e) * ln2_raw_;
    return std::ldexp(static_cast<double>(raw), -frac_bits_);
}

} // namespace ulpdp
