/**
 * @file
 * Hyperbolic CORDIC natural-logarithm unit.
 *
 * The DP-Box computes the inverse-CDF logarithm of Eq. (17) with a
 * CORDIC logarithm block ("By implementing a CORDIC logarithm function
 * ... the entire logarithm computation can be completed in a single
 * cycle", Section IV-B). CORDIC needs only shifts, adds and a small
 * arctanh constant table -- no multiplier -- which is why it is the
 * standard choice for ULP fixed-point transcendental hardware.
 *
 * This class is a bit-accurate integer model: all iteration state is
 * held in 64-bit fixed point and the only floating-point involvement
 * is building the constant table at construction.
 */

#ifndef ULPDP_RNG_CORDIC_H
#define ULPDP_RNG_CORDIC_H

#include <cstdint>
#include <vector>

namespace ulpdp {

/**
 * Vectoring-mode hyperbolic CORDIC computing ln(x) via the identity
 * ln(w) = 2 * atanh((w - 1) / (w + 1)), with the argument normalised
 * into [1, 2) and the exponent folded back in as a multiple of ln 2.
 */
class CordicLog
{
  public:
    /**
     * @param iterations Number of CORDIC micro-rotations (4..60).
     *        Accuracy is roughly 2^-iterations; the default of 32
     *        leaves the quantizer, not the CORDIC, as the dominant
     *        error source for every configuration in the paper.
     * @param frac_bits Internal fixed-point fraction bits (8..56).
     */
    explicit CordicLog(int iterations = 32, int frac_bits = 48);

    /** Number of micro-rotations configured. */
    int iterations() const { return iterations_; }

    /** Internal fraction bits. */
    int fracBits() const { return frac_bits_; }

    /**
     * Natural log of u = m * 2^-bu for m in {1, ..., 2^bu}, i.e. of
     * the URNG output of Eq. (9), computed entirely in integer
     * arithmetic. Result is <= 0.
     */
    double lnUnitIndex(uint64_t m, int bu) const;

    /**
     * Same as lnUnitIndex() but returning the raw internal fixed-point
     * word (Q frac_bits). This is what the downstream scaling stage of
     * the DP-Box datapath consumes.
     */
    int64_t lnUnitIndexRaw(uint64_t m, int bu) const;

    /** Natural log of an arbitrary positive double (for testing). */
    double ln(double x) const;

  private:
    /**
     * Core vectoring iteration: returns atanh(y0/x0) in Q frac_bits
     * fixed point given x0, y0 already in Q frac_bits.
     */
    int64_t atanhRatioRaw(int64_t x0, int64_t y0) const;

    /** ln of a mantissa w in [1, 2) given in Q frac_bits; raw result. */
    int64_t lnMantissaRaw(int64_t w_raw) const;

    int iterations_;
    int frac_bits_;
    int64_t ln2_raw_;
    /** atanh(2^-i) table in Q frac_bits, indexed by shift amount i. */
    std::vector<int64_t> atanh_table_;
    /** CORDIC iteration schedule (shift amount per micro-rotation,
     *  with the standard repeats at i = 4, 13, 40 for convergence). */
    std::vector<int> schedule_;
};

} // namespace ulpdp

#endif // ULPDP_RNG_CORDIC_H
