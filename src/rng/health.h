/**
 * @file
 * Continuous health tests on the Tausworthe output stream, in the
 * style of NIST SP 800-90B section 4.4.
 *
 * The DP-Box's privacy proof assumes the uniform source is, in fact,
 * uniform. A URNG whose output register sticks (SEU latching a flop,
 * a dead clock branch) silently turns Laplace noise into a constant,
 * at which point every released report is the true reading plus a
 * known offset -- unbounded privacy loss with no functional symptom.
 * Real entropy sources therefore run continuous health tests; we run
 * the two 90B prescribes, adapted to 32-bit generator words:
 *
 *  - Repetition count test: C consecutive identical output words trip
 *    the alarm. For an ideal 32-bit source the probability of even
 *    one repeat is 2^-32 per word, so the default cutoff of 3 has a
 *    false-alarm rate around 2^-64 per word while catching a stuck
 *    output register within 3 draws.
 *
 *  - Adaptive proportion test, per bit lane: over a window of W
 *    words, each of the 32 bit positions must stay within
 *    [W/2 - tol, W/2 + tol] ones. A single stuck or flipped *bit*
 *    (which the word-level repetition test cannot see, since the
 *    words still all differ) drives its lane to 0 or W and trips
 *    within one window. The default tolerance of 6 sigma keeps the
 *    false-alarm rate per lane per window below 1e-8.
 *
 * The monitor is passive: attach it to a Tausworthe and it observes
 * every output word (after any fault hook, i.e. it sees what the
 * datapath sees). Alarms latch; the consuming component decides the
 * fail-secure response.
 */

#ifndef ULPDP_RNG_HEALTH_H
#define ULPDP_RNG_HEALTH_H

#include <cstdint>

namespace ulpdp {

/** Tuning of the continuous health tests. */
struct RngHealthConfig
{
    /** Repetition-count cutoff C: alarm at C identical words in a
     *  row. Must be >= 2. */
    int repetition_cutoff = 3;

    /** Adaptive-proportion window W in words; 0 disables the test. */
    uint32_t proportion_window = 512;

    /**
     * Allowed deviation of each bit lane's ones-count from W/2, in
     * counts. The default is ~6 standard deviations of Bin(W, 1/2)
     * at W = 512 (sigma ~= 11.3).
     */
    uint32_t proportion_tolerance = 68;
};

/** Latching continuous health monitor for a 32-bit URNG stream. */
class RngHealthMonitor
{
  public:
    explicit RngHealthMonitor(const RngHealthConfig &config = {});

    /** Feed one output word (called by the attached generator). */
    void observe(uint32_t word);

    /** True once any test has tripped (latching). */
    bool alarmed() const { return alarmed_; }

    /** Repetition-count trips so far. */
    uint64_t repetitionAlarms() const { return repetition_alarms_; }

    /** Adaptive-proportion trips so far (lanes out of tolerance). */
    uint64_t proportionAlarms() const { return proportion_alarms_; }

    /** Words observed so far. */
    uint64_t observed() const { return observed_; }

    /** Clear the alarm latch and all windows (after remediation --
     *  e.g. a reseed from a trusted source -- or between tests). */
    void reset();

    /** Configuration in effect. */
    const RngHealthConfig &config() const { return config_; }

  private:
    RngHealthConfig config_;
    bool alarmed_ = false;
    uint64_t observed_ = 0;
    uint64_t repetition_alarms_ = 0;
    uint64_t proportion_alarms_ = 0;

    // Repetition-count state.
    uint32_t last_word_ = 0;
    int run_length_ = 0;

    // Adaptive-proportion state: ones-count per bit lane over the
    // current window.
    uint32_t lane_ones_[32] = {};
    uint32_t window_fill_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_RNG_HEALTH_H
