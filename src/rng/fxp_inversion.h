/**
 * @file
 * Generic fixed-point inversion RNG and its enumerated exact PMF.
 *
 * Section III-A4 of the paper argues the infinite-loss failure is not
 * about Laplace specifically: any DP-guaranteeing distribution
 * (Gaussian, staircase, ...) realised by mapping a finite uniform
 * word through an inverse CDF inherits quantized tails, bounded
 * support and interior gaps. This module makes that claim executable:
 * plug any magnitude inverse-CDF into FxpInversionRng, enumerate its
 * exact PMF with EnumeratedNoisePmf, and run the same privacy-loss
 * analysis and range controls the Laplace path uses.
 *
 * Three magnitude ICDFs are provided:
 *  - LaplaceMagnitude: -lambda ln(u) (identical math to
 *    FxpLaplaceRng; used to cross-validate the generic path),
 *  - GaussianMagnitude: sigma * probit(1 - u/2), the half-normal
 *    quantile, via the Acklam rational approximation of the probit
 *    (|relative error| < 1.2e-9 -- far below any Bu <= 32 grid),
 *  - StaircaseMagnitude: the inverse CDF of the magnitude of the
 *    staircase mechanism (Geng & Viswanath), the noise that is
 *    utility-optimal for pure eps-DP.
 */

#ifndef ULPDP_RNG_FXP_INVERSION_H
#define ULPDP_RNG_FXP_INVERSION_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fixed/quantizer.h"
#include "rng/noise_pmf.h"
#include "rng/tausworthe.h"

namespace ulpdp {

/**
 * Magnitude inverse CDF: maps u in (0, 1] to the magnitude
 * F^-1(u) >= 0 such that Pr[|N| >= F^-1(u)] = u for the target
 * distribution (so u = 1 maps to 0 and u -> 0 maps into the tail).
 */
class MagnitudeIcdf
{
  public:
    virtual ~MagnitudeIcdf() = default;

    /** Magnitude with upper-tail probability @p u. */
    virtual double magnitude(double u) const = 0;

    /** Distribution name. */
    virtual std::string name() const = 0;
};

/** |N| for N ~ Lap(lambda): magnitude(u) = -lambda ln(u). */
class LaplaceMagnitude : public MagnitudeIcdf
{
  public:
    explicit LaplaceMagnitude(double lambda);
    double magnitude(double u) const override;
    std::string name() const override { return "Laplace"; }

  private:
    double lambda_;
};

/** |N| for N ~ N(0, sigma^2): magnitude(u) = sigma*probit(1 - u/2). */
class GaussianMagnitude : public MagnitudeIcdf
{
  public:
    explicit GaussianMagnitude(double sigma);
    double magnitude(double u) const override;
    std::string name() const override { return "Gaussian"; }

    /** Acklam's rational approximation of the standard normal
     *  quantile, exposed for testing. p in (0, 1). */
    static double probit(double p);

  private:
    double sigma_;
};

/**
 * |N| for the staircase mechanism with sensitivity d, privacy eps
 * and shape parameter gamma in (0, 1): a piecewise-constant density
 * with steps of height proportional to e^{-k eps} on
 * [k d, (k + gamma) d) and e^{-(k+1) eps} on [(k + gamma) d,
 * (k+1) d). gamma = e^{-eps/2}/(1 + e^{-eps/2}) minimises expected
 * noise magnitude (Geng & Viswanath 2014).
 */
class StaircaseMagnitude : public MagnitudeIcdf
{
  public:
    StaircaseMagnitude(double sensitivity, double epsilon,
                       double gamma);
    double magnitude(double u) const override;
    std::string name() const override { return "Staircase"; }

    /** The optimal gamma for a given epsilon. */
    static double optimalGamma(double epsilon);

  private:
    double d_;
    double epsilon_;
    double gamma_;
    /** Probability of the magnitude landing in period k's first
     *  (tall) step; derived normalisation constants. */
    double p_first_;
    double p_period_;
};

/** Configuration of the generic inversion pipeline. */
struct FxpInversionConfig
{
    /** URNG magnitude width Bu in bits. */
    int uniform_bits = 17;

    /** Output word width By in bits. */
    int output_bits = 12;

    /** Quantization step Delta. */
    double delta = 10.0 / 32.0;
};

/**
 * The generic Fig. 3 pipeline: Bu-bit uniform index -> magnitude
 * ICDF -> round to k * Delta -> random sign.
 */
class FxpInversionRng
{
  public:
    FxpInversionRng(const FxpInversionConfig &config,
                    std::shared_ptr<const MagnitudeIcdf> icdf,
                    uint64_t seed = 1);

    /** Deterministic pipeline map (m in 1..2^Bu, sign +-1). */
    int64_t pipeline(uint64_t m, int sign) const;

    /** Draw one signed noise index. */
    int64_t sampleIndex();

    /** Draw one noise value k * Delta. */
    double sample();

    /** Configuration. */
    const FxpInversionConfig &config() const { return config_; }

    /** Quantizer stage. */
    const Quantizer &quantizer() const { return quantizer_; }

    /** The magnitude ICDF in use. */
    const MagnitudeIcdf &icdf() const { return *icdf_; }

  private:
    FxpInversionConfig config_;
    Quantizer quantizer_;
    std::shared_ptr<const MagnitudeIcdf> icdf_;
    Tausworthe urng_;
};

/**
 * Exact PMF of any FxpInversionRng, obtained by enumerating all 2^Bu
 * URNG states through the pipeline (Bu <= 24).
 */
class EnumeratedNoisePmf : public NoisePmf
{
  public:
    EnumeratedNoisePmf(const FxpInversionConfig &config,
                       std::shared_ptr<const MagnitudeIcdf> icdf);

    double pmf(int64_t k) const override;
    double tailMass(int64_t k) const override;
    double upperMass(int64_t k) const override;
    int64_t maxIndex() const override { return max_index_; }

    /** URNG states mapping to magnitude index k. */
    uint64_t magnitudeCount(int64_t k) const;

    /** First interior magnitude gap, or -1 (cf. Fig. 4(b)). */
    int64_t firstInteriorGap() const;

    /** Total probability (must be 1). */
    double totalMass() const;

  private:
    int uniform_bits_;
    int64_t max_index_;
    std::vector<uint64_t> counts_;
    /** Suffix sums of counts_ for O(1) tail masses. */
    std::vector<uint64_t> suffix_;
};

} // namespace ulpdp

#endif // ULPDP_RNG_FXP_INVERSION_H
