/**
 * @file
 * Fixed-point Laplace random number generator -- the paper's Fig. 3
 * pipeline: a Bu-bit uniform index from the Tausworthe URNG is mapped
 * through the inverse CDF magnitude -lambda * ln(u), rounded to the
 * nearest multiple of the quantization step Delta, saturated to the
 * By-bit output word, and given a random sign.
 *
 * Two computation modes are provided:
 *  - Reference: the logarithm is evaluated in double precision. This
 *    matches the mathematical model of Section III-A2 exactly, so its
 *    output distribution equals the analytic PMF of Eq. (11) bit for
 *    bit (tests enumerate all 2^Bu URNG states to prove it).
 *  - Cordic: the logarithm runs through the integer CORDIC unit, i.e.
 *    the actual hardware datapath. Near quantization-bin boundaries
 *    its finite precision can move a sample by one LSB relative to
 *    Reference; a dedicated bench quantifies the PMF perturbation.
 */

#ifndef ULPDP_RNG_FXP_LAPLACE_H
#define ULPDP_RNG_FXP_LAPLACE_H

#include <cstdint>

#include "fixed/quantizer.h"
#include "rng/cordic.h"
#include "rng/tausworthe.h"

namespace ulpdp {

/** Static configuration of a fixed-point Laplace RNG. */
struct FxpLaplaceConfig
{
    /** URNG output width Bu in bits (paper default 17). */
    int uniform_bits = 17;

    /** RNG output width By in bits (paper default 12). */
    int output_bits = 12;

    /** Quantization step Delta (paper example: 10 / 2^5). */
    double delta = 10.0 / 32.0;

    /** Laplace scale lambda = d / eps (paper example: Lap(20)). */
    double lambda = 20.0;

    /** How the logarithm is evaluated. */
    enum class LogMode { Reference, Cordic };
    LogMode log_mode = LogMode::Reference;

    /** CORDIC micro-rotations (Cordic mode only). */
    int cordic_iterations = 32;
};

/**
 * The fixed-point inverse-CDF Laplace sampler of Fig. 3.
 *
 * Every sample is some k * Delta with k in the signed By-bit index
 * range; the support is bounded by L = lambda * Bu * ln 2 (the largest
 * magnitude, produced by the smallest URNG output u = 2^-Bu) and, on
 * the saturation side, by the quantizer's representable range.
 */
class FxpLaplaceRng
{
  public:
    /**
     * @param config Static configuration.
     * @param seed Tausworthe seed.
     */
    explicit FxpLaplaceRng(const FxpLaplaceConfig &config,
                           uint64_t seed = 1);

    /** Draw one noise sample; returns the value k * Delta. */
    double sample();

    /** Draw one noise sample; returns the signed index k. */
    int64_t sampleIndex();

    /**
     * Deterministically map one URNG magnitude index m (1..2^Bu) and a
     * sign to an output index, without consuming randomness. This is
     * the pure pipeline function; tests enumerate it over all m.
     */
    int64_t pipeline(uint64_t m, int sign) const;

    /** Configuration in effect. */
    const FxpLaplaceConfig &config() const { return config_; }

    /** The quantizer stage (resolution and saturation limits). */
    const Quantizer &quantizer() const { return quantizer_; }

    /**
     * Largest magnitude the pipeline can produce before saturation:
     * L = lambda * Bu * ln 2 (Section III-A2).
     */
    double maxMagnitude() const;

    /** Number of samples drawn so far (latency accounting). */
    uint64_t samplesDrawn() const { return samples_drawn_; }

  private:
    FxpLaplaceConfig config_;
    Quantizer quantizer_;
    Tausworthe urng_;
    CordicLog cordic_;
    uint64_t samples_drawn_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_RNG_FXP_LAPLACE_H
