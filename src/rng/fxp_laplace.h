/**
 * @file
 * Fixed-point Laplace random number generator -- the paper's Fig. 3
 * pipeline: a Bu-bit uniform index from the Tausworthe URNG is mapped
 * through the inverse CDF magnitude -lambda * ln(u), rounded to the
 * nearest multiple of the quantization step Delta, saturated to the
 * By-bit output word, and given a random sign.
 *
 * Two computation modes are provided:
 *  - Reference: the logarithm is evaluated in double precision. This
 *    matches the mathematical model of Section III-A2 exactly, so its
 *    output distribution equals the analytic PMF of Eq. (11) bit for
 *    bit (tests enumerate all 2^Bu URNG states to prove it).
 *  - Cordic: the logarithm runs through the integer CORDIC unit, i.e.
 *    the actual hardware datapath. Near quantization-bin boundaries
 *    its finite precision can move a sample by one LSB relative to
 *    Reference; a dedicated bench quantifies the PMF perturbation.
 */

#ifndef ULPDP_RNG_FXP_LAPLACE_H
#define ULPDP_RNG_FXP_LAPLACE_H

#include <cstddef>
#include <cstdint>
#include <memory>

#include "fixed/quantizer.h"
#include "rng/cordic.h"
#include "rng/tausworthe.h"

namespace ulpdp {

class LaplaceSampleTable;

/** Static configuration of a fixed-point Laplace RNG. */
struct FxpLaplaceConfig
{
    /** URNG output width Bu in bits (paper default 17). */
    int uniform_bits = 17;

    /** RNG output width By in bits (paper default 12). */
    int output_bits = 12;

    /** Quantization step Delta (paper example: 10 / 2^5). */
    double delta = 10.0 / 32.0;

    /** Laplace scale lambda = d / eps (paper example: Lap(20)). */
    double lambda = 20.0;

    /** How the logarithm is evaluated. */
    enum class LogMode { Reference, Cordic };
    LogMode log_mode = LogMode::Reference;

    /**
     * How the magnitude is quantized to the Delta grid.
     *  - Nearest: round to the nearest multiple of Delta (the paper's
     *    Fig. 3 pipeline; Eq. (11) boundaries at k -/+ 1/2).
     *  - Floor: truncate toward zero, k = floor(magnitude / Delta).
     *    This turns the sampler into an exact two-sided geometric
     *    (discrete Laplace): Pr[|n| = k Delta] is proportional to
     *    e^(-a k) (1 - e^(-a)) with a = Delta / lambda, because the
     *    continuous magnitude is exponential and flooring an
     *    exponential yields a geometric. Truncation is one bit
     *    cheaper than round-nearest in the datapath (no half-LSB
     *    adder), so the variant is ULP-plausible as well as
     *    analytically convenient.
     */
    enum class Rounding { Nearest, Floor };
    Rounding rounding = Rounding::Nearest;

    /** CORDIC micro-rotations (Cordic mode only). */
    int cordic_iterations = 32;

    /**
     * How samples are served. The pipeline is a fixed map from URNG
     * words to output indices, so draws can come from a table
     * enumerated once at configuration time instead of evaluating the
     * logarithm per draw; both paths are bit-identical.
     *  - Auto: use the table whenever the configuration supports it
     *    (LaplaceSampleTable::supports), else the naive pipeline.
     *  - Table: require the table; building one for an unsupported
     *    configuration is a fatal user error.
     *  - Naive: always run the per-draw log pipeline (the reference
     *    implementation the table is validated against).
     */
    enum class SamplePath { Auto, Table, Naive };
    SamplePath sample_path = SamplePath::Auto;

    /**
     * Harden table lookups against SRAM corruption: every served
     * entry is range-checked (a hardware comparator), cumulative
     * counts are sanity-checked against the state count, and any
     * mismatch permanently quarantines the table -- the RNG falls
     * back to the log datapath, which computes the same pipeline
     * without the suspect memory. Disable only to model unhardened
     * silicon in fault-injection experiments.
     */
    bool integrity_checks = true;
};

/**
 * The fixed-point inverse-CDF Laplace sampler of Fig. 3.
 *
 * Every sample is some k * Delta with k in the signed By-bit index
 * range; the support is bounded by L = lambda * Bu * ln 2 (the largest
 * magnitude, produced by the smallest URNG output u = 2^-Bu) and, on
 * the saturation side, by the quantizer's representable range.
 */
class FxpLaplaceRng
{
  public:
    /**
     * @param config Static configuration.
     * @param seed Tausworthe seed.
     */
    explicit FxpLaplaceRng(const FxpLaplaceConfig &config,
                           uint64_t seed = 1);

    /** Draw one noise sample; returns the value k * Delta. */
    double sample();

    /** Draw one noise sample; returns the signed index k. */
    int64_t sampleIndex();

    /**
     * Draw one noise sample through the table fast path: the same
     * URNG words, the same output index, but one table load instead
     * of a logarithm. Falls back to sampleIndex() when the fast path
     * is disabled or unsupported, so callers can use it
     * unconditionally.
     */
    int64_t sampleIndexFast();

    /** Draw @p n noise indices into @p out (fast path when enabled). */
    void sampleBatch(int64_t *out, size_t n);

    /**
     * Draw one noise index conditioned on landing inside [lo, hi]
     * (which must contain 0), with exactly the conditional
     * distribution of accept-reject resampling -- accept-reject is
     * uniform over the URNG states whose output lies in the window,
     * and this draws one uniform rank over those states directly.
     * Requires the fast path (fastPathEnabled()).
     *
     * @return false without consuming randomness if no URNG state
     *         lands in the window (a mis-provisioned device; the
     *         naive loop would redraw forever).
     */
    bool sampleIndexTruncated(int64_t lo, int64_t hi, int64_t &out);

    /**
     * Whether draws are served from the precomputed table. Resolves
     * SamplePath::Auto against the configuration limits.
     */
    bool fastPathEnabled() const;

    /**
     * The sampling table, built on first use (fatal when the
     * configuration cannot support one -- check fastPathEnabled()).
     */
    const LaplaceSampleTable &table();

    /**
     * Shared handle on the sampling table (built on first use), or
     * nullptr when the fast path is unavailable. The batch sampling
     * layer (rng/batch_sampler.h) takes this handle so fleet workers
     * and per-block RNG copies all reference one enumeration --
     * nothing is ever re-enumerated or copied per block.
     */
    std::shared_ptr<const LaplaceSampleTable> sharedTable();

    /**
     * Mutable access to the sampling table for fault injection
     * (SEUs flip bits in the table SRAM). Returns nullptr when the
     * configuration has no table. Production code never calls this.
     */
    LaplaceSampleTable *mutableTable();

    /**
     * CRC-scrub the sampling table against its enumeration-time
     * signature (the periodic scrub of the hardening logic). Returns
     * false -- and quarantines the table -- on a mismatch; true when
     * the table is intact or was never built.
     */
    bool verifyTableIntegrity();

    /** True once any integrity check failed; the table is then
     *  quarantined for good (fastPathEnabled() goes false) and every
     *  draw runs through the log datapath instead. */
    bool integrityFault() const { return integrity_fault_; }

    /** Integrity-check failures observed so far. */
    uint64_t integrityDetections() const
    {
        return integrity_detections_;
    }

    /**
     * Deterministically map one URNG magnitude index m (1..2^Bu) and a
     * sign to an output index, without consuming randomness. This is
     * the pure pipeline function; tests enumerate it over all m.
     */
    int64_t pipeline(uint64_t m, int sign) const;

    /** Configuration in effect. */
    const FxpLaplaceConfig &config() const { return config_; }

    /** The quantizer stage (resolution and saturation limits). */
    const Quantizer &quantizer() const { return quantizer_; }

    /**
     * Largest magnitude the pipeline can produce before saturation:
     * L = lambda * Bu * ln 2 (Section III-A2).
     */
    double maxMagnitude() const;

    /** Number of samples drawn so far (latency accounting). */
    uint64_t samplesDrawn() const { return samples_drawn_; }

    /** The uniform source (tests assert it stays untouched on
     *  budget-halted requests). */
    const Tausworthe &urng() const { return urng_; }

    /** Mutable uniform source, for wiring fault hooks and health
     *  monitors into the URNG output register. */
    Tausworthe &urng() { return urng_; }

  private:
    /** Table pointer when the fast path is usable, else nullptr. */
    const LaplaceSampleTable *ensureTable();

    /** Latch an integrity fault and quarantine the table. */
    void noteIntegrityFault(const char *what);

    FxpLaplaceConfig config_;
    Quantizer quantizer_;
    Tausworthe urng_;
    CordicLog cordic_;
    /** Shared so copies of a configured RNG reuse the enumeration. */
    std::shared_ptr<LaplaceSampleTable> table_;
    uint64_t samples_drawn_ = 0;
    bool integrity_fault_ = false;
    uint64_t integrity_detections_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_RNG_FXP_LAPLACE_H
