/**
 * @file
 * Batched table sampling over a Tausworthe lane bank.
 *
 * BatchSampler fuses the two halves of the table-driven Fig. 3
 * pipeline into block operations: a TausBank steps W independent
 * per-node URNG streams in lockstep (rng/taus_bank.h), and the
 * resulting words index the shared LaplaceSampleTable in blocked,
 * software-prefetched lookups. Every branch that used to sit in the
 * per-draw path -- the m == 0 -> 2^Bu wrap, the sign apply, the
 * truncated-rank sign select -- is an arithmetic select here, so a
 * block of draws is straight-line data flow.
 *
 * Bit-exactness contract: lane l of a rect is the exact draw sequence
 * a scalar FxpLaplaceRng would produce on the same stream --
 * sampleRect() consumes one magnitude word then one sign word per
 * draw like sampleBatch()/sampleIndexFast(), and
 * sampleTruncatedRect() consumes width-bit rank words with the same
 * rejection rule as sampleIndexTruncated(). The fleet leans on this:
 * batched and scalar execution produce bit-identical FleetReports.
 *
 * Fault handling is deliberately coarse: the sampler never quarantines
 * anything itself. When an integrity comparator would have tripped
 * (a direct entry above the saturation index, a cumulative count
 * above the state count, a rank entry escaping its window), the batch
 * call returns false and the caller redoes the affected work on the
 * scalar path, whose per-draw checks then quarantine the table with
 * the exact semantics of FxpLaplaceRng. Because every lane restarts
 * from its seed on the scalar redo, the recovery is bit-identical to
 * having run scalar all along.
 */

#ifndef ULPDP_RNG_BATCH_SAMPLER_H
#define ULPDP_RNG_BATCH_SAMPLER_H

#include <cstddef>
#include <cstdint>
#include <memory>

#include "rng/taus_bank.h"

namespace ulpdp {

class LaplaceSampleTable;

/** Blocked table sampling across a bank of taus88 lanes. */
class BatchSampler
{
  public:
    /**
     * @param table Enumerated sampling table, shared read-only (the
     *        fleet passes each cohort's prototype table).
     * @param uniform_bits URNG output width Bu of the pipeline the
     *        table was enumerated from.
     * @param sat_index Quantizer saturation index; direct entries
     *        above it mean table corruption (the hardware comparator).
     * @param integrity_checks Mirror of
     *        FxpLaplaceConfig::integrity_checks: when false, suspect
     *        entries are served instead of failing the batch, exactly
     *        like unhardened silicon.
     */
    BatchSampler(std::shared_ptr<const LaplaceSampleTable> table,
                 int uniform_bits, int64_t sat_index,
                 bool integrity_checks = true);

    /** Seed @p lanes lanes (TausBank::seed semantics: bit-identical
     *  to constructing a scalar Tausworthe per seed). */
    void seedLanes(const uint64_t *seeds, size_t lanes);

    /** Active lane count. */
    size_t lanes() const { return bank_.lanes(); }

    /** The underlying lane bank (tests interleave scalar fixups). */
    TausBank &bank() { return bank_; }

    /**
     * Draw @p trials unbounded signed noise indices per lane into the
     * trial-major rect out[t * lanes() + l]. Lane l's column is
     * bit-identical to FxpLaplaceRng::sampleBatch on lane l's stream.
     *
     * @return false if an integrity comparator would have tripped
     *         (only when integrity checks are on). The bank state and
     *         rect contents are then unspecified; the caller redoes
     *         the work on the scalar path from the original seeds.
     */
    bool sampleRect(int64_t *out, size_t trials);

    /** Per-lane truncation window, relative to the lane's input index
     *  (lo <= 0 <= hi), as passed to sampleIndexTruncated. */
    struct Window
    {
        int64_t lo = 0;
        int64_t hi = 0;
    };

    /**
     * Draw @p trials window-confined signed noise indices per lane
     * into out[t * lanes() + l]: lane l's column is bit-identical to
     * trials calls of sampleIndexTruncated(win[l].lo, win[l].hi) on
     * lane l's stream. The per-lane acceptance mass and rank width
     * are hoisted out of the trial loop (they are constant per
     * window), which is the batch path's main win over the scalar
     * per-call recomputation.
     *
     * @return false on any condition the scalar path would treat
     *         specially: an integrity fault (cumulative count above
     *         the state count, rank entry escaping its window) or a
     *         window holding no URNG state (the scalar path's
     *         warn-and-clamp overflow). Callers redo on the scalar
     *         path, which reproduces the exact scalar behaviour.
     */
    bool sampleTruncatedRect(const Window *win, int64_t *out,
                             size_t trials);

  private:
    std::shared_ptr<const LaplaceSampleTable> table_;
    int uniform_bits_;
    int64_t sat_index_;
    bool integrity_checks_;
    TausBank bank_;
};

} // namespace ulpdp

#endif // ULPDP_RNG_BATCH_SAMPLER_H
