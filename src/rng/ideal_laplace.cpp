#include "rng/ideal_laplace.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

IdealLaplace::IdealLaplace(double lambda, uint64_t seed)
    : lambda_(lambda), gen_(seed), unit_(0.0, 1.0)
{
    if (!(lambda > 0.0))
        fatal("IdealLaplace: lambda must be positive, got %g", lambda);
}

double
IdealLaplace::sample()
{
    // Inversion: u uniform in (-1/2, 1/2), sample is
    // -lambda * sgn(u) * log(1 - 2|u|).
    double u = unit_(gen_) - 0.5;
    double sgn = u < 0.0 ? -1.0 : 1.0;
    double mag = std::abs(u);
    // Guard against log(0) at the (probability-zero) endpoint.
    double inner = std::max(1.0 - 2.0 * mag, 1e-300);
    return -lambda_ * sgn * std::log(inner);
}

double
IdealLaplace::pdf(double x) const
{
    return std::exp(-std::abs(x) / lambda_) / (2.0 * lambda_);
}

double
IdealLaplace::cdf(double x) const
{
    if (x < 0.0)
        return 0.5 * std::exp(x / lambda_);
    return 1.0 - 0.5 * std::exp(-x / lambda_);
}

double
IdealLaplace::icdf(double p) const
{
    ULPDP_ASSERT(p > 0.0 && p < 1.0);
    if (p < 0.5)
        return lambda_ * std::log(2.0 * p);
    return -lambda_ * std::log(2.0 * (1.0 - p));
}

double
IdealLaplace::upperTail(double x) const
{
    ULPDP_ASSERT(x >= 0.0);
    return 0.5 * std::exp(-x / lambda_);
}

} // namespace ulpdp
