/**
 * @file
 * Abstract interface for exact noise PMFs on the Delta index grid.
 *
 * Section III-A4 of the paper generalises the infinite-loss problem
 * beyond Laplace: *any* DP-guaranteeing distribution (Gaussian,
 * staircase, ...) realised with finite-precision inversion suffers
 * quantized tails, bounded support and interior gaps. The output
 * models and the privacy-loss analyzer therefore work against this
 * interface, so the same exact analysis applies to every noise
 * distribution the library implements (FxpLaplacePmf analytically,
 * EnumeratedNoisePmf for arbitrary inversion pipelines).
 */

#ifndef ULPDP_RNG_NOISE_PMF_H
#define ULPDP_RNG_NOISE_PMF_H

#include <cstdint>

namespace ulpdp {

/**
 * Exact, sign-symmetric PMF of a discrete noise distribution over
 * signed indices k (noise value = k * Delta).
 */
class NoisePmf
{
  public:
    virtual ~NoisePmf() = default;

    /** Pr[n = k * Delta] for a signed index k. */
    virtual double pmf(int64_t k) const = 0;

    /** Pr[n >= k * Delta] for k >= 1 (upper tail mass). */
    virtual double tailMass(int64_t k) const = 0;

    /** Pr[n >= k * Delta] for any signed k. */
    virtual double upperMass(int64_t k) const = 0;

    /** Largest index with positive probability. */
    virtual int64_t maxIndex() const = 0;
};

} // namespace ulpdp

#endif // ULPDP_RNG_NOISE_PMF_H
