/**
 * @file
 * Exact probability mass function of the fixed-point Laplace RNG.
 *
 * Section III-B of the paper derives, in Eq. (11), the probability
 * that the Fig. 3 pipeline outputs the value k * Delta:
 *
 *   Pr[n = k Delta] = (floor(m1(k)) - ceil(m2(k)) + 1) / 2^(Bu+1)
 *   m1(k) = 2^Bu * exp(-(eps Delta / d)(k - 1/2))
 *   m2(k) = 2^Bu * exp(-(eps Delta / d)(k + 1/2))
 *
 * (with eps Delta / d = Delta / lambda). The whole privacy analysis --
 * infinite-loss detection, the resampling/thresholding thresholds of
 * Eqs. (13)/(15), the Fig. 8 budget segments -- is driven by this PMF.
 *
 * Three construction modes are provided:
 *  - Analytic: evaluates the closed form above. O(1) per query.
 *  - Enumerated: exact per-bin URNG state counts via segment-rank
 *    accumulation. The pipeline magnitude -lambda * ln(m / 2^Bu) is
 *    monotone non-increasing in the URNG index m, and every
 *    quantization stage (round-nearest, floor, saturation) preserves
 *    that monotonicity, so the states mapping to output bin k form
 *    one contiguous URNG interval. The builder locates each
 *    interval's boundary with an Eq. (11) analytic guess corrected by
 *    a handful of exact pipeline probes (galloping + bisection), so
 *    the cost is O(support bins * log correction), not O(2^Bu) --
 *    exact up to Bu = 32 in microseconds. Bit-identical to the
 *    per-state walk below wherever both are affordable (tests
 *    cross-check every registered mechanism configuration).
 *  - EnumeratedLegacy: runs the actual RNG pipeline over all 2^Bu
 *    URNG states and tallies the outputs, one state at a time. This
 *    is the original exhaustive enumerator, kept as the cross-check
 *    oracle for the segment engine (and as the only exact mode for a
 *    hypothetical non-monotone pipeline); it refuses Bu > 24.
 *
 * All state accounting is exact uint64 arithmetic: per-bin counts sum
 * to exactly 2^Bu (totalCount(), zero slack), and every probability
 * is count / 2^Bu -- an exact double for Bu <= 32.
 */

#ifndef ULPDP_RNG_FXP_LAPLACE_PMF_H
#define ULPDP_RNG_FXP_LAPLACE_PMF_H

#include <cstdint>
#include <memory>
#include <vector>

#include "rng/fxp_laplace.h"
#include "rng/noise_pmf.h"

namespace ulpdp {

/**
 * Exact PMF of an FxpLaplaceRng output, over signed output indices k
 * (the output value is k * Delta).
 */
class FxpLaplacePmf : public NoisePmf
{
  public:
    /** Largest Bu the segment-rank enumerator accepts. Bounded by
     *  FxpLaplaceRng's own URNG width cap, not by cost: the builder
     *  touches O(support bins) states, not 2^Bu. */
    static constexpr int kMaxEnumeratedBits = 32;

    /** Largest Bu the legacy per-state enumerator accepts (2^Bu
     *  pipeline evaluations; 24 is ~16M per construction). */
    static constexpr int kMaxLegacyEnumeratedBits = 24;

    /** How the PMF is computed. */
    enum class Mode
    {
        /** Closed form, Eq. (11). */
        Analytic,
        /** Exact state counts by segment-rank accumulation over the
         *  monotone URNG-to-bin map (Bu <= 32). */
        Enumerated,
        /** Exact state counts by walking all 2^Bu URNG states through
         *  the pipeline (Bu <= 24); the cross-check oracle. */
        EnumeratedLegacy,
    };

    /**
     * @param config RNG configuration the PMF describes.
     * @param mode Computation mode. Enumerated requires
     *        config.uniform_bits <= kMaxEnumeratedBits (32);
     *        EnumeratedLegacy requires <= kMaxLegacyEnumeratedBits
     *        (24).
     */
    explicit FxpLaplacePmf(const FxpLaplaceConfig &config,
                           Mode mode = Mode::Analytic);

    /**
     * Memoized construction: one shared immutable PMF per distinct
     * (PMF-relevant configuration, mode) pair, so repeated
     * certification of mechanisms sharing a parameter block
     * enumerates once. Thread-safe; the cache holds strong references
     * (the distinct configurations of a process are few).
     */
    static std::shared_ptr<const FxpLaplacePmf>
    shared(const FxpLaplaceConfig &config, Mode mode = Mode::Analytic);

    /** Drop every memoized PMF (benches re-measuring construction). */
    static void clearSharedCache();

    /** Configuration described. */
    const FxpLaplaceConfig &config() const { return config_; }

    /** Mode used. */
    Mode mode() const { return mode_; }

    /** Number of URNG states mapping to magnitude index k (k >= 0). */
    uint64_t magnitudeCount(int64_t k) const;

    /**
     * Exact total of the per-bin state counts (enumerated modes).
     * Always exactly 2^Bu -- the uint64 accounting admits no
     * normalization slack; tests assert equality, not closeness.
     */
    uint64_t totalCount() const;

    /** Pr[n = k * Delta] for a signed index k. */
    double pmf(int64_t k) const override;

    /** Pr[n >= k * Delta] for k >= 1 (upper tail mass). */
    double tailMass(int64_t k) const override;

    /**
     * Pr[n >= k * Delta] for any signed k (k <= 0 handled via the
     * sign symmetry of the distribution). Needed for the clamp atoms
     * of the thresholding mechanism with small windows.
     */
    double upperMass(int64_t k) const override;

    /** Largest index with positive probability (support bound). */
    int64_t maxIndex() const override { return max_index_; }

    /**
     * Smallest magnitude index k >= 0 whose probability is zero while
     * some larger index still has positive probability, or -1 if the
     * support has no such interior gap. Interior gaps are the
     * "cannot generate all the noise values" failure of Fig. 4(b).
     */
    int64_t firstInteriorGap() const;

    /** The m1 boundary function of Eq. (11). */
    double m1(int64_t k) const;

    /** The m2 boundary function of Eq. (11). */
    double m2(int64_t k) const;

    /** Total probability over the whole support (must be 1). */
    double totalMass() const;

  private:
    /** Closed-form magnitude count. */
    uint64_t analyticCount(int64_t k) const;

    /** Segment-rank accumulation (Mode::Enumerated). */
    void buildSegmentCounts();

    /** Per-state walk (Mode::EnumeratedLegacy). */
    void buildLegacyCounts();

    /** Tail suffix sums over counts_, for O(1) enumerated tailMass. */
    void buildTailCounts();

    FxpLaplaceConfig config_;
    Mode mode_;
    /** Saturation index: the quantizer's largest magnitude index. */
    int64_t sat_index_;
    /** Largest index with positive probability. */
    int64_t max_index_;
    /** Enumerated counts per magnitude index (enumerated modes). */
    std::vector<uint64_t> counts_;
    /** tail_[k] = sum of counts_[k..sat]; tail_[0] = 2^Bu exactly. */
    std::vector<uint64_t> tail_;
};

} // namespace ulpdp

#endif // ULPDP_RNG_FXP_LAPLACE_PMF_H
