/**
 * @file
 * Exact probability mass function of the fixed-point Laplace RNG.
 *
 * Section III-B of the paper derives, in Eq. (11), the probability
 * that the Fig. 3 pipeline outputs the value k * Delta:
 *
 *   Pr[n = k Delta] = (floor(m1(k)) - ceil(m2(k)) + 1) / 2^(Bu+1)
 *   m1(k) = 2^Bu * exp(-(eps Delta / d)(k - 1/2))
 *   m2(k) = 2^Bu * exp(-(eps Delta / d)(k + 1/2))
 *
 * (with eps Delta / d = Delta / lambda). The whole privacy analysis --
 * infinite-loss detection, the resampling/thresholding thresholds of
 * Eqs. (13)/(15), the Fig. 8 budget segments -- is driven by this PMF.
 *
 * Two construction modes are provided:
 *  - Analytic: evaluates the closed form above. O(1) per query.
 *  - Enumerated: runs the actual RNG pipeline over all 2^Bu URNG
 *    states and tallies the outputs. This is exact by construction
 *    (no floating-point boundary ambiguity) and is what the privacy
 *    loss analyzer uses whenever Bu is small enough to enumerate.
 */

#ifndef ULPDP_RNG_FXP_LAPLACE_PMF_H
#define ULPDP_RNG_FXP_LAPLACE_PMF_H

#include <cstdint>
#include <vector>

#include "rng/fxp_laplace.h"
#include "rng/noise_pmf.h"

namespace ulpdp {

/**
 * Exact PMF of an FxpLaplaceRng output, over signed output indices k
 * (the output value is k * Delta).
 */
class FxpLaplacePmf : public NoisePmf
{
  public:
    /** How the PMF is computed. */
    enum class Mode
    {
        /** Closed form, Eq. (11). */
        Analytic,
        /** Tally the pipeline over all 2^Bu URNG states. */
        Enumerated,
    };

    /**
     * @param config RNG configuration the PMF describes.
     * @param mode Computation mode. Enumerated requires
     *        config.uniform_bits <= 24 (2^24 pipeline evaluations).
     */
    explicit FxpLaplacePmf(const FxpLaplaceConfig &config,
                           Mode mode = Mode::Analytic);

    /** Configuration described. */
    const FxpLaplaceConfig &config() const { return config_; }

    /** Mode used. */
    Mode mode() const { return mode_; }

    /** Number of URNG states mapping to magnitude index k (k >= 0). */
    uint64_t magnitudeCount(int64_t k) const;

    /** Pr[n = k * Delta] for a signed index k. */
    double pmf(int64_t k) const override;

    /** Pr[n >= k * Delta] for k >= 1 (upper tail mass). */
    double tailMass(int64_t k) const override;

    /**
     * Pr[n >= k * Delta] for any signed k (k <= 0 handled via the
     * sign symmetry of the distribution). Needed for the clamp atoms
     * of the thresholding mechanism with small windows.
     */
    double upperMass(int64_t k) const override;

    /** Largest index with positive probability (support bound). */
    int64_t maxIndex() const override { return max_index_; }

    /**
     * Smallest magnitude index k >= 0 whose probability is zero while
     * some larger index still has positive probability, or -1 if the
     * support has no such interior gap. Interior gaps are the
     * "cannot generate all the noise values" failure of Fig. 4(b).
     */
    int64_t firstInteriorGap() const;

    /** The m1 boundary function of Eq. (11). */
    double m1(int64_t k) const;

    /** The m2 boundary function of Eq. (11). */
    double m2(int64_t k) const;

    /** Total probability over the whole support (must be 1). */
    double totalMass() const;

  private:
    /** Closed-form magnitude count. */
    uint64_t analyticCount(int64_t k) const;

    FxpLaplaceConfig config_;
    Mode mode_;
    /** Saturation index: the quantizer's largest magnitude index. */
    int64_t sat_index_;
    /** Largest index with positive probability. */
    int64_t max_index_;
    /** Enumerated counts per magnitude index (Enumerated mode). */
    std::vector<uint64_t> counts_;
};

} // namespace ulpdp

#endif // ULPDP_RNG_FXP_LAPLACE_PMF_H
