/**
 * @file
 * Ideal (double-precision) Laplace distribution sampler and density
 * helpers. This models the paper's "Ideal Local DP" reference setting:
 * mathematically exact continuous Laplace noise, unachievable on real
 * hardware but the yardstick every fixed-point variant is compared to.
 */

#ifndef ULPDP_RNG_IDEAL_LAPLACE_H
#define ULPDP_RNG_IDEAL_LAPLACE_H

#include <cstdint>
#include <random>

namespace ulpdp {

/**
 * Zero-mean Laplace distribution Lap(lambda) with pdf
 * f(x) = exp(-|x| / lambda) / (2 lambda), sampled by inversion from a
 * 64-bit Mersenne Twister.
 */
class IdealLaplace
{
  public:
    /**
     * @param lambda Scale parameter (> 0). For eps-LDP on data with
     *        range d, use lambda = d / eps.
     * @param seed PRNG seed; fixed default for reproducibility.
     */
    explicit IdealLaplace(double lambda, uint64_t seed = 1);

    /** Scale parameter lambda. */
    double lambda() const { return lambda_; }

    /** Draw one sample. */
    double sample();

    /** Probability density at @p x. */
    double pdf(double x) const;

    /** Cumulative distribution function at @p x. */
    double cdf(double x) const;

    /** Inverse CDF (quantile function) for p in (0, 1). */
    double icdf(double p) const;

    /**
     * Tail mass Pr[X >= x] for x >= 0 (one-sided), used by the
     * threshold calculators to compare analytic fixed-point tails
     * against the ideal ones.
     */
    double upperTail(double x) const;

  private:
    double lambda_;
    std::mt19937_64 gen_;
    std::uniform_real_distribution<double> unit_;
};

} // namespace ulpdp

#endif // ULPDP_RNG_IDEAL_LAPLACE_H
