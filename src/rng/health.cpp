#include "rng/health.h"

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace ulpdp {

namespace {

/** Test-outcome counters, labelled by which 90B test tripped. The
 *  per-word observe() path records nothing -- only the (rare) alarm
 *  transitions touch telemetry, so the monitor stays free on healthy
 *  streams. */
struct HealthMetrics
{
    Counter &repetition = telemetry::registry().counter(
        "ulpdp_rng_health_alarms_total",
        "URNG continuous health test trips by test",
        "alarms", "test=\"repetition\"");
    Counter &proportion = telemetry::registry().counter(
        "ulpdp_rng_health_alarms_total",
        "URNG continuous health test trips by test",
        "alarms", "test=\"proportion\"");
};

HealthMetrics &
healthMetrics()
{
    static HealthMetrics m;
    return m;
}

} // anonymous namespace

RngHealthMonitor::RngHealthMonitor(const RngHealthConfig &config)
    : config_(config)
{
    if (config.repetition_cutoff < 2)
        fatal("RngHealthMonitor: repetition_cutoff must be >= 2, "
              "got %d", config.repetition_cutoff);
    if (config.proportion_window > 0 &&
        config.proportion_tolerance * 2 >= config.proportion_window) {
        fatal("RngHealthMonitor: proportion tolerance %u is vacuous "
              "for window %u", config.proportion_tolerance,
              config.proportion_window);
    }
}

void
RngHealthMonitor::observe(uint32_t word)
{
    ++observed_;

    // Repetition count: a run of C identical words.
    if (observed_ > 1 && word == last_word_) {
        if (++run_length_ >= config_.repetition_cutoff) {
            ++repetition_alarms_;
            if (telemetry::enabled()) {
                healthMetrics().repetition.inc();
                if (!alarmed_)
                    telemetry::event(
                        EventKind::HealthAlarm, observed_,
                        static_cast<double>(repetition_alarms_));
            }
            alarmed_ = true;
            run_length_ = 1; // re-arm so the count stays meaningful
        }
    } else {
        run_length_ = 1;
    }
    last_word_ = word;

    // Adaptive proportion, per bit lane.
    if (config_.proportion_window == 0)
        return;
    for (int b = 0; b < 32; ++b)
        lane_ones_[b] += (word >> b) & 1u;
    if (++window_fill_ < config_.proportion_window)
        return;

    uint32_t half = config_.proportion_window / 2;
    uint32_t tol = config_.proportion_tolerance;
    for (int b = 0; b < 32; ++b) {
        uint32_t ones = lane_ones_[b];
        if (ones + tol < half || ones > half + tol) {
            ++proportion_alarms_;
            if (telemetry::enabled()) {
                healthMetrics().proportion.inc();
                if (!alarmed_)
                    telemetry::event(
                        EventKind::HealthAlarm, observed_,
                        static_cast<double>(proportion_alarms_));
            }
            alarmed_ = true;
        }
        lane_ones_[b] = 0;
    }
    window_fill_ = 0;
}

void
RngHealthMonitor::reset()
{
    alarmed_ = false;
    observed_ = 0;
    repetition_alarms_ = 0;
    proportion_alarms_ = 0;
    run_length_ = 0;
    last_word_ = 0;
    window_fill_ = 0;
    for (int b = 0; b < 32; ++b)
        lane_ones_[b] = 0;
}

} // namespace ulpdp
