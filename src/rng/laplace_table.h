/**
 * @file
 * Precomputed sampling tables for the fixed-point Laplace RNG.
 *
 * The Fig. 3 pipeline is a *fixed* deterministic map from the Bu-bit
 * URNG magnitude index m to an output index k: the discrete output
 * distribution is a static object fully determined at configuration
 * time (the same observation that drives the exact PMF of Eq. (11)
 * and, in the bounded/truncated-noise literature, lets the output
 * distribution be treated as a precomputed discrete table). There is
 * therefore no need to evaluate a logarithm per draw: enumerate the
 * pipeline once over all 2^Bu URNG states and serve every subsequent
 * draw from the resulting tables in O(1).
 *
 * Three views of the same enumeration are stored:
 *  - direct:  m -> k, the pipeline itself (one load per sample),
 *  - rank:    r -> k over states sorted by magnitude index, which
 *    turns "uniform over the URNG states whose output lies in a
 *    window" into a single indexed load, and
 *  - cumulative: k -> number of states with output <= k, giving the
 *    acceptance mass of any truncation window in O(1).
 *
 * The rank and cumulative tables make *truncated* sampling exact and
 * loop-free: instead of redrawing until a sample lands inside
 * [lo, hi] (the resampling range control), draw one uniform rank over
 * the accepted states and look it up -- the conditional distribution
 * is bit-identical to accept-reject because accept-reject is, by
 * definition, uniform over the accepted URNG states.
 *
 * Because the tables are built by running the *actual* pipeline
 * (Reference or CORDIC log mode alike), lookups reproduce the naive
 * datapath bit for bit, CORDIC quirks included.
 */

#ifndef ULPDP_RNG_LAPLACE_TABLE_H
#define ULPDP_RNG_LAPLACE_TABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ulpdp {

class FxpLaplaceRng;

/** O(1) sampling tables enumerated from one FxpLaplaceRng pipeline. */
class LaplaceSampleTable
{
  public:
    /** Largest Bu the enumeration supports (2^Bu pipeline runs). */
    static constexpr int kMaxUniformBits = 24;

    /** Largest magnitude index a table entry can hold (uint16). */
    static constexpr int64_t kMaxMagnitudeIndex = 65535;

    /**
     * Whether a table can be built for this pipeline: the URNG state
     * space must be enumerable and every magnitude index must fit a
     * table entry.
     */
    static bool supports(int uniform_bits, int64_t max_magnitude_index);

    /**
     * Build the tables by running @p rng's pure pipeline function over
     * all 2^Bu URNG magnitude states. The RNG itself is not advanced.
     */
    explicit LaplaceSampleTable(const FxpLaplaceRng &rng);

    /** Pipeline lookup: magnitude index for URNG index m (1..2^Bu). */
    int64_t
    lookup(uint64_t m) const
    {
        return direct_[static_cast<size_t>(m - 1)];
    }

    /**
     * Magnitude index of the state with rank @p r (0-based) when all
     * 2^Bu states are ordered by their output magnitude index. Ranks
     * [0, cumulativeCount(k)) are exactly the states with output <= k.
     */
    int64_t
    lookupByRank(uint64_t r) const
    {
        return rank_[static_cast<size_t>(r)];
    }

    /** Number of URNG states whose output magnitude index is <= k. */
    uint64_t
    cumulativeCount(int64_t k) const
    {
        if (k < 0)
            return 0;
        if (k >= max_index_)
            return states_;
        return cum_[static_cast<size_t>(k)];
    }

    /**
     * Raw direct-view storage: entry i is lookup(i + 1). The batch
     * layer uses this for software-prefetched block lookups; the
     * entries are exactly what lookup() serves.
     */
    const uint16_t *directData() const { return direct_.data(); }

    /** Raw rank-view storage: entry r is lookupByRank(r). */
    const uint16_t *rankData() const { return rank_.data(); }

    /** Largest magnitude index with at least one URNG state. */
    int64_t maxIndex() const { return max_index_; }

    /** Total URNG magnitude states (2^Bu). */
    uint64_t states() const { return states_; }

    /** Table footprint in bytes (hardware ROM sizing). */
    size_t memoryBytes() const;

    /**
     * CRC-32 over all three arrays, computed once at enumeration
     * time. In silicon this is the signature fused next to the ROM;
     * verify() re-derives it on demand (the periodic scrub).
     */
    uint32_t referenceCrc() const { return crc_; }

    /** Recompute the CRC and compare against the enumeration-time
     *  signature: false means the table contents changed since they
     *  were built (an SEU, in the fault model). */
    bool verify() const;

    /**
     * Fault-injection surface: the tables as one flat byte space
     * ([direct | rank | cumulative], in that order). faultableBytes()
     * is its size; flipBit() flips one bit in it, modelling a
     * single-event upset in the table SRAM. Production code never
     * calls these.
     */
    size_t faultableBytes() const { return memoryBytes(); }
    void flipBit(size_t byte_offset, int bit);

  private:
    /** CRC-32 over the current array contents. */
    uint32_t computeCrc() const;

    std::vector<uint16_t> direct_;
    std::vector<uint16_t> rank_;
    std::vector<uint64_t> cum_;
    uint64_t states_;
    int64_t max_index_;
    uint32_t crc_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_RNG_LAPLACE_TABLE_H
