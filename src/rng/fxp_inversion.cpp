#include "rng/fxp_inversion.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

// --- LaplaceMagnitude ------------------------------------------------------

LaplaceMagnitude::LaplaceMagnitude(double lambda) : lambda_(lambda)
{
    if (!(lambda > 0.0))
        fatal("LaplaceMagnitude: lambda must be positive, got %g",
              lambda);
}

double
LaplaceMagnitude::magnitude(double u) const
{
    ULPDP_ASSERT(u > 0.0 && u <= 1.0);
    return -lambda_ * std::log(u);
}

// --- GaussianMagnitude -----------------------------------------------------

GaussianMagnitude::GaussianMagnitude(double sigma) : sigma_(sigma)
{
    if (!(sigma > 0.0))
        fatal("GaussianMagnitude: sigma must be positive, got %g",
              sigma);
}

double
GaussianMagnitude::probit(double p)
{
    ULPDP_ASSERT(p > 0.0 && p < 1.0);

    // Acklam's rational approximation, |relative error| < 1.15e-9.
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    const double p_low = 0.02425;

    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - p_low) {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                  c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    double q = p - 0.5;
    double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
             a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r +
             b[4]) * r + 1.0);
}

double
GaussianMagnitude::magnitude(double u) const
{
    ULPDP_ASSERT(u > 0.0 && u <= 1.0);
    if (u >= 1.0)
        return 0.0;
    // Pr[|N| >= x] = u  <=>  x = sigma * probit(1 - u/2).
    return sigma_ * probit(1.0 - u / 2.0);
}

// --- StaircaseMagnitude ----------------------------------------------------

StaircaseMagnitude::StaircaseMagnitude(double sensitivity,
                                       double epsilon, double gamma)
    : d_(sensitivity), epsilon_(epsilon), gamma_(gamma)
{
    if (!(sensitivity > 0.0))
        fatal("StaircaseMagnitude: sensitivity must be positive");
    if (!(epsilon > 0.0))
        fatal("StaircaseMagnitude: epsilon must be positive");
    if (!(gamma > 0.0 && gamma < 1.0))
        fatal("StaircaseMagnitude: gamma must be in (0, 1), got %g",
              gamma);

    // Magnitude density (two-sided folded to one side): tall step
    // height 2a e^{-k eps} over [k d, (k+gamma) d), short step
    // 2a e^{-(k+1) eps} over [(k+gamma) d, (k+1) d), with
    // 2a = (1 - e^-eps) / (d (gamma + e^-eps (1 - gamma))).
    double e = std::exp(-epsilon_);
    double two_a = (1.0 - e) / (d_ * (gamma_ + e * (1.0 - gamma_)));
    p_first_ = two_a * gamma_ * d_;        // tall-step mass, period 0
    p_period_ = 1.0 - e;                   // total mass of period 0
    ULPDP_ASSERT(p_first_ <= p_period_ + 1e-12);
}

double
StaircaseMagnitude::optimalGamma(double epsilon)
{
    double s = std::exp(-epsilon / 2.0);
    return s / (1.0 + s);
}

double
StaircaseMagnitude::magnitude(double u) const
{
    ULPDP_ASSERT(u > 0.0 && u <= 1.0);
    if (u >= 1.0)
        return 0.0;

    // Period index: Pr[|N| >= k d] = e^{-k eps}.
    double k_real = std::floor(-std::log(u) / epsilon_);
    double k = std::max(k_real, 0.0);
    double e_k = std::exp(-k * epsilon_);
    double consumed = e_k - u; // mass between k d and the target
    double tall_mass = p_first_ * e_k;
    double short_mass = (p_period_ - p_first_) * e_k;

    double e = std::exp(-epsilon_);
    double two_a =
        (1.0 - e) / (d_ * (gamma_ + e * (1.0 - gamma_)));

    if (consumed <= tall_mass) {
        double height = two_a * e_k;
        return k * d_ + consumed / height;
    }
    double height = two_a * e_k * e;
    double into_short = consumed - tall_mass;
    if (into_short > short_mass)
        into_short = short_mass; // numerical guard at period edge
    return (k + gamma_) * d_ + into_short / height;
}

// --- FxpInversionRng -------------------------------------------------------

FxpInversionRng::FxpInversionRng(
        const FxpInversionConfig &config,
        std::shared_ptr<const MagnitudeIcdf> icdf, uint64_t seed)
    : config_(config), quantizer_(config.delta, config.output_bits),
      icdf_(std::move(icdf)), urng_(seed)
{
    if (config.uniform_bits < 1 || config.uniform_bits > 32)
        fatal("FxpInversionRng: uniform_bits must be in [1, 32], "
              "got %d", config.uniform_bits);
    if (!icdf_)
        fatal("FxpInversionRng: icdf must not be null");
}

int64_t
FxpInversionRng::pipeline(uint64_t m, int sign) const
{
    ULPDP_ASSERT(m >= 1 && m <= (uint64_t{1} << config_.uniform_bits));
    ULPDP_ASSERT(sign == 1 || sign == -1);
    double u = std::ldexp(static_cast<double>(m),
                          -config_.uniform_bits);
    int64_t k = quantizer_.quantizeToIndex(icdf_->magnitude(u));
    return sign > 0 ? k : -k;
}

int64_t
FxpInversionRng::sampleIndex()
{
    uint64_t m = urng_.nextUnitIndex(config_.uniform_bits);
    int sign = urng_.nextSign();
    return pipeline(m, sign);
}

double
FxpInversionRng::sample()
{
    return quantizer_.value(sampleIndex());
}

// --- EnumeratedNoisePmf ----------------------------------------------------

EnumeratedNoisePmf::EnumeratedNoisePmf(
        const FxpInversionConfig &config,
        std::shared_ptr<const MagnitudeIcdf> icdf)
    : uniform_bits_(config.uniform_bits)
{
    if (config.uniform_bits > 24)
        fatal("EnumeratedNoisePmf: uniform_bits must be <= 24 to "
              "enumerate, got %d", config.uniform_bits);

    FxpInversionRng rng(config, std::move(icdf));
    int64_t sat = rng.quantizer().maxIndex();
    counts_.assign(static_cast<size_t>(sat) + 1, 0);
    uint64_t states = uint64_t{1} << config.uniform_bits;
    for (uint64_t m = 1; m <= states; ++m) {
        int64_t k = rng.pipeline(m, 1);
        ULPDP_ASSERT(k >= 0 && k <= sat);
        ++counts_[static_cast<size_t>(k)];
    }

    max_index_ = 0;
    for (int64_t k = sat; k >= 0; --k) {
        if (counts_[static_cast<size_t>(k)] > 0) {
            max_index_ = k;
            break;
        }
    }

    suffix_.assign(counts_.size() + 1, 0);
    for (size_t k = counts_.size(); k-- > 0;)
        suffix_[k] = suffix_[k + 1] + counts_[k];
}

uint64_t
EnumeratedNoisePmf::magnitudeCount(int64_t k) const
{
    if (k < 0 || k >= static_cast<int64_t>(counts_.size()))
        return 0;
    return counts_[static_cast<size_t>(k)];
}

double
EnumeratedNoisePmf::pmf(int64_t k) const
{
    int64_t mag = k >= 0 ? k : -k;
    double cnt = static_cast<double>(magnitudeCount(mag));
    double denom = std::ldexp(1.0, uniform_bits_);
    return k == 0 ? cnt / denom : cnt / (2.0 * denom);
}

double
EnumeratedNoisePmf::tailMass(int64_t k) const
{
    ULPDP_ASSERT(k >= 1);
    if (k >= static_cast<int64_t>(suffix_.size()))
        return 0.0;
    return static_cast<double>(suffix_[static_cast<size_t>(k)]) /
           (2.0 * std::ldexp(1.0, uniform_bits_));
}

double
EnumeratedNoisePmf::upperMass(int64_t k) const
{
    if (k >= 1)
        return tailMass(k);
    return 1.0 - tailMass(1 - k);
}

int64_t
EnumeratedNoisePmf::firstInteriorGap() const
{
    for (int64_t k = 0; k < max_index_; ++k) {
        if (magnitudeCount(k) == 0)
            return k;
    }
    return -1;
}

double
EnumeratedNoisePmf::totalMass() const
{
    double sum = pmf(0);
    for (int64_t k = 1; k <= max_index_; ++k)
        sum += pmf(k) + pmf(-k);
    return sum;
}

} // namespace ulpdp
