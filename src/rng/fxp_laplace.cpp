#include "rng/fxp_laplace.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "rng/laplace_table.h"
#include "rng/taus_bank.h"

namespace ulpdp {

FxpLaplaceRng::FxpLaplaceRng(const FxpLaplaceConfig &config, uint64_t seed)
    : config_(config),
      quantizer_(config.delta, config.output_bits),
      urng_(seed),
      cordic_(config.cordic_iterations)
{
    if (config.uniform_bits < 1 || config.uniform_bits > 32)
        fatal("FxpLaplaceRng: uniform_bits must be in [1, 32], got %d",
              config.uniform_bits);
    if (!(config.lambda > 0.0))
        fatal("FxpLaplaceRng: lambda must be positive, got %g",
              config.lambda);
}

int64_t
FxpLaplaceRng::pipeline(uint64_t m, int sign) const
{
    ULPDP_ASSERT(m >= 1 &&
                 m <= (uint64_t{1} << config_.uniform_bits));
    ULPDP_ASSERT(sign == 1 || sign == -1);

    double ln_u;
    if (config_.log_mode == FxpLaplaceConfig::LogMode::Cordic) {
        ln_u = cordic_.lnUnitIndex(m, config_.uniform_bits);
    } else {
        double u = std::ldexp(static_cast<double>(m),
                              -config_.uniform_bits);
        ln_u = std::log(u);
    }

    // Inverse-CDF magnitude, Eq. (7): F^-1(u) = -lambda * ln(u) >= 0.
    double magnitude = -config_.lambda * ln_u;
    int64_t k;
    if (config_.rounding == FxpLaplaceConfig::Rounding::Floor) {
        // Truncate to the grid (discrete-Laplace variant): the
        // saturation stage still clamps to the By-bit index range.
        double f = std::floor(magnitude / config_.delta);
        int64_t sat = quantizer_.maxIndex();
        k = f >= static_cast<double>(sat)
                ? sat
                : (f <= 0.0 ? 0 : static_cast<int64_t>(f));
    } else {
        k = quantizer_.quantizeToIndex(magnitude);
    }
    // The magnitude path only uses the non-negative half of the index
    // range; the sign stage produces the negative half.
    return sign > 0 ? k : -k;
}

int64_t
FxpLaplaceRng::sampleIndex()
{
    ++samples_drawn_;
    uint64_t m = urng_.nextUnitIndex(config_.uniform_bits);
    int sign = urng_.nextSign();
    return pipeline(m, sign);
}

double
FxpLaplaceRng::sample()
{
    return quantizer_.value(sampleIndex());
}

bool
FxpLaplaceRng::fastPathEnabled() const
{
    // A quarantined table is never consulted again: the log datapath
    // computes the same pipeline without the suspect memory.
    if (integrity_fault_)
        return false;
    switch (config_.sample_path) {
      case FxpLaplaceConfig::SamplePath::Naive:
        return false;
      case FxpLaplaceConfig::SamplePath::Table:
        return true;
      case FxpLaplaceConfig::SamplePath::Auto:
        return LaplaceSampleTable::supports(config_.uniform_bits,
                                            quantizer_.maxIndex());
    }
    panic("FxpLaplaceRng: invalid sample_path");
}

const LaplaceSampleTable &
FxpLaplaceRng::table()
{
    if (!table_)
        table_ = std::make_shared<LaplaceSampleTable>(*this);
    return *table_;
}

std::shared_ptr<const LaplaceSampleTable>
FxpLaplaceRng::sharedTable()
{
    if (ensureTable() == nullptr)
        return nullptr;
    return table_;
}

LaplaceSampleTable *
FxpLaplaceRng::mutableTable()
{
    if (integrity_fault_)
        return table_.get();
    if (ensureTable() == nullptr)
        return nullptr;
    return table_.get();
}

void
FxpLaplaceRng::noteIntegrityFault(const char *what)
{
    integrity_fault_ = true;
    ++integrity_detections_;
    warn("FxpLaplaceRng: sampler-table integrity fault (%s); table "
         "quarantined, serving draws from the log datapath", what);
}

bool
FxpLaplaceRng::verifyTableIntegrity()
{
    if (integrity_fault_)
        return false;
    if (!table_)
        return true; // nothing enumerated yet, nothing to corrupt
    if (table_->verify())
        return true;
    noteIntegrityFault("CRC scrub mismatch");
    return false;
}

const LaplaceSampleTable *
FxpLaplaceRng::ensureTable()
{
    if (!fastPathEnabled())
        return nullptr;
    return &table();
}

int64_t
FxpLaplaceRng::sampleIndexFast()
{
    const LaplaceSampleTable *t = ensureTable();
    if (t == nullptr)
        return sampleIndex();
    ++samples_drawn_;
    uint64_t m = urng_.nextUnitIndex(config_.uniform_bits);
    int sign = urng_.nextSign();
    int64_t k = t->lookup(m);
    if (config_.integrity_checks && k > quantizer_.maxIndex()) {
        // The comparator caught a corrupted entry: quarantine the
        // table and recompute this draw through the log datapath
        // (same m and sign, so the sample itself stays sound).
        noteIntegrityFault("direct entry out of range");
        return pipeline(m, sign);
    }
    return sign > 0 ? k : -k;
}

void
FxpLaplaceRng::sampleBatch(int64_t *out, size_t n)
{
    const LaplaceSampleTable *t = ensureTable();
    if (t == nullptr) {
        for (size_t i = 0; i < n; ++i)
            out[i] = sampleIndex();
        return;
    }
    int64_t sat = quantizer_.maxIndex();

    // Bank-backed block path: mirror the single URNG stream into a
    // one-lane TausBank, draw the whole batch branchlessly, and only
    // commit (stream state, sample count) when no integrity
    // comparator tripped. Word consumption is identical to the
    // per-draw loop below -- one magnitude word then one sign word
    // per sample -- so the two paths are bit-exchangeable. A hooked
    // or monitored URNG must stay on the scalar path, where every
    // word passes through its observation seams.
    if (urng_.plain() && n > 0) {
        const uint16_t *direct = t->directData();
        const uint32_t mask =
            (uint32_t{1} << config_.uniform_bits) - 1u;
        const int shift = 32 - config_.uniform_bits;
        TausBank bank;
        uint32_t b1 = urng_.s1(), b2 = urng_.s2(), b3 = urng_.s3();
        bank.adoptState(&b1, &b2, &b3, 1);
        bool bad = false;
        for (size_t i = 0; i < n; ++i) {
            uint32_t mw, sw;
            bank.nextWords(&mw);
            bank.nextWords(&sw);
            uint32_t idx = ((mw >> shift) - 1u) & mask;
            int64_t k = direct[idx];
            if (config_.integrity_checks && k > sat) {
                // Fall back to the per-draw loop from the original
                // stream state: it re-derives the same words, detects
                // the same corrupt entry, and quarantines with the
                // exact scalar semantics.
                bad = true;
                break;
            }
            int64_t sm = static_cast<int32_t>(sw) >> 31;
            out[i] = (k ^ ~sm) - ~sm;
        }
        if (!bad) {
            samples_drawn_ += n;
            urng_.setState(bank.s1(0), bank.s2(0), bank.s3(0));
            return;
        }
    }
    for (size_t i = 0; i < n; ++i) {
        if (integrity_fault_) {
            // Table quarantined mid-batch: finish on the log path.
            out[i] = sampleIndex();
            continue;
        }
        ++samples_drawn_;
        uint64_t m = urng_.nextUnitIndex(config_.uniform_bits);
        int sign = urng_.nextSign();
        int64_t k = t->lookup(m);
        if (config_.integrity_checks && k > sat) {
            noteIntegrityFault("direct entry out of range");
            out[i] = pipeline(m, sign);
            continue;
        }
        out[i] = sign > 0 ? k : -k;
    }
}

bool
FxpLaplaceRng::sampleIndexTruncated(int64_t lo, int64_t hi,
                                    int64_t &out)
{
    ULPDP_ASSERT(lo <= 0 && hi >= 0);
    ULPDP_ASSERT(fastPathEnabled());
    const LaplaceSampleTable &t = table();

    // Accepted URNG states: sign +1 needs magnitude <= hi, sign -1
    // needs magnitude <= -lo (magnitude 0 is accepted on both signs,
    // exactly as accept-reject accepts both sign draws of 0).
    uint64_t plus = t.cumulativeCount(hi);
    uint64_t minus = t.cumulativeCount(-lo);
    if (plus > t.states() || minus > t.states()) {
        // An intact table can never count more accepted states than
        // states exist; this is SRAM corruption in the cumulative
        // array.
        if (config_.integrity_checks) {
            noteIntegrityFault("cumulative count exceeds state count");
            return false;
        }
        // Unhardened silicon: the rank address simply truncates.
        plus = std::min(plus, t.states());
        minus = std::min(minus, t.states());
    }
    uint64_t total = plus + minus;
    if (total == 0)
        return false;

    // One unbiased uniform rank over the accepted states: draw the
    // smallest covering power of two and reject overshoot (< 2
    // expected draws; total <= 2^(Bu+1) so the width fits 32 bits).
    int width = 1;
    while ((uint64_t{1} << width) < total)
        ++width;
    uint64_t r;
    do {
        r = urng_.nextBits(width);
    } while (r >= total);

    ++samples_drawn_;
    if (r < plus)
        out = t.lookupByRank(r);
    else
        out = -t.lookupByRank(r - plus);
    if (config_.integrity_checks && (out < lo || out > hi)) {
        // The rank table promised this state lands inside the window;
        // an entry outside it means the rank array was corrupted.
        noteIntegrityFault("rank entry escapes the truncation window");
        return false;
    }
    return true;
}

double
FxpLaplaceRng::maxMagnitude() const
{
    return config_.lambda * static_cast<double>(config_.uniform_bits) *
           std::log(2.0);
}

} // namespace ulpdp
