#include "rng/fxp_laplace.h"

#include <cmath>

#include "common/logging.h"
#include "rng/laplace_table.h"

namespace ulpdp {

FxpLaplaceRng::FxpLaplaceRng(const FxpLaplaceConfig &config, uint64_t seed)
    : config_(config),
      quantizer_(config.delta, config.output_bits),
      urng_(seed),
      cordic_(config.cordic_iterations)
{
    if (config.uniform_bits < 1 || config.uniform_bits > 32)
        fatal("FxpLaplaceRng: uniform_bits must be in [1, 32], got %d",
              config.uniform_bits);
    if (!(config.lambda > 0.0))
        fatal("FxpLaplaceRng: lambda must be positive, got %g",
              config.lambda);
}

int64_t
FxpLaplaceRng::pipeline(uint64_t m, int sign) const
{
    ULPDP_ASSERT(m >= 1 &&
                 m <= (uint64_t{1} << config_.uniform_bits));
    ULPDP_ASSERT(sign == 1 || sign == -1);

    double ln_u;
    if (config_.log_mode == FxpLaplaceConfig::LogMode::Cordic) {
        ln_u = cordic_.lnUnitIndex(m, config_.uniform_bits);
    } else {
        double u = std::ldexp(static_cast<double>(m),
                              -config_.uniform_bits);
        ln_u = std::log(u);
    }

    // Inverse-CDF magnitude, Eq. (7): F^-1(u) = -lambda * ln(u) >= 0.
    double magnitude = -config_.lambda * ln_u;
    int64_t k = quantizer_.quantizeToIndex(magnitude);
    // The magnitude path only uses the non-negative half of the index
    // range; the sign stage produces the negative half.
    return sign > 0 ? k : -k;
}

int64_t
FxpLaplaceRng::sampleIndex()
{
    ++samples_drawn_;
    uint64_t m = urng_.nextUnitIndex(config_.uniform_bits);
    int sign = urng_.nextSign();
    return pipeline(m, sign);
}

double
FxpLaplaceRng::sample()
{
    return quantizer_.value(sampleIndex());
}

bool
FxpLaplaceRng::fastPathEnabled() const
{
    switch (config_.sample_path) {
      case FxpLaplaceConfig::SamplePath::Naive:
        return false;
      case FxpLaplaceConfig::SamplePath::Table:
        return true;
      case FxpLaplaceConfig::SamplePath::Auto:
        return LaplaceSampleTable::supports(config_.uniform_bits,
                                            quantizer_.maxIndex());
    }
    panic("FxpLaplaceRng: invalid sample_path");
}

const LaplaceSampleTable &
FxpLaplaceRng::table()
{
    if (!table_)
        table_ = std::make_shared<const LaplaceSampleTable>(*this);
    return *table_;
}

const LaplaceSampleTable *
FxpLaplaceRng::ensureTable()
{
    if (!fastPathEnabled())
        return nullptr;
    return &table();
}

int64_t
FxpLaplaceRng::sampleIndexFast()
{
    const LaplaceSampleTable *t = ensureTable();
    if (t == nullptr)
        return sampleIndex();
    ++samples_drawn_;
    uint64_t m = urng_.nextUnitIndex(config_.uniform_bits);
    int sign = urng_.nextSign();
    int64_t k = t->lookup(m);
    return sign > 0 ? k : -k;
}

void
FxpLaplaceRng::sampleBatch(int64_t *out, size_t n)
{
    const LaplaceSampleTable *t = ensureTable();
    if (t == nullptr) {
        for (size_t i = 0; i < n; ++i)
            out[i] = sampleIndex();
        return;
    }
    samples_drawn_ += n;
    for (size_t i = 0; i < n; ++i) {
        uint64_t m = urng_.nextUnitIndex(config_.uniform_bits);
        int sign = urng_.nextSign();
        int64_t k = t->lookup(m);
        out[i] = sign > 0 ? k : -k;
    }
}

bool
FxpLaplaceRng::sampleIndexTruncated(int64_t lo, int64_t hi,
                                    int64_t &out)
{
    ULPDP_ASSERT(lo <= 0 && hi >= 0);
    ULPDP_ASSERT(fastPathEnabled());
    const LaplaceSampleTable &t = table();

    // Accepted URNG states: sign +1 needs magnitude <= hi, sign -1
    // needs magnitude <= -lo (magnitude 0 is accepted on both signs,
    // exactly as accept-reject accepts both sign draws of 0).
    uint64_t plus = t.cumulativeCount(hi);
    uint64_t minus = t.cumulativeCount(-lo);
    uint64_t total = plus + minus;
    if (total == 0)
        return false;

    // One unbiased uniform rank over the accepted states: draw the
    // smallest covering power of two and reject overshoot (< 2
    // expected draws; total <= 2^(Bu+1) so the width fits 32 bits).
    int width = 1;
    while ((uint64_t{1} << width) < total)
        ++width;
    uint64_t r;
    do {
        r = urng_.nextBits(width);
    } while (r >= total);

    ++samples_drawn_;
    if (r < plus)
        out = t.lookupByRank(r);
    else
        out = -t.lookupByRank(r - plus);
    return true;
}

double
FxpLaplaceRng::maxMagnitude() const
{
    return config_.lambda * static_cast<double>(config_.uniform_bits) *
           std::log(2.0);
}

} // namespace ulpdp
