#include "rng/fxp_laplace.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

FxpLaplaceRng::FxpLaplaceRng(const FxpLaplaceConfig &config, uint64_t seed)
    : config_(config),
      quantizer_(config.delta, config.output_bits),
      urng_(seed),
      cordic_(config.cordic_iterations)
{
    if (config.uniform_bits < 1 || config.uniform_bits > 32)
        fatal("FxpLaplaceRng: uniform_bits must be in [1, 32], got %d",
              config.uniform_bits);
    if (!(config.lambda > 0.0))
        fatal("FxpLaplaceRng: lambda must be positive, got %g",
              config.lambda);
}

int64_t
FxpLaplaceRng::pipeline(uint64_t m, int sign) const
{
    ULPDP_ASSERT(m >= 1 &&
                 m <= (uint64_t{1} << config_.uniform_bits));
    ULPDP_ASSERT(sign == 1 || sign == -1);

    double ln_u;
    if (config_.log_mode == FxpLaplaceConfig::LogMode::Cordic) {
        ln_u = cordic_.lnUnitIndex(m, config_.uniform_bits);
    } else {
        double u = std::ldexp(static_cast<double>(m),
                              -config_.uniform_bits);
        ln_u = std::log(u);
    }

    // Inverse-CDF magnitude, Eq. (7): F^-1(u) = -lambda * ln(u) >= 0.
    double magnitude = -config_.lambda * ln_u;
    int64_t k = quantizer_.quantizeToIndex(magnitude);
    // The magnitude path only uses the non-negative half of the index
    // range; the sign stage produces the negative half.
    return sign > 0 ? k : -k;
}

int64_t
FxpLaplaceRng::sampleIndex()
{
    ++samples_drawn_;
    uint64_t m = urng_.nextUnitIndex(config_.uniform_bits);
    int sign = urng_.nextSign();
    return pipeline(m, sign);
}

double
FxpLaplaceRng::sample()
{
    return quantizer_.value(sampleIndex());
}

double
FxpLaplaceRng::maxMagnitude() const
{
    return config_.lambda * static_cast<double>(config_.uniform_bits) *
           std::log(2.0);
}

} // namespace ulpdp
