#include "rng/fxp_laplace_pmf.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

FxpLaplacePmf::FxpLaplacePmf(const FxpLaplaceConfig &config, Mode mode)
    : config_(config), mode_(mode)
{
    Quantizer quant(config.delta, config.output_bits);
    sat_index_ = quant.maxIndex();

    if (mode_ == Mode::Enumerated) {
        if (config.uniform_bits > 24)
            fatal("FxpLaplacePmf: Enumerated mode needs "
                  "uniform_bits <= 24, got %d", config.uniform_bits);
        // Run the real pipeline for every URNG state. The pipeline is
        // sign-symmetric, so tallying magnitudes (sign = +1) suffices.
        FxpLaplaceRng rng(config);
        counts_.assign(static_cast<size_t>(sat_index_) + 1, 0);
        uint64_t states = uint64_t{1} << config.uniform_bits;
        for (uint64_t m = 1; m <= states; ++m) {
            int64_t k = rng.pipeline(m, 1);
            ULPDP_ASSERT(k >= 0 && k <= sat_index_);
            ++counts_[static_cast<size_t>(k)];
        }
    }

    // Locate the top of the support.
    max_index_ = 0;
    for (int64_t k = sat_index_; k >= 0; --k) {
        if (magnitudeCount(k) > 0) {
            max_index_ = k;
            break;
        }
    }
}

double
FxpLaplacePmf::m1(int64_t k) const
{
    // Bin boundaries follow the quantizer: Nearest puts them at
    // (k -/+ 1/2) Delta (Eq. (11)); Floor puts them at k Delta and
    // (k + 1) Delta, making the magnitude law exactly geometric.
    double a = config_.delta / config_.lambda;
    double edge = config_.rounding == FxpLaplaceConfig::Rounding::Floor
                      ? static_cast<double>(k)
                      : static_cast<double>(k) - 0.5;
    return std::ldexp(1.0, config_.uniform_bits) * std::exp(-a * edge);
}

double
FxpLaplacePmf::m2(int64_t k) const
{
    double a = config_.delta / config_.lambda;
    double edge = config_.rounding == FxpLaplaceConfig::Rounding::Floor
                      ? static_cast<double>(k) + 1.0
                      : static_cast<double>(k) + 0.5;
    return std::ldexp(1.0, config_.uniform_bits) * std::exp(-a * edge);
}

uint64_t
FxpLaplacePmf::analyticCount(int64_t k) const
{
    if (k < 0 || k > sat_index_)
        return 0;
    double total = std::ldexp(1.0, config_.uniform_bits);

    // Number of URNG indices m in the half-open interval (A, B] is
    // floor(B) - floor(A). The upper boundary is clamped to 2^Bu
    // (covers k = 0, where m1(0) > 2^Bu) and the saturation bin
    // absorbs everything below its lower boundary.
    double upper = std::min(m1(k), total);
    double lower = (k == sat_index_) ? 0.0 : std::min(m2(k), total);
    double cnt = std::floor(upper) - std::floor(lower);
    return cnt > 0.0 ? static_cast<uint64_t>(cnt) : 0;
}

uint64_t
FxpLaplacePmf::magnitudeCount(int64_t k) const
{
    if (k < 0 || k > sat_index_)
        return 0;
    if (mode_ == Mode::Enumerated)
        return counts_[static_cast<size_t>(k)];
    return analyticCount(k);
}

double
FxpLaplacePmf::pmf(int64_t k) const
{
    int64_t mag = k >= 0 ? k : -k;
    double cnt = static_cast<double>(magnitudeCount(mag));
    double denom = std::ldexp(1.0, config_.uniform_bits);
    if (k == 0) {
        // Both signs collapse onto zero.
        return cnt / denom;
    }
    return cnt / (2.0 * denom);
}

double
FxpLaplacePmf::tailMass(int64_t k) const
{
    ULPDP_ASSERT(k >= 1);
    double denom = 2.0 * std::ldexp(1.0, config_.uniform_bits);
    if (mode_ == Mode::Enumerated) {
        uint64_t cnt = 0;
        for (int64_t j = k; j <= sat_index_; ++j)
            cnt += counts_[static_cast<size_t>(j)];
        return static_cast<double>(cnt) / denom;
    }
    // The per-bin counts telescope: sum_{j >= k} count(j) is just the
    // number of URNG indices at or below the k boundary,
    // floor(min(m1(k), 2^Bu)) -- the paper's Pr[n >= k Delta] =
    // floor(m1(k)) / 2^(Bu+1).
    if (k > sat_index_)
        return 0.0;
    double total = std::ldexp(1.0, config_.uniform_bits);
    double cnt = std::floor(std::min(m1(k), total));
    return (cnt > 0.0 ? cnt : 0.0) / denom;
}

double
FxpLaplacePmf::upperMass(int64_t k) const
{
    if (k >= 1)
        return tailMass(k);
    // Pr[n >= k] = 1 - Pr[n <= k - 1] = 1 - Pr[n >= 1 - k] by the
    // sign symmetry of the PMF; 1 - k >= 1 here.
    return 1.0 - tailMass(1 - k);
}

int64_t
FxpLaplacePmf::firstInteriorGap() const
{
    for (int64_t k = 0; k < max_index_; ++k) {
        if (magnitudeCount(k) == 0)
            return k;
    }
    return -1;
}

double
FxpLaplacePmf::totalMass() const
{
    double sum = pmf(0);
    for (int64_t k = 1; k <= max_index_; ++k)
        sum += pmf(k) + pmf(-k);
    return sum;
}

} // namespace ulpdp
