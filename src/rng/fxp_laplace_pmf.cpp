#include "rng/fxp_laplace_pmf.h"

#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>

#include "common/logging.h"

namespace ulpdp {

FxpLaplacePmf::FxpLaplacePmf(const FxpLaplaceConfig &config, Mode mode)
    : config_(config), mode_(mode)
{
    Quantizer quant(config.delta, config.output_bits);
    sat_index_ = quant.maxIndex();

    if (mode_ == Mode::Enumerated) {
        if (config.uniform_bits > kMaxEnumeratedBits)
            fatal("FxpLaplacePmf: Enumerated mode needs "
                  "uniform_bits <= %d, got %d", kMaxEnumeratedBits,
                  config.uniform_bits);
        buildSegmentCounts();
        buildTailCounts();
    } else if (mode_ == Mode::EnumeratedLegacy) {
        if (config.uniform_bits > kMaxLegacyEnumeratedBits)
            fatal("FxpLaplacePmf: EnumeratedLegacy mode needs "
                  "uniform_bits <= %d, got %d (2^Bu pipeline "
                  "evaluations)", kMaxLegacyEnumeratedBits,
                  config.uniform_bits);
        buildLegacyCounts();
        buildTailCounts();
    }

    // Locate the top of the support. Enumerated modes scan their own
    // counts (sized to the reachable support -- for the segment
    // engine that is k_top + 1, not the full saturation span).
    max_index_ = 0;
    if (mode_ != Mode::Analytic) {
        for (size_t k = counts_.size(); k-- > 0;) {
            if (counts_[k] > 0) {
                max_index_ = static_cast<int64_t>(k);
                break;
            }
        }
    } else {
        for (int64_t k = sat_index_; k >= 0; --k) {
            if (magnitudeCount(k) > 0) {
                max_index_ = k;
                break;
            }
        }
    }
}

void
FxpLaplacePmf::buildLegacyCounts()
{
    // Run the real pipeline for every URNG state. The pipeline is
    // sign-symmetric, so tallying magnitudes (sign = +1) suffices.
    FxpLaplaceRng rng(config_);
    counts_.assign(static_cast<size_t>(sat_index_) + 1, 0);
    uint64_t states = uint64_t{1} << config_.uniform_bits;
    for (uint64_t m = 1; m <= states; ++m) {
        int64_t k = rng.pipeline(m, 1);
        ULPDP_ASSERT(k >= 0 && k <= sat_index_);
        ++counts_[static_cast<size_t>(k)];
    }
}

void
FxpLaplacePmf::buildSegmentCounts()
{
    // The pipeline magnitude -lambda * ln(m / 2^Bu) is monotone
    // non-increasing in m, and every downstream stage (round-nearest
    // or floor quantization, saturation) preserves weak monotonicity,
    // so tail sets {m : pipeline(m) >= k} are URNG prefixes [1, B_k]
    // and per-bin counts are boundary differences B_k - B_{k+1}.
    // Each boundary is located from the Eq. (11) closed-form guess
    // floor(m1(k)) and corrected against the *real* pipeline with a
    // galloping probe + bisection, so the result is bit-identical to
    // the per-state walk (a test property, cross-checked at every
    // registered configuration) at O(support bins) cost.
    FxpLaplaceRng rng(config_);
    const uint64_t states = uint64_t{1} << config_.uniform_bits;

    // The largest bin any state reaches is the image of the smallest
    // URNG index; bins above it are empty -- never probed, never even
    // allocated (counts_ is sized to the reachable support, and the
    // accessors return 0 beyond it).
    const int64_t k_top = rng.pipeline(1, 1);
    ULPDP_ASSERT(k_top >= 0 && k_top <= sat_index_);
    counts_.assign(static_cast<size_t>(k_top) + 1, 0);

    // One-entry probe memo. The pipeline is monotone non-increasing,
    // so the last evaluation (last_m, last_v) settles any holds()
    // query it dominates without re-running the pipeline -- runs of
    // empty tail bins between occupied ones cost zero probes.
    uint64_t last_m = 0;
    int64_t last_v = -1;

    uint64_t prev_b = 0; // B_{k+1}: tail boundary of the bin above
    for (int64_t k = k_top; k >= 1; --k) {
        // holds(b): every state m <= b outputs >= k. States at or
        // below prev_b output >= k + 1 by the nesting of tail sets.
        auto holds = [&](uint64_t b) {
            if (b <= prev_b)
                return true;
            if (last_m != 0) {
                if (b <= last_m && last_v >= k)
                    return true;
                if (b >= last_m && last_v < k)
                    return false;
            }
            last_m = b;
            last_v = rng.pipeline(b, 1);
            return last_v >= k;
        };

        // Closed-form guess for B_k, clamped into the known bracket
        // [prev_b, states - 1] (pipeline(2^Bu) = 0 < k).
        double m1k = std::min(m1(k), static_cast<double>(states));
        uint64_t g = m1k > 0.0 ? static_cast<uint64_t>(m1k) : 0;
        if (g < prev_b)
            g = prev_b;
        if (g > states - 1)
            g = states - 1;

        uint64_t b_k;
        if (holds(g) && !holds(g + 1)) {
            b_k = g; // the guess was exact (the common case)
        } else {
            uint64_t lo, hi;
            if (holds(g)) {
                // Boundary above the guess: gallop up.
                lo = g;
                hi = states; // !holds(states) for k >= 1
                for (uint64_t step = 1; lo + step < states;
                     step *= 2) {
                    uint64_t probe = lo + step;
                    if (holds(probe)) {
                        lo = probe;
                    } else {
                        hi = probe;
                        break;
                    }
                }
            } else {
                // Boundary below the guess: gallop down.
                hi = g;
                lo = prev_b;
                for (uint64_t step = 1; hi > prev_b + step;
                     step *= 2) {
                    uint64_t probe = hi - step;
                    if (holds(probe)) {
                        lo = probe;
                        break;
                    }
                    hi = probe;
                }
            }
            while (hi - lo > 1) {
                uint64_t mid = lo + (hi - lo) / 2;
                if (holds(mid))
                    lo = mid;
                else
                    hi = mid;
            }
            b_k = lo;
        }
        counts_[static_cast<size_t>(k)] = b_k - prev_b;
        prev_b = b_k;
    }
    // Bin 0 absorbs every remaining state: B_0 = 2^Bu exactly, which
    // is what makes totalCount() slack-free by construction.
    counts_[0] = states - prev_b;
}

void
FxpLaplacePmf::buildTailCounts()
{
    // Suffix sums make the enumerated tailMass O(1); the values are
    // the same exact uint64 totals the on-demand summation produced.
    // Sized to counts_ (the reachable support), not the saturation
    // index; the accessors return 0 beyond it.
    tail_.assign(counts_.size() + 1, 0);
    for (size_t k = counts_.size(); k-- > 0;)
        tail_[k] = tail_[k + 1] + counts_[k];
}

double
FxpLaplacePmf::m1(int64_t k) const
{
    // Bin boundaries follow the quantizer: Nearest puts them at
    // (k -/+ 1/2) Delta (Eq. (11)); Floor puts them at k Delta and
    // (k + 1) Delta, making the magnitude law exactly geometric.
    double a = config_.delta / config_.lambda;
    double edge = config_.rounding == FxpLaplaceConfig::Rounding::Floor
                      ? static_cast<double>(k)
                      : static_cast<double>(k) - 0.5;
    return std::ldexp(1.0, config_.uniform_bits) * std::exp(-a * edge);
}

double
FxpLaplacePmf::m2(int64_t k) const
{
    double a = config_.delta / config_.lambda;
    double edge = config_.rounding == FxpLaplaceConfig::Rounding::Floor
                      ? static_cast<double>(k) + 1.0
                      : static_cast<double>(k) + 0.5;
    return std::ldexp(1.0, config_.uniform_bits) * std::exp(-a * edge);
}

uint64_t
FxpLaplacePmf::analyticCount(int64_t k) const
{
    if (k < 0 || k > sat_index_)
        return 0;
    double total = std::ldexp(1.0, config_.uniform_bits);

    // Number of URNG indices m in the half-open interval (A, B] is
    // floor(B) - floor(A). The upper boundary is clamped to 2^Bu
    // (covers k = 0, where m1(0) > 2^Bu) and the saturation bin
    // absorbs everything below its lower boundary.
    double upper = std::min(m1(k), total);
    double lower = (k == sat_index_) ? 0.0 : std::min(m2(k), total);
    double cnt = std::floor(upper) - std::floor(lower);
    return cnt > 0.0 ? static_cast<uint64_t>(cnt) : 0;
}

uint64_t
FxpLaplacePmf::magnitudeCount(int64_t k) const
{
    if (k < 0 || k > sat_index_)
        return 0;
    if (mode_ != Mode::Analytic) {
        size_t idx = static_cast<size_t>(k);
        return idx < counts_.size() ? counts_[idx] : 0;
    }
    return analyticCount(k);
}

uint64_t
FxpLaplacePmf::totalCount() const
{
    if (mode_ != Mode::Analytic)
        return tail_[0];
    // The analytic counts telescope to exactly 2^Bu as well; sum them
    // so the caller's exactness assertion covers both paths.
    uint64_t total = 0;
    for (int64_t k = 0; k <= sat_index_; ++k)
        total += analyticCount(k);
    return total;
}

double
FxpLaplacePmf::pmf(int64_t k) const
{
    int64_t mag = k >= 0 ? k : -k;
    double cnt = static_cast<double>(magnitudeCount(mag));
    double denom = std::ldexp(1.0, config_.uniform_bits);
    if (k == 0) {
        // Both signs collapse onto zero.
        return cnt / denom;
    }
    return cnt / (2.0 * denom);
}

double
FxpLaplacePmf::tailMass(int64_t k) const
{
    ULPDP_ASSERT(k >= 1);
    double denom = 2.0 * std::ldexp(1.0, config_.uniform_bits);
    if (mode_ != Mode::Analytic) {
        size_t idx = static_cast<size_t>(k);
        uint64_t cnt = idx < tail_.size() ? tail_[idx] : 0;
        return static_cast<double>(cnt) / denom;
    }
    // The per-bin counts telescope: sum_{j >= k} count(j) is just the
    // number of URNG indices at or below the k boundary,
    // floor(min(m1(k), 2^Bu)) -- the paper's Pr[n >= k Delta] =
    // floor(m1(k)) / 2^(Bu+1).
    if (k > sat_index_)
        return 0.0;
    double total = std::ldexp(1.0, config_.uniform_bits);
    double cnt = std::floor(std::min(m1(k), total));
    return (cnt > 0.0 ? cnt : 0.0) / denom;
}

double
FxpLaplacePmf::upperMass(int64_t k) const
{
    if (k >= 1)
        return tailMass(k);
    // Pr[n >= k] = 1 - Pr[n <= k - 1] = 1 - Pr[n >= 1 - k] by the
    // sign symmetry of the PMF; 1 - k >= 1 here.
    return 1.0 - tailMass(1 - k);
}

int64_t
FxpLaplacePmf::firstInteriorGap() const
{
    for (int64_t k = 0; k < max_index_; ++k) {
        if (magnitudeCount(k) == 0)
            return k;
    }
    return -1;
}

double
FxpLaplacePmf::totalMass() const
{
    double sum = pmf(0);
    for (int64_t k = 1; k <= max_index_; ++k)
        sum += pmf(k) + pmf(-k);
    return sum;
}

// --- memoized shared construction ----------------------------------------

namespace {

/** PMF-relevant configuration fields plus the mode, ordered for map
 *  lookup (doubles compared by bit pattern). */
struct PmfCacheKey
{
    int uniform_bits;
    int output_bits;
    uint64_t delta_bits;
    uint64_t lambda_bits;
    int log_mode;
    int rounding;
    int cordic_iterations;
    int mode;

    bool operator<(const PmfCacheKey &o) const
    {
        return std::tie(uniform_bits, output_bits, delta_bits,
                        lambda_bits, log_mode, rounding,
                        cordic_iterations, mode) <
               std::tie(o.uniform_bits, o.output_bits, o.delta_bits,
                        o.lambda_bits, o.log_mode, o.rounding,
                        o.cordic_iterations, o.mode);
    }
};

uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

std::mutex &
cacheMutex()
{
    static std::mutex m;
    return m;
}

std::map<PmfCacheKey, std::shared_ptr<const FxpLaplacePmf>> &
cacheMap()
{
    static std::map<PmfCacheKey,
                    std::shared_ptr<const FxpLaplacePmf>> cache;
    return cache;
}

} // anonymous namespace

std::shared_ptr<const FxpLaplacePmf>
FxpLaplacePmf::shared(const FxpLaplaceConfig &config, Mode mode)
{
    PmfCacheKey key{config.uniform_bits,
                    config.output_bits,
                    doubleBits(config.delta),
                    doubleBits(config.lambda),
                    static_cast<int>(config.log_mode),
                    static_cast<int>(config.rounding),
                    config.cordic_iterations,
                    static_cast<int>(mode)};
    // Build under the lock: enumeration is O(support bins) since the
    // segment engine, so serializing a cold miss costs microseconds
    // and guarantees exactly one object per configuration.
    std::lock_guard<std::mutex> guard(cacheMutex());
    auto &cache = cacheMap();
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    auto pmf = std::make_shared<const FxpLaplacePmf>(config, mode);
    cache.emplace(key, pmf);
    return pmf;
}

void
FxpLaplacePmf::clearSharedCache()
{
    std::lock_guard<std::mutex> guard(cacheMutex());
    cacheMap().clear();
}

} // namespace ulpdp
