/**
 * @file
 * AVX2 lockstep kernel for the Tausworthe lane bank.
 *
 * This translation unit is the only one compiled with -mavx2 (see
 * src/rng/CMakeLists.txt); taus_bank.cpp dispatches into it at runtime
 * after a cpuid check. The kernel is the exact taus88 recurrence of
 * Tausworthe::next32(), eight lanes per 256-bit vector -- the same
 * 32-bit shifts, masks and XORs, so every lane is bit-identical to its
 * scalar twin by construction.
 */

#if defined(ULPDP_SIMD_AVX2)

#include <cstddef>
#include <cstdint>
#include <immintrin.h>

namespace ulpdp {

void
tausBankStepAvx2(uint32_t *s1, uint32_t *s2, uint32_t *s3,
                 uint32_t *out, size_t n)
{
    size_t l = 0;
    for (; l + 8 <= n; l += 8) {
        // The state arrays are alignas(64), so each 8-lane group sits
        // on a 32-byte boundary; out is caller memory, stored
        // unaligned.
        __m256i v1 = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(s1 + l));
        __m256i v2 = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(s2 + l));
        __m256i v3 = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(s3 + l));
        __m256i b;

        b = _mm256_srli_epi32(
            _mm256_xor_si256(_mm256_slli_epi32(v1, 13), v1), 19);
        v1 = _mm256_xor_si256(
            _mm256_slli_epi32(
                _mm256_and_si256(
                    v1, _mm256_set1_epi32(
                            static_cast<int>(0xfffffffeU))),
                12),
            b);
        b = _mm256_srli_epi32(
            _mm256_xor_si256(_mm256_slli_epi32(v2, 2), v2), 25);
        v2 = _mm256_xor_si256(
            _mm256_slli_epi32(
                _mm256_and_si256(
                    v2, _mm256_set1_epi32(
                            static_cast<int>(0xfffffff8U))),
                4),
            b);
        b = _mm256_srli_epi32(
            _mm256_xor_si256(_mm256_slli_epi32(v3, 3), v3), 11);
        v3 = _mm256_xor_si256(
            _mm256_slli_epi32(
                _mm256_and_si256(
                    v3, _mm256_set1_epi32(
                            static_cast<int>(0xfffffff0U))),
                17),
            b);

        _mm256_store_si256(reinterpret_cast<__m256i *>(s1 + l), v1);
        _mm256_store_si256(reinterpret_cast<__m256i *>(s2 + l), v2);
        _mm256_store_si256(reinterpret_cast<__m256i *>(s3 + l), v3);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + l),
            _mm256_xor_si256(_mm256_xor_si256(v1, v2), v3));
    }
    // Scalar tail for lane counts that are not a multiple of 8.
    for (; l < n; ++l) {
        uint32_t b;
        b = ((s1[l] << 13) ^ s1[l]) >> 19;
        s1[l] = ((s1[l] & 0xfffffffeU) << 12) ^ b;
        b = ((s2[l] << 2) ^ s2[l]) >> 25;
        s2[l] = ((s2[l] & 0xfffffff8U) << 4) ^ b;
        b = ((s3[l] << 3) ^ s3[l]) >> 11;
        s3[l] = ((s3[l] & 0xfffffff0U) << 17) ^ b;
        out[l] = s1[l] ^ s2[l] ^ s3[l];
    }
}

} // namespace ulpdp

#endif // ULPDP_SIMD_AVX2
