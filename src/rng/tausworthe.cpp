#include "rng/tausworthe.h"

#include "common/logging.h"
#include "rng/health.h"

namespace ulpdp {

namespace {

/** SplitMix64 step, used only to expand the user seed. */
uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // anonymous namespace

void
Tausworthe::expandSeed(uint64_t seed, uint32_t &s1, uint32_t &s2,
                       uint32_t &s3)
{
    uint64_t s = seed;
    s1 = static_cast<uint32_t>(splitmix64(s));
    s2 = static_cast<uint32_t>(splitmix64(s));
    s3 = static_cast<uint32_t>(splitmix64(s));
}

bool
Tausworthe::seedDegenerate(uint64_t seed)
{
    if (seed == 0)
        return true;
    uint32_t s1, s2, s3;
    expandSeed(seed, s1, s2, s3);
    return s1 < 2 || s2 < 8 || s3 < 16;
}

Tausworthe::Tausworthe(uint64_t seed)
{
    // taus88 component states must exceed 1, 7 and 15 respectively or
    // the component LFSR degenerates to all-zero output.
    expandSeed(seed, s1_, s2_, s3_);
    if (s1_ < 2)
        s1_ += 2;
    if (s2_ < 8)
        s2_ += 8;
    if (s3_ < 16)
        s3_ += 16;
}

void
Tausworthe::setState(uint32_t s1, uint32_t s2, uint32_t s3)
{
    ULPDP_ASSERT(s1 >= 2 && s2 >= 8 && s3 >= 16);
    s1_ = s1;
    s2_ = s2;
    s3_ = s3;
}

uint32_t
Tausworthe::next32()
{
    // L'Ecuyer taus88 update. Each component is a linear feedback
    // shift register; the masks clear the dead low bits.
    uint32_t b;
    b = ((s1_ << 13) ^ s1_) >> 19;
    s1_ = ((s1_ & 0xfffffffeU) << 12) ^ b;
    b = ((s2_ << 2) ^ s2_) >> 25;
    s2_ = ((s2_ & 0xfffffff8U) << 4) ^ b;
    b = ((s3_ << 3) ^ s3_) >> 11;
    s3_ = ((s3_ & 0xfffffff0U) << 17) ^ b;

    uint32_t word = s1_ ^ s2_ ^ s3_;
    // Fault site: the output register. The health monitor watches the
    // post-fault word -- what the noise datapath actually consumes.
    if (fault_hook_ != nullptr)
        word = fault_hook_->urngWord(word);
    if (health_ != nullptr)
        health_->observe(word);
    return word;
}

uint32_t
Tausworthe::nextBits(int bits)
{
    ULPDP_ASSERT(bits >= 1 && bits <= 32);
    return next32() >> (32 - bits);
}

uint64_t
Tausworthe::nextUnitIndex(int bu)
{
    ULPDP_ASSERT(bu >= 1 && bu <= 32);
    uint64_t raw = nextBits(bu);
    // Map the all-zeros word to 2^bu so m is uniform on {1..2^bu} and
    // u = m * 2^-bu never hits zero (log(0) does not exist in any
    // hardware).
    return raw == 0 ? (uint64_t{1} << bu) : raw;
}

int
Tausworthe::nextSign()
{
    return (next32() >> 31) ? 1 : -1;
}

double
Tausworthe::nextUnitDouble()
{
    // (raw + 1) / 2^32 is uniform on (0, 1] with 2^-32 granularity.
    return (static_cast<double>(next32()) + 1.0) * 0x1p-32;
}

} // namespace ulpdp
