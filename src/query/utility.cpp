#include "query/utility.h"

#include <cmath>

#include "common/logging.h"
#include "common/stats.h"

namespace ulpdp {

UtilityResult
UtilityEvaluator::evaluate(const std::vector<double> &data,
                           Mechanism &mechanism,
                           const Query &query) const
{
    if (data.empty())
        fatal("UtilityEvaluator: empty dataset");

    double true_value = query.evaluate(data);

    RunningStats err_stats;
    uint64_t samples = 0;
    std::vector<double> noised(data.size());
    for (int t = 0; t < trials_; ++t) {
        for (size_t i = 0; i < data.size(); ++i) {
            NoisedReport rep = mechanism.noise(data[i]);
            noised[i] = rep.value;
            samples += rep.samples_drawn;
        }
        double answer = query.evaluate(noised);
        err_stats.add(std::abs(answer - true_value));
    }

    UtilityResult result;
    result.mae = err_stats.mean();
    result.mae_std = err_stats.stddev();
    result.true_value = true_value;
    result.relative_error = true_value != 0.0
        ? result.mae / std::abs(true_value)
        : result.mae;
    result.samples_drawn = samples;
    result.reports = static_cast<uint64_t>(data.size()) *
                     static_cast<uint64_t>(trials_);
    return result;
}

UtilityResult
UtilityEvaluator::evaluateRaw(const std::vector<double> &data,
                              const Query &query) const
{
    if (data.empty())
        fatal("UtilityEvaluator: empty dataset");
    UtilityResult result;
    result.true_value = query.evaluate(data);
    result.reports = data.size();
    return result;
}

} // namespace ulpdp
