/**
 * @file
 * Analyst-side histogram estimation by deconvolution.
 *
 * Means debias themselves (additive zero-mean noise) but histograms,
 * quantiles and counts do not: the distribution the analyst sees is
 * the true input histogram convolved with the mechanism's conditional
 * output kernel. Because this library knows that kernel *exactly*
 * (the DiscreteOutputModel used for the privacy proofs), the analyst
 * can invert it: expectation-maximisation (Richardson-Lucy) over the
 * model matrix converges to the maximum-likelihood input histogram
 * for multinomially sampled outputs.
 *
 * This is post-processing of already-released LDP reports, so it
 * costs no additional privacy (Section II-B of the paper).
 */

#ifndef ULPDP_QUERY_HISTOGRAM_QUERY_H
#define ULPDP_QUERY_HISTOGRAM_QUERY_H

#include <cstdint>
#include <vector>

#include "core/output_model.h"

namespace ulpdp {

/** Maximum-likelihood input-histogram estimator. */
class HistogramEstimator
{
  public:
    /**
     * @param model Exact conditional output model of the mechanism
     *        that produced the reports (thresholding, resampling,
     *        ...). Copied into a dense matrix at construction.
     * @param iterations EM iterations (default 300; each is
     *        O(inputs * outputs)).
     */
    explicit HistogramEstimator(const DiscreteOutputModel &model,
                                int iterations = 300);

    /**
     * Estimate the input histogram from released reports.
     *
     * @param output_indices Reports as absolute output indices on
     *        the mechanism's Delta grid (outside-support indices are
     *        rejected).
     * @return Estimated input probabilities over input indices
     *         0..span, non-negative and summing to 1.
     */
    std::vector<double>
    estimate(const std::vector<int64_t> &output_indices) const;

    /**
     * Same, from pre-tallied output counts aligned with
     * [outputLo(), outputHi()].
     */
    std::vector<double>
    estimateFromCounts(const std::vector<uint64_t> &counts) const;

    /** Number of input bins (span + 1). */
    size_t numInputs() const { return inputs_; }

    /** Number of output bins. */
    size_t numOutputs() const { return outputs_; }

    /** Smallest output index the model can produce. */
    int64_t outputLo() const { return output_lo_; }

  private:
    size_t inputs_;
    size_t outputs_;
    int64_t output_lo_;
    int iterations_;
    /** Row-major kernel[j][i] = Pr[output j | input i]. */
    std::vector<double> kernel_;
};

} // namespace ulpdp

#endif // ULPDP_QUERY_HISTOGRAM_QUERY_H
