#include "query/query.h"

#include <cmath>

#include "common/stats.h"

namespace ulpdp {

double
MeanQuery::evaluate(const std::vector<double> &values) const
{
    return batch::mean(values);
}

double
MedianQuery::evaluate(const std::vector<double> &values) const
{
    return batch::median(values);
}

double
VarianceQuery::evaluate(const std::vector<double> &values) const
{
    return batch::variance(values);
}

double
StdDevQuery::evaluate(const std::vector<double> &values) const
{
    return batch::stddev(values);
}

double
CountAboveQuery::evaluate(const std::vector<double> &values) const
{
    double count = 0.0;
    for (double v : values) {
        if (v >= threshold_)
            count += 1.0;
    }
    return count;
}

} // namespace ulpdp
