/**
 * @file
 * Utility evaluation harness (methodology of Section V).
 *
 * The paper presents each dataset entry to the DP-Box repeatedly (500
 * trials) and reports the mean absolute error (MAE +- its standard
 * deviation) of each query computed on noised data versus raw data.
 * One trial here = noise every entry once, evaluate the query on the
 * noised vector, record |noised query - true query|.
 */

#ifndef ULPDP_QUERY_UTILITY_H
#define ULPDP_QUERY_UTILITY_H

#include <cstdint>
#include <vector>

#include "core/mechanism.h"
#include "query/query.h"

namespace ulpdp {

/** MAE result of one (dataset, mechanism, query) cell. */
struct UtilityResult
{
    /** Mean absolute error over trials. */
    double mae = 0.0;

    /** Standard deviation of the absolute error over trials. */
    double mae_std = 0.0;

    /**
     * MAE normalised: by the range length for mean/median/count-rate
     * comparisons the caller performs; stored raw here as
     * mae / |true value| when the true value is nonzero, else
     * mae itself. Callers wanting a different normalisation use mae
     * directly.
     */
    double relative_error = 0.0;

    /** True (raw-data) query answer. */
    double true_value = 0.0;

    /** Total Laplace samples drawn (resampling energy proxy). */
    uint64_t samples_drawn = 0;

    /** Total reports produced (= entries * trials). */
    uint64_t reports = 0;

    /** Average samples per report (latency proxy, Fig. 11). */
    double
    avgSamplesPerReport() const
    {
        return reports == 0
            ? 0.0
            : static_cast<double>(samples_drawn) /
              static_cast<double>(reports);
    }
};

/** Runs the trial loop of Section V. */
class UtilityEvaluator
{
  public:
    /**
     * @param trials Trials per evaluation (paper: 500).
     */
    explicit UtilityEvaluator(int trials = 500) : trials_(trials) {}

    /**
     * Evaluate @p query utility under @p mechanism on @p data.
     * The mechanism's internal RNG state advances across trials.
     */
    UtilityResult evaluate(const std::vector<double> &data,
                           Mechanism &mechanism,
                           const Query &query) const;

    /**
     * Evaluate on raw data passed through unmodified (sanity rows and
     * the "No DP" settings).
     */
    UtilityResult evaluateRaw(const std::vector<double> &data,
                              const Query &query) const;

    int trials() const { return trials_; }

  private:
    int trials_;
};

} // namespace ulpdp

#endif // ULPDP_QUERY_UTILITY_H
