/**
 * @file
 * Statistical queries applied to (noised) report vectors.
 *
 * In the local model the analyst only ever sees noised reports
 * (Fig. 2(b)); aggregate queries -- mean, median, variance, counting
 * -- are computed over those. Post-processing preserves LDP
 * (Section II-B), so no privacy bookkeeping happens here; this module
 * is purely the analyst's toolbox plus the utility metric (mean
 * absolute error) of Tables II-V.
 */

#ifndef ULPDP_QUERY_QUERY_H
#define ULPDP_QUERY_QUERY_H

#include <memory>
#include <string>
#include <vector>

namespace ulpdp {

/** An aggregate statistical query over a vector of values. */
class Query
{
  public:
    virtual ~Query() = default;

    /** Evaluate the query on @p values. */
    virtual double evaluate(const std::vector<double> &values) const = 0;

    /** Query name for table rows. */
    virtual std::string name() const = 0;
};

/** Arithmetic mean. */
class MeanQuery : public Query
{
  public:
    double evaluate(const std::vector<double> &values) const override;
    std::string name() const override { return "mean"; }
};

/** Median (order statistic). */
class MedianQuery : public Query
{
  public:
    double evaluate(const std::vector<double> &values) const override;
    std::string name() const override { return "median"; }
};

/** Population variance. */
class VarianceQuery : public Query
{
  public:
    double evaluate(const std::vector<double> &values) const override;
    std::string name() const override { return "variance"; }
};

/** Population standard deviation. */
class StdDevQuery : public Query
{
  public:
    double evaluate(const std::vector<double> &values) const override;
    std::string name() const override { return "stddev"; }
};

/**
 * Counting query: number of entries at or above a threshold value
 * (e.g. "how many patients have blood pressure >= 140").
 */
class CountAboveQuery : public Query
{
  public:
    explicit CountAboveQuery(double threshold) : threshold_(threshold) {}

    double evaluate(const std::vector<double> &values) const override;
    std::string name() const override { return "count"; }

    /** Threshold the count compares against. */
    double threshold() const { return threshold_; }

  private:
    double threshold_;
};

} // namespace ulpdp

#endif // ULPDP_QUERY_QUERY_H
