#include "query/histogram_query.h"

#include "common/logging.h"

namespace ulpdp {

HistogramEstimator::HistogramEstimator(const DiscreteOutputModel &model,
                                       int iterations)
    : iterations_(iterations)
{
    if (iterations < 1)
        fatal("HistogramEstimator: iterations must be positive");

    inputs_ = static_cast<size_t>(model.span()) + 1;
    output_lo_ = model.outputLo();
    outputs_ = static_cast<size_t>(model.outputHi() -
                                   model.outputLo()) + 1;
    kernel_.resize(inputs_ * outputs_);
    for (size_t j = 0; j < outputs_; ++j) {
        int64_t out = output_lo_ + static_cast<int64_t>(j);
        for (size_t i = 0; i < inputs_; ++i) {
            kernel_[j * inputs_ + i] =
                model.prob(out, static_cast<int64_t>(i));
        }
    }
}

std::vector<double>
HistogramEstimator::estimateFromCounts(
        const std::vector<uint64_t> &counts) const
{
    if (counts.size() != outputs_)
        fatal("HistogramEstimator: got %zu counts for %zu output "
              "bins", counts.size(), outputs_);

    double total = 0.0;
    for (uint64_t c : counts)
        total += static_cast<double>(c);
    if (total <= 0.0)
        fatal("HistogramEstimator: no reports");

    // Richardson-Lucy EM: pi <- pi * A^T (o / (A pi)), with A the
    // kernel; fixed point is the multinomial ML estimate.
    std::vector<double> pi(inputs_, 1.0 / static_cast<double>(inputs_));
    std::vector<double> predicted(outputs_);
    std::vector<double> next(inputs_);
    for (int it = 0; it < iterations_; ++it) {
        for (size_t j = 0; j < outputs_; ++j) {
            double p = 0.0;
            const double *row = &kernel_[j * inputs_];
            for (size_t i = 0; i < inputs_; ++i)
                p += row[i] * pi[i];
            predicted[j] = p;
        }
        for (size_t i = 0; i < inputs_; ++i)
            next[i] = 0.0;
        for (size_t j = 0; j < outputs_; ++j) {
            if (counts[j] == 0 || predicted[j] <= 0.0)
                continue;
            double ratio = static_cast<double>(counts[j]) / total /
                           predicted[j];
            const double *row = &kernel_[j * inputs_];
            for (size_t i = 0; i < inputs_; ++i)
                next[i] += row[i] * ratio;
        }
        double norm = 0.0;
        for (size_t i = 0; i < inputs_; ++i) {
            pi[i] *= next[i];
            norm += pi[i];
        }
        if (norm <= 0.0)
            fatal("HistogramEstimator: EM collapsed (all mass on "
                  "impossible outputs?)");
        for (auto &v : pi)
            v /= norm;
    }
    return pi;
}

std::vector<double>
HistogramEstimator::estimate(
        const std::vector<int64_t> &output_indices) const
{
    std::vector<uint64_t> counts(outputs_, 0);
    for (int64_t idx : output_indices) {
        int64_t rel = idx - output_lo_;
        if (rel < 0 || rel >= static_cast<int64_t>(outputs_))
            fatal("HistogramEstimator: report index %lld outside "
                  "the model's output range",
                  static_cast<long long>(idx));
        ++counts[static_cast<size_t>(rel)];
    }
    return estimateFromCounts(counts);
}

} // namespace ulpdp
