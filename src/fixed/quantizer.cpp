#include "fixed/quantizer.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

Quantizer::Quantizer(double delta, int bits)
    : delta_(delta), bits_(bits)
{
    if (!(delta > 0.0))
        fatal("Quantizer: delta must be positive, got %g", delta);
    if (bits < 2 || bits > 62)
        fatal("Quantizer: bits must be in [2, 62], got %d", bits);
    min_index_ = -(int64_t{1} << (bits - 1));
    max_index_ = (int64_t{1} << (bits - 1)) - 1;
}

int64_t
Quantizer::quantizeToIndex(double x) const
{
    double scaled = x / delta_;
    // Round half away from zero: the paper's RNG rounds the noise
    // magnitude and applies the sign afterwards, which is exactly
    // round-half-away-from-zero on the signed value.
    double rounded = scaled >= 0.0 ? std::floor(scaled + 0.5)
                                   : std::ceil(scaled - 0.5);
    if (rounded <= static_cast<double>(min_index_))
        return min_index_;
    if (rounded >= static_cast<double>(max_index_))
        return max_index_;
    return static_cast<int64_t>(rounded);
}

double
Quantizer::quantize(double x) const
{
    return value(quantizeToIndex(x));
}

} // namespace ulpdp
