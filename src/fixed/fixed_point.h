/**
 * @file
 * Signed two's-complement fixed-point value type.
 *
 * ULP hardware like the paper's DP-Box has no floating-point unit; the
 * entire noising datapath (Tausworthe URNG, CORDIC logarithm, scaling,
 * addition, clamping) operates on narrow fixed-point words. This header
 * provides a compile-time parameterised Q-format type used to model
 * that datapath bit-exactly.
 *
 * Fxp<I, F> holds a signed value with I integer bits (including the
 * sign bit) and F fraction bits, i.e. a Q(I-1).F number stored in an
 * (I+F)-bit two's-complement word. All arithmetic saturates on
 * overflow, matching the saturating adders used in low-power DSP
 * datapaths (wrap-around would silently corrupt noise samples and void
 * the privacy analysis).
 */

#ifndef ULPDP_FIXED_FIXED_POINT_H
#define ULPDP_FIXED_FIXED_POINT_H

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

#include "common/logging.h"

namespace ulpdp {

/**
 * Signed saturating fixed-point number with @p IntBits integer bits
 * (sign included) and @p FracBits fraction bits.
 *
 * The total word length IntBits + FracBits must fit in 63 bits so that
 * products can be computed exactly in __int128 before rounding.
 */
template <int IntBits, int FracBits>
class Fxp
{
    static_assert(IntBits >= 1, "need at least a sign bit");
    static_assert(FracBits >= 0, "fraction bits must be non-negative");
    static_assert(IntBits + FracBits <= 63, "word too wide");

  public:
    /** Total word length in bits. */
    static constexpr int word_length = IntBits + FracBits;

    /** Number of fraction bits. */
    static constexpr int frac_bits = FracBits;

    /** Largest representable raw value: 2^(WL-1) - 1. */
    static constexpr int64_t raw_max =
        (int64_t{1} << (word_length - 1)) - 1;

    /** Smallest representable raw value: -2^(WL-1). */
    static constexpr int64_t raw_min = -(int64_t{1} << (word_length - 1));

    /** Value of one least-significant bit: 2^-FracBits. */
    static double
    resolution()
    {
        return std::ldexp(1.0, -FracBits);
    }

    /** Largest representable value. */
    static constexpr Fxp
    max()
    {
        return fromRaw(raw_max);
    }

    /** Smallest (most negative) representable value. */
    static constexpr Fxp
    min()
    {
        return fromRaw(raw_min);
    }

    constexpr Fxp() = default;

    /** Wrap a raw two's-complement word (must be in range). */
    static constexpr Fxp
    fromRaw(int64_t raw)
    {
        Fxp f;
        f.raw_ = raw;
        return f;
    }

    /**
     * Convert from double with round-to-nearest-even and saturation.
     * NaN saturates to zero (there is no NaN in fixed point; zero noise
     * is the conservative failure mode the tests then catch).
     */
    static Fxp
    fromDouble(double v)
    {
        if (std::isnan(v))
            return Fxp();
        double scaled = std::ldexp(v, FracBits);
        if (scaled >= static_cast<double>(raw_max))
            return fromRaw(raw_max);
        if (scaled <= static_cast<double>(raw_min))
            return fromRaw(raw_min);
        return fromRaw(std::llrint(scaled));
    }

    /** Convert from a plain integer value (saturating). */
    static Fxp
    fromInt(int64_t v)
    {
        __int128 scaled = static_cast<__int128>(v) << FracBits;
        return saturate(scaled);
    }

    /** Raw two's-complement word. */
    constexpr int64_t raw() const { return raw_; }

    /** Value as a double (exact: the word fits in a double mantissa
     *  only up to 53 bits, but our words are <= 63; error is bounded
     *  by the double rounding and irrelevant for <= 32-bit words). */
    double toDouble() const { return std::ldexp(static_cast<double>(raw_),
                                                -FracBits); }

    /** Truncate toward negative infinity to an integer. */
    int64_t
    floorToInt() const
    {
        return raw_ >> FracBits;
    }

    /** Saturating addition. */
    Fxp
    operator+(Fxp other) const
    {
        return saturate(static_cast<__int128>(raw_) + other.raw_);
    }

    /** Saturating subtraction. */
    Fxp
    operator-(Fxp other) const
    {
        return saturate(static_cast<__int128>(raw_) - other.raw_);
    }

    /** Saturating negation (note -min saturates to max). */
    Fxp
    operator-() const
    {
        return saturate(-static_cast<__int128>(raw_));
    }

    /**
     * Saturating multiplication with round-to-nearest of the discarded
     * fraction bits, as a hardware multiplier with a rounding stage
     * would produce.
     */
    Fxp
    operator*(Fxp other) const
    {
        __int128 prod = static_cast<__int128>(raw_) * other.raw_;
        if constexpr (FracBits == 0) {
            return saturate(prod);
        } else {
            // Round to nearest, ties away from zero, while dropping
            // FracBits bits: negate-round-negate keeps the negative
            // half exactly mirror-symmetric with the positive one.
            __int128 half = __int128{1} << (FracBits - 1);
            if (prod >= 0)
                return saturate((prod + half) >> FracBits);
            return saturate(-((-prod + half) >> FracBits));
        }
    }

    /** Arithmetic shift left (saturating). */
    Fxp
    shiftLeft(int k) const
    {
        ULPDP_ASSERT(k >= 0 && k < 64);
        return saturate(static_cast<__int128>(raw_) << k);
    }

    /** Arithmetic shift right (rounds toward negative infinity). */
    Fxp
    shiftRight(int k) const
    {
        ULPDP_ASSERT(k >= 0 && k < 64);
        return fromRaw(raw_ >> k);
    }

    /** Absolute value (saturating for min()). */
    Fxp
    abs() const
    {
        return raw_ < 0 ? -*this : *this;
    }

    constexpr auto operator<=>(const Fxp &) const = default;

    /** Human-readable representation, e.g. "3.14159 (raw 12868)". */
    std::string
    toString() const
    {
        return std::to_string(toDouble()) + " (raw " +
               std::to_string(raw_) + ")";
    }

  private:
    static constexpr Fxp
    saturate(__int128 raw)
    {
        if (raw > raw_max)
            return fromRaw(raw_max);
        if (raw < raw_min)
            return fromRaw(raw_min);
        return fromRaw(static_cast<int64_t>(raw));
    }

    int64_t raw_ = 0;
};

/**
 * The 20-bit fixed-point word the paper's DP-Box datapath uses
 * ("We implemented DP-Box in RTL with 20-bit noised output"): 8 integer
 * bits (sign included) and 12 fraction bits, enough for sensors up to
 * 13-bit resolution with privacy parameter epsilon >= 0.1 after range
 * normalisation (Section III-D).
 */
using DpBoxWord = Fxp<8, 12>;

} // namespace ulpdp

#endif // ULPDP_FIXED_FIXED_POINT_H
