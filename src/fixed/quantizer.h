/**
 * @file
 * Runtime-parameterised uniform quantizer.
 *
 * The privacy analysis (Section III-A2 of the paper) sweeps the RNG
 * output resolution: By output bits with quantization step Delta, so
 * representable noise values are k*Delta for
 * k in {-2^(By-1), ..., 2^(By-1)-1}. A compile-time Fxp type cannot
 * express a swept resolution, hence this runtime quantizer.
 */

#ifndef ULPDP_FIXED_QUANTIZER_H
#define ULPDP_FIXED_QUANTIZER_H

#include <cstdint>

namespace ulpdp {

/**
 * Uniform mid-tread quantizer: rounds to the nearest multiple of a
 * step Delta and saturates to a By-bit signed index range.
 */
class Quantizer
{
  public:
    /**
     * @param delta Quantization step (> 0).
     * @param bits Output word length By in bits (2..62); indices span
     *             [-2^(By-1), 2^(By-1)-1].
     */
    Quantizer(double delta, int bits);

    /** Quantization step Delta. */
    double delta() const { return delta_; }

    /** Output word length in bits. */
    int bits() const { return bits_; }

    /** Smallest representable index. */
    int64_t minIndex() const { return min_index_; }

    /** Largest representable index. */
    int64_t maxIndex() const { return max_index_; }

    /** Smallest representable value: minIndex() * delta(). */
    double minValue() const { return static_cast<double>(min_index_) *
                                     delta_; }

    /** Largest representable value: maxIndex() * delta(). */
    double maxValue() const { return static_cast<double>(max_index_) *
                                     delta_; }

    /**
     * Round @p x to the nearest index k (ties away from zero, as a
     * hardware round-half-up stage on the magnitude produces) and
     * saturate to the representable range.
     */
    int64_t quantizeToIndex(double x) const;

    /** Round @p x to the nearest representable value k * Delta. */
    double quantize(double x) const;

    /** Reconstruct the value for index @p k (no range check). */
    double value(int64_t k) const { return static_cast<double>(k) *
                                           delta_; }

  private:
    double delta_;
    int bits_;
    int64_t min_index_;
    int64_t max_index_;
};

} // namespace ulpdp

#endif // ULPDP_FIXED_QUANTIZER_H
