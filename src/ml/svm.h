/**
 * @file
 * Linear support vector machine trained with the Pegasos subgradient
 * method, for the privacy-preserving learning experiment of
 * Section VI-F (Table VI): train an SVM on LDP-noised features and
 * measure how classification accuracy degrades with smaller epsilon
 * and recovers with more training data.
 */

#ifndef ULPDP_ML_SVM_H
#define ULPDP_ML_SVM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ulpdp {

/** A labelled dataset for binary classification. */
struct LabelledData
{
    /** Feature vectors, all the same dimension. */
    std::vector<std::vector<double>> features;

    /** Labels, +1 or -1, aligned with features. */
    std::vector<int> labels;

    /** Number of examples. */
    size_t size() const { return features.size(); }

    /** Feature dimension (0 when empty). */
    size_t dim() const { return features.empty() ? 0
                                                 : features[0].size(); }
};

/** Hyperparameters of the Pegasos trainer. */
struct SvmConfig
{
    /**
     * Regularisation parameter lambda. The default is tuned for
     * LDP-noised features, whose magnitude far exceeds the clean
     * unit box: weaker regularisation lets early Pegasos steps
     * overshoot on noise.
     */
    double lambda = 1e-2;

    /** Number of stochastic subgradient iterations per example. */
    int epochs = 100;

    /** PRNG seed for example sampling. */
    uint64_t seed = 1;
};

/** Linear SVM: sign(w . x + b). */
class LinearSvm
{
  public:
    explicit LinearSvm(const SvmConfig &config = SvmConfig());

    /** Train on @p data (replaces any previous model). */
    void train(const LabelledData &data);

    /** Predict the label of one feature vector. */
    int predict(const std::vector<double> &x) const;

    /** Fraction of @p data classified correctly. */
    double accuracy(const LabelledData &data) const;

    /** Learned weight vector. */
    const std::vector<double> &weights() const { return w_; }

    /** Learned bias. */
    double bias() const { return b_; }

  private:
    SvmConfig config_;
    std::vector<double> w_;
    double b_ = 0.0;
};

/**
 * Generate a linearly separable halfspace dataset (Section VI-F): a
 * random unit normal w*, points uniform in [-1, 1]^dim, labels
 * sign(w* . x), points within @p margin of the boundary rejected so
 * the noiseless problem is cleanly separable.
 */
LabelledData makeHalfspaceData(size_t n, size_t dim, double margin,
                               uint64_t seed);

} // namespace ulpdp

#endif // ULPDP_ML_SVM_H
