#include "ml/svm.h"

#include <cmath>
#include <random>

#include "common/logging.h"

namespace ulpdp {

LinearSvm::LinearSvm(const SvmConfig &config) : config_(config)
{
    if (!(config.lambda > 0.0))
        fatal("LinearSvm: lambda must be positive, got %g",
              config.lambda);
    if (config.epochs < 1)
        fatal("LinearSvm: epochs must be positive, got %d",
              config.epochs);
}

void
LinearSvm::train(const LabelledData &data)
{
    if (data.size() == 0)
        fatal("LinearSvm: empty training set");
    if (data.labels.size() != data.features.size())
        fatal("LinearSvm: %zu labels for %zu feature vectors",
              data.labels.size(), data.features.size());

    size_t dim = data.dim();
    w_.assign(dim, 0.0);
    b_ = 0.0;

    std::mt19937_64 rng(config_.seed);
    std::uniform_int_distribution<size_t> pick(0, data.size() - 1);

    // Pegasos: at step t, with example (x, y),
    //   eta = 1 / (lambda * t)
    //   w <- (1 - eta * lambda) w + eta * y * x   if margin violated
    //   w <- (1 - eta * lambda) w                 otherwise
    uint64_t total =
        static_cast<uint64_t>(config_.epochs) * data.size();
    for (uint64_t t = 1; t <= total; ++t) {
        size_t i = pick(rng);
        const auto &x = data.features[i];
        ULPDP_ASSERT(x.size() == dim);
        double y = static_cast<double>(data.labels[i]);

        double score = b_;
        for (size_t j = 0; j < dim; ++j)
            score += w_[j] * x[j];

        double eta = 1.0 / (config_.lambda * static_cast<double>(t));
        double shrink = 1.0 - eta * config_.lambda;
        for (auto &wj : w_)
            wj *= shrink;
        if (y * score < 1.0) {
            for (size_t j = 0; j < dim; ++j)
                w_[j] += eta * y * x[j];
            b_ += eta * y;
        }
    }
}

int
LinearSvm::predict(const std::vector<double> &x) const
{
    ULPDP_ASSERT(x.size() == w_.size());
    double score = b_;
    for (size_t j = 0; j < x.size(); ++j)
        score += w_[j] * x[j];
    return score >= 0.0 ? 1 : -1;
}

double
LinearSvm::accuracy(const LabelledData &data) const
{
    if (data.size() == 0)
        return 0.0;
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i) {
        if (predict(data.features[i]) == data.labels[i])
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

LabelledData
makeHalfspaceData(size_t n, size_t dim, double margin, uint64_t seed)
{
    ULPDP_ASSERT(dim >= 1);
    ULPDP_ASSERT(margin >= 0.0);

    std::mt19937_64 rng(seed);
    std::normal_distribution<double> gauss(0.0, 1.0);
    std::uniform_real_distribution<double> unif(-1.0, 1.0);

    // Random unit normal.
    std::vector<double> normal(dim);
    double norm = 0.0;
    for (auto &c : normal) {
        c = gauss(rng);
        norm += c * c;
    }
    norm = std::sqrt(norm);
    for (auto &c : normal)
        c /= norm;

    LabelledData data;
    data.features.reserve(n);
    data.labels.reserve(n);
    while (data.features.size() < n) {
        std::vector<double> x(dim);
        double score = 0.0;
        for (size_t j = 0; j < dim; ++j) {
            x[j] = unif(rng);
            score += normal[j] * x[j];
        }
        if (std::abs(score) < margin)
            continue; // too close to the boundary; keep it separable
        data.labels.push_back(score >= 0.0 ? 1 : -1);
        data.features.push_back(std::move(x));
    }
    return data;
}

} // namespace ulpdp
