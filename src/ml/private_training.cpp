#include "ml/private_training.h"

namespace ulpdp {

LabelledData
noiseFeatures(const LabelledData &data, Mechanism &mechanism)
{
    LabelledData out;
    out.labels = data.labels;
    out.features.reserve(data.size());
    const SensorRange &range = mechanism.range();
    for (const auto &x : data.features) {
        std::vector<double> noised(x.size());
        for (size_t j = 0; j < x.size(); ++j)
            noised[j] = mechanism.noise(range.clamp(x[j])).value;
        out.features.push_back(std::move(noised));
    }
    return out;
}

} // namespace ulpdp
