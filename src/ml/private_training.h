/**
 * @file
 * Glue between LDP mechanisms and the SVM trainer: each training
 * example's features are noised locally before they ever reach the
 * trainer, exactly as Section VI-F trains on DP-Box output. Labels
 * are left untouched (the paper noises the sensor features; label
 * privacy would be randomized response and is exercised separately).
 */

#ifndef ULPDP_ML_PRIVATE_TRAINING_H
#define ULPDP_ML_PRIVATE_TRAINING_H

#include "core/mechanism.h"
#include "ml/svm.h"

namespace ulpdp {

/**
 * Noise every feature of every example through @p mechanism.
 *
 * Each feature release costs the mechanism's epsilon; by sequential
 * composition an example with k features leaks k * eps total. The
 * Table VI experiment reports accuracy against the per-feature eps,
 * matching the paper.
 *
 * Features outside the mechanism's configured sensor range are
 * clamped first (the halfspace generator emits [-1, 1] features; use
 * a mechanism configured for that range).
 */
LabelledData noiseFeatures(const LabelledData &data,
                           Mechanism &mechanism);

} // namespace ulpdp

#endif // ULPDP_ML_PRIVATE_TRAINING_H
