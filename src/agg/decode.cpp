#include "agg/decode.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ulpdp {
namespace agg {

namespace {

/**
 * Invert a dense n x n matrix in place via Gauss-Jordan with partial
 * pivoting. The normal-equations Gram matrix here is symmetric
 * positive definite for any full-column-rank channel, so a vanishing
 * pivot means the channel itself is rank-deficient.
 */
std::vector<double>
invertDense(std::vector<double> g, size_t n)
{
    std::vector<double> inv(n * n, 0.0);
    for (size_t i = 0; i < n; ++i)
        inv[i * n + i] = 1.0;
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        double best = std::fabs(g[col * n + col]);
        for (size_t r = col + 1; r < n; ++r) {
            double v = std::fabs(g[r * n + col]);
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-12) {
            fatal("frequency decoder: channel matrix is rank-"
                  "deficient at column %zu (pivot %g)", col, best);
        }
        if (pivot != col) {
            for (size_t c = 0; c < n; ++c) {
                std::swap(g[pivot * n + c], g[col * n + c]);
                std::swap(inv[pivot * n + c], inv[col * n + c]);
            }
        }
        double scale = 1.0 / g[col * n + col];
        for (size_t c = 0; c < n; ++c) {
            g[col * n + c] *= scale;
            inv[col * n + c] *= scale;
        }
        for (size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            double f = g[r * n + col];
            if (f == 0.0)
                continue;
            for (size_t c = 0; c < n; ++c) {
                g[r * n + c] -= f * g[col * n + c];
                inv[r * n + c] -= f * inv[col * n + c];
            }
        }
    }
    return inv;
}

} // namespace

FrequencyDecoder::FrequencyDecoder(const DiscreteOutputModel &model)
{
    inputs_ = static_cast<size_t>(model.span()) + 1;
    output_lo_ = model.outputLo();
    outputs_ =
        static_cast<size_t>(model.outputHi() - model.outputLo()) + 1;
    ULPDP_ASSERT(inputs_ >= 1 && outputs_ >= inputs_);

    kernel_.resize(outputs_ * inputs_);
    for (size_t j = 0; j < outputs_; ++j) {
        int64_t out_index = output_lo_ + static_cast<int64_t>(j);
        for (size_t i = 0; i < inputs_; ++i) {
            kernel_[j * inputs_ + i] =
                model.prob(out_index, static_cast<int64_t>(i));
        }
    }

    // Gram matrix G = M^T M (inputs x inputs), then
    // pinv = G^{-1} M^T (inputs x outputs).
    std::vector<double> gram(inputs_ * inputs_, 0.0);
    for (size_t j = 0; j < outputs_; ++j) {
        const double *row = &kernel_[j * inputs_];
        for (size_t a = 0; a < inputs_; ++a) {
            if (row[a] == 0.0)
                continue;
            for (size_t b = 0; b < inputs_; ++b)
                gram[a * inputs_ + b] += row[a] * row[b];
        }
    }
    std::vector<double> ginv = invertDense(std::move(gram), inputs_);
    pinv_.assign(inputs_ * outputs_, 0.0);
    for (size_t a = 0; a < inputs_; ++a) {
        for (size_t j = 0; j < outputs_; ++j) {
            double acc = 0.0;
            const double *row = &kernel_[j * inputs_];
            const double *gin = &ginv[a * inputs_];
            for (size_t b = 0; b < inputs_; ++b)
                acc += gin[b] * row[b];
            pinv_[a * outputs_ + j] = acc;
        }
    }
}

DecodedFrequencies
FrequencyDecoder::decode(const std::vector<uint64_t> &slot_counts,
                         double input_value0, double delta) const
{
    if (slot_counts.size() != outputs_) {
        fatal("frequency decode: %zu slot counts for a %zu-output "
              "channel", slot_counts.size(), outputs_);
    }
    DecodedFrequencies out;
    out.counts.assign(inputs_, 0.0);

    // Skip the dense multiply's zero columns: post-epoch slot counts
    // are concentrated on the populated window, and per-trial decode
    // in the utility benches sees mostly-sparse vectors.
    for (size_t j = 0; j < outputs_; ++j) {
        uint64_t r = slot_counts[j];
        if (r == 0)
            continue;
        double rd = static_cast<double>(r);
        out.total += rd;
        for (size_t a = 0; a < inputs_; ++a)
            out.counts[a] += pinv_[a * outputs_ + j] * rd;
    }
    if (out.total <= 0.0)
        return out;

    // Moments from the raw (possibly negative) unbiased counts,
    // normalized by the observed total: linearity keeps the mean
    // unbiased; the variance is clamped at zero because subtracting
    // the squared mean can undershoot on small samples.
    double m1 = 0.0, m2 = 0.0;
    for (size_t i = 0; i < inputs_; ++i) {
        double v = input_value0 + static_cast<double>(i) * delta;
        m1 += out.counts[i] * v;
        m2 += out.counts[i] * v * v;
    }
    out.mean = m1 / out.total;
    out.variance =
        std::max(0.0, m2 / out.total - out.mean * out.mean);

    // Clamped, renormalized pmf for the order statistics.
    out.pmf.assign(inputs_, 0.0);
    double pos = 0.0;
    for (size_t i = 0; i < inputs_; ++i) {
        double c = std::max(0.0, out.counts[i]);
        out.pmf[i] = c;
        pos += c;
    }
    if (pos > 0.0) {
        for (double &p : out.pmf)
            p /= pos;
    }

    // Median: walk the pmf CDF to the 0.5 crossing and interpolate
    // inside the crossing cell (grid cells have width delta).
    double cum = 0.0;
    out.median = input_value0 +
                 static_cast<double>(inputs_ - 1) * delta;
    for (size_t i = 0; i < inputs_; ++i) {
        double p = out.pmf[i];
        if (cum + p >= 0.5 && p > 0.0) {
            double frac = (0.5 - cum) / p;
            out.median =
                input_value0 + (static_cast<double>(i) + frac) * delta;
            break;
        }
        cum += p;
    }

    // Boundary diagnostics: the extreme slots are the thresholding
    // clamp atoms; under naive/resampling they are just the window
    // edges and both numbers stay near zero.
    out.boundary_mass_observed =
        (static_cast<double>(slot_counts.front()) +
         static_cast<double>(slot_counts.back())) /
        out.total;
    double expected = 0.0;
    for (size_t i = 0; i < inputs_; ++i) {
        expected += out.pmf[i] * (kernel_[i] +
                                  kernel_[(outputs_ - 1) * inputs_ + i]);
    }
    out.boundary_mass_expected = expected;
    return out;
}

std::vector<double>
decodeKaryRR(const std::vector<uint64_t> &observed, double truth_prob,
             double lie_prob)
{
    if (!(truth_prob > lie_prob)) {
        fatal("k-ary RR decode needs p > q (got p=%g, q=%g)",
              truth_prob, lie_prob);
    }
    uint64_t n = 0;
    for (uint64_t c : observed)
        n += c;
    std::vector<double> est(observed.size(), 0.0);
    double nd = static_cast<double>(n);
    double denom = truth_prob - lie_prob;
    for (size_t i = 0; i < observed.size(); ++i) {
        double raw =
            (static_cast<double>(observed[i]) - nd * lie_prob) / denom;
        est[i] = std::min(nd, std::max(0.0, raw));
    }
    return est;
}

double
decodedCountAbove(const DecodedFrequencies &decoded,
                  double input_value0, double delta, double threshold)
{
    double count = 0.0;
    for (size_t i = 0; i < decoded.counts.size(); ++i) {
        double v = input_value0 + static_cast<double>(i) * delta;
        if (v >= threshold)
            count += decoded.counts[i];
    }
    return std::max(0.0, count);
}

} // namespace agg
} // namespace ulpdp
