/**
 * @file
 * Mergeable streaming sketches for the server-side aggregation layer.
 *
 * A real LDP collector never materializes the report stream: at
 * ~5e7 reports/s the fleet engine emits more data per second than an
 * analyst wants to hold per day. What the estimators of this repo
 * actually consume are *counts* -- per-category counts for k-ary
 * randomized response, per-grid-slot counts for the numeric
 * mechanisms -- and counts have the one property a parallel collector
 * needs: integer addition is associative and commutative, so shards
 * can accumulate privately and merge in any order with a bit-identical
 * result. Every sketch in this file is built exclusively from
 * unsigned 64-bit counters for exactly that reason; none holds a
 * float, so the fleet's signature determinism invariant (merged
 * results identical across thread counts) extends to the aggregation
 * layer for free.
 *
 *  - CountMinSketch: the classic depth x width counter matrix
 *    (Cormode-Muthukrishnan) with pairwise-independent row hashes
 *    derived from a seeded SplitMix finalizer. Point estimates
 *    overcount by at most total/width per row (union bound over
 *    collisions), never undercount.
 *  - topK(): deterministic heavy hitters over an enumerable item
 *    domain, ranked by count-min estimate with index tie-break --
 *    the candidate enumeration variant of the count-min heavy-hitter
 *    algorithm (the report domains here -- RR categories, output grid
 *    slots -- are always bounded by construction).
 *  - QuantileSketch: fixed equal-width buckets over a closed value
 *    interval with under/overflow buckets, answering quantile queries
 *    by CDF walk with linear interpolation inside the hit bucket.
 *    Bucket resolution is chosen by the caller; when buckets coincide
 *    with the mechanism's Delta grid the answers are exact.
 */

#ifndef ULPDP_AGG_SKETCH_H
#define ULPDP_AGG_SKETCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ulpdp {
namespace agg {

/** SplitMix64 finalizer: the repo-standard cheap mixing step (same
 *  construction FleetSeeder uses; duplicated here so the aggregation
 *  layer stays independent of the fleet engine it feeds from). */
inline uint64_t
mixHash(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Count-min sketch over 64-bit item identifiers.
 *
 * All state is integer counters, so merge() is exact, associative and
 * commutative; a sharded ingest merged in any order equals the
 * single-threaded sketch bit for bit.
 */
class CountMinSketch
{
  public:
    /** Empty sketch (unconfigured; add() is invalid until assigned). */
    CountMinSketch() = default;

    /**
     * @param depth Hash rows (1..16). More rows shrink the
     *        probability of a bad estimate, not its magnitude.
     * @param width_log2 log2 of counters per row (1..26). Wider rows
     *        shrink the overcount bound total/width.
     * @param seed Seed the per-row hash keys derive from; two
     *        sketches merge only if their seeds (and shapes) match.
     */
    CountMinSketch(uint32_t depth, uint32_t width_log2,
                   uint64_t seed = 0x5ce7c4a66b1ULL);

    /** Whether the sketch has a configured shape. */
    bool configured() const { return depth_ != 0; }

    /** Count @p item @p count times. Hot path: depth_ mixes + adds. */
    void add(uint64_t item, uint64_t count = 1)
    {
        const uint64_t mask = width_ - 1;
        for (uint32_t r = 0; r < depth_; ++r) {
            size_t slot = static_cast<size_t>(
                mixHash(item ^ row_keys_[r]) & mask);
            counters_[static_cast<size_t>(r) * width_ + slot] += count;
        }
        total_ += count;
    }

    /**
     * Point estimate: min over rows. Never below the true count;
     * above it by at most total()/width() per colliding row.
     */
    uint64_t estimate(uint64_t item) const;

    /** Elementwise counter add. Fatal unless shapes and seeds match. */
    void merge(const CountMinSketch &other);

    /** Zero every counter, keeping the shape. */
    void clear();

    /** Total weight added across all items. */
    uint64_t total() const { return total_; }

    uint32_t depth() const { return depth_; }
    uint64_t width() const { return width_; }
    uint64_t seed() const { return seed_; }

    /** Counter-array footprint in bytes. */
    size_t bytes() const { return counters_.size() * sizeof(uint64_t); }

    /** Raw counters (row-major, depth x width) -- byte-identical
     *  across shardings, which is how the merge tests compare. */
    const std::vector<uint64_t> &counters() const { return counters_; }

  private:
    uint32_t depth_ = 0;
    uint64_t width_ = 0;
    uint64_t seed_ = 0;
    uint64_t total_ = 0;
    std::vector<uint64_t> row_keys_;
    /** SoA counter matrix: row r at [r * width_, (r + 1) * width_). */
    std::vector<uint64_t> counters_;
};

/** One heavy hitter: an item and its count-min estimate. */
struct HeavyHitter
{
    uint64_t item = 0;
    uint64_t estimate = 0;
};

/**
 * Deterministic top-k over the enumerable domain [0, domain): items
 * ranked by count-min estimate, descending, ties broken by smaller
 * item id. Items with estimate 0 are never reported.
 */
std::vector<HeavyHitter> topK(const CountMinSketch &sketch,
                              uint64_t domain, size_t k);

/**
 * Fixed-bucket quantile sketch over a closed interval [lo, hi].
 *
 * Integer bucket counters only: merge() is exact and order-free.
 * Samples outside the interval land in under/overflow buckets and
 * pin the corresponding quantiles to the interval edge.
 */
class QuantileSketch
{
  public:
    /** Empty sketch (unconfigured until assigned). */
    QuantileSketch() = default;

    /**
     * @param lo Lower edge of the bucketed range.
     * @param hi Upper edge; must exceed @p lo.
     * @param buckets Equal-width buckets; must be positive.
     */
    QuantileSketch(double lo, double hi, uint32_t buckets);

    /** Whether the sketch has a configured shape. */
    bool configured() const { return !counts_.empty(); }

    /** Count @p value @p count times. */
    void add(double value, uint64_t count = 1);

    /** Count bucket @p bucket directly (weighted grid ingest). */
    void addBucket(uint32_t bucket, uint64_t count);

    /**
     * Quantile q in [0, 1] by CDF walk: the returned value is the
     * linear interpolation inside the first bucket whose cumulative
     * count reaches q * total. Underflow mass answers lo, overflow
     * mass answers hi. 0 when empty.
     */
    double quantile(double q) const;

    /** Median, i.e. quantile(0.5). */
    double median() const { return quantile(0.5); }

    /** Elementwise add. Fatal unless binning matches. */
    void merge(const QuantileSketch &other);

    /** Zero every counter, keeping the binning. */
    void clear();

    uint64_t total() const { return total_; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    uint32_t numBuckets() const
    {
        return static_cast<uint32_t>(counts_.size());
    }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Counter-array footprint in bytes. */
    size_t bytes() const { return counts_.size() * sizeof(uint64_t); }

    /** Raw bucket counters (merge-equivalence comparisons). */
    const std::vector<uint64_t> &counts() const { return counts_; }

  private:
    double lo_ = 0.0;
    double hi_ = 0.0;
    double width_ = 1.0;
    uint64_t total_ = 0;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    std::vector<uint64_t> counts_;
};

} // namespace agg
} // namespace ulpdp

#endif // ULPDP_AGG_SKETCH_H
