/**
 * @file
 * Unbiased frequency decoding for streamed LDP report counts.
 *
 * The batch query layer inverts the privacy channel per report
 * (closed-form mean corrections, EM deconvolution over a materialized
 * histogram). The streaming layer cannot afford either: what arrives
 * from the sketch shards is a single vector of per-output-slot counts
 * r, and the decoder has to turn it into input-distribution estimates
 * in one shot.
 *
 * The estimator is the classic matrix-inversion frequency decoder.
 * With M the mechanism's conditional channel matrix (M[j][i] =
 * Pr[output j | input i], exact, from DiscreteOutputModel -- not
 * Monte Carlo), the observed counts satisfy E[r] = M c where c is the
 * true per-input count vector. The least-squares unbiased estimate is
 *
 *     c_hat = (M^T M)^{-1} M^T r
 *
 * precomputed once into a pseudo-inverse (the channel is tall and
 * skinny here: ~1e3 output slots, span+1 ~ 33 inputs, so the normal
 * equations are a 33x33 solve). Linearity of expectation gives
 * E[c_hat] = c with no distributional assumption on c.
 *
 * The boundary-mass correction for thresholding falls out of the same
 * inversion: the clamp's pile-up atoms are ordinary rows of M (the
 * ThresholdingOutputModel concentrates the tail mass there), so the
 * pseudo-inverse redistributes the atom counts back across the inputs
 * that could have produced them instead of letting them drag the mean
 * toward the window edges. decode() additionally reports the observed
 * and expected boundary fractions so callers can see how much mass the
 * correction moved.
 *
 * For k-ary randomized response the channel is the symmetric
 * p/q matrix and the inversion collapses to the textbook closed form
 * c_hat_i = (r_i - n q) / (p - q); decodeKaryRR() implements exactly
 * that, matching KaryRandomizedResponse::estimateCounts bit for bit
 * (verified by test) so the paper tables and the streaming path share
 * one estimator.
 */

#ifndef ULPDP_AGG_DECODE_H
#define ULPDP_AGG_DECODE_H

#include <cstdint>
#include <vector>

#include "core/output_model.h"

namespace ulpdp {
namespace agg {

/** Result of one decode pass over a slot-count vector. */
struct DecodedFrequencies
{
    /**
     * Unbiased estimated per-input counts, one per input index
     * 0..span. Individual entries can be negative (an unbiased
     * estimator must be allowed to undershoot); sums and moments use
     * these raw values.
     */
    std::vector<double> counts;

    /** counts clamped to >= 0 and renormalized to sum to 1; the
     *  nonnegative pmf view for quantile/probability readers. */
    std::vector<double> pmf;

    /** Total observed reports fed into the decode. */
    double total = 0.0;

    /** Unbiased mean of the input distribution (value units). */
    double mean = 0.0;

    /** Variance from the raw decoded moments, clamped at 0. */
    double variance = 0.0;

    /** Median of the clamped pmf over the input value grid, with
     *  linear interpolation inside the crossing cell. */
    double median = 0.0;

    /** Fraction of observed reports on the two extreme output slots
     *  (the clamp atoms under thresholding). */
    double boundary_mass_observed = 0.0;

    /** Same fraction expected under the decoded pmf pushed through
     *  the channel; observed >> expected flags decoder/model skew. */
    double boundary_mass_expected = 0.0;
};

/**
 * Precomputed pseudo-inverse decoder for one mechanism channel.
 *
 * Construction does all the heavy lifting (builds M from the model,
 * solves the normal equations); decode() per call is a dense
 * (span+1) x outputs multiply, a few microseconds at the spans this
 * repo uses, so per-trial decoding in the utility benches is cheap.
 */
class FrequencyDecoder
{
  public:
    /**
     * @param model Exact conditional output model; copied into the
     *        decoder's dense kernel, no reference kept.
     *
     * Fatal when the channel is rank-deficient (no mechanism in this
     * repo produces one: every input has a distinct output law).
     */
    explicit FrequencyDecoder(const DiscreteOutputModel &model);

    /** Inputs, i.e. span + 1 grid points. */
    size_t numInputs() const { return inputs_; }

    /** Output slots, i.e. outputHi - outputLo + 1. */
    size_t numOutputs() const { return outputs_; }

    /** Output index of slot 0, relative to the range-lo grid index. */
    int64_t outputLo() const { return output_lo_; }

    /**
     * Decode a slot-count vector into input-frequency estimates.
     *
     * @param slot_counts Observed count per output slot; slot s holds
     *        output index outputLo() + s. Size must be numOutputs().
     * @param input_value0 Physical value of input index 0.
     * @param delta Grid step between adjacent input values.
     */
    DecodedFrequencies decode(const std::vector<uint64_t> &slot_counts,
                              double input_value0, double delta) const;

  private:
    size_t inputs_ = 0;
    size_t outputs_ = 0;
    int64_t output_lo_ = 0;
    /** Pseudo-inverse (M^T M)^{-1} M^T, inputs_ x outputs_ row-major. */
    std::vector<double> pinv_;
    /** Forward channel M, outputs_ x inputs_ row-major (boundary-mass
     *  expectation and test round trips). */
    std::vector<double> kernel_;
};

/**
 * Closed-form unbiased k-ary randomized-response frequency decode:
 * c_hat_i = (r_i - n q) / (p - q), clamped to [0, n].
 *
 * Identical arithmetic to KaryRandomizedResponse::estimateCounts so
 * streamed sketch counts and the batch path decode to the same bits.
 *
 * @param observed Per-category observed counts (r).
 * @param truth_prob Pr[report own category] (p).
 * @param lie_prob Pr[report one specific other category] (q).
 */
std::vector<double> decodeKaryRR(const std::vector<uint64_t> &observed,
                                 double truth_prob, double lie_prob);

/**
 * Estimated count of inputs with value >= threshold, from the raw
 * unbiased decoded counts on the grid value(i) = input_value0 +
 * i * delta. Serves the CountAbove utility query.
 */
double decodedCountAbove(const DecodedFrequencies &decoded,
                         double input_value0, double delta,
                         double threshold);

} // namespace agg
} // namespace ulpdp

#endif // ULPDP_AGG_DECODE_H
