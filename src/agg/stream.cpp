#include "agg/stream.h"

#include <algorithm>

#include "common/logging.h"

namespace ulpdp {
namespace agg {

CohortSketch::CohortSketch(const AggConfig &cfg, size_t span,
                           uint32_t trial_rows, double slot0_value,
                           double delta)
    : span_(span), trial_rows_(trial_rows), slot0_value_(slot0_value),
      delta_(delta)
{
    if (span == 0)
        fatal("cohort sketch needs a non-empty output window");
    if (trial_rows == 0)
        fatal("cohort sketch needs at least one trial row");
    if (!(delta > 0.0))
        fatal("cohort sketch needs a positive grid step (got %g)",
              delta);
    slots_.assign(span_ * trial_rows_, 0);
    cm_ = CountMinSketch(cfg.cm_depth, cfg.cm_width_log2, cfg.cm_seed);
    // Quantile buckets tile the released-value window treating slot s
    // as the half-open cell [value(s), value(s) + delta): bucket
    // edges then line up with grid cells and the CDF interpolation
    // stays inside the window.
    quantiles_ = QuantileSketch(
        slot0_value_, slot0_value_ + static_cast<double>(span_) * delta_,
        cfg.quantile_buckets);
}

void
CohortSketch::ingestDelta(const uint64_t *delta)
{
    ULPDP_ASSERT(configured());
    const size_t cells = slots_.size();
    for (size_t i = 0; i < cells; ++i)
        slots_[i] += delta[i];
    // Count-min and quantile feed on per-slot totals across trial
    // rows: one weighted add per populated slot instead of one per
    // report, which is what keeps the flush off the critical path
    // (span total updates per ~4096-report block).
    const uint32_t nb = quantiles_.numBuckets();
    for (size_t s = 0; s < span_; ++s) {
        uint64_t c = 0;
        for (uint32_t t = 0; t < trial_rows_; ++t)
            c += delta[static_cast<size_t>(t) * span_ + s];
        if (c == 0)
            continue;
        cm_.add(static_cast<uint64_t>(s), c);
        auto bucket = static_cast<uint32_t>(
            (s * static_cast<size_t>(nb)) / span_);
        quantiles_.addBucket(bucket, c);
        total_ += c;
    }
}

void
CohortSketch::merge(const CohortSketch &other)
{
    if (span_ != other.span_ || trial_rows_ != other.trial_rows_) {
        fatal("cohort sketch merge shape mismatch: %zu x %u vs "
              "%zu x %u slots",
              span_, trial_rows_, other.span_, other.trial_rows_);
    }
    for (size_t i = 0; i < slots_.size(); ++i)
        slots_[i] += other.slots_[i];
    cm_.merge(other.cm_);
    quantiles_.merge(other.quantiles_);
    total_ += other.total_;
}

void
CohortSketch::clear()
{
    std::fill(slots_.begin(), slots_.end(), uint64_t(0));
    cm_.clear();
    quantiles_.clear();
    total_ = 0;
}

std::vector<uint64_t>
CohortSketch::slotTotals() const
{
    std::vector<uint64_t> totals(span_, 0);
    for (uint32_t t = 0; t < trial_rows_; ++t) {
        const uint64_t *row = &slots_[static_cast<size_t>(t) * span_];
        for (size_t s = 0; s < span_; ++s)
            totals[s] += row[s];
    }
    return totals;
}

std::vector<uint64_t>
CohortSketch::trialSlots(uint32_t trial) const
{
    ULPDP_ASSERT(trial < trial_rows_);
    const uint64_t *row = &slots_[static_cast<size_t>(trial) * span_];
    return std::vector<uint64_t>(row, row + span_);
}

} // namespace agg
} // namespace ulpdp
