#include "agg/sketch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ulpdp {
namespace agg {

CountMinSketch::CountMinSketch(uint32_t depth, uint32_t width_log2,
                               uint64_t seed)
    : depth_(depth), seed_(seed)
{
    if (depth < 1 || depth > 16)
        fatal("count-min depth %u out of range [1, 16]", depth);
    if (width_log2 < 1 || width_log2 > 26)
        fatal("count-min width_log2 %u out of range [1, 26]",
              width_log2);
    width_ = uint64_t(1) << width_log2;
    row_keys_.resize(depth_);
    for (uint32_t r = 0; r < depth_; ++r)
        row_keys_[r] = mixHash(seed_ + r);
    counters_.assign(static_cast<size_t>(depth_) * width_, 0);
}

uint64_t
CountMinSketch::estimate(uint64_t item) const
{
    ULPDP_ASSERT(configured());
    const uint64_t mask = width_ - 1;
    uint64_t best = UINT64_MAX;
    for (uint32_t r = 0; r < depth_; ++r) {
        size_t slot =
            static_cast<size_t>(mixHash(item ^ row_keys_[r]) & mask);
        best = std::min(best,
                        counters_[static_cast<size_t>(r) * width_ +
                                  slot]);
    }
    return best;
}

void
CountMinSketch::merge(const CountMinSketch &other)
{
    if (depth_ != other.depth_ || width_ != other.width_ ||
        seed_ != other.seed_) {
        fatal("count-min merge shape mismatch: %ux%llu seed %llx vs "
              "%ux%llu seed %llx",
              depth_, static_cast<unsigned long long>(width_),
              static_cast<unsigned long long>(seed_), other.depth_,
              static_cast<unsigned long long>(other.width_),
              static_cast<unsigned long long>(other.seed_));
    }
    for (size_t i = 0; i < counters_.size(); ++i)
        counters_[i] += other.counters_[i];
    total_ += other.total_;
}

void
CountMinSketch::clear()
{
    std::fill(counters_.begin(), counters_.end(), uint64_t(0));
    total_ = 0;
}

std::vector<HeavyHitter>
topK(const CountMinSketch &sketch, uint64_t domain, size_t k)
{
    ULPDP_ASSERT(sketch.configured());
    std::vector<HeavyHitter> hits;
    hits.reserve(std::min<uint64_t>(domain, k + 1));
    // Maintain a sorted (descending estimate, ascending item) prefix
    // of size <= k while enumerating the domain in index order: with
    // the bounded domains this layer meets (RR categories, output
    // grid slots) a straight scan beats heap bookkeeping and has a
    // single deterministic answer by construction.
    auto rank_before = [](const HeavyHitter &a, const HeavyHitter &b) {
        if (a.estimate != b.estimate)
            return a.estimate > b.estimate;
        return a.item < b.item;
    };
    for (uint64_t item = 0; item < domain; ++item) {
        HeavyHitter h{item, sketch.estimate(item)};
        if (h.estimate == 0)
            continue;
        if (hits.size() == k &&
            !rank_before(h, hits.back()))
            continue;
        hits.insert(std::upper_bound(hits.begin(), hits.end(), h,
                                     rank_before),
                    h);
        if (hits.size() > k)
            hits.pop_back();
    }
    return hits;
}

QuantileSketch::QuantileSketch(double lo, double hi, uint32_t buckets)
    : lo_(lo), hi_(hi)
{
    if (!(hi > lo))
        fatal("quantile sketch range [%g, %g] is empty", lo, hi);
    if (buckets == 0)
        fatal("quantile sketch needs at least one bucket");
    width_ = (hi_ - lo_) / buckets;
    counts_.assign(buckets, 0);
}

void
QuantileSketch::add(double value, uint64_t count)
{
    ULPDP_ASSERT(configured());
    if (value < lo_) {
        underflow_ += count;
    } else if (value >= hi_) {
        // The closed upper edge belongs to the last bucket; anything
        // strictly above is overflow.
        if (value == hi_)
            counts_.back() += count;
        else
            overflow_ += count;
    } else {
        auto b = static_cast<size_t>((value - lo_) / width_);
        if (b >= counts_.size())
            b = counts_.size() - 1;
        counts_[b] += count;
    }
    total_ += count;
}

void
QuantileSketch::addBucket(uint32_t bucket, uint64_t count)
{
    ULPDP_ASSERT(bucket < counts_.size());
    counts_[bucket] += count;
    total_ += count;
}

double
QuantileSketch::quantile(double q) const
{
    ULPDP_ASSERT(configured());
    if (total_ == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Target the ceil of q * total so quantile(0) with mass present
    // still lands inside the distribution's support.
    double target = q * static_cast<double>(total_);
    if (target < 1.0)
        target = 1.0;
    double cum = static_cast<double>(underflow_);
    if (cum >= target)
        return lo_;
    for (size_t b = 0; b < counts_.size(); ++b) {
        double c = static_cast<double>(counts_[b]);
        if (cum + c >= target && c > 0.0) {
            double frac = (target - cum) / c;
            return lo_ + (static_cast<double>(b) + frac) * width_;
        }
        cum += c;
    }
    return hi_;
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    if (counts_.size() != other.counts_.size() || lo_ != other.lo_ ||
        hi_ != other.hi_) {
        fatal("quantile sketch merge binning mismatch: "
              "%zu buckets on [%g, %g] vs %zu on [%g, %g]",
              counts_.size(), lo_, hi_, other.counts_.size(),
              other.lo_, other.hi_);
    }
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

void
QuantileSketch::clear()
{
    std::fill(counts_.begin(), counts_.end(), uint64_t(0));
    underflow_ = overflow_ = total_ = 0;
}

} // namespace agg
} // namespace ulpdp
