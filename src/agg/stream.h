/**
 * @file
 * Streaming cohort aggregation state: the per-worker sketch slab the
 * fleet engine's hot loop feeds and the post-epoch merge combines.
 *
 * Layout contract with the fleet engine
 * -------------------------------------
 * The mechanisms emit output *grid indices*; the ingest path maps an
 * output index yi to slot yi - outLo() and bumps one uint64 counter in
 * a per-block delta buffer (SoA, trial-major when per-trial capture is
 * on: delta[t * span + s]). A block's delta is flushed into the
 * worker's CohortSketch only when the block completes -- the batch
 * sampler's integrity-bail protocol discards a half-processed block
 * and redoes it scalar, and a flush-on-completion rule means the redo
 * cannot double-count (mirror of the BlockAccum reset).
 *
 * Determinism argument
 * --------------------
 * Every piece of CohortSketch state is an unsigned 64-bit counter:
 * the slot array, the count-min rows, the quantile buckets. Integer
 * addition is associative and commutative, so the merged state is
 * independent of how blocks were partitioned across workers AND of
 * the merge order -- stronger than the fleet's fixed-block-order
 * argument for its floating-point accumulators, and what makes the
 * decoded estimates bit-identical across thread counts: identical
 * integer inputs into a deterministic double-precision decode give
 * identical bits. (The post-epoch merge still walks workers in index
 * order, matching the repo convention.)
 */

#ifndef ULPDP_AGG_STREAM_H
#define ULPDP_AGG_STREAM_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "agg/sketch.h"

namespace ulpdp {
namespace agg {

/** Per-cohort streaming-aggregation knobs (off by default: the agg
 *  layer must not perturb existing fleet fingerprints). */
struct AggConfig
{
    /** Master switch; ignored for Ideal cohorts (no output grid). */
    bool enabled = false;

    /**
     * Keep per-trial slot counts (trial-major rows) so utility
     * benches can decode each trial independently. Costs trials x
     * span counters per worker; leave off for pure-throughput runs.
     */
    bool per_trial = false;

    /** Count-min shape (depth x 2^width_log2 counters). */
    uint32_t cm_depth = 4;
    uint32_t cm_width_log2 = 12;

    /** Row-hash seed; part of the sketch identity for merges. */
    uint64_t cm_seed = 0x5ce7c4a66b1ULL;

    /** Quantile sketch buckets over the output window. */
    uint32_t quantile_buckets = 256;

    /** Heavy hitters reported post-epoch (0 disables the scan). */
    uint32_t heavy_hitters = 8;
};

/**
 * One cohort's mergeable aggregation state.
 *
 * Holds the exact per-slot counts (the decoder input), a count-min
 * sketch keyed by slot (the heavy-hitter substrate), and a quantile
 * sketch over released values. All counters, no floats; see the file
 * comment for why that is the determinism load-bearing choice.
 */
class CohortSketch
{
  public:
    /** Unconfigured sketch; ingestDelta() invalid until assigned. */
    CohortSketch() = default;

    /**
     * @param cfg Sketch shapes.
     * @param span Output slots (outputHi - outputLo + 1).
     * @param trial_rows Trial rows in the slot array (1 unless
     *        cfg.per_trial; then the cohort's reports-per-node).
     * @param slot0_value Released value of slot 0.
     * @param delta Grid step between adjacent slot values.
     */
    CohortSketch(const AggConfig &cfg, size_t span, uint32_t trial_rows,
                 double slot0_value, double delta);

    bool configured() const { return span_ != 0; }

    /** Output slots per trial row. */
    size_t span() const { return span_; }

    /** Trial rows in the slot array. */
    uint32_t trialRows() const { return trial_rows_; }

    /** Slot-array length = span() * trialRows(); the delta buffer the
     *  hot loop fills must be exactly this long. */
    size_t slotCells() const { return slots_.size(); }

    /** Released value of slot @p s. */
    double slotValue(size_t s) const
    {
        return slot0_value_ + static_cast<double>(s) * delta_;
    }

    /**
     * Fold one completed block's slot-count delta (length
     * slotCells(), trial-major) into the sketch: exact slot counts
     * cell-wise, count-min and quantile buckets via per-slot totals
     * summed across trial rows.
     */
    void ingestDelta(const uint64_t *delta);

    /** Cell-wise add. Fatal unless shapes match. */
    void merge(const CohortSketch &other);

    /** Zero all counters, keeping the shape (epoch reuse). */
    void clear();

    /** Exact slot counts, trial-major. */
    const std::vector<uint64_t> &slots() const { return slots_; }

    /** Per-slot totals summed over trial rows (the decode input). */
    std::vector<uint64_t> slotTotals() const;

    /** Slot counts of one trial row. */
    std::vector<uint64_t> trialSlots(uint32_t trial) const;

    const CountMinSketch &cm() const { return cm_; }
    const QuantileSketch &quantiles() const { return quantiles_; }

    /** Total reports ingested. */
    uint64_t total() const { return total_; }

    /** Counter footprint across all components, in bytes. */
    size_t bytes() const
    {
        return slots_.size() * sizeof(uint64_t) + cm_.bytes() +
               quantiles_.bytes();
    }

  private:
    size_t span_ = 0;
    uint32_t trial_rows_ = 1;
    double slot0_value_ = 0.0;
    double delta_ = 1.0;
    uint64_t total_ = 0;
    /** Exact counts, trial-major: slots_[t * span_ + s]. */
    std::vector<uint64_t> slots_;
    CountMinSketch cm_;
    QuantileSketch quantiles_;
};

} // namespace agg
} // namespace ulpdp

#endif // ULPDP_AGG_STREAM_H
