/**
 * @file
 * Energy model comparing software noising on the microcontroller
 * against the DP-Box hardware module (Section III-D / Section V).
 *
 * The DP-Box synthesis constants come straight from the paper's 65 nm
 * implementation: 158.3 uW at 16 MHz (~9.9 pJ/cycle) for the default
 * variant; 252 uW for the relaxed-timing 30 ns variant. The MCU
 * energy-per-cycle default models an MSP430-class core active at
 * 3 V / ~420 uA/MHz. Absolute joules are technology constants; the
 * quantity this model is for is the *ratio* between the software and
 * hardware paths (the paper reports 894x vs fixed-point software and
 * 318x vs half-float software).
 */

#ifndef ULPDP_SIM_ENERGY_MODEL_H
#define ULPDP_SIM_ENERGY_MODEL_H

#include <cstdint>

namespace ulpdp {

/** Technology/operating-point constants. */
struct EnergyParams
{
    /** MCU active energy per cycle, joules (default 1.25 nJ). */
    double mcu_energy_per_cycle = 1.25e-9;

    /** DP-Box power, watts (paper synthesis: 158.3 uW). */
    double dpbox_power = 158.3e-6;

    /** DP-Box clock frequency, hertz (paper: 16 MHz). */
    double dpbox_frequency = 16.0e6;
};

/** Energy bookkeeping for noising-path comparisons. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = EnergyParams());

    /** DP-Box energy per cycle, joules. */
    double dpboxEnergyPerCycle() const;

    /** Energy of a software noising taking @p cycles MCU cycles. */
    double softwareEnergy(uint64_t cycles) const;

    /**
     * Energy of a DP-Box noising: @p device_cycles on the module plus
     * @p host_cycles of MCU involvement (the write/read pair).
     */
    double dpboxEnergy(uint64_t device_cycles,
                       uint64_t host_cycles) const;

    /** softwareEnergy / dpboxEnergy ratio. */
    double ratio(uint64_t software_cycles, uint64_t device_cycles,
                 uint64_t host_cycles) const;

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace ulpdp

#endif // ULPDP_SIM_ENERGY_MODEL_H
