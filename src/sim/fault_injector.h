/**
 * @file
 * Deterministic fault-injection campaigns against the hardened
 * fault sites.
 *
 * A privacy claim that only holds on fault-free silicon is not much
 * of a claim on an ultra-low-power node: SEUs flip SRAM bits, buses
 * NACK and corrupt bytes, brown-outs cut power mid-transaction, and
 * timers glitch. The FaultInjector drives all of those fault classes
 * from one seeded PRNG so a whole campaign -- thousands of
 * transactions with faults striking every site -- replays bit-exactly
 * from its seed, which is what makes a chaos-test failure debuggable.
 *
 * Two kinds of sites exist:
 *
 *  - Passive sites consult the injector *from inside* the component
 *    through the FaultHook interface (URNG output register,
 *    replenishment-timer comparator, bus transfer): the component
 *    calls, the injector answers.
 *  - Active sites are driven *by the harness* between transactions:
 *    tick() advances campaign time and arms pending events, which the
 *    harness then realises (flip a sampler-table bit, cut power and
 *    restore from a possibly-corrupted checkpoint).
 *
 * The injector draws from its own private Tausworthe -- never from
 * the device under test -- so injecting a fault does not perturb the
 * very randomness stream being attacked.
 */

#ifndef ULPDP_SIM_FAULT_INJECTOR_H
#define ULPDP_SIM_FAULT_INJECTOR_H

#include <cstddef>
#include <cstdint>

#include "common/fault.h"
#include "rng/tausworthe.h"
#include "sim/nor_flash.h"

namespace ulpdp {

/**
 * Per-site fault rates of one campaign. All rates are probabilities
 * in [0, 1] per opportunity (per URNG word, per transfer attempt,
 * per tick, ...); 0 disables the site.
 */
struct FaultCampaignConfig
{
    /** Campaign seed; equal seeds replay equal campaigns. */
    uint64_t seed = 1;

    /** Per URNG word: flip one random output bit (transient SEU on
     *  the output flops). */
    double urng_flip_rate = 0.0;

    /** Per URNG word: latch the output register at its current value
     *  permanently (hard stuck-at fault). */
    double urng_stuck_rate = 0.0;

    /** Per tick: flip one random bit of the sampler tables (SEU in
     *  the table SRAM). Realised by the harness via
     *  tableSeuPending(). */
    double table_seu_rate = 0.0;

    /** Per bus transfer attempt: addressed device NACKs. */
    double bus_nack_rate = 0.0;

    /** Per bus transfer attempt: clock-stretch timeout. */
    double bus_timeout_rate = 0.0;

    /** Per bus transfer attempt: one in-flight byte corrupted. */
    double bus_corrupt_rate = 0.0;

    /** Per tick: power is cut and the device restarts. Realised by
     *  the harness via powerLossPending(). */
    double power_loss_rate = 0.0;

    /** Per power loss: the persisted budget checkpoint takes a bit
     *  flip before it is read back (FRAM corruption). */
    double checkpoint_corrupt_rate = 0.0;

    /** Per replenishment-timer comparison: the timer spuriously
     *  claims the period elapsed. */
    double timer_glitch_rate = 0.0;

    /** Per flash program op: power is cut after a uniform number of
     *  programmed bytes (the byte at the cut partially programs). */
    double flash_program_loss_rate = 0.0;

    /** Per flash erase op: power is cut after a uniform number of
     *  erased bytes, leaving a half-erased block. */
    double flash_erase_loss_rate = 0.0;

    /** Per tick: one random bit of the flash journal region sticks
     *  (oxide breakdown on the sense path). Realised by the harness
     *  via flashStuckBitPending(). */
    double flash_stuck_bit_rate = 0.0;
};

/** What one campaign actually injected (not what was detected). */
struct FaultInjectionStats
{
    uint64_t urng_bit_flips = 0;
    uint64_t urng_stuck_events = 0;
    uint64_t urng_stuck_words = 0;
    uint64_t table_seus = 0;
    uint64_t bus_nacks = 0;
    uint64_t bus_timeouts = 0;
    uint64_t bus_corruptions = 0;
    uint64_t power_losses = 0;
    uint64_t checkpoints_corrupted = 0;
    uint64_t timer_glitches = 0;
    uint64_t flash_program_losses = 0;
    uint64_t flash_erase_losses = 0;
    uint64_t flash_stuck_bits = 0;

    /** Total faults injected across all sites. */
    uint64_t
    total() const
    {
        return urng_bit_flips + urng_stuck_events + table_seus +
               bus_nacks + bus_timeouts + bus_corruptions +
               power_losses + checkpoints_corrupted + timer_glitches +
               flash_program_losses + flash_erase_losses +
               flash_stuck_bits;
    }
};

/** Seeded multi-site fault injector (see file comment). */
class FaultInjector : public FaultHook, public FlashFaultHook
{
  public:
    /** @param config Campaign rates; every rate must be in [0, 1]. */
    explicit FaultInjector(const FaultCampaignConfig &config);

    // Passive sites (FaultHook interface).
    uint32_t urngWord(uint32_t word) override;
    bool replenishGlitch() override;
    BusFaultKind busFault() override;
    uint8_t corruptBusByte(uint8_t byte) override;

    // Passive flash sites (FlashFaultHook interface). A one-shot
    // armed cut (armProgramLossAt / armEraseLossAt) takes precedence
    // over the random rates -- that is how the storm harness sweeps
    // "power loss after exactly k programmed bytes" over every
    // distinct offset.
    size_t programPowerLoss(size_t len) override;
    uint8_t partialProgramMask() override;
    size_t erasePowerLoss(size_t block_bytes) override;

    /**
     * Arm a deterministic one-shot cut: the next program op of more
     * than @p k bytes loses power after exactly @p k bytes (ops too
     * short to reach the cut complete and leave it armed). Reproduces
     * one exact torn-write shape on demand.
     */
    void armProgramLossAt(size_t k);

    /** Arm a deterministic one-shot cut of the next erase after
     *  exactly @p m erased bytes. */
    void armEraseLossAt(size_t m);

    /** An armed one-shot program/erase cut has not fired yet. */
    bool flashCutArmed() const
    {
        return program_cut_armed_ || erase_cut_armed_;
    }

    /**
     * Advance campaign time by one transaction tick: rolls the
     * per-tick sites (table SEU, power loss) and arms the pending
     * events the harness must realise.
     */
    void tick();

    /** Consume a pending power-loss event (armed by tick()). */
    bool powerLossPending();

    /**
     * Consume a pending sampler-table SEU: picks a uniform victim
     * position over @p table_bytes and returns it in @p byte_offset /
     * @p bit. Returns false when no SEU is pending (or the table is
     * empty).
     */
    bool tableSeuPending(size_t &byte_offset, int &bit,
                         size_t table_bytes);

    /**
     * With probability checkpoint_corrupt_rate, flip one random bit
     * of the @p len bytes at @p bytes (the persisted checkpoint
     * image). Returns true when a corruption was applied.
     */
    bool corruptCheckpointMaybe(void *bytes, size_t len);

    /**
     * Consume a pending flash stuck-at fault (armed by tick()): picks
     * a uniform victim bit over @p region_bytes and returns it in
     * @p addr / @p bit plus the stuck value. Returns false when none
     * is pending (or the region is empty). The harness realises it
     * via NorFlashModel::stickBit().
     */
    bool flashStuckBitPending(uint64_t &addr, int &bit, bool &value,
                              uint64_t region_bytes);

    /** Injection counters so far. */
    const FaultInjectionStats &stats() const { return stats_; }

    /** The campaign configuration in effect. */
    const FaultCampaignConfig &config() const { return config_; }

  private:
    /** Uniform double in [0, 1) from the private stream. */
    double roll();

    FaultCampaignConfig config_;
    Tausworthe rng_;
    FaultInjectionStats stats_;

    bool urng_stuck_ = false;
    uint32_t stuck_word_ = 0;
    bool power_loss_pending_ = false;
    bool table_seu_pending_ = false;
    bool flash_stuck_pending_ = false;
    bool program_cut_armed_ = false;
    size_t program_cut_at_ = 0;
    bool erase_cut_armed_ = false;
    size_t erase_cut_at_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_SIM_FAULT_INJECTOR_H
