#include "sim/nor_flash.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace ulpdp {

NorFlashModel::NorFlashModel(const FlashGeometry &geometry)
    : geom_(geometry)
{
    if (geom_.block_count == 0 || geom_.block_size == 0)
        fatal("NorFlashModel: geometry must be non-empty");
    data_.assign(geom_.totalBytes(), 0xFF);
    erase_counts_.assign(geom_.block_count, 0);
}

uint8_t
NorFlashModel::sense(uint64_t addr) const
{
    uint8_t byte = data_[addr];
    if (!stuck_or_.empty())
        byte = (byte | stuck_or_[addr]) & ~stuck_clear_[addr];
    return byte;
}

void
NorFlashModel::read(uint64_t addr, void *dst, size_t len) const
{
    ULPDP_ASSERT(addr + len <= data_.size());
    uint8_t *out = static_cast<uint8_t *>(dst);
    if (stuck_or_.empty()) {
        std::memcpy(out, data_.data() + addr, len);
        return;
    }
    for (size_t i = 0; i < len; ++i)
        out[i] = sense(addr + i);
}

bool
NorFlashModel::program(uint64_t addr, const void *src, size_t len)
{
    ULPDP_ASSERT(addr + len <= data_.size());
    if (!alive_ || len == 0)
        return alive_;
    ++stats_.program_ops;

    size_t cut = hook_ != nullptr ? hook_->programPowerLoss(len)
                                  : SIZE_MAX;
    const uint8_t *in = static_cast<const uint8_t *>(src);
    size_t complete = std::min(cut, len);
    for (size_t i = 0; i < complete; ++i)
        data_[addr + i] &= in[i]; // 1 -> 0 only
    stats_.bytes_programmed += complete;

    if (cut >= len)
        return true;

    // The byte at the cut point: only the transitions the charge pump
    // finished before the rail collapsed actually cleared.
    uint8_t mask = hook_->partialProgramMask();
    uint8_t old = data_[addr + cut];
    uint8_t target = old & in[cut];
    data_[addr + cut] = (old & ~mask) | (target & mask);

    ++stats_.program_power_losses;
    alive_ = false;
    return false;
}

bool
NorFlashModel::erase(uint32_t block)
{
    ULPDP_ASSERT(block < geom_.block_count);
    if (!alive_)
        return false;
    ++stats_.erase_ops;
    ++erase_counts_[block]; // wear is physical, even for a cut erase

    uint64_t base = static_cast<uint64_t>(block) * geom_.block_size;
    size_t cut = hook_ != nullptr
                     ? hook_->erasePowerLoss(geom_.block_size)
                     : SIZE_MAX;
    size_t erased = std::min<size_t>(cut, geom_.block_size);
    std::memset(data_.data() + base, 0xFF, erased);

    if (cut >= geom_.block_size)
        return true;
    ++stats_.erase_power_losses;
    alive_ = false;
    return false;
}

uint64_t
NorFlashModel::eraseCount(uint32_t block) const
{
    ULPDP_ASSERT(block < geom_.block_count);
    return erase_counts_[block];
}

void
NorFlashModel::powerCycle()
{
    alive_ = true;
    ++stats_.power_cycles;
}

void
NorFlashModel::stickBit(uint64_t addr, int bit, bool value)
{
    ULPDP_ASSERT(addr < data_.size() && bit >= 0 && bit < 8);
    if (stuck_or_.empty()) {
        stuck_or_.assign(data_.size(), 0);
        stuck_clear_.assign(data_.size(), 0);
    }
    uint8_t m = static_cast<uint8_t>(1u << bit);
    if (value) {
        stuck_or_[addr] |= m;
        stuck_clear_[addr] &= ~m;
    } else {
        stuck_clear_[addr] |= m;
        stuck_or_[addr] &= ~m;
    }
    ++stats_.stuck_bits;
}

uint64_t
NorFlashModel::wearSpread() const
{
    auto [mn, mx] = std::minmax_element(erase_counts_.begin(),
                                        erase_counts_.end());
    return *mx - *mn;
}

uint64_t
NorFlashModel::maxEraseCount() const
{
    return *std::max_element(erase_counts_.begin(),
                             erase_counts_.end());
}

} // namespace ulpdp
