/**
 * @file
 * Serial sensor bus timing model.
 *
 * Section V justifies the DP-Box critical path by noting that
 * "accompanying sensors take 10s of cycles to access (over a serial
 * I2C bus, for example)". This model prices those accesses so
 * end-to-end latency experiments can put the 2-cycle noising in its
 * true context: reading the sensor dominates; noising is (nearly)
 * free.
 *
 * The model follows I2C framing: START + 7-bit address + R/W + ACK,
 * then N data bytes each followed by an ACK, then STOP, with the bus
 * clocked at a fraction of the core clock.
 */

#ifndef ULPDP_SIM_SENSOR_BUS_H
#define ULPDP_SIM_SENSOR_BUS_H

#include <cstdint>

namespace ulpdp {

/** Timing model of an I2C-style serial sensor bus. */
class SensorBus
{
  public:
    /**
     * @param core_hz Core clock (e.g. 16 MHz).
     * @param bus_hz Bus clock (e.g. 400 kHz fast-mode I2C).
     */
    SensorBus(double core_hz, double bus_hz);

    /** Bus bits needed to read @p data_bytes from a device. */
    uint64_t transferBits(unsigned data_bytes) const;

    /** Core cycles one read of @p data_bytes costs. */
    uint64_t readCycles(unsigned data_bytes) const;

    /**
     * Core cycles to read one @p sensor_bits sample (rounded up to
     * whole bytes, as real sensor register maps are).
     */
    uint64_t sampleCycles(int sensor_bits) const;

    /** Core cycles per bus bit. */
    double cyclesPerBit() const { return core_hz_ / bus_hz_; }

  private:
    double core_hz_;
    double bus_hz_;
};

} // namespace ulpdp

#endif // ULPDP_SIM_SENSOR_BUS_H
