/**
 * @file
 * Serial sensor bus timing model.
 *
 * Section V justifies the DP-Box critical path by noting that
 * "accompanying sensors take 10s of cycles to access (over a serial
 * I2C bus, for example)". This model prices those accesses so
 * end-to-end latency experiments can put the 2-cycle noising in its
 * true context: reading the sensor dominates; noising is (nearly)
 * free.
 *
 * The model follows I2C framing: START + 7-bit address + R/W + ACK,
 * then N data bytes each followed by an ACK, then STOP, with the bus
 * clocked at a fraction of the core clock.
 *
 * The bus is also a fault site: NACKs, clock-stretch timeouts and
 * in-flight byte corruption all happen on real deployments.
 * readSample() models the hardened access sequence -- a CRC-8
 * trailing byte (SHT3x-style) detects corruption, detected faults
 * retry with doubling backoff, and after the retry budget the read
 * reports failure so the caller can degrade to its cached report
 * instead of noising garbage.
 */

#ifndef ULPDP_SIM_SENSOR_BUS_H
#define ULPDP_SIM_SENSOR_BUS_H

#include <cstdint>

#include "common/fault.h"

namespace ulpdp {

/** Retry discipline of a hardened sensor-bus read. */
struct BusRetryPolicy
{
    /** Transfer attempts before the read is abandoned. */
    unsigned max_attempts = 3;

    /** Backoff before the first retry, in core cycles; doubles per
     *  subsequent retry (32, 64, 128, ...). */
    uint64_t backoff_base_cycles = 32;
};

/** Outcome of one hardened sensor-bus read. */
struct BusReadResult
{
    /** A sample was delivered with a matching payload CRC. */
    bool ok = false;

    /** The delivered sample (valid when ok). */
    int64_t value = 0;

    /** Transfer attempts spent (>= 1). */
    unsigned attempts = 0;

    /** Core cycles the whole access sequence cost, retries and
     *  backoff included. */
    uint64_t cycles = 0;
};

/** Timing model of an I2C-style serial sensor bus. */
class SensorBus
{
  public:
    /**
     * @param core_hz Core clock (e.g. 16 MHz).
     * @param bus_hz Bus clock (e.g. 400 kHz fast-mode I2C).
     */
    SensorBus(double core_hz, double bus_hz);

    /** Bus bits needed to read @p data_bytes from a device. */
    uint64_t transferBits(unsigned data_bytes) const;

    /** Core cycles one read of @p data_bytes costs. */
    uint64_t readCycles(unsigned data_bytes) const;

    /**
     * Core cycles to read one @p sensor_bits sample (rounded up to
     * whole bytes, as real sensor register maps are).
     */
    uint64_t sampleCycles(int sensor_bits) const;

    /** Core cycles per bus bit. */
    double cyclesPerBit() const { return core_hz_ / bus_hz_; }

    /**
     * Perform one hardened read of a @p sensor_bits sample whose true
     * wire value is @p true_value: payload bytes plus a CRC-8 trailer
     * cross the bus, @p hook (nullable) injects transfer faults, and
     * detected faults (NACK, timeout, CRC mismatch) retry under
     * @p policy with doubling backoff. @p stats (nullable) receives
     * the bus_retries / bus_degradations counts. When every attempt
     * fails the result has ok = false and the caller must fall back
     * to already-released data -- never noise a garbage sample.
     */
    BusReadResult readSample(int sensor_bits, int64_t true_value,
                             FaultHook *hook,
                             const BusRetryPolicy &policy = {},
                             FaultStats *stats = nullptr) const;

  private:
    double core_hz_;
    double bus_hz_;
};

} // namespace ulpdp

#endif // ULPDP_SIM_SENSOR_BUS_H
