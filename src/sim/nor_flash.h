/**
 * @file
 * Simulated NOR flash with faithful failure semantics (NF2FS-style
 * device model) and fault-injection hooks.
 *
 * The model implements the core-layer FlashDevice contract with the
 * three properties that make NOR persistence hard to get right:
 *
 *  - Program-before-erase bit semantics: programming can only clear
 *    bits (stored = old & written). Writing 0xFF is a no-op; "updating
 *    in place" silently ANDs, which is exactly the bug class the
 *    ledger's append-only record format exists to avoid.
 *  - Bounded granularity: programs are byte-granular, erases are
 *    block-granular, and both can be cut by a power loss. A cut
 *    program retains the fully programmed prefix plus a *partially*
 *    programmed byte at the cut point (only a subset of that byte's
 *    1 -> 0 transitions completed). A cut erase retains an erased
 *    prefix with stale data behind it; the wear still happened.
 *  - Wear: per-block erase counters, so a leveling policy is
 *    observable and testable.
 *
 * Fault injection is split like common/fault.h: the *hook* interface
 * (FlashFaultHook) is consulted at the exact datapath points where
 * the physical fault would strike (per program op, per erase op), and
 * stuck-at bits are armed directly on the model by the harness. A
 * null hook is a fault-free part.
 */

#ifndef ULPDP_SIM_NOR_FLASH_H
#define ULPDP_SIM_NOR_FLASH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/flash_device.h"

namespace ulpdp {

/**
 * Injection interface of the flash fault sites. Every method defaults
 * to pass-through (no fault). The FaultInjector implements this next
 * to its existing FaultHook surface so one seeded stream drives every
 * fault class of a campaign.
 */
class FlashFaultHook
{
  public:
    virtual ~FlashFaultHook() = default;

    /**
     * One program operation of @p len bytes is about to run. Return
     * the number of bytes after which power is lost (0 <= k < len:
     * bytes [0, k) complete, byte k partially programs, nothing
     * after), or SIZE_MAX for no fault.
     */
    virtual size_t
    programPowerLoss(size_t len)
    {
        (void)len;
        return SIZE_MAX;
    }

    /**
     * Which 1 -> 0 transitions of the byte at the cut point completed
     * before the charge pump died: a bit set in the mask means that
     * bit's programming took effect. 0x00 = none, 0xFF = all.
     */
    virtual uint8_t partialProgramMask() { return 0x00; }

    /**
     * One block erase of @p block_bytes bytes is about to run. Return
     * the number of bytes erased before power is lost (0 <= m <
     * block_bytes), or SIZE_MAX for no fault.
     */
    virtual size_t
    erasePowerLoss(size_t block_bytes)
    {
        (void)block_bytes;
        return SIZE_MAX;
    }
};

/** Observability counters of one simulated part. */
struct NorFlashStats
{
    uint64_t program_ops = 0;
    uint64_t erase_ops = 0;
    uint64_t bytes_programmed = 0;
    uint64_t program_power_losses = 0;
    uint64_t erase_power_losses = 0;
    uint64_t power_cycles = 0;
    uint64_t stuck_bits = 0;
};

/** Simulated NOR part (see file comment). */
class NorFlashModel : public FlashDevice
{
  public:
    explicit NorFlashModel(const FlashGeometry &geometry);

    // FlashDevice interface.
    const FlashGeometry &geometry() const override { return geom_; }
    void read(uint64_t addr, void *dst, size_t len) const override;
    bool program(uint64_t addr, const void *src, size_t len) override;
    bool erase(uint32_t block) override;
    uint64_t eraseCount(uint32_t block) const override;
    bool alive() const override { return alive_; }
    void powerCycle() override;

    /** Attach the fault hook (borrowed; nullptr detaches). */
    void attachFaultHook(FlashFaultHook *hook) { hook_ = hook; }

    /**
     * Arm a stuck-at fault: bit @p bit of the byte at @p addr reads
     * as @p value forever after (oxide breakdown). The array contents
     * are untouched -- the fault sits on the sense path, so an erase
     * does not clear it.
     */
    void stickBit(uint64_t addr, int bit, bool value);

    /** Injection/usage counters. */
    const NorFlashStats &stats() const { return stats_; }

    /** Max - min erase count across blocks (wear spread). */
    uint64_t wearSpread() const;

    /** Highest erase count across blocks. */
    uint64_t maxEraseCount() const;

    /** Whole-array view for post-mortem test assertions. */
    const std::vector<uint8_t> &raw() const { return data_; }

  private:
    /** Apply the armed stuck-at faults to one sensed byte. */
    uint8_t sense(uint64_t addr) const;

    FlashGeometry geom_;
    std::vector<uint8_t> data_;
    /** Per-byte masks of the armed stuck-at faults: a read senses
     *  (stored | stuck_or) & ~stuck_and_clear. Empty until the first
     *  stickBit() call keeps the fault-free read path allocation-free. */
    std::vector<uint8_t> stuck_or_;
    std::vector<uint8_t> stuck_clear_;
    std::vector<uint64_t> erase_counts_;
    FlashFaultHook *hook_ = nullptr;
    bool alive_ = true;
    NorFlashStats stats_;
};

} // namespace ulpdp

#endif // ULPDP_SIM_NOR_FLASH_H
