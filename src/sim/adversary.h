/**
 * @file
 * Averaging adversary for the budget-control experiment (Fig. 13).
 *
 * An adversary with repeated access to the noised output of one
 * sensor requests the value over and over and averages the replies:
 * the maximum-likelihood estimate of the true reading under additive
 * zero-mean noise. Without budget control the estimate error falls
 * like 1/sqrt(requests) toward zero -- total privacy failure given
 * enough requests.
 *
 * With the budget controller the device replays its cached report
 * once the budget runs out. We model the *strongest* realistic
 * adversary: cache replays are exact repeats of an earlier value, so
 * the adversary discards duplicates and averages only the distinct
 * (fresh) reports. Its accuracy therefore saturates at the error of
 * a mean over the ~budget/loss fresh samples the device ever
 * releases -- a floor the budget directly controls (Fig. 13).
 */

#ifndef ULPDP_SIM_ADVERSARY_H
#define ULPDP_SIM_ADVERSARY_H

#include <cstdint>
#include <vector>

#include "core/budget.h"

namespace ulpdp {

/** One point of the Fig. 13 curve. */
struct AdversaryPoint
{
    /** Number of requests issued so far. */
    uint64_t requests = 0;

    /** Adversary's running-mean estimate of the true reading. */
    double estimate = 0.0;

    /** |estimate - truth| / sensor range length. */
    double relative_error = 0.0;

    /** Requests served from cache so far. */
    uint64_t cache_hits = 0;
};

/** Mounts the averaging attack against a budget controller. */
class AveragingAdversary
{
  public:
    /**
     * Attack @p controller holding the true reading @p x, recording
     * the estimate error at each of @p checkpoints (ascending
     * request counts).
     *
     * @param discard_repeats When true (the strong adversary), a
     *        response equal to the previous one is treated as a
     *        cache replay and excluded from the average.
     */
    static std::vector<AdversaryPoint>
    attack(BudgetController &controller, double x,
           const std::vector<uint64_t> &checkpoints,
           bool discard_repeats = true);
};

} // namespace ulpdp

#endif // ULPDP_SIM_ADVERSARY_H
