/**
 * @file
 * Sensor front-end model: an N-bit ADC quantizing a physical signal.
 *
 * The paper sizes the DP-Box word for "sensors with resolution up to
 * 13 bits" (Section III-D); real readings reach the privacy hardware
 * as ADC codes, not real numbers. This model closes that loop in
 * simulation: a physical value is clipped to the sensor range,
 * quantized to an N-bit code, and handed over as the reconstructed
 * value the DP-Box input register would hold -- so end-to-end
 * experiments include the (privacy-irrelevant but utility-relevant)
 * ADC quantization error.
 */

#ifndef ULPDP_SIM_SENSOR_ADC_H
#define ULPDP_SIM_SENSOR_ADC_H

#include <cstdint>

#include "core/sensor_range.h"

namespace ulpdp {

/** Ideal N-bit analog-to-digital converter over a sensor range. */
class SensorAdc
{
  public:
    /**
     * @param range Full-scale input range.
     * @param bits Resolution in bits (2..16; the paper's sensors go
     *        up to 13).
     */
    SensorAdc(const SensorRange &range, int bits);

    /** Convert a physical value to an ADC code (clips to range). */
    uint32_t convert(double physical) const;

    /** Reconstruct the value a code represents (code-center). */
    double reconstruct(uint32_t code) const;

    /** Convenience: convert then reconstruct. */
    double
    sample(double physical) const
    {
        return reconstruct(convert(physical));
    }

    /** Code width in bits. */
    int bits() const { return bits_; }

    /** Number of codes, 2^bits. */
    uint32_t levels() const { return levels_; }

    /** Value of one code step. */
    double lsb() const { return lsb_; }

    /** Full-scale range. */
    const SensorRange &range() const { return range_; }

  private:
    SensorRange range_;
    int bits_;
    uint32_t levels_;
    double lsb_;
};

} // namespace ulpdp

#endif // ULPDP_SIM_SENSOR_ADC_H
