#include "sim/adversary.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

std::vector<AdversaryPoint>
AveragingAdversary::attack(BudgetController &controller, double x,
                           const std::vector<uint64_t> &checkpoints,
                           bool discard_repeats)
{
    if (checkpoints.empty())
        fatal("AveragingAdversary: no checkpoints");
    for (size_t i = 1; i < checkpoints.size(); ++i) {
        if (checkpoints[i] <= checkpoints[i - 1])
            fatal("AveragingAdversary: checkpoints must be strictly "
                  "increasing");
    }

    double range_len = controller.params().range.length();

    std::vector<AdversaryPoint> curve;
    double sum = 0.0;
    uint64_t used = 0;
    uint64_t issued = 0;
    bool have_prev = false;
    double prev = 0.0;
    for (uint64_t target : checkpoints) {
        while (issued < target) {
            BudgetResponse resp = controller.request(x);
            ++issued;
            if (discard_repeats && have_prev && resp.value == prev)
                continue; // exact repeat: presumed cache replay
            prev = resp.value;
            have_prev = true;
            sum += resp.value;
            ++used;
        }
        AdversaryPoint pt;
        pt.requests = issued;
        pt.estimate = used > 0 ? sum / static_cast<double>(used) : x;
        pt.relative_error = std::abs(pt.estimate - x) / range_len;
        pt.cache_hits = controller.cacheHits();
        curve.push_back(pt);
    }
    return curve;
}

} // namespace ulpdp
