#include "sim/sensor_bus.h"

#include <cmath>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace ulpdp {

namespace {

/** Bus health: retries witness transient faults, degradations
 *  witness reads the caller had to serve from cache. */
struct BusMetrics
{
    Counter &reads = telemetry::registry().counter(
        "ulpdp_bus_reads_total",
        "Hardened sensor-bus reads attempted",
        "reads");
    Counter &retries = telemetry::registry().counter(
        "ulpdp_bus_retries_total",
        "Transfer attempts retried after a detected fault",
        "attempts");
    Counter &degradations = telemetry::registry().counter(
        "ulpdp_bus_degradations_total",
        "Reads abandoned after the retry budget",
        "reads");
    LatencyHistogram &attempts = telemetry::registry().histogram(
        "ulpdp_bus_read_attempts",
        "Transfer attempts spent per read",
        "attempts", {1, 2, 3, 4, 8});
};

BusMetrics &
busMetrics()
{
    static BusMetrics m;
    return m;
}

} // anonymous namespace

SensorBus::SensorBus(double core_hz, double bus_hz)
    : core_hz_(core_hz), bus_hz_(bus_hz)
{
    if (!(core_hz > 0.0) || !(bus_hz > 0.0))
        fatal("SensorBus: clock rates must be positive");
    if (bus_hz > core_hz)
        fatal("SensorBus: bus clock (%g) faster than core (%g)",
              bus_hz, core_hz);
}

uint64_t
SensorBus::transferBits(unsigned data_bytes) const
{
    // START (1) + address+R/W (8) + ACK (1)
    // + per byte: 8 data + 1 ACK
    // + STOP (1)
    return 1 + 9 + static_cast<uint64_t>(data_bytes) * 9 + 1;
}

uint64_t
SensorBus::readCycles(unsigned data_bytes) const
{
    double cycles = static_cast<double>(transferBits(data_bytes)) *
                    cyclesPerBit();
    return static_cast<uint64_t>(std::ceil(cycles));
}

uint64_t
SensorBus::sampleCycles(int sensor_bits) const
{
    ULPDP_ASSERT(sensor_bits >= 1 && sensor_bits <= 32);
    unsigned bytes = static_cast<unsigned>((sensor_bits + 7) / 8);
    return readCycles(bytes);
}

BusReadResult
SensorBus::readSample(int sensor_bits, int64_t true_value,
                      FaultHook *hook, const BusRetryPolicy &policy,
                      FaultStats *stats) const
{
    ULPDP_ASSERT(sensor_bits >= 1 && sensor_bits <= 32);
    ULPDP_ASSERT(policy.max_attempts >= 1);

    unsigned payload_bytes =
        static_cast<unsigned>((sensor_bits + 7) / 8);
    unsigned wire_bytes = payload_bytes + 1; // + CRC-8 trailer

    uint64_t mask = sensor_bits == 32
        ? 0xFFFFFFFFull
        : (uint64_t{1} << sensor_bits) - 1;
    uint64_t truth = static_cast<uint64_t>(true_value) & mask;

    BusReadResult result;
    uint64_t backoff = policy.backoff_base_cycles;
    if (telemetry::enabled())
        busMetrics().reads.inc();

    for (unsigned attempt = 1; attempt <= policy.max_attempts;
         ++attempt) {
        result.attempts = attempt;

        // Serialize the sample big-endian with its CRC-8 trailer,
        // exactly the frame an SHT3x-class sensor would emit.
        uint8_t wire[5] = {};
        for (unsigned b = 0; b < payload_bytes; ++b) {
            int shift = 8 * static_cast<int>(payload_bytes - 1 - b);
            wire[b] = static_cast<uint8_t>(truth >> shift);
        }
        wire[payload_bytes] = crc8(wire, payload_bytes);

        BusFaultKind fault =
            hook != nullptr ? hook->busFault() : BusFaultKind::None;

        if (fault == BusFaultKind::Nack) {
            // The device never ACKed its address: only the address
            // phase crossed the bus.
            result.cycles += readCycles(0);
        } else if (fault == BusFaultKind::Timeout) {
            // Clock stretching past the deadline: the master waited
            // the whole nominal transfer before giving up.
            result.cycles += readCycles(wire_bytes);
        } else {
            result.cycles += readCycles(wire_bytes);
            if (fault == BusFaultKind::CorruptByte) {
                // One in-flight byte (rotating over the frame across
                // retries, CRC trailer included) takes the hit.
                unsigned victim = (attempt - 1) % wire_bytes;
                wire[victim] = hook->corruptBusByte(wire[victim]);
            }
            if (crc8(wire, payload_bytes) == wire[payload_bytes]) {
                uint64_t got = 0;
                for (unsigned b = 0; b < payload_bytes; ++b)
                    got = (got << 8) | wire[b];
                result.ok = true;
                result.value = static_cast<int64_t>(got);
                if (telemetry::enabled())
                    busMetrics().attempts.observe(
                        static_cast<double>(result.attempts));
                return result;
            }
            // CRC mismatch: the corruption was detected, not served.
        }

        if (attempt < policy.max_attempts) {
            if (stats != nullptr)
                ++stats->bus_retries;
            if (telemetry::enabled())
                busMetrics().retries.inc();
            result.cycles += backoff;
            backoff *= 2;
        }
    }

    // Retry budget exhausted: report failure so the caller degrades
    // to its cached report instead of noising a garbage sample.
    if (stats != nullptr)
        ++stats->bus_degradations;
    if (telemetry::enabled()) {
        BusMetrics &m = busMetrics();
        m.degradations.inc();
        m.attempts.observe(static_cast<double>(result.attempts));
        telemetry::event(EventKind::BusDegrade, result.cycles,
                         static_cast<double>(result.attempts));
    }
    warn("SensorBus: read abandoned after %u attempts; caller must "
         "degrade to cached data", result.attempts);
    return result;
}

} // namespace ulpdp
