#include "sim/sensor_bus.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

SensorBus::SensorBus(double core_hz, double bus_hz)
    : core_hz_(core_hz), bus_hz_(bus_hz)
{
    if (!(core_hz > 0.0) || !(bus_hz > 0.0))
        fatal("SensorBus: clock rates must be positive");
    if (bus_hz > core_hz)
        fatal("SensorBus: bus clock (%g) faster than core (%g)",
              bus_hz, core_hz);
}

uint64_t
SensorBus::transferBits(unsigned data_bytes) const
{
    // START (1) + address+R/W (8) + ACK (1)
    // + per byte: 8 data + 1 ACK
    // + STOP (1)
    return 1 + 9 + static_cast<uint64_t>(data_bytes) * 9 + 1;
}

uint64_t
SensorBus::readCycles(unsigned data_bytes) const
{
    double cycles = static_cast<double>(transferBits(data_bytes)) *
                    cyclesPerBit();
    return static_cast<uint64_t>(std::ceil(cycles));
}

uint64_t
SensorBus::sampleCycles(int sensor_bits) const
{
    ULPDP_ASSERT(sensor_bits >= 1 && sensor_bits <= 32);
    unsigned bytes = static_cast<unsigned>((sensor_bits + 7) / 8);
    return readCycles(bytes);
}

} // namespace ulpdp
