#include "sim/fault_injector.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

FaultInjector::FaultInjector(const FaultCampaignConfig &config)
    : config_(config), rng_(config.seed)
{
    const double rates[] = {
        config.urng_flip_rate,      config.urng_stuck_rate,
        config.table_seu_rate,      config.bus_nack_rate,
        config.bus_timeout_rate,    config.bus_corrupt_rate,
        config.power_loss_rate,     config.checkpoint_corrupt_rate,
        config.timer_glitch_rate,
        config.flash_program_loss_rate,
        config.flash_erase_loss_rate,
        config.flash_stuck_bit_rate,
    };
    for (double r : rates) {
        if (!(r >= 0.0 && r <= 1.0))
            fatal("FaultInjector: rates must be in [0, 1], got %g", r);
    }
    if (config.bus_nack_rate + config.bus_timeout_rate +
            config.bus_corrupt_rate > 1.0) {
        fatal("FaultInjector: bus fault rates must sum to at most 1");
    }
}

double
FaultInjector::roll()
{
    return static_cast<double>(rng_.next32()) * 0x1p-32;
}

uint32_t
FaultInjector::urngWord(uint32_t word)
{
    if (urng_stuck_) {
        ++stats_.urng_stuck_words;
        return stuck_word_;
    }
    if (config_.urng_stuck_rate > 0.0 &&
        roll() < config_.urng_stuck_rate) {
        // The output register latches at whatever it holds right now;
        // the LFSR behind it keeps running but nobody sees it again.
        urng_stuck_ = true;
        stuck_word_ = word;
        ++stats_.urng_stuck_events;
        ++stats_.urng_stuck_words;
        return stuck_word_;
    }
    if (config_.urng_flip_rate > 0.0 &&
        roll() < config_.urng_flip_rate) {
        ++stats_.urng_bit_flips;
        return word ^ (uint32_t{1} << (rng_.next32() & 31));
    }
    return word;
}

bool
FaultInjector::replenishGlitch()
{
    if (config_.timer_glitch_rate > 0.0 &&
        roll() < config_.timer_glitch_rate) {
        ++stats_.timer_glitches;
        return true;
    }
    return false;
}

BusFaultKind
FaultInjector::busFault()
{
    double nack = config_.bus_nack_rate;
    double timeout = nack + config_.bus_timeout_rate;
    double corrupt = timeout + config_.bus_corrupt_rate;
    if (corrupt <= 0.0)
        return BusFaultKind::None;
    double r = roll();
    if (r < nack) {
        ++stats_.bus_nacks;
        return BusFaultKind::Nack;
    }
    if (r < timeout) {
        ++stats_.bus_timeouts;
        return BusFaultKind::Timeout;
    }
    if (r < corrupt) {
        ++stats_.bus_corruptions;
        return BusFaultKind::CorruptByte;
    }
    return BusFaultKind::None;
}

uint8_t
FaultInjector::corruptBusByte(uint8_t byte)
{
    return byte ^ static_cast<uint8_t>(1u << (rng_.next32() & 7));
}

void
FaultInjector::tick()
{
    if (config_.table_seu_rate > 0.0 &&
        roll() < config_.table_seu_rate) {
        table_seu_pending_ = true;
    }
    if (config_.power_loss_rate > 0.0 &&
        roll() < config_.power_loss_rate) {
        power_loss_pending_ = true;
    }
    if (config_.flash_stuck_bit_rate > 0.0 &&
        roll() < config_.flash_stuck_bit_rate) {
        flash_stuck_pending_ = true;
    }
}

bool
FaultInjector::powerLossPending()
{
    if (!power_loss_pending_)
        return false;
    power_loss_pending_ = false;
    ++stats_.power_losses;
    return true;
}

bool
FaultInjector::tableSeuPending(size_t &byte_offset, int &bit,
                               size_t table_bytes)
{
    if (!table_seu_pending_ || table_bytes == 0)
        return false;
    table_seu_pending_ = false;
    ++stats_.table_seus;
    byte_offset = static_cast<size_t>(rng_.next32()) % table_bytes;
    bit = static_cast<int>(rng_.next32() & 7);
    return true;
}

size_t
FaultInjector::programPowerLoss(size_t len)
{
    if (program_cut_armed_) {
        if (program_cut_at_ >= len)
            return SIZE_MAX; // op too short to reach the armed cut
        program_cut_armed_ = false;
        ++stats_.flash_program_losses;
        return program_cut_at_;
    }
    if (config_.flash_program_loss_rate > 0.0 &&
        roll() < config_.flash_program_loss_rate) {
        ++stats_.flash_program_losses;
        return static_cast<size_t>(rng_.next32()) % len;
    }
    return SIZE_MAX;
}

uint8_t
FaultInjector::partialProgramMask()
{
    // Which 1 -> 0 transitions of the cut byte completed: uniform
    // over all subsets, including none (0x00) and all (0xFF).
    return static_cast<uint8_t>(rng_.next32() & 0xFF);
}

size_t
FaultInjector::erasePowerLoss(size_t block_bytes)
{
    if (erase_cut_armed_) {
        if (erase_cut_at_ >= block_bytes)
            return SIZE_MAX;
        erase_cut_armed_ = false;
        ++stats_.flash_erase_losses;
        return erase_cut_at_;
    }
    if (config_.flash_erase_loss_rate > 0.0 &&
        roll() < config_.flash_erase_loss_rate) {
        ++stats_.flash_erase_losses;
        return static_cast<size_t>(rng_.next32()) % block_bytes;
    }
    return SIZE_MAX;
}

void
FaultInjector::armProgramLossAt(size_t k)
{
    program_cut_armed_ = true;
    program_cut_at_ = k;
}

void
FaultInjector::armEraseLossAt(size_t m)
{
    erase_cut_armed_ = true;
    erase_cut_at_ = m;
}

bool
FaultInjector::flashStuckBitPending(uint64_t &addr, int &bit,
                                    bool &value,
                                    uint64_t region_bytes)
{
    if (!flash_stuck_pending_ || region_bytes == 0)
        return false;
    flash_stuck_pending_ = false;
    ++stats_.flash_stuck_bits;
    addr = ((static_cast<uint64_t>(rng_.next32()) << 32) |
            rng_.next32()) %
           region_bytes;
    bit = static_cast<int>(rng_.next32() & 7);
    value = (rng_.next32() & 1) != 0;
    return true;
}

bool
FaultInjector::corruptCheckpointMaybe(void *bytes, size_t len)
{
    if (len == 0 || config_.checkpoint_corrupt_rate <= 0.0 ||
        roll() >= config_.checkpoint_corrupt_rate) {
        return false;
    }
    ++stats_.checkpoints_corrupted;
    size_t victim = static_cast<size_t>(rng_.next32()) % len;
    static_cast<uint8_t *>(bytes)[victim] ^=
        static_cast<uint8_t>(1u << (rng_.next32() & 7));
    return true;
}

} // namespace ulpdp
