#include "sim/energy_model.h"

#include "common/logging.h"

namespace ulpdp {

EnergyModel::EnergyModel(const EnergyParams &params) : params_(params)
{
    if (!(params.mcu_energy_per_cycle > 0.0) ||
        !(params.dpbox_power > 0.0) || !(params.dpbox_frequency > 0.0))
        fatal("EnergyModel: all parameters must be positive");
}

double
EnergyModel::dpboxEnergyPerCycle() const
{
    return params_.dpbox_power / params_.dpbox_frequency;
}

double
EnergyModel::softwareEnergy(uint64_t cycles) const
{
    return static_cast<double>(cycles) * params_.mcu_energy_per_cycle;
}

double
EnergyModel::dpboxEnergy(uint64_t device_cycles,
                         uint64_t host_cycles) const
{
    return static_cast<double>(device_cycles) * dpboxEnergyPerCycle() +
           static_cast<double>(host_cycles) *
               params_.mcu_energy_per_cycle;
}

double
EnergyModel::ratio(uint64_t software_cycles, uint64_t device_cycles,
                   uint64_t host_cycles) const
{
    return softwareEnergy(software_cycles) /
           dpboxEnergy(device_cycles, host_cycles);
}

} // namespace ulpdp
