/**
 * @file
 * Instruction-cost model of software Laplace noising on an MSP430-
 * class microcontroller (Section III-D).
 *
 * The paper measured software noising at 4043 cycles for 20-bit
 * fixed-point arithmetic and 1436 cycles using half-precision
 * floating-point emulation; the DP-Box needs 4 cycles including the
 * host's one memory write + one memory read. Without their binary we
 * rebuild the numbers from an operation-count model: the software
 * routine is decomposed into its phases (uniform draw, logarithm,
 * scaling, rounding/add, budget-free overhead) and each phase into
 * MSP430 operation counts, priced with per-operation cycle costs from
 * the MSP430 family user's guide (16x16 multiply via the software
 * shift-add routine on devices without the hardware multiplier).
 * Defaults reproduce the order of magnitude and the fixed-point >
 * half-float > hardware ordering; every constant is a visible knob.
 */

#ifndef ULPDP_SIM_MSP430_COST_H
#define ULPDP_SIM_MSP430_COST_H

#include <cstdint>
#include <string>

namespace ulpdp {

/** Per-operation cycle costs of an MSP430-class core. */
struct Msp430OpCosts
{
    /** Register-register ALU op (add/sub/xor/shift-by-1). */
    uint64_t alu = 1;

    /** Memory load (absolute/indexed addressing). */
    uint64_t load = 3;

    /** Memory store. */
    uint64_t store = 3;

    /** Taken branch / call overhead. */
    uint64_t branch = 2;

    /**
     * 16x16 -> 32 multiply via the software shift-add routine
     * (devices without the MPY peripheral); ~8 iterations of
     * add/shift/test average ~150 cycles including call overhead.
     */
    uint64_t mul16_soft = 150;

    /** 16x16 multiply using the memory-mapped hardware multiplier. */
    uint64_t mul16_hw = 8;
};

/** Operation counts of one noising routine. */
struct NoisingOpCounts
{
    uint64_t alu = 0;
    uint64_t load = 0;
    uint64_t store = 0;
    uint64_t branch = 0;
    uint64_t mul16 = 0;
};

/** Cycle-cost model for software noising routines. */
class Msp430CostModel
{
  public:
    explicit Msp430CostModel(const Msp430OpCosts &costs = Msp430OpCosts(),
                             bool hardware_multiplier = false);

    /**
     * Operation counts of the 20-bit fixed-point software noising
     * routine: Tausworthe draw, polynomial-segment log (degree-3 on
     * 16 segments, 32-bit fixed-point arithmetic built from 16-bit
     * ops), scale by s_f, round, add to the sensor value.
     */
    static NoisingOpCounts fixedPointRoutine();

    /**
     * Operation counts of the half-precision floating-point noising
     * routine (soft-float: unpack/normalise/pack around the same
     * algorithm; fewer wide-word multiplies than 32-bit fixed point).
     */
    static NoisingOpCounts halfFloatRoutine();

    /** Cycles for a routine under this model's op costs. */
    uint64_t cycles(const NoisingOpCounts &counts) const;

    /** Cycles for the fixed-point software noising routine. */
    uint64_t fixedPointCycles() const;

    /** Cycles for the half-float software noising routine. */
    uint64_t halfFloatCycles() const;

    /**
     * Host-side cycles when the DP-Box does the noising: one memory
     * write (sensor value) and one memory read (noised output), as
     * the paper conservatively assumes (4 cycles total).
     */
    uint64_t dpBoxHostCycles() const;

    /** Whether the model prices multiplies on the MPY peripheral. */
    bool hardwareMultiplier() const { return hardware_multiplier_; }

  private:
    Msp430OpCosts costs_;
    bool hardware_multiplier_;
};

} // namespace ulpdp

#endif // ULPDP_SIM_MSP430_COST_H
