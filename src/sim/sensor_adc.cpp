#include "sim/sensor_adc.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

SensorAdc::SensorAdc(const SensorRange &range, int bits)
    : range_(range), bits_(bits)
{
    if (bits < 2 || bits > 16)
        fatal("SensorAdc: bits must be in [2, 16], got %d", bits);
    levels_ = uint32_t{1} << bits;
    lsb_ = range.length() / static_cast<double>(levels_);
}

uint32_t
SensorAdc::convert(double physical) const
{
    double clipped = range_.clamp(physical);
    double code = std::floor((clipped - range_.lo) / lsb_);
    if (code >= static_cast<double>(levels_))
        code = static_cast<double>(levels_ - 1);
    if (code < 0.0)
        code = 0.0;
    return static_cast<uint32_t>(code);
}

double
SensorAdc::reconstruct(uint32_t code) const
{
    ULPDP_ASSERT(code < levels_);
    return range_.lo + (static_cast<double>(code) + 0.5) * lsb_;
}

} // namespace ulpdp
