#include "sim/msp430_cost.h"

namespace ulpdp {

Msp430CostModel::Msp430CostModel(const Msp430OpCosts &costs,
                                 bool hardware_multiplier)
    : costs_(costs), hardware_multiplier_(hardware_multiplier)
{
}

NoisingOpCounts
Msp430CostModel::fixedPointRoutine()
{
    // 20-bit fixed-point path on a 16-bit core. Every 32x32 fixed-
    // point multiply decomposes into four 16x16 multiplies:
    //  - degree-3 polynomial-segment log, Horner form: 3 wide
    //    multiplies (12 mul16);
    //  - scaling by s_f and the two Tausworthe tempering products
    //    folded into wide arithmetic: 3 more wide multiplies
    //    (12 mul16);
    //  - segment selection, leading-zero normalisation loop, 32-bit
    //    add/shift legwork: the ALU/branch budget below.
    NoisingOpCounts c;
    c.mul16 = 24;
    c.alu = 243;
    c.load = 40;
    c.store = 20;
    c.branch = 10;
    return c;
}

NoisingOpCounts
Msp430CostModel::halfFloatRoutine()
{
    // Half precision soft-float: 16-bit mantissas mean one 16x16
    // multiply per FP multiply (3 in the polynomial, 1 scale, 2 in
    // unpack/pack helper products), but every operation pays
    // unpack / normalise / round / pack ALU and branch overhead.
    NoisingOpCounts c;
    c.mul16 = 6;
    c.alu = 320;
    c.load = 40;
    c.store = 16;
    c.branch = 24;
    return c;
}

uint64_t
Msp430CostModel::cycles(const NoisingOpCounts &counts) const
{
    uint64_t mul = hardware_multiplier_ ? costs_.mul16_hw
                                        : costs_.mul16_soft;
    return counts.alu * costs_.alu + counts.load * costs_.load +
           counts.store * costs_.store + counts.branch * costs_.branch +
           counts.mul16 * mul;
}

uint64_t
Msp430CostModel::fixedPointCycles() const
{
    return cycles(fixedPointRoutine());
}

uint64_t
Msp430CostModel::halfFloatCycles() const
{
    return cycles(halfFloatRoutine());
}

uint64_t
Msp430CostModel::dpBoxHostCycles() const
{
    // One memory write (sensor value in) + one memory read (noised
    // value out); the paper conservatively prices the pair at 4
    // cycles total.
    return 4;
}

} // namespace ulpdp
