#include "common/logging.h"

#include <cstdio>
#include <vector>

namespace ulpdp {

namespace {

bool logging_enabled = true;
uint64_t warning_count = 0;

} // anonymous namespace

namespace detail {

std::string
formatMessage(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return std::string(fmt);

    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::formatMessage(fmt, args);
    va_end(args);
    if (logging_enabled)
        detail::emit("panic", msg);
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::formatMessage(fmt, args);
    va_end(args);
    if (logging_enabled)
        detail::emit("fatal", msg);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    ++warning_count;
    if (!logging_enabled)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::formatMessage(fmt, args);
    va_end(args);
    detail::emit("warn", msg);
}

void
inform(const char *fmt, ...)
{
    if (!logging_enabled)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::formatMessage(fmt, args);
    va_end(args);
    detail::emit("info", msg);
}

void
setLoggingEnabled(bool enabled)
{
    logging_enabled = enabled;
}

uint64_t
warningCount()
{
    return warning_count;
}

void
resetWarningCount()
{
    warning_count = 0;
}

} // namespace ulpdp
