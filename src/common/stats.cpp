#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ulpdp {

void
RunningStats::addRepeated(double x, uint64_t n)
{
    if (n == 0)
        return;
    RunningStats point;
    point.count_ = n;
    point.mean_ = x;
    point.m2_ = 0.0;
    point.min_ = x;
    point.max_ = x;
    merge(point);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (count_ < 1)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::sampleVariance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

namespace batch {

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

double
variance(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double mu = mean(v);
    double sum = 0.0;
    for (double x : v)
        sum += (x - mu) * (x - mu);
    return sum / static_cast<double>(v.size());
}

double
stddev(const std::vector<double> &v)
{
    return std::sqrt(variance(v));
}

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    size_t n = v.size();
    size_t mid = n / 2;
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    double hi = v[mid];
    if (n % 2 == 1)
        return hi;
    std::nth_element(v.begin(), v.begin() + mid - 1, v.end());
    return 0.5 * (v[mid - 1] + hi);
}

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    ULPDP_ASSERT(p >= 0.0 && p <= 100.0);
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v[0];
    double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

double
meanAbsError(const std::vector<double> &a, const std::vector<double> &b)
{
    ULPDP_ASSERT(a.size() == b.size());
    if (a.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        sum += std::abs(a[i] - b[i]);
    return sum / static_cast<double>(a.size());
}

} // namespace batch

} // namespace ulpdp
