/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Originally the bench binaries' private BENCH_*.json side-channel,
 * promoted to common so the telemetry exporters can emit the same
 * machine-readable format. Call begin/end in matched pairs; commas
 * and separators are inserted automatically. Doubles print with 17
 * significant digits so bit-exactness claims survive the round trip;
 * NaN and infinities -- which JSON cannot carry -- serialise as null.
 */

#ifndef ULPDP_COMMON_JSON_H
#define ULPDP_COMMON_JSON_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace ulpdp {

/** Streaming JSON document builder (see file comment). */
class JsonWriter
{
  public:
    void beginObject();
    void beginObject(const std::string &key);
    void endObject();
    void beginArray();
    void beginArray(const std::string &key);
    void endArray();

    void field(const std::string &key, double v);
    void field(const std::string &key, uint64_t v);
    void field(const std::string &key, int64_t v);
    void field(const std::string &key, int v);
    void field(const std::string &key, unsigned v);
    void field(const std::string &key, bool v);
    void field(const std::string &key, const std::string &v);
    void field(const std::string &key, const char *v);

    /** Bare array element. */
    void element(double v);
    void element(const std::string &v);

    /** The document so far. */
    std::string str() const { return out_.str(); }

    /** Write the document to @p path; warns and returns false on I/O
     *  failure (a bench should still print its table). */
    bool writeFile(const std::string &path) const;

  private:
    void comma();
    void keyPrefix(const std::string &key);
    void raw(const std::string &s);
    static std::string escape(const std::string &s);
    static std::string number(double v);

    std::ostringstream out_;
    std::vector<bool> has_items_;
};

} // namespace ulpdp

#endif // ULPDP_COMMON_JSON_H
