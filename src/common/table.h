/**
 * @file
 * Minimal column-aligned text table writer so every bench binary can
 * print paper-style tables (Tables I-VI) with consistent formatting.
 */

#ifndef ULPDP_COMMON_TABLE_H
#define ULPDP_COMMON_TABLE_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ulpdp {

/**
 * Simple text table: set a header row, append data rows, then stream it.
 * Columns are padded to the widest cell; a rule is drawn under the
 * header. Cell values are plain strings so callers control formatting.
 */
class TextTable
{
  public:
    /** Set the header row; defines the column count. */
    void setHeader(std::vector<std::string> cells);

    /**
     * Append one data row. Rows shorter than the header are padded with
     * empty cells; longer rows are an error.
     */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    size_t numRows() const { return rows_.size(); }

    /** Render the table to @p out. */
    void print(std::ostream &out) const;

    /** Render the table to a string. */
    std::string toString() const;

    /** Format helper: fixed-precision double. */
    static std::string fmt(double v, int precision = 3);

    /** Format helper: "a ± b" cell used in the MAE tables. */
    static std::string fmtPlusMinus(double a, double b, int precision = 3);

    /** Format helper: percentage with one decimal, e.g. "8.6%". */
    static std::string fmtPercent(double frac, int precision = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ulpdp

#endif // ULPDP_COMMON_TABLE_H
