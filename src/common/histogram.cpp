#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace ulpdp {

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi)
{
    if (!(hi > lo))
        fatal("Histogram: hi (%g) must exceed lo (%g)", hi, lo);
    if (num_bins == 0)
        fatal("Histogram: num_bins must be positive");
    counts_.assign(num_bins, 0);
    width_ = (hi - lo) / static_cast<double>(num_bins);
}

void
Histogram::addAll(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

bool
Histogram::sameBinning(const Histogram &other) const
{
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size();
}

void
Histogram::merge(const Histogram &other)
{
    if (!sameBinning(other))
        fatal("Histogram::merge: binning mismatch ([%g, %g] x %zu vs "
              "[%g, %g] x %zu)", lo_, hi_, counts_.size(), other.lo_,
              other.hi_, other.counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

double
Histogram::binCenter(size_t i) const
{
    ULPDP_ASSERT(i < counts_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::density(size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(i)) /
           (static_cast<double>(total_) * width_);
}

double
Histogram::mass(size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(i)) / static_cast<double>(total_);
}

std::string
Histogram::toAscii(size_t max_width) const
{
    uint64_t peak = 0;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);

    std::ostringstream out;
    char buf[64];
    for (size_t i = 0; i < counts_.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%12.4f |", binCenter(i));
        out << buf;
        size_t bar = peak == 0
            ? 0
            : static_cast<size_t>(static_cast<double>(counts_[i]) *
                                  static_cast<double>(max_width) /
                                  static_cast<double>(peak));
        out << std::string(bar, '#');
        out << " " << counts_[i] << "\n";
    }
    return out.str();
}

} // namespace ulpdp
