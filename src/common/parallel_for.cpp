#include "common/parallel_for.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace ulpdp {

int
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? static_cast<int>(n) : 1;
}

void
parallelFor(int64_t begin, int64_t end, int jobs, int64_t chunk,
            const std::function<void(int64_t, int64_t)> &body)
{
    if (end <= begin)
        return;
    ULPDP_ASSERT(chunk >= 1);
    if (jobs <= 0)
        jobs = hardwareJobs();

    int64_t span = end - begin;
    int64_t nchunks = (span + chunk - 1) / chunk;
    if (jobs > nchunks)
        jobs = static_cast<int>(nchunks);

    if (jobs == 1) {
        body(begin, end);
        return;
    }

    // Workers claim the next unprocessed chunk with a fetch_add --
    // the same discipline as FleetWorkerPool's batch claims, so a
    // slow chunk delays only its own worker.
    std::atomic<int64_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&]() {
        try {
            for (;;) {
                int64_t c = next.fetch_add(1,
                                           std::memory_order_relaxed);
                if (c >= nchunks)
                    return;
                int64_t lo = begin + c * chunk;
                int64_t hi = lo + chunk < end ? lo + chunk : end;
                body(lo, hi);
            }
        } catch (...) {
            std::lock_guard<std::mutex> guard(error_mutex);
            if (!error)
                error = std::current_exception();
            // Drain the remaining chunks so peers exit promptly.
            next.store(nchunks, std::memory_order_relaxed);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(jobs) - 1);
    for (int i = 1; i < jobs; ++i)
        threads.emplace_back(worker);
    worker(); // the caller is worker 0
    for (auto &t : threads)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace ulpdp
