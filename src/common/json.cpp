#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace ulpdp {

void
JsonWriter::comma()
{
    if (!has_items_.empty()) {
        if (has_items_.back())
            out_ << ",";
        has_items_.back() = true;
    }
}

void
JsonWriter::keyPrefix(const std::string &key)
{
    comma();
    out_ << "\"" << escape(key) << "\":";
}

void
JsonWriter::raw(const std::string &s)
{
    out_ << s;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string r;
    r.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            r += "\\\"";
            break;
          case '\\':
            r += "\\\\";
            break;
          case '\n':
            r += "\\n";
            break;
          case '\t':
            r += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                r += buf;
            } else {
                r += c;
            }
        }
    }
    return r;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonWriter::beginObject()
{
    comma();
    out_ << "{";
    has_items_.push_back(false);
}

void
JsonWriter::beginObject(const std::string &key)
{
    keyPrefix(key);
    out_ << "{";
    has_items_.push_back(false);
}

void
JsonWriter::endObject()
{
    ULPDP_ASSERT(!has_items_.empty());
    has_items_.pop_back();
    out_ << "}";
}

void
JsonWriter::beginArray()
{
    comma();
    out_ << "[";
    has_items_.push_back(false);
}

void
JsonWriter::beginArray(const std::string &key)
{
    keyPrefix(key);
    out_ << "[";
    has_items_.push_back(false);
}

void
JsonWriter::endArray()
{
    ULPDP_ASSERT(!has_items_.empty());
    has_items_.pop_back();
    out_ << "]";
}

void
JsonWriter::field(const std::string &key, double v)
{
    keyPrefix(key);
    raw(number(v));
}

void
JsonWriter::field(const std::string &key, uint64_t v)
{
    keyPrefix(key);
    out_ << v;
}

void
JsonWriter::field(const std::string &key, int64_t v)
{
    keyPrefix(key);
    out_ << v;
}

void
JsonWriter::field(const std::string &key, int v)
{
    keyPrefix(key);
    out_ << v;
}

void
JsonWriter::field(const std::string &key, unsigned v)
{
    keyPrefix(key);
    out_ << v;
}

void
JsonWriter::field(const std::string &key, bool v)
{
    keyPrefix(key);
    out_ << (v ? "true" : "false");
}

void
JsonWriter::field(const std::string &key, const std::string &v)
{
    keyPrefix(key);
    out_ << "\"" << escape(v) << "\"";
}

void
JsonWriter::field(const std::string &key, const char *v)
{
    field(key, std::string(v));
}

void
JsonWriter::element(double v)
{
    comma();
    raw(number(v));
}

void
JsonWriter::element(const std::string &v)
{
    comma();
    out_ << "\"" << escape(v) << "\"";
}

bool
JsonWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("JsonWriter: cannot open %s for writing", path.c_str());
        return false;
    }
    out << str() << "\n";
    return static_cast<bool>(out);
}

} // namespace ulpdp
