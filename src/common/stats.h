/**
 * @file
 * Streaming statistics accumulators used throughout the evaluation
 * harness: running mean/variance (Welford), min/max, and a small helper
 * for batch statistics (median, percentiles, MAE).
 */

#ifndef ULPDP_COMMON_STATS_H
#define ULPDP_COMMON_STATS_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ulpdp {

/**
 * Numerically stable streaming accumulator for count, mean, variance,
 * min and max of a sequence of doubles (Welford's algorithm).
 */
class RunningStats
{
  public:
    RunningStats() = default;

    /** Fold one sample into the accumulator. Inline: this sits on the
     *  fleet per-report hot path, where the call overhead is on the
     *  order of the arithmetic itself. */
    void add(double x)
    {
        ++count_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    /**
     * Fold @p n copies of sample @p x in O(1) (a merge with a
     * synthetic zero-variance accumulator). Lets callers replay
     * weighted slot counts -- e.g. 1e7-node sketch totals -- without
     * 1e7 add() calls.
     */
    void addRepeated(double x, uint64_t n);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

    /**
     * Number of samples seen so far. Explicitly 64-bit: fleet-scale
     * merges exceed 2^32 samples (1e7 nodes x hundreds of reports),
     * which a 32-bit size_t count would silently wrap.
     */
    uint64_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (divide by N); 0 when fewer than 1 sample. */
    double variance() const;

    /** Sample variance (divide by N-1); 0 when fewer than 2 samples. */
    double sampleVariance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample seen; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample seen; -inf when empty. */
    double max() const { return max_; }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Batch statistics over a materialised vector of samples.
 *
 * The evaluation harness repeatedly needs order statistics (median,
 * percentiles) which a streaming accumulator cannot provide.
 */
namespace batch {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &v);

/** Population variance; 0 for fewer than 1 element. */
double variance(const std::vector<double> &v);

/** Population standard deviation. */
double stddev(const std::vector<double> &v);

/**
 * Median via nth_element (averages the two middle elements for even
 * sizes). The input is copied; the original vector is not reordered.
 */
double median(std::vector<double> v);

/**
 * Linear-interpolated percentile, p in [0, 100]. The input is copied.
 */
double percentile(std::vector<double> v, double p);

/** Mean absolute deviation between two equal-length vectors. */
double meanAbsError(const std::vector<double> &a,
                    const std::vector<double> &b);

} // namespace batch

} // namespace ulpdp

#endif // ULPDP_COMMON_STATS_H
