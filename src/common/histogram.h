/**
 * @file
 * Fixed-width binned histogram used by the distribution benches
 * (Figs. 4, 6, 7, 12) and by distribution-shape tests.
 */

#ifndef ULPDP_COMMON_HISTOGRAM_H
#define ULPDP_COMMON_HISTOGRAM_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ulpdp {

/**
 * Histogram over a closed interval [lo, hi] with a fixed number of
 * equal-width bins. Samples outside the interval are counted in
 * underflow/overflow buckets so no sample is silently dropped.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the binned range.
     * @param hi Upper edge of the binned range; must exceed @p lo.
     * @param num_bins Number of equal-width bins; must be positive.
     */
    Histogram(double lo, double hi, size_t num_bins);

    /** Count one sample. Inline: one add per released fleet report. */
    void add(double x)
    {
        ++total_;
        if (x < lo_) {
            ++underflow_;
            return;
        }
        if (x > hi_) {
            ++overflow_;
            return;
        }
        size_t bin = static_cast<size_t>((x - lo_) / width_);
        // The upper edge belongs to the last bin.
        bin = std::min(bin, counts_.size() - 1);
        ++counts_[bin];
    }

    /**
     * Count one sample @p n times in O(1). The weighted ingest path
     * for sketch slot totals: folding a 1e7-node slot vector must not
     * cost 1e7 increments. Counters are uint64 throughout, so
     * weighted adds cannot overflow before ~1.8e19 samples.
     */
    void add(double x, uint64_t n)
    {
        total_ += n;
        if (x < lo_) {
            underflow_ += n;
            return;
        }
        if (x > hi_) {
            overflow_ += n;
            return;
        }
        size_t bin = static_cast<size_t>((x - lo_) / width_);
        bin = std::min(bin, counts_.size() - 1);
        counts_[bin] += n;
    }

    /** Count a whole vector of samples. */
    void addAll(const std::vector<double> &xs);

    /**
     * Whether @p other bins over the same range with the same number
     * of bins (the precondition for merge()).
     */
    bool sameBinning(const Histogram &other) const;

    /**
     * Fold another histogram's counts into this one (parallel merge:
     * shards accumulate privately and merge at the end). Counts are
     * integers, so the merged result is bit-identical however the
     * samples were partitioned. Fatal unless sameBinning(other).
     */
    void merge(const Histogram &other);

    /** Number of bins (excluding under/overflow). */
    size_t numBins() const { return counts_.size(); }

    /** Raw count in bin @p i. */
    uint64_t count(size_t i) const { return counts_.at(i); }

    /** Samples below the binned range. */
    uint64_t underflow() const { return underflow_; }

    /** Samples above the binned range. */
    uint64_t overflow() const { return overflow_; }

    /** Total samples seen, including under/overflow. */
    uint64_t total() const { return total_; }

    /** Center of bin @p i. */
    double binCenter(size_t i) const;

    /** Width of each bin. */
    double binWidth() const { return width_; }

    /**
     * Empirical probability density in bin @p i: count normalised by
     * (total * bin width), comparable against an analytic pdf.
     */
    double density(size_t i) const;

    /** Empirical probability mass in bin @p i: count / total. */
    double mass(size_t i) const;

    /**
     * Render an ASCII bar chart, one row per bin, to ease eyeballing
     * distribution shapes in bench output.
     *
     * @param max_width Width in characters of the longest bar.
     */
    std::string toAscii(size_t max_width = 60) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_COMMON_HISTOGRAM_H
