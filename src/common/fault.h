/**
 * @file
 * Fault-tolerance primitives shared by every hardened subsystem.
 *
 * The privacy guarantee of this library is only as strong as the
 * state it is computed from: a single-event upset in the sampler
 * tables, a stuck URNG output register, a corrupted budget word
 * surviving a power cycle, or a glitched replenishment timer can all
 * silently turn an eps-LDP device into a non-private one (the same
 * implementation-level failure class as the finite-precision attacks
 * of Mironov and Gazeau et al., only induced by hardware instead of
 * floating point). This header holds the pieces every fault site
 * shares:
 *
 *  - crc32()/crc8(): the integrity codes protecting the sampler
 *    tables, the budget checkpoint and the sensor-bus payload;
 *  - FaultStats: one counter per detection/degradation event, so a
 *    deployment can audit what its fail-secure logic actually did;
 *  - FaultHook: the interface through which a fault *injector* (the
 *    simulation-side FaultInjector, or nothing in production) is
 *    threaded into the fault sites. Every method defaults to
 *    pass-through, so a null or default hook is a fault-free device.
 *
 * The hook interface lives in common (the lowest layer) so that rng,
 * core and dpbox can expose their fault sites without depending on
 * the simulation library that drives campaigns against them.
 */

#ifndef ULPDP_COMMON_FAULT_H
#define ULPDP_COMMON_FAULT_H

#include <cstddef>
#include <cstdint>

namespace ulpdp {

/**
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
 * range. @p seed chains multi-buffer computations: pass the previous
 * return value to continue a running CRC.
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/**
 * CRC-8 with polynomial 0x31 (x^8 + x^5 + x^4 + 1), init 0xFF -- the
 * checksum many digital sensors (SHT3x, SCD4x families) append to
 * each bus word, and what our sensor-bus model uses to detect byte
 * corruption in flight.
 */
uint8_t crc8(const void *data, size_t len);

/** What the bus fault site decided for one transfer attempt. */
enum class BusFaultKind : uint8_t
{
    /** Transfer proceeds unharmed. */
    None,

    /** Addressed device never ACKs (transfer aborts early). */
    Nack,

    /** Clock stretching / lost arbitration beyond the deadline. */
    Timeout,

    /** One payload byte is corrupted in flight. */
    CorruptByte,
};

/**
 * Detection and degradation counters of the fail-secure machinery.
 * Every hardened component keeps one and exposes it read-only; the
 * tracer and the chaos harness aggregate them. A production device
 * would map these onto health-telemetry registers.
 */
struct FaultStats
{
    /** Continuous health tests tripped on the URNG output stream. */
    uint64_t urng_health_alarms = 0;

    /** CRC scrub failures over the sampler tables. */
    uint64_t table_crc_failures = 0;

    /** Out-of-range sampler-table entries caught at lookup time. */
    uint64_t table_bounds_faults = 0;

    /** Budget checkpoints rejected at restore (bad CRC/magic). */
    uint64_t checkpoint_restore_failures = 0;

    /** Replenishment-timer misfires rejected by the shadow counter. */
    uint64_t timer_glitches_rejected = 0;

    /** Sensor-bus attempts retried after a detected transfer fault. */
    uint64_t bus_retries = 0;

    /** Sensor-bus reads abandoned after the retry budget (the caller
     *  degrades to its cached report). */
    uint64_t bus_degradations = 0;

    /** Reports served from cache because a fault was latched (zero
     *  additional privacy loss by construction). */
    uint64_t fail_secure_reports = 0;

    /** Resampling draws degraded to a window-edge clamp. */
    uint64_t resample_overflows = 0;

    /** configure() calls whose epsilon was rounded to a power of 2. */
    uint64_t epsilon_rounding_warnings = 0;

    /** Ledger journal appends that failed before output release (the
     *  transaction was withheld and the controller latched). */
    uint64_t ledger_append_failures = 0;

    /** Sum of the detection counters (not the degradation ones): how
     *  many times a fault was *noticed*. */
    uint64_t
    detections() const
    {
        return urng_health_alarms + table_crc_failures +
               table_bounds_faults + checkpoint_restore_failures +
               timer_glitches_rejected + bus_retries +
               ledger_append_failures;
    }

    FaultStats &
    operator+=(const FaultStats &o)
    {
        urng_health_alarms += o.urng_health_alarms;
        table_crc_failures += o.table_crc_failures;
        table_bounds_faults += o.table_bounds_faults;
        checkpoint_restore_failures += o.checkpoint_restore_failures;
        timer_glitches_rejected += o.timer_glitches_rejected;
        bus_retries += o.bus_retries;
        bus_degradations += o.bus_degradations;
        fail_secure_reports += o.fail_secure_reports;
        resample_overflows += o.resample_overflows;
        epsilon_rounding_warnings += o.epsilon_rounding_warnings;
        ledger_append_failures += o.ledger_append_failures;
        return *this;
    }
};

/**
 * Injection interface of the passive fault sites: components consult
 * their hook (when one is attached) at the exact datapath point where
 * the physical fault would strike. Default implementations are all
 * pass-through, i.e. a fault-free device.
 */
class FaultHook
{
  public:
    virtual ~FaultHook() = default;

    /** The URNG output register: the returned word is what the rest
     *  of the datapath sees (stuck-at / bit-flip faults). */
    virtual uint32_t urngWord(uint32_t word) { return word; }

    /** One replenishment-timer comparison: true = the (faulty) timer
     *  block claims the period elapsed. */
    virtual bool replenishGlitch() { return false; }

    /** One sensor-bus transfer attempt. */
    virtual BusFaultKind busFault() { return BusFaultKind::None; }

    /** Corrupt one in-flight bus byte (CorruptByte faults only). */
    virtual uint8_t corruptBusByte(uint8_t byte) { return byte; }
};

} // namespace ulpdp

#endif // ULPDP_COMMON_FAULT_H
