#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace ulpdp {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() > header_.size())
        fatal("TextTable: row has %zu cells, header has %zu",
              cells.size(), header_.size());
    if (!header_.empty())
        cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &out) const
{
    size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<size_t> widths(cols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < cols; ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            out << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 < cols)
                out << "  ";
        }
        out << "\n";
    };

    if (!header_.empty()) {
        print_row(header_);
        size_t rule = 0;
        for (size_t i = 0; i < cols; ++i)
            rule += widths[i] + (i + 1 < cols ? 2 : 0);
        out << std::string(rule, '-') << "\n";
    }
    for (const auto &row : rows_)
        print_row(row);
}

std::string
TextTable::toString() const
{
    std::ostringstream out;
    print(out);
    return out.str();
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::fmtPlusMinus(double a, double b, int precision)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.*g +- %.*g", precision + 2, a,
                  precision, b);
    return buf;
}

std::string
TextTable::fmtPercent(double frac, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, frac * 100.0);
    return buf;
}

} // namespace ulpdp
