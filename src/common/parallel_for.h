/**
 * @file
 * Chunked parallel-for over an index range.
 *
 * Same claim discipline as the fleet's persistent worker pool
 * (src/fleet/worker_pool.h): workers grab fixed-size chunks of the
 * index range with an atomic fetch_add, so imbalanced chunks
 * self-schedule instead of being assigned up front. This lives in
 * common (not fleet) because the core certification path uses it and
 * core must not depend on fleet.
 *
 * The caller's thread participates as worker 0, so jobs == 1 runs the
 * body inline with zero thread spawns (and bitwise-identical
 * behaviour to a plain loop). Exceptions thrown by the body on any
 * worker are captured and rethrown on the caller.
 */

#ifndef ULPDP_COMMON_PARALLEL_FOR_H
#define ULPDP_COMMON_PARALLEL_FOR_H

#include <cstdint>
#include <functional>

namespace ulpdp {

/** Number of hardware threads (never less than 1). */
int hardwareJobs();

/**
 * Invoke body(begin, end) over disjoint chunks covering
 * [begin, end), from up to `jobs` threads concurrently.
 *
 * @param begin First index.
 * @param end One past the last index.
 * @param jobs Worker count; <= 0 means hardwareJobs(). jobs == 1
 *        executes body(begin, end) inline, chunking skipped.
 * @param chunk Chunk size in indices (must be >= 1).
 * @param body Called as body(chunk_begin, chunk_end) with
 *        begin <= chunk_begin < chunk_end <= end. Must be safe to
 *        call concurrently for disjoint chunks. Results that must be
 *        merged deterministically should be stored per-chunk by the
 *        body (indexable from chunk_begin) and combined by the caller
 *        in index order afterwards.
 */
void parallelFor(int64_t begin, int64_t end, int jobs, int64_t chunk,
                 const std::function<void(int64_t, int64_t)> &body);

} // namespace ulpdp

#endif // ULPDP_COMMON_PARALLEL_FOR_H
