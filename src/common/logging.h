/**
 * @file
 * Status and error reporting utilities.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a library bug), fatal() is for unrecoverable user errors
 * (bad configuration, invalid arguments), and warn()/inform() report
 * conditions the user should know about without stopping execution.
 */

#ifndef ULPDP_COMMON_LOGGING_H
#define ULPDP_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ulpdp {

/** Exception thrown by fatal() for user-caused unrecoverable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic() for internal invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

/** Format a printf-style message into a std::string. */
std::string formatMessage(const char *fmt, va_list args);

/** Emit a tagged message on stderr. */
void emit(const char *tag, const std::string &msg);

} // namespace detail

/**
 * Report an internal invariant violation and throw PanicError.
 *
 * Call when something happens that should never happen regardless of
 * what the user does, i.e. an actual library bug.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and throw FatalError.
 *
 * Call when execution cannot continue due to a condition that is the
 * user's fault (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn the user about a suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Enable or disable logging output (useful in tests -- fault
 * campaigns trigger thousands of expected detections). Disabling
 * silences warn()/inform() entirely and suppresses the stderr line of
 * panic()/fatal(); the thrown exception still carries the message.
 */
void setLoggingEnabled(bool enabled);

/**
 * Number of warn() calls since process start (or the last reset).
 * Counted even while output is disabled: a warning a fault campaign
 * silenced is still a warning the device raised, and the fault-stat
 * plumbing reports it alongside the detection counters.
 */
uint64_t warningCount();

/** Reset warningCount() to zero (between test campaigns). */
void resetWarningCount();

/**
 * Check a runtime invariant; panic with the stringised condition when it
 * does not hold. Unlike assert() this is active in all build types: the
 * privacy guarantees this library makes must never be compiled out.
 */
#define ULPDP_ASSERT(cond)                                                  \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::ulpdp::panic("assertion failed at %s:%d: %s", __FILE__,       \
                           __LINE__, #cond);                                \
        }                                                                   \
    } while (0)

} // namespace ulpdp

#endif // ULPDP_COMMON_LOGGING_H
