#include "common/fault.h"

namespace ulpdp {

namespace {

/** Build the reflected CRC-32 table once, at first use. */
const uint32_t *
crc32Table()
{
    static uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    return table;
}

} // anonymous namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    const uint32_t *table = crc32Table();
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint8_t
crc8(const void *data, size_t len)
{
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    uint8_t crc = 0xFF;
    for (size_t i = 0; i < len; ++i) {
        crc ^= bytes[i];
        for (int k = 0; k < 8; ++k)
            crc = (crc & 0x80u) ? static_cast<uint8_t>((crc << 1) ^ 0x31u)
                                : static_cast<uint8_t>(crc << 1);
    }
    return crc;
}

} // namespace ulpdp
