/**
 * @file
 * Persistent parked worker pool for the fleet engine.
 *
 * PR 3's engine created and joined a fresh std::thread per worker on
 * every FleetRunner::run() call, *inside* the timed region. For the
 * bench cohort (a ~6 ms epoch) the spawn/teardown tax alone ate the
 * entire parallel win -- the committed PR 5 baseline recorded 0.86x
 * "speedup" at 8 threads. This pool fixes the lifecycle half of that
 * bug: threads are created once (lazily, on the first dispatch that
 * needs them), park on a condition variable between epochs, and are
 * reused by every subsequent epoch of any thread count. Steady-state
 * dispatch cost is one mutex round-trip plus a wakeup, independent of
 * how many epochs the runner has executed.
 *
 * Determinism: the pool schedules *workers*, never *work*. Which
 * pooled thread runs which worker index has no effect on the merged
 * FleetReport -- work-to-result mapping is fixed by block index in
 * the engine (fleet.cpp), and worker indices only select scratch
 * slots and work-queue ownership.
 *
 * Thread-safety: dispatch() and the destructor must be called from
 * one thread at a time (FleetRunner serializes run() by contract; the
 * engine's stress tests cover repeated dispatch and teardown under
 * TSan). All pool state is mutex-protected -- the hot path of the
 * *workers* never touches the pool; they only return to it when their
 * epoch's job function runs out of work.
 */

#ifndef ULPDP_FLEET_WORKER_POOL_H
#define ULPDP_FLEET_WORKER_POOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ulpdp {

/**
 * Lazily grown pool of parked threads that run one job function per
 * epoch. The calling thread always participates as worker 0, so a
 * single-threaded dispatch never touches a lock or spawns anything.
 */
class FleetWorkerPool
{
  public:
    FleetWorkerPool() = default;

    /** Wakes and joins every parked thread. */
    ~FleetWorkerPool();

    FleetWorkerPool(const FleetWorkerPool &) = delete;
    FleetWorkerPool &operator=(const FleetWorkerPool &) = delete;

    /**
     * Ensure at least @p helpers parked helper threads exist. Called
     * by the engine *before* starting its epoch timer so first-epoch
     * spawn cost never lands in the measured region.
     */
    void reserve(unsigned helpers);

    /**
     * Run job(w) for every worker index w in [0, workers). The caller
     * executes job(0) itself; parked helpers execute indices 1..W-1
     * and park again. Returns after every index completed.
     */
    void dispatch(unsigned workers,
                  const std::function<void(unsigned)> &job);

    /** Helper threads currently alive (test/telemetry hook). */
    size_t helperCount() const;

  private:
    void helperMain(unsigned id);

    mutable std::mutex mutex_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> helpers_;
    const std::function<void(unsigned)> *job_ = nullptr;
    /** Epoch counter; a helper runs when it observes a new epoch and
     *  its id is below the epoch's active helper count. */
    uint64_t epoch_ = 0;
    unsigned active_helpers_ = 0;
    unsigned outstanding_ = 0;
    bool stop_ = false;
};

} // namespace ulpdp

#endif // ULPDP_FLEET_WORKER_POOL_H
