/**
 * @file
 * Parallel fleet engine: simulate N independent DP-Box nodes at
 * population scale.
 *
 * The paper's utility story (Tables II-V, Fig. 15) only exists in the
 * aggregate: an analyst averages millions of locally-noised reports
 * and the noise cancels. Every simulation path in this repo used to
 * be a single sequential loop; this engine is the fleet-scale runner
 * that every scaling experiment builds on.
 *
 * Determinism contract -- the merged FleetReport is bit-identical for
 * any thread count and any scheduling, because nothing in the result
 * depends on execution order:
 *
 *  - Every node owns an independent Tausworthe stream derived from
 *    (master seed, cohort, node id) by FleetSeeder, so which thread
 *    simulates a node cannot change what the node does.
 *  - Work is sharded into fixed-size *blocks* of consecutive nodes.
 *    The block size is a configuration constant, not a function of
 *    the thread count; each block accumulates into its own private,
 *    cache-line-aligned histogram / Welford / counter slab (no locks,
 *    no atomics, no sharing on the hot path -- the only
 *    synchronisation is the relaxed claim RMW on a per-worker work
 *    queue, plus occasional steals from a drained worker).
 *  - At the end the main thread merges the block slabs in block-index
 *    order. Integer counters and histogram bins are trivially
 *    order-independent; Welford merges and trial sums are *not*
 *    floating-point-associative, which is exactly why the merge tree
 *    is fixed by block index rather than by completion order.
 *
 * The hot path rides the batch sampling layer (rng/batch_sampler.h):
 * workers fill a 16-lane Tausworthe bank with consecutive nodes'
 * streams and draw every fresh report of the group in one rect --
 * SIMD-stepped URNG words feeding blocked, prefetched table lookups,
 * with the window-confined (resampling) variant hoisting the
 * acceptance mass out of the trial loop. Lane l is bit-identical to
 * node l's scalar stream, so the batched accumulation (still strictly
 * in (node, trial) order) produces the exact report values of the
 * scalar path; any batch-layer integrity bail falls back to redoing
 * the whole block through the per-draw scalar code. The per-cohort
 * sampling table is enumerated once on the main thread and shared
 * read-only by every worker.
 */

#ifndef ULPDP_FLEET_FLEET_H
#define ULPDP_FLEET_FLEET_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "agg/decode.h"
#include "agg/stream.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "core/fxp_params.h"
#include "fleet/seeder.h"
#include "fleet/worker_pool.h"

namespace ulpdp {

/** Which mechanism a cohort's nodes run. */
enum class CohortMechanism
{
    /** Continuous double-precision Laplace (the utility yardstick). */
    Ideal,

    /** Fixed-point noise, no range control (not LDP). */
    Naive,

    /** Fixed-point noise redrawn into the window (table-driven
     *  truncated inversion -- no redraw loop). */
    Resampling,

    /** Fixed-point noise clamped to the window. */
    Thresholding,

    /** Variance-corrected bounded Laplace (Holohan et al.): outputs
     *  confined to the sensor range itself, T = 0. */
    BoundedLaplace,

    /** Discrete Laplace (Floor-rounded pipeline) with resampling
     *  window control. */
    DiscreteLaplace,
};

/** Human-readable mechanism name. */
const char *cohortMechanismName(CohortMechanism m);

/** Registry lookup name for an enum value, or nullptr for the two
 *  legacy non-registered settings (Ideal, Naive). */
const char *cohortMechanismRegistryName(CohortMechanism m);

/**
 * One cohort: a group of nodes sharing a mechanism configuration.
 * Different cohorts of one fleet can run different mechanisms,
 * epsilons and budgets (e.g. an A/B experiment across the install
 * base).
 */
struct CohortConfig
{
    /** Cohort label for reports. */
    std::string name = "cohort";

    /** Mechanism every node of this cohort runs. */
    CohortMechanism mechanism = CohortMechanism::Thresholding;

    /**
     * Select the mechanism through the registry by name instead of
     * the enum (e.g. "bounded-laplace"). Empty keeps the enum
     * selection. The named mechanism must advertise a fleet lowering
     * (MechanismRegistry::Entry::lower); for the names that mirror
     * enum values the two selection paths resolve to bit-identical
     * plans, which the fingerprint-immunity test proves.
     */
    std::string mechanism_name;

    /** Fixed-point parameters (range, eps, Bu, By, Delta). The
     *  params.seed field is ignored: fleet nodes are seeded per node
     *  by the FleetSeeder. */
    FxpMechanismParams params;

    /** Loss bound multiple n for the exact threshold search (range-
     *  controlled mechanisms; must exceed 1). */
    double loss_multiple = 2.0;

    /** Explicit window extension in Delta units; >= 0 overrides the
     *  exact search (use for sweeps of mis-provisioned windows). */
    int64_t threshold_index = -1;

    /** Node count (ignored when @ref values is non-empty). */
    uint64_t nodes = 0;

    /** Reports each node releases per epoch ("trials" in the utility
     *  benches: trial t is every node's t-th report). */
    uint32_t reports_per_node = 1;

    /**
     * Explicit per-node true readings (dataset replay: node i holds
     * values[i]). Empty selects synthetic clipped-Gaussian data.
     */
    std::vector<double> values;

    /** Synthetic data mean; NaN/unset centers on the sensor range. */
    double data_mean = 0.0;

    /** Synthetic data std; <= 0 selects range length / 6. */
    double data_std = 0.0;

    /** Set when data_mean was explicitly chosen. */
    bool data_mean_set = false;

    /**
     * Per-node privacy budget for one epoch; 0 disables metering.
     * Metering is deliberately worst-case (every fresh report is
     * charged the full configured bound -- loss_multiple * eps for
     * range-controlled cohorts, eps otherwise) so the affordable
     * report count is a pure function of the budget: the halt check
     * never consumes randomness, matching the check-before-sample
     * ordering of BudgetController. Exhausted nodes replay their
     * cached previous report (zero additional loss).
     */
    double budget_per_node = 0.0;

    /** Bins of the released-value histogram. */
    size_t histogram_bins = 64;

    /**
     * Materialize the full report matrix (reports_per_node x nodes,
     * row-major) so per-trial order-statistic queries (median,
     * percentiles) can run after the fact. Each block writes its own
     * disjoint columns, so the matrix contents are thread-count
     * independent too. Intended for utility-table-sized cohorts;
     * streaming cohorts (millions of nodes) leave this off.
     */
    bool materialize = false;

    /** Skip the exact whole-support privacy-loss analysis (it scans
     *  every (input, output) pair once per cohort on the main thread;
     *  cheap for paper-sized spans, skippable for throughput runs). */
    bool analyze_loss = true;

    /**
     * Streaming aggregation (src/agg): per-worker mergeable sketch
     * slabs ride the block hot loop and the post-epoch merge decodes
     * them with the unbiased channel-inversion estimator. Off by
     * default -- enabling it extends the fingerprint with the sketch
     * state, so existing baselines are untouched until a cohort opts
     * in. Ignored for Ideal cohorts (no output grid to sketch on).
     */
    agg::AggConfig agg;
};

class BudgetLedger;

/** Fleet-wide configuration. */
struct FleetConfig
{
    /** Master seed every per-node stream derives from. */
    uint64_t master_seed = 1;

    /**
     * Nodes per scheduling/merge block. Results depend on this
     * constant (it fixes the Welford merge tree) but never on the
     * thread count. The default keeps per-block slabs cache-friendly
     * while giving a 1M-node fleet ~1000 blocks to balance across
     * threads.
     */
    uint32_t block_nodes = 1024;

    /** The cohorts to simulate. */
    std::vector<CohortConfig> cohorts;

    /**
     * Optional durable epoch ledger (borrowed; must outlive the
     * runner and be mounted). After each epoch's merge the main
     * thread journals, per cohort, the worst-case privacy loss of its
     * fresh reports (fresh_reports x the same flat per-report bound
     * the budget metering uses -- never an undercharge) and commits a
     * checkpoint. Journaling happens entirely outside the parallel
     * section and after the merge, so it cannot move a bit of the
     * FleetReport: the fingerprint is identical with and without a
     * ledger attached on a fault-free run.
     */
    BudgetLedger *epoch_ledger = nullptr;
};

/**
 * Merged streaming-aggregation state of one cohort (present iff the
 * cohort enabled CohortConfig::agg). Everything except decode_seconds
 * is part of the determinism contract: the sketch is pure integer
 * counters merged shard-wise, and the decode is a deterministic
 * function of those integers, so every field is bit-identical across
 * thread counts.
 */
struct CohortAggResult
{
    /** Merged sketch state (exact slot counts, count-min, quantiles). */
    agg::CohortSketch sketch;

    /** Heavy-hitter slots by count-min estimate, deterministic order. */
    std::vector<agg::HeavyHitter> heavy;

    /** Unbiased channel-inversion decode of the merged slot totals. */
    agg::DecodedFrequencies decoded;

    /** The cohort's precomputed decoder; utility benches reuse it for
     *  per-trial decodes over sketch.trialSlots(t). */
    std::shared_ptr<const agg::FrequencyDecoder> decoder;

    /** Physical value of input grid index 0 and the grid step, for
     *  feeding decoder->decode() externally. */
    double input_value0 = 0.0;
    double delta = 0.0;

    /** Reports whose output index fell outside the sketch window
     *  (should be 0; a defensive counter, folded into the
     *  fingerprint so a drop can never pass silently). */
    uint64_t dropped = 0;

    /** Wall-clock seconds of the post-merge decode (not part of the
     *  determinism contract). */
    double decode_seconds = 0.0;
};

/** Merged per-cohort result. */
struct CohortResult
{
    explicit CohortResult(const Histogram &h) : released_hist(h) {}

    /** Cohort label. */
    std::string name;

    /** Mechanism the cohort ran. */
    CohortMechanism mechanism = CohortMechanism::Thresholding;

    /** Display name of the mechanism the cohort ran (authoritative
     *  for registry-selected cohorts; not part of the fingerprint). */
    std::string mechanism_label;

    /** Nodes simulated. */
    uint64_t nodes = 0;

    /** Reports released (nodes * reports_per_node). */
    uint64_t reports = 0;

    /** Histogram of every released value. */
    Histogram released_hist;

    /** Welford moments of every released value. */
    RunningStats released_stats;

    /** Welford moments of (released - true) per report. */
    RunningStats error_stats;

    /** Welford moments of the true per-node readings. */
    RunningStats true_stats;

    /** Per-trial mean estimate: mean over nodes of trial t's
     *  reports (the analyst's population-mean estimate). */
    std::vector<double> trial_estimate;

    /** MAE of the trial mean estimates against the true mean, and
     *  its std over trials (the Fig. 15 / Tables II-V metric). */
    double mean_mae = 0.0;
    double mean_mae_std = 0.0;

    /** Laplace samples drawn (energy/latency proxy). */
    uint64_t samples_drawn = 0;

    /** Confined draws degraded to a window-edge clamp. */
    uint64_t resample_overflows = 0;

    /** Reports released with fresh noise. */
    uint64_t fresh_reports = 0;

    /** Reports served by replaying the node's cached report. */
    uint64_t cache_replays = 0;

    /** Nodes whose budget could not cover all reports. */
    uint64_t nodes_exhausted = 0;

    /** Sampler-table integrity faults detected across the fleet. */
    uint64_t rng_integrity_detections = 0;

    /**
     * Order-independent digest of every (node, trial, released bit
     * pattern) triple: two runs are report-for-report identical iff
     * their checksums match, which is how the determinism tests and
     * bench compare thread counts cheaply.
     */
    uint64_t checksum = 0;

    /** Exact worst-case privacy loss (analyze_loss cohorts; inf for
     *  the naive baseline). */
    double worst_loss = 0.0;

    /** Whether worst_loss <= loss_multiple * eps (the device's
     *  configured bound). */
    bool ldp = false;

    /** Materialized report matrix (reports_per_node x nodes,
     *  row-major); empty unless CohortConfig::materialize. */
    std::vector<double> matrix;

    /** Streaming-aggregation result; null unless CohortConfig::agg
     *  was enabled for this cohort. */
    std::shared_ptr<CohortAggResult> agg;

    /** True population mean. */
    double trueMean() const { return true_stats.mean(); }

    /** Fleet-aggregate mean estimate over all reports. */
    double estimatedMean() const { return released_stats.mean(); }

    /** One trial's reports (materialized cohorts only). */
    std::vector<double> trialReports(uint32_t trial) const;
};

/** Merged fleet-wide result of one epoch. */
struct FleetReport
{
    /** Per-cohort results, in configuration order. */
    std::vector<CohortResult> cohorts;

    /** Total reports released across cohorts. */
    uint64_t total_reports = 0;

    /** Wall-clock seconds of the parallel section (not part of the
     *  determinism contract). */
    double seconds = 0.0;

    /** Worker threads used. */
    unsigned threads = 0;

    /** Reports per second of the parallel section. */
    double reportsPerSecond() const;

    /**
     * Combined order-independent digest over every cohort's checksum,
     * histogram, moments and counters -- bitwise equal across runs
     * iff the merged reports are.
     */
    uint64_t fingerprint() const;
};

/**
 * Runs fleet epochs across a persistent worker pool with per-worker
 * work-stealing block queues.
 *
 * Scheduling (all of it invisible to the merged result):
 *
 *  - Worker threads are spawned once, before the first epoch's timer
 *    starts, and park between epochs (FleetWorkerPool). PR 3 spawned
 *    and joined threads inside every run(), which cost more than the
 *    bench epoch itself and flattened the scaling curve.
 *  - Each worker owns a contiguous, cache-line-padded queue of block
 *    indices and claims them in adaptive chunks from its own queue --
 *    no shared claim counter, so the common path has zero cross-core
 *    cache-line traffic. A worker that drains its queue steals single
 *    blocks from the fullest-looking victim, which balances ragged
 *    cohorts without perturbing the block-to-slab mapping.
 *  - Per-worker scratch (RNG clones, batch samplers holding a
 *    raw-pointer view of the cohort table, noise rects) persists
 *    across blocks *and epochs*, so the hot loop never allocates and
 *    never touches the shared table's shared_ptr control block.
 *
 * None of this can move a bit of the FleetReport: block -> accumulator
 * slab is a static mapping, every block's content depends only on
 * (master seed, cohort, node id), and the merge order is block index.
 * Work-stealing changes *when* a block runs and on *which* thread --
 * two dimensions the result provably does not depend on.
 */
class FleetRunner
{
  public:
    /** Validates the configuration and enumerates per-cohort sampler
     *  tables (fatal on invalid cohorts, e.g. no valid threshold). */
    explicit FleetRunner(FleetConfig config);

    ~FleetRunner();

    /**
     * Simulate one epoch.
     *
     * @param num_threads Worker threads; 0 selects the hardware
     *        concurrency. The merged result is bit-identical for
     *        every value.
     */
    FleetReport run(unsigned num_threads = 0);

    /** The configuration in effect. */
    const FleetConfig &config() const { return config_; }

    /** std::thread::hardware_concurrency, floored at 1. */
    static unsigned hardwareThreads();

    /**
     * Process-wide test hook: route every block through the per-draw
     * scalar path instead of the batch sampling layer. The merged
     * FleetReport must be bit-identical either way -- that is the
     * batch layer's core contract, and the determinism tests prove it
     * by flipping this switch. Never set in production code.
     */
    static void forceScalarBlocks(bool on);

  private:
    struct CohortPlan;
    struct WorkerScratch;

    FleetConfig config_;
    FleetSeeder seeder_;
    std::vector<CohortPlan> plans_;
    /** Parked helper threads, reused by every epoch. */
    FleetWorkerPool pool_;
    /** Per-worker-slot scratch (RNG clones, batch samplers, rects),
     *  reused across epochs; grown to the largest thread count seen. */
    std::vector<std::unique_ptr<WorkerScratch>> scratch_;
};

} // namespace ulpdp

#endif // ULPDP_FLEET_FLEET_H
