#include "fleet/worker_pool.h"

namespace ulpdp {

FleetWorkerPool::~FleetWorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &t : helpers_)
        t.join();
}

void
FleetWorkerPool::reserve(unsigned helpers)
{
    std::lock_guard<std::mutex> lock(mutex_);
    while (helpers_.size() < helpers) {
        unsigned id = static_cast<unsigned>(helpers_.size());
        helpers_.emplace_back([this, id] { helperMain(id); });
    }
}

size_t
FleetWorkerPool::helperCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return helpers_.size();
}

void
FleetWorkerPool::dispatch(unsigned workers,
                          const std::function<void(unsigned)> &job)
{
    if (workers <= 1) {
        job(0);
        return;
    }
    unsigned helpers = workers - 1;
    reserve(helpers);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        active_helpers_ = helpers;
        outstanding_ = helpers;
        ++epoch_;
    }
    wake_cv_.notify_all();

    job(0);

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return outstanding_ == 0; });
    job_ = nullptr;
}

void
FleetWorkerPool::helperMain(unsigned id)
{
    uint64_t seen_epoch = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_cv_.wait(lock, [&] {
            return stop_ || epoch_ != seen_epoch;
        });
        if (stop_)
            return;
        seen_epoch = epoch_;
        if (id >= active_helpers_)
            continue; // parked out of this epoch
        const std::function<void(unsigned)> *job = job_;
        lock.unlock();
        (*job)(id + 1);
        lock.lock();
        if (--outstanding_ == 0)
            done_cv_.notify_all();
    }
}

} // namespace ulpdp
