#include "fleet/seeder.h"

#include "rng/tausworthe.h"

namespace ulpdp {

namespace {

// Weyl increments decorrelating the node and cohort dimensions
// (golden-ratio constant plus another odd 64-bit mix constant); the
// salt increment lives in the header next to subSeed().
constexpr uint64_t kNodeGamma = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kCohortGamma = 0xc2b2ae3d27d4eb4fULL;

} // anonymous namespace

uint64_t
FleetSeeder::nodeSeed(uint32_t cohort, uint64_t node) const
{
    uint64_t s = master_ + kNodeGamma * (node + 1) +
                 kCohortGamma * (static_cast<uint64_t>(cohort) + 1);
    s = mix64(s);
    // Reject zero/degenerate candidates: the Tausworthe constructor
    // would bump their component words, aliasing two distinct seeds
    // onto one stream. Remixing is deterministic, so every thread
    // count derives the same final seed.
    while (Tausworthe::seedDegenerate(s))
        s = mix64(s + kNodeGamma);
    return s;
}

uint64_t
FleetSeeder::nodeSubSeed(uint32_t cohort, uint64_t node,
                         uint64_t salt) const
{
    return subSeed(nodeSeed(cohort, node), salt);
}

} // namespace ulpdp
