#include "fleet/seeder.h"

#include "rng/tausworthe.h"

namespace ulpdp {

namespace {

// Weyl increments decorrelating the node, cohort and salt dimensions
// (golden-ratio constant plus two other odd 64-bit mix constants).
constexpr uint64_t kNodeGamma = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kCohortGamma = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kSaltGamma = 0xd6e8feb86659fd93ULL;

} // anonymous namespace

uint64_t
FleetSeeder::mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
FleetSeeder::nodeSeed(uint32_t cohort, uint64_t node) const
{
    uint64_t s = master_ + kNodeGamma * (node + 1) +
                 kCohortGamma * (static_cast<uint64_t>(cohort) + 1);
    s = mix64(s);
    // Reject zero/degenerate candidates: the Tausworthe constructor
    // would bump their component words, aliasing two distinct seeds
    // onto one stream. Remixing is deterministic, so every thread
    // count derives the same final seed.
    while (Tausworthe::seedDegenerate(s))
        s = mix64(s + kNodeGamma);
    return s;
}

uint64_t
FleetSeeder::nodeSubSeed(uint32_t cohort, uint64_t node,
                         uint64_t salt) const
{
    return mix64(nodeSeed(cohort, node) ^ (kSaltGamma * (salt + 1)));
}

} // namespace ulpdp
