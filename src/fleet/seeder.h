/**
 * @file
 * Deterministic per-node seed derivation for fleet simulations.
 *
 * A fleet run must produce the same per-node noise stream no matter
 * how many threads execute it, so seeds cannot depend on scheduling:
 * every node's Tausworthe seed is a pure function of the fleet master
 * seed, the cohort index and the node id, derived with a SplitMix64
 * finalizer (the standard recipe for splitting one seed into many
 * decorrelated ones).
 *
 * The seeder additionally *rejects* degenerate candidates instead of
 * leaning on the Tausworthe constructor's minimum-enforcement bumps:
 * a seed whose expanded component words fall below the taus88 LFSR
 * minimums would be silently bumped by the constructor, aliasing two
 * distinct seeds onto one generator state -- exactly the kind of
 * stream collision a million-node fleet cannot afford. Degenerate
 * candidates (probability ~2^-27 each) are remixed until clean, which
 * keeps the derivation deterministic.
 */

#ifndef ULPDP_FLEET_SEEDER_H
#define ULPDP_FLEET_SEEDER_H

#include <cstdint>

namespace ulpdp {

/** Derives one clean Tausworthe seed per (cohort, node). */
class FleetSeeder
{
  public:
    explicit FleetSeeder(uint64_t master_seed)
        : master_(master_seed)
    {}

    /**
     * The Tausworthe seed for @p node of @p cohort. Never zero and
     * never degenerate (Tausworthe::seedDegenerate() is false), so
     * constructing Tausworthe(nodeSeed(...)) uses the expansion
     * verbatim, with no aliasing bumps.
     */
    uint64_t nodeSeed(uint32_t cohort, uint64_t node) const;

    /**
     * A decorrelated secondary stream for the same node (data
     * synthesis, dropout draws, ...), keyed by @p salt so independent
     * consumers never share bits with the noise stream.
     */
    uint64_t nodeSubSeed(uint32_t cohort, uint64_t node,
                         uint64_t salt) const;

    /**
     * nodeSubSeed() when the node seed is already in hand: the fleet
     * hot loop derives each node seed exactly once and branches the
     * salted substreams off it, instead of re-deriving (and re-running
     * the degenerate-seed rejection of) nodeSeed() per consumer.
     * subSeed(nodeSeed(c, n), salt) == nodeSubSeed(c, n, salt).
     */
    static uint64_t subSeed(uint64_t node_seed, uint64_t salt)
    {
        return mix64(node_seed ^ (kSaltGamma * (salt + 1)));
    }

    /** The fleet master seed this seeder derives from. */
    uint64_t masterSeed() const { return master_; }

    /** SplitMix64 finalizer (public: tests invert it to craft
     *  degenerate candidates). Inline: the fleet checksum digests one
     *  mix per released report. */
    static uint64_t mix64(uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    /** Weyl increment decorrelating the salt dimension. */
    static constexpr uint64_t kSaltGamma = 0xd6e8feb86659fd93ULL;

    uint64_t master_;
};

} // namespace ulpdp

#endif // ULPDP_FLEET_SEEDER_H
