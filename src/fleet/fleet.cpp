#include "fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>

#include "common/logging.h"
#include "core/budget.h"
#include "core/budget_ledger.h"
#include "core/mechanism_registry.h"
#include "core/privacy_loss.h"
#include "core/threshold_calc.h"
#include "rng/batch_sampler.h"
#include "rng/fxp_laplace.h"
#include "rng/ideal_laplace.h"
#include "rng/laplace_table.h"
#include "rng/tausworthe.h"
#include "telemetry/telemetry.h"

namespace ulpdp {

namespace {

// Checksum mix keys for the node and trial dimensions.
constexpr uint64_t kNodeKey = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kTrialKey = 0xc2b2ae3d27d4eb4fULL;

// Salt selecting the synthetic-data substream of a node seed.
constexpr uint64_t kDataSalt = 0x64617461ULL; // "data"

uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

/** Digest one released report, order-independently (summed). */
uint64_t
reportDigest(uint64_t node, uint32_t trial, double released)
{
    return FleetSeeder::mix64((node + 1) * kNodeKey ^
                              (static_cast<uint64_t>(trial) + 1) *
                                  kTrialKey ^
                              doubleBits(released));
}

/** Uniform double in (0, 1] from one 64-bit word. */
double
unitFromWord(uint64_t w)
{
    return (static_cast<double>(w >> 11) + 1.0) * 0x1p-53;
}

/** Fold a byte range into a running digest (merge-order fixed by the
 *  caller, so a plain chained hash is fine here). */
uint64_t
foldBytes(uint64_t acc, const void *data, size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i)
        acc = FleetSeeder::mix64(acc ^ (p[i] + 0xffULL * i));
    return acc;
}

uint64_t
foldStats(uint64_t acc, const RunningStats &s)
{
    uint64_t w[5] = {s.count(), doubleBits(s.mean()),
                     doubleBits(s.variance()), doubleBits(s.min()),
                     doubleBits(s.max())};
    return foldBytes(acc, w, sizeof w);
}

/** Run-level fleet metrics. The per-cohort counters are registered
 *  lazily at publish time because their label sets depend on the
 *  cohort names in the configuration. */
struct FleetMetrics
{
    Counter &runs = telemetry::registry().counter(
        "ulpdp_fleet_runs_total",
        "Fleet epochs executed",
        "runs");
    Gauge &throughput = telemetry::registry().gauge(
        "ulpdp_fleet_reports_per_second",
        "Throughput of the most recent fleet epoch",
        "reports/s");
    Gauge &threads = telemetry::registry().gauge(
        "ulpdp_fleet_threads",
        "Worker threads of the most recent fleet epoch",
        "threads");
    LatencyHistogram &seconds = telemetry::registry().histogram(
        "ulpdp_fleet_epoch_seconds",
        "Wall-clock duration per fleet epoch",
        "seconds",
        {0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0});
    Gauge &batch_lanes = telemetry::registry().gauge(
        "ulpdp_batch_lanes",
        "URNG lanes stepped in lockstep by the batch sampling bank",
        "lanes");
    Gauge &batch_prefetch = telemetry::registry().gauge(
        "ulpdp_batch_prefetch_batch_size",
        "Table slots prefetched ahead per batched trial row",
        "slots");
    Counter &batch_fallbacks = telemetry::registry().counter(
        "ulpdp_batch_scalar_fallbacks_total",
        "Blocks redone on the scalar path after a batch-sampler bail",
        "blocks");
    Counter &rng_clones = telemetry::registry().counter(
        "ulpdp_fleet_rng_clones_total",
        "Prototype RNG clones made by fleet workers",
        "clones");
};

FleetMetrics &
fleetMetrics()
{
    static FleetMetrics m;
    return m;
}

/**
 * Publish one merged cohort's counters into the process registry.
 *
 * Runs on the main thread *after* the block-order merge: the worker
 * slabs (BlockAccum) already are the per-shard metric slabs, so
 * publishing their merged totals here keeps the hot path free of any
 * shared-cacheline traffic and cannot perturb the bit-identical
 * FleetReport the determinism contract promises.
 */
void
publishCohort(const CohortResult &res)
{
    MetricRegistry &reg = telemetry::registry();
    std::string labels = "cohort=\"" + res.name + "\"";
    reg.counter("ulpdp_fleet_reports_total",
                "Reports released across the fleet by cohort",
                "reports", labels)
        .inc(res.reports);
    reg.counter("ulpdp_fleet_fresh_reports_total",
                "Fresh (budget-charged) reports by cohort",
                "reports", labels)
        .inc(res.fresh_reports);
    reg.counter("ulpdp_fleet_cache_replays_total",
                "Budget-exhausted cache replays by cohort",
                "reports", labels)
        .inc(res.cache_replays);
    reg.counter("ulpdp_fleet_samples_drawn_total",
                "Laplace samples drawn by cohort",
                "samples", labels)
        .inc(res.samples_drawn);
    reg.counter("ulpdp_fleet_resample_overflows_total",
                "Resampling draws degraded to a window clamp",
                "draws", labels)
        .inc(res.resample_overflows);
    reg.counter("ulpdp_fleet_nodes_exhausted_total",
                "Node-epochs whose budget ran out mid-epoch",
                "nodes", labels)
        .inc(res.nodes_exhausted);
    reg.counter("ulpdp_fleet_rng_integrity_detections_total",
                "Sampler-table integrity faults detected",
                "faults", labels)
        .inc(res.rng_integrity_detections);
    if (res.agg) {
        reg.counter("ulpdp_agg_ingested_reports_total",
                    "Reports folded into the streaming sketches",
                    "reports", labels)
            .inc(res.agg->sketch.total());
        reg.counter("ulpdp_agg_dropped_reports_total",
                    "Reports outside the sketch window (should be 0)",
                    "reports", labels)
            .inc(res.agg->dropped);
        reg.gauge("ulpdp_agg_sketch_bytes",
                  "Merged sketch counter footprint",
                  "bytes", labels)
            .set(static_cast<double>(res.agg->sketch.bytes()));
        reg.gauge("ulpdp_agg_heavy_hitters",
                  "Heavy-hitter slots reported by the last epoch",
                  "slots", labels)
            .set(static_cast<double>(res.agg->heavy.size()));
        reg.gauge("ulpdp_agg_boundary_mass",
                  "Observed report fraction on the window-edge slots",
                  "fraction", labels)
            .set(res.agg->decoded.boundary_mass_observed);
        reg.histogram("ulpdp_agg_decode_seconds",
                      "Post-merge channel-inversion decode latency",
                      "seconds",
                      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0},
                      labels)
            .observe(res.agg->decode_seconds);
    }
}

} // anonymous namespace

const char *
cohortMechanismName(CohortMechanism m)
{
    switch (m) {
      case CohortMechanism::Ideal:
        return "Ideal Local DP";
      case CohortMechanism::Naive:
        return "FxP HW Baseline";
      case CohortMechanism::Resampling:
        return "Resampling";
      case CohortMechanism::Thresholding:
        return "Thresholding";
      case CohortMechanism::BoundedLaplace:
        return "Bounded Laplace";
      case CohortMechanism::DiscreteLaplace:
        return "Discrete Laplace";
    }
    panic("cohortMechanismName: invalid mechanism");
}

const char *
cohortMechanismRegistryName(CohortMechanism m)
{
    switch (m) {
      case CohortMechanism::Ideal:
      case CohortMechanism::Naive:
        return nullptr;
      case CohortMechanism::Resampling:
        return "resampling";
      case CohortMechanism::Thresholding:
        return "thresholding";
      case CohortMechanism::BoundedLaplace:
        return "bounded-laplace";
      case CohortMechanism::DiscreteLaplace:
        return "discrete-laplace";
    }
    panic("cohortMechanismRegistryName: invalid mechanism");
}

/**
 * Everything a worker needs about one cohort, resolved once on the
 * main thread: grid indices, window, threshold, affordable report
 * count, the prototype RNG whose enumerated table every per-block
 * copy shares read-only, and the exact loss verdict.
 */
struct FleetRunner::CohortPlan
{
    /**
     * The cohort's mechanism, resolved through the registry before
     * any member that depends on the resolved parameter block (the
     * prototype RNG is member-initialized from it, so bounded-Laplace
     * scale corrections and discrete-Laplace rounding modes are in
     * effect from the first enumeration).
     */
    struct Mech
    {
        /** Resolved parameters (lambda_scale / rounding applied). */
        FxpMechanismParams params;

        /** Registry name; empty for the two non-registered legacy
         *  settings (Ideal, Naive). */
        std::string registry_name;

        /** Display label for reports. */
        std::string label;

        /** Effective enum value (best effort for registry names
         *  without an enum mirror). */
        CohortMechanism mech_enum = CohortMechanism::Thresholding;

        /** Window half-extension T in Delta units. */
        int64_t threshold = 0;

        /** Hot-loop execution shape (MechanismLowering). */
        bool truncated = false;
        bool clamp = false;

        /** Legacy settings outside the registry. */
        bool ideal = false;
        bool naive = false;
    };

    static Mech resolveMechanism(const CohortConfig &c);

    CohortPlan(const CohortConfig &c, uint32_t cohort_index)
        : CohortPlan(c, cohort_index, resolveMechanism(c))
    {}

    CohortPlan(const CohortConfig &c, uint32_t cohort_index, Mech m)
        : cfg(c), index(cohort_index), mech(std::move(m)),
          proto(mech.params.rngConfig(), /*seed=*/1)
    {
        nodes = cfg.values.empty()
            ? cfg.nodes
            : static_cast<uint64_t>(cfg.values.size());
        if (nodes == 0)
            fatal("FleetRunner: cohort '%s' has no nodes (set nodes "
                  "or provide values)", cfg.name.c_str());
        if (cfg.reports_per_node == 0)
            fatal("FleetRunner: cohort '%s': reports_per_node must "
                  "be positive", cfg.name.c_str());

        delta = proto.quantizer().delta();
        lo_index = static_cast<int64_t>(
            std::llround(cfg.params.range.lo / delta));
        hi_index = static_cast<int64_t>(
            std::llround(cfg.params.range.hi / delta));
        mid_value = 0.5 * (cfg.params.range.lo + cfg.params.range.hi);
        lambda = mech.params.lambda();

        // Every registered mechanism guarantees the loss_multiple *
        // eps per-query bound (that is what certification enforces);
        // only the legacy uncontrolled settings charge plain eps.
        const bool controlled = !mech.ideal && !mech.naive;
        threshold = mech.threshold;
        win_lo = lo_index - threshold;
        win_hi = hi_index + threshold;

        // Worst-case flat charge per fresh report (never undercharges,
        // and the affordable count needs no randomness to evaluate).
        per_report_charge = controlled
            ? cfg.loss_multiple * cfg.params.epsilon
            : cfg.params.epsilon;
        fresh_per_node = cfg.reports_per_node;
        if (cfg.budget_per_node > 0.0) {
            uint32_t f = 0;
            double remaining = cfg.budget_per_node;
            while (f < cfg.reports_per_node &&
                   budgetCovers(remaining, per_report_charge)) {
                remaining -= per_report_charge;
                ++f;
            }
            fresh_per_node = f;
        }

        // Synthetic-data shape defaults: centered, range/6 std.
        data_mean = cfg.data_mean_set
            ? cfg.data_mean
            : mid_value;
        data_std = cfg.data_std > 0.0
            ? cfg.data_std
            : cfg.params.range.length() / 6.0;

        // Released-value histogram: the exact window for controlled
        // mechanisms, a generous +-2 lambda apron otherwise (the
        // under/overflow buckets catch the rest).
        double ext = controlled
            ? static_cast<double>(threshold) * delta
            : 2.0 * lambda;
        hist_lo = cfg.params.range.lo - ext;
        hist_hi = cfg.params.range.hi + ext;

        // Enumerate the sampling table once, before any worker copies
        // the prototype: every copy then shares it read-only. The
        // shared handle also feeds the batch sampling layer, so the
        // whole fleet references one enumeration.
        if (!mech.ideal)
            table = proto.sharedTable();
        batch_ok = table != nullptr && fresh_per_node > 0;

        worst_loss = cfg.params.epsilon;
        ldp = true;
        if (cfg.analyze_loss && !mech.ideal) {
            LossReport rep;
            if (mech.naive) {
                ThresholdCalculator calc(cfg.params);
                NaiveOutputModel model(calc.pmf(), calc.span());
                rep = PrivacyLossAnalyzer::analyze(model);
            } else {
                rep = PrivacyLossAnalyzer::analyze(*outputModel());
            }
            worst_loss = rep.bounded
                ? rep.worst_case_loss
                : std::numeric_limits<double>::infinity();
            double bound =
                cfg.loss_multiple * cfg.params.epsilon + 1e-9;
            ldp = rep.bounded && rep.worst_case_loss <= bound;
        } else if (mech.naive) {
            worst_loss = std::numeric_limits<double>::infinity();
            ldp = false;
        }

        // Streaming aggregation: resolve the sketch window from the
        // mechanism's exact output model and precompute the unbiased
        // channel-inversion decoder, once, on the main thread. Ideal
        // cohorts have no output grid and skip the layer.
        if (cfg.agg.enabled && !mech.ideal) {
            std::unique_ptr<DiscreteOutputModel> model;
            if (mech.naive) {
                ThresholdCalculator calc(cfg.params);
                model = std::make_unique<NaiveOutputModel>(
                    calc.pmf(), calc.span());
            } else {
                model = outputModel();
            }
            decoder =
                std::make_shared<agg::FrequencyDecoder>(*model);
            agg_out_lo = lo_index + model->outputLo();
            agg_span = decoder->numOutputs();
            agg_rows = cfg.agg.per_trial ? cfg.reports_per_node : 1;
            agg_on = true;
        } else if (cfg.agg.enabled) {
            warn("FleetRunner: cohort '%s': streaming aggregation "
                 "has no output grid under the Ideal mechanism; "
                 "disabled", cfg.name.c_str());
        }
    }

    /**
     * The exact conditional output model of a registry-selected
     * mechanism, built from the registered factory (never called for
     * Ideal/Naive). Passing the already-resolved threshold back
     * through the spec skips a second exact-index search.
     */
    std::unique_ptr<DiscreteOutputModel>
    outputModel() const
    {
        MechanismSpec spec;
        spec.params = cfg.params;
        spec.loss_multiple = cfg.loss_multiple;
        spec.threshold_index = threshold;
        return MechanismRegistry::instance()
            .at(mech.registry_name).model(spec);
    }

    uint64_t
    numBlocks(uint32_t block_nodes) const
    {
        return (nodes + block_nodes - 1) / block_nodes;
    }

    CohortConfig cfg;
    uint32_t index;
    /** Registry-resolved mechanism (declared before `proto`: the
     *  prototype RNG is built from the resolved parameter block). */
    Mech mech;
    FxpLaplaceRng proto;
    /** Shared sampling-table handle (nullptr when no fast path). */
    std::shared_ptr<const LaplaceSampleTable> table;
    /** Whether blocks ride the 16-lane batch path. */
    bool batch_ok = false;
    uint64_t nodes = 0;
    double delta = 1.0;
    int64_t lo_index = 0;
    int64_t hi_index = 0;
    int64_t threshold = 0;
    int64_t win_lo = 0;
    int64_t win_hi = 0;
    double mid_value = 0.0;
    double lambda = 1.0;
    double data_mean = 0.0;
    double data_std = 1.0;
    double hist_lo = 0.0;
    double hist_hi = 1.0;
    uint32_t fresh_per_node = 0;
    /** Worst-case loss one fresh report is metered at (epoch-ledger
     *  journaling uses the same bound: never undercharges). */
    double per_report_charge = 0.0;
    double worst_loss = 0.0;
    bool ldp = false;

    /** Streaming aggregation (resolved from cfg.agg; off for Ideal). */
    bool agg_on = false;
    /** Absolute output grid index of sketch slot 0. */
    int64_t agg_out_lo = 0;
    /** Output slots per trial row. */
    size_t agg_span = 0;
    /** Trial rows in the slot array (reports_per_node if per-trial). */
    uint32_t agg_rows = 1;
    /** Shared precomputed channel pseudo-inverse. */
    std::shared_ptr<const agg::FrequencyDecoder> decoder;
};

FleetRunner::CohortPlan::Mech
FleetRunner::CohortPlan::resolveMechanism(const CohortConfig &c)
{
    if (!(c.params.epsilon > 0.0))
        fatal("FleetRunner: cohort '%s': epsilon must be "
              "positive, got %g", c.name.c_str(),
              c.params.epsilon);

    Mech m;
    m.params = c.params;
    m.mech_enum = c.mechanism;

    // Name-based selection wins when set; otherwise the enum maps to
    // its registry name (Ideal/Naive have none and stay legacy).
    std::string name = c.mechanism_name;
    if (name.empty()) {
        const char *n = cohortMechanismRegistryName(c.mechanism);
        if (n == nullptr) {
            m.ideal = c.mechanism == CohortMechanism::Ideal;
            m.naive = c.mechanism == CohortMechanism::Naive;
            m.label = cohortMechanismName(c.mechanism);
            return m;
        }
        name = n;
    }

    const MechanismRegistry::Entry *entry =
        MechanismRegistry::instance().find(name);
    if (entry == nullptr) {
        std::string known;
        for (const std::string &k :
                 MechanismRegistry::instance().names()) {
            if (!known.empty())
                known += ", ";
            known += k;
        }
        fatal("FleetRunner: cohort '%s': unknown mechanism '%s' "
              "(registered: %s)", c.name.c_str(), name.c_str(),
              known.c_str());
    }
    if (!entry->lower)
        fatal("FleetRunner: cohort '%s': mechanism '%s' has no "
              "fleet lowering (it cannot run on the batch hot "
              "loop); pick one advertising the batch capability",
              c.name.c_str(), name.c_str());

    MechanismSpec spec;
    spec.params = c.params;
    spec.loss_multiple = c.loss_multiple;
    spec.threshold_index = c.threshold_index;
    MechanismLowering low = entry->lower(spec);
    m.params = low.params;
    m.registry_name = name;
    m.threshold = low.threshold_index;
    m.truncated = low.truncated;
    m.clamp = low.clamp;

    // Mirror known registry names back onto the enum so downstream
    // consumers switching on CohortResult::mechanism see the truth;
    // future names without an enum value keep the honest label.
    if (name == "resampling")
        m.mech_enum = CohortMechanism::Resampling;
    else if (name == "thresholding")
        m.mech_enum = CohortMechanism::Thresholding;
    else if (name == "bounded-laplace")
        m.mech_enum = CohortMechanism::BoundedLaplace;
    else if (name == "discrete-laplace")
        m.mech_enum = CohortMechanism::DiscreteLaplace;
    else
        m.mech_enum = c.mechanism;
    const char *canon = cohortMechanismRegistryName(m.mech_enum);
    m.label = (canon != nullptr && name == canon)
        ? cohortMechanismName(m.mech_enum)
        : name;
    return m;
}

/**
 * Worker-slot scratch that persists across blocks and epochs: the
 * steady-state hot loop allocates nothing and clones nothing.
 *
 * The cached FxpLaplaceRng clone and BatchSampler are keyed by cohort
 * index; both are rebuilt only on a cohort switch (or after an
 * integrity fault poisons the RNG clone). The BatchSampler is the
 * only object that holds the cohort table's shared_ptr -- taking that
 * copy once per cohort switch instead of once per block keeps the
 * control block's refcount line out of the cross-core traffic that
 * serialized PR 3's hot loop. A reused clone is indistinguishable
 * from a fresh one: streams are reseeded per node and counters are
 * read as per-block deltas.
 *
 * The 64-byte alignment keeps one worker's telemetry deltas
 * (fallbacks/clones, bumped per block) off its neighbours' lines.
 */
struct alignas(64) FleetRunner::WorkerScratch
{
    /**
     * One cohort's private aggregation shard: the worker's mergeable
     * sketch plus the per-block slot-count delta buffer the hot loop
     * bumps. The delta is folded into the sketch only when a block
     * completes, mirroring the BlockAccum discard protocol -- a batch
     * integrity bail rezeroes the delta before the scalar redo, so a
     * redone block can never double-count. Heap-owned per cohort, so
     * one slab's counters never share a line with another worker's.
     */
    struct AggSlab
    {
        agg::CohortSketch sketch;
        std::vector<uint64_t> delta;
        /** Reports whose output index missed the sketch window. */
        uint64_t dropped = 0;
    };

    std::vector<int64_t> noise;  // scalar path, one node's batch
    std::vector<int64_t> rect;   // batch path, trial-major noise
    std::vector<BatchSampler::Window> windows =
        std::vector<BatchSampler::Window>(TausBank::kMaxLanes);
    std::optional<FxpLaplaceRng> rng;
    uint32_t rng_cohort = 0;
    std::optional<BatchSampler> sampler;
    uint32_t sampler_cohort = 0;
    /** Per-cohort aggregation shards (null for agg-off cohorts);
     *  cleared per epoch, merged post-epoch in worker-index order. */
    std::vector<std::unique_ptr<AggSlab>> agg;
    /** Per-epoch telemetry deltas, flushed by the main thread after
     *  the merge (never a shared atomic on the hot path). */
    uint64_t clones = 0;
    uint64_t fallbacks = 0;
};

namespace {

/** Private accumulation slab of one block. One thread writes it; the
 *  main thread merges slabs in block-index order afterwards. The
 *  64-byte alignment keeps the hot tail counters of adjacent slabs in
 *  a vector off each other's cache lines -- without it, two workers
 *  finishing neighbouring blocks ping-pong the boundary line on every
 *  counter bump. */
struct alignas(64) BlockAccum
{
    BlockAccum(double hist_lo, double hist_hi, size_t bins,
               uint32_t reports_per_node)
        : hist(hist_lo, hist_hi, bins),
          trial_sum(reports_per_node, 0.0)
    {}

    Histogram hist;
    RunningStats released;
    RunningStats error;
    RunningStats true_vals;
    std::vector<double> trial_sum;
    uint64_t samples = 0;
    uint64_t overflows = 0;
    uint64_t fresh = 0;
    uint64_t replays = 0;
    uint64_t exhausted = 0;
    uint64_t integrity = 0;
    uint64_t checksum = 0;
};

/** One claimable unit of work: a block of consecutive nodes. */
struct WorkItem
{
    uint32_t cohort;
    uint64_t node_lo;
    uint64_t node_hi;
    BlockAccum *accum;
};

/**
 * One worker's claimable range of block indices [next, end). Owners
 * claim adaptive chunks from their own queue (an uncontended RMW on a
 * line no other core touches in the common case); thieves claim
 * single blocks once their own queue is dry. fetch_add past `end` is
 * benign -- the claimer sees an out-of-range index and moves on.
 * Padded so queues in a vector never share a cache line (the shared
 * single claim counter was one of PR 3's serialization points).
 */
struct alignas(64) WorkQueue
{
    std::atomic<uint64_t> next{0};
    uint64_t end = 0;
    /** Owner's claim chunk: large enough to amortize the RMW, small
     *  enough to leave steals for ragged tails. */
    uint64_t chunk = 1;

    bool looksEmpty() const
    {
        return next.load(std::memory_order_relaxed) >= end;
    }
};

/** Deterministic per-node true reading (clipped Gaussian via
 *  Box-Muller on the node's data substream). */
double
synthValue(uint64_t data_seed, double mu, double sigma, double lo,
           double hi)
{
    uint64_t a = FleetSeeder::mix64(data_seed + kNodeKey);
    uint64_t b = FleetSeeder::mix64(data_seed + 2 * kNodeKey);
    double u1 = unitFromWord(a);
    double u2 = unitFromWord(b);
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return std::clamp(mu + sigma * z, lo, hi);
}

} // anonymous namespace

std::vector<double>
CohortResult::trialReports(uint32_t trial) const
{
    ULPDP_ASSERT(!matrix.empty());
    ULPDP_ASSERT(static_cast<uint64_t>(trial) * nodes + nodes <=
                 matrix.size());
    auto first = matrix.begin() +
                 static_cast<ptrdiff_t>(trial * nodes);
    return std::vector<double>(first,
                               first + static_cast<ptrdiff_t>(nodes));
}

double
FleetReport::reportsPerSecond() const
{
    return seconds > 0.0
        ? static_cast<double>(total_reports) / seconds
        : 0.0;
}

uint64_t
FleetReport::fingerprint() const
{
    uint64_t acc = 0x1ee75a7e5eedULL;
    for (const CohortResult &c : cohorts) {
        acc = FleetSeeder::mix64(acc ^ c.checksum);
        acc = foldStats(acc, c.released_stats);
        acc = foldStats(acc, c.error_stats);
        acc = foldStats(acc, c.true_stats);
        for (size_t i = 0; i < c.released_hist.numBins(); ++i)
            acc = FleetSeeder::mix64(acc ^ c.released_hist.count(i));
        acc = FleetSeeder::mix64(acc ^ c.released_hist.underflow());
        acc = FleetSeeder::mix64(acc ^ c.released_hist.overflow());
        for (double e : c.trial_estimate)
            acc = FleetSeeder::mix64(acc ^ doubleBits(e));
        uint64_t counters[6] = {c.samples_drawn, c.resample_overflows,
                                c.fresh_reports, c.cache_replays,
                                c.nodes_exhausted,
                                c.rng_integrity_detections};
        acc = foldBytes(acc, counters, sizeof counters);
        // Streaming-aggregation state extends the fingerprint only
        // for cohorts that opted in, so agg-off runs keep their
        // committed baseline fingerprints bit for bit.
        if (c.agg) {
            for (uint64_t s : c.agg->sketch.slots())
                acc = FleetSeeder::mix64(acc ^ s);
            acc = FleetSeeder::mix64(acc ^ c.agg->sketch.total());
            acc = FleetSeeder::mix64(acc ^ c.agg->dropped);
            for (double v : c.agg->decoded.counts)
                acc = FleetSeeder::mix64(acc ^ doubleBits(v));
            uint64_t moments[5] = {
                doubleBits(c.agg->decoded.mean),
                doubleBits(c.agg->decoded.variance),
                doubleBits(c.agg->decoded.median),
                doubleBits(c.agg->decoded.boundary_mass_observed),
                doubleBits(c.agg->decoded.boundary_mass_expected)};
            acc = foldBytes(acc, moments, sizeof moments);
            for (const agg::HeavyHitter &h : c.agg->heavy) {
                acc = FleetSeeder::mix64(acc ^ h.item);
                acc = FleetSeeder::mix64(acc ^ h.estimate);
            }
        }
    }
    return acc;
}

FleetRunner::FleetRunner(FleetConfig config)
    : config_(std::move(config)), seeder_(config_.master_seed)
{
    if (config_.cohorts.empty())
        fatal("FleetRunner: configuration has no cohorts");
    if (config_.block_nodes == 0)
        fatal("FleetRunner: block_nodes must be positive");
    plans_.reserve(config_.cohorts.size());
    for (size_t i = 0; i < config_.cohorts.size(); ++i)
        plans_.emplace_back(config_.cohorts[i],
                            static_cast<uint32_t>(i));
}

FleetRunner::~FleetRunner() = default;

unsigned
FleetRunner::hardwareThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

namespace {
std::atomic<bool> g_force_scalar_blocks{false};
} // anonymous namespace

void
FleetRunner::forceScalarBlocks(bool on)
{
    g_force_scalar_blocks.store(on, std::memory_order_relaxed);
}

FleetReport
FleetRunner::run(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = hardwareThreads();

    // Per-cohort block slabs, pre-sized so workers never allocate
    // shared state; materialized matrices likewise (each block writes
    // disjoint columns).
    std::vector<std::vector<BlockAccum>> accums(plans_.size());
    std::vector<std::vector<double>> matrices(plans_.size());
    std::vector<WorkItem> items;
    for (size_t c = 0; c < plans_.size(); ++c) {
        CohortPlan &plan = plans_[c];
        uint64_t nblocks = plan.numBlocks(config_.block_nodes);
        accums[c].reserve(nblocks);
        if (plan.cfg.materialize)
            matrices[c].assign(plan.nodes *
                                   plan.cfg.reports_per_node,
                               0.0);
        for (uint64_t b = 0; b < nblocks; ++b) {
            accums[c].emplace_back(plan.hist_lo, plan.hist_hi,
                                   plan.cfg.histogram_bins,
                                   plan.cfg.reports_per_node);
            uint64_t lo = b * config_.block_nodes;
            uint64_t hi = std::min(plan.nodes,
                                   lo + config_.block_nodes);
            items.push_back(WorkItem{static_cast<uint32_t>(c), lo, hi,
                                     &accums[c].back()});
        }
    }

    // One block, start to finish, into its private slab. Which worker
    // runs it (and when) is irrelevant to the result -- everything
    // below depends only on (master seed, cohort, node id) and the
    // static block -> slab mapping.
    auto processBlock = [&](const WorkItem &item, WorkerScratch &ws) {
        constexpr size_t W = TausBank::kMaxLanes;
        std::vector<int64_t> &noise = ws.noise;
        std::vector<int64_t> &rect = ws.rect;
        std::vector<BatchSampler::Window> &windows = ws.windows;
        std::optional<FxpLaplaceRng> &rng = ws.rng;
        uint32_t &rng_cohort = ws.rng_cohort;

        {
            const CohortPlan &plan = plans_[item.cohort];
            const CohortConfig &cfg = plan.cfg;
            BlockAccum &acc = *item.accum;
            double *matrix = cfg.materialize
                ? matrices[item.cohort].data()
                : nullptr;

            const uint32_t R = cfg.reports_per_node;
            const uint32_t fresh = plan.fresh_per_node;
            const bool fxp = !plan.mech.ideal;

            // Streaming aggregation: bump per-block slot deltas in
            // the worker's private buffer and fold them into its
            // sketch only when the block completes (so the batch
            // bail-and-redo protocol cannot double-count). One
            // predictable branch + one counter bump per report when
            // enabled; a never-taken branch when not.
            WorkerScratch::AggSlab *slab = plan.agg_on
                ? ws.agg[item.cohort].get()
                : nullptr;
            uint64_t *agg_delta = nullptr;
            const uint64_t agg_dropped_before =
                slab != nullptr ? slab->dropped : 0;
            if (slab != nullptr) {
                std::fill(slab->delta.begin(), slab->delta.end(),
                          uint64_t(0));
                agg_delta = slab->delta.data();
            }
            const int64_t agg_lo = plan.agg_out_lo;
            const size_t agg_span = plan.agg_span;
            const size_t agg_stride =
                plan.agg_rows > 1 ? agg_span : 0;
            auto aggRecord = [&](uint32_t t, int64_t yi) {
                size_t s = static_cast<size_t>(yi - agg_lo);
                if (s < agg_span) [[likely]] {
                    ++agg_delta[static_cast<size_t>(t) * agg_stride +
                                s];
                } else {
                    ++slab->dropped;
                }
            };
            // Registry-lowered execution shape: the loop never sees
            // the mechanism's name, only these two booleans.
            const bool truncated = plan.mech.truncated;
            const bool clamp = plan.mech.clamp;

            // -- Batch path: fill the 16-lane bank with consecutive
            // nodes and draw every fresh report of the group in one
            // rect. Lane l is bit-identical to the scalar stream of
            // node lo + l, so the accumulation below (still strictly
            // in (node, trial) order) produces the exact scalar
            // numbers.
            if (plan.batch_ok &&
                !g_force_scalar_blocks.load(
                    std::memory_order_relaxed)) {
                // Cohort-cached sampler: constructing one per block
                // copied the table's shared_ptr, and the refcount RMW
                // on that shared control-block line was cross-core
                // traffic on every block claim. The cached instance
                // keeps a stable reference; the hot loop below only
                // ever reads the table through a plain pointer.
                if (!ws.sampler ||
                    ws.sampler_cohort != item.cohort) {
                    ws.sampler.emplace(
                        plan.table,
                        plan.proto.config().uniform_bits,
                        plan.proto.quantizer().maxIndex(),
                        plan.proto.config().integrity_checks);
                    ws.sampler_cohort = item.cohort;
                }
                BatchSampler &bs = *ws.sampler;
                rect.resize(W * static_cast<size_t>(fresh));
                uint64_t seeds[W];
                double xs[W];
                int64_t xis[W];
                bool ok = true;
                for (uint64_t lo = item.node_lo; lo < item.node_hi;
                     lo += W) {
                    size_t lanes = static_cast<size_t>(
                        std::min<uint64_t>(W, item.node_hi - lo));
                    for (size_t l = 0; l < lanes; ++l) {
                        uint64_t node = lo + l;
                        seeds[l] =
                            seeder_.nodeSeed(plan.index, node);
                        xs[l] = cfg.values.empty()
                            ? synthValue(
                                  FleetSeeder::subSeed(seeds[l],
                                                       kDataSalt),
                                  plan.data_mean, plan.data_std,
                                  cfg.params.range.lo,
                                  cfg.params.range.hi)
                            : cfg.values[node];
                        int64_t xi = static_cast<int64_t>(
                            std::llround(xs[l] / plan.delta));
                        xis[l] = std::clamp(xi, plan.lo_index,
                                            plan.hi_index);
                        if (truncated)
                            windows[l] = {plan.win_lo - xis[l],
                                          plan.win_hi - xis[l]};
                    }
                    bs.seedLanes(seeds, lanes);
                    ok = truncated
                        ? bs.sampleTruncatedRect(windows.data(),
                                                 rect.data(), fresh)
                        : bs.sampleRect(rect.data(), fresh);
                    if (!ok)
                        break;
                    for (size_t l = 0; l < lanes; ++l) {
                        uint64_t node = lo + l;
                        acc.true_vals.add(xs[l]);
                        if (fresh < R)
                            ++acc.exhausted;
                        double last = 0.0;
                        int64_t last_yi = 0;
                        for (uint32_t t = 0; t < R; ++t) {
                            double released;
                            if (t < fresh) {
                                int64_t yi =
                                    xis[l] +
                                    rect[static_cast<size_t>(t) *
                                             lanes + l];
                                if (clamp)
                                    yi = std::clamp(yi, plan.win_lo,
                                                    plan.win_hi);
                                released =
                                    static_cast<double>(yi) *
                                    plan.delta;
                                last = released;
                                last_yi = yi;
                                ++acc.fresh;
                            } else {
                                // Budget exhausted: replay the last
                                // fresh report (fresh >= 1 on this
                                // path, so one always exists).
                                released = last;
                                ++acc.replays;
                            }
                            if (agg_delta != nullptr)
                                aggRecord(t, last_yi);
                            acc.hist.add(released);
                            acc.released.add(released);
                            acc.error.add(released - xs[l]);
                            acc.trial_sum[t] += released;
                            acc.checksum +=
                                reportDigest(node, t, released);
                            if (matrix != nullptr)
                                matrix[static_cast<uint64_t>(t) *
                                           plan.nodes + node] =
                                    released;
                        }
                    }
                    acc.samples += lanes * fresh;
                }
                if (ok) {
                    if (agg_delta != nullptr)
                        slab->sketch.ingestDelta(agg_delta);
                    return;
                }
                // A comparator tripped, or a window holds no URNG
                // state: discard the whole block and redo it scalar.
                // Every node restarts from its seed, so the redo is
                // bit-identical to never having batched, and the
                // scalar integrity path quarantines (or clamps) with
                // the exact per-draw semantics. The agg delta is
                // discarded with the slab for the same reason.
                acc = BlockAccum(plan.hist_lo, plan.hist_hi,
                                 cfg.histogram_bins, R);
                ++ws.fallbacks;
                if (agg_delta != nullptr) {
                    std::fill(slab->delta.begin(), slab->delta.end(),
                              uint64_t(0));
                    slab->dropped = agg_dropped_before;
                }
            }

            // -- Scalar path: Ideal cohorts, fresh == 0 cohorts,
            // tableless configurations, and batch-fallback redos.
            const bool batched = plan.mech.naive || clamp;
            if (fxp && (!rng || rng_cohort != item.cohort ||
                        rng->integrityFault())) {
                rng.emplace(plan.proto);
                rng_cohort = item.cohort;
                ++ws.clones;
            }
            uint64_t drawn_before = 0;
            uint64_t integ_before = 0;
            if (fxp) {
                drawn_before = rng->samplesDrawn();
                integ_before = rng->integrityDetections();
                noise.resize(batched ? fresh : 0);
            }

            for (uint64_t node = item.node_lo; node < item.node_hi;
                 ++node) {
                uint64_t seed = seeder_.nodeSeed(plan.index, node);
                double x = cfg.values.empty()
                    ? synthValue(FleetSeeder::subSeed(seed, kDataSalt),
                                 plan.data_mean, plan.data_std,
                                 cfg.params.range.lo,
                                 cfg.params.range.hi)
                    : cfg.values[node];
                acc.true_vals.add(x);
                if (fresh < R)
                    ++acc.exhausted;

                int64_t xi = 0;
                if (fxp) {
                    xi = static_cast<int64_t>(
                        std::llround(x / plan.delta));
                    xi = std::clamp(xi, plan.lo_index, plan.hi_index);
                    rng->urng() = Tausworthe(seed);
                    if (batched && fresh > 0)
                        rng->sampleBatch(noise.data(), fresh);
                }
                std::optional<IdealLaplace> ideal;
                if (!fxp)
                    ideal.emplace(plan.lambda, seed);

                std::optional<double> cached;
                // Output index mirror of `cached` for the agg slot
                // stream; the midpoint fallback uses the nearest grid
                // slot of the released midpoint value.
                int64_t cached_yi = static_cast<int64_t>(
                    std::llround(plan.mid_value / plan.delta));
                for (uint32_t t = 0; t < R; ++t) {
                    double released;
                    if (t < fresh) {
                        if (batched) {
                            int64_t yi = xi + noise[t];
                            if (clamp)
                                yi = std::clamp(yi, plan.win_lo,
                                                plan.win_hi);
                            released = static_cast<double>(yi) *
                                       plan.delta;
                            cached_yi = yi;
                        } else if (fxp) {
                            // drawConfinedOutput's samples out-param
                            // is per-request (it assigns); the block
                            // total comes from samplesDrawn() below.
                            uint64_t scratch = 0;
                            int64_t yi = drawConfinedOutput(
                                *rng, RangeControl::Resampling, xi,
                                plan.win_lo, plan.win_hi,
                                uint64_t{1} << 20, scratch,
                                acc.overflows, "FleetRunner");
                            released = static_cast<double>(yi) *
                                       plan.delta;
                            cached_yi = yi;
                        } else {
                            released = x + ideal->sample();
                            ++acc.samples;
                        }
                        cached = released;
                        ++acc.fresh;
                    } else {
                        // Budget exhausted: replay the cached report
                        // (a function of already-released data; zero
                        // additional loss), or the range midpoint
                        // when nothing was ever released.
                        released =
                            cached ? *cached : plan.mid_value;
                        ++acc.replays;
                    }
                    if (agg_delta != nullptr)
                        aggRecord(t, cached_yi);
                    acc.hist.add(released);
                    acc.released.add(released);
                    acc.error.add(released - x);
                    acc.trial_sum[t] += released;
                    acc.checksum += reportDigest(node, t, released);
                    if (matrix != nullptr)
                        matrix[static_cast<uint64_t>(t) * plan.nodes +
                               node] = released;
                }
            }
            if (fxp) {
                acc.samples += rng->samplesDrawn() - drawn_before;
                acc.integrity +=
                    rng->integrityDetections() - integ_before;
            }
            if (agg_delta != nullptr)
                slab->sketch.ingestDelta(agg_delta);
        }
    };

    unsigned spawn = static_cast<unsigned>(
        std::min<size_t>(num_threads, items.size()));
    if (spawn == 0)
        spawn = 1;

    // Per-worker work queues: contiguous block-index ranges, claimed
    // chunk-wise by their owner and block-wise by thieves. The
    // contiguous split keeps one worker walking consecutive slabs
    // (prefetch-friendly) and makes the common claim an RMW on a line
    // only the owner touches.
    std::vector<WorkQueue> queues(spawn);
    for (unsigned w = 0; w < spawn; ++w) {
        uint64_t lo = static_cast<uint64_t>(items.size()) * w / spawn;
        uint64_t hi =
            static_cast<uint64_t>(items.size()) * (w + 1) / spawn;
        queues[w].next.store(lo, std::memory_order_relaxed);
        queues[w].end = hi;
        queues[w].chunk = std::max<uint64_t>(1, (hi - lo) / 8);
    }

    auto job = [&](unsigned w) {
        WorkerScratch &ws = *scratch_[w];
        WorkQueue &own = queues[w];
        for (;;) {
            uint64_t i =
                own.next.fetch_add(own.chunk,
                                   std::memory_order_relaxed);
            if (i >= own.end)
                break;
            uint64_t hi = std::min(i + own.chunk, own.end);
            for (; i < hi; ++i)
                processBlock(items[i], ws);
        }
        // Own queue dry: steal single blocks until a full sweep of
        // the other queues finds nothing. Stealing only moves blocks
        // between workers; the block -> slab mapping is untouched.
        for (bool stole = true; stole && spawn > 1;) {
            stole = false;
            for (unsigned v = 1; v < spawn; ++v) {
                WorkQueue &q = queues[(w + v) % spawn];
                if (q.looksEmpty())
                    continue;
                uint64_t i =
                    q.next.fetch_add(1, std::memory_order_relaxed);
                if (i >= q.end)
                    continue;
                processBlock(items[i], ws);
                stole = true;
            }
        }
    };

    // Everything below this comment and above the t0 stamp is epoch
    // setup that must never be timed: growing the parked pool to the
    // requested width (first epoch only), growing the per-worker
    // scratch slots, and materializing the type-erased job the pool
    // dispatches.
    if (spawn > 1)
        pool_.reserve(spawn - 1);
    while (scratch_.size() < spawn)
        scratch_.push_back(std::make_unique<WorkerScratch>());
    for (unsigned w = 0; w < spawn; ++w) {
        WorkerScratch &ws = *scratch_[w];
        ws.fallbacks = 0;
        ws.clones = 0;
        // Aggregation shards: allocate once per (worker, cohort) --
        // sized by the plan, so epoch reuse only zeroes counters --
        // and always reset before the timer starts. Only the first
        // `spawn` scratch slots are merged below, so slots left over
        // from a wider earlier epoch cannot leak stale counts.
        if (ws.agg.size() < plans_.size())
            ws.agg.resize(plans_.size());
        for (size_t c = 0; c < plans_.size(); ++c) {
            const CohortPlan &plan = plans_[c];
            if (!plan.agg_on)
                continue;
            auto &slab = ws.agg[c];
            if (!slab) {
                slab = std::make_unique<WorkerScratch::AggSlab>();
                slab->sketch = agg::CohortSketch(
                    plan.cfg.agg, plan.agg_span, plan.agg_rows,
                    static_cast<double>(plan.agg_out_lo) * plan.delta,
                    plan.delta);
                slab->delta.assign(slab->sketch.slotCells(), 0);
            } else {
                slab->sketch.clear();
            }
            slab->dropped = 0;
        }
    }
    std::function<void(unsigned)> job_fn = job;

    auto t0 = std::chrono::steady_clock::now();
    pool_.dispatch(spawn, job_fn);
    auto t1 = std::chrono::steady_clock::now();

    // Per-worker telemetry deltas, summed post-epoch on the main
    // thread (the pool's dispatch handshake orders the reads after
    // every worker's writes).
    uint64_t batch_fallbacks = 0;
    uint64_t rng_clones = 0;
    for (unsigned w = 0; w < spawn; ++w) {
        batch_fallbacks += scratch_[w]->fallbacks;
        rng_clones += scratch_[w]->clones;
    }

    // Merge the block slabs in block-index order -- the fixed merge
    // tree that makes the floating-point results independent of which
    // thread ran which block.
    FleetReport report;
    report.threads = spawn;
    report.seconds =
        std::chrono::duration<double>(t1 - t0).count();
    for (size_t c = 0; c < plans_.size(); ++c) {
        const CohortPlan &plan = plans_[c];
        CohortResult res(Histogram(plan.hist_lo, plan.hist_hi,
                                   plan.cfg.histogram_bins));
        res.name = plan.cfg.name;
        res.mechanism = plan.mech.mech_enum;
        res.mechanism_label = plan.mech.label;
        res.nodes = plan.nodes;
        res.trial_estimate.assign(plan.cfg.reports_per_node, 0.0);
        for (const BlockAccum &acc : accums[c]) {
            res.released_hist.merge(acc.hist);
            res.released_stats.merge(acc.released);
            res.error_stats.merge(acc.error);
            res.true_stats.merge(acc.true_vals);
            for (size_t t = 0; t < res.trial_estimate.size(); ++t)
                res.trial_estimate[t] += acc.trial_sum[t];
            res.samples_drawn += acc.samples;
            res.resample_overflows += acc.overflows;
            res.fresh_reports += acc.fresh;
            res.cache_replays += acc.replays;
            res.nodes_exhausted += acc.exhausted;
            res.rng_integrity_detections += acc.integrity;
            res.checksum += acc.checksum;
        }
        res.reports = res.fresh_reports + res.cache_replays;
        for (double &e : res.trial_estimate)
            e /= static_cast<double>(plan.nodes);

        RunningStats abs_err;
        for (double e : res.trial_estimate)
            abs_err.add(std::abs(e - res.trueMean()));
        res.mean_mae = abs_err.mean();
        res.mean_mae_std = abs_err.stddev();

        res.worst_loss = plan.worst_loss;
        res.ldp = plan.ldp;
        res.matrix = std::move(matrices[c]);
        report.total_reports += res.reports;

        // Streaming aggregation: merge the worker shards (worker
        // index order by repo convention, though the all-integer
        // sketch state makes the merge order-free), scan the heavy
        // hitters, and run the unbiased channel-inversion decode.
        // Main thread, post-parallel-section: the decode never sits
        // on the ingest hot path.
        if (plan.agg_on) {
            auto ar = std::make_shared<CohortAggResult>();
            ar->sketch = agg::CohortSketch(
                plan.cfg.agg, plan.agg_span, plan.agg_rows,
                static_cast<double>(plan.agg_out_lo) * plan.delta,
                plan.delta);
            for (unsigned w = 0; w < spawn; ++w) {
                const auto &slab = scratch_[w]->agg[c];
                if (slab) {
                    ar->sketch.merge(slab->sketch);
                    ar->dropped += slab->dropped;
                }
            }
            if (plan.cfg.agg.heavy_hitters > 0) {
                ar->heavy = agg::topK(ar->sketch.cm(),
                                      ar->sketch.span(),
                                      plan.cfg.agg.heavy_hitters);
            }
            ar->decoder = plan.decoder;
            ar->input_value0 =
                static_cast<double>(plan.lo_index) * plan.delta;
            ar->delta = plan.delta;
            auto d0 = std::chrono::steady_clock::now();
            ar->decoded = plan.decoder->decode(
                ar->sketch.slotTotals(), ar->input_value0,
                plan.delta);
            ar->decode_seconds = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - d0).count();
            res.agg = std::move(ar);
        }
        if (telemetry::enabled())
            publishCohort(res);

        // Durable epoch accounting: journal the cohort's worst-case
        // loss (fresh reports x the flat metering bound -- never an
        // undercharge) and seal the epoch with a checkpoint. Main
        // thread, post-merge: the FleetReport and its fingerprint are
        // already final, so a ledger cannot move a bit of them.
        if (config_.epoch_ledger != nullptr &&
            res.fresh_reports > 0) {
            double charged = static_cast<double>(res.fresh_reports) *
                             plan.per_report_charge;
            if (!config_.epoch_ledger->journalSpend(charged))
                warn("FleetRunner: epoch ledger append failed for "
                     "cohort '%s'", res.name.c_str());
        }
        report.cohorts.push_back(std::move(res));
    }
    if (config_.epoch_ledger != nullptr)
        config_.epoch_ledger->commitCheckpoint(
            config_.epoch_ledger->remaining(),
            config_.epoch_ledger->cache());
    if (telemetry::enabled()) {
        FleetMetrics &m = fleetMetrics();
        m.runs.inc();
        m.threads.set(static_cast<double>(report.threads));
        m.throughput.set(report.reportsPerSecond());
        m.seconds.observe(report.seconds);
        // Batch-layer observability. None of these feed the
        // FleetReport or its fingerprint: the determinism contract is
        // about the merged result, not about which path produced it.
        m.batch_lanes.set(
            static_cast<double>(TausBank::kMaxLanes));
        m.batch_prefetch.set(
            static_cast<double>(TausBank::kMaxLanes));
        m.batch_fallbacks.inc(batch_fallbacks);
        m.rng_clones.inc(rng_clones);
    }
    return report;
}

} // namespace ulpdp
