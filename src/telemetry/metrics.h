/**
 * @file
 * Lock-free metrics primitives and the MetricRegistry.
 *
 * Finite-precision DP failures are silent by construction: a device
 * that leaks (a glitched replenishment timer refilling budget early,
 * a resampling window with no reachable URNG state, a stuck noise
 * source) produces outputs that *look* perfectly normal. The only
 * witnesses are the counters the fail-secure machinery already keeps
 * -- budget spend, halt/replay rates, fault detections, resample
 * overflows -- so those counters must be first-class, exported, and
 * cheap enough to leave on in production. This header provides the
 * substrate:
 *
 *  - Counter: monotone uint64, one relaxed fetch_add per event.
 *  - Sum: monotone double (privacy loss is measured in nats, not
 *    events), relaxed compare-exchange add.
 *  - Gauge: last-written double (throughput, remaining budget).
 *  - LatencyHistogram: fixed cumulative buckets ("le" semantics,
 *    Prometheus-compatible), one relaxed fetch_add per observation
 *    plus a Sum for the running total.
 *  - ScopedTimer: RAII wall-clock timer observing into a histogram.
 *  - MetricRegistry: names, units, help text and label sets, keyed by
 *    (name, labels). Registration is mutex-guarded (cold path);
 *    recording on a registered metric touches only relaxed atomics
 *    (hot path -- no locks, safe from any thread).
 *
 * Every exported series is documented in docs/METRICS.md with the
 * paper invariant it witnesses; exporters live in telemetry/export.h.
 */

#ifndef ULPDP_TELEMETRY_METRICS_H
#define ULPDP_TELEMETRY_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ulpdp {

/** Exported metric flavour (drives the Prometheus TYPE line). */
enum class MetricType : uint8_t
{
    Counter,
    Gauge,
    Histogram,
};

/** Monotone event counter; inc() is one relaxed fetch_add. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1) noexcept
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const noexcept
    {
        return v_.load(std::memory_order_relaxed);
    }

    /** Tests and epoch-scoped registries only; never production. */
    void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Monotone double accumulator (budget spend in nats). */
class Sum
{
  public:
    void
    add(double d) noexcept
    {
        double cur = v_.load(std::memory_order_relaxed);
        while (!v_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
        }
    }

    double
    value() const noexcept
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/** Last-written value (throughput, remaining budget). */
class Gauge
{
  public:
    void
    set(double d) noexcept
    {
        v_.store(d, std::memory_order_relaxed);
    }

    double
    value() const noexcept
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Fixed-bucket latency/size histogram with Prometheus "le" semantics:
 * bucket i counts observations <= bounds[i], cumulative at export
 * time, with an implicit +Inf bucket. Bounds are fixed at
 * registration so observation is one branchless scan (the bucket
 * counts are relaxed atomics -- concurrent observers never lock).
 */
class LatencyHistogram
{
  public:
    /** @param bounds Strictly increasing upper bounds. */
    explicit LatencyHistogram(std::vector<double> bounds);

    /** Record one observation (relaxed; thread-safe). */
    void observe(double v) noexcept;

    /** Upper bounds as registered (without the implicit +Inf). */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Non-cumulative count of bucket @p i; i == bounds().size() is
     *  the +Inf bucket. */
    uint64_t bucketCount(size_t i) const;

    /** Total observations. */
    uint64_t count() const;

    /** Sum of all observed values. */
    double sum() const { return sum_.value(); }

    void reset();

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> counts_; // bounds+1 slots
    Sum sum_;
};

/**
 * RAII scoped timer: observes the elapsed wall-clock seconds into a
 * LatencyHistogram on destruction. Timer values are telemetry, not
 * results -- nothing in any simulation output depends on them, which
 * is how instrumented runs stay bit-identical.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(LatencyHistogram &hist)
        : hist_(&hist), start_(std::chrono::steady_clock::now())
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (hist_ != nullptr)
            hist_->observe(seconds());
    }

    /** Seconds elapsed so far. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Detach: destruction records nothing. */
    void cancel() { hist_ = nullptr; }

  private:
    LatencyHistogram *hist_;
    std::chrono::steady_clock::time_point start_;
};

/** One metric's registration record (immutable after creation). */
struct MetricInfo
{
    std::string name;   ///< Prometheus series name (ulpdp_*).
    std::string labels; ///< Rendered label set, e.g. cohort="a", or "".
    std::string help;   ///< One-line human description.
    std::string unit;   ///< Unit suffix convention ("nats", "cycles").
    MetricType type = MetricType::Counter;
};

/**
 * Owns every metric of one scope (the process-global scope lives in
 * telemetry/telemetry.h; tests build private registries). Metrics are
 * keyed by (name, labels): re-registering an existing key returns the
 * same instance, so instrumentation sites can look up their handles
 * from function-local statics without coordination. Registering one
 * name with two different types panics -- the exposition format
 * cannot represent that.
 */
class MetricRegistry
{
  public:
    MetricRegistry();
    ~MetricRegistry();

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Register (or find) a counter. References stay valid for the
     *  registry's lifetime. */
    Counter &counter(const std::string &name, const std::string &help,
                     const std::string &unit = "",
                     const std::string &labels = "");

    /** Register (or find) a monotone double sum (exported as a
     *  Prometheus counter). */
    Sum &sum(const std::string &name, const std::string &help,
             const std::string &unit = "",
             const std::string &labels = "");

    /** Register (or find) a gauge. */
    Gauge &gauge(const std::string &name, const std::string &help,
                 const std::string &unit = "",
                 const std::string &labels = "");

    /** Register (or find) a histogram; @p bounds must match any
     *  previous registration of the same key. */
    LatencyHistogram &histogram(const std::string &name,
                                const std::string &help,
                                const std::string &unit,
                                std::vector<double> bounds,
                                const std::string &labels = "");

    /** One exported sample, snapshotted for the exporters. */
    struct Sample
    {
        MetricInfo info;

        /** Counter/gauge/sum value (histograms use the fields below). */
        double value = 0.0;

        /** True when value is an exact integer counter. */
        bool integral = false;

        /** Histogram upper bounds (parallel to bucket_counts). */
        std::vector<double> bucket_bounds;

        /** Non-cumulative bucket counts; one extra +Inf slot. */
        std::vector<uint64_t> bucket_counts;
        uint64_t count = 0;
        double sum = 0.0;
    };

    /** Consistent point-in-time view of every metric, in registration
     *  order (exports are deterministic given deterministic
     *  registration order). */
    std::vector<Sample> snapshot() const;

    /** Number of registered metrics. */
    size_t size() const;

    /** Zero every metric (tests / epoch boundaries). */
    void resetAll();

  private:
    struct Entry;
    Entry &find(const std::string &name, const std::string &labels,
                MetricType type);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Entry>> entries_;
};

} // namespace ulpdp

#endif // ULPDP_TELEMETRY_METRICS_H
