/**
 * @file
 * Exporters: Prometheus text exposition and JsonWriter-based JSON.
 *
 * The Prometheus exposition (format version 0.0.4) is what an
 * operator scrapes. ULP deployments have no HTTP server on-device, so
 * the intended pipeline is the node_exporter *textfile collector*
 * pattern: the host-side harness writes the exposition to a .prom
 * file (bench_ext_fleet --prom does exactly that) and node_exporter
 * picks it up. docs/METRICS.md documents every series this emits.
 *
 * The JSON export carries the same snapshot -- plus the event
 * journal, which has no Prometheus representation -- for the
 * BENCH_*.json trajectory and offline audit tooling.
 *
 * Both exporters are deterministic given a deterministic metric
 * registration order (the registry preserves it), which is what the
 * golden-file tests in test_telemetry.cpp pin down.
 */

#ifndef ULPDP_TELEMETRY_EXPORT_H
#define ULPDP_TELEMETRY_EXPORT_H

#include <string>

#include "common/json.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"

namespace ulpdp {
namespace telemetry {

/**
 * Render @p registry in the Prometheus text exposition format:
 * one # HELP / # TYPE pair per metric family, then one sample line
 * per label set (histograms expand into cumulative _bucket lines
 * plus _sum and _count).
 */
std::string toPrometheusText(const MetricRegistry &registry);

/** Write @p registry as a JSON object field "metrics" (an array of
 *  sample objects) into @p json (which must be inside an object). */
void metricsToJson(const MetricRegistry &registry, JsonWriter &json);

/** Write @p journal as a JSON object field "journal" into @p json
 *  (retained events oldest-first plus recorded/dropped totals). */
void journalToJson(const EventJournal &journal, JsonWriter &json);

/**
 * Write the full Prometheus exposition of @p registry to @p path
 * (the textfile-collector handoff). Returns false and warns on I/O
 * failure.
 */
bool writePrometheusFile(const MetricRegistry &registry,
                         const std::string &path);

} // namespace telemetry
} // namespace ulpdp

#endif // ULPDP_TELEMETRY_EXPORT_H
