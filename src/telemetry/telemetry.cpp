#include "telemetry/telemetry.h"

namespace ulpdp {
namespace telemetry {

namespace detail {
std::atomic<bool> enabled_flag{false};
} // namespace detail

MetricRegistry &
registry()
{
    static MetricRegistry reg;
    return reg;
}

EventJournal &
journal()
{
    static EventJournal jnl(1024);
    return jnl;
}

void
setEnabled(bool on)
{
    detail::enabled_flag.store(on, std::memory_order_relaxed);
}

void
reset()
{
    registry().resetAll();
    journal().clear();
}

void
event(EventKind kind, uint64_t tick, double value)
{
    if (!enabled())
        return;
    // One counter per kind, labelled by kind name: the scrapeable
    // aggregate of the journal (which only keeps the newest 1024).
    static Counter *counters[] = {
        &registry().counter("ulpdp_events_total",
                            "Privacy-relevant events by kind",
                            "events",
                            "kind=\"budget_spend\""),
        &registry().counter("ulpdp_events_total",
                            "Privacy-relevant events by kind",
                            "events",
                            "kind=\"halt_replay\""),
        &registry().counter("ulpdp_events_total",
                            "Privacy-relevant events by kind",
                            "events",
                            "kind=\"fault_latch\""),
        &registry().counter("ulpdp_events_total",
                            "Privacy-relevant events by kind",
                            "events",
                            "kind=\"replenish\""),
        &registry().counter("ulpdp_events_total",
                            "Privacy-relevant events by kind",
                            "events",
                            "kind=\"health_alarm\""),
        &registry().counter("ulpdp_events_total",
                            "Privacy-relevant events by kind",
                            "events",
                            "kind=\"bus_degrade\""),
        &registry().counter("ulpdp_events_total",
                            "Privacy-relevant events by kind",
                            "events",
                            "kind=\"resample_overflow\""),
    };
    counters[static_cast<size_t>(kind)]->inc();
    journal().record(kind, tick, value);
}

} // namespace telemetry
} // namespace ulpdp
