#include "telemetry/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace ulpdp {
namespace telemetry {

namespace {

/** Prometheus sample-value rendering: integers exact, doubles %.17g
 *  (the exposition format takes Go-style floats; 17 digits preserve
 *  bit-exactness claims the same way JsonWriter does). */
std::string
promNumber(double v, bool integral)
{
    char buf[40];
    if (integral) {
        std::snprintf(buf, sizeof buf, "%" PRIu64,
                      static_cast<uint64_t>(v));
    } else if (std::isinf(v)) {
        return v > 0 ? "+Inf" : "-Inf";
    } else {
        std::snprintf(buf, sizeof buf, "%.17g", v);
    }
    return buf;
}

const char *
typeName(MetricType t)
{
    switch (t) {
      case MetricType::Counter:
        return "counter";
      case MetricType::Gauge:
        return "gauge";
      case MetricType::Histogram:
        return "histogram";
    }
    panic("typeName: invalid metric type");
}

/** "name{labels}" or "name" when the label set is empty; @p extra
 *  appends one more label (the histogram le). */
std::string
seriesName(const std::string &name, const std::string &labels,
           const std::string &extra = "")
{
    std::string all = labels;
    if (!extra.empty())
        all += all.empty() ? extra : "," + extra;
    return all.empty() ? name : name + "{" + all + "}";
}

} // anonymous namespace

std::string
toPrometheusText(const MetricRegistry &registry)
{
    auto samples = registry.snapshot();
    std::ostringstream out;
    std::set<std::string> described;
    for (const auto &s : samples) {
        // HELP/TYPE once per family, at its first appearance.
        if (described.insert(s.info.name).second) {
            out << "# HELP " << s.info.name << " " << s.info.help;
            if (!s.info.unit.empty())
                out << " (" << s.info.unit << ")";
            out << "\n# TYPE " << s.info.name << " "
                << typeName(s.info.type) << "\n";
        }
        switch (s.info.type) {
          case MetricType::Counter:
          case MetricType::Gauge:
            out << seriesName(s.info.name, s.info.labels) << " "
                << promNumber(s.value, s.integral) << "\n";
            break;
          case MetricType::Histogram: {
            uint64_t cum = 0;
            for (size_t i = 0; i < s.bucket_bounds.size(); ++i) {
                cum += s.bucket_counts[i];
                out << seriesName(s.info.name + "_bucket",
                                  s.info.labels,
                                  "le=\"" +
                                      promNumber(s.bucket_bounds[i],
                                                 false) +
                                      "\"")
                    << " " << cum << "\n";
            }
            cum += s.bucket_counts.back();
            out << seriesName(s.info.name + "_bucket", s.info.labels,
                              "le=\"+Inf\"")
                << " " << cum << "\n";
            out << seriesName(s.info.name + "_sum", s.info.labels)
                << " " << promNumber(s.sum, false) << "\n";
            out << seriesName(s.info.name + "_count", s.info.labels)
                << " " << cum << "\n";
            break;
          }
        }
    }
    return out.str();
}

void
metricsToJson(const MetricRegistry &registry, JsonWriter &json)
{
    auto samples = registry.snapshot();
    json.beginArray("metrics");
    for (const auto &s : samples) {
        json.beginObject();
        json.field("name", s.info.name);
        if (!s.info.labels.empty())
            json.field("labels", s.info.labels);
        json.field("type", typeName(s.info.type));
        if (!s.info.unit.empty())
            json.field("unit", s.info.unit);
        switch (s.info.type) {
          case MetricType::Counter:
          case MetricType::Gauge:
            if (s.integral)
                json.field("value",
                           static_cast<uint64_t>(s.value));
            else
                json.field("value", s.value);
            break;
          case MetricType::Histogram: {
            json.beginArray("le");
            for (double b : s.bucket_bounds)
                json.element(b);
            json.endArray();
            json.beginArray("counts");
            for (uint64_t c : s.bucket_counts)
                json.element(static_cast<double>(c));
            json.endArray();
            json.field("count", s.count);
            json.field("sum", s.sum);
            break;
          }
        }
        json.endObject();
    }
    json.endArray();
}

void
journalToJson(const EventJournal &journal, JsonWriter &json)
{
    json.beginObject("journal");
    json.field("recorded", journal.recorded());
    json.field("dropped", journal.dropped());
    json.field("capacity",
               static_cast<uint64_t>(journal.capacity()));
    json.beginArray("events");
    for (const JournalEvent &ev : journal.snapshot()) {
        json.beginObject();
        json.field("kind", eventKindName(ev.kind));
        json.field("tick", ev.tick);
        json.field("value", ev.value);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

bool
writePrometheusFile(const MetricRegistry &registry,
                    const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        warn("writePrometheusFile: cannot open %s for writing",
             path.c_str());
        return false;
    }
    out << toPrometheusText(registry);
    return static_cast<bool>(out);
}

} // namespace telemetry
} // namespace ulpdp
