#include "telemetry/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace ulpdp {

LatencyHistogram::LatencyHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1])
{
    if (bounds_.empty())
        fatal("LatencyHistogram: need at least one bucket bound");
    for (size_t i = 1; i < bounds_.size(); ++i) {
        if (!(bounds_[i] > bounds_[i - 1]))
            fatal("LatencyHistogram: bounds must be strictly "
                  "increasing (%g then %g)", bounds_[i - 1],
                  bounds_[i]);
    }
    for (size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
LatencyHistogram::observe(double v) noexcept
{
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.add(v);
}

uint64_t
LatencyHistogram::bucketCount(size_t i) const
{
    ULPDP_ASSERT(i <= bounds_.size());
    return counts_[i].load(std::memory_order_relaxed);
}

uint64_t
LatencyHistogram::count() const
{
    uint64_t total = 0;
    for (size_t i = 0; i <= bounds_.size(); ++i)
        total += counts_[i].load(std::memory_order_relaxed);
    return total;
}

void
LatencyHistogram::reset()
{
    for (size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
    sum_.reset();
}

/**
 * One registered metric. Exactly one of the value members is active,
 * selected by info.type (Counter type with integral=false selects
 * the Sum member).
 */
struct MetricRegistry::Entry
{
    MetricInfo info;
    bool integral = false;
    Counter counter;
    Sum sum;
    Gauge gauge;
    std::unique_ptr<LatencyHistogram> hist;
};

MetricRegistry::MetricRegistry() = default;
MetricRegistry::~MetricRegistry() = default;

MetricRegistry::Entry &
MetricRegistry::find(const std::string &name, const std::string &labels,
                     MetricType type)
{
    for (auto &e : entries_) {
        if (e->info.name == name && e->info.labels == labels) {
            if (e->info.type != type)
                panic("MetricRegistry: '%s' re-registered with a "
                      "different type", name.c_str());
            return *e;
        }
        // Same name under different labels must agree on type too --
        // one exposition TYPE line covers the whole family.
        if (e->info.name == name && e->info.type != type)
            panic("MetricRegistry: metric family '%s' mixes types",
                  name.c_str());
    }
    entries_.push_back(std::make_unique<Entry>());
    Entry &e = *entries_.back();
    e.info.name = name;
    e.info.labels = labels;
    e.info.type = type;
    return e;
}

Counter &
MetricRegistry::counter(const std::string &name, const std::string &help,
                        const std::string &unit,
                        const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = find(name, labels, MetricType::Counter);
    if (e.info.help.empty()) {
        e.info.help = help;
        e.info.unit = unit;
        e.integral = true;
    }
    if (!e.integral)
        panic("MetricRegistry: '%s' is a Sum, requested as Counter",
              name.c_str());
    return e.counter;
}

Sum &
MetricRegistry::sum(const std::string &name, const std::string &help,
                    const std::string &unit, const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = find(name, labels, MetricType::Counter);
    if (e.info.help.empty()) {
        e.info.help = help;
        e.info.unit = unit;
        e.integral = false;
    }
    if (e.integral)
        panic("MetricRegistry: '%s' is a Counter, requested as Sum",
              name.c_str());
    return e.sum;
}

Gauge &
MetricRegistry::gauge(const std::string &name, const std::string &help,
                      const std::string &unit,
                      const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = find(name, labels, MetricType::Gauge);
    if (e.info.help.empty()) {
        e.info.help = help;
        e.info.unit = unit;
    }
    return e.gauge;
}

LatencyHistogram &
MetricRegistry::histogram(const std::string &name,
                          const std::string &help,
                          const std::string &unit,
                          std::vector<double> bounds,
                          const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = find(name, labels, MetricType::Histogram);
    if (e.hist == nullptr) {
        e.info.help = help;
        e.info.unit = unit;
        e.hist =
            std::make_unique<LatencyHistogram>(std::move(bounds));
    } else if (e.hist->bounds() != bounds) {
        panic("MetricRegistry: '%s' re-registered with different "
              "bucket bounds", name.c_str());
    }
    return *e.hist;
}

std::vector<MetricRegistry::Sample>
MetricRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Sample> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_) {
        Sample s;
        s.info = e->info;
        switch (e->info.type) {
          case MetricType::Counter:
            s.integral = e->integral;
            s.value = e->integral
                ? static_cast<double>(e->counter.value())
                : e->sum.value();
            break;
          case MetricType::Gauge:
            s.value = e->gauge.value();
            break;
          case MetricType::Histogram: {
            const LatencyHistogram &h = *e->hist;
            s.bucket_bounds = h.bounds();
            s.bucket_counts.resize(h.bounds().size() + 1);
            for (size_t i = 0; i <= h.bounds().size(); ++i) {
                s.bucket_counts[i] = h.bucketCount(i);
                s.count += s.bucket_counts[i];
            }
            s.sum = h.sum();
            break;
          }
        }
        out.push_back(std::move(s));
    }
    return out;
}

size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
MetricRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &e : entries_) {
        e->counter.reset();
        e->sum.reset();
        e->gauge.set(0.0);
        if (e->hist != nullptr)
            e->hist->reset();
    }
}

} // namespace ulpdp
