#include "telemetry/journal.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace ulpdp {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::BudgetSpend:
        return "budget_spend";
      case EventKind::HaltReplay:
        return "halt_replay";
      case EventKind::FaultLatch:
        return "fault_latch";
      case EventKind::Replenish:
        return "replenish";
      case EventKind::HealthAlarm:
        return "health_alarm";
      case EventKind::BusDegrade:
        return "bus_degrade";
      case EventKind::ResampleOverflow:
        return "resample_overflow";
    }
    panic("eventKindName: invalid kind %d", static_cast<int>(kind));
}

namespace {

size_t
roundUpPow2(size_t v)
{
    size_t p = 16;
    while (p < v)
        p <<= 1;
    return p;
}

uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

} // anonymous namespace

EventJournal::EventJournal(size_t capacity)
    : mask_(roundUpPow2(capacity) - 1),
      slots_(new Slot[mask_ + 1])
{}

void
EventJournal::record(EventKind kind, uint64_t tick,
                     double value) noexcept
{
    uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[ticket & mask_];
    // begin != end marks the slot as mid-write; the release store of
    // `end` publishes the payload to snapshotting readers.
    slot.begin.store(ticket + 1, std::memory_order_relaxed);
    slot.kind.store(static_cast<uint64_t>(kind),
                    std::memory_order_relaxed);
    slot.tick.store(tick, std::memory_order_relaxed);
    slot.value_bits.store(doubleBits(value),
                          std::memory_order_relaxed);
    slot.end.store(ticket + 1, std::memory_order_release);
}

uint64_t
EventJournal::recorded() const
{
    return head_.load(std::memory_order_relaxed);
}

uint64_t
EventJournal::dropped() const
{
    uint64_t total = recorded();
    uint64_t cap = mask_ + 1;
    return total > cap ? total - cap : 0;
}

std::vector<JournalEvent>
EventJournal::snapshot() const
{
    uint64_t total = head_.load(std::memory_order_acquire);
    uint64_t cap = mask_ + 1;
    uint64_t first = total > cap ? total - cap : 0;

    std::vector<JournalEvent> out;
    out.reserve(static_cast<size_t>(total - first));
    for (uint64_t t = first; t < total; ++t) {
        const Slot &slot = slots_[t & mask_];
        uint64_t end = slot.end.load(std::memory_order_acquire);
        if (end != t + 1)
            continue; // overwritten by a newer event, or mid-write
        JournalEvent ev;
        ev.kind = static_cast<EventKind>(
            slot.kind.load(std::memory_order_relaxed));
        ev.tick = slot.tick.load(std::memory_order_relaxed);
        ev.value =
            bitsDouble(slot.value_bits.load(std::memory_order_relaxed));
        if (slot.begin.load(std::memory_order_relaxed) != t + 1)
            continue; // writer raced in after we read the payload
        out.push_back(ev);
    }
    return out;
}

void
EventJournal::clear()
{
    head_.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i <= mask_; ++i) {
        slots_[i].begin.store(0, std::memory_order_relaxed);
        slots_[i].end.store(0, std::memory_order_relaxed);
        slots_[i].kind.store(0, std::memory_order_relaxed);
        slots_[i].tick.store(0, std::memory_order_relaxed);
        slots_[i].value_bits.store(0, std::memory_order_relaxed);
    }
}

} // namespace ulpdp
