/**
 * @file
 * Bounded ring-buffer journal for privacy-relevant events.
 *
 * Counters say *how much*; an auditor reconstructing whether a
 * deployment honoured loss <= n*eps also needs *when and what*: each
 * budget spend with the segment loss actually charged (Algorithm 1),
 * each halt that degraded to a cache replay, each fault latch that
 * froze the noise datapath, each replenishment that restored budget.
 * The journal keeps the most recent events in a fixed-size ring --
 * bounded memory on a bounded device, oldest entries overwritten --
 * and every record() is lock-free: one relaxed fetch_add claims a
 * slot, relaxed atomic stores fill it, and a release store of the
 * slot's ticket publishes it. Readers snapshot without blocking
 * writers; a slot caught mid-write is skipped (its begin/end tickets
 * disagree), never torn.
 *
 * The one sacrifice for lock-freedom: if two writers race exactly one
 * full ring apart (capacity events between them, in-flight at the
 * same instant), the slot records an interleaving of the two. The
 * snapshot still sees a well-formed event, and with the default 1024
 * slots the window is vanishingly small in every workload we run.
 */

#ifndef ULPDP_TELEMETRY_JOURNAL_H
#define ULPDP_TELEMETRY_JOURNAL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ulpdp {

/** What happened. Every kind is documented in docs/METRICS.md. */
enum class EventKind : uint8_t
{
    /** Fresh report charged against the budget; value = loss (nats). */
    BudgetSpend,

    /** Budget could not cover a report; the cached previous report
     *  was replayed (value = 0 additional loss by construction). */
    HaltReplay,

    /** A detected fault latched fail-secure (cache-only) service;
     *  value = detection count at latch time. */
    FaultLatch,

    /** The replenishment period elapsed and the budget was restored;
     *  value = the restored budget. */
    Replenish,

    /** A URNG continuous health test tripped; value = words observed
     *  when the alarm latched. */
    HealthAlarm,

    /** A sensor-bus read exhausted its retries and the caller
     *  degraded to cached data; value = attempts spent. */
    BusDegrade,

    /** A confined draw found no acceptable sample and degraded to a
     *  window-edge clamp; value = samples drawn. */
    ResampleOverflow,
};

/** Human-readable event-kind name (exporters, tests). */
const char *eventKindName(EventKind kind);

/** One journal entry. */
struct JournalEvent
{
    EventKind kind = EventKind::BudgetSpend;

    /** Component-local monotone time (device cycles for the DP-Box,
     *  requests for the BudgetController). */
    uint64_t tick = 0;

    /** Kind-specific payload (see EventKind comments). */
    double value = 0.0;
};

/** Fixed-capacity lock-free event ring (see file comment). */
class EventJournal
{
  public:
    /** @param capacity Slots retained; rounded up to a power of two,
     *  minimum 16. */
    explicit EventJournal(size_t capacity = 1024);

    /** Append one event (lock-free, thread-safe). */
    void record(EventKind kind, uint64_t tick, double value) noexcept;

    /** Events ever recorded (including overwritten ones). */
    uint64_t recorded() const;

    /** Events overwritten before any snapshot could retain them. */
    uint64_t dropped() const;

    /** Slots this ring retains. */
    size_t capacity() const { return mask_ + 1; }

    /** Retained events, oldest first. Slots mid-write are skipped. */
    std::vector<JournalEvent> snapshot() const;

    /** Forget everything (tests / epoch boundaries). */
    void clear();

  private:
    struct Slot
    {
        std::atomic<uint64_t> begin{0}; ///< ticket+1 before the write
        std::atomic<uint64_t> end{0};   ///< ticket+1 after the write
        std::atomic<uint64_t> kind{0};
        std::atomic<uint64_t> tick{0};
        std::atomic<uint64_t> value_bits{0};
    };

    size_t mask_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<uint64_t> head_{0};
};

} // namespace ulpdp

#endif // ULPDP_TELEMETRY_JOURNAL_H
