/**
 * @file
 * Process-global telemetry context: the default MetricRegistry, the
 * default EventJournal, and the runtime enable gate.
 *
 * Instrumented components (DpBox, BudgetController, SensorBus, the
 * RNG health monitor, the fleet engine) record into this scope so a
 * deployment exports one coherent surface without threading a
 * registry through every constructor. The gate is a single relaxed
 * atomic load on the hot path; when telemetry is disabled (the
 * default for benches measuring the metrics-off baseline) every
 * instrumentation site is a branch-not-taken and no atomics are
 * touched, which is how the <= 5% fleet-throughput overhead budget is
 * met from both directions.
 *
 * Determinism note: nothing recorded here ever feeds back into a
 * simulation result. FleetReport stays bit-identical across thread
 * counts with telemetry on or off; the telemetry merely *witnesses*
 * the run. Tests flip the gate and reset() freely -- the gate and the
 * registries are global state, so tests that depend on exact counter
 * values should not run concurrently with other telemetry users
 * inside one process.
 */

#ifndef ULPDP_TELEMETRY_TELEMETRY_H
#define ULPDP_TELEMETRY_TELEMETRY_H

#include <atomic>

#include "telemetry/journal.h"
#include "telemetry/metrics.h"

namespace ulpdp {
namespace telemetry {

namespace detail {
extern std::atomic<bool> enabled_flag;
} // namespace detail

/** The process-global metric registry (created on first use). */
MetricRegistry &registry();

/** The process-global privacy-event journal (created on first use). */
EventJournal &journal();

/** Hot-path gate: one relaxed load. */
inline bool
enabled()
{
    return detail::enabled_flag.load(std::memory_order_relaxed);
}

/** Turn the global telemetry scope on or off (default: off). */
void setEnabled(bool on);

/** Zero every global metric and clear the journal (tests, or an
 *  operator starting a fresh observation epoch). */
void reset();

/**
 * Record one privacy-relevant event: bumps the per-kind event counter
 * in the registry and appends to the journal. No-op when disabled.
 */
void event(EventKind kind, uint64_t tick, double value);

} // namespace telemetry
} // namespace ulpdp

#endif // ULPDP_TELEMETRY_TELEMETRY_H
