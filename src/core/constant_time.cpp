#include "core/constant_time.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ulpdp {

ConstantTimeResamplingMechanism::ConstantTimeResamplingMechanism(
        const FxpMechanismParams &params, int64_t threshold_index,
        int batch_size)
    : FxpMechanismBase(params), threshold_index_(threshold_index),
      batch_size_(batch_size)
{
    if (threshold_index < 0)
        fatal("ConstantTimeResamplingMechanism: threshold_index must "
              "be non-negative");
    if (batch_size < 1)
        fatal("ConstantTimeResamplingMechanism: batch_size must be "
              "positive, got %d", batch_size);
    batch_.resize(static_cast<size_t>(batch_size_));
}

NoisedReport
ConstantTimeResamplingMechanism::noise(double x)
{
    int64_t xi = checkAndIndex(x);
    int64_t win_lo = lo_index_ - threshold_index_;
    int64_t win_hi = hi_index_ + threshold_index_;

    // Always draw all K samples (the hardware generates the batch
    // unconditionally, which is what makes the timing constant). The
    // buffer is sized once at construction; resizing it here would
    // reallocate on every report.
    rng_.sampleBatch(batch_.data(), batch_.size());
    int64_t chosen = 0;
    bool found = false;
    int64_t last = 0;
    for (int64_t k : batch_) {
        int64_t yi = xi + k;
        last = yi;
        if (!found && yi >= win_lo && yi <= win_hi) {
            chosen = yi;
            found = true;
        }
    }
    if (!found) {
        chosen = std::clamp(last, win_lo, win_hi);
        ++clamp_fallbacks_;
    }
    ++total_reports_;
    return NoisedReport{toValue(chosen),
                        static_cast<uint64_t>(batch_size_)};
}

ConstantTimeOutputModel::ConstantTimeOutputModel(
        std::shared_ptr<const NoisePmf> pmf, int64_t span,
        int64_t threshold, int batch_size)
    : pmf_(std::move(pmf)), span_(span), threshold_(threshold),
      batch_size_(batch_size)
{
    if (!pmf_)
        fatal("ConstantTimeOutputModel: pmf must not be null");
    if (span_ <= 0)
        fatal("ConstantTimeOutputModel: span must be positive");
    if (threshold_ < 0)
        fatal("ConstantTimeOutputModel: threshold must be "
              "non-negative");
    if (batch_size_ < 1)
        fatal("ConstantTimeOutputModel: batch_size must be positive");

    accept_.resize(static_cast<size_t>(span_) + 1);
    for (int64_t i = 0; i <= span_; ++i) {
        double z = 0.0;
        for (int64_t j = outputLo(); j <= outputHi(); ++j)
            z += pmf_->pmf(j - i);
        if (z <= 0.0)
            fatal("ConstantTimeOutputModel: input %lld has zero "
                  "acceptance probability",
                  static_cast<long long>(i));
        accept_[static_cast<size_t>(i)] = z;
    }
}

double
ConstantTimeOutputModel::acceptProbability(int64_t i) const
{
    ULPDP_ASSERT(i >= 0 && i <= span_);
    return accept_[static_cast<size_t>(i)];
}

double
ConstantTimeOutputModel::fallbackProbability(int64_t i) const
{
    return std::pow(1.0 - acceptProbability(i), batch_size_);
}

double
ConstantTimeOutputModel::prob(int64_t j, int64_t i) const
{
    ULPDP_ASSERT(i >= 0 && i <= span_);
    int64_t lo = outputLo();
    int64_t hi = outputHi();
    if (j < lo || j > hi)
        return 0.0;

    double z = acceptProbability(i);
    double miss = 1.0 - z;
    // First accepted draw among K: a geometric series truncated at
    // K terms, total weight (1 - miss^K) spread over the window in
    // proportion to the raw PMF.
    double interior_scale =
        (1.0 - std::pow(miss, batch_size_)) / z;
    double p = pmf_->pmf(j - i) * interior_scale;

    if (j == hi || j == lo) {
        // Clamp fallback: all K missed (weight miss^(K-1) for the
        // first K-1, times the K-th draw landing beyond this
        // boundary).
        double beyond = (j == hi)
            ? pmf_->tailMass(hi - i + 1)
            : pmf_->tailMass(i - lo + 1);
        p += std::pow(miss, batch_size_ - 1) * beyond;
    }
    return p;
}

} // namespace ulpdp
