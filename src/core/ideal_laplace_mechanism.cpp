#include "core/ideal_laplace_mechanism.h"

#include "common/logging.h"

namespace ulpdp {

IdealLaplaceMechanism::IdealLaplaceMechanism(const SensorRange &range,
                                             double epsilon,
                                             uint64_t seed)
    : range_(range), epsilon_(epsilon),
      laplace_(range.length() / epsilon, seed)
{
    if (!(epsilon > 0.0))
        fatal("IdealLaplaceMechanism: epsilon must be positive, got %g",
              epsilon);
}

NoisedReport
IdealLaplaceMechanism::noise(double x)
{
    if (!range_.contains(x))
        fatal("IdealLaplaceMechanism: reading %g outside range "
              "[%g, %g]", x, range_.lo, range_.hi);
    return NoisedReport{x + laplace_.sample(), 1};
}

} // namespace ulpdp
