#include "core/resampling_mechanism.h"

#include "common/logging.h"

namespace ulpdp {

ResamplingMechanism::ResamplingMechanism(const FxpMechanismParams &params,
                                         int64_t threshold_index,
                                         uint64_t max_attempts)
    : FxpMechanismBase(params), threshold_index_(threshold_index),
      max_attempts_(max_attempts)
{
    if (threshold_index < 0)
        fatal("ResamplingMechanism: threshold_index must be "
              "non-negative, got %lld",
              static_cast<long long>(threshold_index));
}

NoisedReport
ResamplingMechanism::noise(double x)
{
    int64_t xi = checkAndIndex(x);
    int64_t win_lo = windowLoIndex();
    int64_t win_hi = windowHiIndex();

    uint64_t attempts = 0;
    while (true) {
        ++attempts;
        if (attempts > max_attempts_) {
            // A real DP-Box would hang here; in the model this is an
            // internal configuration bug (window without support).
            panic("ResamplingMechanism: no accepted sample after "
                  "%llu attempts (window [%lld, %lld], input %lld)",
                  static_cast<unsigned long long>(max_attempts_),
                  static_cast<long long>(win_lo),
                  static_cast<long long>(win_hi),
                  static_cast<long long>(xi));
        }
        // The redraw loop is kept (it is what the latency benches
        // model); only the per-draw cost drops to a table lookup.
        int64_t k = rng_.sampleIndexFast();
        int64_t yi = xi + k;
        if (yi >= win_lo && yi <= win_hi) {
            total_samples_ += attempts;
            ++total_reports_;
            return NoisedReport{toValue(yi), attempts};
        }
    }
}

void
ResamplingMechanism::sampleBatch(const double *x, double *out,
                                 size_t n)
{
    const int64_t win_lo = windowLoIndex();
    const int64_t win_hi = windowHiIndex();

    for (size_t i = 0; i < n; ++i) {
        int64_t xi = checkAndIndex(x[i]);
        uint64_t attempts = 0;
        while (true) {
            ++attempts;
            if (attempts > max_attempts_) {
                panic("ResamplingMechanism: no accepted sample after "
                      "%llu attempts (window [%lld, %lld], input "
                      "%lld)",
                      static_cast<unsigned long long>(max_attempts_),
                      static_cast<long long>(win_lo),
                      static_cast<long long>(win_hi),
                      static_cast<long long>(xi));
            }
            int64_t yi = xi + rng_.sampleIndexFast();
            if (yi >= win_lo && yi <= win_hi) {
                total_samples_ += attempts;
                ++total_reports_;
                out[i] = toValue(yi);
                break;
            }
        }
    }
}

double
ResamplingMechanism::averageSamplesPerReport() const
{
    if (total_reports_ == 0)
        return 0.0;
    return static_cast<double>(total_samples_) /
           static_cast<double>(total_reports_);
}

} // namespace ulpdp
