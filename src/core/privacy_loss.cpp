#include "core/privacy_loss.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/parallel_for.h"

namespace ulpdp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Outputs per parallel chunk: large enough to amortize the claim,
 *  small enough to balance the skewed per-output cost (interior
 *  outputs see more reachable inputs than edge outputs). */
constexpr int64_t kAnalyzeChunk = 64;

} // anonymous namespace

double
PrivacyLossAnalyzer::lossAtOutput(const DiscreteOutputModel &model,
                                  int64_t j)
{
    double p_max = 0.0;
    double p_min = kInf;
    for (int64_t i = 0; i <= model.span(); ++i) {
        double p = model.prob(j, i);
        if (p > p_max)
            p_max = p;
        if (p < p_min)
            p_min = p;
    }
    if (p_max <= 0.0)
        return -kInf; // unreachable output
    if (p_min <= 0.0)
        return kInf; // distinguishing output: some input excluded
    return std::log(p_max / p_min);
}

namespace {

/** Serial sweep over [lo, hi], accumulating into @p report with the
 *  strict-greater argmax (first output wins ties). */
void
sweepOutputs(const DiscreteOutputModel &model, int64_t lo, int64_t hi,
             LossReport &report)
{
    for (int64_t j = lo; j <= hi; ++j) {
        double loss = PrivacyLossAnalyzer::lossAtOutput(model, j);
        if (loss == -kInf)
            continue; // unreachable by every input: not an output
        if (loss == kInf)
            ++report.infinite_outputs;
        if (loss > report.worst_case_loss) {
            report.worst_case_loss = loss;
            report.worst_output = j;
        }
    }
}

} // anonymous namespace

LossReport
PrivacyLossAnalyzer::analyze(const DiscreteOutputModel &model,
                             int jobs)
{
    LossReport report;
    report.worst_case_loss = 0.0;
    report.worst_output = model.outputLo();

    int64_t lo = model.outputLo();
    int64_t hi = model.outputHi();
    if (jobs == 1 || hi - lo < kAnalyzeChunk) {
        sweepOutputs(model, lo, hi, report);
        report.bounded = std::isfinite(report.worst_case_loss);
        return report;
    }

    // Parallel sweep: each chunk accumulates its own partial report,
    // then the partials are merged in output order with the same
    // strict-greater argmax the serial loop uses -- so the result
    // (including the tie-broken worst_output) is identical for every
    // job count.
    int64_t span = hi - lo + 1;
    int64_t nchunks = (span + kAnalyzeChunk - 1) / kAnalyzeChunk;
    std::vector<LossReport> partials(static_cast<size_t>(nchunks));
    for (auto &p : partials) {
        p.worst_case_loss = -kInf; // "no reachable output seen"
        p.worst_output = lo;
    }
    parallelFor(0, nchunks, jobs, 1,
                [&](int64_t cbegin, int64_t cend) {
                    for (int64_t c = cbegin; c < cend; ++c) {
                        int64_t clo = lo + c * kAnalyzeChunk;
                        int64_t chi =
                            std::min(hi, clo + kAnalyzeChunk - 1);
                        auto &p = partials[static_cast<size_t>(c)];
                        for (int64_t j = clo; j <= chi; ++j) {
                            double loss = lossAtOutput(model, j);
                            if (loss == -kInf)
                                continue;
                            if (loss == kInf)
                                ++p.infinite_outputs;
                            if (loss > p.worst_case_loss) {
                                p.worst_case_loss = loss;
                                p.worst_output = j;
                            }
                        }
                    }
                });
    for (const auto &p : partials) {
        report.infinite_outputs += p.infinite_outputs;
        if (p.worst_case_loss > report.worst_case_loss) {
            report.worst_case_loss = p.worst_case_loss;
            report.worst_output = p.worst_output;
        }
    }
    report.bounded = std::isfinite(report.worst_case_loss);
    return report;
}

std::vector<OutputLoss>
PrivacyLossAnalyzer::lossCurve(const DiscreteOutputModel &model)
{
    std::vector<OutputLoss> curve;
    for (int64_t j = model.outputLo(); j <= model.outputHi(); ++j) {
        double loss = lossAtOutput(model, j);
        if (loss == -kInf)
            continue;
        curve.push_back(OutputLoss{j, loss});
    }
    return curve;
}

bool
PrivacyLossAnalyzer::satisfiesLdp(const DiscreteOutputModel &model,
                                  double loss_bound)
{
    LossReport report = analyze(model);
    // Tolerate 1e-9 relative slack for accumulated floating-point
    // error in the PMF ratios.
    return report.bounded &&
           report.worst_case_loss <= loss_bound * (1.0 + 1e-9) + 1e-12;
}

} // namespace ulpdp
