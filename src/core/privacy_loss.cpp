#include "core/privacy_loss.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace ulpdp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // anonymous namespace

double
PrivacyLossAnalyzer::lossAtOutput(const DiscreteOutputModel &model,
                                  int64_t j)
{
    double p_max = 0.0;
    double p_min = kInf;
    for (int64_t i = 0; i <= model.span(); ++i) {
        double p = model.prob(j, i);
        if (p > p_max)
            p_max = p;
        if (p < p_min)
            p_min = p;
    }
    if (p_max <= 0.0)
        return -kInf; // unreachable output
    if (p_min <= 0.0)
        return kInf; // distinguishing output: some input excluded
    return std::log(p_max / p_min);
}

LossReport
PrivacyLossAnalyzer::analyze(const DiscreteOutputModel &model)
{
    LossReport report;
    report.worst_case_loss = 0.0;
    report.worst_output = model.outputLo();

    for (int64_t j = model.outputLo(); j <= model.outputHi(); ++j) {
        double loss = lossAtOutput(model, j);
        if (loss == -kInf)
            continue; // unreachable by every input: not an output
        if (loss == kInf)
            ++report.infinite_outputs;
        if (loss > report.worst_case_loss) {
            report.worst_case_loss = loss;
            report.worst_output = j;
        }
    }
    report.bounded = std::isfinite(report.worst_case_loss);
    return report;
}

std::vector<OutputLoss>
PrivacyLossAnalyzer::lossCurve(const DiscreteOutputModel &model)
{
    std::vector<OutputLoss> curve;
    for (int64_t j = model.outputLo(); j <= model.outputHi(); ++j) {
        double loss = lossAtOutput(model, j);
        if (loss == -kInf)
            continue;
        curve.push_back(OutputLoss{j, loss});
    }
    return curve;
}

bool
PrivacyLossAnalyzer::satisfiesLdp(const DiscreteOutputModel &model,
                                  double loss_bound)
{
    LossReport report = analyze(model);
    // Tolerate 1e-9 relative slack for accumulated floating-point
    // error in the PMF ratios.
    return report.bounded &&
           report.worst_case_loss <= loss_bound * (1.0 + 1e-9) + 1e-12;
}

} // namespace ulpdp
