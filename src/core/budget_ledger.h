/**
 * @file
 * Durable budget ledger: journaled spends and two-phase checkpoints
 * on NOR flash, with a recovery scan that can never resurrect budget.
 *
 * The paper's worst-case loss bound n*eps (Eq. 4) rests entirely on
 * the spent-budget counter surviving resets: a power loss that rolls
 * the counter back lets an adversary re-spend budget it already used,
 * and the bound is void. PR 2 hardened the checkpoint *image*
 * (CRC + monotone restore); this layer hardens the *medium*. Every
 * spend is journaled to flash before the mechanism releases its
 * output, so the persisted record is always at least as pessimistic
 * as reality, whatever instant the power dies.
 *
 * On-flash layout (all fields little-endian, CRC-32 sealed):
 *
 *   block:  [16-byte header | 40-byte record slots ...]
 *   header: magic "ULBH" | alloc_seq (monotone block allocation
 *           counter -- orders blocks at recovery) | crc
 *   record: magic "ULDR" | type (spend / checkpoint) | flags |
 *           seq (monotone across all records) | payload | aux |
 *           crc over the body | commit byte | supersede byte | pad
 *
 * Commit protocol (exploiting NOR 1 -> 0 semantics; nothing is ever
 * updated in place):
 *
 *  - Spend: program the 36-byte body, then program the commit byte.
 *    A cut before the body completes leaves a torn record (CRC
 *    fails); a cut between body and commit leaves a CRC-valid
 *    uncommitted record, which recovery accepts (counting it can
 *    only over-count, the safe direction).
 *  - Checkpoint: append the new checkpoint record (write-new), then
 *    program the supersede byte of the previous checkpoint
 *    (invalidate-old). A cut between the phases leaves two live
 *    checkpoints; recovery takes the one with the higher sequence
 *    number, which is always the later state.
 *  - Rotation: when the current block fills, erase the least-worn
 *    other block (wear leveling), write its header, write a fresh
 *    checkpoint summarizing all state, supersede the old checkpoint,
 *    and make it current. Old blocks only ever hold records already
 *    covered by a later checkpoint, so erasing one can never lose an
 *    uncovered spend.
 *
 * Recovery resolves every ambiguity fail-secure:
 *
 *  - torn / CRC-invalid record  => charged max_record_loss (counted
 *    as spent -- the record *might* have been a spend);
 *  - duplicate or out-of-order sequence numbers => every copy is
 *    charged (over-counting is safe) and the anomaly is counted;
 *  - no valid checkpoint over a non-empty journal => the ledger is
 *    unrecoverable: zero remaining budget, halted. Replay degrades
 *    toward *less* spendable budget, never more.
 */

#ifndef ULPDP_CORE_BUDGET_LEDGER_H
#define ULPDP_CORE_BUDGET_LEDGER_H

#include <cstdint>
#include <optional>

#include "core/flash_device.h"

namespace ulpdp {

/** Static configuration of a BudgetLedger. */
struct BudgetLedgerConfig
{
    /** Total privacy budget B the remaining counter starts from. */
    double initial_budget = 5.0;

    /**
     * Fail-secure charge for a record whose content cannot be read
     * back (torn, corrupt). Must be >= the largest loss any single
     * spend can be charged (the outermost segment loss), so an
     * ambiguous record is always counted at least as spent.
     */
    double max_record_loss = 1.0;
};

/** Observability counters of one ledger instance. */
struct LedgerStats
{
    /** Spend records durably journaled. */
    uint64_t spends_journaled = 0;

    /** Checkpoints committed (both phases done). */
    uint64_t checkpoints_committed = 0;

    /** Log rotations (block erase + fresh checkpoint). */
    uint64_t rotations = 0;

    /** Successful mounts over a non-empty journal. */
    uint64_t recoveries = 0;

    /** Torn / CRC-invalid records charged fail-secure at recovery. */
    uint64_t torn_records = 0;

    /** CRC-valid records accepted without their commit byte. */
    uint64_t uncommitted_accepted = 0;

    /** Valid records with a duplicate sequence number (each copy
     *  charged). */
    uint64_t duplicate_records = 0;

    /** Valid records scanned out of sequence order. */
    uint64_t out_of_order_records = 0;

    /** Mounts that ended unrecoverable (zero remaining, halted). */
    uint64_t unrecoverable_mounts = 0;

    /** Crash windows recovered with two live checkpoints. */
    uint64_t dual_checkpoint_recoveries = 0;

    /** Journal bytes programmed (records + headers + supersedes). */
    uint64_t journal_bytes_written = 0;
};

/**
 * Journaled, wear-leveled budget ledger over a FlashDevice (see file
 * comment). Single-owner, not thread-safe -- one device, one ledger,
 * like the silicon it models.
 */
class BudgetLedger
{
  public:
    /** Record slot size on flash (one spend costs this many bytes
     *  plus amortized rotation overhead). */
    static constexpr uint32_t kRecordSize = 40;

    /** Block header size on flash. */
    static constexpr uint32_t kHeaderSize = 16;

    /** Bytes of a record body covered by the CRC. */
    static constexpr uint32_t kBodySize = 36;

    /**
     * @param flash The device to journal on (borrowed; must outlive
     *        the ledger). Needs >= 2 blocks and blocks large enough
     *        for a header plus two records.
     */
    BudgetLedger(FlashDevice &flash, const BudgetLedgerConfig &config);

    /**
     * Mount: scan the journal, replay records, resolve ambiguities
     * fail-secure. Formats fully erased flash. Returns false when
     * the ledger is unrecoverable -- remaining() is then 0 and
     * halted() is latched.
     */
    bool mount();

    /**
     * Durably journal one spend of @p loss *before* the caller
     * releases the corresponding output. Returns false when the
     * append could not complete (power lost mid-program, device
     * dead, or ledger halted) -- the caller must NOT release the
     * output in that case.
     */
    bool journalSpend(double loss);

    /**
     * Two-phase checkpoint commit of the caller's authoritative
     * state: remaining budget and the cached report. Returns false
     * when either phase was cut by a power loss.
     */
    bool commitCheckpoint(double remaining,
                          const std::optional<double> &cache);

    /** Remaining budget per the ledger (recovered or live). */
    double remaining() const { return remaining_; }

    /** Lifetime loss charged through this ledger instance, including
     *  fail-secure charges for ambiguous records. */
    double spentLifetime() const { return spent_lifetime_; }

    /** Cached report recovered from the latest checkpoint. */
    const std::optional<double> &cache() const { return cache_; }

    /** Latched when the journal was unrecoverable: remaining() is 0
     *  and every journalSpend()/commitCheckpoint() refuses. */
    bool halted() const { return halted_; }

    /** True after a successful (or fail-secure) mount. */
    bool mounted() const { return mounted_; }

    /** Next record sequence number. */
    uint64_t nextSeq() const { return next_seq_; }

    /** Counters. */
    const LedgerStats &stats() const { return stats_; }

    /** Max - min erase count across blocks (leveling bound: stays
     *  <= 2 under the min-wear victim policy). */
    uint64_t wearSpread() const;

    /** The configuration in effect. */
    const BudgetLedgerConfig &config() const { return config_; }

  private:
    struct ParsedRecord;

    /** Program bytes and account them; false on power loss. */
    bool programCounted(uint64_t addr, const void *src, size_t len);

    /** Append one record (body then commit byte) at the current
     *  append offset; rotates first when the block is full. */
    bool appendRecord(uint8_t type, uint8_t flags, uint64_t payload,
                      uint64_t aux);

    /** Erase the least-worn non-current block, write its header and
     *  a fresh checkpoint, supersede the old one. */
    bool rotate();

    /** Serialize + program one record body and commit byte at
     *  @p addr. */
    bool writeRecordAt(uint64_t addr, uint8_t type, uint8_t flags,
                       uint64_t seq, uint64_t payload, uint64_t aux);

    /** Parse the slot at @p addr. */
    ParsedRecord parseSlot(uint64_t addr) const;

    /** Charge @p loss against the remaining counter. */
    void charge(double loss);

    FlashDevice &flash_;
    BudgetLedgerConfig config_;

    bool mounted_ = false;
    bool halted_ = false;
    double remaining_ = 0.0;
    double spent_lifetime_ = 0.0;
    std::optional<double> cache_;

    uint64_t next_seq_ = 1;
    uint64_t next_alloc_seq_ = 1;
    uint32_t current_block_ = 0;
    uint32_t append_off_ = 0;

    /** Byte address of the live checkpoint record; ~0 when none. */
    uint64_t live_cp_addr_ = ~uint64_t{0};

    LedgerStats stats_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_BUDGET_LEDGER_H
