#include "core/fxp_mechanism.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

FxpMechanismBase::FxpMechanismBase(const FxpMechanismParams &params)
    : params_(params), rng_(params.rngConfig(), params.seed)
{
    if (!(params.epsilon > 0.0))
        fatal("FxpMechanismBase: epsilon must be positive, got %g",
              params.epsilon);

    double delta = rng_.quantizer().delta();
    lo_index_ = static_cast<int64_t>(std::llround(params.range.lo /
                                                  delta));
    hi_index_ = static_cast<int64_t>(std::llround(params.range.hi /
                                                  delta));
    double lo_err = std::abs(toValue(lo_index_) - params.range.lo);
    double hi_err = std::abs(toValue(hi_index_) - params.range.hi);
    if (lo_err > 1e-9 * std::max(1.0, std::abs(params.range.lo)) ||
        hi_err > 1e-9 * std::max(1.0, std::abs(params.range.hi))) {
        warn("FxpMechanismBase: sensor range [%g, %g] snapped to the "
             "Delta=%g grid as [%g, %g]", params.range.lo,
             params.range.hi, delta, toValue(lo_index_),
             toValue(hi_index_));
    }
}

int64_t
FxpMechanismBase::toIndex(double x) const
{
    return static_cast<int64_t>(std::llround(x /
                                             rng_.quantizer().delta()));
}

double
FxpMechanismBase::toValue(int64_t index) const
{
    return static_cast<double>(index) * rng_.quantizer().delta();
}

int64_t
FxpMechanismBase::checkAndIndex(double x) const
{
    // Tolerate readings a hair outside the range (grid snapping of
    // the range itself can push the limits in by < Delta).
    double slack = rng_.quantizer().delta();
    if (x < params_.range.lo - slack || x > params_.range.hi + slack)
        fatal("%s: reading %g outside range [%g, %g]",
              name().c_str(), x, params_.range.lo, params_.range.hi);
    int64_t idx = toIndex(x);
    if (idx < lo_index_)
        idx = lo_index_;
    if (idx > hi_index_)
        idx = hi_index_;
    return idx;
}

NoisedReport
NaiveFxpMechanism::noise(double x)
{
    int64_t xi = checkAndIndex(x);
    int64_t k = rng_.sampleIndexFast();
    return NoisedReport{toValue(xi + k), 1};
}

} // namespace ulpdp
