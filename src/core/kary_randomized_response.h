/**
 * @file
 * k-ary (generalized) randomized response.
 *
 * Section VI-E shows the DP-Box reconfigured for *binary* randomized
 * response and cites RAPPOR for categorical collection. This module
 * provides the natural k-category generalization a deployment with
 * multi-valued categorical sensors (activity type, room id, device
 * state) needs: report the true category with probability
 *
 *   p = e^eps / (e^eps + k - 1)
 *
 * and each other category with probability q = p / e^eps, which is
 * exactly eps-LDP (the p/q ratio is e^eps, and the exact loss is
 * log(p/q) = eps by construction -- no fixed-point tail hazard,
 * because the only randomness is a uniform categorical draw that a
 * Bu-bit URNG represents exactly up to a 2^-Bu rounding analysed
 * below).
 *
 * Implementation is ULP-friendly: one Bu-bit Tausworthe word per
 * report, compared against fixed-point thresholds. Because the
 * thresholds are quantized to 2^-Bu, the implemented (p', q') differ
 * from ideal by at most 2^-Bu; exactLoss() reports the implemented
 * ratio so the guarantee is stated for what actually runs.
 */

#ifndef ULPDP_CORE_KARY_RANDOMIZED_RESPONSE_H
#define ULPDP_CORE_KARY_RANDOMIZED_RESPONSE_H

#include <cstdint>
#include <vector>

#include "rng/tausworthe.h"

namespace ulpdp {

/** Generalized randomized response over categories {0, ..., k-1}. */
class KaryRandomizedResponse
{
  public:
    /**
     * @param num_categories k >= 2.
     * @param epsilon Privacy parameter (> 0).
     * @param uniform_bits URNG width used per draw (4..32).
     * @param seed Tausworthe seed.
     */
    KaryRandomizedResponse(int num_categories, double epsilon,
                           int uniform_bits = 17, uint64_t seed = 1);

    /** Number of categories k. */
    int numCategories() const { return k_; }

    /** Configured privacy parameter. */
    double epsilon() const { return epsilon_; }

    /**
     * Truth probability actually implemented (after quantizing the
     * threshold to the URNG grid).
     */
    double truthProbability() const;

    /** Per-wrong-category probability actually implemented. */
    double lieProbability() const;

    /**
     * Exact worst-case loss of the implemented distribution:
     * log(p' / q'). Within 2^-Bu rounding of eps.
     */
    double exactLoss() const;

    /** Randomize one category (0 <= category < k). */
    int respond(int category);

    /**
     * Debias observed per-category counts into unbiased estimates of
     * the true counts: for n total reports,
     * c_true[i] = (c_obs[i] - n q') / (p' - q').
     * Estimates are clamped to [0, n].
     *
     * @param observed_counts Per-category observed counts (size k).
     */
    std::vector<double>
    estimateCounts(const std::vector<uint64_t> &observed_counts) const;

  private:
    int k_;
    double epsilon_;
    int uniform_bits_;
    Tausworthe urng_;
    /** Truth threshold in URNG grid units: the report is truthful
     *  iff the Bu-bit draw is below this. */
    uint64_t truth_threshold_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_KARY_RANDOMIZED_RESPONSE_H
