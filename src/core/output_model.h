/**
 * @file
 * Exact conditional output distributions of the fixed-point
 * mechanisms, Pr[output = y | input = x], on the Delta index grid.
 *
 * The privacy loss of Eq. (4) is a statement about these conditional
 * distributions, not about any sampled data, so the analyzer works on
 * analytic models rather than Monte Carlo histograms. Each model wraps
 * the exact RNG PMF (Eq. 11) and applies the mechanism's range
 * control:
 *
 *  - NaiveOutputModel: y = x + n, no control.
 *  - ResamplingOutputModel: condition n on x + n landing inside the
 *    window and renormalise (the renormaliser depends on x, which the
 *    paper's derivation conservatively ignores; we compute it).
 *  - ThresholdingOutputModel: clamp, with the tail mass concentrated
 *    into atoms at the two window boundaries.
 *  - RandomizedResponseOutputModel: two-point distribution from the
 *    midpoint-crossing probability.
 */

#ifndef ULPDP_CORE_OUTPUT_MODEL_H
#define ULPDP_CORE_OUTPUT_MODEL_H

#include <cstdint>
#include <memory>
#include <string>

#include "rng/fxp_laplace_pmf.h"
#include "rng/noise_pmf.h"

namespace ulpdp {

/**
 * Conditional distribution of a mechanism's output index given the
 * input index, over the Delta grid. Input indices are relative to the
 * range: 0 means the range lower limit m, span() means M.
 */
class DiscreteOutputModel
{
  public:
    virtual ~DiscreteOutputModel() = default;

    /** Input index span: inputs are 0 .. span() inclusive. */
    virtual int64_t span() const = 0;

    /** Smallest output index any input can produce. */
    virtual int64_t outputLo() const = 0;

    /** Largest output index any input can produce. */
    virtual int64_t outputHi() const = 0;

    /**
     * Pr[output = j | input = i] with i in [0, span()] and j an
     * absolute output index on the same grid.
     */
    virtual double prob(int64_t j, int64_t i) const = 0;

    /** Model name for reports. */
    virtual std::string name() const = 0;
};

/** y = x + n with no range control ("FxP HW Baseline"). */
class NaiveOutputModel : public DiscreteOutputModel
{
  public:
    /**
     * @param pmf Noise PMF (shared, must outlive the model).
     * @param span Range length in Delta units.
     */
    NaiveOutputModel(std::shared_ptr<const NoisePmf> pmf,
                     int64_t span);

    int64_t span() const override { return span_; }
    int64_t outputLo() const override;
    int64_t outputHi() const override;
    double prob(int64_t j, int64_t i) const override;
    std::string name() const override { return "FxP HW Baseline"; }

  private:
    std::shared_ptr<const NoisePmf> pmf_;
    int64_t span_;
};

/** Resampling into the window [-T, span + T], renormalised per input. */
class ResamplingOutputModel : public DiscreteOutputModel
{
  public:
    ResamplingOutputModel(std::shared_ptr<const NoisePmf> pmf,
                          int64_t span, int64_t threshold);

    int64_t span() const override { return span_; }
    int64_t outputLo() const override { return -threshold_; }
    int64_t outputHi() const override { return span_ + threshold_; }
    double prob(int64_t j, int64_t i) const override;
    std::string name() const override { return "Resampling"; }

    /** Acceptance probability of a single draw for input i. */
    double acceptProbability(int64_t i) const;

    /** Expected samples per report for input i (geometric mean 1/p). */
    double expectedSamples(int64_t i) const;

  private:
    std::shared_ptr<const NoisePmf> pmf_;
    int64_t span_;
    int64_t threshold_;
    /** Per-input acceptance probability Z(i), i = 0..span. */
    std::vector<double> accept_;
};

/** Clamping into the window [-T, span + T] with boundary atoms. */
class ThresholdingOutputModel : public DiscreteOutputModel
{
  public:
    ThresholdingOutputModel(std::shared_ptr<const NoisePmf> pmf,
                            int64_t span, int64_t threshold);

    int64_t span() const override { return span_; }
    int64_t outputLo() const override { return -threshold_; }
    int64_t outputHi() const override { return span_ + threshold_; }
    double prob(int64_t j, int64_t i) const override;
    std::string name() const override { return "Thresholding"; }

  private:
    std::shared_ptr<const NoisePmf> pmf_;
    int64_t span_;
    int64_t threshold_;
};

/** Two-point randomized-response distribution. */
class RandomizedResponseOutputModel : public DiscreteOutputModel
{
  public:
    RandomizedResponseOutputModel(
            std::shared_ptr<const NoisePmf> pmf, int64_t span);

    int64_t span() const override { return span_; }
    int64_t outputLo() const override { return 0; }
    int64_t outputHi() const override { return span_; }
    double prob(int64_t j, int64_t i) const override;
    std::string name() const override { return "Randomized Response"; }

    /** Midpoint-crossing (flip) probability. */
    double flipProbability() const { return flip_prob_; }

  private:
    int64_t span_;
    double flip_prob_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_OUTPUT_MODEL_H
