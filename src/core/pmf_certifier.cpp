#include "core/pmf_certifier.h"

#include <cmath>

#include "common/json.h"
#include "common/logging.h"
#include "core/privacy_loss.h"

namespace ulpdp {

namespace {

/** Human-readable capability list for the certificate. */
std::string
capNames(uint32_t caps)
{
    std::string out;
    auto append = [&out](const char *name) {
        out += (out.empty() ? "" : ",");
        out += name;
    };
    if (caps & mechcap::kBatch)
        append("batch");
    if (caps & mechcap::kConstantTime)
        append("constant-time");
    if (caps & mechcap::kSegmentLoss)
        append("segment-loss");
    if (caps & mechcap::kBoundedOutput)
        append("bounded-output");
    return out;
}

} // namespace

PmfCertifier::PmfCertifier(const FxpMechanismParams &profile,
                           double loss_multiple)
    : profile_(profile), loss_multiple_(loss_multiple)
{
    if (profile.uniform_bits > 24)
        fatal("PmfCertifier: exhaustive enumeration needs "
              "uniform_bits <= 24, got %d (2^Bu pipeline "
              "evaluations per mechanism)", profile.uniform_bits);
    if (!(loss_multiple >= 1.0))
        fatal("PmfCertifier: loss multiple must be >= 1, got %g",
              loss_multiple);
}

MechanismCertificate
PmfCertifier::certify(const std::string &name) const
{
    const MechanismRegistry::Entry &entry =
            MechanismRegistry::instance().at(name);

    MechanismSpec spec;
    spec.params = profile_;
    spec.loss_multiple = loss_multiple_;
    spec.enumerate_pmf = true;

    MechanismCertificate cert;
    cert.mechanism = entry.name;
    cert.caps = entry.caps;
    cert.uniform_bits = profile_.uniform_bits;
    cert.epsilon = profile_.epsilon;
    cert.loss_multiple = loss_multiple_;
    cert.bound = loss_multiple_ * profile_.epsilon;
    cert.states = uint64_t{1} << profile_.uniform_bits;
    if (entry.lower)
        cert.threshold_index = entry.lower(spec).threshold_index;

    // The registered output model over the *enumerated* PMF: every
    // probability in Pr[y | x] traces back to a count of URNG states
    // that the real pipeline produced, so the analyzer's sup is the
    // implementation's worst case, not the closed form's.
    std::unique_ptr<DiscreteOutputModel> model = entry.model(spec);
    LossReport report = PrivacyLossAnalyzer::analyze(*model);

    cert.worst_case_loss = report.worst_case_loss;
    cert.worst_output = report.worst_output;
    cert.infinite_outputs = report.infinite_outputs;
    cert.margin = cert.bound - report.worst_case_loss;
    // Same tolerance discipline as ThresholdCalculator's exact
    // search: absorb the float error of summing ~2^Bu state counts.
    double tolerant = cert.bound * (1.0 + 1e-9) + 1e-12;
    cert.certified =
            report.bounded && report.worst_case_loss <= tolerant;
    return cert;
}

std::vector<MechanismCertificate>
PmfCertifier::certifyAll() const
{
    std::vector<MechanismCertificate> out;
    for (const std::string &name :
         MechanismRegistry::instance().names())
        out.push_back(certify(name));
    return out;
}

bool
PmfCertifier::allCertified(
        const std::vector<MechanismCertificate> &certs)
{
    for (const MechanismCertificate &c : certs) {
        if (!c.certified)
            return false;
    }
    return !certs.empty();
}

void
PmfCertifier::writeJson(const std::vector<MechanismCertificate> &certs,
                        const std::string &path)
{
    if (path.empty())
        return;
    JsonWriter json;
    json.beginObject();
    json.beginArray("certificates");
    for (const MechanismCertificate &c : certs) {
        json.beginObject();
        json.field("mechanism", c.mechanism);
        json.field("caps", capNames(c.caps));
        json.field("uniform_bits", c.uniform_bits);
        json.field("epsilon", c.epsilon);
        json.field("loss_multiple", c.loss_multiple);
        json.field("bound", c.bound);
        json.field("threshold_index", c.threshold_index);
        json.field("states", c.states);
        json.field("worst_case_loss", c.worst_case_loss);
        json.field("worst_output", c.worst_output);
        json.field("infinite_outputs", c.infinite_outputs);
        json.field("margin", c.margin);
        json.field("certified", c.certified);
        json.endObject();
    }
    json.endArray();
    json.field("all_certified", allCertified(certs));
    json.endObject();
    if (!json.writeFile(path))
        fatal("PmfCertifier: cannot write certificate file '%s'",
              path.c_str());
}

} // namespace ulpdp
