#include "core/pmf_certifier.h"

#include <chrono>
#include <cmath>

#include "common/json.h"
#include "common/logging.h"
#include "common/parallel_for.h"
#include "core/privacy_loss.h"

namespace ulpdp {

namespace {

/** Human-readable capability list for the certificate. */
std::string
capNames(uint32_t caps)
{
    std::string out;
    auto append = [&out](const char *name) {
        out += (out.empty() ? "" : ",");
        out += name;
    };
    if (caps & mechcap::kBatch)
        append("batch");
    if (caps & mechcap::kConstantTime)
        append("constant-time");
    if (caps & mechcap::kSegmentLoss)
        append("segment-loss");
    if (caps & mechcap::kBoundedOutput)
        append("bounded-output");
    return out;
}

} // namespace

PmfCertifier::PmfCertifier(const FxpMechanismParams &profile,
                           double loss_multiple)
    : profile_(profile), loss_multiple_(loss_multiple)
{
    if (profile.uniform_bits > kMaxUniformBits)
        fatal("PmfCertifier: exact enumeration needs "
              "uniform_bits <= %d, got %d", kMaxUniformBits,
              profile.uniform_bits);
    if (!(loss_multiple >= 1.0))
        fatal("PmfCertifier: loss multiple must be >= 1, got %g",
              loss_multiple);
}

void
PmfCertifier::setJobs(int jobs)
{
    jobs_ = jobs <= 0 ? hardwareJobs() : jobs;
}

void
PmfCertifier::setLegacyEnumeration(bool legacy)
{
    if (legacy && profile_.uniform_bits > kMaxLegacyUniformBits)
        fatal("PmfCertifier: the legacy per-state enumerator needs "
              "uniform_bits <= %d, got %d (2^Bu pipeline "
              "evaluations per mechanism)", kMaxLegacyUniformBits,
              profile_.uniform_bits);
    legacy_ = legacy;
}

MechanismCertificate
PmfCertifier::certify(const std::string &name) const
{
    auto t0 = std::chrono::steady_clock::now();

    const MechanismRegistry::Entry &entry =
            MechanismRegistry::instance().at(name);

    MechanismSpec spec;
    spec.params = profile_;
    spec.loss_multiple = loss_multiple_;
    spec.enumerate_pmf = true;
    spec.legacy_enumerate = legacy_;

    MechanismCertificate cert;
    cert.mechanism = entry.name;
    cert.caps = entry.caps;
    cert.uniform_bits = profile_.uniform_bits;
    cert.epsilon = profile_.epsilon;
    cert.loss_multiple = loss_multiple_;
    cert.bound = loss_multiple_ * profile_.epsilon;
    cert.states = uint64_t{1} << profile_.uniform_bits;
    if (entry.lower) {
        cert.threshold_index = entry.lower(spec).threshold_index;
        // Hand the resolved extension back through the spec override
        // so the output-model factory reuses it instead of repeating
        // the exact search.
        spec.threshold_index = cert.threshold_index;
    }

    // The registered output model over the *enumerated* PMF: every
    // probability in Pr[y | x] traces back to a count of URNG states
    // the real pipeline produces, so the analyzer's sup is the
    // implementation's worst case, not the closed form's.
    std::unique_ptr<DiscreteOutputModel> model = entry.model(spec);
    LossReport report = PrivacyLossAnalyzer::analyze(*model, jobs_);

    cert.worst_case_loss = report.worst_case_loss;
    cert.worst_output = report.worst_output;
    cert.infinite_outputs = report.infinite_outputs;
    cert.margin = cert.bound - report.worst_case_loss;
    // Exact comparison, no tolerance: state accounting is uint64 (the
    // counts sum to exactly 2^Bu) and every probability is
    // count / 2^Bu, so there is no normalization error to absorb.
    cert.certified =
            report.bounded && report.worst_case_loss <= cert.bound;

    auto t1 = std::chrono::steady_clock::now();
    cert.elapsed_seconds =
            std::chrono::duration<double>(t1 - t0).count();
    cert.states_per_second =
            cert.elapsed_seconds > 0.0
                    ? static_cast<double>(cert.states) /
                              cert.elapsed_seconds
                    : 0.0;
    return cert;
}

std::vector<MechanismCertificate>
PmfCertifier::certifyAll() const
{
    std::vector<std::string> names =
            MechanismRegistry::instance().names();
    std::vector<MechanismCertificate> out(names.size());
    if (jobs_ <= 1) {
        for (size_t i = 0; i < names.size(); ++i)
            out[i] = certify(names[i]);
        return out;
    }
    // Parallel across mechanisms; each certificate's inner loss sup
    // then runs serially (jobs = 1) to avoid oversubscription. The
    // output slot is fixed by registration order, so the result is
    // independent of scheduling. Warm the PMF cache first so the
    // workers hit the memoized base PMF instead of racing to build
    // the same table (they would still agree -- the cache returns one
    // object per configuration -- this just keeps the timing honest).
    {
        MechanismSpec warm;
        warm.params = profile_;
        warm.loss_multiple = loss_multiple_;
        warm.enumerate_pmf = true;
        warm.legacy_enumerate = legacy_;
        warm.makePmf();
    }
    PmfCertifier inner(*this);
    inner.jobs_ = 1;
    parallelFor(0, static_cast<int64_t>(names.size()), jobs_, 1,
                [&](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i)
                        out[static_cast<size_t>(i)] = inner.certify(
                                names[static_cast<size_t>(i)]);
                });
    return out;
}

bool
PmfCertifier::allCertified(
        const std::vector<MechanismCertificate> &certs)
{
    for (const MechanismCertificate &c : certs) {
        if (!c.certified)
            return false;
    }
    return !certs.empty();
}

void
PmfCertifier::writeJson(const std::vector<MechanismCertificate> &certs,
                        const std::string &path, bool include_timing)
{
    if (path.empty())
        return;
    JsonWriter json;
    json.beginObject();
    json.beginArray("certificates");
    for (const MechanismCertificate &c : certs) {
        json.beginObject();
        json.field("mechanism", c.mechanism);
        json.field("caps", capNames(c.caps));
        json.field("uniform_bits", c.uniform_bits);
        json.field("epsilon", c.epsilon);
        json.field("loss_multiple", c.loss_multiple);
        json.field("bound", c.bound);
        json.field("threshold_index", c.threshold_index);
        json.field("states", c.states);
        json.field("worst_case_loss", c.worst_case_loss);
        json.field("worst_output", c.worst_output);
        json.field("infinite_outputs", c.infinite_outputs);
        json.field("margin", c.margin);
        json.field("certified", c.certified);
        if (include_timing) {
            json.field("elapsed_seconds", c.elapsed_seconds);
            json.field("states_per_second", c.states_per_second);
        }
        json.endObject();
    }
    json.endArray();
    json.field("all_certified", allCertified(certs));
    json.endObject();
    if (!json.writeFile(path))
        fatal("PmfCertifier: cannot write certificate file '%s'",
              path.c_str());
}

} // namespace ulpdp
