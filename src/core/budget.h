/**
 * @file
 * Privacy budget control for local DP on fixed-point hardware
 * (Section III-C, Algorithm 1, Fig. 8).
 *
 * Each noised report leaks privacy; sequential composition adds the
 * leaks up, so a device must meter them. The paper's insight is that
 * on FxP hardware the leak is *output dependent*: a report that lands
 * near the center of the window is consistent with every input (small
 * loss, the RNG's intrinsic eps_RNG), while a report near the clamp
 * boundary is only barely so (loss approaching the configured n*eps
 * bound). The controller therefore divides the output range into
 * segments with precomputed loss bounds (Fig. 8) and charges each
 * report the loss of the segment its output actually fell in --
 * strictly less total budget than charging the worst case every time.
 *
 * When the budget cannot cover a report, the controller replays the
 * cached previous report: a deterministic function of already-released
 * data, so it costs nothing (Section III-C). An optional replenishment
 * period restores the budget, matching the DP-Box hardware which
 * resets the budget timer while idle in the waiting phase.
 */

#ifndef ULPDP_CORE_BUDGET_H
#define ULPDP_CORE_BUDGET_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/fault.h"
#include "core/fxp_mechanism.h"
#include "core/threshold_calc.h"

namespace ulpdp {

class BudgetLedger;
class RngHealthMonitor;

/**
 * The single authoritative halt condition of Algorithm 1: can a
 * budget of @p remaining cover a report of privacy loss @p loss? The
 * tolerance absorbs the floating-point error accumulated by repeated
 * charging. The per-device controller and the shared pool must never
 * drift on this condition, so both call this one helper.
 */
inline bool
budgetCovers(double remaining, double loss)
{
    return remaining + 1e-12 >= loss;
}

/**
 * Draw a noised output confined to [win_lo, win_hi] (grid indices)
 * for input index @p xi, the common sampling step of both budget
 * controllers.
 *
 * Thresholding clamps one draw. Resampling serves the accept-reject
 * conditional distribution: through the table fast path when the RNG
 * supports it (one truncated-inversion lookup, no redraw loop), else
 * by redrawing up to @p attempt_limit times. When no sample can be
 * accepted -- a mis-provisioned window -- the draw degrades to
 * clamping at the window edge (still window-bounded, so still
 * privacy-classifiable) instead of aborting; @p overflows counts
 * those degradations and @p who names the caller in the warning.
 *
 * @param samples Out: samples drawn (energy/latency accounting).
 */
int64_t drawConfinedOutput(FxpLaplaceRng &rng, RangeControl kind,
                           int64_t xi, int64_t win_lo, int64_t win_hi,
                           uint64_t attempt_limit, uint64_t &samples,
                           uint64_t &overflows, const char *who);

/** One output segment: window extension and the loss charged for it. */
struct BudgetSegment
{
    /** Outputs within [m - t*Delta, M + t*Delta] fall in this segment
     *  (unless an inner segment already claimed them). */
    int64_t threshold_index = 0;

    /** Privacy loss charged for a report landing in this segment. */
    double loss = 0.0;
};

/**
 * Computes the Fig. 8 segmentation: for each requested loss level,
 * the widest window extension whose outputs all stay at or below it.
 */
class LossSegments
{
  public:
    /**
     * @param calc Threshold calculator for the mechanism parameters.
     * @param kind Range-control flavour the device runs.
     * @param loss_multiples Increasing loss levels as multiples of
     *        eps, e.g. {1.5, 2.0, 2.5, 3.0}; each must exceed 1.
     * @return Segments ordered innermost to outermost. The first
     *         entry is the central segment (threshold 0) charged the
     *         RNG's intrinsic central loss eps_RNG; the last entry's
     *         threshold is the device's clamp/resample window.
     */
    static std::vector<BudgetSegment>
    compute(const ThresholdCalculator &calc, RangeControl kind,
            const std::vector<double> &loss_multiples);

    /**
     * The RNG's intrinsic central loss eps_RNG: the worst loss over
     * outputs inside the sensor range itself. On ideal hardware this
     * would be exactly eps; quantization makes it slightly different.
     */
    static double centralLoss(const ThresholdCalculator &calc,
                              RangeControl kind);
};

/**
 * CRC-protected image of the budget state a device persists across
 * power cycles (in FRAM/flash on a real MSP430-class node).
 *
 * The danger of persisting budget is *replay*: an adversary who can
 * cut power after spending budget but before the spend is recorded
 * gets the device to re-release fresh reports against budget it
 * already used. The restore path is therefore monotone by
 * construction -- see BudgetController::restoreFromCheckpoint():
 * remaining budget after restore is min(initial, checkpointed), so a
 * replayed or stale checkpoint can only make the device *more*
 * conservative, and a corrupted one (bad CRC or magic) restores to
 * zero remaining budget with an empty cache -- the device serves the
 * range midpoint (a constant) until a legitimate replenishment.
 */
struct BudgetCheckpoint
{
    /** Layout tag, so a blank or wrong-format FRAM page never parses. */
    static constexpr uint32_t kMagic = 0x42504331; // "BPC1"

    uint32_t magic = 0;

    /** Bit 0: cache_bits holds a cached report. */
    uint32_t flags = 0;

    /** Remaining budget, as the raw IEEE-754 bit pattern (bitwise
     *  storage keeps the CRC meaningful; value semantics would not
     *  round-trip NaNs and signed zeros). */
    uint64_t budget_bits = 0;

    /** Cached previous report (bit pattern; valid when flags bit 0). */
    uint64_t cache_bits = 0;

    /** Device ticks since the last replenishment. */
    uint64_t ticks_since_replenish = 0;

    /** CRC-32 over every preceding byte of this struct. */
    uint32_t crc = 0;

    /** Compute the CRC the preceding fields imply. */
    uint32_t computeCrc() const;

    /** Magic and CRC both check out. */
    bool valid() const;
};

/** Outcome of one data request served by the controller. */
struct BudgetResponse
{
    /** Value released to the requester. */
    double value = 0.0;

    /** Privacy loss charged (0 when served from cache). */
    double charged = 0.0;

    /** True when the cached previous output was replayed. */
    bool from_cache = false;

    /** Laplace samples drawn (resampling latency accounting). A
     *  halted request is served before any sampling, so this is 0
     *  whenever from_cache is true. */
    uint64_t samples_drawn = 0;
};

/** Static configuration of a BudgetController. */
struct BudgetControllerConfig
{
    /** Total privacy budget B. */
    double initial_budget = 5.0;

    /** Budget replenishment period in device ticks; 0 disables. */
    uint64_t replenish_period = 0;

    /** Range-control flavour. */
    RangeControl kind = RangeControl::Thresholding;

    /** Output segments, innermost first (see LossSegments::compute). */
    std::vector<BudgetSegment> segments;

    /**
     * Redraw cap for the naive resampling loop before degrading to a
     * window-edge clamp (the table fast path needs no redraws and
     * ignores this).
     */
    uint64_t resample_attempt_limit = uint64_t{1} << 20;

    /**
     * Requests between CRC scrubs of the sampler table (0 disables
     * the periodic scrub; the lookup-time bounds checks remain).
     */
    uint64_t table_scrub_period = 256;

    /**
     * Fail-secure policy switch. When true (the default), any
     * detected fault -- a tripped URNG health test, a failed table
     * scrub, or a lookup-time integrity fault -- latches the
     * controller into cache-only service: every subsequent request
     * replays the cached report (zero additional privacy loss) and
     * no randomness is drawn from suspect state. When false the
     * device models unhardened silicon: detections are not acted on.
     */
    bool fail_secure = true;
};

/**
 * Algorithm 1: output-adaptive privacy budget metering wrapped around
 * the fixed-point noising datapath.
 */
class BudgetController
{
  public:
    /**
     * @param params Fixed-point mechanism parameters.
     * @param config Budget configuration; segments must be non-empty
     *        with strictly increasing thresholds and losses.
     */
    BudgetController(const FxpMechanismParams &params,
                     const BudgetControllerConfig &config);

    /** Serve one sensor data request for true reading @p x. */
    BudgetResponse request(double x);

    /**
     * Serve the cached report without touching the budget or the
     * RNG -- the fail-secure degradation a caller invokes when the
     * *input* cannot be trusted (e.g. the sensor bus exhausted its
     * retries). Replaying already-released data costs zero budget.
     */
    BudgetResponse serveCached();

    /** Advance device time by @p ticks (drives replenishment). */
    void advanceTime(uint64_t ticks);

    /** Snapshot the budget state for persistence across power loss. */
    BudgetCheckpoint checkpoint() const;

    /**
     * Restore from a persisted checkpoint after a reset. Monotone:
     * the remaining budget becomes min(current, checkpointed) and is
     * clamped into [0, initial], so neither a stale nor a corrupted
     * checkpoint can ever *increase* spendable budget (no replay).
     * An invalid checkpoint (CRC/magic) restores to zero remaining
     * budget and an empty cache. Returns false in that case.
     */
    bool restoreFromCheckpoint(const BudgetCheckpoint &cp);

    /**
     * Attach a continuous health monitor on the noise URNG (borrowed
     * pointer; must outlive the controller). The controller checks
     * the alarm latch before every fresh draw and fails secure on a
     * trip. The caller is responsible for also attaching the monitor
     * to the URNG itself (rng().urng().attachHealthMonitor()).
     */
    void attachHealthMonitor(const RngHealthMonitor *monitor)
    {
        health_ = monitor;
    }

    /**
     * Attach the durable budget ledger (borrowed pointer; must
     * outlive the controller and be mounted). From then on every
     * fresh report's loss is journaled to flash *before* the value is
     * released: if the append cannot complete (power dying, device
     * dead, ledger halted) the transaction is withheld -- the cached
     * report is served instead and the controller latches fail-secure.
     * The persisted record is therefore always at least as pessimistic
     * as what left the device.
     */
    void attachLedger(BudgetLedger *ledger) { ledger_ = ledger; }

    /**
     * Adopt the attached ledger's recovered state after a mount:
     * remaining budget becomes min(current, ledger) -- the same
     * monotone rule as restoreFromCheckpoint() -- and the cached
     * report is taken from the ledger's latest checkpoint. A halted
     * (unrecoverable) ledger restores to zero remaining budget with
     * an empty cache and returns false.
     */
    bool restoreFromLedger();

    /**
     * Commit the controller's authoritative state to the attached
     * ledger as a two-phase checkpoint (bounds journal replay length;
     * call at quiet points). False when no ledger is attached or the
     * commit was cut.
     */
    bool checkpointToLedger();

    /** True once a detected fault latched cache-only service. */
    bool faultLatched() const { return fault_latched_; }

    /** Detection/degradation counters of the hardening logic. */
    const FaultStats &faultStats() const { return fault_stats_; }

    /** Budget remaining right now. */
    double remainingBudget() const { return budget_; }

    /** Requests served from cache so far. */
    uint64_t cacheHits() const { return cache_hits_; }

    /** Requests served with fresh noise so far. */
    uint64_t freshReports() const { return fresh_reports_; }

    /** Total privacy loss charged since the last replenishment. */
    double spentSinceReplenish() const;

    /** The configuration in effect. */
    const BudgetControllerConfig &config() const { return config_; }

    /** The mechanism parameters in effect. */
    const FxpMechanismParams &params() const { return params_; }

    /** The noise RNG (tests assert halted requests never advance it). */
    const FxpLaplaceRng &rng() const { return rng_; }

    /** Mutable noise RNG, for wiring fault hooks and corrupting the
     *  sampler table in fault-injection experiments. */
    FxpLaplaceRng &rng() { return rng_; }

    /** Resampling draws degraded to a window-edge clamp. */
    uint64_t resampleOverflows() const { return resample_overflows_; }

  private:
    /** Latch fail-secure service and count the detection. */
    void latchFault(const char *what);

    /** Build the cache-replay response (shared by halt and faults). */
    BudgetResponse cachedResponse();
    /** Classify a noised output index into a segment; returns the
     *  charged loss. */
    double segmentLoss(int64_t extension) const;

    /**
     * Widest segment the remaining budget can still pay for, or
     * nullptr when even the central segment is unaffordable (the
     * Algorithm 1 halt). Depends only on the budget -- public state --
     * so it is evaluated *before* any randomness is consumed.
     */
    const BudgetSegment *affordableSegment() const;

    FxpMechanismParams params_;
    BudgetControllerConfig config_;
    FxpLaplaceRng rng_;
    int64_t lo_index_;
    int64_t hi_index_;
    double budget_;
    std::optional<double> cache_;
    uint64_t cache_hits_ = 0;
    uint64_t fresh_reports_ = 0;
    uint64_t resample_overflows_ = 0;
    uint64_t overflows_reported_ = 0; // telemetry high-water mark
    uint64_t ticks_since_replenish_ = 0;

    // Hardening state.
    BudgetLedger *ledger_ = nullptr;
    const RngHealthMonitor *health_ = nullptr;
    bool fault_latched_ = false;
    uint64_t requests_since_scrub_ = 0;
    uint64_t rng_integrity_seen_ = 0;
    FaultStats fault_stats_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_BUDGET_H
