#include "core/mechanism_registry.h"

#include <utility>

#include "common/logging.h"
#include "core/bounded_laplace.h"
#include "core/constant_time.h"
#include "core/discrete_laplace.h"
#include "core/resampling_mechanism.h"
#include "core/threshold_calc.h"
#include "core/thresholding_mechanism.h"
#include "telemetry/telemetry.h"

namespace ulpdp {

namespace {

/** Registry observability (docs/METRICS.md "Mechanism selection"). */
struct RegistryMetrics
{
    Counter &lookups = telemetry::registry().counter(
        "ulpdp_registry_lookups_total",
        "Mechanism registry lookups by name",
        "lookups");
    Counter &unknown = telemetry::registry().counter(
        "ulpdp_registry_unknown_total",
        "Lookups naming no registered mechanism",
        "lookups");
    Counter &instantiations = telemetry::registry().counter(
        "ulpdp_registry_instantiations_total",
        "Mechanism objects constructed through the registry",
        "mechanisms");
    Counter &lowerings = telemetry::registry().counter(
        "ulpdp_registry_lowerings_total",
        "Fleet batch-path lowerings resolved through the registry",
        "cohorts");
};

RegistryMetrics &
metrics()
{
    static RegistryMetrics m;
    return m;
}

/**
 * The PMF of a resolved parameter block, in the spec's mode, through
 * the memoized shared cache -- mechanisms sharing a parameter block
 * (and certifyAll(), which re-specs the same profile per mechanism)
 * enumerate each distinct configuration exactly once.
 */
std::shared_ptr<const FxpLaplacePmf>
pmfFor(const FxpMechanismParams &params, const MechanismSpec &spec)
{
    FxpLaplacePmf::Mode mode = FxpLaplacePmf::Mode::Analytic;
    if (spec.enumerate_pmf)
        mode = spec.legacy_enumerate
                       ? FxpLaplacePmf::Mode::EnumeratedLegacy
                       : FxpLaplacePmf::Mode::Enumerated;
    return FxpLaplacePmf::shared(params.rngConfig(), mode);
}

/**
 * Resolve a window half-extension: honour an explicit override, else
 * run the exact search over the (analytic) PMF -- the same search
 * the fleet planner and ThresholdCalculator callers always ran, so
 * registry-selected thresholds are bit-identical to hard-wired ones.
 */
int64_t
resolveThreshold(const MechanismSpec &spec,
                 const FxpMechanismParams &params, RangeControl kind)
{
    if (spec.threshold_index >= 0)
        return spec.threshold_index;
    ThresholdCalculator calc(params);
    int64_t t = calc.exactIndex(kind, spec.loss_multiple);
    if (t < 0)
        fatal("MechanismRegistry: no window extension meets the "
              "%g * eps loss bound for this configuration (eps %g, "
              "Bu %d)", spec.loss_multiple, params.epsilon,
              params.uniform_bits);
    return t;
}

} // namespace

std::shared_ptr<const FxpLaplacePmf>
MechanismSpec::makePmf() const
{
    return pmfFor(params, *this);
}

MechanismRegistry &
MechanismRegistry::instance()
{
    // Construct-on-first-use: the built-ins register inside the
    // constructor, so there is no static-initialization-order window
    // in which the registry exists but is empty.
    static MechanismRegistry registry;
    return registry;
}

void
MechanismRegistry::add(Entry entry)
{
    if (entry.name.empty())
        fatal("MechanismRegistry: refusing to register an unnamed "
              "mechanism");
    if (!entry.make || !entry.model)
        fatal("MechanismRegistry: mechanism '%s' must provide both a "
              "factory and an output model (the model is what "
              "certification enumerates)", entry.name.c_str());
    for (const Entry &e : entries_) {
        if (e.name == entry.name)
            fatal("MechanismRegistry: duplicate mechanism name '%s' "
                  "(shadowing would un-certify the registered one)",
                  entry.name.c_str());
    }

    // Decorate the factories with the selection counters so every
    // registrant -- built-in or external -- is observable without
    // writing its own telemetry.
    auto make = std::move(entry.make);
    entry.make = [make](const MechanismSpec &spec) {
        if (telemetry::enabled())
            metrics().instantiations.inc();
        return make(spec);
    };
    if (entry.lower) {
        auto lower = std::move(entry.lower);
        entry.lower = [lower](const MechanismSpec &spec) {
            if (telemetry::enabled())
                metrics().lowerings.inc();
            return lower(spec);
        };
    }
    entries_.push_back(std::move(entry));
}

const MechanismRegistry::Entry *
MechanismRegistry::find(const std::string &name) const
{
    if (telemetry::enabled())
        metrics().lookups.inc();
    for (const Entry &e : entries_) {
        if (e.name == name)
            return &e;
    }
    if (telemetry::enabled())
        metrics().unknown.inc();
    return nullptr;
}

const MechanismRegistry::Entry &
MechanismRegistry::at(const std::string &name) const
{
    const Entry *e = find(name);
    if (e == nullptr)
        fatal("MechanismRegistry: unknown mechanism '%s' (registered: "
              "%s)", name.c_str(), [this] {
                  std::string all;
                  for (const Entry &r : entries_)
                      all += (all.empty() ? "" : ", ") + r.name;
                  return all;
              }().c_str());
    return *e;
}

std::vector<std::string>
MechanismRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.name);
    return out;
}

std::vector<std::string>
MechanismRegistry::namesWithCaps(uint32_t required) const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_) {
        if (e.hasCaps(required))
            out.push_back(e.name);
    }
    return out;
}

MechanismRegistry::MechanismRegistry()
{
    using mechcap::kBatch;
    using mechcap::kBoundedOutput;
    using mechcap::kConstantTime;
    using mechcap::kSegmentLoss;

    // --- resampling (Section III-B1) -----------------------------
    {
        Entry e;
        e.name = "resampling";
        e.caps = kBatch | kSegmentLoss;
        e.summary = "redraw until the output lands in the "
                    "[m - T*Delta, M + T*Delta] window";
        e.lower = [](const MechanismSpec &spec) {
            MechanismLowering low;
            low.params = spec.params;
            low.threshold_index = resolveThreshold(
                    spec, spec.params, RangeControl::Resampling);
            low.truncated = true;
            return low;
        };
        e.make = [](const MechanismSpec &spec)
                -> std::unique_ptr<Mechanism> {
            int64_t t = resolveThreshold(spec, spec.params,
                                         RangeControl::Resampling);
            return std::make_unique<ResamplingMechanism>(spec.params,
                                                         t);
        };
        e.model = [](const MechanismSpec &spec)
                -> std::unique_ptr<DiscreteOutputModel> {
            int64_t t = resolveThreshold(spec, spec.params,
                                         RangeControl::Resampling);
            return std::make_unique<ResamplingOutputModel>(
                    spec.makePmf(), spec.params.rangeIndexSpan(), t);
        };
        add(std::move(e));
    }

    // --- thresholding (Section III-B2) ---------------------------
    {
        Entry e;
        e.name = "thresholding";
        e.caps = kBatch | kConstantTime | kSegmentLoss;
        e.summary = "one draw, clamped into the window (boundary "
                    "atoms absorb the tail)";
        e.lower = [](const MechanismSpec &spec) {
            MechanismLowering low;
            low.params = spec.params;
            low.threshold_index = resolveThreshold(
                    spec, spec.params, RangeControl::Thresholding);
            low.clamp = true;
            return low;
        };
        e.make = [](const MechanismSpec &spec)
                -> std::unique_ptr<Mechanism> {
            int64_t t = resolveThreshold(spec, spec.params,
                                         RangeControl::Thresholding);
            return std::make_unique<ThresholdingMechanism>(spec.params,
                                                           t);
        };
        e.model = [](const MechanismSpec &spec)
                -> std::unique_ptr<DiscreteOutputModel> {
            int64_t t = resolveThreshold(spec, spec.params,
                                         RangeControl::Thresholding);
            return std::make_unique<ThresholdingOutputModel>(
                    spec.makePmf(), spec.params.rangeIndexSpan(), t);
        };
        add(std::move(e));
    }

    // --- constant-time resampling (Section IV-C) -----------------
    // No fleet lowering: the K-batch draw is a per-device latency
    // mitigation the fleet's truncated rank draw already subsumes
    // (one lookup is constant-time by construction).
    {
        Entry e;
        e.name = "constant-time-resampling";
        e.caps = kConstantTime | kSegmentLoss;
        e.summary = "fixed K-draw batch per report; clamp when all "
                    "K miss";
        e.make = [](const MechanismSpec &spec)
                -> std::unique_ptr<Mechanism> {
            int64_t t = resolveThreshold(spec, spec.params,
                                         RangeControl::Resampling);
            return std::make_unique<ConstantTimeResamplingMechanism>(
                    spec.params, t, spec.batch_size);
        };
        e.model = [](const MechanismSpec &spec)
                -> std::unique_ptr<DiscreteOutputModel> {
            int64_t t = resolveThreshold(spec, spec.params,
                                         RangeControl::Resampling);
            return std::make_unique<ConstantTimeOutputModel>(
                    spec.makePmf(), spec.params.rangeIndexSpan(), t,
                    spec.batch_size);
        };
        add(std::move(e));
    }

    // --- bounded Laplace (Holohan et al.) ------------------------
    {
        Entry e;
        e.name = "bounded-laplace";
        e.caps = kBatch | kConstantTime | kBoundedOutput;
        e.summary = "variance-corrected scale, outputs confined to "
                    "the sensor range (T = 0)";
        e.lower = [](const MechanismSpec &spec) {
            MechanismLowering low;
            low.params = BoundedLaplaceMechanism::resolveParams(
                    spec.params, spec.loss_multiple);
            low.threshold_index = 0;
            low.truncated = true;
            return low;
        };
        e.make = [](const MechanismSpec &spec)
                -> std::unique_ptr<Mechanism> {
            return std::make_unique<BoundedLaplaceMechanism>(
                    BoundedLaplaceMechanism::resolveParams(
                            spec.params, spec.loss_multiple));
        };
        e.model = [](const MechanismSpec &spec)
                -> std::unique_ptr<DiscreteOutputModel> {
            FxpMechanismParams p =
                    BoundedLaplaceMechanism::resolveParams(
                            spec.params, spec.loss_multiple);
            return std::make_unique<ResamplingOutputModel>(
                    pmfFor(p, spec), p.rangeIndexSpan(), 0);
        };
        add(std::move(e));
    }

    // --- discrete Laplace (Floor-rounded pipeline) ---------------
    {
        Entry e;
        e.name = "discrete-laplace";
        e.caps = kBatch | kSegmentLoss;
        e.summary = "two-sided geometric from the truncating "
                    "quantizer; scale pays the ln 2 zero-atom "
                    "penalty, resampling window control";
        e.lower = [](const MechanismSpec &spec) {
            MechanismLowering low;
            low.params = DiscreteLaplaceMechanism::resolveParams(
                    spec.params, spec.loss_multiple);
            low.threshold_index = resolveThreshold(
                    spec, low.params, RangeControl::Resampling);
            low.truncated = true;
            return low;
        };
        e.make = [](const MechanismSpec &spec)
                -> std::unique_ptr<Mechanism> {
            FxpMechanismParams p =
                    DiscreteLaplaceMechanism::resolveParams(
                            spec.params, spec.loss_multiple);
            int64_t t = resolveThreshold(spec, p,
                                         RangeControl::Resampling);
            return std::make_unique<DiscreteLaplaceMechanism>(p, t);
        };
        e.model = [](const MechanismSpec &spec)
                -> std::unique_ptr<DiscreteOutputModel> {
            FxpMechanismParams p =
                    DiscreteLaplaceMechanism::resolveParams(
                            spec.params, spec.loss_multiple);
            int64_t t = resolveThreshold(spec, p,
                                         RangeControl::Resampling);
            return std::make_unique<ResamplingOutputModel>(
                    pmfFor(p, spec), p.rangeIndexSpan(), t);
        };
        add(std::move(e));
    }
}

} // namespace ulpdp
