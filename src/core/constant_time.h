/**
 * @file
 * Constant-time resampling (timing-channel mitigation).
 *
 * Section IV-C of the paper notes that plain resampling leaks through
 * a timing channel: the number of redraws depends on the sensor
 * value, and latency is observable by untrusted software. The
 * suggested fix is to "sample noise multiple times instead of only
 * one and choose one of them in the required region".
 *
 * ConstantTimeResamplingMechanism draws a fixed batch of K noise
 * samples for every report and releases the first one whose noised
 * output lands in the window; if all K miss (probability
 * (1 - Z)^K, with Z the single-draw acceptance probability), the
 * last sample is clamped to the window boundary. Latency and energy
 * are therefore input-independent constants, and the output
 * distribution is a precise mixture of the resampling and
 * thresholding distributions:
 *
 *   interior j :  pmf(j - x) * (1 - (1-Z)^K) / Z(x)
 *   boundary   :  + (1 - Z(x))^(K-1) * (tail mass beyond boundary)
 *
 * which ConstantTimeOutputModel computes exactly so the loss bound
 * can be verified like every other mechanism. As K grows the clamp
 * atoms vanish geometrically and the distribution converges to pure
 * resampling.
 */

#ifndef ULPDP_CORE_CONSTANT_TIME_H
#define ULPDP_CORE_CONSTANT_TIME_H

#include <vector>

#include "core/fxp_mechanism.h"
#include "core/output_model.h"

namespace ulpdp {

/** Resampling with a fixed K-sample batch per report. */
class ConstantTimeResamplingMechanism : public FxpMechanismBase
{
  public:
    /**
     * @param params Shared fixed-point parameters.
     * @param threshold_index Window half-extension in Delta units.
     * @param batch_size K, the fixed number of draws per report
     *        (>= 1). K = 1 degenerates to thresholding.
     */
    ConstantTimeResamplingMechanism(const FxpMechanismParams &params,
                                    int64_t threshold_index,
                                    int batch_size);

    NoisedReport noise(double x) override;
    std::string name() const override
    {
        return "Constant-Time Resampling";
    }
    bool guaranteesLdp() const override { return true; }

    /** Window half-extension in Delta units. */
    int64_t thresholdIndex() const { return threshold_index_; }

    /** Fixed batch size K. */
    int batchSize() const { return batch_size_; }

    /** Reports that fell back to the clamp (all K draws missed). */
    uint64_t clampFallbacks() const { return clamp_fallbacks_; }

    /** Total reports served. */
    uint64_t totalReports() const { return total_reports_; }

  private:
    int64_t threshold_index_;
    int batch_size_;
    /** Reused per-report buffer for the batched K draws. */
    std::vector<int64_t> batch_;
    uint64_t clamp_fallbacks_ = 0;
    uint64_t total_reports_ = 0;
};

/** Exact conditional output distribution of the K-batch mechanism. */
class ConstantTimeOutputModel : public DiscreteOutputModel
{
  public:
    ConstantTimeOutputModel(std::shared_ptr<const NoisePmf> pmf,
                            int64_t span, int64_t threshold,
                            int batch_size);

    int64_t span() const override { return span_; }
    int64_t outputLo() const override { return -threshold_; }
    int64_t outputHi() const override { return span_ + threshold_; }
    double prob(int64_t j, int64_t i) const override;
    std::string name() const override
    {
        return "Constant-Time Resampling";
    }

    /** Single-draw acceptance probability Z(i). */
    double acceptProbability(int64_t i) const;

    /** Probability the clamp fallback fires for input i. */
    double fallbackProbability(int64_t i) const;

  private:
    std::shared_ptr<const NoisePmf> pmf_;
    int64_t span_;
    int64_t threshold_;
    int batch_size_;
    std::vector<double> accept_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_CONSTANT_TIME_H
