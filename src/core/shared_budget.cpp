#include "core/shared_budget.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ulpdp {

SharedBudgetPool::SharedBudgetPool(double initial_budget,
                                   uint64_t replenish_period)
    : initial_budget_(initial_budget), remaining_(initial_budget),
      replenish_period_(replenish_period)
{
    if (!(initial_budget > 0.0))
        fatal("SharedBudgetPool: budget must be positive, got %g",
              initial_budget);
}

bool
SharedBudgetPool::covers(double loss) const
{
    return budgetCovers(remaining_, loss);
}

bool
SharedBudgetPool::tryCharge(double loss)
{
    ULPDP_ASSERT(loss >= 0.0);
    if (!covers(loss))
        return false;
    remaining_ -= loss;
    total_charged_ += loss;
    return true;
}

void
SharedBudgetPool::advanceTime(uint64_t ticks)
{
    if (replenish_period_ == 0)
        return;
    ticks_since_replenish_ += ticks;
    if (ticks_since_replenish_ >= replenish_period_) {
        ticks_since_replenish_ %= replenish_period_;
        remaining_ = initial_budget_;
    }
}

BudgetedSensor::BudgetedSensor(std::string name,
                               const FxpMechanismParams &params,
                               RangeControl kind,
                               std::vector<BudgetSegment> segments,
                               SharedBudgetPool &pool)
    : name_(std::move(name)), params_(params), kind_(kind),
      segments_(std::move(segments)), pool_(pool),
      rng_(params.rngConfig(), params.seed)
{
    if (segments_.empty())
        fatal("BudgetedSensor %s: need at least one segment",
              name_.c_str());
    for (size_t i = 1; i < segments_.size(); ++i) {
        if (segments_[i].threshold_index <=
                segments_[i - 1].threshold_index ||
            segments_[i].loss < segments_[i - 1].loss)
            fatal("BudgetedSensor %s: segments must have increasing "
                  "thresholds and non-decreasing losses",
                  name_.c_str());
    }

    double delta = params.resolvedDelta();
    lo_index_ = static_cast<int64_t>(std::llround(params.range.lo /
                                                  delta));
    hi_index_ = static_cast<int64_t>(std::llround(params.range.hi /
                                                  delta));
}

double
BudgetedSensor::segmentLoss(int64_t extension) const
{
    for (const auto &seg : segments_) {
        if (extension <= seg.threshold_index)
            return seg.loss;
    }
    panic("BudgetedSensor %s: extension %lld beyond outermost "
          "segment", name_.c_str(), static_cast<long long>(extension));
}

const BudgetSegment *
BudgetedSensor::affordableSegment() const
{
    for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
        if (pool_.covers(it->loss))
            return &*it;
    }
    return nullptr;
}

BudgetResponse
BudgetedSensor::request(double x)
{
    // Same halt-then-serve ordering as BudgetController::request:
    // affordability is decided from the shared pool alone before any
    // noise is drawn, so a halted sensor consumes neither URNG state
    // nor sampling energy.
    const BudgetSegment *afford = affordableSegment();
    if (afford == nullptr) {
        BudgetResponse resp;
        resp.value = cache_.value_or(params_.range.mid());
        resp.from_cache = true;
        resp.charged = 0.0;
        resp.samples_drawn = 0;
        ++cache_hits_;
        return resp;
    }

    double delta = params_.resolvedDelta();
    int64_t xi = std::clamp(
        static_cast<int64_t>(std::llround(x / delta)), lo_index_,
        hi_index_);

    int64_t outer = afford->threshold_index;
    int64_t win_lo = lo_index_ - outer;
    int64_t win_hi = hi_index_ + outer;

    uint64_t samples = 0;
    int64_t yi = drawConfinedOutput(rng_, kind_, xi, win_lo, win_hi,
                                    uint64_t{1} << 20, samples,
                                    resample_overflows_,
                                    name_.c_str());

    int64_t ext = 0;
    if (yi < lo_index_)
        ext = lo_index_ - yi;
    else if (yi > hi_index_)
        ext = yi - hi_index_;
    double loss = segmentLoss(ext);

    // Every segment inside the affordable window is covered, so the
    // charge cannot fail (the pool only changes through this sensor
    // between the check and here).
    bool charged = pool_.tryCharge(loss);
    ULPDP_ASSERT(charged);

    BudgetResponse resp;
    resp.samples_drawn = samples;
    resp.value = static_cast<double>(yi) * delta;
    resp.charged = loss;
    cache_ = resp.value;
    ++fresh_reports_;
    return resp;
}

} // namespace ulpdp
