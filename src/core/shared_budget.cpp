#include "core/shared_budget.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ulpdp {

SharedBudgetPool::SharedBudgetPool(double initial_budget,
                                   uint64_t replenish_period)
    : initial_budget_(initial_budget), remaining_(initial_budget),
      replenish_period_(replenish_period)
{
    if (!(initial_budget > 0.0))
        fatal("SharedBudgetPool: budget must be positive, got %g",
              initial_budget);
}

bool
SharedBudgetPool::tryCharge(double loss)
{
    ULPDP_ASSERT(loss >= 0.0);
    if (remaining_ + 1e-12 < loss)
        return false;
    remaining_ -= loss;
    total_charged_ += loss;
    return true;
}

void
SharedBudgetPool::advanceTime(uint64_t ticks)
{
    if (replenish_period_ == 0)
        return;
    ticks_since_replenish_ += ticks;
    if (ticks_since_replenish_ >= replenish_period_) {
        ticks_since_replenish_ %= replenish_period_;
        remaining_ = initial_budget_;
    }
}

BudgetedSensor::BudgetedSensor(std::string name,
                               const FxpMechanismParams &params,
                               RangeControl kind,
                               std::vector<BudgetSegment> segments,
                               SharedBudgetPool &pool)
    : name_(std::move(name)), params_(params), kind_(kind),
      segments_(std::move(segments)), pool_(pool),
      rng_(params.rngConfig(), params.seed)
{
    if (segments_.empty())
        fatal("BudgetedSensor %s: need at least one segment",
              name_.c_str());
    for (size_t i = 1; i < segments_.size(); ++i) {
        if (segments_[i].threshold_index <=
                segments_[i - 1].threshold_index ||
            segments_[i].loss < segments_[i - 1].loss)
            fatal("BudgetedSensor %s: segments must have increasing "
                  "thresholds and non-decreasing losses",
                  name_.c_str());
    }

    double delta = params.resolvedDelta();
    lo_index_ = static_cast<int64_t>(std::llround(params.range.lo /
                                                  delta));
    hi_index_ = static_cast<int64_t>(std::llround(params.range.hi /
                                                  delta));
}

double
BudgetedSensor::segmentLoss(int64_t extension) const
{
    for (const auto &seg : segments_) {
        if (extension <= seg.threshold_index)
            return seg.loss;
    }
    panic("BudgetedSensor %s: extension %lld beyond outermost "
          "segment", name_.c_str(), static_cast<long long>(extension));
}

BudgetResponse
BudgetedSensor::request(double x)
{
    double delta = params_.resolvedDelta();
    int64_t xi = std::clamp(
        static_cast<int64_t>(std::llround(x / delta)), lo_index_,
        hi_index_);

    int64_t outer = segments_.back().threshold_index;
    int64_t win_lo = lo_index_ - outer;
    int64_t win_hi = hi_index_ + outer;

    uint64_t samples = 0;
    int64_t yi = 0;
    if (kind_ == RangeControl::Resampling) {
        while (true) {
            ++samples;
            if (samples > (uint64_t{1} << 20))
                panic("BudgetedSensor %s: resampling never accepted",
                      name_.c_str());
            yi = xi + rng_.sampleIndex();
            if (yi >= win_lo && yi <= win_hi)
                break;
        }
    } else {
        samples = 1;
        yi = std::clamp(xi + rng_.sampleIndex(), win_lo, win_hi);
    }

    int64_t ext = 0;
    if (yi < lo_index_)
        ext = lo_index_ - yi;
    else if (yi > hi_index_)
        ext = yi - hi_index_;
    double loss = segmentLoss(ext);

    BudgetResponse resp;
    resp.samples_drawn = samples;
    if (!pool_.tryCharge(loss)) {
        resp.value = cache_.value_or(params_.range.mid());
        resp.from_cache = true;
        resp.charged = 0.0;
        ++cache_hits_;
        return resp;
    }
    resp.value = static_cast<double>(yi) * delta;
    resp.charged = loss;
    cache_ = resp.value;
    ++fresh_reports_;
    return resp;
}

} // namespace ulpdp
