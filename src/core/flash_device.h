/**
 * @file
 * Abstract persistent-storage device under the budget ledger.
 *
 * PR 2 made the budget checkpoint CRC-protected and monotone, but the
 * medium it survives on stayed an abstraction: the chaos harness
 * handed a struct across a simulated power cycle and the only failure
 * mode was a bit flip. Real ULP nodes persist into NOR flash, whose
 * failure modes are richer and *asymmetric*: programming can only
 * clear bits (1 -> 0), erasing is slow and block-granular, a power
 * loss mid-program leaves a prefix of the write (and a partially
 * programmed byte at the cut), a power loss mid-erase leaves a
 * half-erased block, and every erase wears the block out a little.
 *
 * This interface is what the ledger (core layer) writes through. The
 * simulation library implements it with a faithful NOR model plus
 * fault-injection hooks (sim/nor_flash.h); the core layer never
 * depends on the simulator, matching the FaultHook layering of
 * common/fault.h.
 *
 * Contract every implementation must keep:
 *
 *  - read() always succeeds and returns the bits as the device would
 *    sense them (stuck-at faults show up here, not as errors);
 *  - program() only clears bits; attempting to set a 0 back to 1 is
 *    silently ineffective for that bit, exactly like the silicon;
 *  - program()/erase() return false when power was lost mid-operation.
 *    The partial state (a programmed prefix, a half-erased block) is
 *    retained, and the device refuses further mutations until
 *    powerCycle() -- callers must treat false as "you are about to
 *    die" and make no further assumptions about durability.
 */

#ifndef ULPDP_CORE_FLASH_DEVICE_H
#define ULPDP_CORE_FLASH_DEVICE_H

#include <cstddef>
#include <cstdint>

namespace ulpdp {

/** Physical layout of a flash part. */
struct FlashGeometry
{
    /** Erase blocks the part provides. */
    uint32_t block_count = 8;

    /** Bytes per erase block (erase granularity). */
    uint32_t block_size = 256;

    /** Total addressable bytes. */
    uint64_t
    totalBytes() const
    {
        return static_cast<uint64_t>(block_count) * block_size;
    }
};

/** Storage interface the budget ledger journals through. */
class FlashDevice
{
  public:
    virtual ~FlashDevice() = default;

    /** The part's geometry (immutable). */
    virtual const FlashGeometry &geometry() const = 0;

    /** Read @p len bytes at byte address @p addr into @p dst. */
    virtual void read(uint64_t addr, void *dst, size_t len) const = 0;

    /**
     * Program @p len bytes at @p addr. NOR semantics: the stored
     * value becomes old & new per bit. Returns false when power was
     * lost mid-program (a prefix of the bytes -- possibly plus a
     * partially programmed byte -- made it to the array).
     */
    virtual bool program(uint64_t addr, const void *src,
                         size_t len) = 0;

    /**
     * Erase one block to all-0xFF. Returns false when power was lost
     * mid-erase (a prefix of the block reads erased, the rest holds
     * stale data; the erase count still advanced -- wear is physical).
     */
    virtual bool erase(uint32_t block) = 0;

    /** Lifetime erase count of @p block (wear). */
    virtual uint64_t eraseCount(uint32_t block) const = 0;

    /** False after a mid-operation power loss until powerCycle(). */
    virtual bool alive() const = 0;

    /** Restore power. Array contents persist; wear persists. */
    virtual void powerCycle() = 0;
};

} // namespace ulpdp

#endif // ULPDP_CORE_FLASH_DEVICE_H
