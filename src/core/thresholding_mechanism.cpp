#include "core/thresholding_mechanism.h"

#include "common/logging.h"

namespace ulpdp {

ThresholdingMechanism::ThresholdingMechanism(
        const FxpMechanismParams &params, int64_t threshold_index)
    : FxpMechanismBase(params), threshold_index_(threshold_index)
{
    if (threshold_index < 0)
        fatal("ThresholdingMechanism: threshold_index must be "
              "non-negative, got %lld",
              static_cast<long long>(threshold_index));
}

NoisedReport
ThresholdingMechanism::noise(double x)
{
    int64_t xi = checkAndIndex(x);
    int64_t k = rng_.sampleIndexFast();
    int64_t yi = xi + k;

    bool clamped = false;
    if (yi < windowLoIndex()) {
        yi = windowLoIndex();
        clamped = true;
    } else if (yi > windowHiIndex()) {
        yi = windowHiIndex();
        clamped = true;
    }
    if (clamped)
        ++clamped_reports_;
    ++total_reports_;
    return NoisedReport{toValue(yi), 1};
}

} // namespace ulpdp
