#include "core/thresholding_mechanism.h"

#include <algorithm>

#include "common/logging.h"

namespace ulpdp {

ThresholdingMechanism::ThresholdingMechanism(
        const FxpMechanismParams &params, int64_t threshold_index)
    : FxpMechanismBase(params), threshold_index_(threshold_index)
{
    if (threshold_index < 0)
        fatal("ThresholdingMechanism: threshold_index must be "
              "non-negative, got %lld",
              static_cast<long long>(threshold_index));
}

NoisedReport
ThresholdingMechanism::noise(double x)
{
    int64_t xi = checkAndIndex(x);
    int64_t k = rng_.sampleIndexFast();
    int64_t yi = xi + k;

    bool clamped = false;
    if (yi < windowLoIndex()) {
        yi = windowLoIndex();
        clamped = true;
    } else if (yi > windowHiIndex()) {
        yi = windowHiIndex();
        clamped = true;
    }
    if (clamped)
        ++clamped_reports_;
    ++total_reports_;
    return NoisedReport{toValue(yi), 1};
}

void
ThresholdingMechanism::sampleBatch(const double *x, double *out,
                                   size_t n)
{
    const int64_t win_lo = windowLoIndex();
    const int64_t win_hi = windowHiIndex();

    constexpr size_t kChunk = 256;
    int64_t xi[kChunk];
    int64_t noise[kChunk];
    size_t i = 0;
    while (i < n) {
        size_t c = std::min(kChunk, n - i);
        for (size_t j = 0; j < c; ++j)
            xi[j] = checkAndIndex(x[i + j]);
        rng_.sampleBatch(noise, c);
        for (size_t j = 0; j < c; ++j) {
            int64_t yi =
                std::clamp(xi[j] + noise[j], win_lo, win_hi);
            clamped_reports_ +=
                static_cast<uint64_t>(yi != xi[j] + noise[j]);
            out[i + j] = toValue(yi);
        }
        total_reports_ += c;
        i += c;
    }
}

} // namespace ulpdp
