/**
 * @file
 * Thresholding mechanism (Section III-B2).
 *
 * Instead of redrawing out-of-window noise, the noised output is
 * clamped ("rounded to the threshold"): outputs below m - n_th2 become
 * m - n_th2, outputs above M + n_th2 become M + n_th2. Probability
 * mass piles up at the two boundary values (Fig. 7), but with n_th2
 * chosen by Eq. (15) the boundary atoms of every input are within
 * exp(n eps) of each other, so the loss stays bounded -- at the cost
 * of a distorted noise distribution. Exactly one sample per report:
 * best energy efficiency, deterministic 2-cycle latency.
 */

#ifndef ULPDP_CORE_THRESHOLDING_MECHANISM_H
#define ULPDP_CORE_THRESHOLDING_MECHANISM_H

#include "core/fxp_mechanism.h"

namespace ulpdp {

/** Fixed-point Laplace mechanism with clamping range control. */
class ThresholdingMechanism : public FxpMechanismBase
{
  public:
    /**
     * @param params Shared fixed-point parameters.
     * @param threshold_index Window half-extension n_th2 in Delta
     *        units; outputs are clamped into
     *        [m - n_th2 * Delta, M + n_th2 * Delta].
     */
    ThresholdingMechanism(const FxpMechanismParams &params,
                          int64_t threshold_index);

    NoisedReport noise(double x) override;
    std::string name() const override { return "Thresholding"; }
    bool guaranteesLdp() const override { return true; }

    /**
     * Batch counterpart of noise(): release one report per reading
     * into @p out. Bit-identical to calling noise(x[i]) in a loop --
     * same URNG words (the noise indices come off the batch sampling
     * layer in whole blocks via FxpLaplaceRng::sampleBatch), same
     * clamp accounting -- with the per-report virtual dispatch and
     * window recomputation hoisted out of the loop.
     */
    void sampleBatch(const double *x, double *out, size_t n);

    /** Window half-extension n_th2 in Delta units. */
    int64_t thresholdIndex() const { return threshold_index_; }

    /** Lowest releasable output index (m - n_th2). */
    int64_t windowLoIndex() const { return lo_index_ - threshold_index_; }

    /** Highest releasable output index (M + n_th2). */
    int64_t windowHiIndex() const { return hi_index_ + threshold_index_; }

    /** Reports whose raw output was clamped to a boundary. */
    uint64_t clampedReports() const { return clamped_reports_; }

    /** Total noise() calls served. */
    uint64_t totalReports() const { return total_reports_; }

  private:
    int64_t threshold_index_;
    uint64_t clamped_reports_ = 0;
    uint64_t total_reports_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_CORE_THRESHOLDING_MECHANISM_H
