/**
 * @file
 * Discrete Laplace (two-sided geometric) mechanism.
 *
 * Switching the Fig. 3 quantizer from round-nearest to truncation
 * (FxpLaplaceConfig::Rounding::Floor) makes the magnitude law exactly
 * geometric: flooring an Exponential(1/lambda) magnitude to the Delta
 * grid yields Pr[|n| = k Delta] proportional to e^{-a k} with
 * a = Delta / lambda -- the discrete Laplace distribution of
 * Ghosh/Roughgarden/Sundararajan, here emerging from the *same*
 * hardware pipeline minus the half-LSB rounding adder.
 *
 * The geometric law has no half-bin offset in its Eq. (11)
 * boundaries (m1(k) = 2^Bu e^{-ak}, m2(k) = 2^Bu e^{-a(k+1)}), but
 * the pipeline's random-sign stage charges a real privacy price for
 * the cheaper quantizer: both signs map magnitude bin 0 to output 0,
 * so the zero atom carries *twice* the single-sided geometric mass
 * (round-nearest dodges this because its bin 0 spans only half a
 * step per side). The output ratio P(0)/P(k) = 2 e^{ak} therefore
 * carries a scale-invariant ln 2 penalty: no window extension T can
 * push the worst-case loss below ln 2, and the exact search alone
 * fails whenever the loss target is near it. resolveParams() pays
 * the penalty in utility instead -- it inflates lambda_scale from
 * the closed-form seed eps / (n eps - ln 2) until the exact search
 * over the Floor-rounded PMF finds a certifying threshold.
 *
 * The fixed-point failure mode is otherwise unchanged: the tail
 * still quantizes to interior gaps, so the variant needs the same
 * resampling window control and the same exact threshold search --
 * both of which work unmodified because they only consume the
 * (rounding-aware) PMF.
 *
 * Implementation-wise this *is* a ResamplingMechanism over the Floor
 * pipeline; the subclass exists to pin the rounding mode, resolve
 * the scale correction, and carry the distinct display name through
 * the evaluation tables.
 */

#ifndef ULPDP_CORE_DISCRETE_LAPLACE_H
#define ULPDP_CORE_DISCRETE_LAPLACE_H

#include "core/resampling_mechanism.h"

namespace ulpdp {

/** Resampling-controlled discrete Laplace (Floor-rounded pipeline). */
class DiscreteLaplaceMechanism : public ResamplingMechanism
{
  public:
    /**
     * @param params Shared fixed-point parameters; the rounding mode
     *        is forced to Floor regardless of what the block says.
     * @param threshold_index Window half-extension in Delta units,
     *        from ThresholdCalculator over the Floor-rounded params.
     */
    DiscreteLaplaceMechanism(const FxpMechanismParams &params,
                             int64_t threshold_index)
        : ResamplingMechanism(withFloorRounding(params),
                              threshold_index)
    {}

    std::string name() const override { return "Discrete Laplace"; }

    /** The parameter block this mechanism actually runs. */
    static FxpMechanismParams
    withFloorRounding(FxpMechanismParams params)
    {
        params.rounding = FxpLaplaceConfig::Rounding::Floor;
        return params;
    }

    /**
     * Resolve a parameter block for a target worst-case loss of
     * loss_multiple * eps: Floor rounding plus the smallest
     * lambda_scale whose exact window search clears the bound (the
     * doubled zero atom costs a scale-invariant ln 2 of loss, so the
     * geometric term d / lambda must shrink to make room). Fatal when
     * the target itself is at or below ln 2.
     */
    static FxpMechanismParams
    resolveParams(const FxpMechanismParams &base, double loss_multiple);
};

} // namespace ulpdp

#endif // ULPDP_CORE_DISCRETE_LAPLACE_H
