/**
 * @file
 * Shared privacy budget across multiple sensors.
 *
 * Section IV of the paper: "If there is more than one sensor, there
 * also may need to be a hardware mechanism for sharing the budget
 * between all sensors since the readings of different sensors could
 * be combined to compromise privacy." An adversary who correlates a
 * wearable's accelerometer, heart-rate and barometer streams learns
 * more than any single stream allows; by sequential composition the
 * *sum* of the per-report losses across all sensors is what must be
 * bounded.
 *
 * SharedBudgetPool is that common pool; BudgetedSensor wraps one
 * sensor's fixed-point noising datapath (with its own segments,
 * window and cache) and charges every fresh report against the pool.
 * When the pool cannot cover a charge the sensor replays its own
 * cached report. Replenishment is on the pool, shared by all.
 */

#ifndef ULPDP_CORE_SHARED_BUDGET_H
#define ULPDP_CORE_SHARED_BUDGET_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/budget.h"

namespace ulpdp {

/** A privacy-loss pool shared by several sensors' noising paths. */
class SharedBudgetPool
{
  public:
    /**
     * @param initial_budget Total loss allowed per epoch (> 0).
     * @param replenish_period Ticks between refills; 0 disables.
     */
    explicit SharedBudgetPool(double initial_budget,
                              uint64_t replenish_period = 0);

    /** Try to charge @p loss; false leaves the pool untouched. */
    bool tryCharge(double loss);

    /** Whether a charge of @p loss would succeed right now (the
     *  shared budgetCovers condition, without charging). */
    bool covers(double loss) const;

    /** Budget remaining in the current epoch. */
    double remaining() const { return remaining_; }

    /** Total loss charged since construction (across epochs). */
    double totalCharged() const { return total_charged_; }

    /** Advance shared device time (drives replenishment). */
    void advanceTime(uint64_t ticks);

    /** Configured per-epoch budget. */
    double initialBudget() const { return initial_budget_; }

  private:
    double initial_budget_;
    double remaining_;
    double total_charged_ = 0.0;
    uint64_t replenish_period_;
    uint64_t ticks_since_replenish_ = 0;
};

/** One sensor's noising path charging a shared pool. */
class BudgetedSensor
{
  public:
    /**
     * @param name Sensor name (reports, debugging).
     * @param params Fixed-point mechanism parameters of this sensor.
     * @param kind Range-control flavour.
     * @param segments Output-loss segments (LossSegments::compute).
     * @param pool Shared pool; must outlive the sensor.
     */
    BudgetedSensor(std::string name, const FxpMechanismParams &params,
                   RangeControl kind,
                   std::vector<BudgetSegment> segments,
                   SharedBudgetPool &pool);

    /** Serve one request for this sensor's reading @p x. */
    BudgetResponse request(double x);

    /** Sensor name. */
    const std::string &name() const { return name_; }

    /** Fresh (non-cache) reports served. */
    uint64_t freshReports() const { return fresh_reports_; }

    /** Cache replays served. */
    uint64_t cacheHits() const { return cache_hits_; }

    /** Resampling draws degraded to a window-edge clamp. */
    uint64_t resampleOverflows() const { return resample_overflows_; }

    /** The noise RNG (tests assert halted requests never advance it). */
    const FxpLaplaceRng &rng() const { return rng_; }

  private:
    double segmentLoss(int64_t extension) const;

    /** Widest segment the pool can still pay for, or nullptr (the
     *  halt); evaluated before any randomness is consumed. */
    const BudgetSegment *affordableSegment() const;

    std::string name_;
    FxpMechanismParams params_;
    RangeControl kind_;
    std::vector<BudgetSegment> segments_;
    SharedBudgetPool &pool_;
    FxpLaplaceRng rng_;
    int64_t lo_index_;
    int64_t hi_index_;
    std::optional<double> cache_;
    uint64_t fresh_reports_ = 0;
    uint64_t cache_hits_ = 0;
    uint64_t resample_overflows_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_CORE_SHARED_BUDGET_H
