/**
 * @file
 * Exact privacy-loss analysis (Eq. 4) of discrete mechanisms.
 *
 * For a mechanism with conditional output distribution Pr[y | x], the
 * privacy loss incurred by reporting y is
 *
 *   loss(y) = max_{x1, x2} log(Pr[y | x1] / Pr[y | x2])
 *           = log(max_x Pr[y | x] / min_x Pr[y | x]),
 *
 * and the mechanism is eps-LDP iff sup_y loss(y) <= eps. The analyzer
 * enumerates the discrete output support exactly -- no sampling -- and
 * reports +infinity when some output is producible by one input but
 * not another (the Section III-A3 failure of the naive baseline).
 */

#ifndef ULPDP_CORE_PRIVACY_LOSS_H
#define ULPDP_CORE_PRIVACY_LOSS_H

#include <cstdint>
#include <vector>

#include "core/output_model.h"

namespace ulpdp {

/** Loss at one output value, for loss-vs-output curves (Figs. 5, 8). */
struct OutputLoss
{
    /** Output index on the Delta grid (0 = range lower limit). */
    int64_t output_index = 0;

    /** Privacy loss at this output; may be +infinity. */
    double loss = 0.0;
};

/** Summary of a full worst-case analysis. */
struct LossReport
{
    /** sup over outputs of the per-output loss; may be +infinity. */
    double worst_case_loss = 0.0;

    /** Output index attaining the worst case. */
    int64_t worst_output = 0;

    /** True iff worst_case_loss is finite. */
    bool bounded = false;

    /** Number of output values with infinite loss. */
    uint64_t infinite_outputs = 0;
};

/** Exact worst-case loss analysis over a DiscreteOutputModel. */
class PrivacyLossAnalyzer
{
  public:
    /**
     * Loss at a single output index, maximised over all input pairs.
     * Returns +infinity if some input can and another cannot produce
     * @p j; returns -infinity (by convention: "unreachable") if no
     * input produces @p j at all.
     */
    static double lossAtOutput(const DiscreteOutputModel &model,
                               int64_t j);

    /**
     * Full worst-case analysis over the model's output support.
     *
     * @param jobs Worker threads for the sweep over outputs: 1 (the
     *        default) analyzes serially; 0 uses every hardware
     *        thread. The result is identical for every job count --
     *        per-chunk partial reports are merged in output order
     *        with the same strict-greater argmax the serial loop
     *        uses, so ties resolve to the same output index. Requires
     *        model.prob() to be safe for concurrent calls (all
     *        registry models are immutable after construction).
     */
    static LossReport analyze(const DiscreteOutputModel &model,
                              int jobs = 1);

    /**
     * Loss as a function of the output index over the whole output
     * range, for plotting (unreachable outputs are skipped).
     */
    static std::vector<OutputLoss>
    lossCurve(const DiscreteOutputModel &model);

    /**
     * Convenience check: is the mechanism eps-LDP with eps =
     * @p loss_bound (within a tiny numerical tolerance)?
     */
    static bool satisfiesLdp(const DiscreteOutputModel &model,
                             double loss_bound);
};

} // namespace ulpdp

#endif // ULPDP_CORE_PRIVACY_LOSS_H
