/**
 * @file
 * Sequential-composition privacy accountant.
 *
 * The composition theorem (Section II-A): answering queries with
 * eps_1, ..., eps_n -LDP mechanisms leaks at most sum(eps_i) in total.
 * This accountant is the software-side bookkeeping a data consumer or
 * trusted coordinator keeps; the in-device, output-adaptive version is
 * BudgetController.
 */

#ifndef ULPDP_CORE_ACCOUNTANT_H
#define ULPDP_CORE_ACCOUNTANT_H

#include <cstdint>

#include "common/logging.h"

namespace ulpdp {

/** Tracks cumulative privacy loss against a fixed budget. */
class PrivacyAccountant
{
  public:
    /** @param budget Total allowed loss; must be positive. */
    explicit PrivacyAccountant(double budget) : budget_(budget)
    {
        if (!(budget > 0.0))
            fatal("PrivacyAccountant: budget must be positive, got %g",
                  budget);
    }

    /** Can a mechanism costing @p eps still run? */
    bool
    canSpend(double eps) const
    {
        return spent_ + eps <= budget_ + 1e-12;
    }

    /**
     * Record a mechanism invocation costing @p eps.
     * @return false (and records nothing) if the budget is exceeded.
     */
    bool
    spend(double eps)
    {
        ULPDP_ASSERT(eps >= 0.0);
        if (!canSpend(eps))
            return false;
        spent_ += eps;
        ++queries_;
        return true;
    }

    /** Total loss spent so far. */
    double spent() const { return spent_; }

    /** Remaining budget. */
    double remaining() const { return budget_ - spent_; }

    /** Configured total budget. */
    double budget() const { return budget_; }

    /** Number of recorded queries. */
    uint64_t queries() const { return queries_; }

    /** Reset to an unspent state (e.g. after a replenishment epoch). */
    void
    reset()
    {
        spent_ = 0.0;
        queries_ = 0;
    }

  private:
    double budget_;
    double spent_ = 0.0;
    uint64_t queries_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_CORE_ACCOUNTANT_H
