#include "core/threshold_calc.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/privacy_loss.h"

namespace ulpdp {

ThresholdCalculator::ThresholdCalculator(const FxpMechanismParams &params)
    : params_(params),
      pmf_(std::make_shared<FxpLaplacePmf>(params.rngConfig())),
      span_(params.rangeIndexSpan())
{
    if (span_ <= 0)
        fatal("ThresholdCalculator: sensor range shorter than one "
              "quantization step");
}

int64_t
ThresholdCalculator::closedFormIndex(RangeControl kind, double n) const
{
    if (!(n > 1.0))
        fatal("ThresholdCalculator: loss multiple n must exceed 1, "
              "got %g", n);

    double eps = params_.epsilon;
    double a = params_.resolvedDelta() / params_.lambda(); // eps*Delta/d
    double bu_ln2 = params_.uniform_bits * std::log(2.0);

    double k;
    if (kind == RangeControl::Resampling) {
        // Eq. (13): G(k) >= (e^{n eps} + 1) / (e^{(n-1) eps} - 1)
        // with G(k) = 2^Bu e^{-a k} (e^{a/2} - e^{-a/2}).
        double sinh_term = std::exp(a / 2.0) - std::exp(-a / 2.0);
        k = (bu_ln2 + std::log(sinh_term) +
             std::log(std::exp((n - 1.0) * eps) - 1.0) -
             std::log(std::exp(n * eps) + 1.0)) / a;
    } else {
        // Eq. (15): m1(k) >= e^{n eps} / (e^{(n-1) eps} - 1), i.e.
        // k <= 1/2 + (1/a)(Bu ln 2 + ln(e^{-eps} - e^{-n eps})).
        k = 0.5 + (bu_ln2 +
                   std::log(std::exp(-eps) - std::exp(-n * eps))) / a;
    }
    int64_t idx = static_cast<int64_t>(std::floor(k));
    return std::max<int64_t>(idx, 0);
}

std::unique_ptr<DiscreteOutputModel>
ThresholdCalculator::makeModel(RangeControl kind,
                               int64_t threshold_index) const
{
    if (kind == RangeControl::Resampling) {
        return std::make_unique<ResamplingOutputModel>(pmf_, span_,
                                                       threshold_index);
    }
    return std::make_unique<ThresholdingOutputModel>(pmf_, span_,
                                                     threshold_index);
}

double
ThresholdCalculator::exactLossAt(RangeControl kind,
                                 int64_t threshold_index) const
{
    auto model = makeModel(kind, threshold_index);
    return PrivacyLossAnalyzer::analyze(*model).worst_case_loss;
}

int64_t
ThresholdCalculator::exactIndex(RangeControl kind, double n) const
{
    if (!(n > 1.0))
        fatal("ThresholdCalculator: loss multiple n must exceed 1, "
              "got %g", n);

    double bound = n * params_.epsilon * (1.0 + 1e-9) + 1e-12;
    auto ok = [&](int64_t t) {
        return exactLossAt(kind, t) <= bound;
    };

    if (!ok(0))
        return -1;

    // Grow the window until the bound breaks (the loss is
    // non-decreasing in the window extension: enlarging the window
    // only adds more extreme outputs), then binary search the edge.
    int64_t cap = pmf_->maxIndex();
    int64_t lo = 0;
    int64_t hi = 1;
    while (hi <= cap && ok(hi)) {
        lo = hi;
        hi *= 2;
    }
    if (hi > cap) {
        if (ok(cap))
            return cap;
        hi = cap;
    }
    // Invariant: ok(lo), !ok(hi).
    while (hi - lo > 1) {
        int64_t mid = lo + (hi - lo) / 2;
        if (ok(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace ulpdp
