/**
 * @file
 * Shared parameter block for every fixed-point mechanism.
 *
 * All three fixed-point settings of the paper (naive baseline,
 * resampling, thresholding) share the same RNG datapath; they differ
 * only in what happens when the noised output leaves the allowed
 * window. This struct carries the common knobs and derives the
 * Laplace scale lambda = d / eps and the RNG configuration from them.
 */

#ifndef ULPDP_CORE_FXP_PARAMS_H
#define ULPDP_CORE_FXP_PARAMS_H

#include <cstdint>

#include "core/sensor_range.h"
#include "rng/fxp_laplace.h"

namespace ulpdp {

/** Parameters shared by the fixed-point LDP mechanisms. */
struct FxpMechanismParams
{
    /** Sensor range [m, M]; the LDP sensitivity is its length d. */
    SensorRange range{0.0, 1.0};

    /** Privacy parameter eps (paper evaluation default: 0.5). */
    double epsilon = 0.5;

    /** URNG width Bu in bits (paper default 17). */
    int uniform_bits = 17;

    /** RNG output width By in bits (paper default 12). */
    int output_bits = 12;

    /**
     * Quantization step Delta; 0 selects the paper's convention of
     * d / 2^5 (their running example uses Delta = 10 / 2^5 on d = 10).
     */
    double delta = 0.0;

    /** Log evaluation mode of the RNG datapath. */
    FxpLaplaceConfig::LogMode log_mode =
        FxpLaplaceConfig::LogMode::Reference;

    /** Sample serving path (table fast path vs naive pipeline). */
    FxpLaplaceConfig::SamplePath sample_path =
        FxpLaplaceConfig::SamplePath::Auto;

    /** Harden table lookups (see FxpLaplaceConfig::integrity_checks).
     *  Off models unhardened silicon in fault experiments. */
    bool rng_integrity_checks = true;

    /** Magnitude quantization mode (Nearest = paper pipeline; Floor =
     *  discrete-Laplace variant, see FxpLaplaceConfig::Rounding). */
    FxpLaplaceConfig::Rounding rounding =
        FxpLaplaceConfig::Rounding::Nearest;

    /**
     * Multiplier applied to the nominal scale d / eps. The bounded
     * Laplace mechanism (Holohan et al.) inflates the scale to
     * b = lambda_scale * d / eps so that confining outputs to the
     * sensor range still meets the eps target; every other mechanism
     * leaves this at 1.
     */
    double lambda_scale = 1.0;

    /** PRNG seed. */
    uint64_t seed = 1;

    /** Laplace scale lambda = lambda_scale * d / eps. */
    double
    lambda() const
    {
        return lambda_scale * range.length() / epsilon;
    }

    /** Delta with the default convention applied. */
    double
    resolvedDelta() const
    {
        return delta > 0.0 ? delta : range.length() / 32.0;
    }

    /** Assemble the RNG configuration this parameter block implies. */
    FxpLaplaceConfig
    rngConfig() const
    {
        FxpLaplaceConfig cfg;
        cfg.uniform_bits = uniform_bits;
        cfg.output_bits = output_bits;
        cfg.delta = resolvedDelta();
        cfg.lambda = lambda();
        cfg.log_mode = log_mode;
        cfg.rounding = rounding;
        cfg.sample_path = sample_path;
        cfg.integrity_checks = rng_integrity_checks;
        return cfg;
    }

    /** Sensor range length in quantization steps (rounded). */
    int64_t
    rangeIndexSpan() const
    {
        double d = range.length() / resolvedDelta();
        return static_cast<int64_t>(d + 0.5);
    }
};

} // namespace ulpdp

#endif // ULPDP_CORE_FXP_PARAMS_H
