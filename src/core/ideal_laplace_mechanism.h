/**
 * @file
 * The "Ideal Local DP" reference mechanism: continuous double-precision
 * Laplace noise, y = x + Lap(d / eps). Exactly eps-LDP in the
 * mathematical model; unbuildable on ULP hardware (and, per Mironov's
 * floating-point attack cited by the paper, not even airtight in
 * software), but the utility yardstick for Tables II-V.
 */

#ifndef ULPDP_CORE_IDEAL_LAPLACE_MECHANISM_H
#define ULPDP_CORE_IDEAL_LAPLACE_MECHANISM_H

#include "core/mechanism.h"
#include "rng/ideal_laplace.h"

namespace ulpdp {

/** Continuous Laplace mechanism in the local model. */
class IdealLaplaceMechanism : public Mechanism
{
  public:
    /**
     * @param range Sensor range; sensitivity is range.length().
     * @param epsilon Privacy parameter.
     * @param seed PRNG seed.
     */
    IdealLaplaceMechanism(const SensorRange &range, double epsilon,
                          uint64_t seed = 1);

    NoisedReport noise(double x) override;
    std::string name() const override { return "Ideal Local DP"; }
    bool guaranteesLdp() const override { return true; }
    const SensorRange &range() const override { return range_; }
    double epsilon() const override { return epsilon_; }

  private:
    SensorRange range_;
    double epsilon_;
    IdealLaplace laplace_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_IDEAL_LAPLACE_MECHANISM_H
