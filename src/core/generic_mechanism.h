/**
 * @file
 * Mechanism wrapper for arbitrary noise distributions on the
 * fixed-point inversion pipeline.
 *
 * GenericFxpMechanism is to FxpInversionRng what Resampling- /
 * ThresholdingMechanism are to FxpLaplaceRng: it adds the range
 * control and the Mechanism interface, so Gaussian or staircase
 * noise (or any user-supplied MagnitudeIcdf) runs through the same
 * evaluation harness -- UtilityEvaluator, the benches, the budget
 * machinery -- as the paper's Laplace datapath.
 *
 * Threshold selection for these mechanisms has no closed form; use
 * the exact search against an EnumeratedNoisePmf-backed output model
 * (see bench_ext_distributions for the pattern).
 */

#ifndef ULPDP_CORE_GENERIC_MECHANISM_H
#define ULPDP_CORE_GENERIC_MECHANISM_H

#include <memory>

#include "core/mechanism.h"
#include "core/threshold_calc.h"
#include "rng/fxp_inversion.h"

namespace ulpdp {

/** Range-controlled mechanism over any magnitude ICDF. */
class GenericFxpMechanism : public Mechanism
{
  public:
    /**
     * @param range Sensor range.
     * @param epsilon Privacy parameter the noise was scaled for
     *        (recorded; the scale itself lives inside @p icdf).
     * @param config Inversion pipeline configuration.
     * @param icdf Magnitude inverse CDF (shared).
     * @param kind Range-control flavour.
     * @param threshold_index Window half-extension in Delta units.
     * @param seed URNG seed.
     */
    GenericFxpMechanism(const SensorRange &range, double epsilon,
                        const FxpInversionConfig &config,
                        std::shared_ptr<const MagnitudeIcdf> icdf,
                        RangeControl kind, int64_t threshold_index,
                        uint64_t seed = 1);

    NoisedReport noise(double x) override;
    std::string name() const override;
    bool guaranteesLdp() const override { return true; }
    const SensorRange &range() const override { return range_; }
    double epsilon() const override { return epsilon_; }

    /** Window half-extension in Delta units. */
    int64_t thresholdIndex() const { return threshold_index_; }

    /** Quantization step. */
    double delta() const { return rng_.quantizer().delta(); }

  private:
    SensorRange range_;
    double epsilon_;
    RangeControl kind_;
    int64_t threshold_index_;
    FxpInversionRng rng_;
    int64_t lo_index_;
    int64_t hi_index_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_GENERIC_MECHANISM_H
