/**
 * @file
 * Exact-PMF privacy certifier: machine-checks Eq. (4) for every
 * registered mechanism by exact enumeration of the output law.
 *
 * The paper argues the n * eps worst-case loss bound analytically;
 * Gazeau et al. ("Preserving differential privacy under
 * finite-precision semantics") show why analytic arguments are not
 * enough -- finite-precision rounding can inflate the true loss of a
 * correctly-derived mechanism without bound. The certifier closes
 * that gap exactly, at real silicon URNG widths:
 *
 *  1. the noise PMF is derived as exact per-URNG-state counts by
 *     segment-rank accumulation (FxpLaplacePmf::Mode::Enumerated):
 *     the Fig. 3 pipeline is monotone in the URNG index, so each
 *     output bin is one contiguous state interval whose boundary a
 *     few exact pipeline probes pin down. Cost is O(support bins),
 *     not O(2^Bu), so Bu up to kMaxUniformBits (32) is affordable --
 *     the legacy per-state walk survives as a cross-check mode
 *     (setLegacyEnumeration, Bu <= kMaxLegacyUniformBits);
 *  2. the mechanism's registered output model applies its range
 *     control to that PMF (memoized per parameter block, so
 *     certifyAll() enumerates each distinct configuration once),
 *     giving the exact conditional distribution Pr[y | x];
 *  3. PrivacyLossAnalyzer takes, per output y, the min and max of
 *     Pr[y | x] over inputs in one pass -- Eq. (4) evaluated exactly,
 *     with infinite loss detected structurally (an output producible
 *     by one input and not another) -- parallelized over outputs
 *     and/or mechanisms (setJobs).
 *
 * All accounting is exact: per-bin uint64 state counts sum to 2^Bu
 * with zero slack, every probability is count / 2^Bu (an exact double
 * for Bu <= 32), and the certification comparison is a plain <= with
 * no normalization tolerance.
 *
 * A mechanism is *certified* when the sup is <= loss_multiple * eps
 * for one query (hence <= n * loss_multiple * eps over n queries, by
 * composition). Certificates serialize to JSON; the CI certify job
 * runs the suite at Bu = 8/10 (byte-compat working points) and
 * Bu = 16 (silicon-width gate) and fails if any registered mechanism
 * misses its bound.
 */

#ifndef ULPDP_CORE_PMF_CERTIFIER_H
#define ULPDP_CORE_PMF_CERTIFIER_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/mechanism_registry.h"
#include "rng/fxp_laplace_pmf.h"

namespace ulpdp {

/** One mechanism's certification result. */
struct MechanismCertificate
{
    /** Registry name of the mechanism. */
    std::string mechanism;

    /** Capability flags it advertises (OR of mechcap::). */
    uint32_t caps = 0;

    /** URNG width the enumeration ran at. */
    int uniform_bits = 0;

    /** Privacy parameter eps of the certified configuration. */
    double epsilon = 0.0;

    /** Loss target as a multiple of eps. */
    double loss_multiple = 0.0;

    /** The absolute per-query bound loss_multiple * eps. */
    double bound = 0.0;

    /** Resolved window half-extension, or -1 when the mechanism has
     *  no fleet lowering to report one through. */
    int64_t threshold_index = -1;

    /** URNG states accounted for (2^Bu). */
    uint64_t states = 0;

    /** Exact worst-case per-query loss (may be +infinity). */
    double worst_case_loss = 0.0;

    /** Output index attaining the worst case. */
    int64_t worst_output = 0;

    /** Outputs with structurally infinite loss. */
    uint64_t infinite_outputs = 0;

    /** bound - worst_case_loss (negative means failed). */
    double margin = 0.0;

    /** True iff the worst case is finite and within the bound. */
    bool certified = false;

    /** Wall-clock time this certificate took (PMF + model + sup). */
    double elapsed_seconds = 0.0;

    /** states / elapsed_seconds: URNG states accounted for per
     *  second. The segment engine's headline rate -- it accounts for
     *  states without visiting them. */
    double states_per_second = 0.0;
};

/** Runs the enumeration suite over the mechanism registry. */
class PmfCertifier
{
  public:
    /** Largest Bu the certifier accepts (segment-rank engine). The
     *  ctor guard and its fatal message both derive from this one
     *  constant, so they cannot drift apart again. */
    static constexpr int kMaxUniformBits =
            FxpLaplacePmf::kMaxEnumeratedBits;

    /** Largest Bu the legacy cross-check enumeration accepts. */
    static constexpr int kMaxLegacyUniformBits =
            FxpLaplacePmf::kMaxLegacyEnumeratedBits;

    /**
     * @param profile Parameter block to certify at. uniform_bits
     *        must be <= kMaxUniformBits (32).
     * @param loss_multiple Per-query loss target, multiple of eps.
     */
    explicit PmfCertifier(const FxpMechanismParams &profile,
                          double loss_multiple = 2.0);

    /**
     * Worker threads for the loss sup (and for certifyAll() across
     * mechanisms). 1 = serial (default); 0 = all hardware threads.
     * Certificates are identical for every job count.
     */
    void setJobs(int jobs);

    /**
     * Use the legacy per-state enumerator instead of the segment
     * engine (cross-check mode; tests and CI diff the two). Fatal if
     * the profile's uniform_bits exceeds kMaxLegacyUniformBits.
     */
    void setLegacyEnumeration(bool legacy);

    /** Certify one registered mechanism (fatal on unknown names). */
    MechanismCertificate certify(const std::string &name) const;

    /** Certify every registered mechanism, registration order. */
    std::vector<MechanismCertificate> certifyAll() const;

    /** True iff every certificate in @p certs passed. */
    static bool
    allCertified(const std::vector<MechanismCertificate> &certs);

    /**
     * Serialize certificates to a JSON document ({"certificates":
     * [...], "all_certified": bool}); empty path writes nothing.
     * @p include_timing appends the elapsed_seconds /
     * states_per_second fields; byte-compat diffs pass false to get
     * output comparable across engines and machines.
     */
    static void
    writeJson(const std::vector<MechanismCertificate> &certs,
              const std::string &path, bool include_timing = true);

  private:
    FxpMechanismParams profile_;
    double loss_multiple_;
    int jobs_ = 1;
    bool legacy_ = false;
};

} // namespace ulpdp

#endif // ULPDP_CORE_PMF_CERTIFIER_H
