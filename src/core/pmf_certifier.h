/**
 * @file
 * Exact-PMF privacy certifier: machine-checks Eq. (4) for every
 * registered mechanism by exhaustive enumeration.
 *
 * The paper argues the n * eps worst-case loss bound analytically;
 * Gazeau et al. ("Preserving differential privacy under
 * finite-precision semantics") show why analytic arguments are not
 * enough -- finite-precision rounding can inflate the true loss of a
 * correctly-derived mechanism without bound. The certifier closes
 * that gap for small URNG widths, where no approximation is needed:
 *
 *  1. every URNG state (all 2^Bu of them) is pushed through the real
 *     Fig. 3 pipeline (FxpLaplacePmf::Mode::Enumerated), so the
 *     noise PMF is the implementation's, not the closed form's;
 *  2. the mechanism's registered output model applies its range
 *     control to that PMF, giving the exact conditional distribution
 *     Pr[y | x] for every input on the grid;
 *  3. PrivacyLossAnalyzer enumerates every (output, input-pair)
 *     triple and takes the sup -- Eq. (4) evaluated exactly, with
 *     infinite loss detected structurally (an output producible by
 *     one input and not another).
 *
 * A mechanism is *certified* when that sup is <= loss_multiple * eps
 * for one query (hence <= n * loss_multiple * eps over n queries, by
 * composition). Certificates serialize to JSON; the CI certify job
 * runs the suite at Bu = 8 and Bu = 10 and fails if any registered
 * mechanism misses its bound.
 */

#ifndef ULPDP_CORE_PMF_CERTIFIER_H
#define ULPDP_CORE_PMF_CERTIFIER_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/mechanism_registry.h"

namespace ulpdp {

/** One mechanism's certification result. */
struct MechanismCertificate
{
    /** Registry name of the mechanism. */
    std::string mechanism;

    /** Capability flags it advertises (OR of mechcap::). */
    uint32_t caps = 0;

    /** URNG width the enumeration ran at. */
    int uniform_bits = 0;

    /** Privacy parameter eps of the certified configuration. */
    double epsilon = 0.0;

    /** Loss target as a multiple of eps. */
    double loss_multiple = 0.0;

    /** The absolute per-query bound loss_multiple * eps. */
    double bound = 0.0;

    /** Resolved window half-extension, or -1 when the mechanism has
     *  no fleet lowering to report one through. */
    int64_t threshold_index = -1;

    /** URNG states enumerated (2^Bu). */
    uint64_t states = 0;

    /** Exact worst-case per-query loss (may be +infinity). */
    double worst_case_loss = 0.0;

    /** Output index attaining the worst case. */
    int64_t worst_output = 0;

    /** Outputs with structurally infinite loss. */
    uint64_t infinite_outputs = 0;

    /** bound - worst_case_loss (negative means failed). */
    double margin = 0.0;

    /** True iff the worst case is finite and within the bound. */
    bool certified = false;
};

/** Runs the enumeration suite over the mechanism registry. */
class PmfCertifier
{
  public:
    /**
     * @param profile Parameter block to certify at. uniform_bits
     *        must be <= 24 (the enumeration is exhaustive).
     * @param loss_multiple Per-query loss target, multiple of eps.
     */
    explicit PmfCertifier(const FxpMechanismParams &profile,
                          double loss_multiple = 2.0);

    /** Certify one registered mechanism (fatal on unknown names). */
    MechanismCertificate certify(const std::string &name) const;

    /** Certify every registered mechanism, registration order. */
    std::vector<MechanismCertificate> certifyAll() const;

    /** True iff every certificate in @p certs passed. */
    static bool
    allCertified(const std::vector<MechanismCertificate> &certs);

    /**
     * Serialize certificates to a JSON document ({"certificates":
     * [...], "all_certified": bool}); empty path writes nothing.
     */
    static void
    writeJson(const std::vector<MechanismCertificate> &certs,
              const std::string &path);

  private:
    FxpMechanismParams profile_;
    double loss_multiple_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_PMF_CERTIFIER_H
