/**
 * @file
 * Bounded Laplace mechanism (Holohan et al., "The Bounded Laplace
 * Mechanism in Differential Privacy").
 *
 * Instead of extending the release window beyond the sensor range
 * (resampling/thresholding with T > 0), the bounded Laplace mechanism
 * confines every output to the sensor range itself -- window
 * extension T = 0 -- and pays for the confinement by inflating the
 * Laplace scale. Conditioning Lap(x, b) on [m, M] concentrates mass
 * differently for different inputs, so the naive scale b = d / eps no
 * longer meets the eps target; Holohan et al. show the corrected
 * scale is the fixed point of
 *
 *   b = d / (eps - ln(dC(b))),   dC(b) = 2 / (1 + e^{-d / (2b)}),
 *
 * where dC(b) bounds the normalisation-constant ratio between the two
 * extreme inputs m and M (full-range LDP sensitivity d = M - m). The
 * fixed point exists whenever eps > ln dC(b) along the iteration,
 * which holds for every eps the paper evaluates.
 *
 * This file carries the fixed-point (FxP) variant: the continuous
 * fixed point only seeds params.lambda_scale; resolveParams() then
 * verifies the *exact* discrete worst-case loss (Eq. 4) with the
 * PrivacyLossAnalyzer and widens the scale further if quantization
 * pushed the loss over the bound. The mechanism itself never rejects:
 * draws come from the rank view of the sampling table
 * (FxpLaplaceRng::sampleIndexTruncated), one lookup per report, so
 * latency is input-independent -- no redraw loop, no timing channel.
 */

#ifndef ULPDP_CORE_BOUNDED_LAPLACE_H
#define ULPDP_CORE_BOUNDED_LAPLACE_H

#include "core/fxp_mechanism.h"

namespace ulpdp {

/** Variance-corrected Laplace confined to the sensor range. */
class BoundedLaplaceMechanism : public FxpMechanismBase
{
  public:
    /**
     * @param params Resolved parameters: lambda_scale must already
     *        carry the Holohan correction (use resolveParams(); a
     *        scale of exactly 1 is rejected as an unresolved block).
     */
    explicit BoundedLaplaceMechanism(const FxpMechanismParams &params);

    NoisedReport noise(double x) override;
    std::string name() const override { return "Bounded Laplace"; }
    bool guaranteesLdp() const override { return true; }

    /**
     * Resolve a parameter block for a target worst-case loss of
     * loss_multiple * eps: seed lambda_scale with the continuous
     * Holohan fixed point at eps_t = loss_multiple * eps, then refine
     * against the exact discrete analyzer until the enumerated loss
     * meets the bound. Fatal if no scale within a factor ~8 of the
     * seed satisfies it (a mis-provisioned range/eps combination).
     */
    static FxpMechanismParams
    resolveParams(const FxpMechanismParams &base, double loss_multiple);

    /**
     * The continuous Holohan fixed point: the smallest scale b such
     * that Lap(x, b) conditioned on [x - ?, x + ?] over a range of
     * width @p d meets an @p eps target. Fatal when the iteration
     * leaves the eps > ln dC(b) validity region.
     */
    static double holohanScale(double d, double eps);

    /**
     * Closed-form variance of Lap(x, b) conditioned on [lo, hi]
     * (Holohan et al., Sec. 4): with A = (x - lo)/b, B = (hi - x)/b
     * and C = 1 - (e^-A + e^-B)/2,
     *
     *   M1 = (b/2)  (e^-A (1 + A)        - e^-B (1 + B))
     *   M2 = b^2 (2 - e^-A (A^2+2A+2)/2  - e^-B (B^2+2B+2)/2)
     *   Var = M2/C - (M1/C)^2.
     *
     * The FxP sampler's exact model is tested against this continuous
     * formula to within the quantization error budget.
     */
    static double truncatedVariance(double b, double lo, double hi,
                                    double x);

  private:
    /** Confined-draw attempt guard for the scalar (no-table) path. */
    uint64_t max_attempts_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_BOUNDED_LAPLACE_H
