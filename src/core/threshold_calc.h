/**
 * @file
 * Threshold selection for resampling and thresholding (Section III-B).
 *
 * Given a target worst-case loss of n * eps (n > 1), the paper derives
 * closed-form window extensions:
 *
 *  Resampling, from Eq. (12)/(13). Bounding the PMF count ratio
 *  between noise k and k + d/Delta with floor/ceil slack requires
 *    G(k) = m1(k) - m2(k) >= (e^{n eps} + 1) / (e^{(n-1) eps} - 1),
 *  giving
 *    k <= (1/a) [ Bu ln 2 + ln(e^{a/2} - e^{-a/2})
 *                 + ln(e^{(n-1) eps} - 1) - ln(e^{n eps} + 1) ],
 *  with a = eps * Delta / d. A useful side effect: the constraint
 *  forces every bin inside the window to hold >= 1 URNG state, so the
 *  window cannot contain interior PMF gaps.
 *
 *  Thresholding, from Eq. (14)/(15). Bounding the boundary-atom tail
 *  ratio requires m1(k) >= e^{n eps} / (e^{(n-1) eps} - 1), giving
 *    k <= 1/2 + (1/a) (Bu ln 2 + ln(e^{-eps} - e^{-n eps})).
 *  This condition only constrains the atoms. Interior outputs follow
 *  the raw PMF, whose tail gaps (Fig. 4(b)) can fall inside this
 *  (larger) window -- in which case the *exact* worst-case loss is
 *  infinite even though Eq. (15) is satisfied. The exact searches
 *  below account for every output, so prefer exactIndex() when
 *  configuring a real device; the benches quantify the discrepancy.
 */

#ifndef ULPDP_CORE_THRESHOLD_CALC_H
#define ULPDP_CORE_THRESHOLD_CALC_H

#include <cstdint>
#include <memory>

#include "core/fxp_params.h"
#include "core/output_model.h"

namespace ulpdp {

/** Which range-control mechanism a threshold is for. */
enum class RangeControl
{
    Resampling,
    Thresholding,
};

/** Computes window thresholds (in Delta index units). */
class ThresholdCalculator
{
  public:
    /**
     * @param params Mechanism parameters the thresholds are for.
     */
    explicit ThresholdCalculator(const FxpMechanismParams &params);

    /**
     * Closed-form resampling threshold index for loss bound
     * n * eps (Eq. 13). @p n must exceed 1.
     */
    int64_t closedFormIndex(RangeControl kind, double n) const;

    /**
     * Exact threshold: the largest window extension T such that the
     * exact worst-case loss of the mechanism's full output model is
     * <= n * eps. Returns -1 if no T >= 0 satisfies the bound.
     */
    int64_t exactIndex(RangeControl kind, double n) const;

    /**
     * Exact worst-case loss of the mechanism with window extension
     * @p threshold_index (for threshold sweeps and validation).
     */
    double exactLossAt(RangeControl kind, int64_t threshold_index) const;

    /** The noise PMF used by the exact computations. */
    std::shared_ptr<const FxpLaplacePmf> pmf() const { return pmf_; }

    /** Sensor range span in Delta units. */
    int64_t span() const { return span_; }

  private:
    /** Build the output model for a given control kind and threshold. */
    std::unique_ptr<DiscreteOutputModel>
    makeModel(RangeControl kind, int64_t threshold_index) const;

    FxpMechanismParams params_;
    std::shared_ptr<const FxpLaplacePmf> pmf_;
    int64_t span_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_THRESHOLD_CALC_H
