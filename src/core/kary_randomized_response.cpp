#include "core/kary_randomized_response.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

KaryRandomizedResponse::KaryRandomizedResponse(int num_categories,
                                               double epsilon,
                                               int uniform_bits,
                                               uint64_t seed)
    : k_(num_categories), epsilon_(epsilon),
      uniform_bits_(uniform_bits), urng_(seed)
{
    if (k_ < 2)
        fatal("KaryRandomizedResponse: need at least 2 categories, "
              "got %d", k_);
    if (!(epsilon > 0.0))
        fatal("KaryRandomizedResponse: epsilon must be positive, "
              "got %g", epsilon);
    if (uniform_bits < 4 || uniform_bits > 32)
        fatal("KaryRandomizedResponse: uniform_bits must be in "
              "[4, 32], got %d", uniform_bits);

    double p = std::exp(epsilon) /
               (std::exp(epsilon) + static_cast<double>(k_) - 1.0);
    double total = std::ldexp(1.0, uniform_bits_);
    uint64_t threshold =
        static_cast<uint64_t>(std::llrint(p * total));
    // Both the truth and every lie must stay possible, or the loss
    // is infinite -- clamp the quantized threshold inside (0, 2^Bu).
    uint64_t max_threshold = (uint64_t{1} << uniform_bits_) - 1;
    if (threshold < 1)
        threshold = 1;
    if (threshold > max_threshold)
        threshold = max_threshold;
    truth_threshold_ = threshold;
}

double
KaryRandomizedResponse::truthProbability() const
{
    return static_cast<double>(truth_threshold_) /
           std::ldexp(1.0, uniform_bits_);
}

double
KaryRandomizedResponse::lieProbability() const
{
    return (1.0 - truthProbability()) /
           (static_cast<double>(k_) - 1.0);
}

double
KaryRandomizedResponse::exactLoss() const
{
    return std::log(truthProbability() / lieProbability());
}

int
KaryRandomizedResponse::respond(int category)
{
    if (category < 0 || category >= k_)
        fatal("KaryRandomizedResponse: category %d out of [0, %d)",
              category, k_);

    uint64_t draw = urng_.nextBits(uniform_bits_);
    if (draw < truth_threshold_)
        return category;

    // Uniform among the other k-1 categories. The modulo bias is
    // (k-1) / 2^32 -- far below the 2^-Bu threshold quantization
    // already accounted for in exactLoss().
    int other = static_cast<int>(urng_.next32() %
                                 static_cast<uint32_t>(k_ - 1));
    return other >= category ? other + 1 : other;
}

std::vector<double>
KaryRandomizedResponse::estimateCounts(
        const std::vector<uint64_t> &observed_counts) const
{
    if (observed_counts.size() != static_cast<size_t>(k_))
        fatal("KaryRandomizedResponse: got %zu counts for %d "
              "categories", observed_counts.size(), k_);

    uint64_t n = 0;
    for (uint64_t c : observed_counts)
        n += c;

    double p = truthProbability();
    double q = lieProbability();
    std::vector<double> est(observed_counts.size());
    for (size_t i = 0; i < est.size(); ++i) {
        double raw = (static_cast<double>(observed_counts[i]) -
                      static_cast<double>(n) * q) /
                     (p - q);
        if (raw < 0.0)
            raw = 0.0;
        if (raw > static_cast<double>(n))
            raw = static_cast<double>(n);
        est[i] = raw;
    }
    return est;
}

} // namespace ulpdp
