/**
 * @file
 * Sensor value range descriptor.
 *
 * Local DP on sensor data needs exactly one piece of metadata about
 * the sensor: the closed interval [lo, hi] its readings can take
 * (Section II-B: noise is scaled as Lap(d / eps) with d = hi - lo).
 * The DP-Box receives it through the Set Sensor Range commands.
 */

#ifndef ULPDP_CORE_SENSOR_RANGE_H
#define ULPDP_CORE_SENSOR_RANGE_H

#include "common/logging.h"

namespace ulpdp {

/** Closed interval of possible sensor readings. */
struct SensorRange
{
    /** Lower limit (the paper's m, register r_l). */
    double lo = 0.0;

    /** Upper limit (the paper's M, register r_u). */
    double hi = 1.0;

    SensorRange() = default;

    SensorRange(double lo_, double hi_) : lo(lo_), hi(hi_)
    {
        if (!(hi > lo))
            fatal("SensorRange: hi (%g) must exceed lo (%g)", hi, lo);
    }

    /** Range length d = hi - lo, the LDP sensitivity. */
    double length() const { return hi - lo; }

    /** Midpoint (m + M) / 2. */
    double mid() const { return 0.5 * (lo + hi); }

    /** True if @p x lies within the range. */
    bool contains(double x) const { return x >= lo && x <= hi; }

    /** Clamp @p x into the range. */
    double
    clamp(double x) const
    {
        if (x < lo)
            return lo;
        if (x > hi)
            return hi;
        return x;
    }
};

} // namespace ulpdp

#endif // ULPDP_CORE_SENSOR_RANGE_H
