#include "core/output_model.h"

#include "common/logging.h"

namespace ulpdp {

namespace {

void
checkArgs(const std::shared_ptr<const NoisePmf> &pmf, int64_t span)
{
    if (!pmf)
        fatal("output model: pmf must not be null");
    if (span <= 0)
        fatal("output model: span must be positive, got %lld",
              static_cast<long long>(span));
}

} // anonymous namespace

// --- NaiveOutputModel ----------------------------------------------------

NaiveOutputModel::NaiveOutputModel(
        std::shared_ptr<const NoisePmf> pmf, int64_t span)
    : pmf_(std::move(pmf)), span_(span)
{
    checkArgs(pmf_, span_);
}

int64_t
NaiveOutputModel::outputLo() const
{
    return -pmf_->maxIndex();
}

int64_t
NaiveOutputModel::outputHi() const
{
    return span_ + pmf_->maxIndex();
}

double
NaiveOutputModel::prob(int64_t j, int64_t i) const
{
    ULPDP_ASSERT(i >= 0 && i <= span_);
    return pmf_->pmf(j - i);
}

// --- ResamplingOutputModel -----------------------------------------------

ResamplingOutputModel::ResamplingOutputModel(
        std::shared_ptr<const NoisePmf> pmf, int64_t span,
        int64_t threshold)
    : pmf_(std::move(pmf)), span_(span), threshold_(threshold)
{
    checkArgs(pmf_, span_);
    if (threshold_ < 0)
        fatal("ResamplingOutputModel: threshold must be non-negative");

    accept_.resize(static_cast<size_t>(span_) + 1);
    for (int64_t i = 0; i <= span_; ++i) {
        double z = 0.0;
        for (int64_t j = outputLo(); j <= outputHi(); ++j)
            z += pmf_->pmf(j - i);
        accept_[static_cast<size_t>(i)] = z;
        if (z <= 0.0)
            fatal("ResamplingOutputModel: input %lld has zero "
                  "acceptance probability -- the hardware would "
                  "resample forever", static_cast<long long>(i));
    }
}

double
ResamplingOutputModel::prob(int64_t j, int64_t i) const
{
    ULPDP_ASSERT(i >= 0 && i <= span_);
    if (j < outputLo() || j > outputHi())
        return 0.0;
    return pmf_->pmf(j - i) / accept_[static_cast<size_t>(i)];
}

double
ResamplingOutputModel::acceptProbability(int64_t i) const
{
    ULPDP_ASSERT(i >= 0 && i <= span_);
    return accept_[static_cast<size_t>(i)];
}

double
ResamplingOutputModel::expectedSamples(int64_t i) const
{
    return 1.0 / acceptProbability(i);
}

// --- ThresholdingOutputModel ---------------------------------------------

ThresholdingOutputModel::ThresholdingOutputModel(
        std::shared_ptr<const NoisePmf> pmf, int64_t span,
        int64_t threshold)
    : pmf_(std::move(pmf)), span_(span), threshold_(threshold)
{
    checkArgs(pmf_, span_);
    if (threshold_ < 0)
        fatal("ThresholdingOutputModel: threshold must be "
              "non-negative");
}

double
ThresholdingOutputModel::prob(int64_t j, int64_t i) const
{
    ULPDP_ASSERT(i >= 0 && i <= span_);
    int64_t lo = outputLo();
    int64_t hi = outputHi();
    if (j < lo || j > hi)
        return 0.0;
    if (j == hi) {
        // Atom: everything at or above the upper boundary.
        return pmf_->upperMass(hi - i);
    }
    if (j == lo) {
        // Atom at the lower boundary (sign symmetry of the PMF).
        return pmf_->upperMass(i - lo);
    }
    return pmf_->pmf(j - i);
}

// --- RandomizedResponseOutputModel ---------------------------------------

RandomizedResponseOutputModel::RandomizedResponseOutputModel(
        std::shared_ptr<const NoisePmf> pmf, int64_t span)
    : span_(span)
{
    checkArgs(pmf, span);
    int64_t cross = span / 2 + 1;
    flip_prob_ = pmf->tailMass(cross);
}

double
RandomizedResponseOutputModel::prob(int64_t j, int64_t i) const
{
    ULPDP_ASSERT(i >= 0 && i <= span_);
    // Intermediate inputs snap to the nearer category, midpoint ties
    // toward the lower one (matching RandomizedResponse::noise()).
    int64_t cat = (2 * i > span_) ? span_ : 0;
    if (j != 0 && j != span_)
        return 0.0;
    return (j == cat) ? 1.0 - flip_prob_ : flip_prob_;
}

} // namespace ulpdp
