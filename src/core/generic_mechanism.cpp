#include "core/generic_mechanism.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ulpdp {

GenericFxpMechanism::GenericFxpMechanism(
        const SensorRange &range, double epsilon,
        const FxpInversionConfig &config,
        std::shared_ptr<const MagnitudeIcdf> icdf, RangeControl kind,
        int64_t threshold_index, uint64_t seed)
    : range_(range), epsilon_(epsilon), kind_(kind),
      threshold_index_(threshold_index),
      rng_(config, std::move(icdf), seed)
{
    if (!(epsilon > 0.0))
        fatal("GenericFxpMechanism: epsilon must be positive");
    if (threshold_index < 0)
        fatal("GenericFxpMechanism: threshold_index must be "
              "non-negative");

    double delta = rng_.quantizer().delta();
    lo_index_ = static_cast<int64_t>(std::llround(range.lo / delta));
    hi_index_ = static_cast<int64_t>(std::llround(range.hi / delta));
    if (hi_index_ <= lo_index_)
        fatal("GenericFxpMechanism: range shorter than one "
              "quantization step");
}

std::string
GenericFxpMechanism::name() const
{
    std::string control = kind_ == RangeControl::Resampling
        ? "resampling"
        : "thresholding";
    return rng_.icdf().name() + " (" + control + ")";
}

NoisedReport
GenericFxpMechanism::noise(double x)
{
    double delta = rng_.quantizer().delta();
    double slack = delta;
    if (x < range_.lo - slack || x > range_.hi + slack)
        fatal("%s: reading %g outside range [%g, %g]",
              name().c_str(), x, range_.lo, range_.hi);
    int64_t xi = std::clamp(
        static_cast<int64_t>(std::llround(x / delta)), lo_index_,
        hi_index_);

    int64_t win_lo = lo_index_ - threshold_index_;
    int64_t win_hi = hi_index_ + threshold_index_;

    if (kind_ == RangeControl::Thresholding) {
        int64_t yi = std::clamp(xi + rng_.sampleIndex(), win_lo,
                                win_hi);
        return NoisedReport{static_cast<double>(yi) * delta, 1};
    }

    uint64_t attempts = 0;
    while (true) {
        ++attempts;
        if (attempts > (uint64_t{1} << 20))
            panic("%s: resampling never accepted", name().c_str());
        int64_t yi = xi + rng_.sampleIndex();
        if (yi >= win_lo && yi <= win_hi) {
            return NoisedReport{static_cast<double>(yi) * delta,
                                attempts};
        }
    }
}

} // namespace ulpdp
