/**
 * @file
 * Base class for the fixed-point mechanisms and the naive baseline.
 *
 * FxpMechanismBase owns the fixed-point Laplace RNG and the grid
 * bookkeeping: sensor readings are quantized onto the Delta grid
 * (hardware receives them as fixed-point words to begin with) and all
 * mechanism logic operates on grid indices.
 *
 * NaiveFxpMechanism is the paper's "FxP HW Baseline": add one
 * fixed-point noise sample, release whatever comes out. Its utility is
 * indistinguishable from the ideal mechanism (Tables II-V) but its
 * worst-case privacy loss is infinite (Section III-A3), so
 * guaranteesLdp() is false.
 */

#ifndef ULPDP_CORE_FXP_MECHANISM_H
#define ULPDP_CORE_FXP_MECHANISM_H

#include <cstdint>

#include "core/fxp_params.h"
#include "core/mechanism.h"
#include "rng/fxp_laplace.h"

namespace ulpdp {

/** Shared machinery of the fixed-point mechanisms. */
class FxpMechanismBase : public Mechanism
{
  public:
    explicit FxpMechanismBase(const FxpMechanismParams &params);

    const SensorRange &range() const override { return params_.range; }
    double epsilon() const override { return params_.epsilon; }

    /** Full parameter block. */
    const FxpMechanismParams &params() const { return params_; }

    /** Quantization step Delta. */
    double delta() const { return rng_.quantizer().delta(); }

    /** Quantize a sensor reading onto the Delta grid (index units). */
    int64_t toIndex(double x) const;

    /** Map a grid index back to a value. */
    double toValue(int64_t index) const;

    /** Grid index of the range lower limit m. */
    int64_t loIndex() const { return lo_index_; }

    /** Grid index of the range upper limit M. */
    int64_t hiIndex() const { return hi_index_; }

    /** Underlying fixed-point RNG (for tests and analyses). */
    FxpLaplaceRng &rng() { return rng_; }

  protected:
    /** Validate the reading and return its grid index. */
    int64_t checkAndIndex(double x) const;

    FxpMechanismParams params_;
    FxpLaplaceRng rng_;
    int64_t lo_index_;
    int64_t hi_index_;
};

/**
 * Naive fixed-point Laplace mechanism: y = x + n with n from the
 * fixed-point RNG, no range control. NOT eps-LDP for any finite eps.
 */
class NaiveFxpMechanism : public FxpMechanismBase
{
  public:
    explicit NaiveFxpMechanism(const FxpMechanismParams &params)
        : FxpMechanismBase(params)
    {}

    NoisedReport noise(double x) override;
    std::string name() const override { return "FxP HW Baseline"; }
    bool guaranteesLdp() const override { return false; }
};

} // namespace ulpdp

#endif // ULPDP_CORE_FXP_MECHANISM_H
